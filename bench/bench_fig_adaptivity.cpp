// F-ADAPT — the paper's concluding conjectures, measured:
//   "we believe that a fully adaptive schedule should be able to trim an
//    O(log log) factor from our bounds. It would also be interesting if a
//    greedy heuristic could achieve the same bounds."
//
// We pit the fully adaptive per-step greedy (AdaptiveGreedyPolicy) against
// the semioblivious SUU-I-SEM and oblivious SUU-I-OBL across the growth
// family. If the conjecture holds empirically, the adaptive greedy's ratio
// curve should be at least as flat as SEM's — evidence, not proof.
//
// Also ablates SUU-C's gamma_factor (the long-job threshold
// gamma = factor * t*/log(n+m)): smaller gamma batches more jobs through
// SUU-I-SEM, larger gamma keeps more in the congestion-prone chain phase.
#include "bench_common.hpp"

#include "algos/suu_c.hpp"

using namespace suu;

int main(int argc, char** argv) {
  const bench::Harness h(argc, argv, /*reps=*/150, /*seed=*/10);

  bench::print_header(
      "F-ADAPT: conclusion conjectures — adaptivity and greed",
      "Left: adaptive per-step greedy vs SEM/OBL ratio growth "
      "(identical(0.7), m=8).\nRight (below): SUU-C gamma_factor ablation "
      "on a chain family with one hard job per chain.");

  api::SolverOptions fast;
  fast.lp1.simplex_size_limit = 600;

  const std::vector<int> sizes = {8, 16, 32, 64, 128, 256};
  api::ExperimentRunner growth(h.runner_options());
  std::vector<std::pair<std::string, std::shared_ptr<const core::Instance>>>
      instances;
  for (const int n : sizes) {
    util::Rng rng(h.seed + static_cast<std::uint64_t>(n));
    instances.emplace_back(
        "n=" + std::to_string(n),
        std::make_shared<const core::Instance>(core::make_independent(
            n, 8, core::MachineModel::identical(0.7), rng)));
  }
  growth.add_grid(instances, {"adaptive-greedy", "suu-i-sem", "suu-i-obl"},
                  fast, /*auto_lower_bound=*/true);
  const auto& gres = growth.run();
  util::Table t1({"n", "adaptive-greedy", "suu-i-sem", "suu-i-obl"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    t1.add_row({std::to_string(sizes[i]),
                util::fmt_pm(gres[3 * i].ratio, gres[3 * i].ratio_ci, 2),
                util::fmt_pm(gres[3 * i + 1].ratio, gres[3 * i + 1].ratio_ci,
                             2),
                util::fmt_pm(gres[3 * i + 2].ratio, gres[3 * i + 2].ratio_ci,
                             2)});
  }
  t1.print(std::cout);
  h.maybe_json(growth);

  std::cout << "\nSUU-C gamma_factor ablation (chains with one hard job "
               "each; ratio = E[T]/LB):\n\n";
  // Chain family where each chain has one near-hopeless job, so the
  // long-job machinery matters.
  const int n_chains = 6, len = 4, m = 3;
  std::vector<double> q;
  for (int c = 0; c < n_chains; ++c) {
    for (int k = 0; k < len; ++k) {
      for (int i = 0; i < m; ++i) {
        q.push_back(k == 1 ? 0.995 : 0.4);  // second job of each chain hard
      }
    }
  }
  auto inst = std::make_shared<const core::Instance>(
      n_chains * len, m, std::move(q),
      core::make_chain_dag(std::vector<int>(n_chains, len)));
  const double lb = api::lower_bound_auto(*inst).value;

  const std::vector<double> gammas = {0.25, 0.5, 1.0, 2.0, 4.0};
  api::ExperimentRunner ablation(h.runner_options());
  ablation.options().seed = h.seed + 77;
  ablation.options().strict_eligibility = true;
  ablation.options().skip_capped = true;
  for (const double gf : gammas) {
    api::Cell cell;
    cell.instance_label = "gamma_factor=" + util::fmt(gf, 2);
    cell.instance = inst;
    cell.solver = "suu-c";
    cell.solver_opt.gamma_factor = gf;
    cell.lower_bound = lb;
    cell.metrics = {
        {"batches",
         [](const sim::Policy& p, const sim::ExecResult&) {
           return static_cast<double>(
               dynamic_cast<const algos::SuuCPolicy&>(p).batches_run());
         }},
        {"supersteps",
         [](const sim::Policy& p, const sim::ExecResult&) {
           return static_cast<double>(
               dynamic_cast<const algos::SuuCPolicy&>(p).supersteps());
         }}};
    ablation.add(std::move(cell));
  }
  const auto& ares = ablation.run();

  util::Table t2(
      {"gamma_factor", "E[T]/LB", "mean batches", "mean supersteps"});
  for (std::size_t i = 0; i < gammas.size(); ++i) {
    const api::CellResult& r = ares[i];
    t2.add_row({util::fmt(gammas[i], 2),
                util::fmt_pm(r.ratio, r.ratio_ci, 2),
                util::fmt(r.metric("batches").mean(), 2),
                util::fmt(r.metric("supersteps").mean(), 1)});
  }
  t2.print(std::cout);
  h.maybe_json(ablation);
  return 0;
}
