// F-ADAPT — the paper's concluding conjectures, measured:
//   "we believe that a fully adaptive schedule should be able to trim an
//    O(log log) factor from our bounds. It would also be interesting if a
//    greedy heuristic could achieve the same bounds."
//
// We pit the fully adaptive per-step greedy (AdaptiveGreedyPolicy) against
// the semioblivious SUU-I-SEM and oblivious SUU-I-OBL across the growth
// family. If the conjecture holds empirically, the adaptive greedy's ratio
// curve should be at least as flat as SEM's — evidence, not proof.
//
// Also ablates SUU-C's gamma_factor (the long-job threshold
// gamma = factor * t*/log(n+m)): smaller gamma batches more jobs through
// SUU-I-SEM, larger gamma keeps more in the congestion-prone chain phase.
#include "bench_common.hpp"

#include "algos/baselines.hpp"
#include "algos/suu_c.hpp"
#include "algos/suu_i.hpp"

using namespace suu;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int reps = static_cast<int>(args.get_int("reps", 150));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 10));

  bench::print_header(
      "F-ADAPT: conclusion conjectures — adaptivity and greed",
      "Left: adaptive per-step greedy vs SEM/OBL ratio growth "
      "(identical(0.7), m=8).\nRight (below): SUU-C gamma_factor ablation "
      "on a chain family with one hard job per chain.");

  util::Table t1({"n", "adaptive-greedy", "suu-i-sem", "suu-i-obl"});
  for (const int n : {8, 16, 32, 64, 128, 256}) {
    util::Rng rng(seed + static_cast<std::uint64_t>(n));
    core::Instance inst = core::make_independent(
        n, 8, core::MachineModel::identical(0.7), rng);
    rounding::Lp1Options lp1;
    lp1.simplex_size_limit = 600;
    const algos::LowerBound lb = algos::lower_bound_independent(inst, lp1);
    auto pre_obl = algos::SuuIOblPolicy::precompute(inst, lp1);
    auto pre_sem = algos::SuuISemPolicy::precompute_round1(inst, lp1);

    const auto ag = bench::measure(
        inst,
        [] { return std::make_unique<algos::AdaptiveGreedyPolicy>(); },
        lb.value, reps, seed + 1);
    const auto sem = bench::measure(
        inst,
        [pre_sem, lp1] {
          algos::SuuISemPolicy::Config cfg;
          cfg.lp1 = lp1;
          cfg.round1 = pre_sem;
          return std::make_unique<algos::SuuISemPolicy>(std::move(cfg));
        },
        lb.value, reps, seed + 2);
    const auto obl = bench::measure(
        inst,
        [pre_obl] { return std::make_unique<algos::SuuIOblPolicy>(pre_obl); },
        lb.value, reps, seed + 3);
    t1.add_row({std::to_string(n), util::fmt_pm(ag.ratio, ag.ci, 2),
                util::fmt_pm(sem.ratio, sem.ci, 2),
                util::fmt_pm(obl.ratio, obl.ci, 2)});
  }
  t1.print(std::cout);

  std::cout << "\nSUU-C gamma_factor ablation (chains with one hard job "
               "each; ratio = E[T]/LB):\n\n";
  // Chain family where each chain has one near-hopeless job, so the
  // long-job machinery matters.
  const int n_chains = 6, len = 4, m = 3;
  std::vector<double> q;
  for (int c = 0; c < n_chains; ++c) {
    for (int k = 0; k < len; ++k) {
      for (int i = 0; i < m; ++i) {
        q.push_back(k == 1 ? 0.995 : 0.4);  // second job of each chain hard
      }
    }
  }
  core::Instance inst(n_chains * len, m, std::move(q),
                      core::make_chain_dag(
                          std::vector<int>(n_chains, len)));
  const auto chains = inst.dag().chains();
  const algos::LowerBound lb = algos::lower_bound_chains(inst, chains);
  auto lp2 = algos::SuuCPolicy::precompute(inst, chains);

  util::Table t2({"gamma_factor", "E[T]/LB", "mean batches",
                  "mean supersteps"});
  for (const double gf : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    util::OnlineStats ratio, batches, supersteps;
    for (int r = 0; r < reps; ++r) {
      algos::SuuCPolicy::Config cfg;
      cfg.lp2 = lp2;
      cfg.gamma_factor = gf;
      algos::SuuCPolicy policy(std::move(cfg));
      sim::ExecConfig ec;
      ec.seed = util::Rng(seed + 77).child(
          static_cast<std::uint64_t>(r)).next();
      ec.strict_eligibility = true;
      const sim::ExecResult res = sim::execute(inst, policy, ec);
      if (res.capped) continue;
      ratio.add(static_cast<double>(res.makespan) / lb.value);
      batches.add(policy.batches_run());
      supersteps.add(static_cast<double>(policy.supersteps()));
    }
    t2.add_row({util::fmt(gf, 2),
                util::fmt_pm(ratio.mean(), ratio.ci95_half(), 2),
                util::fmt(batches.mean(), 2),
                util::fmt(supersteps.mean(), 1)});
  }
  t2.print(std::cout);
  return 0;
}
