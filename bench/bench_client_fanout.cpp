// PERF — ShardCoordinator fan-out: wall-clock speedup from spreading one
// estimate's shards over N local suu_serve backends, and the recovery
// latency when a backend dies mid-run.
//
// Scenarios: N = 1 (the baseline every speedup is measured against),
// N = 2, N = 3, and N = 3 with backend 0 armed to crash after two reply
// lines (service/fault.hpp) — the "kill-one" scenario, whose recovery_ms
// column is the headline metric: max over shards of first-failure ->
// final-success. Every scenario also byte-checks the merged result
// against an in-process reference, so a bench run doubles as a
// correctness sweep (bytes_ok column).
//
// Results print as a table and are recorded to BENCH_client_fanout.json
// (JSON lines via util::Table::print_json).
//
// Speedup is bounded by physical cores: the backends are separate
// processes on THIS machine, so speedup_vs_1 tops out near
// min(backends, cores). On a single-core box expect ~1.0 (the bench then
// measures fan-out overhead + recovery, which is still the point).
//
//   ./bench_client_fanout --serve-bin=./suu_serve [--reps=600] [--shards=8]
//                         [--out=BENCH_client_fanout.json]
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "client/coordinator.hpp"
#include "client/spawn.hpp"
#include "core/generators.hpp"
#include "core/io.hpp"
#include "obs/metrics.hpp"
#include "service/engine.hpp"
#include "service/json.hpp"
#include "service/transport.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace suu;

namespace {

struct Scenario {
  std::string name;
  int backends = 1;
  std::string fault;  ///< applied to backend 0
};

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const std::string serve_bin = args.get_string("serve-bin", "./suu_serve");
  const int reps = static_cast<int>(args.get_int("reps", 600));
  const int shards = static_cast<int>(args.get_int("shards", 8));
  const std::string out_path =
      args.get_string("out", "BENCH_client_fanout.json");

  // A moderately heavy instance, so per-shard work dominates the wire.
  util::Rng rng(42);
  const core::Instance instance = core::make_independent(
      24, 6, core::MachineModel::uniform(0.3, 0.95), rng);
  std::ostringstream inst_os;
  core::write_instance(inst_os, instance);

  client::EstimateJob job;
  job.instance_text = inst_os.str();
  job.seed = 5;
  job.replications = reps;
  job.lower_bound = true;

  // Reference result bytes, computed in process.
  std::string ref_result;
  {
    service::Engine engine;
    std::string req =
        R"({"id":1,"method":"estimate","params":{"instance":)";
    service::json_append_quoted(req, job.instance_text);
    req += ",\"solver\":\"auto\",\"seed\":5,\"replications\":" +
           std::to_string(reps) + ",\"lower_bound\":true}}";
    ref_result = client::extract_object(engine.handle(req), "result");
  }

  const std::vector<Scenario> scenarios = {
      {"fanout-1", 1, ""},
      {"fanout-2", 2, ""},
      {"fanout-3", 3, ""},
      {"fanout-3-kill-one", 3, "exit_after_lines=2"},
  };

  util::Table table({"scenario", "backends", "shards", "reps", "seconds",
                     "speedup_vs_1", "rtt_p50_ms", "rtt_p99_ms",
                     "recovery_ms", "failovers", "probes", "bytes_ok"});
  double baseline_secs = 0.0;
  bool all_ok = true;
  for (const Scenario& sc : scenarios) {
    // Per-scenario shard round-trip percentiles come from the
    // coordinator's obs histogram; reset so rows don't bleed together.
    obs::Registry::global().reset_all();
    std::vector<client::LocalDaemon> daemons;
    std::vector<client::Backend> pool;
    for (int b = 0; b < sc.backends; ++b) {
      daemons.emplace_back(serve_bin, b == 0 ? sc.fault : "");
      if (!daemons.back().ok()) {
        std::cerr << "bench_client_fanout: failed to spawn " << serve_bin
                  << "\n";
        return 1;
      }
      pool.push_back(client::Backend{daemons.back().port()});
    }
    client::FanoutOptions opt;
    opt.shards = shards;
    opt.request_timeout_ms = 120000;
    opt.backoff.base_ms = 5;
    opt.backoff.max_ms = 50;
    client::ShardCoordinator coordinator(pool, opt);

    const auto t0 = std::chrono::steady_clock::now();
    const client::FanoutResult res = coordinator.run(job);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    if (sc.name == "fanout-1") baseline_secs = secs;

    const bool bytes_ok = res.ok && res.result_json == ref_result;
    all_ok = all_ok && bytes_ok;
    double rtt_p50_ms = 0.0, rtt_p99_ms = 0.0;
    if (const obs::Histogram* h = obs::Registry::global().find_histogram(
            "suu_fanout_shard_rtt_us")) {
      const obs::Histogram::Snapshot snap = h->snapshot();
      rtt_p50_ms = static_cast<double>(snap.quantile(0.50)) / 1000.0;
      rtt_p99_ms = static_cast<double>(snap.quantile(0.99)) / 1000.0;
    }
    table.add_row(
        {sc.name, std::to_string(sc.backends), std::to_string(shards),
         std::to_string(reps), util::fmt(secs, 4),
         baseline_secs > 0.0 ? util::fmt(baseline_secs / secs, 3) : "-",
         util::fmt(rtt_p50_ms, 3), util::fmt(rtt_p99_ms, 3),
         res.recovery_ms >= 0 ? util::fmt(res.recovery_ms, 2) : "-",
         std::to_string(res.failovers), std::to_string(res.probes),
         bytes_ok ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::ofstream os(out_path);
  if (!os.good()) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  table.print_json(os);
  std::cout << "\nrecorded " << out_path << "\n";
  return all_ok ? 0 : 1;
}
