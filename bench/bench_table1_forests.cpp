// T1-F — Table 1, row "Directed forests":
//   previous O(log m log^2 n log(n+m)/loglog(n+m)) [11] vs this paper's
//   O(log(n+m) log n loglog min{m,n}) SUU-T (Theorem 12).
//
// Also verifies the structural half of the bound: the heavy-path
// decomposition uses at most floor(log2 n)+1 blocks.
#include "bench_common.hpp"

#include "algos/baselines.hpp"
#include "algos/suu_t.hpp"
#include "chains/decomposition.hpp"

using namespace suu;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int reps = static_cast<int>(args.get_int("reps", 40));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3));

  bench::print_header(
      "T1-F: Table 1 row 'Directed forests'",
      "Paper: Thm 12 via O(log n) blocks of disjoint chains. Ratios are "
      "E[T]/LB;\nblocks column must respect floor(log2 n)+1; the normalized "
      "column should stay bounded.");

  util::Table table({"kind", "n", "m", "blocks", "log-bound", "round-robin",
                     "suu-t", "suu-t/(log n log(n+m))"});
  struct Size {
    int n, m;
    bool out;
  };
  for (const Size sz : std::vector<Size>{{12, 3, true},
                                         {24, 4, true},
                                         {48, 6, true},
                                         {24, 4, false},
                                         {48, 6, false}}) {
    util::Rng rng(seed + static_cast<std::uint64_t>(sz.n) +
                  (sz.out ? 0 : 1000));
    core::Instance inst =
        sz.out ? core::make_out_forest(sz.n, sz.m, 0.15, 3,
                                       core::MachineModel::uniform(0.3, 0.9),
                                       rng)
               : core::make_in_forest(sz.n, sz.m, 0.15, 3,
                                      core::MachineModel::uniform(0.3, 0.9),
                                      rng);
    auto cache = algos::SuuTPolicy::precompute(inst);
    std::vector<std::vector<int>> all_chains;
    for (const auto& b : cache->decomp.blocks) {
      all_chains.insert(all_chains.end(), b.begin(), b.end());
    }
    const algos::LowerBound lb = algos::lower_bound_chains(inst, all_chains);

    const auto rr = bench::measure(
        inst, [] { return std::make_unique<algos::RoundRobinPolicy>(); },
        lb.value, reps, seed + 1, /*strict=*/true);
    const auto st = bench::measure(
        inst,
        [cache] {
          return std::make_unique<algos::SuuTPolicy>(
              algos::SuuCPolicy::Config{}, cache);
        },
        lb.value, reps, seed + 2, /*strict=*/true);

    const double norm = bench::lg(sz.n) * bench::lg(sz.n + sz.m);
    table.add_row({sz.out ? "out-forest" : "in-forest",
                   std::to_string(sz.n), std::to_string(sz.m),
                   std::to_string(cache->decomp.num_blocks()),
                   std::to_string(static_cast<int>(
                       std::floor(std::log2(sz.n))) + 1),
                   util::fmt_pm(rr.ratio, rr.ci, 2),
                   util::fmt_pm(st.ratio, st.ci, 2),
                   util::fmt(st.ratio / norm, 3)});
  }
  table.print(std::cout);
  return 0;
}
