// T1-F — Table 1, row "Directed forests":
//   previous O(log m log^2 n log(n+m)/loglog(n+m)) [11] vs this paper's
//   O(log(n+m) log n loglog min{m,n}) SUU-T (Theorem 12).
//
// Also verifies the structural half of the bound: the heavy-path
// decomposition uses at most floor(log2 n)+1 blocks.
#include "bench_common.hpp"

#include "chains/decomposition.hpp"

using namespace suu;

int main(int argc, char** argv) {
  const bench::Harness h(argc, argv, /*reps=*/40, /*seed=*/3);

  bench::print_header(
      "T1-F: Table 1 row 'Directed forests'",
      "Paper: Thm 12 via O(log n) blocks of disjoint chains. Ratios are "
      "E[T]/LB;\nblocks column must respect floor(log2 n)+1; the normalized "
      "column should stay bounded.");

  struct Size {
    int n, m;
    bool out;
  };
  const std::vector<Size> sizes = {
      {12, 3, true}, {24, 4, true}, {48, 6, true}, {24, 4, false},
      {48, 6, false}};

  api::ExperimentRunner runner(h.runner_options());
  runner.options().strict_eligibility = true;
  std::vector<int> block_counts;
  std::vector<std::pair<std::string, std::shared_ptr<const core::Instance>>>
      instances;
  for (const Size sz : sizes) {
    util::Rng rng(h.seed + static_cast<std::uint64_t>(sz.n) +
                  (sz.out ? 0 : 1000));
    auto inst = std::make_shared<const core::Instance>(
        sz.out ? core::make_out_forest(sz.n, sz.m, 0.15, 3,
                                       core::MachineModel::uniform(0.3, 0.9),
                                       rng)
               : core::make_in_forest(sz.n, sz.m, 0.15, 3,
                                      core::MachineModel::uniform(0.3, 0.9),
                                      rng));
    block_counts.push_back(
        chains::decompose_forest(inst->dag()).num_blocks());
    instances.emplace_back(std::string(sz.out ? "out" : "in") + "-forest n=" +
                               std::to_string(sz.n),
                           std::move(inst));
  }
  // "auto" resolves to suu-t on forests.
  runner.add_grid(instances, {"round-robin", "auto"}, {},
                  /*auto_lower_bound=*/true);
  const auto& res = runner.run();

  util::Table table({"kind", "n", "m", "blocks", "log-bound", "round-robin",
                     "suu-t", "suu-t/(log n log(n+m))"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const Size sz = sizes[i];
    const api::CellResult& rr = res[2 * i];
    const api::CellResult& st = res[2 * i + 1];
    const double norm = bench::lg(sz.n) * bench::lg(sz.n + sz.m);
    table.add_row({sz.out ? "out-forest" : "in-forest", std::to_string(sz.n),
                   std::to_string(sz.m), std::to_string(block_counts[i]),
                   std::to_string(
                       static_cast<int>(std::floor(std::log2(sz.n))) + 1),
                   util::fmt_pm(rr.ratio, rr.ratio_ci, 2),
                   util::fmt_pm(st.ratio, st.ratio_ci, 2),
                   util::fmt(st.ratio / norm, 3)});
  }
  table.print(std::cout);
  h.maybe_json(runner);
  return 0;
}
