// F-RATIO — the paper's headline claim as a growth curve (Thm 3 vs Thm 4):
// on the identical-machines coupon-collector family the oblivious schedule
// pays a Theta(log n) repetition factor while SUU-I-SEM's doubling rounds
// cap it at O(log log n).
//
// Ablation (DESIGN.md §5): SUU-I-OBL *is* SUU-I-SEM with the doubling
// disabled (fixed L = 1/2 every round), so the obl column doubles as the
// no-doubling ablation. We report the ratio curves plus successive
// differences per doubling of n: logarithmic growth shows as a constant
// positive delta in the obl column; the sem deltas should shrink toward 0.
#include "bench_common.hpp"

#include "algos/suu_i.hpp"

using namespace suu;

int main(int argc, char** argv) {
  const bench::Harness h(argc, argv, /*reps=*/150, /*seed=*/4);
  const int m = static_cast<int>(h.args.get_int("m", 8));
  const double q = h.args.get_double("q", 0.7);

  bench::print_header(
      "F-RATIO: ratio growth, Thm 3 (log n) vs Thm 4 (log log n)",
      "identical(q)-machines family; ratio = E[T]/LB (Lemma 1). 'delta' = "
      "increase per doubling of n.\nExpect near-constant positive obl "
      "deltas (log growth) and shrinking sem deltas.");

  api::SolverOptions fast;
  fast.lp1.simplex_size_limit = 600;

  const std::vector<int> sizes = {8, 16, 32, 64, 128, 256, 512};
  api::ExperimentRunner runner(h.runner_options());
  std::vector<std::pair<std::string, std::shared_ptr<const core::Instance>>>
      instances;
  for (const int n : sizes) {
    util::Rng rng(h.seed + static_cast<std::uint64_t>(n));
    instances.emplace_back(
        "n=" + std::to_string(n),
        std::make_shared<const core::Instance>(core::make_independent(
            n, m, core::MachineModel::identical(q), rng)));
  }
  runner.add_grid(instances, {"suu-i-obl", "suu-i-sem"}, fast,
                  /*auto_lower_bound=*/true);
  const auto& res = runner.run();

  util::Table table({"n", "obl ratio", "obl delta", "sem ratio", "sem delta",
                     "sem rounds bound K"});
  double prev_obl = 0.0, prev_sem = 0.0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const api::CellResult& obl = res[2 * i];
    const api::CellResult& sem = res[2 * i + 1];
    table.add_row({std::to_string(sizes[i]),
                   util::fmt_pm(obl.ratio, obl.ratio_ci, 2),
                   i == 0 ? "-" : util::fmt(obl.ratio - prev_obl, 2),
                   util::fmt_pm(sem.ratio, sem.ratio_ci, 2),
                   i == 0 ? "-" : util::fmt(sem.ratio - prev_sem, 2),
                   std::to_string(algos::sem_round_bound(sizes[i], m))});
    prev_obl = obl.ratio;
    prev_sem = sem.ratio;
  }
  table.print(std::cout);
  h.maybe_json(runner);
  return 0;
}
