// F-RATIO — the paper's headline claim as a growth curve (Thm 3 vs Thm 4):
// on the identical-machines coupon-collector family the oblivious schedule
// pays a Theta(log n) repetition factor while SUU-I-SEM's doubling rounds
// cap it at O(log log n).
//
// Ablation (DESIGN.md §5): SUU-I-OBL *is* SUU-I-SEM with the doubling
// disabled (fixed L = 1/2 every round), so the obl column doubles as the
// no-doubling ablation. We report the ratio curves plus successive
// differences per doubling of n: logarithmic growth shows as a constant
// positive delta in the obl column; the sem deltas should shrink toward 0.
#include "bench_common.hpp"

#include "algos/baselines.hpp"
#include "algos/suu_i.hpp"

using namespace suu;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int reps = static_cast<int>(args.get_int("reps", 150));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 4));
  const int m = static_cast<int>(args.get_int("m", 8));
  const double q = args.get_double("q", 0.7);

  bench::print_header(
      "F-RATIO: ratio growth, Thm 3 (log n) vs Thm 4 (log log n)",
      "identical(q)-machines family; ratio = E[T]/LB (Lemma 1). 'delta' = "
      "increase per doubling of n.\nExpect near-constant positive obl "
      "deltas (log growth) and shrinking sem deltas.");

  util::Table table({"n", "obl ratio", "obl delta", "sem ratio", "sem delta",
                     "sem rounds bound K"});
  double prev_obl = 0.0, prev_sem = 0.0;
  bool first = true;
  for (const int n : {8, 16, 32, 64, 128, 256, 512}) {
    util::Rng rng(seed + static_cast<std::uint64_t>(n));
    core::Instance inst =
        core::make_independent(n, m, core::MachineModel::identical(q), rng);
    rounding::Lp1Options lp1;
    lp1.simplex_size_limit = 600;
    const algos::LowerBound lb = algos::lower_bound_independent(inst, lp1);

    auto pre_obl = algos::SuuIOblPolicy::precompute(inst, lp1);
    auto pre_sem = algos::SuuISemPolicy::precompute_round1(inst, lp1);
    const auto obl = bench::measure(
        inst,
        [pre_obl] { return std::make_unique<algos::SuuIOblPolicy>(pre_obl); },
        lb.value, reps, seed + 1);
    const auto sem = bench::measure(
        inst,
        [pre_sem, lp1] {
          algos::SuuISemPolicy::Config cfg;
          cfg.lp1 = lp1;
          cfg.round1 = pre_sem;
          return std::make_unique<algos::SuuISemPolicy>(std::move(cfg));
        },
        lb.value, reps, seed + 2);

    table.add_row({std::to_string(n), util::fmt_pm(obl.ratio, obl.ci, 2),
                   first ? "-" : util::fmt(obl.ratio - prev_obl, 2),
                   util::fmt_pm(sem.ratio, sem.ci, 2),
                   first ? "-" : util::fmt(sem.ratio - prev_sem, 2),
                   std::to_string(algos::sem_round_bound(n, m))});
    prev_obl = obl.ratio;
    prev_sem = sem.ratio;
    first = false;
  }
  table.print(std::cout);
  return 0;
}
