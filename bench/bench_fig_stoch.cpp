// F-STOCH — Appendix C / Theorem 13: STC-I for R|pmtn, p_j~exp|E[Cmax].
//
// Per instance size we report E[T_STC-I] against the expected offline
// optimum (the Lawler–Labetoulle LP solved with the realized lengths — a
// valid per-draw lower bound on any policy) and against the sequential
// baseline, plus the round usage vs the K = ceil(loglog n)+3 bound.
#include "bench_common.hpp"

#include "stoch/instance.hpp"
#include "stoch/stc_i.hpp"

using namespace suu;

namespace {

stoch::StochInstance make_cluster(util::Rng& rng, int n, int m) {
  std::vector<double> lambda(static_cast<std::size_t>(n));
  std::vector<double> v(static_cast<std::size_t>(n) * m, 0.0);
  for (auto& l : lambda) l = 0.4 + rng.uniform01() * 1.6;
  for (int j = 0; j < n; ++j) {
    bool any = false;
    for (int i = 0; i < m; ++i) {
      if (rng.bernoulli(0.8)) {
        v[static_cast<std::size_t>(j) * m + i] = 0.2 + rng.uniform01();
        any = true;
      }
    }
    if (!any) v[static_cast<std::size_t>(j) * m] = 1.0;
  }
  return stoch::StochInstance(n, m, std::move(lambda), std::move(v));
}

}  // namespace

int main(int argc, char** argv) {
  // The stochastic substrate has its own batched runner
  // (stoch::estimate_stoch, continuous time, not the discrete engine), so
  // only the shared CLI conventions come from the api-based harness.
  const bench::Harness h(argc, argv, /*reps=*/150, /*seed=*/9);
  const int reps = h.reps;
  const std::uint64_t seed = h.seed;

  bench::print_header(
      "F-STOCH: STC-I (Thm 13) on R|pmtn, p~exp|E[Cmax]",
      "ratio = E[T_STC-I] / E[offline OPT]; K bound = ceil(loglog n)+3. "
      "Expect bounded ratios (near-flat in n)\nand clear wins over the "
      "sequential baseline once machines can parallelize. STC-R is the\n"
      "R|restart| variant (Appendix C 'Other results'): nonpreemptive "
      "rounds, progress discarded on overrun.");

  util::Table table({"n", "m", "STC-I/offline", "STC-R/offline",
                     "seq/offline", "K", "mean rounds", "tail%"});
  struct Size {
    int n, m;
  };
  for (const Size sz :
       std::vector<Size>{{4, 2}, {8, 3}, {12, 4}, {20, 4}, {28, 6}}) {
    util::Rng rng(seed + static_cast<std::uint64_t>(sz.n));
    const stoch::StochInstance inst = make_cluster(rng, sz.n, sz.m);
    const stoch::StochEstimate est =
        stoch::estimate_stoch(inst, reps, seed + 10);
    table.add_row({std::to_string(sz.n), std::to_string(sz.m),
                   util::fmt(est.stc_i.mean / est.offline.mean, 2),
                   util::fmt(est.stc_r.mean / est.offline.mean, 2),
                   util::fmt(est.sequential.mean / est.offline.mean, 2),
                   std::to_string(stoch::stc_round_bound(sz.n)),
                   util::fmt(est.mean_rounds, 2),
                   util::fmt(100.0 * est.tail_fraction, 1)});
  }
  table.print(std::cout);
  return 0;
}
