// PERF — suu::serve request throughput: cold-prepare vs cache-hit solve
// requests on LP1-shaped (independent) and LP2-shaped (chains) instances.
//
// "cold" requests reference pairwise-distinct instances, so every request
// pays the full untrusted parse + registry prepare (LP solve + rounding);
// "hit" requests repeat one instance, so after a warmup every request is a
// parse + fingerprint + PrecomputeCache hit — the steady state of a
// session-bound client re-querying its instance. The gap between the two
// rows is what the cache (and the single-flight layer above it) buys.
//
// Results print as a table and are recorded to BENCH_service_throughput.json
// (JSON lines via util::Table::print_json) alongside BENCH_perf_micro.json,
// so every run leaves a machine-readable perf trajectory record.
//
//   ./bench_service_throughput [--requests=200] [--workers=0] [--reps-warm=1]
//                              [--out=BENCH_service_throughput.json]
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/precompute_cache.hpp"
#include "core/generators.hpp"
#include "core/io.hpp"
#include "service/engine.hpp"
#include "service/json.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace suu;

namespace {

std::string solve_request(int id, const std::string& instance_text) {
  std::string out = "{\"id\":" + std::to_string(id) +
                    ",\"method\":\"solve\",\"params\":{\"instance\":";
  service::json_append_quoted(out, instance_text);
  out += "}}";
  return out;
}

std::string instance_text(const core::Instance& inst) {
  std::ostringstream os;
  core::write_instance(os, inst);
  return os.str();
}

core::Instance make_lp1(std::uint64_t seed) {
  util::Rng rng(seed);
  return core::make_independent(24, 6,
                                core::MachineModel::uniform(0.3, 0.95), rng);
}

core::Instance make_lp2(std::uint64_t seed) {
  util::Rng rng(seed);
  return core::make_chains(6, 3, 5, 6, core::MachineModel::uniform(0.3, 0.9),
                           rng);
}

struct Scenario {
  std::string family;   // lp1-indep | lp2-chains
  std::string variant;  // cold | hit
  std::vector<std::string> requests;
};

double run_scenario(const Scenario& sc, unsigned workers, double* ok_frac) {
  api::PrecomputeCache::global().clear();
  api::PrecomputeCache::global().reset_stats();
  service::Engine::Config cfg;
  cfg.workers = workers;
  cfg.queue_capacity = sc.requests.size() + 1;  // admission never the bottleneck
  service::Engine engine(cfg);

  if (sc.variant == "hit") {
    // One warmup request populates the cache outside the timed window.
    (void)engine.handle(sc.requests.front());
  }

  std::atomic<std::uint64_t> ok{0};
  const auto t0 = std::chrono::steady_clock::now();
  for (const std::string& req : sc.requests) {
    engine.submit(req, [&ok](std::string&& resp) {
      if (resp.find("\"ok\":true") != std::string::npos) ok.fetch_add(1);
    });
  }
  engine.drain();
  const auto t1 = std::chrono::steady_clock::now();
  *ok_frac = static_cast<double>(ok.load()) /
             static_cast<double>(sc.requests.size());
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int requests = static_cast<int>(args.get_int("requests", 200));
  const unsigned workers = static_cast<unsigned>(args.get_int("workers", 0));
  const std::string out_path =
      args.get_string("out", "BENCH_service_throughput.json");

  std::vector<Scenario> scenarios;
  for (const bool lp2 : {false, true}) {
    const std::string family = lp2 ? "lp2-chains" : "lp1-indep";
    Scenario cold{family, "cold", {}};
    Scenario hit{family, "hit", {}};
    const std::string hot =
        instance_text(lp2 ? make_lp2(1) : make_lp1(1));
    for (int i = 0; i < requests; ++i) {
      cold.requests.push_back(solve_request(
          i, instance_text(lp2 ? make_lp2(100 + i) : make_lp1(100 + i))));
      hit.requests.push_back(solve_request(i, hot));
    }
    scenarios.push_back(std::move(cold));
    scenarios.push_back(std::move(hit));
  }

  util::Table table({"family", "variant", "requests", "workers", "seconds",
                     "req_per_sec", "ok_frac", "cache_hits", "cache_misses"});
  for (const Scenario& sc : scenarios) {
    double ok_frac = 0.0;
    const double secs = run_scenario(sc, workers, &ok_frac);
    const api::PrecomputeCache::Stats cs =
        api::PrecomputeCache::global().stats();
    table.add_row({sc.family, sc.variant, std::to_string(sc.requests.size()),
                   std::to_string(workers),
                   util::fmt(secs, 4),
                   util::fmt(static_cast<double>(sc.requests.size()) / secs, 1),
                   util::fmt(ok_frac, 3), std::to_string(cs.hits),
                   std::to_string(cs.misses)});
  }
  table.print(std::cout);
  std::ofstream os(out_path);
  if (!os.good()) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  table.print_json(os);
  std::cout << "\nrecorded " << out_path << "\n";
  return 0;
}
