// PERF — suu::serve request throughput: cold-prepare vs cache-hit vs
// session-handle solve requests on LP1-shaped (independent) and LP2-shaped
// (chains) instances.
//
// "cold" requests reference pairwise-distinct instances, so every request
// pays the full untrusted parse + registry prepare (LP solve + rounding);
// "hit" requests repeat one inline instance, so after a warmup every
// request is a parse + fingerprint + PrecomputeCache hit; "handle"
// requests open the instance once (open_instance) and then reference it by
// session handle, so the steady state skips even the per-request
// instance parse — the payoff of the session layer. The vs_inline column
// is each variant's req/s relative to the family's "hit" row: the
// handle-reuse speedup over inline-instance re-parse that the acceptance
// bar asks BENCH_service_throughput.json to record.
//
// Results print as a table and are recorded to BENCH_service_throughput.json
// (JSON lines via util::Table::print_json) alongside BENCH_perf_micro.json,
// so every run leaves a machine-readable perf trajectory record.
//
//   ./bench_service_throughput [--requests=200] [--workers=0]
//                              [--out=BENCH_service_throughput.json]
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/precompute_cache.hpp"
#include "core/generators.hpp"
#include "core/io.hpp"
#include "obs/metrics.hpp"
#include "service/engine.hpp"
#include "service/json.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace suu;

namespace {

std::string solve_request(int id, const std::string& instance_text) {
  std::string out = "{\"id\":" + std::to_string(id) +
                    ",\"method\":\"solve\",\"params\":{\"instance\":";
  service::json_append_quoted(out, instance_text);
  out += "}}";
  return out;
}

std::string handle_solve_request(int id, std::uint64_t handle) {
  return "{\"id\":" + std::to_string(id) +
         ",\"method\":\"solve\",\"params\":{\"handle\":" +
         std::to_string(handle) + "}}";
}

std::string open_request(const std::string& instance_text) {
  std::string out = "{\"id\":0,\"method\":\"open_instance\",\"params\":"
                    "{\"instance\":";
  service::json_append_quoted(out, instance_text);
  out += "}}";
  return out;
}

std::string instance_text(const core::Instance& inst) {
  std::ostringstream os;
  core::write_instance(os, inst);
  return os.str();
}

core::Instance make_lp1(std::uint64_t seed) {
  util::Rng rng(seed);
  return core::make_independent(24, 6,
                                core::MachineModel::uniform(0.3, 0.95), rng);
}

core::Instance make_lp2(std::uint64_t seed) {
  util::Rng rng(seed);
  return core::make_chains(6, 3, 5, 6, core::MachineModel::uniform(0.3, 0.9),
                           rng);
}

struct Scenario {
  std::string family;   // lp1-indep | lp2-chains
  std::string variant;  // cold | hit | handle
  std::string setup;    // request run before the timed window (may be empty)
  std::vector<std::string> requests;
};

double run_scenario(const Scenario& sc, unsigned workers, double* ok_frac) {
  api::PrecomputeCache::global().clear();
  api::PrecomputeCache::global().reset_stats();
  // Per-scenario latency percentiles come from the obs request histogram;
  // reset it so each row reflects only its own timed window (plus the one
  // warmup request, a 1/N perturbation).
  obs::Registry::global().reset_all();
  service::Engine::Config cfg;
  cfg.workers = workers;
  cfg.queue_capacity = sc.requests.size() + 1;  // admission never the bottleneck
  service::Engine engine(cfg);

  if (!sc.setup.empty()) {
    (void)engine.handle(sc.setup);  // e.g. open_instance: handle 1
  }
  if (sc.variant != "cold") {
    // One warmup request populates the cache outside the timed window.
    (void)engine.handle(sc.requests.front());
  }

  std::atomic<std::uint64_t> ok{0};
  const auto t0 = std::chrono::steady_clock::now();
  for (const std::string& req : sc.requests) {
    engine.submit(req, [&ok](std::string&& resp, bool) {
      if (resp.find("\"ok\":true") != std::string::npos) ok.fetch_add(1);
    });
  }
  engine.drain();
  const auto t1 = std::chrono::steady_clock::now();
  *ok_frac = static_cast<double>(ok.load()) /
             static_cast<double>(sc.requests.size());
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int requests = static_cast<int>(args.get_int("requests", 200));
  const unsigned workers = static_cast<unsigned>(args.get_int("workers", 0));
  const std::string out_path =
      args.get_string("out", "BENCH_service_throughput.json");

  std::vector<Scenario> scenarios;
  for (const bool lp2 : {false, true}) {
    const std::string family = lp2 ? "lp2-chains" : "lp1-indep";
    Scenario cold{family, "cold", "", {}};
    Scenario hit{family, "hit", "", {}};
    const std::string hot = instance_text(lp2 ? make_lp2(1) : make_lp1(1));
    // A fresh engine assigns its first open_instance handle 1.
    Scenario handle{family, "handle", open_request(hot), {}};
    for (int i = 0; i < requests; ++i) {
      cold.requests.push_back(solve_request(
          i, instance_text(lp2 ? make_lp2(100 + i) : make_lp1(100 + i))));
      hit.requests.push_back(solve_request(i, hot));
      handle.requests.push_back(handle_solve_request(i, 1));
    }
    scenarios.push_back(std::move(cold));
    scenarios.push_back(std::move(hit));
    scenarios.push_back(std::move(handle));
  }

  util::Table table({"family", "variant", "requests", "workers", "seconds",
                     "req_per_sec", "vs_inline", "p50_ms", "p99_ms",
                     "ok_frac", "cache_hits", "cache_misses"});
  double inline_rps = 0.0;  // the family's "hit" row, run just before
  for (const Scenario& sc : scenarios) {
    double ok_frac = 0.0;
    const double secs = run_scenario(sc, workers, &ok_frac);
    const double rps = static_cast<double>(sc.requests.size()) / secs;
    if (sc.variant == "cold") inline_rps = 0.0;  // new family; no hit row yet
    if (sc.variant == "hit") inline_rps = rps;
    const api::PrecomputeCache::Stats cs =
        api::PrecomputeCache::global().stats();
    // Per-request latency percentiles from the per-method histogram the
    // engine maintains anyway (docs/observability.md); all three variants
    // issue solve requests.
    double p50_ms = 0.0, p99_ms = 0.0;
    if (const obs::Histogram* h = obs::Registry::global().find_histogram(
            "suu_request_us{method=\"solve\"}")) {
      const obs::Histogram::Snapshot snap = h->snapshot();
      p50_ms = static_cast<double>(snap.quantile(0.50)) / 1000.0;
      p99_ms = static_cast<double>(snap.quantile(0.99)) / 1000.0;
    }
    table.add_row({sc.family, sc.variant, std::to_string(sc.requests.size()),
                   std::to_string(workers), util::fmt(secs, 4),
                   util::fmt(rps, 1),
                   inline_rps > 0.0 ? util::fmt(rps / inline_rps, 3) : "-",
                   util::fmt(p50_ms, 3), util::fmt(p99_ms, 3),
                   util::fmt(ok_frac, 3), std::to_string(cs.hits),
                   std::to_string(cs.misses)});
  }
  table.print(std::cout);
  std::ofstream os(out_path);
  if (!os.good()) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  table.print_json(os);
  std::cout << "\nrecorded " << out_path << "\n";
  return 0;
}
