// T1-C — Table 1, row "Disjoint chains":
//   previous O(log m log n log(n+m)/loglog(n+m)) [11] vs this paper's
//   O(log(n+m) log log min{m,n}) SUU-C (Theorem 9).
//
// We measure E[T]/LB for SUU-C against chain-respecting baselines over
// growing n+m, on a generic uniform family and on a sparse-capability
// family (each job runnable on a few machines only) where capability-blind
// baselines waste machine-steps.
#include "bench_common.hpp"

#include "algos/baselines.hpp"
#include "algos/suu_c.hpp"

using namespace suu;

namespace {

void run_family(const std::string& family, const core::MachineModel& model,
                int reps, std::uint64_t seed) {
  struct Size {
    int n_chains, len_lo, len_hi, m;
  };
  const std::vector<Size> sizes = {
      {3, 2, 4, 3}, {6, 2, 5, 4}, {10, 3, 6, 6}, {16, 3, 7, 8}};

  util::Table table({"family", "n", "m", "round-robin", "best-machine",
                     "suu-c", "suu-c/log(n+m)"});
  for (const auto& sz : sizes) {
    util::Rng rng(seed + static_cast<std::uint64_t>(sz.n_chains));
    core::Instance inst = core::make_chains(sz.n_chains, sz.len_lo,
                                            sz.len_hi, sz.m, model, rng);
    const int n = inst.num_jobs();
    const auto chains = inst.dag().chains();
    const algos::LowerBound lb = algos::lower_bound_chains(inst, chains);
    auto lp2 = algos::SuuCPolicy::precompute(inst, chains);

    const auto rr = bench::measure(
        inst, [] { return std::make_unique<algos::RoundRobinPolicy>(); },
        lb.value, reps, seed + 1, /*strict=*/true);
    const auto bm = bench::measure(
        inst, [] { return std::make_unique<algos::BestMachinePolicy>(); },
        lb.value, reps, seed + 2, /*strict=*/true);
    const auto sc = bench::measure(
        inst,
        [lp2] {
          algos::SuuCPolicy::Config cfg;
          cfg.lp2 = lp2;
          return std::make_unique<algos::SuuCPolicy>(std::move(cfg));
        },
        lb.value, reps, seed + 3, /*strict=*/true);

    table.add_row({family, std::to_string(n), std::to_string(sz.m),
                   util::fmt_pm(rr.ratio, rr.ci, 2),
                   util::fmt_pm(bm.ratio, bm.ci, 2),
                   util::fmt_pm(sc.ratio, sc.ci, 2),
                   util::fmt(sc.ratio / bench::lg(n + sz.m), 2)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int reps = static_cast<int>(args.get_int("reps", 60));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2));

  bench::print_header(
      "T1-C: Table 1 row 'Disjoint chains'",
      "Paper: O(log m log n log(n+m)/loglog(n+m)) [11] -> O(log(n+m) "
      "loglog min{m,n}) (Thm 9).\nRatios are E[T]/LB with LB = max(Lemma 1, "
      "LP2/2 per Lemma 5). The suu-c/log(n+m) column should stay bounded.");

  run_family("uniform(0.3,0.95)", core::MachineModel::uniform(0.3, 0.95),
             reps, seed);
  run_family("sparse(40%)", core::MachineModel::sparse(0.4, 0.2, 0.9), reps,
             seed + 50);
  return 0;
}
