// T1-C — Table 1, row "Disjoint chains":
//   previous O(log m log n log(n+m)/loglog(n+m)) [11] vs this paper's
//   O(log(n+m) log log min{m,n}) SUU-C (Theorem 9).
//
// We measure E[T]/LB for SUU-C against chain-respecting baselines over
// growing n+m, on a generic uniform family and on a sparse-capability
// family (each job runnable on a few machines only) where capability-blind
// baselines waste machine-steps.
#include "bench_common.hpp"

using namespace suu;

namespace {

const std::vector<std::string> kSolvers = {"round-robin", "best-machine",
                                           "suu-c"};

void run_family(const bench::Harness& h, const std::string& family,
                const core::MachineModel& model) {
  struct Size {
    int n_chains, len_lo, len_hi, m;
  };
  const std::vector<Size> sizes = {
      {3, 2, 4, 3}, {6, 2, 5, 4}, {10, 3, 6, 6}, {16, 3, 7, 8}};

  api::ExperimentRunner runner(h.runner_options());
  runner.options().strict_eligibility = true;
  std::vector<std::pair<std::string, std::shared_ptr<const core::Instance>>>
      instances;
  for (const auto& sz : sizes) {
    util::Rng rng(h.seed + static_cast<std::uint64_t>(sz.n_chains));
    instances.emplace_back(
        std::to_string(sz.n_chains) + " chains",
        std::make_shared<const core::Instance>(core::make_chains(
            sz.n_chains, sz.len_lo, sz.len_hi, sz.m, model, rng)));
  }
  runner.add_grid(instances, kSolvers, {}, /*auto_lower_bound=*/true);
  const auto& res = runner.run();

  util::Table table({"family", "n", "m", "round-robin", "best-machine",
                     "suu-c", "suu-c/log(n+m)"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const api::CellResult& rr = res[3 * i];
    const api::CellResult& bm = res[3 * i + 1];
    const api::CellResult& sc = res[3 * i + 2];
    table.add_row({family, std::to_string(rr.n), std::to_string(rr.m),
                   util::fmt_pm(rr.ratio, rr.ratio_ci, 2),
                   util::fmt_pm(bm.ratio, bm.ratio_ci, 2),
                   util::fmt_pm(sc.ratio, sc.ratio_ci, 2),
                   util::fmt(sc.ratio / bench::lg(sc.n + sc.m), 2)});
  }
  table.print(std::cout);
  std::cout << "\n";
  h.maybe_json(runner);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Harness h(argc, argv, /*reps=*/60, /*seed=*/2);

  bench::print_header(
      "T1-C: Table 1 row 'Disjoint chains'",
      "Paper: O(log m log n log(n+m)/loglog(n+m)) [11] -> O(log(n+m) "
      "loglog min{m,n}) (Thm 9).\nRatios are E[T]/LB with LB = max(Lemma 1, "
      "LP2/2 per Lemma 5). The suu-c/log(n+m) column should stay bounded.");

  run_family(h, "uniform(0.3,0.95)", core::MachineModel::uniform(0.3, 0.95));
  {
    bench::Harness shifted = h;
    shifted.seed += 50;
    run_family(shifted, "sparse(40%)",
               core::MachineModel::sparse(0.4, 0.2, 0.9));
  }
  return 0;
}
