// F-CONG — Theorem 7: delaying each chain's start by delta_k ~ U{0..H}
// drops pseudoschedule congestion to O(log(n+m)/loglog(n+m)) whp.
//
// We run SUU-C with and without random delays on families of many short
// identical chains (the congestion-adversarial case: undelayed chains all
// hammer the same machines in lockstep) and report mean/p95 peak
// congestion against the log(n+m)/loglog(n+m) reference curve.
#include "bench_common.hpp"

#include "algos/suu_c.hpp"

using namespace suu;

int main(int argc, char** argv) {
  const bench::Harness h(argc, argv, /*reps=*/40, /*seed=*/7);

  bench::print_header(
      "F-CONG: Theorem 7 random-delay congestion reduction",
      "Peak congestion (max jobs sharing one machine in a superstep), with "
      "vs without delays.\nReference: log(n+m)/loglog(n+m). Delayed "
      "congestion should track the reference; undelayed grows ~linearly "
      "with the chain count.");

  const std::vector<int> chain_counts = {8, 16, 32, 64};
  const int m = 4;

  api::ExperimentRunner runner(h.runner_options());
  runner.options().replications =
      static_cast<int>(h.args.get_int("runs", h.reps));
  runner.options().strict_eligibility = true;
  runner.options().skip_capped = true;

  const api::Metric peak{
      "peak congestion", [](const sim::Policy& p, const sim::ExecResult&) {
        return static_cast<double>(
            dynamic_cast<const algos::SuuCPolicy&>(p).max_congestion());
      }};

  for (const int n_chains : chain_counts) {
    util::Rng rng(h.seed + static_cast<std::uint64_t>(n_chains));
    auto inst = std::make_shared<const core::Instance>(core::make_chains(
        n_chains, 2, 3, m, core::MachineModel::identical(0.5), rng));
    for (const bool delays : {false, true}) {
      api::Cell cell;
      cell.instance_label = std::to_string(n_chains) + " chains";
      cell.instance = inst;
      cell.solver = "suu-c";
      cell.solver_opt.random_delays = delays;
      cell.metrics = {peak};
      runner.add(std::move(cell));
    }
  }
  const auto& res = runner.run();

  util::Table table({"chains", "n", "m", "no-delay mean", "no-delay p95",
                     "delay mean", "delay p95", "log/loglog ref"});
  for (std::size_t i = 0; i < chain_counts.size(); ++i) {
    const api::CellResult& without = res[2 * i];
    const api::CellResult& with = res[2 * i + 1];
    const util::Sampler& off = without.metric("peak congestion");
    const util::Sampler& on = with.metric("peak congestion");
    const double nm = without.n + m;
    table.add_row({std::to_string(chain_counts[i]),
                   std::to_string(without.n), std::to_string(m),
                   util::fmt(off.mean(), 1), util::fmt(off.quantile(0.95), 0),
                   util::fmt(on.mean(), 1), util::fmt(on.quantile(0.95), 0),
                   util::fmt(bench::lg(nm) / bench::lglg(nm), 1)});
  }
  table.print(std::cout);
  h.maybe_json(runner);
  return 0;
}
