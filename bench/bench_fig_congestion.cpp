// F-CONG — Theorem 7: delaying each chain's start by delta_k ~ U{0..H}
// drops pseudoschedule congestion to O(log(n+m)/loglog(n+m)) whp.
//
// We run SUU-C with and without random delays on families of many short
// identical chains (the congestion-adversarial case: undelayed chains all
// hammer the same machines in lockstep) and report mean/p95 peak
// congestion against the log(n+m)/loglog(n+m) reference curve.
#include "bench_common.hpp"

#include "algos/suu_c.hpp"

using namespace suu;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int runs = static_cast<int>(args.get_int("runs", 40));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  bench::print_header(
      "F-CONG: Theorem 7 random-delay congestion reduction",
      "Peak congestion (max jobs sharing one machine in a superstep), with "
      "vs without delays.\nReference: log(n+m)/loglog(n+m). Delayed "
      "congestion should track the reference; undelayed grows ~linearly "
      "with the chain count.");

  util::Table table({"chains", "n", "m", "no-delay mean", "no-delay p95",
                     "delay mean", "delay p95", "log/loglog ref"});
  for (const int n_chains : {8, 16, 32, 64}) {
    const int m = 4;
    util::Rng rng(seed + static_cast<std::uint64_t>(n_chains));
    core::Instance inst = core::make_chains(
        n_chains, 2, 3, m, core::MachineModel::identical(0.5), rng);
    const auto chains = inst.dag().chains();
    auto lp2 = algos::SuuCPolicy::precompute(inst, chains);

    auto collect = [&](bool delays) {
      util::Sampler peak;
      for (int r = 0; r < runs; ++r) {
        algos::SuuCPolicy::Config cfg;
        cfg.lp2 = lp2;
        cfg.random_delays = delays;
        algos::SuuCPolicy policy(std::move(cfg));
        sim::ExecConfig ec;
        ec.seed =
            util::Rng(seed + (delays ? 1 : 2)).child(
                static_cast<std::uint64_t>(r)).next();
        ec.strict_eligibility = true;
        const sim::ExecResult res = sim::execute(inst, policy, ec);
        if (!res.capped) peak.add(policy.max_congestion());
      }
      return peak;
    };

    const util::Sampler without = collect(false);
    const util::Sampler with = collect(true);
    const double nm = inst.num_jobs() + m;
    table.add_row({std::to_string(n_chains),
                   std::to_string(inst.num_jobs()), std::to_string(m),
                   util::fmt(without.mean(), 1),
                   util::fmt(without.quantile(0.95), 0),
                   util::fmt(with.mean(), 1),
                   util::fmt(with.quantile(0.95), 0),
                   util::fmt(bench::lg(nm) / bench::lglg(nm), 1)});
  }
  table.print(std::cout);
  return 0;
}
