// F-ROUNDS — Theorem 4 mechanics: SUU-I-SEM finishes within
// K = ceil(log log min{m,n}) + 3 doubling rounds except with small
// probability, and the two fallbacks (sequential for n <= m; repeat
// Sigma_K for m < n) almost never fire.
//
// We run many executions per instance family and report the empirical
// distribution of rounds used, the bound K, and the fallback frequency.
#include "bench_common.hpp"

#include "algos/suu_i.hpp"

using namespace suu;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int runs = static_cast<int>(args.get_int("runs", 300));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 5));

  bench::print_header(
      "F-ROUNDS: SUU-I-SEM round usage vs the K bound (Thm 4)",
      "Per family: empirical distribution of rounds used across executions; "
      "fallback = fraction of runs\nthat exhausted K rounds (paper bounds "
      "the conditional cost; expect rare).");

  util::Table table({"family", "n", "m", "K", "mean rounds", "p95 rounds",
                     "max", "fallback%"});
  struct Case {
    std::string family;
    int n, m;
    core::MachineModel model;
  };
  const std::vector<Case> cases = {
      {"identical(0.7)", 64, 8, core::MachineModel::identical(0.7)},
      {"identical(0.9)", 64, 8, core::MachineModel::identical(0.9)},
      {"uniform", 64, 8, core::MachineModel::uniform(0.3, 0.95)},
      {"classes", 48, 16, core::MachineModel::classes()},
      {"sparse", 48, 12, core::MachineModel::sparse(0.3, 0.3, 0.9)},
      {"n<=m gang", 6, 12, core::MachineModel::uniform(0.6, 0.99)},
  };
  for (const auto& c : cases) {
    util::Rng rng(seed + static_cast<std::uint64_t>(c.n * 31 + c.m));
    core::Instance inst = core::make_independent(c.n, c.m, c.model, rng);
    rounding::Lp1Options lp1;
    lp1.simplex_size_limit = 600;
    auto pre = algos::SuuISemPolicy::precompute_round1(inst, lp1);

    util::Sampler rounds;
    int fallbacks = 0;
    for (int r = 0; r < runs; ++r) {
      algos::SuuISemPolicy::Config cfg;
      cfg.lp1 = lp1;
      cfg.round1 = pre;
      algos::SuuISemPolicy policy(std::move(cfg));
      sim::ExecConfig ec;
      ec.seed = util::Rng(seed).child(static_cast<std::uint64_t>(r)).next();
      const sim::ExecResult res = sim::execute(inst, policy, ec);
      if (res.capped) continue;
      rounds.add(policy.rounds_used());
      fallbacks += policy.in_fallback() ? 1 : 0;
    }
    table.add_row({c.family, std::to_string(c.n), std::to_string(c.m),
                   std::to_string(algos::sem_round_bound(c.n, c.m)),
                   util::fmt(rounds.mean(), 2),
                   util::fmt(rounds.quantile(0.95), 0),
                   util::fmt(rounds.quantile(1.0), 0),
                   util::fmt(100.0 * fallbacks / runs, 1)});
  }
  table.print(std::cout);
  return 0;
}
