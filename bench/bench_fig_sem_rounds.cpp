// F-ROUNDS — Theorem 4 mechanics: SUU-I-SEM finishes within
// K = ceil(log log min{m,n}) + 3 doubling rounds except with small
// probability, and the two fallbacks (sequential for n <= m; repeat
// Sigma_K for m < n) almost never fire.
//
// We run many executions per instance family and report the empirical
// distribution of rounds used, the bound K, and the fallback frequency.
#include "bench_common.hpp"

#include "algos/suu_i.hpp"

using namespace suu;

int main(int argc, char** argv) {
  const bench::Harness h(argc, argv, /*reps=*/300, /*seed=*/5);

  bench::print_header(
      "F-ROUNDS: SUU-I-SEM round usage vs the K bound (Thm 4)",
      "Per family: empirical distribution of rounds used across executions; "
      "fallback = fraction of runs\nthat exhausted K rounds (paper bounds "
      "the conditional cost; expect rare).");

  struct Case {
    std::string family;
    int n, m;
    core::MachineModel model;
  };
  const std::vector<Case> cases = {
      {"identical(0.7)", 64, 8, core::MachineModel::identical(0.7)},
      {"identical(0.9)", 64, 8, core::MachineModel::identical(0.9)},
      {"uniform", 64, 8, core::MachineModel::uniform(0.3, 0.95)},
      {"classes", 48, 16, core::MachineModel::classes()},
      {"sparse", 48, 12, core::MachineModel::sparse(0.3, 0.3, 0.9)},
      {"n<=m gang", 6, 12, core::MachineModel::uniform(0.6, 0.99)},
  };

  api::SolverOptions fast;
  fast.lp1.simplex_size_limit = 600;

  api::ExperimentRunner runner(h.runner_options());
  runner.options().replications =
      static_cast<int>(h.args.get_int("runs", h.reps));
  runner.options().skip_capped = true;
  for (const auto& c : cases) {
    util::Rng rng(h.seed + static_cast<std::uint64_t>(c.n * 31 + c.m));
    auto inst = std::make_shared<const core::Instance>(
        core::make_independent(c.n, c.m, c.model, rng));
    api::Cell cell;
    cell.instance_label = c.family;
    cell.instance = inst;
    cell.solver = "suu-i-sem";
    cell.solver_opt = fast;
    cell.metrics = {
        {"rounds",
         [](const sim::Policy& p, const sim::ExecResult&) {
           return static_cast<double>(
               dynamic_cast<const algos::SuuISemPolicy&>(p).rounds_used());
         }},
        {"fallback",
         [](const sim::Policy& p, const sim::ExecResult&) {
           return dynamic_cast<const algos::SuuISemPolicy&>(p).in_fallback()
                      ? 1.0
                      : 0.0;
         }}};
    runner.add(std::move(cell));
  }
  const auto& res = runner.run();

  util::Table table({"family", "n", "m", "K", "mean rounds", "p95 rounds",
                     "max", "fallback%"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const api::CellResult& r = res[i];
    const util::Sampler& rounds = r.metric("rounds");
    table.add_row({cases[i].family, std::to_string(r.n), std::to_string(r.m),
                   std::to_string(algos::sem_round_bound(r.n, r.m)),
                   util::fmt(rounds.mean(), 2),
                   util::fmt(rounds.quantile(0.95), 0),
                   util::fmt(rounds.quantile(1.0), 0),
                   util::fmt(100.0 * r.metric("fallback").mean(), 1)});
  }
  table.print(std::cout);
  h.maybe_json(runner);
  return 0;
}
