// PERF — suu::serve connection-concurrency scaling through the epoll
// transport: N simultaneous TCP connections, each issuing a closed loop of
// requests, against one TcpServer (EventLoop-multiplexed).
//
// The client side is itself a single-threaded epoll loop (nonblocking
// connect/write/read state machine per connection), so thousands of
// concurrent connections cost the driver thousands of fds, not thousands
// of threads — the same scalability claim the server makes.
//
// Every reply is validated byte-for-byte against Engine::handle() for the
// same request line: the epoll transport must preserve the engine's
// determinism invariant under full multiplexing pressure, and the
// `mismatched_replies` counter records the result (0 or the run is
// broken). Per-request latency is measured send-to-final-newline and
// reported as p50/p99 alongside aggregate req/s.
//
// Output: a human table on stdout plus google-benchmark-shaped JSON
// (entries named "ServiceConcurrency/<N>") written to
// BENCH_service_concurrency.json, so tools/compare_bench.py can gate both
// wall time (loose ratio — wall time is runner-dependent) and
// mismatched_replies (zero baseline: any nonzero candidate fails).
//
//   ./bench_service_concurrency [--connections=64,1000]
//                               [--requests-per-conn=20] [--workers=0]
//                               [--out=BENCH_service_concurrency.json]
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/generators.hpp"
#include "core/io.hpp"
#include "service/engine.hpp"
#include "service/json.hpp"
#include "service/transport.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace suu;

namespace {

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string instance_text(const core::Instance& inst) {
  std::ostringstream os;
  core::write_instance(os, inst);
  return os.str();
}

/// One benchmark connection's closed-loop state machine.
struct ClientConn {
  int fd = -1;
  bool connected = false;
  int sent = 0;       ///< requests whose bytes have started going out
  int done = 0;       ///< replies fully received and validated
  std::string outbuf; ///< unwritten remainder of the in-flight request
  std::string inbuf;
  std::int64_t t_send_us = 0;
  bool failed = false;
};

struct DriveResult {
  double seconds = 0.0;
  std::vector<std::uint64_t> latencies_us;
  std::uint64_t mismatched = 0;
  std::uint64_t transport_failures = 0;
};

/// Drive `conns` concurrent connections, each issuing `per_conn` requests
/// closed-loop (next request only after the previous reply), validating
/// every reply line against `expected`. Requests/expected are parallel
/// arrays of framed lines; connection c's j-th exchange uses index
/// j % requests.size().
DriveResult drive(std::uint16_t port, int conns, int per_conn,
                  const std::vector<std::string>& requests,
                  const std::vector<std::string>& expected) {
  DriveResult out;
  out.latencies_us.reserve(
      static_cast<std::size_t>(conns) * static_cast<std::size_t>(per_conn));

  const int ep = ::epoll_create1(EPOLL_CLOEXEC);
  if (ep < 0) {
    std::cerr << "epoll_create1 failed: " << std::strerror(errno) << "\n";
    out.transport_failures = static_cast<std::uint64_t>(conns);
    return out;
  }

  std::vector<ClientConn> cs(static_cast<std::size_t>(conns));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);

  auto arm = [&](int idx, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.u32 = static_cast<std::uint32_t>(idx);
    ::epoll_ctl(ep, EPOLL_CTL_MOD, cs[static_cast<std::size_t>(idx)].fd, &ev);
  };

  int finished = 0;
  auto finish = [&](int idx, bool failure) {
    ClientConn& c = cs[static_cast<std::size_t>(idx)];
    if (c.fd < 0) return;
    if (failure) {
      c.failed = true;
      ++out.transport_failures;
    }
    ::epoll_ctl(ep, EPOLL_CTL_DEL, c.fd, nullptr);
    ::close(c.fd);
    c.fd = -1;
    ++finished;
  };

  // Writes as much of the in-flight request as the socket takes; arms
  // EPOLLOUT only when the kernel pushes back.
  auto pump_write = [&](int idx) {
    ClientConn& c = cs[static_cast<std::size_t>(idx)];
    while (!c.outbuf.empty()) {
      const ssize_t w = ::send(c.fd, c.outbuf.data(), c.outbuf.size(),
                               MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          arm(idx, EPOLLOUT | EPOLLIN);
          return;
        }
        finish(idx, true);
        return;
      }
      c.outbuf.erase(0, static_cast<std::size_t>(w));
    }
    arm(idx, EPOLLIN);
  };

  auto start_request = [&](int idx) {
    ClientConn& c = cs[static_cast<std::size_t>(idx)];
    c.outbuf = requests[static_cast<std::size_t>(c.sent) % requests.size()];
    c.t_send_us = now_us();
    ++c.sent;
    pump_write(idx);
  };

  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < conns; ++i) {
    ClientConn& c = cs[static_cast<std::size_t>(i)];
    c.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (c.fd < 0) {
      std::cerr << "socket() failed at connection " << i << ": "
                << std::strerror(errno) << "\n";
      ++out.transport_failures;
      ++finished;
      continue;
    }
    const int r =
        ::connect(c.fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    epoll_event ev{};
    ev.data.u32 = static_cast<std::uint32_t>(i);
    if (r == 0) {
      c.connected = true;
      ev.events = EPOLLIN;
      ::epoll_ctl(ep, EPOLL_CTL_ADD, c.fd, &ev);
      start_request(i);
    } else if (errno == EINPROGRESS) {
      ev.events = EPOLLOUT;  // connect completion
      ::epoll_ctl(ep, EPOLL_CTL_ADD, c.fd, &ev);
    } else {
      ::close(c.fd);
      c.fd = -1;
      ++out.transport_failures;
      ++finished;
    }
  }

  const auto deadline = t0 + std::chrono::seconds(300);
  std::vector<epoll_event> evs(256);
  while (finished < conns) {
    if (std::chrono::steady_clock::now() > deadline) {
      std::cerr << "bench deadline exceeded with " << (conns - finished)
                << " connections unfinished\n";
      for (int i = 0; i < conns; ++i) {
        if (cs[static_cast<std::size_t>(i)].fd >= 0) finish(i, true);
      }
      break;
    }
    const int n = ::epoll_wait(ep, evs.data(),
                               static_cast<int>(evs.size()), 1000);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int e = 0; e < n; ++e) {
      const int idx = static_cast<int>(evs[e].data.u32);
      ClientConn& c = cs[static_cast<std::size_t>(idx)];
      if (c.fd < 0) continue;
      if (evs[e].events & (EPOLLERR | EPOLLHUP)) {
        finish(idx, true);
        continue;
      }
      if (evs[e].events & EPOLLOUT) {
        if (!c.connected) {
          int err = 0;
          socklen_t len = sizeof err;
          ::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len);
          if (err != 0) {
            finish(idx, true);
            continue;
          }
          c.connected = true;
          arm(idx, EPOLLIN);
          start_request(idx);
          continue;
        }
        pump_write(idx);
        if (c.fd < 0) continue;
      }
      if (evs[e].events & EPOLLIN) {
        char buf[8192];
        for (;;) {
          const ssize_t r = ::read(c.fd, buf, sizeof buf);
          if (r < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            finish(idx, true);
            break;
          }
          if (r == 0) {  // server closed under us: incomplete run
            finish(idx, c.done < per_conn);
            break;
          }
          c.inbuf.append(buf, static_cast<std::size_t>(r));
          std::size_t nl;
          while (c.fd >= 0 &&
                 (nl = c.inbuf.find('\n')) != std::string::npos) {
            const std::string line = c.inbuf.substr(0, nl + 1);
            c.inbuf.erase(0, nl + 1);
            out.latencies_us.push_back(static_cast<std::uint64_t>(
                now_us() - c.t_send_us));
            const std::string& want =
                expected[static_cast<std::size_t>(c.done) % expected.size()];
            if (line != want) ++out.mismatched;
            ++c.done;
            if (c.done >= per_conn) {
              finish(idx, false);
            } else {
              start_request(idx);
            }
          }
          if (c.fd < 0) break;
        }
      }
    }
  }
  out.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  ::close(ep);
  return out;
}

double quantile_ms(std::vector<std::uint64_t>& lat_us, double q) {
  if (lat_us.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(lat_us.size() - 1) + 0.5);
  std::nth_element(lat_us.begin(),
                   lat_us.begin() + static_cast<std::ptrdiff_t>(idx),
                   lat_us.end());
  return static_cast<double>(lat_us[idx]) / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const std::string conn_list = args.get_string("connections", "64,1000");
  const int per_conn =
      static_cast<int>(args.get_int("requests-per-conn", 20));
  const unsigned workers = static_cast<unsigned>(args.get_int("workers", 0));
  const std::string out_path =
      args.get_string("out", "BENCH_service_concurrency.json");

  std::signal(SIGPIPE, SIG_IGN);

  std::vector<int> conn_counts;
  {
    std::istringstream ss(conn_list);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      if (!tok.empty()) conn_counts.push_back(std::stoi(tok));
    }
  }
  int max_conns = 0;
  for (const int c : conn_counts) max_conns = std::max(max_conns, c);

  // Each connection holds one client fd here plus one server fd in the
  // loop; ask for headroom rather than dying on a conservative default.
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) == 0) {
    const rlim_t want =
        static_cast<rlim_t>(max_conns) * 2 + 256;
    if (rl.rlim_cur < want && want <= rl.rlim_max) {
      rl.rlim_cur = want;
      ::setrlimit(RLIMIT_NOFILE, &rl);  // best effort
    }
  }

  // The request mix: trivial (list_solvers), prepare-cache-hit solve, a
  // small Monte-Carlo estimate, and a lower-bound solve — all on tiny
  // instances so the bench measures transport multiplexing, not LP time.
  util::Rng rng(7);
  const std::string inst_a = instance_text(core::make_independent(
      6, 3, core::MachineModel::uniform(0.3, 0.95), rng));
  const std::string inst_b = instance_text(
      core::make_chains(3, 2, 3, 3, core::MachineModel::uniform(0.3, 0.9),
                        rng));
  std::vector<std::string> requests;
  {
    std::string solve_a =
        R"({"id":"s","method":"solve","params":{"instance":)";
    service::json_append_quoted(solve_a, inst_a);
    solve_a += "}}";
    std::string est_a =
        R"({"id":"e","method":"estimate","params":{"instance":)";
    service::json_append_quoted(est_a, inst_a);
    est_a += R"(,"replications":10,"seed":3}})";
    std::string solve_b =
        R"({"id":"b","method":"solve","params":{"instance":)";
    service::json_append_quoted(solve_b, inst_b);
    solve_b += R"(,"lower_bound":true}})";
    requests = {R"({"id":"l","method":"list_solvers"})", solve_a, est_a,
                solve_b};
    for (std::string& r : requests) r += '\n';
  }

  // The byte-identity oracle: the synchronous engine path, computed once.
  // (Warming the process-global PrecomputeCache here is deliberate — the
  // timed runs then measure steady-state serving, not first-touch LP
  // solves.)
  service::Engine reference;
  std::vector<std::string> expected;
  expected.reserve(requests.size());
  for (const std::string& req : requests) {
    // handle() takes the line sans frame delimiter, as the transports do.
    expected.push_back(
        reference.handle(req.substr(0, req.size() - 1)) + "\n");
  }

  service::Engine::Config cfg;
  cfg.workers = workers;
  // Closed-loop clients hold at most one request in flight each; admission
  // must never reject at the benchmarked connection counts.
  cfg.queue_capacity = static_cast<std::size_t>(max_conns) * 2 + 16;
  service::Engine engine(cfg);
  service::TcpServer server(engine, 0);
  std::thread server_thread([&] { server.run(); });

  util::Table table({"connections", "requests", "workers", "seconds",
                     "req_per_sec", "p50_ms", "p99_ms", "mismatched_replies",
                     "transport_failures"});
  struct Row {
    int conns;
    std::uint64_t total;
    DriveResult r;
    double rps, p50, p99;
  };
  std::vector<Row> rows;
  for (const int conns : conn_counts) {
    DriveResult r = drive(server.port(), conns, per_conn, requests, expected);
    const std::uint64_t total = r.latencies_us.size();
    const double rps = r.seconds > 0.0
                           ? static_cast<double>(total) / r.seconds
                           : 0.0;
    std::vector<std::uint64_t> lat = r.latencies_us;
    const double p50 = quantile_ms(lat, 0.50);
    const double p99 = quantile_ms(lat, 0.99);
    table.add_row({std::to_string(conns), std::to_string(total),
                   std::to_string(engine.stats().workers),
                   util::fmt(r.seconds, 4), util::fmt(rps, 1),
                   util::fmt(p50, 3), util::fmt(p99, 3),
                   std::to_string(r.mismatched),
                   std::to_string(r.transport_failures)});
    rows.push_back(Row{conns, total, std::move(r), rps, p50, p99});
  }
  table.print(std::cout);

  server.stop();
  server_thread.join();
  engine.drain();

  // google-benchmark-shaped JSON so tools/compare_bench.py gates it like
  // BENCH_perf_micro.json: real_time per entry plus exported counters.
  std::ofstream os(out_path);
  if (!os.good()) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  os << "{\n  \"context\": {\"executable\": \"bench_service_concurrency\"},\n"
     << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    os << "    {\"name\": \"ServiceConcurrency/" << row.conns
       << "\", \"run_type\": \"iteration\", \"iterations\": 1"
       << ", \"real_time\": " << util::fmt(row.r.seconds * 1000.0, 3)
       << ", \"cpu_time\": " << util::fmt(row.r.seconds * 1000.0, 3)
       << ", \"time_unit\": \"ms\""
       << ", \"connections\": " << row.conns
       << ", \"requests\": " << row.total
       << ", \"req_per_sec\": " << util::fmt(row.rps, 1)
       << ", \"p50_ms\": " << util::fmt(row.p50, 3)
       << ", \"p99_ms\": " << util::fmt(row.p99, 3)
       << ", \"mismatched_replies\": " << row.r.mismatched
       << ", \"transport_failures\": " << row.r.transport_failures << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::cout << "\nrecorded " << out_path << "\n";

  std::uint64_t bad = 0;
  for (const Row& row : rows) {
    bad += row.r.mismatched + row.r.transport_failures;
  }
  if (bad != 0) {
    std::cerr << "FAILURE: " << bad
              << " mismatched replies / transport failures\n";
    return 1;
  }
  return 0;
}
