// PERF — incremental re-solve on open handles: how much faster a delta
// chain runs through update_instance (re-prepare warm-started from the
// parent entry's recorded basis, uniqueness-certified) than cold-parsing
// and cold-preparing every mutated instance from scratch.
//
// Per family: open one handle, solve once to record the root basis, then
// walk a chain of sparse q-deltas. Each step times
//
//   warm:  update_instance + solve through the handle (the re-prepare
//          seeds from the parent basis and skips phase 1 when the
//          uniqueness certificate holds);
//   cold:  the same mutated instance solved inline with
//          "reuse_cache": false — a full parse + cold prepare.
//
// Every warm reply is byte-compared against its cold twin
// (`mismatched_replies` must be 0 — the delta-differential suite's
// invariant, re-checked here so the bench can never "win" by drifting).
//
// Output: a human table on stdout plus google-benchmark-shaped JSON
// (entries named "DeltaResolve/<family>") written to
// BENCH_delta_resolve.json. tools/compare_bench.py gates wall time
// loosely, mismatched_replies at zero, and warm_over_cold (warm time as a
// fraction of cold — smaller is better, so a regression where
// warm-starting stops paying shows up as the ratio climbing toward 1).
//
//   ./bench_delta_resolve [--steps=30] [--out=BENCH_delta_resolve.json]
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/delta.hpp"
#include "core/generators.hpp"
#include "core/instance.hpp"
#include "core/io.hpp"
#include "service/engine.hpp"
#include "service/json.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace suu;

namespace {

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string quoted_payload(const core::Instance& inst) {
  std::ostringstream os;
  core::write_instance(os, inst);
  std::string out;
  service::json_append_quoted(out, os.str());
  return out;
}

struct Family {
  std::string name;
  core::Instance root;
  std::string options;  ///< wire options JSON body (sans braces)
  /// Range mutated q values are drawn from — kept inside the family's own
  /// regime (the homogeneous family must stay homogeneous or its chain
  /// drifts out of the unique-optimum regime the family exists to measure).
  double q_lo = 0.05;
  double q_span = 0.9;
};

struct FamilyResult {
  std::string name;
  int updates = 0;
  double warm_ms = 0.0;
  double cold_ms = 0.0;
  std::uint64_t warm_hits = 0;
  std::uint64_t mismatched = 0;
};

/// `steps` random 2-cell q-deltas down one handle, timing warm vs cold.
FamilyResult run_family(const Family& fam, int steps) {
  FamilyResult out;
  out.name = fam.name;
  service::Engine engine;
  const std::string opts = "{" + fam.options + "}";

  const service::Json opened = service::Json::parse(engine.handle(
      R"({"id":1,"method":"open_instance","params":{"instance":)" +
      quoted_payload(fam.root) + "}}"));
  if (!opened.find("ok")->as_bool("ok")) {
    std::cerr << fam.name << ": open_instance failed: " << opened.dump()
              << "\n";
    ++out.mismatched;
    return out;
  }
  const std::uint64_t handle = static_cast<std::uint64_t>(
      opened.find("result")->find("handle")->as_int64("handle"));
  // Root solve: records the basis every first delta step seeds from.
  engine.handle(R"({"id":2,"method":"solve","params":{"handle":)" +
                std::to_string(handle) + R"(,"options":)" + opts + "}}");

  util::Rng rng(42);
  core::Instance current = fam.root;
  const std::uint64_t n_cells =
      static_cast<std::uint64_t>(current.num_jobs()) *
      static_cast<std::uint64_t>(current.num_machines());
  for (int step = 0; step < steps; ++step) {
    // Two distinct cells moved per step — small against the instance, the
    // regime incremental re-solve exists for.
    const std::uint64_t a = rng.uniform_below(n_cells);
    std::uint64_t b = rng.uniform_below(n_cells);
    while (b == a) b = rng.uniform_below(n_cells);
    core::InstanceDelta delta;
    delta.q.emplace_back(static_cast<std::int64_t>(a),
                         fam.q_lo + fam.q_span * rng.uniform01());
    delta.q.emplace_back(static_cast<std::int64_t>(b),
                         fam.q_lo + fam.q_span * rng.uniform01());
    current = core::apply_delta(current, delta);

    std::string update =
        R"({"id":3,"method":"update_instance","params":{"handle":)" +
        std::to_string(handle) + R"(,"q":{)";
    for (std::size_t i = 0; i < delta.q.size(); ++i) {
      if (i > 0) update += ',';
      update += '"' + std::to_string(delta.q[i].first) +
                "\":" + service::json_number(delta.q[i].second);
    }
    update += "}}}";
    const std::string solve_warm =
        R"({"id":4,"method":"solve","params":{"handle":)" +
        std::to_string(handle) + R"(,"options":)" + opts + "}}";

    const std::int64_t w0 = now_us();
    const std::string upd_resp = engine.handle(update);
    const std::string warm_resp = engine.handle(solve_warm);
    out.warm_ms += static_cast<double>(now_us() - w0) / 1000.0;
    if (!service::Json::parse(upd_resp).find("ok")->as_bool("ok")) {
      std::cerr << fam.name << ": update failed: " << upd_resp << "\n";
      ++out.mismatched;
      break;
    }

    // Cold twin: parse + prepare from scratch, cache bypassed both ways.
    const std::string solve_cold =
        R"({"id":4,"method":"solve","params":{"instance":)" +
        quoted_payload(current) +
        R"(,"options":{"reuse_cache":false,)" + fam.options + "}}}";
    const std::int64_t c0 = now_us();
    const std::string cold_resp = engine.handle(solve_cold);
    out.cold_ms += static_cast<double>(now_us() - c0) / 1000.0;

    if (warm_resp != cold_resp) ++out.mismatched;
    ++out.updates;
  }
  out.warm_hits = engine.stats().delta_warm_hits;
  engine.handle(R"({"id":9,"method":"close_instance","params":{"handle":)" +
                std::to_string(handle) + "}}");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int steps = static_cast<int>(args.get_int("steps", 30));
  const std::string out_path =
      args.get_string("out", "BENCH_delta_resolve.json");

  // Four prepare regimes: a small-LP1 family where the uniqueness
  // certificate actually passes (a handful of jobs leaves the optimal face
  // zero-dimensional often enough for the parent-basis seed to survive
  // certification — the regime where the LP-level warm start fires; at
  // paper scale LP1 optima are structurally dual-degenerate and the
  // certified path correctly declines, so the larger families' win is the
  // parse/validate skip alone), LP1 on the tableau engine, the chain
  // decomposition's LP2 ladder, and LP1 forced onto the revised engine
  // (whose warm path skips the eta-file phase-1 rebuild entirely).
  std::vector<Family> families;
  {
    util::Rng gen(14);
    families.push_back(
        {"Independent/6x3/small",
         core::apply_delta(
             core::make_independent(
                 6, 3, core::MachineModel::uniform(0.3, 0.95), gen),
             core::InstanceDelta{}),
         R"("lp_engine":"tableau")"});
  }
  {
    util::Rng gen(11);
    families.push_back(
        {"Independent/40x6/tableau",
         core::apply_delta(
             core::make_independent(
                 40, 6, core::MachineModel::uniform(0.3, 0.95), gen),
             core::InstanceDelta{}),
         R"("lp_engine":"tableau")"});
  }
  {
    util::Rng gen(12);
    families.push_back(
        {"Chains/6x4x4",
         core::apply_delta(
             core::make_chains(6, 4, 4, 4,
                               core::MachineModel::uniform(0.3, 0.9), gen),
             core::InstanceDelta{}),
         R"("lp_engine":"auto")"});
  }
  {
    util::Rng gen(13);
    families.push_back(
        {"Independent/96x8/revised",
         core::apply_delta(
             core::make_independent(
                 96, 8, core::MachineModel::uniform(0.3, 0.95), gen),
             core::InstanceDelta{}),
         R"("lp_engine":"revised")"});
  }

  util::Table table({"family", "updates", "warm_ms", "cold_ms",
                     "warm_over_cold", "delta_warm_hits",
                     "mismatched_replies"});
  std::vector<FamilyResult> results;
  for (const Family& fam : families) {
    FamilyResult r = run_family(fam, steps);
    const double ratio = r.cold_ms > 0.0 ? r.warm_ms / r.cold_ms : 0.0;
    table.add_row({r.name, std::to_string(r.updates),
                   util::fmt(r.warm_ms, 3), util::fmt(r.cold_ms, 3),
                   util::fmt(ratio, 4), std::to_string(r.warm_hits),
                   std::to_string(r.mismatched)});
    results.push_back(std::move(r));
  }
  table.print(std::cout);

  std::ofstream os(out_path);
  if (!os.good()) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  os << "{\n  \"context\": {\"executable\": \"bench_delta_resolve\"},\n"
     << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const FamilyResult& r = results[i];
    const double ratio = r.cold_ms > 0.0 ? r.warm_ms / r.cold_ms : 0.0;
    os << "    {\"name\": \"DeltaResolve/" << r.name
       << "\", \"run_type\": \"iteration\", \"iterations\": 1"
       << ", \"real_time\": " << util::fmt(r.warm_ms, 3)
       << ", \"cpu_time\": " << util::fmt(r.warm_ms, 3)
       << ", \"time_unit\": \"ms\""
       << ", \"updates\": " << r.updates
       << ", \"cold_ms\": " << util::fmt(r.cold_ms, 3)
       << ", \"warm_over_cold\": " << util::fmt(ratio, 4)
       << ", \"delta_warm_hits\": " << r.warm_hits
       << ", \"mismatched_replies\": " << r.mismatched << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::cout << "\nrecorded " << out_path << "\n";

  std::uint64_t bad = 0;
  for (const FamilyResult& r : results) bad += r.mismatched;
  if (bad != 0) {
    std::cerr << "FAILURE: " << bad << " warm/cold byte mismatches\n";
    return 1;
  }
  return 0;
}
