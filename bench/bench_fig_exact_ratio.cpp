// F-OPT — true approximation ratios on tiny instances where E[T_OPT] is
// computable exactly (Malewicz-style subset DP): how far are the paper's
// schedules and the baselines from the real optimum, and how loose is the
// Lemma 1 LP lower bound that the scaling experiments divide by?
//
// Context from the paper's intro: no polynomial algorithm can beat 5/4
// unless P = NP, so ratios > 1 are expected even for the best policies.
#include "bench_common.hpp"

#include "algos/baselines.hpp"
#include "algos/exact_dp.hpp"
#include "algos/exact_width_dp.hpp"
#include "algos/suu_c.hpp"
#include "algos/suu_i.hpp"

using namespace suu;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int reps = static_cast<int>(args.get_int("reps", 3000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 8));

  bench::print_header(
      "F-OPT: measured E[T]/E[T_OPT] with the exact subset-DP optimum",
      "Tiny instances (n<=8, m<=3). 'LB/OPT' shows how loose the Lemma 1 "
      "bound is —\nthe denominator used by the scaling benches inflates "
      "every ratio by roughly its inverse.");

  util::Table table({"family", "n", "m", "LB/OPT", "exact-opt", "sem", "obl",
                     "greedy", "round-robin", "all-on-one"});
  struct Case {
    std::string family;
    int n, m;
    core::MachineModel model;
  };
  const std::vector<Case> cases = {
      {"uniform", 5, 2, core::MachineModel::uniform(0.2, 0.9)},
      {"uniform", 7, 2, core::MachineModel::uniform(0.2, 0.9)},
      {"uniform", 6, 3, core::MachineModel::uniform(0.2, 0.9)},
      {"identical(0.7)", 8, 2, core::MachineModel::identical(0.7)},
      {"classes", 6, 3, core::MachineModel::classes()},
      {"sparse", 7, 3, core::MachineModel::sparse(0.5, 0.3, 0.9)},
  };
  for (const auto& c : cases) {
    util::Rng rng(seed + static_cast<std::uint64_t>(c.n * 17 + c.m));
    core::Instance inst = core::make_independent(c.n, c.m, c.model, rng);
    auto solver = std::make_shared<const algos::ExactSolver>(inst);
    const double opt_value = solver->expected_makespan();
    const algos::LowerBound lb = algos::lower_bound_independent(inst);

    auto ratio = [&](const sim::PolicyFactory& f,
                     std::uint64_t s) {
      const auto r = bench::measure(inst, f, opt_value, reps, s);
      return util::fmt(r.ratio, 2);
    };
    auto pre_obl = algos::SuuIOblPolicy::precompute(inst);
    auto pre_sem = algos::SuuISemPolicy::precompute_round1(inst);

    table.add_row(
        {c.family, std::to_string(c.n), std::to_string(c.m),
         util::fmt(lb.value / opt_value, 2),
         ratio([solver] { return std::make_unique<algos::ExactOptPolicy>(
                   solver); }, seed + 1),
         ratio([pre_sem] {
           algos::SuuISemPolicy::Config cfg;
           cfg.round1 = pre_sem;
           return std::make_unique<algos::SuuISemPolicy>(std::move(cfg));
         }, seed + 2),
         ratio([pre_obl] {
           return std::make_unique<algos::SuuIOblPolicy>(pre_obl);
         }, seed + 3),
         ratio([] { return std::make_unique<algos::GreedyLrPolicy>(); },
               seed + 4),
         ratio([] { return std::make_unique<algos::RoundRobinPolicy>(); },
               seed + 5),
         ratio([] { return std::make_unique<algos::AllOnOnePolicy>(); },
               seed + 6)});
  }
  table.print(std::cout);
  std::cout << "\n(The exact-opt column should sit at 1.00 within noise — "
               "it replays the DP's optimal policy.)\n";

  // ---- Chains against the WIDTH-parameterized exact optimum (Malewicz
  // regime): low width lets the exact DP reach n = 20+ jobs, giving true
  // SUU-C ratios instead of LP-bound ratios.
  std::cout << "\nChain instances vs the width-DP exact optimum:\n\n";
  util::Table t2({"chains x len", "n", "m", "width", "states",
                  "width-opt", "suu-c", "round-robin"});
  struct ChainCase {
    int n_chains, len, m;
  };
  for (const ChainCase cc :
       std::vector<ChainCase>{{2, 6, 2}, {2, 10, 2}, {3, 6, 3}}) {
    util::Rng rng(seed + 400 + static_cast<std::uint64_t>(cc.n_chains * 10 +
                                                          cc.len));
    const int n = cc.n_chains * cc.len;
    const auto q = core::gen_q(n, cc.m,
                               core::MachineModel::uniform(0.25, 0.9), rng);
    core::Instance inst(
        n, cc.m, q,
        core::make_chain_dag(std::vector<int>(
            static_cast<std::size_t>(cc.n_chains), cc.len)));
    auto solver = std::make_shared<const algos::WidthExactSolver>(inst);
    const double opt_value = solver->expected_makespan();
    auto lp2 = algos::SuuCPolicy::precompute(inst, inst.dag().chains());

    auto ratio = [&](const sim::PolicyFactory& f, std::uint64_t s) {
      const auto r =
          bench::measure(inst, f, opt_value, reps / 4, s, /*strict=*/true);
      return util::fmt(r.ratio, 2);
    };
    t2.add_row(
        {std::to_string(cc.n_chains) + "x" + std::to_string(cc.len),
         std::to_string(n), std::to_string(cc.m),
         std::to_string(solver->width()),
         std::to_string(solver->num_states()),
         ratio([solver] { return std::make_unique<algos::WidthOptPolicy>(
                   solver); },
               seed + 11),
         ratio([lp2] {
           algos::SuuCPolicy::Config cfg;
           cfg.lp2 = lp2;
           return std::make_unique<algos::SuuCPolicy>(std::move(cfg));
         }, seed + 12),
         ratio([] { return std::make_unique<algos::RoundRobinPolicy>(); },
               seed + 13)});
  }
  t2.print(std::cout);
  return 0;
}
