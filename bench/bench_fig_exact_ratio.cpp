// F-OPT — true approximation ratios on tiny instances where E[T_OPT] is
// computable exactly (Malewicz-style subset DP): how far are the paper's
// schedules and the baselines from the real optimum, and how loose is the
// Lemma 1 LP lower bound that the scaling experiments divide by?
//
// Context from the paper's intro: no polynomial algorithm can beat 5/4
// unless P = NP, so ratios > 1 are expected even for the best policies.
#include "bench_common.hpp"

#include "algos/exact_dp.hpp"
#include "algos/exact_width_dp.hpp"
#include "algos/lower_bounds.hpp"

using namespace suu;

int main(int argc, char** argv) {
  const bench::Harness h(argc, argv, /*reps=*/3000, /*seed=*/8);

  bench::print_header(
      "F-OPT: measured E[T]/E[T_OPT] with the exact subset-DP optimum",
      "Tiny instances (n<=8, m<=3). 'LB/OPT' shows how loose the Lemma 1 "
      "bound is —\nthe denominator used by the scaling benches inflates "
      "every ratio by roughly its inverse.");

  struct Case {
    std::string family;
    int n, m;
    core::MachineModel model;
  };
  const std::vector<Case> cases = {
      {"uniform", 5, 2, core::MachineModel::uniform(0.2, 0.9)},
      {"uniform", 7, 2, core::MachineModel::uniform(0.2, 0.9)},
      {"uniform", 6, 3, core::MachineModel::uniform(0.2, 0.9)},
      {"identical(0.7)", 8, 2, core::MachineModel::identical(0.7)},
      {"classes", 6, 3, core::MachineModel::classes()},
      {"sparse", 7, 3, core::MachineModel::sparse(0.5, 0.3, 0.9)},
  };
  const std::vector<std::string> kSolvers = {"suu-i-sem", "suu-i-obl",
                                             "greedy-lr", "round-robin",
                                             "all-on-one"};

  api::ExperimentRunner runner(h.runner_options());
  std::vector<double> lb_over_opt;
  for (const auto& c : cases) {
    util::Rng rng(h.seed + static_cast<std::uint64_t>(c.n * 17 + c.m));
    auto inst = std::make_shared<const core::Instance>(
        core::make_independent(c.n, c.m, c.model, rng));
    // The solver doubles as the denominator source, so it is built here
    // and shared with the exact-opt cell through a factory override (the
    // registry's "exact-dp" entry would run the DP a second time).
    auto solver = std::make_shared<const algos::ExactSolver>(*inst);
    const double opt_value = solver->expected_makespan();
    lb_over_opt.push_back(algos::lower_bound_independent(*inst).value /
                          opt_value);

    api::Cell exact;
    exact.instance_label = c.family + " n=" + std::to_string(c.n);
    exact.instance = inst;
    exact.factory = [solver] {
      return std::make_unique<algos::ExactOptPolicy>(solver);
    };
    exact.factory_label = "exact-opt";
    exact.lower_bound = opt_value;
    runner.add(std::move(exact));

    for (const std::string& solver_name : kSolvers) {
      api::Cell cell;
      cell.instance_label = c.family + " n=" + std::to_string(c.n);
      cell.instance = inst;
      cell.solver = solver_name;
      cell.lower_bound = opt_value;
      runner.add(std::move(cell));
    }
  }
  const auto& res = runner.run();

  util::Table table({"family", "n", "m", "LB/OPT", "exact-opt", "sem", "obl",
                     "greedy", "round-robin", "all-on-one"});
  const std::size_t stride = 1 + kSolvers.size();
  for (std::size_t i = 0; i < cases.size(); ++i) {
    std::vector<std::string> row = {cases[i].family,
                                    std::to_string(cases[i].n),
                                    std::to_string(cases[i].m),
                                    util::fmt(lb_over_opt[i], 2)};
    for (std::size_t k = 0; k < stride; ++k) {
      row.push_back(util::fmt(res[stride * i + k].ratio, 2));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(The exact-opt column should sit at 1.00 within noise — "
               "it replays the DP's optimal policy.)\n";
  h.maybe_json(runner);

  // ---- Chains against the WIDTH-parameterized exact optimum (Malewicz
  // regime): low width lets the exact DP reach n = 20+ jobs, giving true
  // SUU-C ratios instead of LP-bound ratios.
  std::cout << "\nChain instances vs the width-DP exact optimum:\n\n";
  struct ChainCase {
    int n_chains, len, m;
  };
  const std::vector<ChainCase> chain_cases = {{2, 6, 2}, {2, 10, 2},
                                              {3, 6, 3}};

  api::ExperimentRunner chain_runner(h.runner_options());
  chain_runner.options().replications = std::max(1, h.reps / 4);
  chain_runner.options().strict_eligibility = true;
  std::vector<std::pair<int, std::int64_t>> dims;  // width, states
  for (const ChainCase cc : chain_cases) {
    util::Rng rng(h.seed + 400 +
                  static_cast<std::uint64_t>(cc.n_chains * 10 + cc.len));
    const int n = cc.n_chains * cc.len;
    auto inst = std::make_shared<const core::Instance>(
        n, cc.m,
        core::gen_q(n, cc.m, core::MachineModel::uniform(0.25, 0.9), rng),
        core::make_chain_dag(std::vector<int>(
            static_cast<std::size_t>(cc.n_chains), cc.len)));
    auto solver = std::make_shared<const algos::WidthExactSolver>(*inst);
    const double opt_value = solver->expected_makespan();
    dims.emplace_back(solver->width(), solver->num_states());

    const std::string label =
        std::to_string(cc.n_chains) + "x" + std::to_string(cc.len);
    api::Cell exact;
    exact.instance_label = label;
    exact.instance = inst;
    exact.factory = [solver] {
      return std::make_unique<algos::WidthOptPolicy>(solver);
    };
    exact.factory_label = "width-opt";
    exact.lower_bound = opt_value;
    chain_runner.add(std::move(exact));
    for (const std::string& solver_name :
         {std::string("suu-c"), std::string("round-robin")}) {
      api::Cell cell;
      cell.instance_label = label;
      cell.instance = inst;
      cell.solver = solver_name;
      cell.lower_bound = opt_value;
      chain_runner.add(std::move(cell));
    }
  }
  const auto& cres = chain_runner.run();

  util::Table t2({"chains x len", "n", "m", "width", "states", "width-opt",
                  "suu-c", "round-robin"});
  for (std::size_t i = 0; i < chain_cases.size(); ++i) {
    t2.add_row({std::to_string(chain_cases[i].n_chains) + "x" +
                    std::to_string(chain_cases[i].len),
                std::to_string(cres[3 * i].n),
                std::to_string(chain_cases[i].m),
                std::to_string(dims[i].first),
                std::to_string(dims[i].second),
                util::fmt(cres[3 * i].ratio, 2),
                util::fmt(cres[3 * i + 1].ratio, 2),
                util::fmt(cres[3 * i + 2].ratio, 2)});
  }
  t2.print(std::cout);
  h.maybe_json(chain_runner);
  return 0;
}
