// PERF — engineering microbenchmarks (google-benchmark): throughput of the
// substrates so regressions in the solvers/engine are visible. Also the
// exact-simplex vs Frank–Wolfe ablation in time (value gap is in F-LP).
#include <benchmark/benchmark.h>

#include "algos/exact_dp.hpp"
#include "algos/suu_i.hpp"
#include "api/experiment.hpp"
#include "api/registry.hpp"
#include "core/generators.hpp"
#include "flow/max_flow.hpp"
#include "lp/fw_cover.hpp"
#include "lp/simplex.hpp"
#include "rounding/lp1.hpp"
#include "rounding/lp2.hpp"
#include "sim/engine.hpp"
#include "stoch/bvn.hpp"
#include "util/rng.hpp"

using namespace suu;

namespace {

core::Instance bench_instance(int n, int m, std::uint64_t seed) {
  util::Rng rng(seed);
  return core::make_independent(n, m,
                                core::MachineModel::uniform(0.3, 0.95), rng);
}

std::vector<int> all_jobs(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) v[static_cast<std::size_t>(j)] = j;
  return v;
}

void BM_SimplexLp1(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::Instance inst = bench_instance(n, 8, 11);
  const auto jobs = all_jobs(n);
  rounding::Lp1Options opt;
  opt.solver = rounding::Lp1Options::Solver::Simplex;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rounding::solve_lp1(inst, jobs, 0.5, opt));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SimplexLp1)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Complexity();

void BM_FrankWolfeLp1(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::Instance inst = bench_instance(n, 8, 12);
  const auto jobs = all_jobs(n);
  rounding::Lp1Options opt;
  opt.solver = rounding::Lp1Options::Solver::FrankWolfe;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rounding::solve_lp1(inst, jobs, 0.5, opt));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_FrankWolfeLp1)
    ->Arg(8)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Complexity();

void BM_RoundLp1(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::Instance inst = bench_instance(n, 8, 13);
  const auto jobs = all_jobs(n);
  const rounding::Lp1Fractional frac = rounding::solve_lp1(inst, jobs, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rounding::round_lp1(inst, jobs, 0.5, frac));
  }
}
BENCHMARK(BM_RoundLp1)->Arg(16)->Arg(64)->Arg(256);

void BM_Lp2ChainsPipeline(benchmark::State& state) {
  const int n_chains = static_cast<int>(state.range(0));
  util::Rng rng(14);
  core::Instance inst = core::make_chains(
      n_chains, 2, 5, 4, core::MachineModel::uniform(0.3, 0.9), rng);
  const auto chains = inst.dag().chains();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rounding::solve_and_round_lp2(inst, chains));
  }
}
BENCHMARK(BM_Lp2ChainsPipeline)->Arg(4)->Arg(8)->Arg(16);

void BM_Dinic(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(15);
  for (auto _ : state) {
    state.PauseTiming();
    flow::MaxFlow g(n);
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        if (u != v && rng.bernoulli(0.15)) {
          g.add_edge(u, v, static_cast<flow::MaxFlow::Cap>(
                               rng.uniform_below(32)));
        }
      }
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(g.solve(0, n - 1));
  }
}
BENCHMARK(BM_Dinic)->Arg(64)->Arg(256);

void BM_EngineSteps(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::Instance inst = bench_instance(n, 8, 16);
  auto pre = algos::SuuIOblPolicy::precompute(inst);
  std::uint64_t seed = 1;
  std::int64_t steps = 0;
  for (auto _ : state) {
    algos::SuuIOblPolicy policy(pre);
    sim::ExecConfig cfg;
    cfg.seed = ++seed;
    const sim::ExecResult r = sim::execute(inst, policy, cfg);
    steps += r.makespan;
    benchmark::DoNotOptimize(r.makespan);
  }
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineSteps)->Arg(32)->Arg(128);

void BM_ExactDp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::Instance inst = bench_instance(n, 2, 17);
  for (auto _ : state) {
    algos::ExactSolver solver(inst);
    benchmark::DoNotOptimize(solver.expected_makespan());
  }
}
BENCHMARK(BM_ExactDp)->Arg(4)->Arg(6)->Arg(8);

// Cost of one registry prepare (the deterministic LP solve + rounding the
// api layer shares across replications) vs the per-policy mint afterwards.
void BM_RegistryPrepare(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::Instance inst = bench_instance(n, 8, 19);
  for (auto _ : state) {
    benchmark::DoNotOptimize(api::solve_auto(inst));
  }
}
BENCHMARK(BM_RegistryPrepare)->Arg(16)->Arg(64);

void BM_RegistryMintPolicy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::Instance inst = bench_instance(n, 8, 20);
  const api::PreparedSolver solver = api::solve_auto(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.factory());
  }
}
BENCHMARK(BM_RegistryMintPolicy)->Arg(16)->Arg(64);

void BM_BvnDecompose(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int m = 4;
  util::Rng rng(18);
  std::vector<double> x(static_cast<std::size_t>(m) *
                        static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform01();
  double C = 0;
  for (int i = 0; i < m; ++i) {
    double r = 0;
    for (int j = 0; j < n; ++j) {
      r += x[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
             static_cast<std::size_t>(j)];
    }
    C = std::max(C, r);
  }
  for (int j = 0; j < n; ++j) {
    double c = 0;
    for (int i = 0; i < m; ++i) {
      c += x[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
             static_cast<std::size_t>(j)];
    }
    C = std::max(C, c);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stoch::decompose_preemptive(m, n, x, C + 0.01));
  }
}
BENCHMARK(BM_BvnDecompose)->Arg(8)->Arg(24);

}  // namespace

BENCHMARK_MAIN();
