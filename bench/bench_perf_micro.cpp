// PERF — engineering microbenchmarks (google-benchmark): throughput of the
// substrates so regressions in the solvers/engine are visible. Also the
// exact-simplex vs Frank–Wolfe ablation in time (value gap is in F-LP).
//
// Unless --benchmark_out is given, results are also written to
// BENCH_perf_micro.json (google-benchmark's JSON schema) in the working
// directory, so every run leaves a machine-readable record of the perf
// trajectory. Simplex benchmarks export a "pivots" counter (simplex
// iterations per solve) alongside wall time: a pricing regression shows up
// in pivots even when cache effects mask it in time.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "algos/exact_dp.hpp"
#include "algos/suu_i.hpp"
#include "api/experiment.hpp"
#include "api/registry.hpp"
#include "core/generators.hpp"
#include "flow/max_flow.hpp"
#include "lp/fw_cover.hpp"
#include "lp/simplex.hpp"
#include "rounding/lp1.hpp"
#include "rounding/lp2.hpp"
#include "sim/engine.hpp"
#include "stoch/bvn.hpp"
#include "util/rng.hpp"

using namespace suu;

namespace {

core::Instance bench_instance(int n, int m, std::uint64_t seed) {
  util::Rng rng(seed);
  return core::make_independent(n, m,
                                core::MachineModel::uniform(0.3, 0.95), rng);
}

std::vector<int> all_jobs(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) v[static_cast<std::size_t>(j)] = j;
  return v;
}

void BM_SimplexLp1(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::Instance inst = bench_instance(n, 8, 11);
  const auto jobs = all_jobs(n);
  rounding::Lp1Options opt;
  opt.solver = rounding::Lp1Options::Solver::Simplex;
  std::int64_t pivots = 0;
  for (auto _ : state) {
    const rounding::Lp1Fractional frac =
        rounding::solve_lp1(inst, jobs, 0.5, opt);
    pivots += frac.simplex_iterations;
    benchmark::DoNotOptimize(frac.t);
  }
  state.counters["pivots"] = benchmark::Counter(
      static_cast<double>(pivots) /
      static_cast<double>(state.iterations()));
  state.SetComplexityN(n);
}
BENCHMARK(BM_SimplexLp1)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Complexity();

// The factorized engine, forced, on the same instances — plus n=2048, which
// the dense tableau cannot reasonably touch (its arena alone would be
// ~340 MB). "pivots" counts priced iterations; "p1_pivots" the phase-1
// share, so pricing and factorization regressions are visible separately
// from wall time.
void BM_RevisedLp1(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::Instance inst = bench_instance(n, 8, 11);
  const auto jobs = all_jobs(n);
  rounding::Lp1Options opt;
  opt.solver = rounding::Lp1Options::Solver::Simplex;
  opt.engine = lp::SimplexEngine::Revised;
  std::int64_t pivots = 0, p1 = 0;
  for (auto _ : state) {
    const rounding::Lp1Fractional frac =
        rounding::solve_lp1(inst, jobs, 0.5, opt);
    pivots += frac.simplex_iterations;
    p1 += frac.simplex_phase1_iterations;
    benchmark::DoNotOptimize(frac.t);
  }
  const auto iters = static_cast<double>(state.iterations());
  state.counters["pivots"] =
      benchmark::Counter(static_cast<double>(pivots) / iters);
  state.counters["p1_pivots"] =
      benchmark::Counter(static_cast<double>(p1) / iters);
  state.SetComplexityN(n);
}
BENCHMARK(BM_RevisedLp1)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(2048)
    ->Arg(4096)
    ->Complexity();

// The pricing-rule ablation on the revised engine: same LP1 instances, the
// entering-variable rule forced per benchmark. Beyond "pivots"/"p1_pivots",
// "ftran_fill" reports the average fraction of the m rows an FTRAN result
// actually occupied — the dual sparse eta storage only pays off while this
// stays well below 1, so a storage regression is visible here even when
// pivot counts hold steady.
void revised_lp1_pricing(benchmark::State& state, lp::PricingRule rule) {
  const int n = static_cast<int>(state.range(0));
  core::Instance inst = bench_instance(n, 8, 11);
  const auto jobs = all_jobs(n);
  rounding::Lp1Options opt;
  opt.solver = rounding::Lp1Options::Solver::Simplex;
  opt.engine = lp::SimplexEngine::Revised;
  opt.pricing = rule;
  std::int64_t pivots = 0, p1 = 0, ftran_calls = 0, ftran_nnz = 0;
  for (auto _ : state) {
    const rounding::Lp1Fractional frac =
        rounding::solve_lp1(inst, jobs, 0.5, opt);
    pivots += frac.simplex_iterations;
    p1 += frac.simplex_phase1_iterations;
    ftran_calls += frac.ftran_calls;
    ftran_nnz += frac.ftran_nnz;
    benchmark::DoNotOptimize(frac.t);
  }
  const auto iters = static_cast<double>(state.iterations());
  state.counters["pivots"] =
      benchmark::Counter(static_cast<double>(pivots) / iters);
  state.counters["p1_pivots"] =
      benchmark::Counter(static_cast<double>(p1) / iters);
  // LP1's standard form has one cover row per job plus the 8 load rows.
  const double rows = static_cast<double>(n + 8);
  state.counters["ftran_fill"] = benchmark::Counter(
      ftran_calls > 0 ? static_cast<double>(ftran_nnz) /
                            (static_cast<double>(ftran_calls) * rows)
                      : 0.0);
}
BENCHMARK_CAPTURE(revised_lp1_pricing, dantzig, lp::PricingRule::Dantzig)
    ->Name("BM_RevisedLp1Pricing/dantzig")
    ->Arg(256)
    ->Arg(1024);
BENCHMARK_CAPTURE(revised_lp1_pricing, devex, lp::PricingRule::Devex)
    ->Name("BM_RevisedLp1Pricing/devex")
    ->Arg(256)
    ->Arg(1024);
BENCHMARK_CAPTURE(revised_lp1_pricing, steepest, lp::PricingRule::Steepest)
    ->Name("BM_RevisedLp1Pricing/steepest")
    ->Arg(256)
    ->Arg(1024);

void BM_FrankWolfeLp1(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::Instance inst = bench_instance(n, 8, 12);
  const auto jobs = all_jobs(n);
  rounding::Lp1Options opt;
  opt.solver = rounding::Lp1Options::Solver::FrankWolfe;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rounding::solve_lp1(inst, jobs, 0.5, opt));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_FrankWolfeLp1)
    ->Arg(8)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Complexity();

void BM_RoundLp1(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::Instance inst = bench_instance(n, 8, 13);
  const auto jobs = all_jobs(n);
  const rounding::Lp1Fractional frac = rounding::solve_lp1(inst, jobs, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rounding::round_lp1(inst, jobs, 0.5, frac));
  }
}
BENCHMARK(BM_RoundLp1)->Arg(16)->Arg(64)->Arg(256);

void BM_Lp2ChainsPipeline(benchmark::State& state) {
  const int n_chains = static_cast<int>(state.range(0));
  util::Rng rng(14);
  core::Instance inst = core::make_chains(
      n_chains, 2, 5, 4, core::MachineModel::uniform(0.3, 0.9), rng);
  const auto chains = inst.dag().chains();
  std::int64_t pivots = 0;
  for (auto _ : state) {
    const rounding::Lp2Result res = rounding::solve_and_round_lp2(inst, chains);
    pivots += res.simplex_iterations;
    benchmark::DoNotOptimize(res.t_fractional);
  }
  state.counters["pivots"] = benchmark::Counter(
      static_cast<double>(pivots) /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_Lp2ChainsPipeline)->Arg(4)->Arg(8)->Arg(16);

// Warm vs cold LP2 re-solve: the BlockCache / perturbed-rhs pattern. Cold
// runs two-phase from scratch each time; warm chains a WarmStart handle, so
// after the first solve every re-solve seeds phase 2 directly from the
// previous optimal basis (phase 1 skipped; "p1_pivots" records the phase-1
// share actually paid per solve). Note the pivot counters exclude the
// warm install's per-row basis eliminations (see Solution::iterations), so
// the honest warm-vs-cold comparison is wall time, with the counters
// showing where the priced iterations went.
void lp2_resolve_bench(benchmark::State& state, bool warm_start) {
  const int n_chains = static_cast<int>(state.range(0));
  util::Rng rng(14);
  core::Instance inst = core::make_chains(
      n_chains, 2, 5, 4, core::MachineModel::uniform(0.3, 0.9), rng);
  const auto chains = inst.dag().chains();
  lp::WarmStart warm;
  if (warm_start) {
    // Seed the handle: the measured loop then re-solves warm throughout.
    rounding::solve_and_round_lp2(inst, chains, &warm);
  }
  std::int64_t pivots = 0, p1 = 0;
  for (auto _ : state) {
    const rounding::Lp2Result res = rounding::solve_and_round_lp2(
        inst, chains, warm_start ? &warm : nullptr);
    pivots += res.simplex_iterations;
    p1 += res.simplex_phase1_iterations;
    benchmark::DoNotOptimize(res.t_fractional);
  }
  const auto iters = static_cast<double>(state.iterations());
  state.counters["pivots"] =
      benchmark::Counter(static_cast<double>(pivots) / iters);
  state.counters["p1_pivots"] =
      benchmark::Counter(static_cast<double>(p1) / iters);
}

void BM_Lp2ResolveCold(benchmark::State& state) {
  lp2_resolve_bench(state, false);
}
BENCHMARK(BM_Lp2ResolveCold)->Arg(4)->Arg(16);

void BM_Lp2ResolveWarm(benchmark::State& state) {
  lp2_resolve_bench(state, true);
}
BENCHMARK(BM_Lp2ResolveWarm)->Arg(4)->Arg(16);

void BM_Dinic(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(15);
  for (auto _ : state) {
    state.PauseTiming();
    flow::MaxFlow g(n);
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        if (u != v && rng.bernoulli(0.15)) {
          g.add_edge(u, v, static_cast<flow::MaxFlow::Cap>(
                               rng.uniform_below(32)));
        }
      }
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(g.solve(0, n - 1));
  }
}
BENCHMARK(BM_Dinic)->Arg(64)->Arg(256);

void BM_EngineSteps(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::Instance inst = bench_instance(n, 8, 16);
  auto pre = algos::SuuIOblPolicy::precompute(inst);
  std::uint64_t seed = 1;
  std::int64_t steps = 0;
  for (auto _ : state) {
    algos::SuuIOblPolicy policy(pre);
    sim::ExecConfig cfg;
    cfg.seed = ++seed;
    const sim::ExecResult r = sim::execute(inst, policy, cfg);
    steps += r.makespan;
    benchmark::DoNotOptimize(r.makespan);
  }
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineSteps)->Arg(32)->Arg(128);

void BM_ExactDp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::Instance inst = bench_instance(n, 2, 17);
  for (auto _ : state) {
    algos::ExactSolver solver(inst);
    benchmark::DoNotOptimize(solver.expected_makespan());
  }
}
BENCHMARK(BM_ExactDp)->Arg(4)->Arg(6)->Arg(8);

// Cost of one registry prepare (the deterministic LP solve + rounding the
// api layer shares across replications) vs the per-policy mint afterwards.
void BM_RegistryPrepare(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::Instance inst = bench_instance(n, 8, 19);
  for (auto _ : state) {
    benchmark::DoNotOptimize(api::solve_auto(inst));
  }
}
BENCHMARK(BM_RegistryPrepare)->Arg(16)->Arg(64);

void BM_RegistryMintPolicy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  core::Instance inst = bench_instance(n, 8, 20);
  const api::PreparedSolver solver = api::solve_auto(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.factory());
  }
}
BENCHMARK(BM_RegistryMintPolicy)->Arg(16)->Arg(64);

void BM_BvnDecompose(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int m = 4;
  util::Rng rng(18);
  std::vector<double> x(static_cast<std::size_t>(m) *
                        static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform01();
  double C = 0;
  for (int i = 0; i < m; ++i) {
    double r = 0;
    for (int j = 0; j < n; ++j) {
      r += x[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
             static_cast<std::size_t>(j)];
    }
    C = std::max(C, r);
  }
  for (int j = 0; j < n; ++j) {
    double c = 0;
    for (int i = 0; i < m; ++i) {
      c += x[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
             static_cast<std::size_t>(j)];
    }
    C = std::max(C, c);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stoch::decompose_preemptive(m, n, x, C + 0.01));
  }
}
BENCHMARK(BM_BvnDecompose)->Arg(8)->Arg(24);

}  // namespace

// BENCHMARK_MAIN with one addition: unless the caller already chose an
// output file, default to a JSON record (BENCH_perf_micro.json) next to the
// console report, so perf numbers accumulate as machine-readable artifacts.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    // Exact flag (or --benchmark_out=...): --benchmark_out_format alone
    // must not suppress the default output file.
    if (std::strcmp(argv[i], "--benchmark_out") == 0 ||
        std::strncmp(argv[i], "--benchmark_out=", 16) == 0) {
      has_out = true;
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_perf_micro.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
