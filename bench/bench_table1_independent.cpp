// T1-I — Table 1, row "Independent":
//   Lin–Rajaraman-style O(log n) schedules vs this paper's
//   O(log log min{m,n}) SUU-I-SEM.
//
// For growing n (m fixed) we measure E[T]/LB for the greedy baseline,
// SUU-I-OBL (Theorem 3, the O(log n) schedule) and SUU-I-SEM (Theorem 4).
// The reproduction target is the SHAPE: the OBL ratio column grows like
// log n on the identical-machines (coupon-collector) family while the SEM
// column stays near-flat; the normalized columns ratio/log(n) and
// ratio/loglog(min{m,n}) make the fit visible.
#include "bench_common.hpp"

#include "algos/baselines.hpp"
#include "algos/suu_i.hpp"

using namespace suu;

namespace {

void run_family(const std::string& family, const core::MachineModel& model,
                const std::vector<int>& sizes, int m, int reps,
                std::uint64_t seed) {
  util::Table table({"family", "n", "m", "greedy-lr", "suu-i-obl",
                     "suu-i-sem", "obl/log(n)", "sem/loglog(mn)"});
  for (const int n : sizes) {
    util::Rng rng(seed + static_cast<std::uint64_t>(n));
    core::Instance inst = core::make_independent(n, m, model, rng);

    rounding::Lp1Options lp1;
    lp1.simplex_size_limit = 600;  // Frank–Wolfe beyond (fast at scale)
    const algos::LowerBound lb = algos::lower_bound_independent(inst, lp1);

    auto pre_obl = algos::SuuIOblPolicy::precompute(inst, lp1);
    auto pre_sem = algos::SuuISemPolicy::precompute_round1(inst, lp1);

    const auto greedy = bench::measure(
        inst, [] { return std::make_unique<algos::GreedyLrPolicy>(); },
        lb.value, reps, seed + 1);
    const auto obl = bench::measure(
        inst,
        [pre_obl] { return std::make_unique<algos::SuuIOblPolicy>(pre_obl); },
        lb.value, reps, seed + 2);
    const auto sem = bench::measure(
        inst,
        [pre_sem, lp1] {
          algos::SuuISemPolicy::Config cfg;
          cfg.lp1 = lp1;
          cfg.round1 = pre_sem;
          return std::make_unique<algos::SuuISemPolicy>(std::move(cfg));
        },
        lb.value, reps, seed + 3);

    table.add_row(
        {family, std::to_string(n), std::to_string(m),
         util::fmt_pm(greedy.ratio, greedy.ci, 2),
         util::fmt_pm(obl.ratio, obl.ci, 2),
         util::fmt_pm(sem.ratio, sem.ci, 2),
         util::fmt(obl.ratio / bench::lg(n), 2),
         util::fmt(sem.ratio / bench::lglg(std::min(n, m)), 2)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const int reps = static_cast<int>(args.get_int("reps", 120));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const int m = static_cast<int>(args.get_int("m", 8));

  bench::print_header(
      "T1-I: Table 1 row 'Independent'",
      "Paper: O(log n) [11] -> O(log log min{m,n}) (Thm 4). Ratios are "
      "E[T]/LB with LB from Lemma 1;\nexpect the obl column to grow with "
      "log n on the identical family while sem stays near-flat.");

  run_family("identical(q=0.7)", core::MachineModel::identical(0.7),
             {8, 16, 32, 64, 128, 256}, m, reps, seed);
  run_family("uniform(0.3,0.95)", core::MachineModel::uniform(0.3, 0.95),
             {8, 16, 32, 64, 128, 256}, m, reps, seed + 100);

  // Growing m with n fixed: the min{m,n} in Theorem 4's bound.
  util::Table table({"family", "n", "m", "suu-i-sem ratio",
                     "sem/loglog(min)"});
  for (const int mm : {2, 4, 8, 16, 32}) {
    const int n = 64;
    util::Rng rng(seed + 500 + static_cast<std::uint64_t>(mm));
    core::Instance inst = core::make_independent(
        n, mm, core::MachineModel::uniform(0.3, 0.95), rng);
    rounding::Lp1Options lp1;
    lp1.simplex_size_limit = 600;
    const algos::LowerBound lb = algos::lower_bound_independent(inst, lp1);
    auto pre = algos::SuuISemPolicy::precompute_round1(inst, lp1);
    const auto sem = bench::measure(
        inst,
        [pre, lp1] {
          algos::SuuISemPolicy::Config cfg;
          cfg.lp1 = lp1;
          cfg.round1 = pre;
          return std::make_unique<algos::SuuISemPolicy>(std::move(cfg));
        },
        lb.value, reps, seed + 4);
    table.add_row({"uniform, growing m", std::to_string(n),
                   std::to_string(mm), util::fmt_pm(sem.ratio, sem.ci, 2),
                   util::fmt(sem.ratio / bench::lglg(std::min(n, mm)), 2)});
  }
  table.print(std::cout);
  return 0;
}
