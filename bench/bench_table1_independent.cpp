// T1-I — Table 1, row "Independent":
//   Lin–Rajaraman-style O(log n) schedules vs this paper's
//   O(log log min{m,n}) SUU-I-SEM.
//
// For growing n (m fixed) we measure E[T]/LB for the greedy baseline,
// SUU-I-OBL (Theorem 3, the O(log n) schedule) and SUU-I-SEM (Theorem 4).
// The reproduction target is the SHAPE: the OBL ratio column grows like
// log n on the identical-machines (coupon-collector) family while the SEM
// column stays near-flat; the normalized columns ratio/log(n) and
// ratio/loglog(min{m,n}) make the fit visible.
#include "bench_common.hpp"

using namespace suu;

namespace {

const std::vector<std::string> kSolvers = {"greedy-lr", "suu-i-obl",
                                           "suu-i-sem"};

api::SolverOptions fast_lp1() {
  api::SolverOptions opt;
  opt.lp1.simplex_size_limit = 600;  // Frank–Wolfe beyond (fast at scale)
  return opt;
}

void run_family(const bench::Harness& h, const std::string& family,
                const core::MachineModel& model, const std::vector<int>& sizes,
                int m) {
  api::ExperimentRunner runner(h.runner_options());
  std::vector<std::pair<std::string, std::shared_ptr<const core::Instance>>>
      instances;
  for (const int n : sizes) {
    util::Rng rng(h.seed + static_cast<std::uint64_t>(n));
    instances.emplace_back("n=" + std::to_string(n),
                           std::make_shared<const core::Instance>(
                               core::make_independent(n, m, model, rng)));
  }
  runner.add_grid(instances, kSolvers, fast_lp1(), /*auto_lower_bound=*/true);
  const auto& res = runner.run();

  util::Table table({"family", "n", "m", "greedy-lr", "suu-i-obl", "suu-i-sem",
                     "obl/log(n)", "sem/loglog(mn)"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const int n = sizes[i];
    const api::CellResult& greedy = res[3 * i];
    const api::CellResult& obl = res[3 * i + 1];
    const api::CellResult& sem = res[3 * i + 2];
    table.add_row(
        {family, std::to_string(n), std::to_string(m),
         util::fmt_pm(greedy.ratio, greedy.ratio_ci, 2),
         util::fmt_pm(obl.ratio, obl.ratio_ci, 2),
         util::fmt_pm(sem.ratio, sem.ratio_ci, 2),
         util::fmt(obl.ratio / bench::lg(n), 2),
         util::fmt(sem.ratio / bench::lglg(std::min(n, m)), 2)});
  }
  table.print(std::cout);
  std::cout << "\n";
  h.maybe_json(runner);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Harness h(argc, argv, /*reps=*/120, /*seed=*/1);
  const int m = static_cast<int>(h.args.get_int("m", 8));

  bench::print_header(
      "T1-I: Table 1 row 'Independent'",
      "Paper: O(log n) [11] -> O(log log min{m,n}) (Thm 4). Ratios are "
      "E[T]/LB with LB from Lemma 1;\nexpect the obl column to grow with "
      "log n on the identical family while sem stays near-flat.");

  const std::vector<int> sizes = {8, 16, 32, 64, 128, 256};
  run_family(h, "identical(q=0.7)", core::MachineModel::identical(0.7), sizes,
             m);
  {
    bench::Harness shifted = h;
    shifted.seed += 100;
    run_family(shifted, "uniform(0.3,0.95)",
               core::MachineModel::uniform(0.3, 0.95), sizes, m);
  }

  // Growing m with n fixed: the min{m,n} in Theorem 4's bound.
  api::ExperimentRunner runner(h.runner_options());
  runner.options().seed = h.seed + 500;
  const std::vector<int> ms = {2, 4, 8, 16, 32};
  const int n = 64;
  std::vector<std::pair<std::string, std::shared_ptr<const core::Instance>>>
      grown;
  for (const int mm : ms) {
    util::Rng rng(h.seed + 500 + static_cast<std::uint64_t>(mm));
    grown.emplace_back(
        "m=" + std::to_string(mm),
        std::make_shared<const core::Instance>(core::make_independent(
            n, mm, core::MachineModel::uniform(0.3, 0.95), rng)));
  }
  runner.add_grid(grown, {"suu-i-sem"}, fast_lp1(),
                  /*auto_lower_bound=*/true);
  const auto& res = runner.run();
  util::Table table(
      {"family", "n", "m", "suu-i-sem ratio", "sem/loglog(min)"});
  for (std::size_t i = 0; i < ms.size(); ++i) {
    const api::CellResult& sem = res[i];
    table.add_row({"uniform, growing m", std::to_string(n),
                   std::to_string(ms[i]),
                   util::fmt_pm(sem.ratio, sem.ratio_ci, 2),
                   util::fmt(sem.ratio / bench::lglg(std::min(n, ms[i])), 2)});
  }
  table.print(std::cout);
  h.maybe_json(runner);
  return 0;
}
