// Shared helpers for the table/figure reproduction harnesses.
//
// All Monte-Carlo measurement goes through suu::api (SolverRegistry +
// ExperimentRunner); this header only carries the CLI conventions and the
// normalization helpers the tables share.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "api/experiment.hpp"
#include "api/registry.hpp"
#include "core/generators.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace suu::bench {

/// log2 clamped below at 1 (so ratios of tiny instances stay meaningful).
inline double lg(double x) { return std::max(1.0, std::log2(x)); }
/// log2 log2 clamped below at 1.
inline double lglg(double x) { return std::max(1.0, std::log2(lg(x))); }

/// Shared flags of every harness binary: --reps, --seed, --threads
/// (replication fan-out; 0 = default pool), --cell-threads (cross-cell
/// fan-out; 1 = sequential cells, 0 = hardware concurrency — output is
/// byte-identical either way), --json (emit machine-readable rows after
/// each table) and --solvers (list the registry and exit).
struct Harness {
  util::Args args;
  int reps;
  std::uint64_t seed;
  unsigned threads;
  unsigned cell_threads;
  bool json;

  Harness(int argc, char** argv, int default_reps, std::uint64_t default_seed)
      : args(argc, argv),
        reps(static_cast<int>(args.get_int("reps", default_reps))),
        seed(static_cast<std::uint64_t>(
            args.get_int("seed", static_cast<std::int64_t>(default_seed)))),
        threads(static_cast<unsigned>(std::max<std::int64_t>(
            0, args.get_int("threads", 0)))),
        cell_threads(static_cast<unsigned>(std::max<std::int64_t>(
            0, args.get_int("cell-threads", 1)))),
        json(args.has("json")) {
    if (args.has("solvers")) {
      const api::SolverRegistry& reg = api::SolverRegistry::global();
      for (const std::string& name : reg.names()) {
        std::cout << name << " — " << reg.summary(name) << "\n";
      }
      std::exit(0);
    }
  }

  /// Runner defaults seeded from the flags; tweak fields as needed.
  api::ExperimentRunner::Options runner_options() const {
    api::ExperimentRunner::Options opt;
    opt.seed = seed;
    opt.replications = reps;
    opt.threads = threads;
    opt.cell_threads = cell_threads;
    return opt;
  }

  /// Emit the runner's unified JSON rows when --json was passed.
  void maybe_json(const api::ExperimentRunner& runner) const {
    if (json) runner.print_json(std::cout);
  }
};

inline void print_header(const std::string& title, const std::string& what) {
  std::cout << "\n=== " << title << " ===\n" << what << "\n\n";
}

}  // namespace suu::bench
