// Shared helpers for the table/figure reproduction harnesses.
#pragma once

#include <cmath>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "algos/lower_bounds.hpp"
#include "core/generators.hpp"
#include "sim/engine.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace suu::bench {

/// log2 clamped below at 1 (so ratios of tiny instances stay meaningful).
inline double lg(double x) { return std::max(1.0, std::log2(x)); }
/// log2 log2 clamped below at 1.
inline double lglg(double x) { return std::max(1.0, std::log2(lg(x))); }

struct MeasuredRatio {
  double ratio = 0.0;      ///< E[T] / LB
  double ci = 0.0;         ///< 95% CI half-width of the ratio
  double makespan = 0.0;   ///< E[T]
};

inline MeasuredRatio measure(const core::Instance& inst,
                             const sim::PolicyFactory& factory, double lb,
                             int reps, std::uint64_t seed,
                             bool strict = false) {
  sim::EstimateOptions opt;
  opt.replications = reps;
  opt.seed = seed;
  opt.strict_eligibility = strict;
  const util::Estimate e = sim::estimate_makespan(inst, factory, opt);
  MeasuredRatio r;
  r.makespan = e.mean;
  r.ratio = e.mean / lb;
  r.ci = e.ci95_half / lb;
  return r;
}

inline void print_header(const std::string& title, const std::string& what) {
  std::cout << "\n=== " << title << " ===\n" << what << "\n\n";
}

}  // namespace suu::bench
