// F-LP — Lemma 2 / Lemma 6 quality: the flow rounding is O(1) against the
// fractional LP, per-job delivered mass meets the target, and the
// DESIGN.md ablations:
//   * trim on/off — the paper's floor(6 D) construction over-delivers ~6x;
//     trimming recovers most of it without touching any guarantee.
//   * simplex vs Frank–Wolfe fractional solve — value gap and rounded-load
//     gap stay small.
#include "bench_common.hpp"

#include "rounding/lp1.hpp"
#include "rounding/lp2.hpp"

using namespace suu;

namespace {

std::vector<int> all_jobs(const core::Instance& inst) {
  std::vector<int> v(static_cast<std::size_t>(inst.num_jobs()));
  for (int j = 0; j < inst.num_jobs(); ++j) v[static_cast<std::size_t>(j)] = j;
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  // Deterministic LP/rounding evaluations — no Monte-Carlo cells, so only
  // the shared CLI conventions of the api-based harnesses are used here.
  const bench::Harness h(argc, argv, /*reps=*/1, /*seed=*/6);
  const std::uint64_t seed = h.seed;

  bench::print_header(
      "F-LP: Lemma 2 / Lemma 6 rounding quality + ablations",
      "'load/t*' is max machine load of the integral assignment over the "
      "fractional optimum (paper: <= ~6).\n'min mass' is the worst per-job "
      "delivered log mass over the target L (must be >= 1).");

  // ---- Lemma 2 (LP1), trim ablation and solver ablation.
  util::Table t1({"family", "n", "m", "L", "solver", "trim", "load/t*",
                  "min mass/L"});
  struct Case {
    std::string family;
    int n, m;
    double L;
    core::MachineModel model;
  };
  const std::vector<Case> cases = {
      {"uniform", 24, 6, 0.5, core::MachineModel::uniform(0.2, 0.95)},
      {"uniform", 64, 8, 0.5, core::MachineModel::uniform(0.2, 0.95)},
      {"sparse", 48, 8, 1.0, core::MachineModel::sparse(0.4, 0.3, 0.9)},
      {"identical", 64, 8, 2.0, core::MachineModel::identical(0.7)},
  };
  for (const auto& c : cases) {
    for (const auto solver : {rounding::Lp1Options::Solver::Simplex,
                              rounding::Lp1Options::Solver::FrankWolfe}) {
      for (const bool trim : {true, false}) {
        util::Rng rng(seed + static_cast<std::uint64_t>(c.n));
        core::Instance inst = core::make_independent(c.n, c.m, c.model, rng);
        const auto jobs = all_jobs(inst);
        rounding::Lp1Options opt;
        opt.solver = solver;
        const rounding::Lp1Fractional frac =
            rounding::solve_lp1(inst, jobs, c.L, opt);
        const sched::IntegralAssignment x =
            rounding::round_lp1(inst, jobs, c.L, frac, trim);
        double min_mass = 1e300;
        for (const int j : jobs) {
          min_mass = std::min(min_mass, x.delivered_mass(inst, j, c.L));
        }
        t1.add_row({c.family, std::to_string(c.n), std::to_string(c.m),
                    util::fmt(c.L, 1),
                    solver == rounding::Lp1Options::Solver::Simplex
                        ? "simplex"
                        : "frank-wolfe",
                    trim ? "on" : "off",
                    util::fmt(static_cast<double>(x.max_load()) / frac.t, 2),
                    util::fmt(min_mass / c.L, 2)});
      }
    }
  }
  t1.print(std::cout);

  // ---- Lemma 6 (LP2): loads AND chain lengths are O(t*).
  std::cout << "\nLemma 6 (chains): loads and chain lengths vs t*\n\n";
  util::Table t2({"n", "m", "chains", "t* (LP2)", "load/t*",
                  "max chain len/t*", "min mass"});
  for (const int n_chains : {4, 8, 14}) {
    util::Rng rng(seed + 900 + static_cast<std::uint64_t>(n_chains));
    core::Instance inst = core::make_chains(
        n_chains, 2, 6, 5, core::MachineModel::uniform(0.25, 0.95), rng);
    const auto chains = inst.dag().chains();
    const rounding::Lp2Result r = rounding::solve_and_round_lp2(inst, chains);
    double max_len = 0;
    for (const auto& chain : chains) {
      std::int64_t len = 0;
      for (const int j : chain) len += r.d[j];
      max_len = std::max(max_len, static_cast<double>(len));
    }
    double min_mass = 1e300;
    for (int j = 0; j < inst.num_jobs(); ++j) {
      min_mass = std::min(min_mass, r.assignment.delivered_mass(inst, j, 1.0));
    }
    t2.add_row({std::to_string(inst.num_jobs()), "5",
                std::to_string(n_chains), util::fmt(r.t_fractional, 2),
                util::fmt(static_cast<double>(r.assignment.max_load()) /
                              r.t_fractional, 2),
                util::fmt(max_len / r.t_fractional, 2),
                util::fmt(min_mass, 2)});
  }
  t2.print(std::cout);
  return 0;
}
