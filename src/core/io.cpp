#include "core/io.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "util/check.hpp"

namespace suu::core {
namespace {

constexpr const char* kMagic = "suu-instance";
constexpr const char* kVersion = "v1";

[[noreturn]] void parse_fail(const std::string& what) {
  throw ParseError("instance parse error: " + what);
}

// Skip comment lines and return the next token.
std::string next_token(std::istream& is, const char* what) {
  std::string tok;
  while (is >> tok) {
    if (tok[0] == '#') {
      std::string rest;
      std::getline(is, rest);
      continue;
    }
    return tok;
  }
  parse_fail(std::string("unexpected end of stream while reading ") + what);
}

double next_double(std::istream& is, const char* what) {
  const std::string tok = next_token(is, what);
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(tok, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != tok.size() || pos == 0) {
    parse_fail("bad number '" + tok + "' for " + what);
  }
  return v;
}

long next_long(std::istream& is, const char* what) {
  const std::string tok = next_token(is, what);
  std::size_t pos = 0;
  long v = 0;
  try {
    v = std::stol(tok, &pos);  // throws out_of_range on overflow
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != tok.size() || pos == 0) {
    parse_fail("bad integer '" + tok + "' for " + what);
  }
  return v;
}

}  // namespace

void write_instance(std::ostream& os, const Instance& inst) {
  os << kMagic << ' ' << kVersion << '\n';
  os << inst.num_jobs() << ' ' << inst.num_machines() << '\n';
  os << std::setprecision(17);
  for (int j = 0; j < inst.num_jobs(); ++j) {
    for (int i = 0; i < inst.num_machines(); ++i) {
      os << (i ? " " : "") << inst.q(i, j);
    }
    os << '\n';
  }
  os << inst.dag().num_edges() << '\n';
  for (int u = 0; u < inst.num_jobs(); ++u) {
    for (const int v : inst.dag().succs(u)) {
      os << u << ' ' << v << '\n';
    }
  }
}

Instance read_instance(std::istream& is, const ReadLimits& limits) {
  if (next_token(is, "magic") != kMagic) {
    parse_fail("not an suu-instance stream");
  }
  if (next_token(is, "version") != kVersion) parse_fail("unsupported version");
  const long n = next_long(is, "job count");
  const long m = next_long(is, "machine count");
  if (n < 1 || n > limits.max_jobs) {
    parse_fail("job count " + std::to_string(n) + " outside [1, " +
               std::to_string(limits.max_jobs) + "]");
  }
  if (m < 1 || m > limits.max_machines) {
    parse_fail("machine count " + std::to_string(m) + " outside [1, " +
               std::to_string(limits.max_machines) + "]");
  }
  // Guard the n*m allocation before it happens: both factors are bounded
  // above, so the product cannot overflow long on 64-bit.
  if (n > limits.max_cells / m) {
    parse_fail("probability matrix " + std::to_string(n) + "x" +
               std::to_string(m) + " exceeds the " +
               std::to_string(limits.max_cells) + "-cell limit");
  }
  std::vector<double> q(static_cast<std::size_t>(n) *
                        static_cast<std::size_t>(m));
  for (std::size_t idx = 0; idx < q.size(); ++idx) {
    const double v = next_double(is, "failure probability");
    const long job = static_cast<long>(idx) / m;
    const long machine = static_cast<long>(idx) % m;
    if (!(v >= 0.0 && v <= 1.0)) {  // NaN fails both comparisons
      std::ostringstream os;
      os << "q(" << machine << "," << job << ") = " << v
         << " is not a probability in [0,1]";
      parse_fail(os.str());
    }
    q[idx] = v;
  }
  const long edges = next_long(is, "edge count");
  if (edges < 0 || edges > limits.max_edges) {
    parse_fail("edge count " + std::to_string(edges) + " outside [0, " +
               std::to_string(limits.max_edges) + "]");
  }
  Dag dag(static_cast<int>(n));
  for (long e = 0; e < edges; ++e) {
    const long u = next_long(is, "edge source");
    const long v = next_long(is, "edge target");
    if (u < 0 || u >= n || v < 0 || v >= n) {
      parse_fail("edge " + std::to_string(u) + "->" + std::to_string(v) +
                 " references a job outside [0, " + std::to_string(n) + ")");
    }
    if (u == v) parse_fail("self-loop edge on job " + std::to_string(u));
    try {
      dag.add_edge(static_cast<int>(u), static_cast<int>(v));
    } catch (const util::CheckError&) {
      parse_fail("duplicate edge " + std::to_string(u) + "->" +
                 std::to_string(v));
    }
  }
  try {
    dag.validate_acyclic();
  } catch (const util::CheckError&) {
    parse_fail("precedence edges contain a cycle");
  }
  try {
    return Instance(static_cast<int>(n), static_cast<int>(m), std::move(q),
                    std::move(dag));
  } catch (const ParseError&) {
    throw;
  } catch (const util::CheckError& err) {
    // Semantic validation the Instance constructor owns (e.g. a job with no
    // machine of q < 1), rephrased as input rejection.
    parse_fail(std::string("invalid instance: ") + err.what());
  }
}

void save_instance(const std::string& path, const Instance& inst) {
  std::ofstream os(path);
  SUU_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  write_instance(os, inst);
  SUU_CHECK_MSG(os.good(), "write to " << path << " failed");
}

Instance load_instance(const std::string& path) {
  std::ifstream is(path);
  SUU_CHECK_MSG(is.good(), "cannot open " << path);
  return read_instance(is);
}

}  // namespace suu::core
