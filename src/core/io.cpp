#include "core/io.hpp"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "util/check.hpp"

namespace suu::core {
namespace {

constexpr const char* kMagic = "suu-instance";
constexpr const char* kVersion = "v1";

// Skip comment lines and return the next token.
std::string next_token(std::istream& is) {
  std::string tok;
  while (is >> tok) {
    if (tok[0] == '#') {
      std::string rest;
      std::getline(is, rest);
      continue;
    }
    return tok;
  }
  SUU_CHECK_MSG(false, "unexpected end of instance stream");
  return {};
}

double next_double(std::istream& is) {
  const std::string tok = next_token(is);
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(tok, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  SUU_CHECK_MSG(pos == tok.size() && pos > 0, "bad number '" << tok << "'");
  return v;
}

long next_long(std::istream& is) {
  const std::string tok = next_token(is);
  std::size_t pos = 0;
  long v = 0;
  try {
    v = std::stol(tok, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  SUU_CHECK_MSG(pos == tok.size() && pos > 0, "bad integer '" << tok << "'");
  return v;
}

}  // namespace

void write_instance(std::ostream& os, const Instance& inst) {
  os << kMagic << ' ' << kVersion << '\n';
  os << inst.num_jobs() << ' ' << inst.num_machines() << '\n';
  os << std::setprecision(17);
  for (int j = 0; j < inst.num_jobs(); ++j) {
    for (int i = 0; i < inst.num_machines(); ++i) {
      os << (i ? " " : "") << inst.q(i, j);
    }
    os << '\n';
  }
  os << inst.dag().num_edges() << '\n';
  for (int u = 0; u < inst.num_jobs(); ++u) {
    for (const int v : inst.dag().succs(u)) {
      os << u << ' ' << v << '\n';
    }
  }
}

Instance read_instance(std::istream& is) {
  SUU_CHECK_MSG(next_token(is) == kMagic, "not an suu-instance stream");
  SUU_CHECK_MSG(next_token(is) == kVersion, "unsupported version");
  const long n = next_long(is);
  const long m = next_long(is);
  SUU_CHECK_MSG(n >= 1 && m >= 1 && n < (1L << 24) && m < (1L << 24),
                "implausible dimensions " << n << "x" << m);
  std::vector<double> q(static_cast<std::size_t>(n) *
                        static_cast<std::size_t>(m));
  for (auto& v : q) v = next_double(is);
  const long edges = next_long(is);
  SUU_CHECK_MSG(edges >= 0, "negative edge count");
  Dag dag(static_cast<int>(n));
  for (long e = 0; e < edges; ++e) {
    const long u = next_long(is);
    const long v = next_long(is);
    dag.add_edge(static_cast<int>(u), static_cast<int>(v));
  }
  return Instance(static_cast<int>(n), static_cast<int>(m), std::move(q),
                  std::move(dag));
}

void save_instance(const std::string& path, const Instance& inst) {
  std::ofstream os(path);
  SUU_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  write_instance(os, inst);
  SUU_CHECK_MSG(os.good(), "write to " << path << " failed");
}

Instance load_instance(const std::string& path) {
  std::ifstream is(path);
  SUU_CHECK_MSG(is.good(), "cannot open " << path);
  return read_instance(is);
}

}  // namespace suu::core
