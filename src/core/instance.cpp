#include "core/instance.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/hash.hpp"

namespace suu::core {

Instance::Instance(int n, int m, std::vector<double> q, Dag dag)
    : n_(n), m_(m), q_(std::move(q)), dag_(std::move(dag)) {
  SUU_CHECK(n >= 1 && m >= 1);
  SUU_CHECK_MSG(q_.size() == static_cast<std::size_t>(n) * m,
                "q matrix has wrong size");
  SUU_CHECK_MSG(dag_.num_vertices() == n, "dag size != number of jobs");
  dag_.validate_acyclic();

  ell_.resize(q_.size());
  for (int j = 0; j < n_; ++j) {
    bool has_capable = false;
    for (int i = 0; i < m_; ++i) {
      const double qij = q_[static_cast<std::size_t>(j) * m_ + i];
      SUU_CHECK_MSG(qij >= 0.0 && qij <= 1.0,
                    "q(" << i << "," << j << ") = " << qij
                         << " outside [0,1]");
      if (qij < 1.0) has_capable = true;
      double e = (qij <= 0.0) ? kMaxEll : -std::log2(qij);
      e = std::clamp(e, 0.0, kMaxEll);
      ell_[static_cast<std::size_t>(j) * m_ + i] = e;
    }
    SUU_CHECK_MSG(has_capable,
                  "job " << j << " has no machine with q < 1 (paper WLOG)");
  }

  std::uint64_t h = util::hash_mix(0x5355554921ULL);  // "SUU!"
  h = util::hash_combine(h, static_cast<std::uint64_t>(n_));
  h = util::hash_combine(h, static_cast<std::uint64_t>(m_));
  for (const double q : q_) h = util::hash_combine(h, q);
  for (int v = 0; v < n_; ++v) {
    for (const int u : dag_.preds(v)) {
      h = util::hash_combine(h, (static_cast<std::uint64_t>(u) << 32) |
                                    static_cast<std::uint32_t>(v));
    }
  }
  fingerprint_ = h;
}

Instance Instance::independent(int n, int m, std::vector<double> q) {
  return Instance(n, m, std::move(q), Dag(n));
}

double Instance::total_ell(int job) const {
  double s = 0.0;
  for (int i = 0; i < m_; ++i) s += ell(i, job);
  return s;
}

double Instance::max_ell(int job) const {
  double s = 0.0;
  for (int i = 0; i < m_; ++i) s = std::max(s, ell(i, job));
  return s;
}

}  // namespace suu::core
