// Plain-text serialization for SUU instances.
//
// Format (whitespace-separated, '#' comments allowed at line starts):
//
//   suu-instance v1
//   <n> <m>
//   <n rows of m failure probabilities q_ij, row-major by job>
//   <edge count>
//   <edge count rows of "u v"> (u precedes v)
//
// Round-trips exactly at 17 significant digits.
//
// read_instance is hardened against malformed and adversarial input (the
// suu::serve wire format feeds it untrusted bytes): dimension overflow,
// out-of-range or duplicate edges, cycle-inducing edge sets, and NaN or
// out-of-[0,1] probabilities all raise a typed ParseError — never an
// assert/abort, and never an unbounded allocation (see ReadLimits).
#pragma once

#include <iosfwd>
#include <string>

#include "core/instance.hpp"
#include "util/check.hpp"

namespace suu::core {

/// Raised by read_instance / load_instance on malformed input. Derives from
/// util::CheckError so legacy catch sites keep working, but carries a
/// parser-phrased message (what was wrong with the bytes, not which internal
/// invariant tripped).
class ParseError : public util::CheckError {
 public:
  explicit ParseError(const std::string& what) : util::CheckError(what) {}
};

/// Caps on what read_instance will accept before allocating. The defaults
/// admit every instance the experiments generate while bounding a hostile
/// header like "16777215 16777215" (which would otherwise try to allocate
/// ~2^48 doubles) to a cheap rejection.
struct ReadLimits {
  long max_jobs = 1L << 24;
  long max_machines = 1L << 24;
  long max_cells = 1L << 26;  ///< n * m
  long max_edges = 1L << 24;
};

void write_instance(std::ostream& os, const Instance& inst);
Instance read_instance(std::istream& is, const ReadLimits& limits = {});

void save_instance(const std::string& path, const Instance& inst);
Instance load_instance(const std::string& path);

}  // namespace suu::core
