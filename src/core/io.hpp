// Plain-text serialization for SUU instances.
//
// Format (whitespace-separated, '#' comments allowed at line starts):
//
//   suu-instance v1
//   <n> <m>
//   <n rows of m failure probabilities q_ij, row-major by job>
//   <edge count>
//   <edge count rows of "u v"> (u precedes v)
//
// Round-trips exactly at 17 significant digits.
#pragma once

#include <iosfwd>
#include <string>

#include "core/instance.hpp"

namespace suu::core {

void write_instance(std::ostream& os, const Instance& inst);
Instance read_instance(std::istream& is);

void save_instance(const std::string& path, const Instance& inst);
Instance load_instance(const std::string& path);

}  // namespace suu::core
