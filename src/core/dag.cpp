#include "core/dag.hpp"

#include <algorithm>
#include <queue>

#include "util/check.hpp"

namespace suu::core {

Dag::Dag(int n) {
  SUU_CHECK(n >= 0);
  preds_.resize(n);
  succs_.resize(n);
}

void Dag::add_edge(int u, int v) {
  SUU_CHECK(u >= 0 && u < num_vertices());
  SUU_CHECK(v >= 0 && v < num_vertices());
  SUU_CHECK_MSG(u != v, "self-loop " << u);
  SUU_CHECK_MSG(std::find(succs_[u].begin(), succs_[u].end(), v) ==
                    succs_[u].end(),
                "duplicate edge " << u << "->" << v);
  succs_[u].push_back(v);
  preds_[v].push_back(u);
  ++n_edges_;
}

const std::vector<int>& Dag::preds(int v) const {
  SUU_CHECK(v >= 0 && v < num_vertices());
  return preds_[v];
}

const std::vector<int>& Dag::succs(int v) const {
  SUU_CHECK(v >= 0 && v < num_vertices());
  return succs_[v];
}

bool Dag::is_chains() const {
  for (int v = 0; v < num_vertices(); ++v) {
    if (preds_[v].size() > 1 || succs_[v].size() > 1) return false;
  }
  return true;
}

bool Dag::is_out_forest() const {
  for (int v = 0; v < num_vertices(); ++v) {
    if (preds_[v].size() > 1) return false;
  }
  return true;
}

bool Dag::is_in_forest() const {
  for (int v = 0; v < num_vertices(); ++v) {
    if (succs_[v].size() > 1) return false;
  }
  return true;
}

std::vector<int> Dag::topo_order() const {
  std::vector<int> indeg(num_vertices());
  for (int v = 0; v < num_vertices(); ++v) {
    indeg[v] = static_cast<int>(preds_[v].size());
  }
  std::queue<int> q;
  for (int v = 0; v < num_vertices(); ++v) {
    if (indeg[v] == 0) q.push(v);
  }
  std::vector<int> order;
  order.reserve(num_vertices());
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    order.push_back(u);
    for (int w : succs_[u]) {
      if (--indeg[w] == 0) q.push(w);
    }
  }
  SUU_CHECK_MSG(static_cast<int>(order.size()) == num_vertices(),
                "precedence graph contains a cycle");
  return order;
}

std::vector<std::vector<int>> Dag::chains() const {
  SUU_CHECK_MSG(is_chains(), "dag is not a disjoint union of chains");
  std::vector<std::vector<int>> result;
  std::vector<char> seen(num_vertices(), 0);
  for (int v = 0; v < num_vertices(); ++v) {
    if (!preds_[v].empty() || seen[v]) continue;
    std::vector<int> chain;
    int cur = v;
    for (;;) {
      chain.push_back(cur);
      seen[cur] = 1;
      if (succs_[cur].empty()) break;
      cur = succs_[cur][0];
    }
    result.push_back(std::move(chain));
  }
  return result;
}

std::vector<int> Dag::roots() const {
  std::vector<int> r;
  for (int v = 0; v < num_vertices(); ++v) {
    if (preds_[v].empty()) r.push_back(v);
  }
  return r;
}

}  // namespace suu::core
