// Synthetic SUU instance families.
//
// The paper has no systems evaluation, so these generators define the
// workloads for every experiment (DESIGN.md §3). Each family exercises a
// regime the theory distinguishes:
//   * Uniform       — generic unrelated machines, q_ij ~ U[lo, hi].
//   * Classes       — volunteer-computing style: a few reliable machines,
//                     many flaky ones (SETI@home motivation, paper §1).
//   * Sparse        — each job runnable only on a random subset (q = 1
//                     elsewhere), stressing the LP/flow machinery.
//   * Identical     — all q_ij equal; the coupon-collector family on which
//                     oblivious repetition provably pays a Theta(log n)
//                     factor while SUU-I-SEM pays Theta(log log n).
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.hpp"
#include "util/rng.hpp"

namespace suu::core {

struct MachineModel {
  enum class Kind { Uniform, Classes, Sparse, Identical };
  Kind kind = Kind::Uniform;

  // Uniform / Sparse (capable pairs):
  double q_lo = 0.3;
  double q_hi = 0.9;

  // Classes:
  double frac_fast = 0.2;   ///< fraction of reliable machines
  double fast_lo = 0.05;    ///< q range of reliable machines
  double fast_hi = 0.3;
  double slow_lo = 0.7;     ///< q range of flaky machines
  double slow_hi = 0.98;

  // Sparse:
  double capable_frac = 0.4;  ///< expected fraction of machines per job

  // Identical:
  double q_ident = 0.5;

  static MachineModel uniform(double lo, double hi);
  static MachineModel classes();
  static MachineModel sparse(double frac, double lo, double hi);
  static MachineModel identical(double q);
};

/// Failure matrix (row-major by job) for n jobs on m machines.
std::vector<double> gen_q(int n, int m, const MachineModel& model,
                          util::Rng& rng);

/// Independent-jobs instance (SUU-I).
Instance make_independent(int n, int m, const MachineModel& model,
                          util::Rng& rng);

/// Disjoint-chains instance (SUU-C): `n_chains` chains with lengths drawn
/// uniformly from [len_lo, len_hi].
Instance make_chains(int n_chains, int len_lo, int len_hi, int m,
                     const MachineModel& model, util::Rng& rng);

/// Chain DAG with the given chain lengths (jobs numbered consecutively).
Dag make_chain_dag(const std::vector<int>& lengths);

/// Random out-forest (every vertex has at most one predecessor): each new
/// vertex becomes a root with probability root_prob, otherwise it attaches
/// below a uniformly random earlier vertex with fewer than max_children
/// children.
Instance make_out_forest(int n, int m, double root_prob, int max_children,
                         const MachineModel& model, util::Rng& rng);

/// Random in-forest: the reverse of an out-forest.
Instance make_in_forest(int n, int m, double root_prob, int max_children,
                        const MachineModel& model, util::Rng& rng);

}  // namespace suu::core
