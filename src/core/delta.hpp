// Sparse instance deltas — the "what-if" mutation primitive behind the
// update_instance wire method.
//
// A delta edits a few q cells and adds/removes precedence edges; everything
// else (n, m, the untouched cells) carries over from the base instance.
// apply_delta validates the edit against the same invariants read_instance
// enforces on fresh payloads (cells in range and in [0,1], edges in range,
// no self-loops, no duplicates, acyclic, every job keeps a capable
// machine, edge count within ReadLimits) and raises a typed DeltaError —
// phrased in delta terms — on any violation, leaving the base untouched.
//
// Canonical edge order: the mutated dag is rebuilt from the final edge set
// sorted by (u, v), regardless of the base's insertion order. The instance
// fingerprint hashes edges in insertion order, so this is what makes delta
// chains converge — A -> B -> A lands back on A's fingerprint, and the
// mutated instance fingerprints identically to a cold write/read round-trip
// of its own bytes (write_instance emits u-ascending × succs order, which
// for a sorted-insertion dag IS (u, v) order). The flip side: a base whose
// edges were inserted out of (u, v) order fingerprints differently from its
// delta-rebuilt twin even under an empty delta — canonicalize such a base
// with apply_delta(base, {}) first when fingerprint continuity matters.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/instance.hpp"
#include "core/io.hpp"

namespace suu::core {

/// Raised by apply_delta on any semantically invalid delta (the wire maps
/// it to the "bad_delta" error code). Derives from util::CheckError via
/// ParseError-style so legacy catch sites keep working.
class DeltaError : public util::CheckError {
 public:
  explicit DeltaError(const std::string& what) : util::CheckError(what) {}
};

/// A sparse mutation of one instance. Mirrors the wire grammar
/// {"q": {"<cell>": v}, "add_edges": [[u,v],...], "del_edges": [[u,v],...]}.
struct InstanceDelta {
  /// q edits as (flat cell index, new value): cell = job * m + machine,
  /// matching the row-major layout of write_instance. Values in [0, 1];
  /// duplicate cells rejected.
  std::vector<std::pair<std::int64_t, double>> q;
  /// Edges to add (u before v). Applied AFTER del_edges, so a delta may
  /// move an edge by deleting and re-adding around it. An edge already
  /// present (post-deletion) is rejected, as are self-loops.
  std::vector<std::pair<int, int>> add_edges;
  /// Edges to remove; each must be present in the base.
  std::vector<std::pair<int, int>> del_edges;

  bool empty() const noexcept {
    return q.empty() && add_edges.empty() && del_edges.empty();
  }
};

/// Apply `delta` to `base` and return the mutated instance (canonical
/// sorted edge order — see the header comment). Throws DeltaError on any
/// invalid edit; `limits.max_edges` bounds the post-delta edge count just
/// as read_instance bounds fresh payloads.
Instance apply_delta(const Instance& base, const InstanceDelta& delta,
                     const ReadLimits& limits = {});

}  // namespace suu::core
