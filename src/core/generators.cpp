#include "core/generators.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace suu::core {

MachineModel MachineModel::uniform(double lo, double hi) {
  MachineModel m;
  m.kind = Kind::Uniform;
  m.q_lo = lo;
  m.q_hi = hi;
  return m;
}

MachineModel MachineModel::classes() {
  MachineModel m;
  m.kind = Kind::Classes;
  return m;
}

MachineModel MachineModel::sparse(double frac, double lo, double hi) {
  MachineModel m;
  m.kind = Kind::Sparse;
  m.capable_frac = frac;
  m.q_lo = lo;
  m.q_hi = hi;
  return m;
}

MachineModel MachineModel::identical(double q) {
  MachineModel m;
  m.kind = Kind::Identical;
  m.q_ident = q;
  return m;
}

std::vector<double> gen_q(int n, int m, const MachineModel& model,
                          util::Rng& rng) {
  SUU_CHECK(n >= 1 && m >= 1);
  std::vector<double> q(static_cast<std::size_t>(n) * m, 1.0);
  switch (model.kind) {
    case MachineModel::Kind::Uniform: {
      for (auto& v : q) v = rng.uniform_real(model.q_lo, model.q_hi);
      break;
    }
    case MachineModel::Kind::Classes: {
      const int n_fast = std::max(
          1, static_cast<int>(model.frac_fast * static_cast<double>(m)));
      for (int j = 0; j < n; ++j) {
        for (int i = 0; i < m; ++i) {
          const bool fast = i < n_fast;
          q[static_cast<std::size_t>(j) * m + i] =
              fast ? rng.uniform_real(model.fast_lo, model.fast_hi)
                   : rng.uniform_real(model.slow_lo, model.slow_hi);
        }
      }
      break;
    }
    case MachineModel::Kind::Sparse: {
      for (int j = 0; j < n; ++j) {
        bool any = false;
        for (int i = 0; i < m; ++i) {
          if (rng.bernoulli(model.capable_frac)) {
            q[static_cast<std::size_t>(j) * m + i] =
                rng.uniform_real(model.q_lo, model.q_hi);
            any = true;
          }
        }
        if (!any) {
          // Guarantee the paper's WLOG assumption: some machine can run j.
          const int i = static_cast<int>(rng.uniform_below(m));
          q[static_cast<std::size_t>(j) * m + i] =
              rng.uniform_real(model.q_lo, model.q_hi);
        }
      }
      break;
    }
    case MachineModel::Kind::Identical: {
      std::fill(q.begin(), q.end(), model.q_ident);
      break;
    }
  }
  return q;
}

Instance make_independent(int n, int m, const MachineModel& model,
                          util::Rng& rng) {
  return Instance::independent(n, m, gen_q(n, m, model, rng));
}

Dag make_chain_dag(const std::vector<int>& lengths) {
  int n = 0;
  for (int len : lengths) {
    SUU_CHECK(len >= 1);
    n += len;
  }
  Dag dag(n);
  int base = 0;
  for (int len : lengths) {
    for (int k = 1; k < len; ++k) dag.add_edge(base + k - 1, base + k);
    base += len;
  }
  return dag;
}

Instance make_chains(int n_chains, int len_lo, int len_hi, int m,
                     const MachineModel& model, util::Rng& rng) {
  SUU_CHECK(n_chains >= 1 && len_lo >= 1 && len_hi >= len_lo);
  std::vector<int> lengths(n_chains);
  int n = 0;
  for (auto& len : lengths) {
    len = static_cast<int>(rng.uniform_int(len_lo, len_hi));
    n += len;
  }
  return Instance(n, m, gen_q(n, m, model, rng), make_chain_dag(lengths));
}

namespace {

Dag random_out_forest_dag(int n, double root_prob, int max_children,
                          util::Rng& rng) {
  SUU_CHECK(n >= 1 && max_children >= 1);
  Dag dag(n);
  std::vector<int> child_count(n, 0);
  for (int v = 1; v < n; ++v) {
    if (rng.bernoulli(root_prob)) continue;  // new root
    // Pick a random earlier vertex with spare child capacity; fall back to
    // a root if none is found quickly.
    int parent = -1;
    for (int tries = 0; tries < 8; ++tries) {
      const int cand = static_cast<int>(rng.uniform_below(v));
      if (child_count[cand] < max_children) {
        parent = cand;
        break;
      }
    }
    if (parent < 0) continue;
    dag.add_edge(parent, v);
    ++child_count[parent];
  }
  return dag;
}

}  // namespace

Instance make_out_forest(int n, int m, double root_prob, int max_children,
                         const MachineModel& model, util::Rng& rng) {
  Dag dag = random_out_forest_dag(n, root_prob, max_children, rng);
  return Instance(n, m, gen_q(n, m, model, rng), std::move(dag));
}

Instance make_in_forest(int n, int m, double root_prob, int max_children,
                        const MachineModel& model, util::Rng& rng) {
  const Dag out = random_out_forest_dag(n, root_prob, max_children, rng);
  Dag in(n);
  for (int v = 0; v < n; ++v) {
    for (int w : out.succs(v)) in.add_edge(w, v);  // reverse every edge
  }
  return Instance(n, m, gen_q(n, m, model, rng), std::move(in));
}

}  // namespace suu::core
