// The SUU problem instance: (J, M, {q_ij}, G).
//
// q(i, j) is the probability that job j does NOT complete when machine i
// runs it for one unit step (paper §2). The log failure
// ell(i, j) = -log2 q(i, j) is the "work" interpretation used by the SUU*
// reformulation (Appendix A): a job completes once its accrued log mass
// exceeds -log2 r_j for a hidden uniform draw r_j.
//
// Numerics: q == 0 (a machine that always succeeds) would make ell infinite;
// we clamp ell at kMaxEll = 64, i.e. treat failure probabilities below
// 2^-64 as 2^-64. Doubles cannot draw r_j below ~2^-53, so a clamped
// machine still completes its job in one step under both semantics.
#pragma once

#include <cstdint>
#include <vector>

#include "core/dag.hpp"

namespace suu::core {

class Instance {
 public:
  /// Log-failure clamp: ell values are capped at 64 bits.
  static constexpr double kMaxEll = 64.0;

  /// q is row-major by job: q[j * m + i] is q_{ij}.
  /// Requirements (validated): |q| == n*m, every q in [0,1], every job has
  /// a machine with q < 1, dag has n vertices and is acyclic.
  Instance(int n, int m, std::vector<double> q, Dag dag);

  /// Convenience: instance with no precedence constraints (SUU-I).
  static Instance independent(int n, int m, std::vector<double> q);

  int num_jobs() const noexcept { return n_; }
  int num_machines() const noexcept { return m_; }

  /// Failure probability of job j on machine i for one step.
  double q(int machine, int job) const noexcept {
    return q_[static_cast<std::size_t>(job) * m_ + machine];
  }
  /// Log failure ell_{ij} = -log2 q_{ij}, clamped to [0, kMaxEll].
  double ell(int machine, int job) const noexcept {
    return ell_[static_cast<std::size_t>(job) * m_ + machine];
  }
  /// Truncated log failure min(ell_{ij}, cap) used by the LP relaxations.
  double ell_capped(int machine, int job, double cap) const noexcept {
    const double e = ell(machine, job);
    return e < cap ? e : cap;
  }

  /// Sum of ell over all machines for one job (the best-case per-step mass
  /// when every machine gangs up on it).
  double total_ell(int job) const;
  /// Largest single-machine ell for a job.
  double max_ell(int job) const;

  const Dag& dag() const noexcept { return dag_; }
  bool is_independent() const noexcept { return dag_.is_empty(); }

  /// 64-bit content hash of (n, m, every q bit pattern, every dag edge),
  /// computed once at construction. Two instances built from the same data
  /// always collide; any q perturbation or edge change yields a different
  /// value (up to hash collisions). Keys the api::PrecomputeCache so grid
  /// cells sharing an instance reuse LP/DP artifacts.
  std::uint64_t fingerprint() const noexcept { return fingerprint_; }

 private:
  int n_;
  int m_;
  std::vector<double> q_;
  std::vector<double> ell_;
  Dag dag_;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace suu::core
