// Precedence DAGs for SUU instances.
//
// Vertices are jobs; an edge (u, v) means u must complete before v becomes
// eligible. The paper's algorithms treat three structural classes
// specially: the empty DAG (SUU-I), disjoint chains (SUU-C) and directed
// forests (SUU-T); the recognizers below drive that dispatch.
#pragma once

#include <vector>

namespace suu::core {

class Dag {
 public:
  /// DAG with n vertices and no edges.
  explicit Dag(int n);

  int num_vertices() const noexcept { return static_cast<int>(preds_.size()); }
  int num_edges() const noexcept { return n_edges_; }

  /// Add the precedence edge u -> v (u before v). Duplicate edges rejected.
  void add_edge(int u, int v);

  const std::vector<int>& preds(int v) const;
  const std::vector<int>& succs(int v) const;

  bool is_empty() const noexcept { return n_edges_ == 0; }

  /// True when every vertex has at most one predecessor and at most one
  /// successor (a disjoint union of chains; isolated vertices count as
  /// length-1 chains).
  bool is_chains() const;

  /// True when every vertex has at most one predecessor (disjoint out-trees).
  bool is_out_forest() const;
  /// True when every vertex has at most one successor (disjoint in-trees).
  bool is_in_forest() const;

  /// Topological order; throws util::CheckError when the graph has a cycle.
  std::vector<int> topo_order() const;

  /// Throws util::CheckError when the graph has a cycle.
  void validate_acyclic() const { (void)topo_order(); }

  /// Decompose into chains; requires is_chains(). Every vertex appears in
  /// exactly one chain, listed in precedence order.
  std::vector<std::vector<int>> chains() const;

  /// Vertices with no predecessor.
  std::vector<int> roots() const;

 private:
  std::vector<std::vector<int>> preds_;
  std::vector<std::vector<int>> succs_;
  int n_edges_ = 0;
};

}  // namespace suu::core
