#include "core/delta.hpp"

#include <cmath>
#include <set>
#include <sstream>
#include <string>

namespace suu::core {
namespace {

[[noreturn]] void delta_fail(const std::string& message) {
  throw DeltaError(message);
}

std::string edge_str(int u, int v) {
  return "(" + std::to_string(u) + ", " + std::to_string(v) + ")";
}

void check_vertex(int v, int n, const char* where) {
  if (v < 0 || v >= n) {
    delta_fail(std::string(where) + " names vertex " + std::to_string(v) +
               " outside [0, " + std::to_string(n) + ")");
  }
}

}  // namespace

Instance apply_delta(const Instance& base, const InstanceDelta& delta,
                     const ReadLimits& limits) {
  const int n = base.num_jobs();
  const int m = base.num_machines();
  const std::int64_t cells = static_cast<std::int64_t>(n) * m;

  // q edits first: range, value, and duplicate checks before any work.
  std::vector<double> q(static_cast<std::size_t>(cells));
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      q[static_cast<std::size_t>(j) * m + i] = base.q(i, j);
    }
  }
  std::set<std::int64_t> touched;
  for (const auto& [cell, value] : delta.q) {
    if (cell < 0 || cell >= cells) {
      delta_fail("q cell " + std::to_string(cell) + " outside [0, " +
                 std::to_string(cells) + ") (cell = job * m + machine)");
    }
    if (!std::isfinite(value) || value < 0.0 || value > 1.0) {
      std::ostringstream os;
      os << "q cell " << cell << " value " << value << " outside [0, 1]";
      delta_fail(os.str());
    }
    if (!touched.insert(cell).second) {
      delta_fail("q cell " + std::to_string(cell) + " edited twice");
    }
    q[static_cast<std::size_t>(cell)] = value;
  }

  // Edge edits against the base's edge SET — deletions first, so a delta
  // may re-add around a deleted edge in one shot.
  std::set<std::pair<int, int>> edges;
  for (int v = 0; v < n; ++v) {
    for (const int u : base.dag().preds(v)) edges.emplace(u, v);
  }
  for (const auto& [u, v] : delta.del_edges) {
    check_vertex(u, n, "del_edges");
    check_vertex(v, n, "del_edges");
    if (edges.erase({u, v}) == 0) {
      delta_fail("del_edges: edge " + edge_str(u, v) +
                 " is not present (or was already deleted by this delta)");
    }
  }
  for (const auto& [u, v] : delta.add_edges) {
    check_vertex(u, n, "add_edges");
    check_vertex(v, n, "add_edges");
    if (u == v) {
      delta_fail("add_edges: self-loop " + edge_str(u, v));
    }
    if (!edges.emplace(u, v).second) {
      delta_fail("add_edges: edge " + edge_str(u, v) +
                 " is already present (or added twice by this delta)");
    }
  }
  if (static_cast<long>(edges.size()) > limits.max_edges) {
    delta_fail("edge count " + std::to_string(edges.size()) + " exceeds " +
               std::to_string(limits.max_edges));
  }

  // Rebuild in sorted (u, v) order — the canonical insertion order that
  // makes fingerprints of delta chains converge (see header comment).
  // std::set iteration already yields exactly that order.
  Dag dag(n);
  for (const auto& [u, v] : edges) dag.add_edge(u, v);

  // The Instance constructor revalidates acyclicity and per-job
  // capability; rephrase its violations in delta terms so the wire error
  // says what the EDIT broke, not which internal invariant tripped.
  try {
    return Instance(n, m, std::move(q), std::move(dag));
  } catch (const DeltaError&) {
    throw;
  } catch (const util::CheckError& err) {
    delta_fail(std::string("delta produces an invalid instance: ") +
               err.what());
  }
}

}  // namespace suu::core
