#include "api/precompute_cache.hpp"

#include "util/check.hpp"

namespace suu::api {

PrecomputeCache& PrecomputeCache::global() {
  static PrecomputeCache* cache = new PrecomputeCache();
  return *cache;
}

sim::PolicyFactory PrecomputeCache::get_or_prepare(
    std::uint64_t key, const std::function<sim::PolicyFactory()>& make) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      return it->second;
    }
    ++stats_.misses;
  }
  sim::PolicyFactory made = make();  // outside the lock: may solve LPs
  SUU_CHECK_MSG(made != nullptr, "preparer returned a null factory");
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = entries_.emplace(key, made);
  if (inserted) {
    order_.push_back(key);
    evict_over_capacity_locked();
  }
  // A racing thread may have inserted first; both computed the same
  // deterministic value, so returning our own copy changes nothing.
  return made;
}

void PrecomputeCache::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity > 0 ? capacity : 1;
  evict_over_capacity_locked();
}

void PrecomputeCache::evict_over_capacity_locked() {
  while (entries_.size() > capacity_ && !order_.empty()) {
    entries_.erase(order_.front());
    order_.pop_front();
    ++stats_.evictions;
  }
}

void PrecomputeCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  order_.clear();
}

void PrecomputeCache::reset_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = Stats{};
}

PrecomputeCache::Stats PrecomputeCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.size = entries_.size();
  return s;
}

}  // namespace suu::api
