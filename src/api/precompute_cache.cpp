#include "api/precompute_cache.hpp"

#include <utility>

#include "util/check.hpp"

namespace suu::api {

PrecomputeCache& PrecomputeCache::global() {
  static PrecomputeCache* cache = new PrecomputeCache();
  return *cache;
}

sim::PolicyFactory PrecomputeCache::get_or_prepare(
    std::uint64_t key, const std::function<sim::PolicyFactory()>& make) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      // Touch: move to most-recently-used position.
      lru_.splice(lru_.end(), lru_, it->second.lru_it);
      return it->second.factory;
    }
    ++stats_.misses;
  }
  sim::PolicyFactory made = make();  // outside the lock: may solve LPs
  SUU_CHECK_MSG(made != nullptr, "preparer returned a null factory");
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    // A racing thread inserted first; both computed the same deterministic
    // value, so returning our own copy changes nothing. Touch the entry —
    // this lookup still counts as a use.
    lru_.splice(lru_.end(), lru_, it->second.lru_it);
    return made;
  }
  const auto lru_it = lru_.insert(lru_.end(), key);
  entries_.emplace(key, Entry{made, lru_it, nullptr, 0});
  evict_over_capacity_locked();
  return made;
}

void PrecomputeCache::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity > 0 ? capacity : 1;
  evict_over_capacity_locked();
}

void PrecomputeCache::pin(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  ++pins_[key];
}

void PrecomputeCache::unpin(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = pins_.find(key);
  if (it == pins_.end()) return;
  if (--it->second == 0) {
    pins_.erase(it);
    evict_over_capacity_locked();
  }
}

void PrecomputeCache::evict_over_capacity_locked() {
  // Oldest-first, skipping pinned keys. When everything left is pinned the
  // iterator runs off the end and the cache stays over capacity until an
  // unpin makes a victim available.
  auto victim = lru_.begin();
  while (entries_.size() > capacity_ && victim != lru_.end()) {
    if (pins_.count(*victim) > 0) {
      ++victim;
      continue;
    }
    entries_.erase(*victim);
    victim = lru_.erase(victim);
    ++stats_.evictions;
  }
}

void PrecomputeCache::annotate(std::uint64_t key, std::uint64_t parent_key,
                               std::vector<int> basis, bool cert_unique) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return;  // evicted, or lost the insert race
  it->second.parent_key = parent_key;
  it->second.cert_unique = cert_unique;
  if (!basis.empty()) {
    it->second.basis =
        std::make_shared<const std::vector<int>>(std::move(basis));
  }
}

std::shared_ptr<const std::vector<int>> PrecomputeCache::basis(
    std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : it->second.basis;
}

bool PrecomputeCache::certified_unique(std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  return it != entries_.end() && it->second.cert_unique;
}

std::uint64_t PrecomputeCache::parent(std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  return it == entries_.end() ? 0 : it->second.parent_key;
}

void PrecomputeCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
}

void PrecomputeCache::reset_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = Stats{};
}

PrecomputeCache::Stats PrecomputeCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.size = entries_.size();
  s.capacity = capacity_;
  s.pinned = pins_.size();
  return s;
}

}  // namespace suu::api
