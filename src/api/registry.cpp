#include "api/registry.hpp"

#include <sstream>
#include <string_view>
#include <utility>

#include "algos/baselines.hpp"
#include "algos/exact_dp.hpp"
#include "algos/exact_width_dp.hpp"
#include "algos/suu_c.hpp"
#include "algos/suu_i.hpp"
#include "algos/suu_t.hpp"
#include "api/precompute_cache.hpp"
#include "chains/decomposition.hpp"
#include "lp/simplex.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"

namespace suu::api {
namespace {

algos::SuuCPolicy::Config suu_c_config(const SolverOptions& opt) {
  algos::SuuCPolicy::Config cfg;
  cfg.lp1 = opt.lp1;
  // A caller-owned warm-start handle is a prepare-time channel only: it
  // must never escape into minted policies, which re-solve LPs from many
  // replication threads at once (a shared mutable handle would race) and
  // may be served from the cache long after the handle is gone.
  cfg.lp1.warm = nullptr;
  cfg.random_delays = opt.random_delays;
  cfg.grid_rounding = opt.grid_rounding;
  cfg.gamma_factor = opt.gamma_factor;
  cfg.fallback_factor = opt.fallback_factor;
  return cfg;
}

template <typename P>
sim::PolicyFactory stateless() {
  return [] { return std::make_unique<P>(); };
}

void register_builtins(SolverRegistry& r) {
  r.add("suu-i-sem",
        [](const core::Instance& inst, const SolverOptions& opt) {
          algos::SuuISemPolicy::Config cfg;
          cfg.lp1 = opt.lp1;
          if (opt.share_precompute) {
            cfg.round1 = algos::SuuISemPolicy::precompute_round1(inst, opt.lp1);
          }
          // Same rule as suu_c_config: the warm handle serves the
          // precompute above, never the minted policies' own re-solves.
          cfg.lp1.warm = nullptr;
          return [cfg] {
            return std::make_unique<algos::SuuISemPolicy>(cfg);
          };
        },
        "SUU-I-SEM, semioblivious doubling rounds (Thm 4, "
        "O(log log min{m,n}))");
  r.add("suu-i",
        [](const core::Instance& inst, const SolverOptions& opt) {
          return SolverRegistry::global().prepare(inst, "suu-i-sem", opt)
              .factory;
        },
        "alias for suu-i-sem");
  r.add("suu-i-obl",
        [](const core::Instance& inst, const SolverOptions& opt) {
          if (opt.share_precompute) {
            auto pre = algos::SuuIOblPolicy::precompute(inst, opt.lp1);
            return sim::PolicyFactory([pre] {
              return std::make_unique<algos::SuuIOblPolicy>(pre);
            });
          }
          const rounding::Lp1Options lp1 = opt.lp1;
          return sim::PolicyFactory([lp1] {
            return std::make_unique<algos::SuuIOblPolicy>(lp1);
          });
        },
        "SUU-I-OBL, repeated oblivious LP1 schedule (Thm 3, O(log n))");
  r.add("suu-c",
        [](const core::Instance& inst, const SolverOptions& opt) {
          SUU_CHECK_MSG(inst.dag().is_chains(),
                        "suu-c requires a disjoint-chains dag; use 'auto' "
                        "or 'suu-t' for forests");
          algos::SuuCPolicy::Config cfg = suu_c_config(opt);
          if (opt.share_precompute) {
            cfg.lp2 = algos::SuuCPolicy::precompute(
                inst, inst.dag().chains(), opt.lp1.warm, opt.lp1.engine,
                opt.lp1.pricing);
          }
          return [cfg] { return std::make_unique<algos::SuuCPolicy>(cfg); };
        },
        "SUU-C, adaptive pseudoschedule over rounded LP2 (Thm 9, chains)");
  r.add("suu-t",
        [](const core::Instance& inst, const SolverOptions& opt) {
          SUU_CHECK_MSG(
              inst.dag().is_out_forest() || inst.dag().is_in_forest(),
              "suu-t requires a directed-forest dag");
          const algos::SuuCPolicy::Config cfg = suu_c_config(opt);
          std::shared_ptr<const algos::SuuTPolicy::BlockCache> cache;
          if (opt.share_precompute) {
            cache = algos::SuuTPolicy::precompute(inst, opt.warm_start,
                                                  opt.lp1.engine,
                                                  opt.lp1.pricing,
                                                  opt.lp1.warm);
          }
          return [cfg, cache] {
            return cache ? std::make_unique<algos::SuuTPolicy>(cfg, cache)
                         : std::make_unique<algos::SuuTPolicy>(cfg);
          };
        },
        "SUU-T, heavy-path blocks of SUU-C (Thm 12, forests)");
  // The exact solvers keep a pointer to the prepare-time Instance inside
  // ExactSolver/WidthExactSolver, so their factories must not outlive it:
  // cacheable = false keeps them out of the PrecomputeCache.
  r.add("exact-dp",
        [](const core::Instance& inst, const SolverOptions&) {
          auto solver = std::make_shared<const algos::ExactSolver>(inst);
          return [solver] {
            return std::make_unique<algos::ExactOptPolicy>(solver);
          };
        },
        "exact optimal policy via the subset-lattice DP (tiny instances)",
        /*cacheable=*/false);
  r.add("width-dp",
        [](const core::Instance& inst, const SolverOptions&) {
          auto solver = std::make_shared<const algos::WidthExactSolver>(inst);
          return [solver] {
            return std::make_unique<algos::WidthOptPolicy>(solver);
          };
        },
        "exact optimal policy via the Malewicz width-parameterized DP",
        /*cacheable=*/false);
  r.add("all-on-one",
        [](const core::Instance&, const SolverOptions&) {
          return stateless<algos::AllOnOnePolicy>();
        },
        "every machine gangs up on one eligible job (trivial O(n))");
  r.add("round-robin",
        [](const core::Instance&, const SolverOptions&) {
          return stateless<algos::RoundRobinPolicy>();
        },
        "machines spread cyclically over eligible jobs");
  r.add("best-machine",
        [](const core::Instance&, const SolverOptions&) {
          return stateless<algos::BestMachinePolicy>();
        },
        "each job waits for its most reliable machine");
  r.add("adaptive-greedy",
        [](const core::Instance&, const SolverOptions&) {
          return stateless<algos::AdaptiveGreedyPolicy>();
        },
        "fully adaptive per-step submodular greedy (conclusion conjecture)");
  r.add("greedy-lr",
        [](const core::Instance&, const SolverOptions&) {
          return stateless<algos::GreedyLrPolicy>();
        },
        "Lin-Rajaraman-flavor greedy rounds (O(log n) baseline)");
}

}  // namespace

SolverRegistry& SolverRegistry::global() {
  static SolverRegistry* reg = [] {
    auto* r = new SolverRegistry();
    register_builtins(*r);
    return r;
  }();
  return *reg;
}

void SolverRegistry::add(const std::string& name, Preparer prepare,
                         std::string summary, bool cacheable) {
  SUU_CHECK_MSG(name != "auto", "'auto' is reserved for structure dispatch");
  SUU_CHECK_MSG(!name.empty(), "solver name must be non-empty");
  SUU_CHECK_MSG(prepare != nullptr, "solver '" << name << "' needs a preparer");
  const bool inserted =
      entries_
          .emplace(name,
                   Entry{std::move(prepare), std::move(summary), cacheable})
          .second;
  SUU_CHECK_MSG(inserted, "solver '" << name << "' is already registered");
}

bool SolverRegistry::contains(const std::string& name) const {
  return entries_.count(name) != 0;
}

std::vector<std::string> SolverRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

const std::string& SolverRegistry::summary(const std::string& name) const {
  const auto it = entries_.find(name);
  SUU_CHECK_MSG(it != entries_.end(), "unknown solver '" << name << "'");
  return it->second.summary;
}

PreparedSolver SolverRegistry::prepare(const core::Instance& inst,
                                       const std::string& name,
                                       const SolverOptions& opt) const {
  return prepare(inst, name, opt, nullptr);
}

PreparedSolver SolverRegistry::prepare(const core::Instance& inst,
                                       const std::string& name,
                                       const SolverOptions& opt,
                                       PrepareHint* hint) const {
  const std::string resolved = (name == "auto") ? dispatch(inst) : name;
  const auto it = entries_.find(resolved);
  if (it == entries_.end()) {
    std::ostringstream known;
    for (const auto& [n, entry] : entries_) known << ' ' << n;
    SUU_CHECK_MSG(false, "unknown solver '" << resolved << "'; registered:"
                                            << known.str());
  }
  // Caching requires the prepared artifacts to be shareable
  // (share_precompute), free of caller-owned state (lp1.warm), and free of
  // borrowed Instance pointers (the entry's cacheable flag).
  const bool cacheable = it->second.cacheable && opt.share_precompute &&
                         opt.reuse_cache && opt.lp1.warm == nullptr;
  if (hint != nullptr) {
    hint->cache_hit = false;
    hint->warm_used = false;
  }
  if (!cacheable) {
    return PreparedSolver{resolved, it->second.prepare(inst, opt)};
  }
  const Preparer& preparer = it->second.prepare;
  PrecomputeCache& cache = PrecomputeCache::global();
  const std::uint64_t key = prepare_key(inst, resolved, opt);
  if (!opt.warm_start) {
    // No warm chaining requested: the classic cache path, hint or not.
    bool ran = false;
    sim::PolicyFactory factory = cache.get_or_prepare(key, [&] {
      ran = true;
      return preparer(inst, opt);
    });
    if (hint != nullptr) hint->cache_hit = !ran;
    return PreparedSolver{resolved, std::move(factory)};
  }
  // Warm-start path: a miss runs the preparer's LP solves through a
  // registry-owned handle — seeded from the parent entry's basis when the
  // hint names one — and the final basis is recorded on the new entry so
  // future children (update_instance deltas) can seed from it. An empty
  // handle never changes a cold prepare's trajectory (the simplex engines
  // treat it as a cold solve and merely write the final basis back), so
  // cached bytes are identical with and without this machinery.
  std::shared_ptr<const std::vector<int>> seed;
  if (hint != nullptr && hint->parent_key != 0 &&
      cache.certified_unique(hint->parent_key)) {
    // Parent gate: only seed from a trajectory that certified its own
    // final optimum unique. LP1 optima are structurally dual-degenerate
    // whenever some job sits wholly on unsaturated machines, so a parent
    // that failed the certificate predicts the child's seeded run would
    // fail it too — paying a full seeded prepare only to discard it and
    // re-run cold. Skipping the seed is purely a performance decision;
    // byte-soundness always rests on the child's own certificates.
    seed = cache.basis(hint->parent_key);
  }
  bool ran = false;
  bool seeded_ok = false;
  lp::WarmStart warm;
  sim::PolicyFactory factory = cache.get_or_prepare(key, [&] {
    ran = true;
    if (seed) {
      // Seeded attempt under certification: every LP the preparer solves
      // must end at an optimum certified unique (lp::WarmStart::certify),
      // or the seed may have steered the chain to a different optimal
      // vertex than a cold prepare's — same objective, different policy
      // bytes. A diverged attempt is discarded wholesale (mid-chain state
      // depends on the seed, so no partial salvage is sound) and the cold
      // run below is authoritative. The fallback lives INSIDE this miss
      // lambda so a diverged factory is never cached. A seed the engines
      // rejected outright on the chain's first solve instead degrades to
      // a plain cold run (certify cleared, hits == 0) whose factory IS
      // valid — keep it, just don't count it as warm.
      lp::WarmStart w;
      w.certify = true;
      w.basis = *seed;
      SolverOptions warmed = opt;
      warmed.lp1.warm = &w;
      try {
        sim::PolicyFactory f = preparer(inst, warmed);
        if (!w.diverged) {
          seeded_ok = w.certify && w.hits > 0;
          warm = std::move(w);
          return f;
        }
      } catch (...) {
        // The seeded trajectory failed outright; the cold run below is
        // authoritative (and re-throws if the instance itself is bad).
      }
    }
    SolverOptions cold = opt;
    warm = lp::WarmStart{};
    cold.lp1.warm = &warm;
    return preparer(inst, cold);
  });
  if (ran) {
    // Lineage: only an entry actually built from the seeded run descends
    // from the parent; a cold fallback's basis is its own root. The
    // last_unique verdict rides along so future children can decide
    // whether seeding from this entry's basis is worth attempting.
    cache.annotate(key, seeded_ok ? hint->parent_key : 0,
                   std::move(warm.basis), warm.last_unique);
  }
  if (hint != nullptr) {
    hint->cache_hit = !ran;
    hint->warm_used = seeded_ok;
  }
  return PreparedSolver{resolved, std::move(factory)};
}

// Prepare key: every field a preparer can read must be folded in, or two
// differently-configured cells could alias one prepared solver. The
// static_assert is the tripwire: adding a field to SolverOptions (or
// Lp1Options) changes the struct size and fails the build here — fold the
// new field into the hash below, then update the expected size.
static_assert(sizeof(rounding::Lp1Options) ==
                  2 * sizeof(int) + sizeof(void*) + sizeof(lp::SimplexEngine) +
                      sizeof(lp::PricingRule),
              "Lp1Options changed: fold the new field into prepare_key");
static_assert(sizeof(SolverOptions) == sizeof(rounding::Lp1Options) +
                                           5 * sizeof(bool) +
                                           2 * sizeof(double) + /*padding*/ 3,
              "SolverOptions changed: fold the new field into prepare_key");
std::uint64_t SolverRegistry::prepare_key(const core::Instance& inst,
                                          const std::string& name,
                                          const SolverOptions& opt) {
  return prepare_key(inst.fingerprint(), name, opt);
}

std::uint64_t SolverRegistry::prepare_key(std::uint64_t fingerprint,
                                          const std::string& name,
                                          const SolverOptions& opt) {
  std::uint64_t h = fingerprint;
  h = util::hash_combine(h, std::string_view(name));
  h = util::hash_combine(h, static_cast<std::uint64_t>(opt.lp1.solver));
  h = util::hash_combine(h,
                         static_cast<std::uint64_t>(opt.lp1.simplex_size_limit));
  h = util::hash_combine(h, static_cast<std::uint64_t>(opt.lp1.engine));
  h = util::hash_combine(h, static_cast<std::uint64_t>(opt.lp1.pricing));
  h = util::hash_combine(h, static_cast<std::uint64_t>(opt.share_precompute));
  h = util::hash_combine(h, static_cast<std::uint64_t>(opt.warm_start));
  h = util::hash_combine(h, static_cast<std::uint64_t>(opt.random_delays));
  h = util::hash_combine(h, static_cast<std::uint64_t>(opt.grid_rounding));
  h = util::hash_combine(h, opt.gamma_factor);
  h = util::hash_combine(h, opt.fallback_factor);
  return h;
}

std::string SolverRegistry::dispatch(const core::Instance& inst) {
  const core::Dag& dag = inst.dag();
  if (dag.is_empty()) return "suu-i-sem";
  if (dag.is_chains()) return "suu-c";
  if (dag.is_out_forest() || dag.is_in_forest()) return "suu-t";
  return "all-on-one";
}

PreparedSolver make_solver(const core::Instance& inst, const std::string& name,
                           const SolverOptions& opt) {
  return SolverRegistry::global().prepare(inst, name, opt);
}

PreparedSolver solve_auto(const core::Instance& inst,
                          const SolverOptions& opt) {
  return SolverRegistry::global().prepare(inst, "auto", opt);
}

algos::LowerBound lower_bound_auto(const core::Instance& inst,
                                   const rounding::Lp1Options& opt) {
  const core::Dag& dag = inst.dag();
  if (dag.is_empty()) return algos::lower_bound_independent(inst, opt);
  if (dag.is_chains()) {
    return algos::lower_bound_chains(inst, dag.chains(), opt);
  }
  if (dag.is_out_forest() || dag.is_in_forest()) {
    const chains::Decomposition dec = chains::decompose_forest(dag);
    std::vector<std::vector<int>> all;
    for (const auto& block : dec.blocks) {
      all.insert(all.end(), block.begin(), block.end());
    }
    return algos::lower_bound_chains(inst, all, opt);
  }
  return algos::lower_bound_independent(inst, opt);
}

}  // namespace suu::api
