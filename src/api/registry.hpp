// suu::api — the unified solver entry point.
//
// Every schedule the repo implements (the paper's SUU-I/SUU-C/SUU-T
// pipeline, the exact DPs, the baselines) is reachable by name through one
// registry. A preparer runs the solver's deterministic per-instance work
// exactly once — LP1/LP2 solve + rounding, heavy-path decomposition, DP
// value iteration — and returns a sim::PolicyFactory whose policies share
// that precomputation across Monte-Carlo replications.
//
// Naming scheme (see docs/architecture.md):
//   suu-i-sem / suu-i-obl   paper Section 3 (Thm 4 / Thm 3); "suu-i" is an
//                           alias for suu-i-sem, the headline algorithm
//   suu-c                   paper Section 4 (Thm 9), disjoint chains
//   suu-t                   paper Appendix B (Thm 12), directed forests
//   exact-dp / width-dp     ground-truth optima (subset / Malewicz width DP)
//   all-on-one, round-robin, best-machine, adaptive-greedy, greedy-lr
//                           baselines (algos/baselines.hpp)
//   auto                    structure dispatch on the instance's dag:
//                           empty -> suu-i-sem, chains -> suu-c,
//                           forest -> suu-t, general -> all-on-one (the
//                           trivial O(n)-approximation, the only schedule
//                           here that is valid for arbitrary precedence).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algos/lower_bounds.hpp"
#include "core/instance.hpp"
#include "rounding/lp1.hpp"
#include "sim/engine.hpp"

namespace suu::api {

/// Knobs forwarded to the solver preparers. One struct for all solvers so
/// experiment grids can sweep a knob without knowing which solver reads it.
struct SolverOptions {
  /// LP1 solve options (suu-i*, the SUU-C long-job batches, lower bounds).
  rounding::Lp1Options lp1;
  /// Run the deterministic per-instance work (LP solves, rounding, DP)
  /// once at prepare() time and share it across replications. Off = every
  /// policy instance recomputes, as a from-scratch run would.
  bool share_precompute = true;
  /// Consult the process-wide api::PrecomputeCache (keyed by the instance
  /// fingerprint, solver name and these options) so grid cells that share
  /// an instance reuse one prepared solver instead of re-running the LP/DP
  /// precompute. Only takes effect together with share_precompute, and is
  /// bypassed when lp1.warm is set (caller-managed solver state must not
  /// be shared through a cache).
  bool reuse_cache = true;
  /// Chain a simplex warm-start across SUU-T's per-block LP2 solves, so
  /// structurally identical sibling blocks skip phase 1. On by default
  /// since the revised-simplex PR: a seed basis is now a factorization
  /// seed (cheap to install on either engine), the chained trajectory is
  /// deterministic at any thread count, and the warm-start regression
  /// suite byte-compares the table1 experiment output against recorded
  /// goldens to keep it that way. Turn off to reproduce pre-revised
  /// recorded bytes.
  bool warm_start = true;

  // SUU-C / SUU-T knobs (forwarded into algos::SuuCPolicy::Config):
  bool random_delays = true;      ///< Theorem 7 ablation switch
  bool grid_rounding = false;     ///< non-polynomial-t* trick
  double gamma_factor = 1.0;      ///< scales gamma = t*/log2(n+m)
  double fallback_factor = 64.0;  ///< superstep budget multiplier
};

/// A solver prepared for one instance: the resolved registry name plus a
/// factory that mints fresh policies sharing the precomputed artifacts.
struct PreparedSolver {
  std::string name;
  sim::PolicyFactory factory;
};

/// Warm-start hint for prepare(): the caller (service::Engine, after an
/// update_instance) names the prepare key of the PARENT instance the
/// current one was derived from; prepare seeds the LP solves of a cache
/// miss from the basis recorded on that parent's PrecomputeCache entry and
/// reports what happened. A hint never changes prepared artifacts' bytes —
/// warm-starting alters the simplex path, not the optimum — only how fast
/// a miss prepares.
struct PrepareHint {
  /// In: prepare key of the parent entry (0 = no parent). Compute it with
  /// prepare_key(parent_fingerprint, resolved_name, opt) — the same
  /// options the child prepare uses, so parent and child agree on every
  /// option fold.
  std::uint64_t parent_key = 0;
  /// Out: the prepare was served from the cache (no work ran; the hint
  /// was moot).
  bool cache_hit = false;
  /// Out: a miss ran AND the parent's recorded basis seeded at least one
  /// accepted warm start (phase 1 skipped somewhere in the prepare).
  bool warm_used = false;
};

class SolverRegistry {
 public:
  using Preparer = std::function<sim::PolicyFactory(const core::Instance&,
                                                    const SolverOptions&)>;

  /// The process-wide registry, pre-populated with every builtin solver.
  /// Mutable so downstream code can register custom policies (see
  /// examples/mapreduce_pipeline.cpp).
  static SolverRegistry& global();

  /// Register a solver; throws util::CheckError on duplicate names and on
  /// the reserved name "auto". `cacheable` = false opts the solver out of
  /// the PrecomputeCache; required when the prepared factory keeps a
  /// pointer/reference to the Instance passed to prepare() (the cache can
  /// outlive it — it hands the factory back for any equal-content
  /// instance), rather than owning value/shared_ptr artifacts.
  void add(const std::string& name, Preparer prepare, std::string summary,
           bool cacheable = true);

  bool contains(const std::string& name) const;
  /// All registered names, sorted.
  std::vector<std::string> names() const;
  /// One-line description; throws util::CheckError for unknown names.
  const std::string& summary(const std::string& name) const;

  /// Resolve `name` ("auto" dispatches on dag structure) and prepare the
  /// solver for `inst`. Throws util::CheckError for unknown names.
  PreparedSolver prepare(const core::Instance& inst, const std::string& name,
                         const SolverOptions& opt = {}) const;

  /// prepare() with a warm-start hint (may be nullptr == the overload
  /// above). On a cacheable warm_start miss the preparer's LP solves run
  /// through a registry-owned WarmStart handle — seeded from the parent
  /// entry's basis when hint->parent_key names one — and the final basis
  /// is recorded on the new entry for future children. hint's out fields
  /// are filled either way.
  PreparedSolver prepare(const core::Instance& inst, const std::string& name,
                         const SolverOptions& opt, PrepareHint* hint) const;

  /// Structure dispatch: the registry name of the paper algorithm matching
  /// inst.dag() (empty/chains/forest), or "all-on-one" for general dags.
  static std::string dispatch(const core::Instance& inst);

  /// The 64-bit key under which prepare(inst, name, opt) would memoize its
  /// factory: a hash of (instance fingerprint, resolved solver name, every
  /// option field a preparer can read). Shared by the PrecomputeCache and
  /// by service::Engine's single-flight table, so "identical request" means
  /// the same thing at both layers. `name` must already be resolved (not
  /// "auto" — see dispatch).
  static std::uint64_t prepare_key(const core::Instance& inst,
                                   const std::string& name,
                                   const SolverOptions& opt);

  /// prepare_key from a bare instance fingerprint — for callers that know
  /// a fingerprint but no longer hold the instance (e.g. the parent of an
  /// update_instance delta, which may already be gone).
  static std::uint64_t prepare_key(std::uint64_t fingerprint,
                                   const std::string& name,
                                   const SolverOptions& opt);

 private:
  struct Entry {
    Preparer prepare;
    std::string summary;
    bool cacheable = true;
  };
  std::map<std::string, Entry> entries_;
};

/// Convenience: prepare `name` via the global registry.
PreparedSolver make_solver(const core::Instance& inst, const std::string& name,
                           const SolverOptions& opt = {});

/// Convenience: prepare the structure-dispatched paper algorithm.
PreparedSolver solve_auto(const core::Instance& inst,
                          const SolverOptions& opt = {});

/// Structure-dispatched lower bound on E[T_OPT] — the denominator of every
/// measured approximation ratio. Empty dags use Lemma 1; chain dags add the
/// Lemma 5 LP2/2 bound; forests evaluate LP2 on the heavy-path chain
/// decomposition (dropping cross-block edges only relaxes the program);
/// general dags fall back to Lemma 1, which never uses independence.
algos::LowerBound lower_bound_auto(const core::Instance& inst,
                                   const rounding::Lp1Options& opt = {});

}  // namespace suu::api
