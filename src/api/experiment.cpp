#include "api/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <set>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace suu::api {

const util::Sampler& CellResult::metric(const std::string& name) const {
  for (const auto& [n, sampler] : metrics) {
    if (n == name) return sampler;
  }
  SUU_CHECK_MSG(false, "cell '" << instance_label << "' × '" << solver
                                << "' has no metric '" << name << "'");
}

int ExperimentRunner::add(Cell cell) {
  SUU_CHECK_MSG(cell.instance != nullptr, "cell needs an instance");
  SUU_CHECK_MSG(cell.factory != nullptr || !cell.solver.empty(),
                "cell needs a solver name or an explicit factory");
  SUU_CHECK_MSG(cell.rep_offset >= 0, "cell rep_offset must be >= 0");
  cells_.push_back(std::move(cell));
  return static_cast<int>(cells_.size()) - 1;
}

void ExperimentRunner::add_grid(
    const std::vector<
        std::pair<std::string, std::shared_ptr<const core::Instance>>>&
        instances,
    const std::vector<std::string>& solvers, const SolverOptions& opt,
    bool auto_lower_bound) {
  for (const auto& [label, inst] : instances) {
    SUU_CHECK_MSG(inst != nullptr, "grid instance '" << label << "' is null");
    const double lb =
        auto_lower_bound ? lower_bound_auto(*inst, opt.lp1).value : 0.0;
    for (const std::string& solver : solvers) {
      Cell cell;
      cell.instance_label = label;
      cell.instance = inst;
      cell.solver = solver;
      cell.solver_opt = opt;
      cell.lower_bound = lb;
      add(std::move(cell));
    }
  }
}

CellResult ExperimentRunner::run_cell(std::size_t k, const Cell& cell,
                                      util::ThreadPool* pool) const {
  const core::Instance& inst = *cell.instance;

  CellResult out;
  out.instance_label = cell.instance_label;
  out.n = inst.num_jobs();
  out.m = inst.num_machines();
  const std::uint64_t stream = cell.seed_stream != 0 ? cell.seed_stream : k + 1;
  out.seed = stream;
  out.lower_bound = cell.lower_bound;

  sim::PolicyFactory factory = cell.factory;
  if (factory) {
    out.solver = cell.factory_label.empty() ? "custom" : cell.factory_label;
  } else {
    PreparedSolver prepared =
        SolverRegistry::global().prepare(inst, cell.solver, cell.solver_opt);
    out.solver = prepared.name;
    factory = std::move(prepared.factory);
  }

  const int reps = cell.replications > 0 ? cell.replications
                                         : opt_.replications;
  SUU_CHECK_MSG(reps >= 1, "cell needs at least one replication");
  out.replications = reps;
  const bool strict =
      cell.strict < 0 ? opt_.strict_eligibility : cell.strict != 0;

  // Pre-sized per-replication slots: workers write only their own index, so
  // accumulation below is identical for any thread interleaving.
  const auto n_reps = static_cast<std::size_t>(reps);
  std::vector<double> makespans(n_reps, 0.0);
  std::vector<char> capped(n_reps, 0);
  std::vector<std::vector<double>> metric_vals(
      cell.metrics.size(), std::vector<double>(n_reps, 0.0));

  const util::Rng cell_rng = util::Rng(opt_.seed).child(stream);
  const auto rep_offset = static_cast<std::size_t>(cell.rep_offset);
  auto one = [&](std::size_t r) {
    sim::ExecConfig cfg;
    cfg.semantics = opt_.semantics;
    cfg.seed = cell_rng.child(rep_offset + r + 1).next();
    cfg.step_cap = opt_.step_cap;
    cfg.strict_eligibility = strict;
    auto policy = factory();
    SUU_CHECK(policy != nullptr);
    const sim::ExecResult res = sim::execute(inst, *policy, cfg);
    if (res.capped) {
      SUU_CHECK_MSG(opt_.skip_capped,
                    "replication " << r << " of cell '" << cell.instance_label
                                   << "' × '" << out.solver
                                   << "' hit the step cap (" << opt_.step_cap
                                   << ")");
      capped[r] = 1;
      return;
    }
    makespans[r] = static_cast<double>(res.makespan);
    for (std::size_t mi = 0; mi < cell.metrics.size(); ++mi) {
      metric_vals[mi][r] = cell.metrics[mi].extract(*policy, res);
    }
  };

  if (pool != nullptr) {
    pool->parallel_for(n_reps, one);
  } else {
    for (std::size_t r = 0; r < n_reps; ++r) one(r);
  }

  util::OnlineStats stats;
  for (std::size_t r = 0; r < n_reps; ++r) {
    if (capped[r]) {
      ++out.capped;
      continue;
    }
    stats.add(makespans[r]);
    out.samples.add(makespans[r]);
  }
  SUU_CHECK_MSG(stats.count() > 0, "every replication of cell '"
                                       << cell.instance_label << "' × '"
                                       << out.solver << "' hit the step cap");
  out.makespan = util::make_estimate(stats);
  if (cell.lower_bound > 0.0) {
    out.ratio = out.makespan.mean / cell.lower_bound;
    out.ratio_ci = out.makespan.ci95_half / cell.lower_bound;
  }
  for (std::size_t mi = 0; mi < cell.metrics.size(); ++mi) {
    util::Sampler s;
    for (std::size_t r = 0; r < n_reps; ++r) {
      if (!capped[r]) s.add(metric_vals[mi][r]);
    }
    out.metrics.emplace_back(cell.metrics[mi].name, std::move(s));
  }
  return out;
}

const std::vector<CellResult>& ExperimentRunner::run() {
  // Cross-cell fan-out: each worker writes only its own pre-sized slot and
  // every cell's seeding derives from its index k, so results are
  // byte-identical to the sequential loop at any thread count. Replications
  // run serially inside each cell here — nesting two blocking parallel_for
  // levels on one pool could deadlock, and cells are the coarser (better)
  // unit of parallelism for grids.
  // A caller-owned lp1.warm handle would be mutated by every concurrent
  // solve — cells racing on prepare, or replication workers racing inside
  // the policies that re-solve LP1 at decide time — an unsynchronized data
  // race. Warm chaining is only meaningful for a sequential solve order, so
  // it requires fully serial execution (cell_threads == 1 and threads == 1).
  if (opt_.cell_threads != 1 || opt_.threads != 1) {
    for (const Cell& cell : cells_) {
      SUU_CHECK_MSG(cell.solver_opt.lp1.warm == nullptr,
                    "cell '" << cell.instance_label
                             << "': lp1.warm requires cell_threads == 1 and "
                                "threads == 1 (a shared warm-start handle "
                                "races across concurrent solves)");
    }
  }
  if (opt_.cell_threads != 1) {
    results_.clear();
    results_.resize(cells_.size());
    util::ThreadPool cell_pool(opt_.cell_threads);
    cell_pool.parallel_for(cells_.size(), [&](std::size_t k) {
      results_[k] = run_cell(k, cells_[k], nullptr);
    });
    return results_;
  }
  // Sequential cells: one replication pool for the whole grid (seeding is
  // index-derived, so sharing a pool across cells cannot change any
  // number); threads == 1 runs serial.
  util::ThreadPool* pool = nullptr;
  std::unique_ptr<util::ThreadPool> owned;
  if (opt_.threads == 0) {
    pool = &util::default_pool();
  } else if (opt_.threads > 1) {
    owned = std::make_unique<util::ThreadPool>(opt_.threads);
    pool = owned.get();
  }
  results_.clear();
  results_.reserve(cells_.size());
  for (std::size_t k = 0; k < cells_.size(); ++k) {
    results_.push_back(run_cell(k, cells_[k], pool));
  }
  return results_;
}

namespace {

std::vector<std::string> metric_columns(
    const std::vector<CellResult>& results) {
  std::vector<std::string> cols;
  std::set<std::string> seen;
  for (const CellResult& r : results) {
    for (const auto& [name, sampler] : r.metrics) {
      if (seen.insert(name).second) cols.push_back(name);
    }
  }
  return cols;
}

const util::Sampler* find_metric(const CellResult& r,
                                 const std::string& name) {
  for (const auto& [n, sampler] : r.metrics) {
    if (n == name) return &sampler;
  }
  return nullptr;
}

}  // namespace

util::Table ExperimentRunner::table() const {
  const std::vector<std::string> extra = metric_columns(results_);
  const bool any_lb =
      std::any_of(results_.begin(), results_.end(),
                  [](const CellResult& r) { return r.lower_bound > 0.0; });

  std::vector<std::string> headers = {"instance", "solver", "n", "m", "reps",
                                      "E[T]"};
  if (any_lb) headers.push_back("E[T]/LB");
  for (const std::string& name : extra) headers.push_back("mean " + name);

  util::Table t(std::move(headers));
  for (const CellResult& r : results_) {
    std::vector<std::string> row = {
        r.instance_label,
        r.solver,
        std::to_string(r.n),
        std::to_string(r.m),
        std::to_string(r.replications),
        util::fmt_pm(r.makespan.mean, r.makespan.ci95_half, 2)};
    if (any_lb) {
      row.push_back(r.lower_bound > 0.0 ? util::fmt_pm(r.ratio, r.ratio_ci, 2)
                                        : "-");
    }
    for (const std::string& name : extra) {
      const util::Sampler* s = find_metric(r, name);
      row.push_back(s != nullptr && s->count() > 0 ? util::fmt(s->mean(), 2)
                                                   : "-");
    }
    t.add_row(std::move(row));
  }
  return t;
}

void ExperimentRunner::print_json(std::ostream& os) const {
  const std::vector<std::string> extra = metric_columns(results_);
  std::vector<std::string> headers = {
      "instance", "solver",   "n",  "m",     "reps",  "capped",
      "seed",     "mean",     "ci95", "stddev", "min", "max",
      "lb",       "ratio",    "ratio_ci"};
  for (const std::string& name : extra) headers.push_back(name + "_mean");

  util::Table t(std::move(headers));
  for (const CellResult& r : results_) {
    std::vector<std::string> row = {
        r.instance_label,
        r.solver,
        std::to_string(r.n),
        std::to_string(r.m),
        std::to_string(r.replications),
        std::to_string(r.capped),
        std::to_string(r.seed),
        util::fmt(r.makespan.mean, 6),
        util::fmt(r.makespan.ci95_half, 6),
        util::fmt(r.makespan.stddev, 6),
        util::fmt(r.makespan.min, 6),
        util::fmt(r.makespan.max, 6),
        util::fmt(r.lower_bound, 6),
        util::fmt(r.ratio, 6),
        util::fmt(r.ratio_ci, 6)};
    for (const std::string& name : extra) {
      const util::Sampler* s = find_metric(r, name);
      row.push_back(s != nullptr && s->count() > 0 ? util::fmt(s->mean(), 6)
                                                   : "");
    }
    t.add_row(std::move(row));
  }
  t.print_json(os);
}

}  // namespace suu::api
