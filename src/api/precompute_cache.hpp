// suu::api — process-wide cache of prepared solvers.
//
// SolverRegistry preparers run the deterministic per-instance work (LP1/LP2
// solve + rounding, heavy-path decomposition, DP value iteration) and
// return a factory sharing those artifacts. Across an experiment grid the
// same instance appears in many cells — and across repeated grids in the
// same process, many times more — so the registry memoizes prepared
// factories here, keyed by a 64-bit hash of (instance fingerprint, resolved
// solver name, solver options).
//
// Correctness rests on two repo invariants: preparers are deterministic
// functions of (instance, options), and factories are immutable once built
// (each mint returns a fresh policy; shared artifacts are read-only behind
// shared_ptr/by-value configs). A cached factory is therefore
// indistinguishable from a freshly prepared one, byte for byte, in any
// downstream measurement.
//
// Thread safety: lookups and inserts take a mutex; the prepare itself runs
// outside the lock, so concurrent cells missing on the same key may both
// compute (same value — first insert wins) but never block each other on
// LP solves.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <unordered_map>

#include "sim/engine.hpp"

namespace suu::api {

class PrecomputeCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t size = 0;
  };

  /// The process-wide cache consulted by SolverRegistry::prepare.
  static PrecomputeCache& global();

  /// Return the factory cached under `key`, or run `make`, cache its
  /// result, and return it. `make` executes outside the cache lock.
  sim::PolicyFactory get_or_prepare(
      std::uint64_t key, const std::function<sim::PolicyFactory()>& make);

  /// Entries retained before FIFO eviction kicks in (grids rarely exceed a
  /// few dozen live keys; the cap only bounds pathological sweeps).
  void set_capacity(std::size_t capacity);

  /// Drop every entry (stats are kept; see reset_stats).
  void clear();
  void reset_stats();
  Stats stats() const;

 private:
  void evict_over_capacity_locked();  // requires mu_ held

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, sim::PolicyFactory> entries_;
  std::deque<std::uint64_t> order_;  // insertion order, for FIFO eviction
  std::size_t capacity_ = 256;
  Stats stats_;
};

}  // namespace suu::api
