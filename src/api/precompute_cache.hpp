// suu::api — process-wide cache of prepared solvers.
//
// SolverRegistry preparers run the deterministic per-instance work (LP1/LP2
// solve + rounding, heavy-path decomposition, DP value iteration) and
// return a factory sharing those artifacts. Across an experiment grid the
// same instance appears in many cells — and across repeated grids in the
// same process, many times more — so the registry memoizes prepared
// factories here, keyed by a 64-bit hash of (instance fingerprint, resolved
// solver name, solver options).
//
// Correctness rests on two repo invariants: preparers are deterministic
// functions of (instance, options), and factories are immutable once built
// (each mint returns a fresh policy; shared artifacts are read-only behind
// shared_ptr/by-value configs). A cached factory is therefore
// indistinguishable from a freshly prepared one, byte for byte, in any
// downstream measurement.
//
// Eviction is LRU: every hit moves its entry to the back of the recency
// list, so a long-running service keeps its hot session instances resident
// while one-shot instances age out. Stats (hits/misses/evictions) are exact
// under concurrent access — every lookup outcome is counted under the lock
// that decides it.
//
// Pinning: a caller holding a long-lived reference to an instance — a
// service session that opened a handle — pins the prepare keys it depends
// on. Pins are reference counts kept independently of the entries, so a key
// may be pinned before its first prepare; while a key's pin count is
// positive, LRU eviction skips it (the cache may transiently exceed its
// capacity when many pinned keys are live). clear() drops entries but not
// pins: a pinned key whose entry was cleared is re-prepared on next use and
// stays pinned.
//
// Thread safety: lookups and inserts take a mutex; the prepare itself runs
// outside the lock, so concurrent cells missing on the same key may both
// compute (same value — first insert wins) but never block each other on
// LP solves. Callers that want exactly one prepare per key coalesce above
// this layer (see service::Engine's single-flight table).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>

#include "sim/engine.hpp"

namespace suu::api {

class PrecomputeCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t size = 0;
    std::size_t capacity = 0;
    std::size_t pinned = 0;  ///< keys with a positive pin count
  };

  /// The process-wide cache consulted by SolverRegistry::prepare.
  static PrecomputeCache& global();

  /// Return the factory cached under `key` (touching its recency), or run
  /// `make`, cache its result, and return it. `make` executes outside the
  /// cache lock.
  sim::PolicyFactory get_or_prepare(
      std::uint64_t key, const std::function<sim::PolicyFactory()>& make);

  /// Entries retained before least-recently-used eviction kicks in (grids
  /// rarely exceed a few dozen live keys; the cap bounds pathological
  /// sweeps and long-running service sessions).
  void set_capacity(std::size_t capacity);

  /// Exempt `key` from LRU eviction until a matching unpin. Reference
  /// counted; the key need not have an entry yet.
  void pin(std::uint64_t key);
  /// Release one pin on `key`. Unbalanced unpins are ignored. When the last
  /// pin drops and the cache is over capacity, the key becomes evictable
  /// again (and is reaped on the next insert or set_capacity).
  void unpin(std::uint64_t key);

  /// Drop every entry (stats and pins are kept; see reset_stats/unpin).
  void clear();
  void reset_stats();
  Stats stats() const;

 private:
  struct Entry {
    sim::PolicyFactory factory;
    std::list<std::uint64_t>::iterator lru_it;  // position in lru_
  };

  void evict_over_capacity_locked();  // requires mu_ held

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::unordered_map<std::uint64_t, std::size_t> pins_;  // key -> pin count
  std::list<std::uint64_t> lru_;  // least recently used first
  std::size_t capacity_ = 256;
  Stats stats_;
};

}  // namespace suu::api
