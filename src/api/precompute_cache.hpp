// suu::api — process-wide cache of prepared solvers.
//
// SolverRegistry preparers run the deterministic per-instance work (LP1/LP2
// solve + rounding, heavy-path decomposition, DP value iteration) and
// return a factory sharing those artifacts. Across an experiment grid the
// same instance appears in many cells — and across repeated grids in the
// same process, many times more — so the registry memoizes prepared
// factories here, keyed by a 64-bit hash of (instance fingerprint, resolved
// solver name, solver options).
//
// Correctness rests on two repo invariants: preparers are deterministic
// functions of (instance, options), and factories are immutable once built
// (each mint returns a fresh policy; shared artifacts are read-only behind
// shared_ptr/by-value configs). A cached factory is therefore
// indistinguishable from a freshly prepared one, byte for byte, in any
// downstream measurement.
//
// Eviction is LRU: every hit moves its entry to the back of the recency
// list, so a long-running service keeps its hot session instances resident
// while one-shot instances age out. Stats (hits/misses/evictions) are exact
// under concurrent access — every lookup outcome is counted under the lock
// that decides it.
//
// Pinning: a caller holding a long-lived reference to an instance — a
// service session that opened a handle — pins the prepare keys it depends
// on. Pins are reference counts kept independently of the entries, so a key
// may be pinned before its first prepare; while a key's pin count is
// positive, LRU eviction skips it (the cache may transiently exceed its
// capacity when many pinned keys are live). clear() drops entries but not
// pins: a pinned key whose entry was cleared is re-prepared on next use and
// stays pinned.
//
// Thread safety: lookups and inserts take a mutex; the prepare itself runs
// outside the lock, so concurrent cells missing on the same key may both
// compute (same value — first insert wins) but never block each other on
// LP solves. Callers that want exactly one prepare per key coalesce above
// this layer (see service::Engine's single-flight table).
//
// Delta warm-start annotations: an entry may carry the final simplex basis
// its prepare produced, plus the prepare key of the instance it was
// warm-started from (its "parent"). SolverRegistry::prepare records both
// after a cacheable warm-start miss and seeds a child prepare from its
// parent's basis — the mechanism behind update_instance's incremental
// re-solve. Annotations ride the entry: eviction drops them (a child whose
// parent aged out simply prepares cold), and they never affect
// hit/miss/LRU accounting or pin semantics.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"

namespace suu::api {

class PrecomputeCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t size = 0;
    std::size_t capacity = 0;
    std::size_t pinned = 0;  ///< keys with a positive pin count
  };

  /// The process-wide cache consulted by SolverRegistry::prepare.
  static PrecomputeCache& global();

  /// Return the factory cached under `key` (touching its recency), or run
  /// `make`, cache its result, and return it. `make` executes outside the
  /// cache lock.
  sim::PolicyFactory get_or_prepare(
      std::uint64_t key, const std::function<sim::PolicyFactory()>& make);

  /// Entries retained before least-recently-used eviction kicks in (grids
  /// rarely exceed a few dozen live keys; the cap bounds pathological
  /// sweeps and long-running service sessions).
  void set_capacity(std::size_t capacity);

  /// Exempt `key` from LRU eviction until a matching unpin. Reference
  /// counted; the key need not have an entry yet.
  void pin(std::uint64_t key);
  /// Release one pin on `key`. Unbalanced unpins are ignored. When the last
  /// pin drops and the cache is over capacity, the key becomes evictable
  /// again (and is reaped on the next insert or set_capacity).
  void unpin(std::uint64_t key);

  /// Attach warm-start provenance to the entry under `key`: the prepare
  /// key it was seeded from (0 = prepared cold), the final simplex
  /// basis its prepare produced (empty = none recorded, e.g. a
  /// Frank–Wolfe path), and whether the prepare's final optimum passed the
  /// strict uniqueness certificate (lp::WarmStart::last_unique). No-op
  /// when the entry is absent — it may have been evicted, or lost the
  /// get_or_prepare insert race — and never touches recency or stats.
  void annotate(std::uint64_t key, std::uint64_t parent_key,
                std::vector<int> basis, bool cert_unique = false);

  /// The basis recorded for `key`, or nullptr when the entry is absent or
  /// carries none. Deliberately NOT a cache "use": no LRU touch, no
  /// hit/miss accounting — a child peeking at its parent's basis must not
  /// keep the parent artificially hot.
  std::shared_ptr<const std::vector<int>> basis(std::uint64_t key) const;

  /// Did `key`'s prepare certify its final optimum unique (see annotate)?
  /// False when the entry is absent. Children seeded from `key`'s basis
  /// must re-certify on their own trajectory regardless — this flag only
  /// predicts whether that attempt is worth the work: a parent that
  /// already demonstrated alternative optima will have its child's
  /// certificate fail too, so the registry skips the seed outright.
  bool certified_unique(std::uint64_t key) const;

  /// The recorded parent prepare key for `key` (0 when absent or cold).
  /// Test/observability hook.
  std::uint64_t parent(std::uint64_t key) const;

  /// Drop every entry (stats and pins are kept; see reset_stats/unpin).
  void clear();
  void reset_stats();
  Stats stats() const;

 private:
  struct Entry {
    sim::PolicyFactory factory;
    std::list<std::uint64_t>::iterator lru_it;  // position in lru_
    /// Warm-start provenance (see annotate); null/0/false until annotated.
    std::shared_ptr<const std::vector<int>> basis;
    std::uint64_t parent_key = 0;
    bool cert_unique = false;
  };

  void evict_over_capacity_locked();  // requires mu_ held

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::unordered_map<std::uint64_t, std::size_t> pins_;  // key -> pin count
  std::list<std::uint64_t> lru_;  // least recently used first
  std::size_t capacity_ = 256;
  Stats stats_;
};

}  // namespace suu::api
