// suu::api — batched Monte-Carlo experiment execution.
//
// ExperimentRunner replaces the hand-rolled estimate loops the bench and
// example binaries used to carry: a grid of {instance × solver ×
// replication options} cells, each measured by fanning replications out
// over util::ThreadPool and emitted as unified table / JSON rows through
// util::Table.
//
// Determinism contract: cell k's replication r derives its engine seed from
// child streams (k+1, r+1) of the master seed, and every sample lands in a
// pre-sized slot indexed by r before sequential accumulation. Results are
// therefore byte-identical for a fixed seed regardless of thread count, and
// a cell's numbers do not change when other cells are added to the grid.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/registry.hpp"
#include "core/instance.hpp"
#include "sim/engine.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace suu::util {
class ThreadPool;
}

namespace suu::api {

/// A named per-replication probe: reads diagnostics off the finished policy
/// (downcast to the concrete type inside the extractor) after each
/// non-capped execution.
struct Metric {
  std::string name;
  std::function<double(const sim::Policy&, const sim::ExecResult&)> extract;
};

/// One measurement cell. Solvers are normally named (resolved through the
/// global SolverRegistry, so precompute is shared across the cell's
/// replications); `factory` overrides the registry for custom policies.
struct Cell {
  std::string instance_label;
  std::shared_ptr<const core::Instance> instance;
  std::string solver = "auto";
  SolverOptions solver_opt;
  sim::PolicyFactory factory;  ///< optional registry bypass
  std::string factory_label;   ///< display name when `factory` is set
  double lower_bound = 0.0;    ///< ratio denominator; <= 0 disables ratios
  std::vector<Metric> metrics;
  int replications = 0;  ///< 0 = runner default
  int strict = -1;       ///< strict eligibility: -1 = runner default, else 0/1

  // Sharding seam (service streamed estimates): a cell may measure a
  // contiguous sub-range of a larger replication sequence without changing
  // any sample. Replication r of this cell draws its engine seed from child
  // stream (rep_offset + r + 1) of the cell's stream, so K cells sharing a
  // seed_stream and covering [0, R) in rep_offset order reproduce exactly
  // the samples of one R-replication cell — shard by shard.
  int rep_offset = 0;  ///< global index of this cell's first replication
  /// Override the cell's seed stream id (reported as CellResult::seed).
  /// 0 = default: the cell's grid index k + 1.
  std::uint64_t seed_stream = 0;
};

struct CellResult {
  std::string instance_label;
  std::string solver;  ///< resolved registry name (or factory_label)
  int n = 0;
  int m = 0;
  std::uint64_t seed = 0;  ///< the cell's derived seed stream id
  int replications = 0;    ///< requested replications
  int capped = 0;          ///< replications dropped at the step cap
  util::Estimate makespan;  ///< over non-capped replications
  util::Sampler samples;    ///< makespans in replication order (quantiles)
  double lower_bound = 0.0;
  double ratio = 0.0;     ///< makespan.mean / lower_bound (0 when no bound)
  double ratio_ci = 0.0;  ///< makespan.ci95_half / lower_bound
  std::vector<std::pair<std::string, util::Sampler>> metrics;

  /// Samples of a named metric; throws util::CheckError when absent.
  const util::Sampler& metric(const std::string& name) const;
};

class ExperimentRunner {
 public:
  struct Options {
    std::uint64_t seed = 1;
    int replications = 400;
    sim::Semantics semantics = sim::Semantics::CoinFlips;
    bool strict_eligibility = false;
    /// Drop replications that hit the step cap (counted in CellResult)
    /// instead of throwing.
    bool skip_capped = false;
    std::int64_t step_cap = 10'000'000;
    unsigned threads = 0;  ///< replication fan-out; 0 = default pool, 1 = serial
    /// Cross-cell fan-out: cells run concurrently on a dedicated pool of
    /// this many threads (0 = hardware concurrency, 1 = sequential, the
    /// default). When > 1, each cell runs its replications serially on its
    /// worker (the two fan-outs do not nest); every result lands in a
    /// pre-sized slot indexed by cell, and all seeding derives from the
    /// cell index, so output is byte-identical at any thread count.
    unsigned cell_threads = 1;
  };

  ExperimentRunner() : ExperimentRunner(Options{}) {}
  explicit ExperimentRunner(Options opt) : opt_(opt) {}

  Options& options() noexcept { return opt_; }
  const Options& options() const noexcept { return opt_; }

  /// Append one cell; returns its index k. The cell's replication seeds
  /// derive from child stream k+1 of the master seed (reported as
  /// CellResult::seed).
  int add(Cell cell);

  /// Grid helper: one cell per (instance × solver name), instance-major.
  /// With auto_lower_bound, lower_bound_auto(inst, opt.lp1) is computed
  /// once per instance and attached to its cells, so ratios come for free.
  void add_grid(
      const std::vector<std::pair<std::string,
                                  std::shared_ptr<const core::Instance>>>&
          instances,
      const std::vector<std::string>& solvers, const SolverOptions& opt = {},
      bool auto_lower_bound = false);

  /// Execute every cell in order (replications fan out in parallel) and
  /// cache the results. May be called once per add() batch.
  const std::vector<CellResult>& run();

  const std::vector<CellResult>& results() const noexcept { return results_; }

  /// Unified rows: instance, solver, n, m, reps, E[T] (± ci), ratio when a
  /// lower bound was given, and the mean of every metric present.
  util::Table table() const;
  /// The same rows with mean/ci split into numeric columns, printed as
  /// JSON lines via util::Table::print_json.
  void print_json(std::ostream& os) const;

 private:
  CellResult run_cell(std::size_t k, const Cell& cell,
                      util::ThreadPool* pool) const;

  Options opt_;
  std::vector<Cell> cells_;
  std::vector<CellResult> results_;
};

}  // namespace suu::api
