// General linear-program description consumed by the simplex solver.
//
// All variables are implicitly nonnegative (x >= 0); every LP the paper
// uses (LP1, LP2, Lawler–Labetoulle) has this form.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace suu::lp {

enum class Rel { Le, Ge, Eq };

/// One linear constraint: sum of coeff*x over `terms` REL rhs.
struct Row {
  std::vector<std::pair<int, double>> terms;  ///< (variable index, coefficient)
  Rel rel = Rel::Le;
  double rhs = 0.0;
};

/// minimize c·x subject to rows, x >= 0.
struct Problem {
  int num_vars = 0;
  std::vector<double> objective;  ///< size num_vars; minimized
  std::vector<Row> rows;

  /// Create a fresh variable with the given objective coefficient;
  /// returns its index.
  int add_var(double obj_coeff);
  /// Append a constraint (terms may reference any existing variable).
  void add_row(Row row);
};

enum class Status { Optimal, Infeasible, Unbounded, IterLimit };

std::string to_string(Status s);

/// Which simplex core solves the program. Tableau is the PR 2 flat-arena
/// dense solver (O(m·n) per pivot, bit-stable pivot trajectories); Revised
/// maintains a basis factorization instead of the full tableau (see
/// lp/basis.hpp) and wins once the tableau stops fitting in cache. Auto
/// switches on problem size (kRevisedAutoCells in lp/simplex.hpp).
enum class SimplexEngine { Auto, Tableau, Revised };

std::string to_string(SimplexEngine e);

/// Entering-variable pricing rule (lp/pricing.hpp). Dantzig picks the most
/// negative reduced cost — the historical rule and the byte-stability
/// anchor. Devex and Steepest weigh reduced costs by (approximate) edge
/// norms, trading a little per-pivot bookkeeping for far fewer pivots on
/// the long phase-1 runs that dominate the n>=1024 LP1 regimes. Auto keeps
/// Dantzig on the tableau engine (preserving recorded trajectories) and
/// picks Devex on the revised engine.
enum class PricingRule { Auto, Dantzig, Devex, Steepest };

std::string to_string(PricingRule r);

struct Solution {
  Status status = Status::IterLimit;
  double objective = 0.0;
  std::vector<double> x;  ///< size num_vars when status == Optimal
  /// Simplex pivots spent (both phases). Excludes the per-row basis
  /// eliminations of a warm-start install (those are basis factorization,
  /// not priced iterations) — compare warm vs cold re-solves by wall time,
  /// not by this counter alone.
  int iterations = 0;
  int phase1_iterations = 0;  ///< pivots spent in phase 1 (0 on a warm hit)
  /// Basic column per tableau row on Status::Optimal (the solver's internal
  /// column numbering: originals, then slacks, then artificials). Feed it
  /// into a WarmStart handle to seed a follow-up solve.
  std::vector<int> basis;
  /// Engine that actually produced this solution. A Revised request that
  /// hits numerical trouble is silently re-solved by the tableau, and this
  /// field is how callers (and the differential oracle) see that happen.
  SimplexEngine engine = SimplexEngine::Tableau;
  /// FTRAN telemetry (revised engine only; the tableau leaves both 0):
  /// entering-column solves performed and the summed support sizes they
  /// produced. ftran_nnz / (ftran_calls * m) is the average fill the sparse
  /// eta kernels actually touched — the perf benches report it.
  std::int64_t ftran_calls = 0;
  std::int64_t ftran_nnz = 0;
  /// Basis factorizations performed (revised engine only): the initial or
  /// warm-start install plus every scheduled mid-solve refactorization.
  std::int64_t refactorizations = 0;
};

/// Check primal feasibility of a candidate point within tolerance `tol`
/// (row violation and negativity measured absolutely).
/// Returns the maximum violation found (0 when feasible).
double max_violation(const Problem& p, const std::vector<double>& x);

}  // namespace suu::lp
