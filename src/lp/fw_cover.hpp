// Frank–Wolfe solver for the fractional min-max covering program behind LP1:
//
//     minimize   t
//     subject to sum_i a[j][i] * x_ij  >=  demand_j        (cover job j)
//                sum_j x_ij            <=  t               (machine i load)
//                x >= 0
//
// Each job's feasible set is a scaled simplex (put the demand anywhere among
// its machines), so minimizing the softmax of machine loads with a per-job
// linear oracle is a textbook block Frank–Wolfe scheme. The gradient also
// yields a certified lower bound on the optimum: for softmax weights u
// (u >= 0, sum u = 1), every feasible x has
//     max_i load_i >= sum_i u_i load_i >= sum_j demand_j * min_i u_i / a_ij,
// so the solver reports both an assignment and a duality gap. Used instead
// of the dense simplex when n*m is large (DESIGN.md §5); Lemma 2 only needs
// an O(1)-approximate fractional point, which the gap certifies.
#pragma once

#include <utility>
#include <vector>

namespace suu::lp {

/// Sparse covering system: cover[j] lists (machine, coefficient > 0).
struct CoverSystem {
  int n_machines = 0;
  std::vector<std::vector<std::pair<int, double>>> cover;
  std::vector<double> demand;  ///< one entry per job, > 0
};

struct FwOptions {
  int max_iters = 600;
  double rel_gap = 0.02;  ///< stop when (t - lower_bound)/t below this
};

struct FwSolution {
  /// x[j][k] pairs with cover[j][k]; sum_k a*x == demand_j exactly.
  std::vector<std::vector<double>> x;
  double t = 0.0;            ///< achieved max machine load
  double lower_bound = 0.0;  ///< certified LB on the optimal t
  int iterations = 0;
};

/// Requires every job to have at least one positive-coefficient machine.
FwSolution solve_fw_cover(const CoverSystem& sys, const FwOptions& opt = {});

}  // namespace suu::lp
