// Exact two-phase primal simplex — the LP substrate behind the paper's
// relaxations: LP1 (Section 3), LP2 (Section 4) and the Lawler–Labetoulle
// makespan LP (Appendix C).
//
// Two interchangeable engines solve the same standard form (lp/basis.hpp):
//
//  - Tableau: dense flat row-major arena (stride = total column count) so
//    pivots stream over cache lines; pricing keeps an incrementally
//    maintained candidate list of improving columns and eliminations touch
//    only the nonzero support of the pivot row. Bit-stable trajectories;
//    O(m·n) per pivot.
//  - Revised: eta-file basis factorization with FTRAN/BTRAN per pivot and
//    periodic refactorization (lp/basis.hpp); asymptotically the winner at
//    the n=256/1024 regimes, with an automatic fall-back to the tableau on
//    any numerical trouble.
//
// SimplexOptions::engine selects; Auto switches to Revised once the dense
// arena would exceed kRevisedAutoCells entries. A Bland's-rule fallback
// guards both engines against degenerate cycling. For large SUU-I instances
// the Frank–Wolfe solver in lp/fw_cover.hpp takes over (see DESIGN.md §5).
#pragma once

#include <cstdint>
#include <vector>

#include "lp/problem.hpp"

namespace suu::lp {

/// Floor on the magnitude a tableau entry must have to be accepted as a
/// pivot, regardless of how small SimplexOptions::tol is set. Dividing a
/// row by a smaller element amplifies roundoff enough to corrupt the basis
/// on degenerate LP2 instances.
inline constexpr double kPivotTol = 1e-9;

/// Consecutive non-improving pivots tolerated (as a multiple of m + n)
/// before the pricing switches to Bland's rule, whose least-index selection
/// provably cannot cycle. Dantzig pricing resumes once the objective makes
/// strict progress again.
inline constexpr int kBlandStallFactor = 4;

namespace detail {

/// Iteration budget shared by both engines (0 = automatic).
inline int simplex_iter_cap(int m, int n, int max_iters) {
  return max_iters > 0 ? max_iters : 200 * (m + n) + 20000;
}

/// Consecutive non-improving pivots tolerated before Bland's rule engages.
inline int simplex_stall_cap(int m, int n) {
  return kBlandStallFactor * (m + n) + 64;
}

/// The anti-cycling phase driver shared by the tableau and revised engines,
/// so the Dantzig-to-Bland stall escalation (and its termination argument:
/// each resumption of Dantzig pricing requires strict objective progress)
/// can never silently diverge between them. Engine must expose
/// `iterate(bool bland)` returning 0 = optimal, 1 = pivoted, 2 = unbounded
/// (negative values pass through for engine-specific trouble) and
/// `objective()` for the active phase. Returns the first non-pivot result,
/// or 3 once `iters` reaches `iter_cap`.
template <typename Engine>
int run_simplex_phase(Engine& eng, double tol, int iter_cap, int stall_cap,
                      int& iters) {
  double last_obj = eng.objective();
  int stall = 0;
  bool bland = false;
  while (iters < iter_cap) {
    ++iters;
    const int res = eng.iterate(bland);
    if (res != 1) return res;
    const double obj = eng.objective();
    if (obj < last_obj - tol) {
      stall = 0;
      bland = false;
      last_obj = obj;
    } else if (++stall > stall_cap) {
      bland = true;
    }
  }
  return 3;  // iteration limit
}

}  // namespace detail

/// Margin a nonbasic reduced cost must clear for the WarmStart::certify
/// uniqueness certificate: min over nonbasic non-artificial columns of the
/// phase-2 reduced cost must exceed this, or the optimal vertex is treated
/// as possibly non-unique. Deliberately far above the pivot tolerance —
/// rejecting a genuinely unique optimum only costs a cold re-solve, while
/// accepting a non-unique one silently changes output bytes.
inline constexpr double kUniqueCertTol = 1e-7;

/// SimplexEngine::Auto threshold: solve with the revised engine when the
/// dense tableau would need at least this many arena cells (rows × total
/// columns). Calibrated so the paper-scale table/figure experiments keep
/// their byte-recorded tableau trajectories while the n=256/1024 LP1
/// regimes (where the arena blows the cache and eliminations dominate) get
/// the factorized engine.
inline constexpr std::int64_t kRevisedAutoCells = 1 << 19;

/// The engine-selection rule solve_simplex applies once it knows the
/// standard-form shape: `rows` constraint rows by `n_total` total columns
/// (originals + slacks + artificials). Exposed so builders that can predict
/// their standard-form shape exactly (LP1's constructor can) may decide
/// whether a revised-only optimization — e.g. a crash basis that would
/// perturb the tableau's byte-recorded trajectories — will actually apply.
inline bool will_use_revised(SimplexEngine engine, std::int64_t rows,
                             std::int64_t n_total) {
  return engine == SimplexEngine::Revised ||
         (engine == SimplexEngine::Auto &&
          rows * n_total >= kRevisedAutoCells);
}

/// Reusable warm-start handle. Seed it with the basis of a previous
/// Solution (or leave it empty for a cold first solve) and pass it through
/// SimplexOptions::warm; every successful solve writes its final basis
/// back, so chaining the same handle across a sequence of structurally
/// similar programs (LP2 block re-solves, perturbed-rhs re-solves) lets
/// each follow-up skip phase 1 entirely. A seed basis that does not fit the
/// next program (wrong dimensions, singular, or primal infeasible for the
/// new rhs) is rejected and the solve falls back to a cold two-phase run —
/// warm-starting never changes feasibility or optimality, only the path.
struct WarmStart {
  /// Basic column per tableau row, as produced in Solution::basis. Empty
  /// means "no seed yet".
  std::vector<int> basis;
  // Diagnostics (cumulative over the handle's lifetime).
  std::int64_t hits = 0;    ///< solves that skipped phase 1 via the seed
  std::int64_t misses = 0;  ///< solves where the seed was absent/rejected
  /// Cross-trajectory verification, for handles seeded with a basis that
  /// was NOT recorded on this exact solve chain (e.g. a delta re-prepare
  /// seeding from the parent instance's basis). A seed may steer the
  /// simplex to a DIFFERENT optimal vertex than the cold trajectory's when
  /// the program has alternative optima — same objective, different x,
  /// different downstream bytes. With certify set, every seeded solve must
  /// end at an optimum certified unique (every nonbasic reduced cost
  /// exceeds kUniqueCertTol — the classic strict-reduced-cost uniqueness
  /// certificate); otherwise `diverged` is set and the caller must discard
  /// the chain's results and re-run cold to keep outputs byte-identical.
  /// A seed rejected AFTER the chain accepted one (hits > 0) also sets
  /// `diverged` — the chain's state already depends on the earlier seed.
  /// A seed rejected on a VIRGIN chain (hits == 0) instead clears certify:
  /// the scratch restart it forces is exactly the cold trajectory's start,
  /// so the chain continues as a plain cold run whose results are valid.
  bool certify = false;
  /// Output when certify is set: some seeded solve of this chain could not
  /// certify its optimum unique. Results built from the chain may differ
  /// from a cold run's — discard them.
  bool diverged = false;
  /// Output, refreshed by EVERY optimal solve through the handle (seeded
  /// or cold): did the final optimum pass the strict uniqueness
  /// certificate? Callers record this next to the basis they persist, so
  /// a future child solve seeded from that basis can be skipped outright
  /// when this trajectory already demonstrated alternative optima — the
  /// child's own certificate would fail after the work is spent.
  bool last_unique = false;
};

struct SimplexOptions {
  double tol = 1e-9;        ///< feasibility / reduced-cost tolerance
  int max_iters = 0;        ///< 0 = automatic (scales with problem size)
  bool verify = true;       ///< re-check feasibility of the result
  /// Optional in/out warm-start handle (not owned); see WarmStart. Bases
  /// are engine-portable: a seed recorded by either engine warm starts the
  /// other (the revised engine treats it as a factorization seed).
  WarmStart* warm = nullptr;
  /// Which engine solves the program; Auto switches on problem size.
  SimplexEngine engine = SimplexEngine::Auto;
  /// Entering-variable pricing rule (lp/pricing.hpp). Auto resolves per
  /// engine: Dantzig on the tableau (whose pivot trajectories are
  /// byte-recorded), Devex on the revised engine. Every rule reaches the
  /// same verdict and objective — pricing changes the pivot path, never
  /// the answer (the differential oracle crosses all rules to enforce it).
  PricingRule pricing = PricingRule::Auto;
};

/// Solve `min c·x, rows, x >= 0`. On Status::Optimal the returned point is
/// primal feasible within options.tol * scale and basic-optimal.
Solution solve_simplex(const Problem& p, const SimplexOptions& opt = {});

}  // namespace suu::lp
