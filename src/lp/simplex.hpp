// Dense two-phase primal simplex over a flat row-major arena.
//
// This is the exact LP substrate behind the paper's relaxations: LP1
// (Section 3), LP2 (Section 4) and the Lawler–Labetoulle makespan LP
// (Appendix C). The tableau lives in one contiguous allocation (stride =
// total column count) so pivots stream over cache lines; pricing keeps an
// incrementally-maintained candidate list of improving columns (falling
// back to a full scan only when the list is exhausted) and eliminations
// touch only the nonzero support of the pivot row. A Bland's-rule fallback
// guards against degenerate cycling. For large SUU-I instances the
// Frank–Wolfe solver in lp/fw_cover.hpp takes over (see DESIGN.md §5).
#pragma once

#include <cstdint>
#include <vector>

#include "lp/problem.hpp"

namespace suu::lp {

/// Floor on the magnitude a tableau entry must have to be accepted as a
/// pivot, regardless of how small SimplexOptions::tol is set. Dividing a
/// row by a smaller element amplifies roundoff enough to corrupt the basis
/// on degenerate LP2 instances.
inline constexpr double kPivotTol = 1e-9;

/// Consecutive non-improving pivots tolerated (as a multiple of m + n)
/// before the pricing switches to Bland's rule, whose least-index selection
/// provably cannot cycle. Dantzig pricing resumes once the objective makes
/// strict progress again.
inline constexpr int kBlandStallFactor = 4;

/// Reusable warm-start handle. Seed it with the basis of a previous
/// Solution (or leave it empty for a cold first solve) and pass it through
/// SimplexOptions::warm; every successful solve writes its final basis
/// back, so chaining the same handle across a sequence of structurally
/// similar programs (LP2 block re-solves, perturbed-rhs re-solves) lets
/// each follow-up skip phase 1 entirely. A seed basis that does not fit the
/// next program (wrong dimensions, singular, or primal infeasible for the
/// new rhs) is rejected and the solve falls back to a cold two-phase run —
/// warm-starting never changes feasibility or optimality, only the path.
struct WarmStart {
  /// Basic column per tableau row, as produced in Solution::basis. Empty
  /// means "no seed yet".
  std::vector<int> basis;
  // Diagnostics (cumulative over the handle's lifetime).
  std::int64_t hits = 0;    ///< solves that skipped phase 1 via the seed
  std::int64_t misses = 0;  ///< solves where the seed was absent/rejected
};

struct SimplexOptions {
  double tol = 1e-9;        ///< feasibility / reduced-cost tolerance
  int max_iters = 0;        ///< 0 = automatic (scales with problem size)
  bool verify = true;       ///< re-check feasibility of the result
  /// Optional in/out warm-start handle (not owned); see WarmStart.
  WarmStart* warm = nullptr;
};

/// Solve `min c·x, rows, x >= 0`. On Status::Optimal the returned point is
/// primal feasible within options.tol * scale and basic-optimal.
Solution solve_simplex(const Problem& p, const SimplexOptions& opt = {});

}  // namespace suu::lp
