// Dense two-phase primal simplex.
//
// This is the exact LP substrate behind the paper's relaxations: LP1
// (Section 3), LP2 (Section 4) and the Lawler–Labetoulle makespan LP
// (Appendix C). It is a tableau implementation with Dantzig pricing and a
// Bland's-rule fallback for degeneracy, intended for the dense, moderately
// sized programs those relaxations produce. For large SUU-I instances the
// Frank–Wolfe solver in lp/fw_cover.hpp takes over (see DESIGN.md §5).
#pragma once

#include "lp/problem.hpp"

namespace suu::lp {

/// Floor on the magnitude a tableau entry must have to be accepted as a
/// pivot, regardless of how small SimplexOptions::tol is set. Dividing a
/// row by a smaller element amplifies roundoff enough to corrupt the basis
/// on degenerate LP2 instances.
inline constexpr double kPivotTol = 1e-9;

/// Consecutive non-improving pivots tolerated (as a multiple of m + n)
/// before the pricing switches to Bland's rule, whose least-index selection
/// provably cannot cycle. Dantzig pricing resumes once the objective makes
/// strict progress again.
inline constexpr int kBlandStallFactor = 4;

struct SimplexOptions {
  double tol = 1e-9;        ///< feasibility / reduced-cost tolerance
  int max_iters = 0;        ///< 0 = automatic (scales with problem size)
  bool verify = true;       ///< re-check feasibility of the result
};

/// Solve `min c·x, rows, x >= 0`. On Status::Optimal the returned point is
/// primal feasible within options.tol * scale and basic-optimal.
Solution solve_simplex(const Problem& p, const SimplexOptions& opt = {});

}  // namespace suu::lp
