#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace suu::lp {
namespace {

// Dense tableau:
//   body_[r] = current B^{-1} A row (length n_total), rhs_[r] = B^{-1} b.
//   cost_[j] = reduced cost of column j for the active objective,
//   cost_obj_ = current (negated) objective value.
class Tableau {
 public:
  Tableau(const Problem& p, double tol)
      : tol_(tol), piv_tol_(std::max(tol, kPivotTol)) {
    const int m = static_cast<int>(p.rows.size());
    n_orig_ = p.num_vars;

    // Count extra columns: one slack/surplus per inequality, one artificial
    // per Ge/Eq row (after rhs-sign normalization).
    // First normalize rows so rhs >= 0.
    struct NRow {
      std::vector<double> a;  // dense over original vars
      Rel rel;
      double rhs;
    };
    std::vector<NRow> nrows(m);
    for (int r = 0; r < m; ++r) {
      const Row& row = p.rows[r];
      NRow nr;
      nr.a.assign(n_orig_, 0.0);
      for (const auto& [v, c] : row.terms) nr.a[v] += c;
      nr.rel = row.rel;
      nr.rhs = row.rhs;
      if (nr.rhs < 0) {
        for (auto& c : nr.a) c = -c;
        nr.rhs = -nr.rhs;
        if (nr.rel == Rel::Le) {
          nr.rel = Rel::Ge;
        } else if (nr.rel == Rel::Ge) {
          nr.rel = Rel::Le;
        }
      }
      nrows[r] = std::move(nr);
    }

    int n_slack = 0, n_art = 0;
    for (const auto& nr : nrows) {
      if (nr.rel != Rel::Eq) ++n_slack;
      if (nr.rel != Rel::Le) ++n_art;
    }
    n_total_ = n_orig_ + n_slack + n_art;
    art_begin_ = n_orig_ + n_slack;

    body_.assign(m, std::vector<double>(n_total_, 0.0));
    rhs_.assign(m, 0.0);
    basis_.assign(m, -1);

    int slack_next = n_orig_;
    int art_next = art_begin_;
    for (int r = 0; r < m; ++r) {
      const NRow& nr = nrows[r];
      for (int j = 0; j < n_orig_; ++j) body_[r][j] = nr.a[j];
      rhs_[r] = nr.rhs;
      if (nr.rel == Rel::Le) {
        body_[r][slack_next] = 1.0;
        basis_[r] = slack_next++;
      } else if (nr.rel == Rel::Ge) {
        body_[r][slack_next] = -1.0;
        ++slack_next;
        body_[r][art_next] = 1.0;
        basis_[r] = art_next++;
      } else {  // Eq
        body_[r][art_next] = 1.0;
        basis_[r] = art_next++;
      }
    }
  }

  int rows() const { return static_cast<int>(body_.size()); }
  int cols() const { return n_total_; }
  int n_orig() const { return n_orig_; }
  int art_begin() const { return art_begin_; }
  const std::vector<int>& basis() const { return basis_; }

  // Install reduced costs for objective `c` (dense over all n_total_ columns,
  // zero-extended) given the current basis.
  void load_objective(const std::vector<double>& c) {
    cost_.assign(n_total_, 0.0);
    for (int j = 0; j < n_total_ && j < static_cast<int>(c.size()); ++j) {
      cost_[j] = c[j];
    }
    cost_obj_ = 0.0;
    // Subtract c_B * (row) from cost for every basic column.
    for (int r = 0; r < rows(); ++r) {
      const int b = basis_[r];
      const double cb =
          (b < static_cast<int>(c.size())) ? c[b] : 0.0;
      if (cb == 0.0) continue;
      for (int j = 0; j < n_total_; ++j) cost_[j] -= cb * body_[r][j];
      cost_obj_ -= cb * rhs_[r];
    }
  }

  double objective() const { return -cost_obj_; }

  // One simplex iteration for the loaded objective. `allowed(j)` filters the
  // entering column. Returns: 0 = optimal, 1 = pivoted, 2 = unbounded.
  template <typename Allowed>
  int iterate(bool bland, Allowed&& allowed) {
    // Entering column.
    int enter = -1;
    if (bland) {
      for (int j = 0; j < n_total_; ++j) {
        if (allowed(j) && cost_[j] < -tol_) {
          enter = j;
          break;
        }
      }
    } else {
      double best = -tol_;
      for (int j = 0; j < n_total_; ++j) {
        if (allowed(j) && cost_[j] < best) {
          best = cost_[j];
          enter = j;
        }
      }
    }
    if (enter < 0) return 0;

    // Ratio test. Entries below piv_tol_ are rejected as pivots: dividing
    // the row by a near-zero element would swamp the tableau with roundoff.
    // Ties break toward the lowest basis index (the Bland tie-break), which
    // keeps degenerate ties deterministic.
    int leave = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int r = 0; r < rows(); ++r) {
      const double a = body_[r][enter];
      if (a > piv_tol_) {
        const double ratio = rhs_[r] / a;
        if (ratio < best_ratio - tol_ ||
            (ratio < best_ratio + tol_ &&
             (leave < 0 || basis_[r] < basis_[leave]))) {
          best_ratio = ratio;
          leave = r;
        }
      }
    }
    if (leave < 0) return 2;

    pivot(leave, enter);
    return 1;
  }

  void pivot(int r, int enter) {
    const double piv = body_[r][enter];
    SUU_ASSERT(std::fabs(piv) > kPivotTol / 2);
    const double inv = 1.0 / piv;
    for (int j = 0; j < n_total_; ++j) body_[r][j] *= inv;
    rhs_[r] *= inv;
    body_[r][enter] = 1.0;  // kill roundoff
    for (int rr = 0; rr < rows(); ++rr) {
      if (rr == r) continue;
      const double f = body_[rr][enter];
      if (f == 0.0) continue;
      for (int j = 0; j < n_total_; ++j) body_[rr][j] -= f * body_[r][j];
      body_[rr][enter] = 0.0;
      rhs_[rr] -= f * rhs_[r];
      if (rhs_[rr] < 0 && rhs_[rr] > -tol_) rhs_[rr] = 0.0;
    }
    const double fc = cost_[enter];
    if (fc != 0.0) {
      for (int j = 0; j < n_total_; ++j) cost_[j] -= fc * body_[r][j];
      cost_[enter] = 0.0;
      cost_obj_ -= fc * rhs_[r];
    }
    basis_[r] = enter;
  }

  // After phase 1: pivot artificial variables out of the basis where
  // possible; rows whose artificial cannot leave are redundant (all
  // non-artificial coefficients ~ 0) and harmless since their rhs is ~0.
  void expel_artificials() {
    for (int r = 0; r < rows(); ++r) {
      if (basis_[r] < art_begin_) continue;
      int enter = -1;
      for (int j = 0; j < art_begin_; ++j) {
        if (std::fabs(body_[r][j]) > std::max(piv_tol_, tol_ * 10)) {
          enter = j;
          break;
        }
      }
      if (enter >= 0) pivot(r, enter);
    }
  }

  std::vector<double> extract(int n_vars) const {
    std::vector<double> x(n_vars, 0.0);
    for (int r = 0; r < rows(); ++r) {
      if (basis_[r] < n_vars) x[basis_[r]] = std::max(0.0, rhs_[r]);
    }
    return x;
  }

 private:
  double tol_;
  double piv_tol_;
  int n_orig_ = 0;
  int n_total_ = 0;
  int art_begin_ = 0;
  std::vector<std::vector<double>> body_;
  std::vector<double> rhs_;
  std::vector<double> cost_;
  double cost_obj_ = 0.0;
  std::vector<int> basis_;
};

}  // namespace

Solution solve_simplex(const Problem& p, const SimplexOptions& opt) {
  Solution sol;
  if (p.num_vars == 0) {
    // Trivially optimal iff every row is satisfied by x = {}.
    sol.x.clear();
    sol.objective = 0.0;
    sol.status = Status::Optimal;
    for (const auto& row : p.rows) {
      const bool ok = (row.rel == Rel::Le && row.rhs >= -opt.tol) ||
                      (row.rel == Rel::Ge && row.rhs <= opt.tol) ||
                      (row.rel == Rel::Eq && std::fabs(row.rhs) <= opt.tol);
      if (!ok) sol.status = Status::Infeasible;
    }
    return sol;
  }

  Tableau tab(p, opt.tol);
  const int m = tab.rows();
  const int n = tab.cols();
  const int iter_cap =
      opt.max_iters > 0 ? opt.max_iters : 200 * (m + n) + 20000;
  // Anti-cycling guard: degenerate LP2 instances can make Dantzig pricing
  // revisit bases forever. After stall_cap consecutive pivots with no
  // strict objective progress, switch to Bland's least-index rule, which
  // cannot cycle; Dantzig pricing resumes once the objective moves again
  // (each resumption requires strict progress, so the phase still
  // terminates).
  const int stall_cap = kBlandStallFactor * (m + n) + 64;

  int iters = 0;

  auto run_phase = [&](auto&& allowed) -> int {
    double last_obj = tab.objective();
    int stall = 0;
    bool bland = false;
    while (iters < iter_cap) {
      ++iters;
      const int res = tab.iterate(bland, allowed);
      if (res != 1) return res;
      const double obj = tab.objective();
      if (obj < last_obj - opt.tol) {
        stall = 0;
        bland = false;
        last_obj = obj;
      } else if (++stall > stall_cap) {
        bland = true;
      }
    }
    return 3;  // iteration limit
  };

  // ---- Phase 1: minimize the sum of artificials.
  if (tab.art_begin() < n) {
    std::vector<double> phase1(n, 0.0);
    for (int j = tab.art_begin(); j < n; ++j) phase1[j] = 1.0;
    tab.load_objective(phase1);
    const int res = run_phase([](int) { return true; });
    if (res == 3) {
      sol.status = Status::IterLimit;
      sol.iterations = iters;
      return sol;
    }
    SUU_CHECK_MSG(res != 2, "phase-1 LP cannot be unbounded");
    // Feasible iff all artificials ended at ~0.
    const double p1 = tab.objective();
    const double feas_tol = opt.tol * (1.0 + std::fabs(p1)) * 100;
    if (p1 > feas_tol + 1e-7) {
      sol.status = Status::Infeasible;
      sol.iterations = iters;
      return sol;
    }
    tab.expel_artificials();
  }

  // ---- Phase 2: original objective; artificial columns are locked out.
  std::vector<double> phase2(n, 0.0);
  for (int j = 0; j < p.num_vars; ++j) phase2[j] = p.objective[j];
  tab.load_objective(phase2);
  const int art_begin = tab.art_begin();
  const auto& basis = tab.basis();
  (void)basis;
  const int res = run_phase([art_begin](int j) { return j < art_begin; });
  sol.iterations = iters;
  if (res == 3) {
    sol.status = Status::IterLimit;
    return sol;
  }
  if (res == 2) {
    sol.status = Status::Unbounded;
    return sol;
  }

  sol.status = Status::Optimal;
  sol.x = tab.extract(p.num_vars);
  double obj = 0.0;
  for (int j = 0; j < p.num_vars; ++j) obj += p.objective[j] * sol.x[j];
  sol.objective = obj;

  if (opt.verify) {
    // Guard against numerical drift: the point must nearly satisfy the rows.
    double scale = 1.0;
    for (const auto& row : p.rows) scale = std::max(scale, std::fabs(row.rhs));
    const double viol = max_violation(p, sol.x);
    SUU_CHECK_MSG(viol <= 1e-5 * scale,
                  "simplex result violates constraints by " << viol);
  }
  return sol;
}

}  // namespace suu::lp
