#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "lp/basis.hpp"
#include "lp/pricing.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/simd.hpp"

namespace suu::lp {
namespace {

// Flat-arena tableau:
//   arena_ is one row-major allocation of rows() * stride_ doubles;
//   row r (the current B^{-1} A row) starts at arena_[r * stride_],
//   rhs_[r] = B^{-1} b, cost_[j] = reduced cost of column j for the active
//   objective, cost_obj_ = current (negated) objective value.
//
// Pricing keeps cand_, the exact set of improving columns (cost < -tol
// among the first allow_limit_ columns), maintained incrementally: a pivot
// changes reduced costs only on the nonzero support of the pivot row, so
// only those columns can enter or leave the set. Entering-column selection
// scans cand_ instead of all columns and compacts stale entries in place; a
// full rescan runs only when the list is exhausted (then finding nothing
// proves optimality). The selected column is the lexicographic minimum of
// (reduced cost, index), which is exactly what a full Dantzig scan with
// first-wins tie-breaking returns — so the pivot trajectory, and therefore
// every solution byte, is identical to the full-scan solver's.
class Tableau {
 public:
  // The shared standard form (lp/basis.hpp) reproduces this engine's
  // historical normalization bit for bit, so scattering its sparse columns
  // into the arena builds the exact tableau the old inline construction did.
  Tableau(const StandardForm& sf, double tol,
          PricingRule rule = PricingRule::Dantzig)
      : tol_(tol), piv_tol_(std::max(tol, kPivotTol)), rule_(rule) {
    m_ = sf.m;
    n_orig_ = sf.n_orig;
    n_total_ = sf.n_total;
    art_begin_ = sf.art_begin;
    stride_ = n_total_;
    arena_.assign(static_cast<std::size_t>(m_) * stride_, 0.0);
    if (rule_ == PricingRule::Steepest) {
      beta_.assign(static_cast<std::size_t>(n_total_), 0.0);
    }
    rhs_ = sf.rhs;
    basis_ = sf.init_basis;
    for (int j = 0; j < n_total_; ++j) {
      for (int k = sf.col_ptr[static_cast<std::size_t>(j)];
           k < sf.col_ptr[static_cast<std::size_t>(j) + 1]; ++k) {
        row(sf.col_row[static_cast<std::size_t>(k)])[j] =
            sf.col_val[static_cast<std::size_t>(k)];
      }
    }
  }

  int rows() const { return m_; }
  int cols() const { return n_total_; }
  int n_orig() const { return n_orig_; }
  int art_begin() const { return art_begin_; }
  const std::vector<int>& basis() const { return basis_; }
  std::vector<int>& mutable_basis() { return basis_; }

  /// Min reduced cost over nonbasic columns the active objective may price
  /// (below allow_limit_). At optimality this is the WarmStart::certify
  /// uniqueness certificate: a value above kUniqueCertTol proves the
  /// optimal solution unique, so any trajectory — warm-seeded or cold —
  /// must have landed on the same vertex.
  double min_nonbasic_reduced_cost() const {
    std::vector<char> basic(static_cast<std::size_t>(n_total_), 0);
    for (int r = 0; r < m_; ++r) {
      basic[static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)])] = 1;
    }
    double mn = std::numeric_limits<double>::infinity();
    for (int j = 0; j < allow_limit_; ++j) {
      if (basic[static_cast<std::size_t>(j)]) continue;
      mn = std::min(mn, cost_[static_cast<std::size_t>(j)]);
    }
    return mn;
  }

  double* row(int r) { return arena_.data() + static_cast<std::size_t>(r) * stride_; }
  const double* row(int r) const {
    return arena_.data() + static_cast<std::size_t>(r) * stride_;
  }

  // Install reduced costs for objective `c` (dense over all n_total_ columns,
  // zero-extended) given the current basis, and rebuild the candidate list
  // for columns below `allow_limit` (phase 2 locks the artificials out by
  // passing art_begin()).
  void load_objective(const std::vector<double>& c, int allow_limit) {
    cost_.assign(n_total_, 0.0);
    for (int j = 0; j < n_total_ && j < static_cast<int>(c.size()); ++j) {
      cost_[j] = c[j];
    }
    cost_obj_ = 0.0;
    // Subtract c_B * (row) from cost for every basic column (element-wise
    // SIMD kernel: bit-identical to the scalar loop).
    for (int r = 0; r < rows(); ++r) {
      const int b = basis_[r];
      const double cb =
          (b < static_cast<int>(c.size())) ? c[b] : 0.0;
      if (cb == 0.0) continue;
      util::simd::axpy_minus(cost_.data(), row(r), cb, n_total_);
      cost_obj_ -= cb * rhs_[r];
    }
    allow_limit_ = allow_limit;
    // Each objective load opens a fresh reference framework for the
    // weighted pricing rules (weights stay inactive for Dantzig).
    if (rule_ != PricingRule::Dantzig) weights_.reset(n_total_);
    rebuild_candidates();
  }

  double objective() const { return -cost_obj_; }

  // One simplex iteration for the loaded objective. Returns: 0 = optimal,
  // 1 = pivoted, 2 = unbounded.
  int iterate(bool bland) {
    // Entering column.
    int enter = -1;
    if (bland) {
      // Bland's least-index rule, full scan — preserved verbatim as the
      // anti-cycling guard (the candidate list is bypassed, not consulted).
      for (int j = 0; j < allow_limit_; ++j) {
        if (cost_[j] < -tol_) {
          enter = j;
          break;
        }
      }
    } else {
      enter = rule_ == PricingRule::Dantzig ? price_candidates()
                                            : price_candidates_weighted();
      if (enter < 0) {
        // Candidate list exhausted: fall back to one full pricing scan.
        // The incremental maintenance is exact, so this finds a column only
        // if floating-point drift desynchronized the list; finding none
        // certifies optimality.
        rebuild_candidates();
        enter = rule_ == PricingRule::Dantzig ? price_candidates()
                                              : price_candidates_weighted();
      }
    }
    if (enter < 0) return 0;

    // Ratio test. Entries below piv_tol_ are rejected as pivots: dividing
    // the row by a near-zero element would swamp the tableau with roundoff.
    // Ties break toward the lowest basis index (the Bland tie-break), which
    // keeps degenerate ties deterministic.
    int leave = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    const double* col = arena_.data() + enter;
    for (int r = 0; r < rows(); ++r, col += stride_) {
      const double a = *col;
      if (a > piv_tol_) {
        const double ratio = rhs_[r] / a;
        if (ratio < best_ratio - tol_ ||
            (ratio < best_ratio + tol_ &&
             (leave < 0 || basis_[r] < basis_[leave]))) {
          best_ratio = ratio;
          leave = r;
        }
      }
    }
    if (leave < 0) return 2;

    pivot(leave, enter);
    return 1;
  }

  void pivot(int r, int enter) {
    double* const pr = row(r);
    const double piv = pr[enter];
    SUU_ASSERT(std::fabs(piv) > kPivotTol / 2);
    const double inv = 1.0 / piv;
    // Scale the pivot row, collecting its nonzero support once; every
    // elimination below touches only these columns. Structural zeros stay
    // exactly 0.0 under row operations, so skipping them is bit-identical
    // to the dense update.
    support_.clear();
    for (int j = 0; j < n_total_; ++j) {
      const double v = pr[j];
      if (v != 0.0) {
        pr[j] = v * inv;
        support_.push_back(j);
      }
    }
    rhs_[r] *= inv;
    pr[enter] = 1.0;  // kill roundoff
    // Weighted pricing bookkeeping rides along with the elimination. For
    // steepest edge, beta_j = a_j^T B^{-T} B^{-1} a_q is assembled from the
    // pre-update rows (the tableau holds B^{-1}A explicitly, so no extra
    // BTRAN is needed — the price is a second sweep of the support).
    const bool track_weights =
        rule_ != PricingRule::Dantzig && weights_.active() && !cost_.empty();
    const bool steepest = track_weights && rule_ == PricingRule::Steepest;
    if (steepest) {
      // Pivot-row term: (B^{-1}a_q)_r = piv and the pre-scale row value is
      // piv * pr[j].
      for (const int j : support_) beta_[j] = piv * piv * pr[j];
    }
    // Hybrid elimination: sparse pivot rows are applied through their
    // support list; once the row has filled in past half the arena width
    // the contiguous dense kernel wins (element-wise SIMD mul+sub, and
    // subtracting f * 0.0 from the untouched columns changes no bits).
    const bool dense_row =
        support_.size() * 2 > static_cast<std::size_t>(n_total_);
    for (int rr = 0; rr < rows(); ++rr) {
      if (rr == r) continue;
      double* const prr = row(rr);
      const double f = prr[enter];
      if (f == 0.0) continue;  // column support: row untouched by this pivot
      if (steepest) {
        for (const int j : support_) beta_[j] += f * prr[j];
      }
      if (dense_row) {
        util::simd::axpy_minus(prr, pr, f, n_total_);
      } else {
        for (const int j : support_) prr[j] -= f * pr[j];
      }
      prr[enter] = 0.0;
      rhs_[rr] -= f * rhs_[r];
      if (rhs_[rr] < 0 && rhs_[rr] > -tol_) rhs_[rr] = 0.0;
    }
    if (!cost_.empty()) {
      const double fc = cost_[enter];
      if (fc != 0.0) {
        if (dense_row) {
          util::simd::axpy_minus(cost_.data(), pr, fc, n_total_);
        } else {
          for (const int j : support_) cost_[j] -= fc * pr[j];
        }
        // Membership can only change where the pivot row is nonzero.
        for (const int j : support_) maybe_add_candidate(j);
        cost_[enter] = 0.0;
        cost_obj_ -= fc * rhs_[r];
      }
    }
    if (track_weights) {
      // The scaled pivot row IS the ratio alpha_rj / alpha_rq the weight
      // recurrences want.
      const double wq = weights_[enter];
      for (const int j : support_) {
        if (j == enter) continue;
        if (steepest) {
          weights_.note_steepest(j, pr[j], beta_[j], wq);
        } else {
          weights_.note_devex(j, pr[j], wq);
        }
      }
      weights_.set_leaving(basis_[r], wq, piv);
      if (weights_.needs_reset()) weights_.reset(n_total_);
    }
    basis_[r] = enter;
  }

  // After phase 1: pivot artificial variables out of the basis where
  // possible; rows whose artificial cannot leave are redundant (all
  // non-artificial coefficients ~ 0) and harmless since their rhs is ~0.
  void expel_artificials() {
    for (int r = 0; r < rows(); ++r) {
      if (basis_[r] < art_begin_) continue;
      int enter = -1;
      const double* const row_r = row(r);
      for (int j = 0; j < art_begin_; ++j) {
        if (std::fabs(row_r[j]) > std::max(piv_tol_, tol_ * 10)) {
          enter = j;
          break;
        }
      }
      if (enter >= 0) pivot(r, enter);
    }
  }

  // Try to install a previously-optimal basis (one non-artificial column
  // per row) by direct Gaussian pivoting, skipping phase 1. Returns false —
  // leaving the tableau possibly corrupted, so the caller must rebuild —
  // when the basis does not fit this program: wrong dimensions, a column
  // with no acceptable pivot (singular), or a primal-infeasible vertex for
  // the current rhs.
  bool try_warm_start(const std::vector<int>& warm_basis) {
    if (static_cast<int>(warm_basis.size()) != rows()) return false;
    std::vector<char> used_col(static_cast<std::size_t>(n_total_), 0);
    for (const int c : warm_basis) {
      if (c < 0 || c >= art_begin_ || used_col[static_cast<std::size_t>(c)]) {
        return false;
      }
      used_col[static_cast<std::size_t>(c)] = 1;
    }
    std::vector<char> placed_row(static_cast<std::size_t>(rows()), 0);
    for (const int c : warm_basis) {
      // Pick the largest-magnitude pivot among rows not yet claimed, for
      // numerical stability; any valid choice yields the same basis matrix.
      int best_r = -1;
      double best_a = piv_tol_;
      for (int r = 0; r < rows(); ++r) {
        if (placed_row[static_cast<std::size_t>(r)]) continue;
        const double a = std::fabs(row(r)[c]);
        if (a > best_a) {
          best_a = a;
          best_r = r;
        }
      }
      if (best_r < 0) return false;
      pivot(best_r, c);
      placed_row[static_cast<std::size_t>(best_r)] = 1;
    }
    for (int r = 0; r < rows(); ++r) {
      if (rhs_[r] < 0 && rhs_[r] > -tol_) rhs_[r] = 0.0;
      if (rhs_[r] < 0) return false;  // vertex infeasible for this rhs
    }
    return true;
  }

  std::vector<double> extract(int n_vars) const {
    std::vector<double> x(n_vars, 0.0);
    for (int r = 0; r < rows(); ++r) {
      if (basis_[r] < n_vars) x[basis_[r]] = std::max(0.0, rhs_[r]);
    }
    return x;
  }

 private:
  void rebuild_candidates() {
    cand_.clear();
    in_cand_.assign(static_cast<std::size_t>(n_total_), 0);
    for (int j = 0; j < allow_limit_; ++j) {
      if (cost_[j] < -tol_) {
        cand_.push_back(j);
        in_cand_[static_cast<std::size_t>(j)] = 1;
      }
    }
  }

  void maybe_add_candidate(int j) {
    if (j < allow_limit_ && cost_[j] < -tol_ &&
        !in_cand_[static_cast<std::size_t>(j)]) {
      cand_.push_back(j);
      in_cand_[static_cast<std::size_t>(j)] = 1;
    }
  }

  // Lexicographic (cost, index) minimum over the candidate list, compacting
  // out columns whose reduced cost is no longer improving. Returns -1 when
  // the list empties.
  int price_candidates() {
    int enter = -1;
    double best = 0.0;
    std::size_t w = 0;
    for (std::size_t k = 0; k < cand_.size(); ++k) {
      const int j = cand_[k];
      const double c = cost_[j];
      if (!(c < -tol_)) {
        in_cand_[static_cast<std::size_t>(j)] = 0;
        continue;  // stale: drop
      }
      cand_[w++] = j;
      if (enter < 0 || c < best || (c == best && j < enter)) {
        best = c;
        enter = j;
      }
    }
    cand_.resize(w);
    return enter;
  }

  // Weighted variant: max of cost_j^2 / w_j over the candidate list (the
  // tableau's reduced costs are maintained exactly, so no refresh step is
  // needed). Ties break to the lowest index for determinism.
  int price_candidates_weighted() {
    int enter = -1;
    double best_score = 0.0;
    std::size_t w = 0;
    for (std::size_t k = 0; k < cand_.size(); ++k) {
      const int j = cand_[k];
      const double c = cost_[j];
      if (!(c < -tol_)) {
        in_cand_[static_cast<std::size_t>(j)] = 0;
        continue;  // stale: drop
      }
      cand_[w++] = j;
      const double s = weights_.score(j, c);
      if (enter < 0 || s > best_score || (s == best_score && j < enter)) {
        best_score = s;
        enter = j;
      }
    }
    cand_.resize(w);
    return enter;
  }

  double tol_;
  double piv_tol_;
  int m_ = 0;
  int n_orig_ = 0;
  int n_total_ = 0;
  int art_begin_ = 0;
  int stride_ = 0;
  // rows() * stride_, row-major, on cache-line-aligned storage so row
  // starts never straddle lines under the SIMD elimination kernel.
  util::simd::aligned_vector<double> arena_;
  std::vector<double> rhs_;
  std::vector<double> cost_;
  double cost_obj_ = 0.0;
  std::vector<int> basis_;
  int allow_limit_ = 0;
  std::vector<int> cand_;      // improving columns (exact, lazily compacted)
  std::vector<char> in_cand_;  // j is somewhere in cand_
  std::vector<int> support_;   // scratch: pivot-row nonzero columns
  PricingRule rule_ = PricingRule::Dantzig;  // resolved: never Auto
  pricing::ReferenceWeights weights_;        // active for Devex/Steepest
  std::vector<double> beta_;   // steepest scratch: a_j^T B^{-T} B^{-1} a_q
};

}  // namespace

namespace {

Solution solve_simplex_impl(const Problem& p, const SimplexOptions& opt) {
  Solution sol;
  if (p.num_vars == 0) {
    // Trivially optimal iff every row is satisfied by x = {}.
    sol.x.clear();
    sol.objective = 0.0;
    sol.status = Status::Optimal;
    for (const auto& row : p.rows) {
      const bool ok = (row.rel == Rel::Le && row.rhs >= -opt.tol) ||
                      (row.rel == Rel::Ge && row.rhs <= opt.tol) ||
                      (row.rel == Rel::Eq && std::fabs(row.rhs) <= opt.tol);
      if (!ok) sol.status = Status::Infeasible;
    }
    return sol;
  }

  const StandardForm sf = build_standard_form(p);
  const bool use_revised = will_use_revised(opt.engine, sf.m, sf.n_total);
  if (use_revised) {
    bool trouble = false;
    Solution revised = solve_revised(p, sf, opt, &trouble);
    // Numerical trouble (singular refactorization, failed verification)
    // falls through to the tableau engine, whose slower dense eliminations
    // are the accuracy anchor; warm-start accounting was deferred so the
    // tableau attempt below counts exactly once.
    if (!trouble) return revised;
    static obs::Counter& fallbacks =
        obs::Registry::global().counter("suu_lp_tableau_fallbacks_total");
    fallbacks.add();
  }

  const PricingRule rule =
      pricing::resolve_pricing(opt.pricing, SimplexEngine::Tableau);
  Tableau tab(sf, opt.tol, rule);
  const int m = tab.rows();
  const int n = tab.cols();
  // Anti-cycling guard (detail::run_simplex_phase, shared with the revised
  // engine): degenerate LP2 instances can make Dantzig pricing revisit
  // bases forever, so after stall_cap non-improving pivots the driver
  // switches to Bland's least-index rule.
  const int iter_cap = detail::simplex_iter_cap(m, n, opt.max_iters);
  const int stall_cap = detail::simplex_stall_cap(m, n);

  int iters = 0;

  auto run_phase = [&]() -> int {
    return detail::run_simplex_phase(tab, opt.tol, iter_cap, stall_cap, iters);
  };

  // ---- Warm start: an accepted seed basis is primal feasible, so phase 1
  // is unnecessary — artificials stay nonbasic at zero and every (possibly
  // sign-normalized) row is satisfied at the seeded vertex.
  bool warmed = false;
  if (opt.warm != nullptr && !opt.warm->basis.empty()) {
    if (tab.try_warm_start(opt.warm->basis)) {
      warmed = true;
      ++opt.warm->hits;
    } else {
      // A failed attempt may have pivoted already; rebuild from scratch.
      tab = Tableau(sf, opt.tol, rule);
      ++opt.warm->misses;
      if (opt.warm->certify) {
        if (opt.warm->hits > 0) {
          // The chain already accepted a seed, so its state depends on the
          // warm trajectory; a scratch restart here is neither the warm
          // path nor the cold one. Discard and re-run.
          opt.warm->diverged = true;
        } else {
          // Virgin chain: a scratch restart IS the cold trajectory's start,
          // so from here on this is a plain cold run — stop certifying.
          opt.warm->certify = false;
        }
      }
    }
  } else if (opt.warm != nullptr) {
    ++opt.warm->misses;
  }

  // ---- Phase 1: minimize the sum of artificials.
  if (!warmed && tab.art_begin() < n) {
    std::vector<double> phase1(n, 0.0);
    for (int j = tab.art_begin(); j < n; ++j) phase1[j] = 1.0;
    tab.load_objective(phase1, n);
    const int res = run_phase();
    if (res == 3) {
      sol.status = Status::IterLimit;
      sol.iterations = iters;
      sol.phase1_iterations = iters;
      return sol;
    }
    SUU_CHECK_MSG(res != 2, "phase-1 LP cannot be unbounded");
    // Feasible iff all artificials ended at ~0.
    const double p1 = tab.objective();
    const double feas_tol = opt.tol * (1.0 + std::fabs(p1)) * 100;
    if (p1 > feas_tol + 1e-7) {
      sol.status = Status::Infeasible;
      sol.iterations = iters;
      sol.phase1_iterations = iters;
      return sol;
    }
    tab.expel_artificials();
  }
  sol.phase1_iterations = iters;

  // ---- Phase 2: original objective; artificial columns are locked out.
  std::vector<double> phase2(n, 0.0);
  for (int j = 0; j < p.num_vars; ++j) phase2[j] = p.objective[j];
  tab.load_objective(phase2, tab.art_begin());
  const int res = run_phase();
  sol.iterations = iters;
  if (res == 3 || res == 2) {
    sol.status = res == 3 ? Status::IterLimit : Status::Unbounded;
    // A seeded certified chain that could not even finish may have failed
    // BECAUSE of the seed — cold could still succeed.
    if (warmed && opt.warm->certify) opt.warm->diverged = true;
    return sol;
  }

  sol.status = Status::Optimal;
  if (opt.warm != nullptr) {
    // Every handle-attached solve reports whether its optimum certifies
    // unique, so the caller can persist the verdict next to the basis and
    // gate future seeded attempts on it (see WarmStart::last_unique).
    opt.warm->last_unique =
        tab.min_nonbasic_reduced_cost() > kUniqueCertTol;
    // Certified warm chains must prove the optimum unique before the
    // seeded result may stand in for the cold trajectory's.
    if (warmed && opt.warm->certify && !opt.warm->last_unique) {
      opt.warm->diverged = true;
    }
  }
  sol.x = tab.extract(p.num_vars);
  // The tableau is done with its basis: steal it instead of copying (the
  // vector is m ints — the copy was measurable on LP2 block chains), and
  // pay a copy into the warm handle only when a caller actually chained one.
  sol.basis = std::move(tab.mutable_basis());
  if (opt.warm != nullptr) opt.warm->basis = sol.basis;
  double obj = 0.0;
  for (int j = 0; j < p.num_vars; ++j) obj += p.objective[j] * sol.x[j];
  sol.objective = obj;

  if (opt.verify) {
    // Guard against numerical drift: the point must nearly satisfy the rows.
    double scale = 1.0;
    for (const auto& row : p.rows) scale = std::max(scale, std::fabs(row.rhs));
    const double viol = max_violation(p, sol.x);
    SUU_CHECK_MSG(viol <= 1e-5 * scale,
                  "simplex result violates constraints by " << viol);
  }
  return sol;
}

}  // namespace

Solution solve_simplex(const Problem& p, const SimplexOptions& opt) {
  Solution sol = solve_simplex_impl(p, opt);
  // Per-solve telemetry flush: a handful of relaxed adds after a solve
  // that took at least tens of microseconds — nothing per pivot, so the
  // perf-smoke gate on BM_SimplexLp1/1024 is unaffected.
  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::global();
    static obs::Counter& solves = reg.counter("suu_lp_solves_total");
    static obs::Counter& pivots = reg.counter("suu_lp_pivots_total");
    static obs::Counter& p1_pivots = reg.counter("suu_lp_phase1_pivots_total");
    static obs::Counter& refactors =
        reg.counter("suu_lp_refactorizations_total");
    static obs::Counter& ftran_calls = reg.counter("suu_lp_ftran_calls_total");
    static obs::Counter& ftran_nnz = reg.counter("suu_lp_ftran_nnz_total");
    solves.add();
    pivots.add(static_cast<std::uint64_t>(sol.iterations));
    p1_pivots.add(static_cast<std::uint64_t>(sol.phase1_iterations));
    refactors.add(static_cast<std::uint64_t>(sol.refactorizations));
    ftran_calls.add(static_cast<std::uint64_t>(sol.ftran_calls));
    ftran_nnz.add(static_cast<std::uint64_t>(sol.ftran_nnz));
  }
  return sol;
}

}  // namespace suu::lp
