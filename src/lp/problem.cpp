#include "lp/problem.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace suu::lp {

int Problem::add_var(double obj_coeff) {
  objective.push_back(obj_coeff);
  return num_vars++;
}

void Problem::add_row(Row row) {
  for (const auto& [v, c] : row.terms) {
    SUU_CHECK_MSG(v >= 0 && v < num_vars, "row references unknown variable");
    (void)c;
  }
  rows.push_back(std::move(row));
}

std::string to_string(Status s) {
  switch (s) {
    case Status::Optimal:
      return "optimal";
    case Status::Infeasible:
      return "infeasible";
    case Status::Unbounded:
      return "unbounded";
    case Status::IterLimit:
      return "iteration-limit";
  }
  return "?";
}

std::string to_string(SimplexEngine e) {
  switch (e) {
    case SimplexEngine::Auto:
      return "auto";
    case SimplexEngine::Tableau:
      return "tableau";
    case SimplexEngine::Revised:
      return "revised";
  }
  return "?";
}

std::string to_string(PricingRule r) {
  switch (r) {
    case PricingRule::Auto:
      return "auto";
    case PricingRule::Dantzig:
      return "dantzig";
    case PricingRule::Devex:
      return "devex";
    case PricingRule::Steepest:
      return "steepest";
  }
  return "?";
}

double max_violation(const Problem& p, const std::vector<double>& x) {
  SUU_CHECK(static_cast<int>(x.size()) == p.num_vars);
  double worst = 0.0;
  for (double xi : x) worst = std::max(worst, -xi);
  for (const auto& row : p.rows) {
    double lhs = 0.0;
    for (const auto& [v, c] : row.terms) lhs += c * x[v];
    switch (row.rel) {
      case Rel::Le:
        worst = std::max(worst, lhs - row.rhs);
        break;
      case Rel::Ge:
        worst = std::max(worst, row.rhs - lhs);
        break;
      case Rel::Eq:
        worst = std::max(worst, std::fabs(lhs - row.rhs));
        break;
    }
  }
  return worst;
}

}  // namespace suu::lp
