#include "lp/basis.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "lp/simplex.hpp"
#include "util/check.hpp"

namespace suu::lp {

int refactor_interval() {
  static const int cached = [] {
    const char* env = std::getenv("SUU_LP_REFACTOR_INTERVAL");
    if (env == nullptr || *env == '\0') return kDefaultRefactorInterval;
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end == env) return kDefaultRefactorInterval;
    return static_cast<int>(std::clamp(v, 1L, 100000L));
  }();
  return cached;
}

StandardForm build_standard_form(const Problem& p) {
  StandardForm sf;
  const int m = static_cast<int>(p.rows.size());
  sf.m = m;
  sf.n_orig = p.num_vars;

  // Normalize rows so rhs >= 0, accumulating duplicate terms in term order
  // (bit-identical to the tableau's historical dense accumulation).
  std::vector<std::vector<std::pair<int, double>>> row_terms(
      static_cast<std::size_t>(m));
  std::vector<Rel> rel(static_cast<std::size_t>(m));
  sf.rhs.assign(static_cast<std::size_t>(m), 0.0);
  std::vector<double> scratch(static_cast<std::size_t>(sf.n_orig), 0.0);
  std::vector<char> in_touch(static_cast<std::size_t>(sf.n_orig), 0);
  std::vector<int> touched;
  for (int r = 0; r < m; ++r) {
    const Row& row = p.rows[static_cast<std::size_t>(r)];
    touched.clear();
    for (const auto& [v, c] : row.terms) {
      const auto vi = static_cast<std::size_t>(v);
      if (!in_touch[vi]) {
        in_touch[vi] = 1;
        touched.push_back(v);
      }
      scratch[vi] += c;
    }
    Rel rr = row.rel;
    double rhs = row.rhs;
    if (rhs < 0) {
      for (const int v : touched) {
        scratch[static_cast<std::size_t>(v)] =
            -scratch[static_cast<std::size_t>(v)];
      }
      rhs = -rhs;
      if (rr == Rel::Le) {
        rr = Rel::Ge;
      } else if (rr == Rel::Ge) {
        rr = Rel::Le;
      }
    }
    std::sort(touched.begin(), touched.end());
    auto& out = row_terms[static_cast<std::size_t>(r)];
    out.reserve(touched.size());
    for (const int v : touched) {
      const auto vi = static_cast<std::size_t>(v);
      if (scratch[vi] != 0.0) out.emplace_back(v, scratch[vi]);
      scratch[vi] = 0.0;
      in_touch[vi] = 0;
    }
    rel[static_cast<std::size_t>(r)] = rr;
    sf.rhs[static_cast<std::size_t>(r)] = rhs;
  }

  int n_slack = 0, n_art = 0;
  for (const Rel rr : rel) {
    if (rr != Rel::Eq) ++n_slack;
    if (rr != Rel::Le) ++n_art;
  }
  sf.n_total = sf.n_orig + n_slack + n_art;
  sf.art_begin = sf.n_orig + n_slack;

  // CSC assembly: count, prefix-sum, fill by ascending row so rows within a
  // column come out sorted.
  std::vector<int> cnt(static_cast<std::size_t>(sf.n_total), 0);
  for (const auto& terms : row_terms) {
    for (const auto& [v, val] : terms) ++cnt[static_cast<std::size_t>(v)];
  }
  {
    int slack_next = sf.n_orig;
    int art_next = sf.art_begin;
    for (const Rel rr : rel) {
      if (rr != Rel::Eq) ++cnt[static_cast<std::size_t>(slack_next++)];
      if (rr != Rel::Le) ++cnt[static_cast<std::size_t>(art_next++)];
    }
  }
  sf.col_ptr.assign(static_cast<std::size_t>(sf.n_total) + 1, 0);
  for (int j = 0; j < sf.n_total; ++j) {
    sf.col_ptr[static_cast<std::size_t>(j) + 1] =
        sf.col_ptr[static_cast<std::size_t>(j)] +
        cnt[static_cast<std::size_t>(j)];
  }
  const int nnz = sf.col_ptr.back();
  sf.col_row.assign(static_cast<std::size_t>(nnz), 0);
  sf.col_val.assign(static_cast<std::size_t>(nnz), 0.0);
  std::vector<int> next(sf.col_ptr.begin(), sf.col_ptr.end() - 1);
  sf.init_basis.assign(static_cast<std::size_t>(m), -1);
  int slack_next = sf.n_orig;
  int art_next = sf.art_begin;
  auto put = [&](int col, int r, double v) {
    const int k = next[static_cast<std::size_t>(col)]++;
    sf.col_row[static_cast<std::size_t>(k)] = r;
    sf.col_val[static_cast<std::size_t>(k)] = v;
  };
  for (int r = 0; r < m; ++r) {
    for (const auto& [v, val] : row_terms[static_cast<std::size_t>(r)]) {
      put(v, r, val);
    }
    switch (rel[static_cast<std::size_t>(r)]) {
      case Rel::Le:
        put(slack_next, r, 1.0);
        sf.init_basis[static_cast<std::size_t>(r)] = slack_next++;
        break;
      case Rel::Ge:
        put(slack_next++, r, -1.0);
        put(art_next, r, 1.0);
        sf.init_basis[static_cast<std::size_t>(r)] = art_next++;
        break;
      case Rel::Eq:
        put(art_next, r, 1.0);
        sf.init_basis[static_cast<std::size_t>(r)] = art_next++;
        break;
    }
  }
  return sf;
}

// ---------------------------------------------------------- BasisFactorization

BasisFactorization::BasisFactorization(const StandardForm& sf, double piv_tol)
    : sf_(&sf), piv_tol_(piv_tol) {
  row_to_col_.assign(static_cast<std::size_t>(sf.m), -1);
}

void BasisFactorization::append(int p, double piv, const std::vector<double>& w,
                                const std::vector<int>& support) {
  pivot_row_.push_back(p);
  inv_piv_.push_back(1.0 / piv);
  for (const int r : support) {
    const double v = w[static_cast<std::size_t>(r)];
    if (r == p || v == 0.0) continue;
    off_row_.push_back(r);
    off_val_.push_back(v);
  }
  ptr_.push_back(static_cast<int>(off_row_.size()));
}

bool BasisFactorization::refactorize(const std::vector<int>& cols) {
  const int m = sf_->m;
  pivot_row_.clear();
  inv_piv_.clear();
  ptr_.assign(1, 0);
  off_row_.clear();
  off_val_.clear();
  update_etas_ = 0;
  row_to_col_.assign(static_cast<std::size_t>(m), -1);

  // Sparsest-first column order approximates the triangularization a
  // Markowitz ordering would find: for LP1/LP2 bases nearly every column is
  // a singleton or doubleton, so the eta file stays near-permutation.
  std::vector<int> order(cols);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const int na = sf_->col_nnz(a), nb = sf_->col_nnz(b);
    return na != nb ? na < nb : a < b;
  });

  std::vector<char> claimed(static_cast<std::size_t>(m), 0);
  std::vector<double> w(static_cast<std::size_t>(m), 0.0);
  std::vector<int> touched;
  std::vector<char> in_touch(static_cast<std::size_t>(m), 0);
  auto touch = [&](int r) {
    if (!in_touch[static_cast<std::size_t>(r)]) {
      in_touch[static_cast<std::size_t>(r)] = 1;
      touched.push_back(r);
    }
  };

  for (const int c : order) {
    touched.clear();
    for (int k = sf_->col_ptr[static_cast<std::size_t>(c)];
         k < sf_->col_ptr[static_cast<std::size_t>(c) + 1]; ++k) {
      const int r = sf_->col_row[static_cast<std::size_t>(k)];
      w[static_cast<std::size_t>(r)] = sf_->col_val[static_cast<std::size_t>(k)];
      touch(r);
    }
    // Apply the file built so far (tracking fill-in).
    for (std::size_t e = 0; e < pivot_row_.size(); ++e) {
      const int p = pivot_row_[e];
      const double vp = w[static_cast<std::size_t>(p)];
      if (vp == 0.0) continue;
      const double t = vp * inv_piv_[e];
      w[static_cast<std::size_t>(p)] = t;
      for (int k = ptr_[e]; k < ptr_[e + 1]; ++k) {
        const int r = off_row_[static_cast<std::size_t>(k)];
        touch(r);
        w[static_cast<std::size_t>(r)] -= off_val_[static_cast<std::size_t>(k)] * t;
      }
    }
    // Partial pivoting restricted to unclaimed rows; ties break to the
    // lowest row index for determinism.
    int p = -1;
    double best = piv_tol_;
    for (const int r : touched) {
      if (claimed[static_cast<std::size_t>(r)]) continue;
      const double a = std::fabs(w[static_cast<std::size_t>(r)]);
      if (a > best || (a == best && p >= 0 && r < p)) {
        best = a;
        p = r;
      }
    }
    if (p < 0) {
      for (const int r : touched) {
        w[static_cast<std::size_t>(r)] = 0.0;
        in_touch[static_cast<std::size_t>(r)] = 0;
      }
      return false;  // numerically singular
    }
    // Identity transforms (unit pivot, no off-pivot fill) carry no
    // information — the initial slack/artificial basis is all such columns.
    bool has_off = false;
    for (const int r : touched) {
      if (r != p && w[static_cast<std::size_t>(r)] != 0.0) {
        has_off = true;
        break;
      }
    }
    if (has_off || w[static_cast<std::size_t>(p)] != 1.0) {
      append(p, w[static_cast<std::size_t>(p)], w, touched);
    }
    claimed[static_cast<std::size_t>(p)] = 1;
    row_to_col_[static_cast<std::size_t>(p)] = c;
    for (const int r : touched) {
      w[static_cast<std::size_t>(r)] = 0.0;
      in_touch[static_cast<std::size_t>(r)] = 0;
    }
  }
  return true;
}

void BasisFactorization::ftran(std::vector<double>& v) const {
  for (std::size_t e = 0; e < pivot_row_.size(); ++e) {
    const int p = pivot_row_[e];
    const double vp = v[static_cast<std::size_t>(p)];
    if (vp == 0.0) continue;
    const double t = vp * inv_piv_[e];
    v[static_cast<std::size_t>(p)] = t;
    for (int k = ptr_[e]; k < ptr_[e + 1]; ++k) {
      v[static_cast<std::size_t>(off_row_[static_cast<std::size_t>(k)])] -=
          off_val_[static_cast<std::size_t>(k)] * t;
    }
  }
}

void BasisFactorization::btran(std::vector<double>& v) const {
  for (std::size_t e = pivot_row_.size(); e-- > 0;) {
    const int p = pivot_row_[e];
    double s = v[static_cast<std::size_t>(p)];
    for (int k = ptr_[e]; k < ptr_[e + 1]; ++k) {
      s -= off_val_[static_cast<std::size_t>(k)] *
           v[static_cast<std::size_t>(off_row_[static_cast<std::size_t>(k)])];
    }
    v[static_cast<std::size_t>(p)] = s * inv_piv_[e];
  }
}

void BasisFactorization::push_eta(int p, const std::vector<double>& w,
                                  const std::vector<int>& support) {
  // No identity skip here: update etas come from genuine pivots, whose
  // pivot element already passed the ratio test's piv_tol gate.
  append(p, w[static_cast<std::size_t>(p)], w, support);
  ++update_etas_;
}

// ------------------------------------------------------------ RevisedSimplex

namespace {

// The revised counterpart of simplex.cpp's Tableau: same public gestures
// (load_objective / iterate / expel_artificials / extract), but every
// quantity a pivot needs is recomputed through the factorization instead of
// maintained in a dense arena. Reduced costs are exact each iteration (they
// are recomputed from BTRAN, never incrementally drifted), so the candidate
// list here is a partial-pricing shortlist: columns improving at the last
// full scan, re-priced each iteration, with a full rescan proving optimality
// once the list runs dry.
class RevisedSimplex {
 public:
  RevisedSimplex(const StandardForm& sf, double tol)
      : sf_(sf),
        tol_(tol),
        piv_tol_(std::max(tol, kPivotTol)),
        fact_(sf, std::max(tol, kPivotTol)) {
    basic_pos_.assign(static_cast<std::size_t>(sf_.n_total), -1);
    w_.assign(static_cast<std::size_t>(sf_.m), 0.0);
    y_.assign(static_cast<std::size_t>(sf_.m), 0.0);
    support_.reserve(static_cast<std::size_t>(sf_.m));
  }

  /// Factorize `cols` as the basis and recompute x_B. False when singular.
  bool install(const std::vector<int>& cols) {
    if (!fact_.refactorize(cols)) return false;
    basis_ = fact_.row_to_col();
    std::fill(basic_pos_.begin(), basic_pos_.end(), -1);
    for (int r = 0; r < sf_.m; ++r) {
      basic_pos_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)])] =
          r;
    }
    compute_xb();
    return true;
  }

  /// Accept a saved basis as the factorization seed: one factorization and
  /// one FTRAN instead of the tableau's m full-row Gaussian pivots. False
  /// when the seed does not fit (dimensions, singular, infeasible vertex);
  /// the engine is left uninstalled and the caller starts cold.
  bool try_warm_start(const std::vector<int>& warm_basis) {
    if (static_cast<int>(warm_basis.size()) != sf_.m) return false;
    std::vector<char> used(static_cast<std::size_t>(sf_.n_total), 0);
    for (const int c : warm_basis) {
      if (c < 0 || c >= sf_.art_begin || used[static_cast<std::size_t>(c)]) {
        return false;
      }
      used[static_cast<std::size_t>(c)] = 1;
    }
    if (!install(warm_basis)) return false;
    for (const double v : xb_) {
      if (v < 0) return false;  // vertex infeasible for this rhs
    }
    return true;
  }

  void load_objective(const std::vector<double>& c, int allow_limit) {
    cost_.assign(static_cast<std::size_t>(sf_.n_total), 0.0);
    const int lim = std::min<int>(sf_.n_total, static_cast<int>(c.size()));
    for (int j = 0; j < lim; ++j) cost_[static_cast<std::size_t>(j)] = c[j];
    allow_limit_ = allow_limit;
    obj_ = basic_objective();
    compute_y();
    rebuild_candidates();
  }

  double objective() const { return obj_; }

  // One revised iteration. 0 = optimal, 1 = pivoted, 2 = unbounded,
  // -1 = numerical trouble (refactorization of the current basis failed).
  int iterate(bool bland) {
    compute_y();
    int enter = -1;
    double d_enter = 0.0;
    if (bland) {
      for (int j = 0; j < allow_limit_; ++j) {
        if (basic_pos_[static_cast<std::size_t>(j)] >= 0) continue;
        const double d = reduced_cost(j);
        if (d < -tol_) {
          enter = j;
          d_enter = d;
          break;
        }
      }
    } else {
      enter = price_candidates(&d_enter);
      if (enter < 0) {
        rebuild_candidates();
        enter = price_candidates(&d_enter);
      }
    }
    if (enter < 0) return 0;

    // FTRAN the entering column; the support scan doubles as the ratio test
    // (ascending row order keeps degenerate ties deterministic).
    load_column(enter);
    fact_.ftran(w_);
    support_.clear();
    int leave = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int r = 0; r < sf_.m; ++r) {
      const double a = w_[static_cast<std::size_t>(r)];
      if (a == 0.0) continue;
      support_.push_back(r);
      if (a > piv_tol_) {
        const double ratio = xb_[static_cast<std::size_t>(r)] / a;
        if (ratio < best_ratio - tol_ ||
            (ratio < best_ratio + tol_ &&
             (leave < 0 || basis_[static_cast<std::size_t>(r)] <
                               basis_[static_cast<std::size_t>(leave)]))) {
          best_ratio = ratio;
          leave = r;
        }
      }
    }
    if (leave < 0) {
      clear_w();
      return 2;
    }
    const int ret = pivot(leave, enter, d_enter) ? 1 : -1;
    return ret;
  }

  // After phase 1: drive basic artificials out where a real column can take
  // their row; rows with no acceptable pivot are redundant and keep their
  // artificial basic at ~0 (phase 2 locks artificials out of pricing, so
  // they can never rise again).
  bool expel_artificials() {
    const double expel_tol = std::max(piv_tol_, tol_ * 10);
    for (int r = 0; r < sf_.m; ++r) {
      if (basis_[static_cast<std::size_t>(r)] < sf_.art_begin) continue;
      // Row r of B^{-1}A = (B^{-T} e_r)^T A, one sparse dot per column.
      std::fill(y_.begin(), y_.end(), 0.0);
      y_[static_cast<std::size_t>(r)] = 1.0;
      fact_.btran(y_);
      int enter = -1;
      for (int j = 0; j < sf_.art_begin; ++j) {
        if (basic_pos_[static_cast<std::size_t>(j)] >= 0) continue;
        if (std::fabs(reduced_dot(j)) > expel_tol) {
          enter = j;
          break;
        }
      }
      if (enter < 0) continue;
      load_column(enter);
      fact_.ftran(w_);
      support_.clear();
      for (int rr = 0; rr < sf_.m; ++rr) {
        if (w_[static_cast<std::size_t>(rr)] != 0.0) support_.push_back(rr);
      }
      if (std::fabs(w_[static_cast<std::size_t>(r)]) <= piv_tol_) {
        // BTRAN said the entry is usable but FTRAN disagrees: conditioning
        // is suspect, leave the artificial in place rather than divide.
        clear_w();
        continue;
      }
      if (!pivot(r, enter, 0.0)) return false;
    }
    return true;
  }

  std::vector<double> extract(int n_vars) const {
    std::vector<double> x(static_cast<std::size_t>(n_vars), 0.0);
    for (int r = 0; r < sf_.m; ++r) {
      const int b = basis_[static_cast<std::size_t>(r)];
      if (b < n_vars) {
        x[static_cast<std::size_t>(b)] =
            std::max(0.0, xb_[static_cast<std::size_t>(r)]);
      }
    }
    return x;
  }

  std::vector<int>& mutable_basis() { return basis_; }
  const std::vector<int>& basis() const { return basis_; }

 private:
  void compute_xb() {
    xb_ = sf_.rhs;
    fact_.ftran(xb_);
    for (double& v : xb_) {
      if (v < 0 && v > -tol_) v = 0.0;
    }
  }

  double basic_objective() const {
    double obj = 0.0;
    for (int r = 0; r < sf_.m; ++r) {
      obj += cost_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)])] *
             xb_[static_cast<std::size_t>(r)];
    }
    return obj;
  }

  void compute_y() {
    for (int r = 0; r < sf_.m; ++r) {
      y_[static_cast<std::size_t>(r)] =
          cost_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)])];
    }
    fact_.btran(y_);
  }

  // y_ · a_j over column j's sparse entries.
  double reduced_dot(int j) const {
    double s = 0.0;
    for (int k = sf_.col_ptr[static_cast<std::size_t>(j)];
         k < sf_.col_ptr[static_cast<std::size_t>(j) + 1]; ++k) {
      s += y_[static_cast<std::size_t>(sf_.col_row[static_cast<std::size_t>(k)])] *
           sf_.col_val[static_cast<std::size_t>(k)];
    }
    return s;
  }

  double reduced_cost(int j) const {
    return cost_[static_cast<std::size_t>(j)] - reduced_dot(j);
  }

  void load_column(int j) {
    for (int k = sf_.col_ptr[static_cast<std::size_t>(j)];
         k < sf_.col_ptr[static_cast<std::size_t>(j) + 1]; ++k) {
      w_[static_cast<std::size_t>(sf_.col_row[static_cast<std::size_t>(k)])] =
          sf_.col_val[static_cast<std::size_t>(k)];
    }
  }

  void clear_w() {
    std::fill(w_.begin(), w_.end(), 0.0);
  }

  void rebuild_candidates() {
    cand_.clear();
    in_cand_.assign(static_cast<std::size_t>(sf_.n_total), 0);
    for (int j = 0; j < allow_limit_; ++j) {
      if (basic_pos_[static_cast<std::size_t>(j)] >= 0) continue;
      if (reduced_cost(j) < -tol_) {
        cand_.push_back(j);
        in_cand_[static_cast<std::size_t>(j)] = 1;
      }
    }
  }

  // Lexicographic (reduced cost, index) minimum over the shortlist,
  // re-pricing each member exactly and compacting out the stale ones.
  int price_candidates(double* d_enter) {
    int enter = -1;
    double best = 0.0;
    std::size_t w = 0;
    for (std::size_t k = 0; k < cand_.size(); ++k) {
      const int j = cand_[k];
      if (basic_pos_[static_cast<std::size_t>(j)] >= 0) {
        in_cand_[static_cast<std::size_t>(j)] = 0;
        continue;
      }
      const double d = reduced_cost(j);
      if (!(d < -tol_)) {
        in_cand_[static_cast<std::size_t>(j)] = 0;
        continue;
      }
      cand_[w++] = j;
      if (enter < 0 || d < best || (d == best && j < enter)) {
        best = d;
        enter = j;
      }
    }
    cand_.resize(w);
    *d_enter = best;
    return enter;
  }

  // Commit the pivot: update x_B, swap the basis, append the update eta and
  // refactorize on schedule. False = the scheduled refactorization found the
  // basis numerically singular (caller falls back to the tableau engine).
  bool pivot(int leave, int enter, double d_enter) {
    const double piv = w_[static_cast<std::size_t>(leave)];
    const double theta = xb_[static_cast<std::size_t>(leave)] / piv;
    for (const int r : support_) {
      if (r == leave) continue;
      double& v = xb_[static_cast<std::size_t>(r)];
      v -= theta * w_[static_cast<std::size_t>(r)];
      if (v < 0 && v > -tol_) v = 0.0;
    }
    xb_[static_cast<std::size_t>(leave)] = theta;
    obj_ += d_enter * theta;
    fact_.push_eta(leave, w_, support_);
    basic_pos_[static_cast<std::size_t>(
        basis_[static_cast<std::size_t>(leave)])] = -1;
    basis_[static_cast<std::size_t>(leave)] = enter;
    basic_pos_[static_cast<std::size_t>(enter)] = leave;
    clear_w();
    if (fact_.etas_since_refactor() >= refactor_interval()) {
      if (!install(basis_)) return false;
      obj_ = basic_objective();  // squash incremental drift
    }
    return true;
  }

  const StandardForm& sf_;
  double tol_;
  double piv_tol_;
  BasisFactorization fact_;
  std::vector<int> basis_;       // basic column per row
  std::vector<int> basic_pos_;   // column -> row, -1 when nonbasic
  std::vector<double> xb_;       // basic values per row (B^{-1} b)
  std::vector<double> cost_;     // active objective, dense over columns
  double obj_ = 0.0;
  int allow_limit_ = 0;
  std::vector<int> cand_;        // partial-pricing shortlist
  std::vector<char> in_cand_;
  std::vector<double> w_;        // scratch: FTRAN'd entering column
  std::vector<double> y_;        // scratch: BTRAN'd pricing row
  std::vector<int> support_;     // scratch: nonzero rows of w_
};

}  // namespace

Solution solve_revised(const Problem& p, const StandardForm& sf,
                       const SimplexOptions& opt, bool* numerical_trouble) {
  *numerical_trouble = false;
  Solution sol;
  RevisedSimplex rs(sf, opt.tol);
  const int m = sf.m;
  const int n = sf.n_total;
  const int iter_cap = detail::simplex_iter_cap(m, n, opt.max_iters);
  const int stall_cap = detail::simplex_stall_cap(m, n);
  int iters = 0;
  bool trouble = false;

  auto run_phase = [&]() -> int {
    // The shared anti-cycling driver; -1 (numerical trouble from a failed
    // refactorization) passes through like any non-pivot result.
    return detail::run_simplex_phase(rs, opt.tol, iter_cap, stall_cap, iters);
  };

  bool warmed = false;
  if (opt.warm != nullptr && !opt.warm->basis.empty()) {
    warmed = rs.try_warm_start(opt.warm->basis);
  }
  if (!warmed && !rs.install(sf.init_basis)) {
    // The initial slack/artificial basis is the identity; failing to
    // factorize it means something is deeply wrong — punt to the tableau.
    *numerical_trouble = true;
    return sol;
  }

  // Warm accounting mirrors the tableau path, deferred so a later fallback
  // to the tableau engine (which re-runs its own attempt) cannot
  // double-count this one.
  auto finish = [&](Solution s) {
    if (trouble) {
      *numerical_trouble = true;
    } else {
      s.engine = SimplexEngine::Revised;
      if (opt.warm != nullptr) {
        if (warmed) {
          ++opt.warm->hits;
        } else {
          ++opt.warm->misses;
        }
      }
    }
    return s;
  };

  // ---- Phase 1 (skipped on a warm hit): minimize the sum of artificials.
  if (!warmed && sf.art_begin < n) {
    std::vector<double> phase1(static_cast<std::size_t>(n), 0.0);
    for (int j = sf.art_begin; j < n; ++j) {
      phase1[static_cast<std::size_t>(j)] = 1.0;
    }
    rs.load_objective(phase1, n);
    const int res = run_phase();
    if (res == -1 || res == 2) {
      // Phase 1 is bounded below by zero; "unbounded" here can only be a
      // numerically corrupted factorization.
      trouble = true;
      return finish(sol);
    }
    if (res == 3) {
      sol.status = Status::IterLimit;
      sol.iterations = iters;
      sol.phase1_iterations = iters;
      return finish(sol);
    }
    const double p1 = rs.objective();
    const double feas_tol = opt.tol * (1.0 + std::fabs(p1)) * 100;
    if (p1 > feas_tol + 1e-7) {
      sol.status = Status::Infeasible;
      sol.iterations = iters;
      sol.phase1_iterations = iters;
      return finish(sol);
    }
    if (!rs.expel_artificials()) {
      trouble = true;
      return finish(sol);
    }
  }
  sol.phase1_iterations = iters;

  // ---- Phase 2: original objective, artificials locked out.
  std::vector<double> phase2(static_cast<std::size_t>(n), 0.0);
  for (int j = 0; j < p.num_vars; ++j) {
    phase2[static_cast<std::size_t>(j)] = p.objective[static_cast<std::size_t>(j)];
  }
  rs.load_objective(phase2, sf.art_begin);
  const int res = run_phase();
  sol.iterations = iters;
  if (res == -1) {
    trouble = true;
    return finish(sol);
  }
  if (res == 3) {
    sol.status = Status::IterLimit;
    return finish(sol);
  }
  if (res == 2) {
    sol.status = Status::Unbounded;
    return finish(sol);
  }

  sol.status = Status::Optimal;
  sol.x = rs.extract(p.num_vars);
  sol.basis = std::move(rs.mutable_basis());
  double obj = 0.0;
  for (int j = 0; j < p.num_vars; ++j) {
    obj += p.objective[static_cast<std::size_t>(j)] *
           sol.x[static_cast<std::size_t>(j)];
  }
  sol.objective = obj;

  if (opt.verify) {
    double scale = 1.0;
    for (const auto& row : p.rows) scale = std::max(scale, std::fabs(row.rhs));
    if (max_violation(p, sol.x) > 1e-5 * scale) {
      trouble = true;  // let the tableau engine arbitrate
      return finish(Solution{});
    }
  }
  if (opt.warm != nullptr) opt.warm->basis = sol.basis;
  return finish(sol);
}

}  // namespace suu::lp
