#include "lp/basis.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "lp/pricing.hpp"
#include "lp/simplex.hpp"
#include "util/check.hpp"
#include "util/simd.hpp"

namespace suu::lp {

int parse_refactor_interval(const char* env) {
  if (env == nullptr || *env == '\0') return kDefaultRefactorInterval;
  if (*env < '0' || *env > '9') {
    // strtol would skip leading whitespace and accept a sign; "bare decimal
    // integer" means the first character is already a digit.
    return kDefaultRefactorInterval;
  }
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || errno == ERANGE) {
    return kDefaultRefactorInterval;  // garbage, trailing junk, or overflow
  }
  if (v < 1 || v > 100000) {
    return kDefaultRefactorInterval;  // zero/negative/absurd: reject, do not clamp
  }
  return static_cast<int>(v);
}

int refactor_interval() {
  static const int cached =
      parse_refactor_interval(std::getenv("SUU_LP_REFACTOR_INTERVAL"));
  return cached;
}

StandardForm build_standard_form(const Problem& p) {
  StandardForm sf;
  const int m = static_cast<int>(p.rows.size());
  sf.m = m;
  sf.n_orig = p.num_vars;

  // Normalize rows so rhs >= 0, accumulating duplicate terms in term order
  // (bit-identical to the tableau's historical dense accumulation).
  std::vector<std::vector<std::pair<int, double>>> row_terms(
      static_cast<std::size_t>(m));
  std::vector<Rel> rel(static_cast<std::size_t>(m));
  sf.rhs.assign(static_cast<std::size_t>(m), 0.0);
  std::vector<double> scratch(static_cast<std::size_t>(sf.n_orig), 0.0);
  std::vector<char> in_touch(static_cast<std::size_t>(sf.n_orig), 0);
  std::vector<int> touched;
  for (int r = 0; r < m; ++r) {
    const Row& row = p.rows[static_cast<std::size_t>(r)];
    touched.clear();
    for (const auto& [v, c] : row.terms) {
      const auto vi = static_cast<std::size_t>(v);
      if (!in_touch[vi]) {
        in_touch[vi] = 1;
        touched.push_back(v);
      }
      scratch[vi] += c;
    }
    Rel rr = row.rel;
    double rhs = row.rhs;
    if (rhs < 0) {
      for (const int v : touched) {
        scratch[static_cast<std::size_t>(v)] =
            -scratch[static_cast<std::size_t>(v)];
      }
      rhs = -rhs;
      if (rr == Rel::Le) {
        rr = Rel::Ge;
      } else if (rr == Rel::Ge) {
        rr = Rel::Le;
      }
    }
    std::sort(touched.begin(), touched.end());
    auto& out = row_terms[static_cast<std::size_t>(r)];
    out.reserve(touched.size());
    for (const int v : touched) {
      const auto vi = static_cast<std::size_t>(v);
      if (scratch[vi] != 0.0) out.emplace_back(v, scratch[vi]);
      scratch[vi] = 0.0;
      in_touch[vi] = 0;
    }
    rel[static_cast<std::size_t>(r)] = rr;
    sf.rhs[static_cast<std::size_t>(r)] = rhs;
  }

  int n_slack = 0, n_art = 0;
  for (const Rel rr : rel) {
    if (rr != Rel::Eq) ++n_slack;
    if (rr != Rel::Le) ++n_art;
  }
  sf.n_total = sf.n_orig + n_slack + n_art;
  sf.art_begin = sf.n_orig + n_slack;

  // CSC assembly: count, prefix-sum, fill by ascending row so rows within a
  // column come out sorted.
  std::vector<int> cnt(static_cast<std::size_t>(sf.n_total), 0);
  for (const auto& terms : row_terms) {
    for (const auto& [v, val] : terms) ++cnt[static_cast<std::size_t>(v)];
  }
  {
    int slack_next = sf.n_orig;
    int art_next = sf.art_begin;
    for (const Rel rr : rel) {
      if (rr != Rel::Eq) ++cnt[static_cast<std::size_t>(slack_next++)];
      if (rr != Rel::Le) ++cnt[static_cast<std::size_t>(art_next++)];
    }
  }
  sf.col_ptr.assign(static_cast<std::size_t>(sf.n_total) + 1, 0);
  for (int j = 0; j < sf.n_total; ++j) {
    sf.col_ptr[static_cast<std::size_t>(j) + 1] =
        sf.col_ptr[static_cast<std::size_t>(j)] +
        cnt[static_cast<std::size_t>(j)];
  }
  const int nnz = sf.col_ptr.back();
  sf.col_row.assign(static_cast<std::size_t>(nnz), 0);
  sf.col_val.assign(static_cast<std::size_t>(nnz), 0.0);
  std::vector<int> next(sf.col_ptr.begin(), sf.col_ptr.end() - 1);
  sf.init_basis.assign(static_cast<std::size_t>(m), -1);
  int slack_next = sf.n_orig;
  int art_next = sf.art_begin;
  auto put = [&](int col, int r, double v) {
    const int k = next[static_cast<std::size_t>(col)]++;
    sf.col_row[static_cast<std::size_t>(k)] = r;
    sf.col_val[static_cast<std::size_t>(k)] = v;
  };
  for (int r = 0; r < m; ++r) {
    for (const auto& [v, val] : row_terms[static_cast<std::size_t>(r)]) {
      put(v, r, val);
    }
    switch (rel[static_cast<std::size_t>(r)]) {
      case Rel::Le:
        put(slack_next, r, 1.0);
        sf.init_basis[static_cast<std::size_t>(r)] = slack_next++;
        break;
      case Rel::Ge:
        put(slack_next++, r, -1.0);
        put(art_next, r, 1.0);
        sf.init_basis[static_cast<std::size_t>(r)] = art_next++;
        break;
      case Rel::Eq:
        put(art_next, r, 1.0);
        sf.init_basis[static_cast<std::size_t>(r)] = art_next++;
        break;
    }
  }

  // CSR mirror of the CSC matrix (count / prefix-sum / fill). Scanning
  // columns in ascending order keeps each row's column list sorted.
  sf.row_ptr.assign(static_cast<std::size_t>(m) + 1, 0);
  for (const int r : sf.col_row) ++sf.row_ptr[static_cast<std::size_t>(r) + 1];
  for (int r = 0; r < m; ++r) {
    sf.row_ptr[static_cast<std::size_t>(r) + 1] +=
        sf.row_ptr[static_cast<std::size_t>(r)];
  }
  sf.row_col.assign(static_cast<std::size_t>(nnz), 0);
  sf.row_val.assign(static_cast<std::size_t>(nnz), 0.0);
  std::vector<int> row_next(sf.row_ptr.begin(), sf.row_ptr.end() - 1);
  for (int j = 0; j < sf.n_total; ++j) {
    for (int k = sf.col_ptr[static_cast<std::size_t>(j)];
         k < sf.col_ptr[static_cast<std::size_t>(j) + 1]; ++k) {
      const int r = sf.col_row[static_cast<std::size_t>(k)];
      const int at = row_next[static_cast<std::size_t>(r)]++;
      sf.row_col[static_cast<std::size_t>(at)] = j;
      sf.row_val[static_cast<std::size_t>(at)] =
          sf.col_val[static_cast<std::size_t>(k)];
    }
  }
  return sf;
}

// ---------------------------------------------------------- BasisFactorization

BasisFactorization::BasisFactorization(const StandardForm& sf, double piv_tol)
    : sf_(&sf), piv_tol_(piv_tol) {
  row_to_col_.assign(static_cast<std::size_t>(sf.m), -1);
  row_refs_.resize(static_cast<std::size_t>(sf.m));
}

void BasisFactorization::append(int p, double piv, const std::vector<double>& w,
                                const std::vector<int>& support) {
  const int e = static_cast<int>(pivot_row_.size());
  pivot_row_.push_back(p);
  inv_piv_.push_back(1.0 / piv);
  row_refs_[static_cast<std::size_t>(p)].push_back(e);
  for (const int r : support) {
    const double v = w[static_cast<std::size_t>(r)];
    if (r == p || v == 0.0) continue;
    off_row_.push_back(r);
    off_val_.push_back(v);
    row_refs_[static_cast<std::size_t>(r)].push_back(e);
  }
  ptr_.push_back(static_cast<int>(off_row_.size()));
}

bool BasisFactorization::refactorize(const std::vector<int>& cols) {
  const int m = sf_->m;
  pivot_row_.clear();
  inv_piv_.clear();
  ptr_.assign(1, 0);
  off_row_.clear();
  off_val_.clear();
  update_etas_ = 0;
  row_to_col_.assign(static_cast<std::size_t>(m), -1);
  for (auto& refs : row_refs_) refs.clear();

  // Sparsest-first column order approximates the triangularization a
  // Markowitz ordering would find: for LP1/LP2 bases nearly every column is
  // a singleton or doubleton, so the eta file stays near-permutation.
  std::vector<int> order(cols);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const int na = sf_->col_nnz(a), nb = sf_->col_nnz(b);
    return na != nb ? na < nb : a < b;
  });

  std::vector<char> claimed(static_cast<std::size_t>(m), 0);
  std::vector<double> w(static_cast<std::size_t>(m), 0.0);
  std::vector<int> touched;
  std::vector<char> in_touch(static_cast<std::size_t>(m), 0);
  auto touch = [&](int r) {
    if (!in_touch[static_cast<std::size_t>(r)]) {
      in_touch[static_cast<std::size_t>(r)] = 1;
      touched.push_back(r);
    }
  };

  for (const int c : order) {
    touched.clear();
    for (int k = sf_->col_ptr[static_cast<std::size_t>(c)];
         k < sf_->col_ptr[static_cast<std::size_t>(c) + 1]; ++k) {
      const int r = sf_->col_row[static_cast<std::size_t>(k)];
      w[static_cast<std::size_t>(r)] = sf_->col_val[static_cast<std::size_t>(k)];
      touch(r);
    }
    // Apply the file built so far (tracking fill-in).
    for (std::size_t e = 0; e < pivot_row_.size(); ++e) {
      const int p = pivot_row_[e];
      const double vp = w[static_cast<std::size_t>(p)];
      if (vp == 0.0) continue;
      const double t = vp * inv_piv_[e];
      w[static_cast<std::size_t>(p)] = t;
      for (int k = ptr_[e]; k < ptr_[e + 1]; ++k) {
        const int r = off_row_[static_cast<std::size_t>(k)];
        touch(r);
        w[static_cast<std::size_t>(r)] -= off_val_[static_cast<std::size_t>(k)] * t;
      }
    }
    // Partial pivoting restricted to unclaimed rows; ties break to the
    // lowest row index for determinism.
    int p = -1;
    double best = piv_tol_;
    for (const int r : touched) {
      if (claimed[static_cast<std::size_t>(r)]) continue;
      const double a = std::fabs(w[static_cast<std::size_t>(r)]);
      if (a > best || (a == best && p >= 0 && r < p)) {
        best = a;
        p = r;
      }
    }
    if (p < 0) {
      for (const int r : touched) {
        w[static_cast<std::size_t>(r)] = 0.0;
        in_touch[static_cast<std::size_t>(r)] = 0;
      }
      return false;  // numerically singular
    }
    // Identity transforms (unit pivot, no off-pivot fill) carry no
    // information — the initial slack/artificial basis is all such columns.
    bool has_off = false;
    for (const int r : touched) {
      if (r != p && w[static_cast<std::size_t>(r)] != 0.0) {
        has_off = true;
        break;
      }
    }
    if (has_off || w[static_cast<std::size_t>(p)] != 1.0) {
      append(p, w[static_cast<std::size_t>(p)], w, touched);
    }
    claimed[static_cast<std::size_t>(p)] = 1;
    row_to_col_[static_cast<std::size_t>(p)] = c;
    for (const int r : touched) {
      w[static_cast<std::size_t>(r)] = 0.0;
      in_touch[static_cast<std::size_t>(r)] = 0;
    }
  }
  return true;
}

void BasisFactorization::ftran(std::vector<double>& v) const {
  for (std::size_t e = 0; e < pivot_row_.size(); ++e) {
    const int p = pivot_row_[e];
    const double vp = v[static_cast<std::size_t>(p)];
    if (vp == 0.0) continue;
    const double t = vp * inv_piv_[e];
    v[static_cast<std::size_t>(p)] = t;
    util::simd::gather_axpy_minus(v.data(), off_row_.data() + ptr_[e],
                                  off_val_.data() + ptr_[e],
                                  ptr_[e + 1] - ptr_[e], t);
  }
}

void BasisFactorization::btran(std::vector<double>& v) const {
  for (std::size_t e = pivot_row_.size(); e-- > 0;) {
    const int p = pivot_row_[e];
    double s = v[static_cast<std::size_t>(p)];
    for (int k = ptr_[e]; k < ptr_[e + 1]; ++k) {
      s -= off_val_[static_cast<std::size_t>(k)] *
           v[static_cast<std::size_t>(off_row_[static_cast<std::size_t>(k)])];
    }
    v[static_cast<std::size_t>(p)] = s * inv_piv_[e];
  }
}

void BasisFactorization::finish_ftran_dense(ScatteredVec& v,
                                            std::size_t first_eta) const {
  for (std::size_t e = first_eta; e < pivot_row_.size(); ++e) {
    const int p = pivot_row_[e];
    const double vp = v.val[static_cast<std::size_t>(p)];
    if (vp == 0.0) continue;
    const double t = vp * inv_piv_[e];
    v.val[static_cast<std::size_t>(p)] = t;
    util::simd::gather_axpy_minus(v.val.data(), off_row_.data() + ptr_[e],
                                  off_val_.data() + ptr_[e],
                                  ptr_[e + 1] - ptr_[e], t);
  }
  v.dense = true;
}

void BasisFactorization::ftran(ScatteredVec& v) const {
  if (v.dense) {
    finish_ftran_dense(v, 0);
    return;
  }
  const int m = sf_->m;
  const int cap = m / kScatterDenseDen;
  if (static_cast<int>(v.idx.size()) > cap) {
    finish_ftran_dense(v, 0);
    return;
  }
  for (std::size_t e = 0; e < pivot_row_.size(); ++e) {
    const int p = pivot_row_[e];
    const double vp = v.val[static_cast<std::size_t>(p)];
    if (vp == 0.0) continue;
    const double t = vp * inv_piv_[e];
    v.val[static_cast<std::size_t>(p)] = t;
    for (int k = ptr_[e]; k < ptr_[e + 1]; ++k) {
      const int r = off_row_[static_cast<std::size_t>(k)];
      v.val[static_cast<std::size_t>(r)] -=
          off_val_[static_cast<std::size_t>(k)] * t;
      if (!v.mark[static_cast<std::size_t>(r)]) {
        v.mark[static_cast<std::size_t>(r)] = 1;
        v.idx.push_back(r);
      }
    }
    if (static_cast<int>(v.idx.size()) > cap) {
      // Filled in past the threshold: the dense kernel is cheaper for the
      // rest of the file (identical arithmetic either way).
      finish_ftran_dense(v, e + 1);
      return;
    }
  }
}

void BasisFactorization::btran(ScatteredVec& v) const {
  const int m = sf_->m;
  const int cap = m / kScatterDenseDen;
  const int ne = static_cast<int>(pivot_row_.size());
  if (v.dense || static_cast<int>(v.idx.size()) > cap) {
    btran(v.val);
    v.dense = true;
    return;
  }
  // Worklist of etas that can see a nonzero, processed in decreasing index
  // order (the only order BTRAN admits). An eta joins when some row it
  // references goes (or starts) nonzero at a step later than itself; once
  // queued it stays queued, so each eta is applied at most once.
  //
  // Volume guard: once more than eta_cap etas are queued the heap's log
  // factor plus its scattered access pattern cost more than simply
  // streaming the file, so the scan finishes densely. Heavily referenced
  // rows (LP1's machine-load rows back thousands of etas) trip this
  // immediately, which is exactly when dense is cheaper.
  heap_.clear();
  queued_.assign(static_cast<std::size_t>(ne), 0);
  const int eta_cap = ne / kScatterDenseDen;
  auto activate = [&](int r, int bound) {
    for (const int e : row_refs_[static_cast<std::size_t>(r)]) {
      if (e >= bound) break;  // refs are in increasing order
      if (!queued_[static_cast<std::size_t>(e)]) {
        queued_[static_cast<std::size_t>(e)] = 1;
        heap_.push_back(e);
        std::push_heap(heap_.begin(), heap_.end());
      }
    }
  };
  for (const int r : v.idx) activate(r, ne);
  if (static_cast<int>(heap_.size()) > eta_cap) {
    btran(v.val);
    v.dense = true;
    return;
  }
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end());
    const int e = heap_.back();
    heap_.pop_back();
    const int p = pivot_row_[static_cast<std::size_t>(e)];
    double s = v.val[static_cast<std::size_t>(p)];
    for (int k = ptr_[static_cast<std::size_t>(e)];
         k < ptr_[static_cast<std::size_t>(e) + 1]; ++k) {
      s -= off_val_[static_cast<std::size_t>(k)] *
           v.val[static_cast<std::size_t>(
               off_row_[static_cast<std::size_t>(k)])];
    }
    s *= inv_piv_[static_cast<std::size_t>(e)];
    v.val[static_cast<std::size_t>(p)] = s;
    if (!v.mark[static_cast<std::size_t>(p)]) {
      v.mark[static_cast<std::size_t>(p)] = 1;
      v.idx.push_back(p);
      activate(p, e);
      if (static_cast<int>(v.idx.size()) > cap ||
          static_cast<int>(heap_.size()) > eta_cap) {
        // Fill (or queued-eta volume) exceeded: finish the remaining
        // (earlier) etas densely. Etas still in the heap all have index < e
        // and are a subset of these.
        for (int e2 = e - 1; e2 >= 0; --e2) {
          const int p2 = pivot_row_[static_cast<std::size_t>(e2)];
          double s2 = v.val[static_cast<std::size_t>(p2)];
          for (int k = ptr_[static_cast<std::size_t>(e2)];
               k < ptr_[static_cast<std::size_t>(e2) + 1]; ++k) {
            s2 -= off_val_[static_cast<std::size_t>(k)] *
                  v.val[static_cast<std::size_t>(
                      off_row_[static_cast<std::size_t>(k)])];
          }
          v.val[static_cast<std::size_t>(p2)] =
              s2 * inv_piv_[static_cast<std::size_t>(e2)];
        }
        v.dense = true;
        return;
      }
    }
  }
}

void BasisFactorization::push_eta(int p, const std::vector<double>& w,
                                  const std::vector<int>& support) {
  // No identity skip here: update etas come from genuine pivots, whose
  // pivot element already passed the ratio test's piv_tol gate.
  append(p, w[static_cast<std::size_t>(p)], w, support);
  ++update_etas_;
}

// ------------------------------------------------------------ RevisedSimplex

namespace {

// The revised counterpart of simplex.cpp's Tableau: same public gestures
// (load_objective / iterate / expel_artificials / extract), but every
// quantity a pivot needs is recomputed through the factorization instead of
// maintained in a dense arena.
//
// Under Dantzig pricing, reduced costs are exact each iteration (recomputed
// from BTRAN, never incrementally drifted) and the candidate list is a
// partial-pricing shortlist re-priced per iteration — the historical
// behavior, preserved bit for bit. Under Devex/steepest pricing the engine
// switches to the textbook incremental scheme: reduced costs live in d_ and
// are updated per pivot from the pivot row alpha = rho^T A (one sparse
// BTRAN of e_leave plus a CSR sweep of rho's support), which also feeds the
// reference-weight updates. Incremental d_ can drift, so every claim that
// matters is re-derived exactly: the shortlist running dry triggers an
// exact recompute before optimality is declared, Bland iterations recompute
// exactly (keeping the anti-cycling termination argument), and each
// refactorization squashes d_ along with the objective.
class RevisedSimplex {
 public:
  RevisedSimplex(const StandardForm& sf, double tol, PricingRule rule)
      : sf_(sf),
        tol_(tol),
        piv_tol_(std::max(tol, kPivotTol)),
        rule_(rule),
        fact_(sf, std::max(tol, kPivotTol)) {
    basic_pos_.assign(static_cast<std::size_t>(sf_.n_total), -1);
    w_.resize(sf_.m);
    rho_.resize(sf_.m);
    tau_.resize(sf_.m);
    y_.assign(static_cast<std::size_t>(sf_.m), 0.0);
    support_.reserve(static_cast<std::size_t>(sf_.m));
    if (rule_ != PricingRule::Dantzig) {
      d_.assign(static_cast<std::size_t>(sf_.n_total), 0.0);
      alpha_.assign(static_cast<std::size_t>(sf_.n_total), 0.0);
      alpha_mark_.assign(static_cast<std::size_t>(sf_.n_total), 0);
      beta_.assign(static_cast<std::size_t>(sf_.n_total), 0.0);
    }
  }

  /// Factorize `cols` as the basis and recompute x_B. False when singular.
  bool install(const std::vector<int>& cols) {
    if (!fact_.refactorize(cols)) return false;
    ++refactorizations_;
    basis_ = fact_.row_to_col();
    std::fill(basic_pos_.begin(), basic_pos_.end(), -1);
    for (int r = 0; r < sf_.m; ++r) {
      basic_pos_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)])] =
          r;
    }
    compute_xb();
    return true;
  }

  /// Accept a saved basis as the factorization seed: one factorization and
  /// one FTRAN instead of the tableau's m full-row Gaussian pivots. False
  /// when the seed does not fit (dimensions, singular, infeasible vertex);
  /// the engine is left uninstalled and the caller starts cold.
  bool try_warm_start(const std::vector<int>& warm_basis) {
    if (static_cast<int>(warm_basis.size()) != sf_.m) return false;
    std::vector<char> used(static_cast<std::size_t>(sf_.n_total), 0);
    for (const int c : warm_basis) {
      if (c < 0 || c >= sf_.art_begin || used[static_cast<std::size_t>(c)]) {
        return false;
      }
      used[static_cast<std::size_t>(c)] = 1;
    }
    if (!install(warm_basis)) return false;
    for (const double v : xb_) {
      if (v < 0) return false;  // vertex infeasible for this rhs
    }
    return true;
  }

  void load_objective(const std::vector<double>& c, int allow_limit) {
    cost_.assign(static_cast<std::size_t>(sf_.n_total), 0.0);
    const int lim = std::min<int>(sf_.n_total, static_cast<int>(c.size()));
    for (int j = 0; j < lim; ++j) cost_[static_cast<std::size_t>(j)] = c[j];
    allow_limit_ = allow_limit;
    obj_ = basic_objective();
    if (rule_ == PricingRule::Dantzig) {
      compute_y();
      rebuild_candidates();
    } else {
      // Each phase opens a fresh reference framework: all weights 1 over
      // the current nonbasic set.
      weights_.reset(sf_.n_total);
      refresh_reduced_costs();
    }
  }

  double objective() const { return obj_; }

  /// The objective recomputed from the basis, squashing incremental drift
  /// (the lazy shortlist updates make obj_ advisory between
  /// refactorizations). Feasibility verdicts must read this, never obj_.
  double exact_objective() {
    obj_ = basic_objective();
    return obj_;
  }

  // One revised iteration. 0 = optimal, 1 = pivoted, 2 = unbounded,
  // -1 = numerical trouble (refactorization of the current basis failed).
  int iterate(bool bland) {
    int enter = -1;
    double d_enter = 0.0;
    if (rule_ == PricingRule::Dantzig) {
      compute_y();
      if (bland) {
        for (int j = 0; j < allow_limit_; ++j) {
          if (basic_pos_[static_cast<std::size_t>(j)] >= 0) continue;
          const double d = reduced_cost(j);
          if (d < -tol_) {
            enter = j;
            d_enter = d;
            break;
          }
        }
      } else {
        enter = price_candidates(&d_enter);
        if (enter < 0) {
          rebuild_candidates();
          enter = price_candidates(&d_enter);
        }
      }
    } else if (bland) {
      // Bland's least-index rule must see exact reduced costs, or the
      // anti-cycling termination argument is void.
      refresh_reduced_costs();
      for (int j = 0; j < allow_limit_; ++j) {
        if (basic_pos_[static_cast<std::size_t>(j)] >= 0) continue;
        if (d_[static_cast<std::size_t>(j)] < -tol_) {
          enter = j;
          d_enter = d_[static_cast<std::size_t>(j)];
          break;
        }
      }
    } else {
      enter = price_weighted(&d_enter);
      if (enter < 0) {
        // Shortlist dry: recompute exactly before concluding anything.
        // Finding nothing after this rescan is the optimality certificate.
        refresh_reduced_costs();
        enter = price_weighted(&d_enter);
      }
    }
    if (enter < 0) return 0;

    // FTRAN the entering column. Ascending-row support keeps degenerate
    // ratio-test ties (and the eta layout downstream) deterministic and
    // identical to the historical dense scan.
    w_.clear();
    load_column(enter);
    fact_.ftran(w_);
    note_ftran();
    support_.clear();
    int leave = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    auto ratio_test = [&](int r, double a) {
      if (a == 0.0) return;
      support_.push_back(r);
      if (a > piv_tol_) {
        const double ratio = xb_[static_cast<std::size_t>(r)] / a;
        if (ratio < best_ratio - tol_ ||
            (ratio < best_ratio + tol_ &&
             (leave < 0 || basis_[static_cast<std::size_t>(r)] <
                               basis_[static_cast<std::size_t>(leave)]))) {
          best_ratio = ratio;
          leave = r;
        }
      }
    };
    if (w_.dense) {
      for (int r = 0; r < sf_.m; ++r) {
        ratio_test(r, w_.val[static_cast<std::size_t>(r)]);
      }
    } else {
      std::sort(w_.idx.begin(), w_.idx.end());
      for (const int r : w_.idx) {
        ratio_test(r, w_.val[static_cast<std::size_t>(r)]);
      }
    }
    if (leave < 0) {
      w_.clear();
      return 2;
    }
    if (rule_ != PricingRule::Dantzig) update_incremental(enter, leave, d_enter);
    const int ret = pivot(leave, enter, d_enter) ? 1 : -1;
    return ret;
  }

  // After phase 1: drive basic artificials out where a real column can take
  // their row; rows with no acceptable pivot are redundant and keep their
  // artificial basic at ~0 (phase 2 locks artificials out of pricing, so
  // they can never rise again).
  bool expel_artificials() {
    const double expel_tol = std::max(piv_tol_, tol_ * 10);
    for (int r = 0; r < sf_.m; ++r) {
      if (basis_[static_cast<std::size_t>(r)] < sf_.art_begin) continue;
      // Row r of B^{-1}A = (B^{-T} e_r)^T A, one sparse dot per column.
      rho_.clear();
      rho_.insert(r, 1.0);
      fact_.btran(rho_);
      int enter = -1;
      for (int j = 0; j < sf_.art_begin; ++j) {
        if (basic_pos_[static_cast<std::size_t>(j)] >= 0) continue;
        if (std::fabs(dot_col(rho_.val, j)) > expel_tol) {
          enter = j;
          break;
        }
      }
      rho_.clear();
      if (enter < 0) continue;
      w_.clear();
      load_column(enter);
      fact_.ftran(w_);
      support_.clear();
      if (w_.dense) {
        for (int rr = 0; rr < sf_.m; ++rr) {
          if (w_.val[static_cast<std::size_t>(rr)] != 0.0) {
            support_.push_back(rr);
          }
        }
      } else {
        std::sort(w_.idx.begin(), w_.idx.end());
        for (const int rr : w_.idx) {
          if (w_.val[static_cast<std::size_t>(rr)] != 0.0) {
            support_.push_back(rr);
          }
        }
      }
      if (std::fabs(w_.val[static_cast<std::size_t>(r)]) <= piv_tol_) {
        // BTRAN said the entry is usable but FTRAN disagrees: conditioning
        // is suspect, leave the artificial in place rather than divide.
        w_.clear();
        continue;
      }
      if (!pivot(r, enter, 0.0)) return false;
    }
    return true;
  }

  std::vector<double> extract(int n_vars) const {
    std::vector<double> x(static_cast<std::size_t>(n_vars), 0.0);
    for (int r = 0; r < sf_.m; ++r) {
      const int b = basis_[static_cast<std::size_t>(r)];
      if (b < n_vars) {
        x[static_cast<std::size_t>(b)] =
            std::max(0.0, xb_[static_cast<std::size_t>(r)]);
      }
    }
    return x;
  }

  std::vector<int>& mutable_basis() { return basis_; }
  const std::vector<int>& basis() const { return basis_; }

  /// Min reduced cost over nonbasic non-artificial columns for the active
  /// objective — the WarmStart::certify uniqueness certificate (all strictly
  /// positive at an optimum proves the optimal vertex is unique). Recomputes
  /// the duals from the current factorization, so call it at an optimal
  /// basis before the basis is stolen.
  double min_nonbasic_reduced_cost() {
    compute_y();
    double mn = std::numeric_limits<double>::infinity();
    for (int j = 0; j < allow_limit_; ++j) {
      if (basic_pos_[static_cast<std::size_t>(j)] >= 0) continue;
      mn = std::min(mn, reduced_cost(j));
    }
    return mn;
  }

 private:
  void compute_xb() {
    xb_ = sf_.rhs;
    fact_.ftran(xb_);
    for (double& v : xb_) {
      if (v < 0 && v > -tol_) v = 0.0;
    }
  }

  double basic_objective() const {
    double obj = 0.0;
    for (int r = 0; r < sf_.m; ++r) {
      obj += cost_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)])] *
             xb_[static_cast<std::size_t>(r)];
    }
    return obj;
  }

  void compute_y() {
    for (int r = 0; r < sf_.m; ++r) {
      y_[static_cast<std::size_t>(r)] =
          cost_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)])];
    }
    fact_.btran(y_);
  }

  // vec · a_j over column j's sparse entries.
  double dot_col(const std::vector<double>& vec, int j) const {
    double s = 0.0;
    for (int k = sf_.col_ptr[static_cast<std::size_t>(j)];
         k < sf_.col_ptr[static_cast<std::size_t>(j) + 1]; ++k) {
      s += vec[static_cast<std::size_t>(
               sf_.col_row[static_cast<std::size_t>(k)])] *
           sf_.col_val[static_cast<std::size_t>(k)];
    }
    return s;
  }

  double reduced_dot(int j) const { return dot_col(y_, j); }

  double reduced_cost(int j) const {
    return cost_[static_cast<std::size_t>(j)] - reduced_dot(j);
  }

  void load_column(int j) {
    for (int k = sf_.col_ptr[static_cast<std::size_t>(j)];
         k < sf_.col_ptr[static_cast<std::size_t>(j) + 1]; ++k) {
      w_.insert(sf_.col_row[static_cast<std::size_t>(k)],
                sf_.col_val[static_cast<std::size_t>(k)]);
    }
  }

  void note_ftran() {
    ++ftran_calls_;
    ftran_nnz_ += w_.dense ? sf_.m : static_cast<int>(w_.idx.size());
  }

  void rebuild_candidates() {
    cand_.clear();
    in_cand_.assign(static_cast<std::size_t>(sf_.n_total), 0);
    for (int j = 0; j < allow_limit_; ++j) {
      if (basic_pos_[static_cast<std::size_t>(j)] >= 0) continue;
      if (reduced_cost(j) < -tol_) {
        cand_.push_back(j);
        in_cand_[static_cast<std::size_t>(j)] = 1;
      }
    }
  }

  // Lexicographic (reduced cost, index) minimum over the shortlist,
  // re-pricing each member exactly and compacting out the stale ones.
  int price_candidates(double* d_enter) {
    int enter = -1;
    double best = 0.0;
    std::size_t w = 0;
    for (std::size_t k = 0; k < cand_.size(); ++k) {
      const int j = cand_[k];
      if (basic_pos_[static_cast<std::size_t>(j)] >= 0) {
        in_cand_[static_cast<std::size_t>(j)] = 0;
        continue;
      }
      const double d = reduced_cost(j);
      if (!(d < -tol_)) {
        in_cand_[static_cast<std::size_t>(j)] = 0;
        continue;
      }
      cand_[w++] = j;
      if (enter < 0 || d < best || (d == best && j < enter)) {
        best = d;
        enter = j;
      }
    }
    cand_.resize(w);
    *d_enter = best;
    return enter;
  }

  // ---- Devex / steepest-edge path (incremental reduced costs).

  // Exact reset of d_ and the improving-candidate list from one BTRAN plus
  // a full column sweep. The only places optimality or Bland selections are
  // decided read d_ straight after this runs, so drift in the incremental
  // updates can slow the path but never corrupt a verdict.
  void refresh_reduced_costs() {
    compute_y();
    cand_.clear();
    in_cand_.assign(static_cast<std::size_t>(sf_.n_total), 0);
    for (int j = 0; j < sf_.n_total; ++j) {
      if (basic_pos_[static_cast<std::size_t>(j)] >= 0) {
        d_[static_cast<std::size_t>(j)] = 0.0;
        continue;
      }
      const double d = reduced_cost(j);
      d_[static_cast<std::size_t>(j)] = d;
      if (j < allow_limit_ && d < -tol_) {
        cand_.push_back(j);
        in_cand_[static_cast<std::size_t>(j)] = 1;
      }
    }
    need_refresh_ = false;
  }

  // Max of d_j^2 / w_j over the shortlist, compacting out stale members.
  // Ties break to the lowest index for determinism.
  int price_weighted(double* d_enter) {
    if (need_refresh_) refresh_reduced_costs();
    int enter = -1;
    double best_score = 0.0;
    double best_d = 0.0;
    std::size_t w = 0;
    for (std::size_t k = 0; k < cand_.size(); ++k) {
      const int j = cand_[k];
      if (basic_pos_[static_cast<std::size_t>(j)] >= 0) {
        in_cand_[static_cast<std::size_t>(j)] = 0;
        continue;
      }
      const double d = d_[static_cast<std::size_t>(j)];
      if (!(d < -tol_)) {
        in_cand_[static_cast<std::size_t>(j)] = 0;
        continue;
      }
      cand_[w++] = j;
      const double s = weights_.score(j, d);
      if (enter < 0 || s > best_score || (s == best_score && j < enter)) {
        best_score = s;
        best_d = d;
        enter = j;
      }
    }
    cand_.resize(w);
    *d_enter = best_d;
    return enter;
  }

  // Per-pivot maintenance of d_ and the reference weights, run before the
  // basis changes (it needs the pre-pivot factorization, basis_ and w_).
  // The pivot row alpha = rho^T A comes from a sparse BTRAN of e_leave and
  // a sweep of the CSR rows where rho is nonzero — the payoff of carrying
  // the matrix in both orientations. Steepest edge additionally BTRANs the
  // FTRAN'd entering column to get beta_j = a_j^T B^{-T} B^{-1} a_q.
  void update_incremental(int enter, int leave, double d_enter) {
    const double piv = w_.val[static_cast<std::size_t>(leave)];
    const int leave_col = basis_[static_cast<std::size_t>(leave)];
    rho_.clear();
    rho_.insert(leave, 1.0);
    fact_.btran(rho_);

    const bool steepest = rule_ == PricingRule::Steepest;

    // Two ways to reach every column this pivot must touch. The exact row
    // sweep walks the CSR rows of rho's support, updating *all* columns in
    // the pivot row (textbook devex/steepest, and it discovers newly
    // improving columns immediately). Its cost is the summed CSR support —
    // ruinous when rho touches a dense row (LP1's machine-load rows carry
    // ~n entries each, turning every such pivot into an O(n·m) sweep). The
    // lazy path instead updates only the current shortlist by one short
    // column dot with rho each, leaving off-shortlist reduced costs stale;
    // that is safe because every verdict that matters (optimality, Bland)
    // already goes through an exact refresh, and a dry shortlist triggers
    // one. Pick whichever costs less this pivot.
    std::int64_t row_work = 0;
    if (rho_.dense) {
      row_work = sf_.row_ptr[static_cast<std::size_t>(sf_.m)];
    } else {
      for (const int r : rho_.idx) {
        row_work += sf_.row_ptr[static_cast<std::size_t>(r) + 1] -
                    sf_.row_ptr[static_cast<std::size_t>(r)];
      }
    }
    const std::int64_t avg_col_nnz = std::max<std::int64_t>(
        1, sf_.col_ptr[static_cast<std::size_t>(sf_.n_total)] / sf_.n_total);
    const std::int64_t lazy_work = static_cast<std::int64_t>(cand_.size()) *
                                   avg_col_nnz * (steepest ? 2 : 1);
    // The factor leans heavily toward the exact sweep: its better weights
    // and immediate candidate discovery usually repay a mildly pricier
    // pivot, so lazy only engages when the row sweep is out of all
    // proportion (a near-dense pivot row against a short shortlist).
    if (row_work > 8 * lazy_work) {
      update_lazy(enter, leave_col, piv, d_enter, steepest);
      return;
    }

    alpha_supp_.clear();
    auto alpha_add = [&](int r, double x) {
      if (x == 0.0) return;
      for (int k = sf_.row_ptr[static_cast<std::size_t>(r)];
           k < sf_.row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
        const int j = sf_.row_col[static_cast<std::size_t>(k)];
        if (!alpha_mark_[static_cast<std::size_t>(j)]) {
          alpha_mark_[static_cast<std::size_t>(j)] = 1;
          alpha_[static_cast<std::size_t>(j)] = 0.0;
          if (steepest) beta_[static_cast<std::size_t>(j)] = 0.0;
          alpha_supp_.push_back(j);
        }
        alpha_[static_cast<std::size_t>(j)] +=
            x * sf_.row_val[static_cast<std::size_t>(k)];
      }
    };
    if (rho_.dense) {
      for (int r = 0; r < sf_.m; ++r) {
        alpha_add(r, rho_.val[static_cast<std::size_t>(r)]);
      }
    } else {
      for (const int r : rho_.idx) {
        alpha_add(r, rho_.val[static_cast<std::size_t>(r)]);
      }
    }
    rho_.clear();

    const double entering_weight = weights_[enter];
    if (steepest) {
      tau_.clear();
      if (w_.dense) {
        tau_.val = w_.val;
        tau_.dense = true;
      } else {
        for (const int r : w_.idx) {
          const double v = w_.val[static_cast<std::size_t>(r)];
          if (v != 0.0) tau_.insert(r, v);
        }
      }
      fact_.btran(tau_);
      // beta accumulates only over columns already in alpha's support: a
      // column with alpha_j == 0 keeps its weight regardless of beta_j.
      auto beta_add = [&](int r, double x) {
        if (x == 0.0) return;
        for (int k = sf_.row_ptr[static_cast<std::size_t>(r)];
             k < sf_.row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
          const int j = sf_.row_col[static_cast<std::size_t>(k)];
          if (alpha_mark_[static_cast<std::size_t>(j)]) {
            beta_[static_cast<std::size_t>(j)] +=
                x * sf_.row_val[static_cast<std::size_t>(k)];
          }
        }
      };
      if (tau_.dense) {
        for (int r = 0; r < sf_.m; ++r) {
          beta_add(r, tau_.val[static_cast<std::size_t>(r)]);
        }
      } else {
        for (const int r : tau_.idx) {
          beta_add(r, tau_.val[static_cast<std::size_t>(r)]);
        }
      }
      tau_.clear();
    }

    const double mult = d_enter / piv;
    for (const int j : alpha_supp_) {
      alpha_mark_[static_cast<std::size_t>(j)] = 0;
      const double a = alpha_[static_cast<std::size_t>(j)];
      if (j == enter || a == 0.0 ||
          basic_pos_[static_cast<std::size_t>(j)] >= 0) {
        continue;
      }
      double& d = d_[static_cast<std::size_t>(j)];
      d -= mult * a;
      const double ratio = a / piv;
      if (steepest) {
        weights_.note_steepest(j, ratio, beta_[static_cast<std::size_t>(j)],
                               entering_weight);
      } else {
        weights_.note_devex(j, ratio, entering_weight);
      }
      if (j < allow_limit_ && d < -tol_ &&
          !in_cand_[static_cast<std::size_t>(j)]) {
        cand_.push_back(j);
        in_cand_[static_cast<std::size_t>(j)] = 1;
      }
    }
    // The leaving variable turns nonbasic with reduced cost -d_enter/piv
    // (>= 0 here: d_enter < 0, piv > 0), the entering one turns basic.
    d_[static_cast<std::size_t>(leave_col)] = -mult;
    d_[static_cast<std::size_t>(enter)] = 0.0;
    weights_.set_leaving(leave_col, entering_weight, piv);
    if (weights_.needs_reset()) weights_.reset(sf_.n_total);
    // Self-check: alpha_enter must reproduce the FTRAN pivot element. A
    // material mismatch means the file has drifted; schedule an exact
    // refresh rather than keep compounding.
    const double alpha_enter = alpha_[static_cast<std::size_t>(enter)];
    if (std::fabs(alpha_enter - piv) >
        1e-7 * std::max(1.0, std::fabs(piv))) {
      need_refresh_ = true;
    }
  }

  // Shortlist-only pivot maintenance: alpha_j = rho^T a_j per candidate
  // (rho_ holds B^{-T} e_leave; its dense backing array is valid in both
  // sparse and dense modes). Shortlist members keep exact reduced costs by
  // induction — d_enter was itself a shortlist value — while columns
  // outside it drift until the next exact refresh. Weight updates likewise
  // cover the shortlist only: an off-shortlist weight frozen at its
  // reference value can only make that column look *more* attractive
  // later, which degrades the path toward Dantzig, never the answer.
  void update_lazy(int enter, int leave_col, double piv, double d_enter,
                   bool steepest) {
    const double mult = d_enter / piv;
    const double entering_weight = weights_[enter];
    if (steepest) {
      tau_.clear();
      if (w_.dense) {
        tau_.val = w_.val;
        tau_.dense = true;
      } else {
        for (const int r : w_.idx) {
          const double v = w_.val[static_cast<std::size_t>(r)];
          if (v != 0.0) tau_.insert(r, v);
        }
      }
      fact_.btran(tau_);
    }
    double alpha_enter = 0.0;
    for (const int j : cand_) {
      if (basic_pos_[static_cast<std::size_t>(j)] >= 0) continue;
      const double a = dot_col(rho_.val, j);
      if (j == enter) {
        alpha_enter = a;
        continue;
      }
      if (a == 0.0) continue;
      d_[static_cast<std::size_t>(j)] -= mult * a;
      const double ratio = a / piv;
      if (steepest) {
        weights_.note_steepest(j, ratio, dot_col(tau_.val, j),
                               entering_weight);
      } else {
        weights_.note_devex(j, ratio, entering_weight);
      }
    }
    if (steepest) tau_.clear();
    rho_.clear();
    d_[static_cast<std::size_t>(leave_col)] = -mult;
    d_[static_cast<std::size_t>(enter)] = 0.0;
    weights_.set_leaving(leave_col, entering_weight, piv);
    if (weights_.needs_reset()) weights_.reset(sf_.n_total);
    if (std::fabs(alpha_enter - piv) >
        1e-7 * std::max(1.0, std::fabs(piv))) {
      need_refresh_ = true;
    }
  }

  // Commit the pivot: update x_B, swap the basis, append the update eta and
  // refactorize on schedule. False = the scheduled refactorization found the
  // basis numerically singular (caller falls back to the tableau engine).
  bool pivot(int leave, int enter, double d_enter) {
    const double piv = w_.val[static_cast<std::size_t>(leave)];
    const double theta = xb_[static_cast<std::size_t>(leave)] / piv;
    for (const int r : support_) {
      if (r == leave) continue;
      double& v = xb_[static_cast<std::size_t>(r)];
      v -= theta * w_.val[static_cast<std::size_t>(r)];
      if (v < 0 && v > -tol_) v = 0.0;
    }
    xb_[static_cast<std::size_t>(leave)] = theta;
    obj_ += d_enter * theta;
    fact_.push_eta(leave, w_.val, support_);
    basic_pos_[static_cast<std::size_t>(
        basis_[static_cast<std::size_t>(leave)])] = -1;
    basis_[static_cast<std::size_t>(leave)] = enter;
    basic_pos_[static_cast<std::size_t>(enter)] = leave;
    w_.clear();
    if (fact_.etas_since_refactor() >= refactor_interval()) {
      if (!install(basis_)) return false;
      obj_ = basic_objective();  // squash incremental drift
      // d_ drifts on the same schedule as the objective: squash it too.
      if (rule_ != PricingRule::Dantzig && !cost_.empty()) {
        refresh_reduced_costs();
      }
    }
    return true;
  }

  const StandardForm& sf_;
  double tol_;
  double piv_tol_;
  PricingRule rule_;             // resolved: never Auto
  BasisFactorization fact_;
  std::vector<int> basis_;       // basic column per row
  std::vector<int> basic_pos_;   // column -> row, -1 when nonbasic
  std::vector<double> xb_;       // basic values per row (B^{-1} b)
  std::vector<double> cost_;     // active objective, dense over columns
  double obj_ = 0.0;
  int allow_limit_ = 0;
  std::vector<int> cand_;        // pricing shortlist (improving columns)
  std::vector<char> in_cand_;
  ScatteredVec w_;               // scratch: FTRAN'd entering column
  ScatteredVec rho_;             // scratch: BTRAN'd pivot row e_leave
  ScatteredVec tau_;             // scratch: steepest-edge B^{-T} w
  std::vector<double> y_;        // scratch: BTRAN'd pricing row (exact path)
  std::vector<int> support_;     // scratch: nonzero rows of w_
  // Devex/steepest state.
  pricing::ReferenceWeights weights_;
  std::vector<double> d_;        // incrementally maintained reduced costs
  std::vector<double> alpha_;    // scratch: pivot row over columns
  std::vector<char> alpha_mark_;
  std::vector<int> alpha_supp_;
  std::vector<double> beta_;     // scratch: a_j^T tau on alpha's support
  bool need_refresh_ = false;
  // FTRAN telemetry for the perf benches (sparsity of entering columns).
  std::int64_t ftran_calls_ = 0;
  std::int64_t ftran_nnz_ = 0;
  std::int64_t refactorizations_ = 0;  // successful install() calls

 public:
  std::int64_t ftran_calls() const { return ftran_calls_; }
  std::int64_t ftran_nnz() const { return ftran_nnz_; }
  std::int64_t refactorizations() const { return refactorizations_; }
};

}  // namespace

Solution solve_revised(const Problem& p, const StandardForm& sf,
                       const SimplexOptions& opt, bool* numerical_trouble) {
  *numerical_trouble = false;
  Solution sol;
  const PricingRule rule =
      pricing::resolve_pricing(opt.pricing, SimplexEngine::Revised);
  RevisedSimplex rs(sf, opt.tol, rule);
  const int m = sf.m;
  const int n = sf.n_total;
  const int iter_cap = detail::simplex_iter_cap(m, n, opt.max_iters);
  const int stall_cap = detail::simplex_stall_cap(m, n);
  int iters = 0;
  bool trouble = false;

  auto run_phase = [&]() -> int {
    // The shared anti-cycling driver; -1 (numerical trouble from a failed
    // refactorization) passes through like any non-pivot result.
    return detail::run_simplex_phase(rs, opt.tol, iter_cap, stall_cap, iters);
  };

  bool warmed = false;
  bool diverged = false;  // certify verdict, committed by finish() below
  // Rejected seed on a chain that never accepted one: the scratch restart
  // is exactly the cold trajectory's start, so certification can simply be
  // dropped (committed by finish(), like the rest of the warm accounting).
  bool seed_rejected_virgin = false;
  if (opt.warm != nullptr && !opt.warm->basis.empty()) {
    warmed = rs.try_warm_start(opt.warm->basis);
    if (!warmed && opt.warm->certify) {
      if (opt.warm->hits > 0) {
        // The chain's state already depends on an earlier accepted seed;
        // restarting from scratch matches neither trajectory. Discard.
        diverged = true;
      } else {
        seed_rejected_virgin = true;
      }
    }
  }
  if (!warmed && !rs.install(sf.init_basis)) {
    // The initial slack/artificial basis is the identity; failing to
    // factorize it means something is deeply wrong — punt to the tableau.
    *numerical_trouble = true;
    return sol;
  }

  // Warm accounting mirrors the tableau path, deferred so a later fallback
  // to the tableau engine (which re-runs its own attempt) cannot
  // double-count this one.
  auto finish = [&](Solution s) {
    if (trouble) {
      *numerical_trouble = true;
    } else {
      s.engine = SimplexEngine::Revised;
      s.ftran_calls = rs.ftran_calls();
      s.ftran_nnz = rs.ftran_nnz();
      s.refactorizations = rs.refactorizations();
      if (opt.warm != nullptr) {
        if (warmed) {
          ++opt.warm->hits;
        } else {
          ++opt.warm->misses;
        }
        // Sticky across the handle's chain: once one solve diverges the
        // whole chain is suspect. Skipped on trouble — the tableau
        // fallback re-runs the warm attempt and certifies on its own.
        if (opt.warm->certify && diverged) opt.warm->diverged = true;
        if (opt.warm->certify && seed_rejected_virgin && !diverged) {
          opt.warm->certify = false;  // plain cold run from here on
        }
      }
    }
    return s;
  };

  // ---- Phase 1 (skipped on a warm hit): minimize the sum of artificials.
  if (!warmed && sf.art_begin < n) {
    std::vector<double> phase1(static_cast<std::size_t>(n), 0.0);
    for (int j = sf.art_begin; j < n; ++j) {
      phase1[static_cast<std::size_t>(j)] = 1.0;
    }
    rs.load_objective(phase1, n);
    const int res = run_phase();
    if (res == -1 || res == 2) {
      // Phase 1 is bounded below by zero; "unbounded" here can only be a
      // numerically corrupted factorization.
      trouble = true;
      return finish(sol);
    }
    if (res == 3) {
      sol.status = Status::IterLimit;
      sol.iterations = iters;
      sol.phase1_iterations = iters;
      return finish(sol);
    }
    const double p1 = rs.exact_objective();
    const double feas_tol = opt.tol * (1.0 + std::fabs(p1)) * 100;
    if (p1 > feas_tol + 1e-7) {
      sol.status = Status::Infeasible;
      sol.iterations = iters;
      sol.phase1_iterations = iters;
      return finish(sol);
    }
    if (!rs.expel_artificials()) {
      trouble = true;
      return finish(sol);
    }
  }
  sol.phase1_iterations = iters;

  // ---- Phase 2: original objective, artificials locked out.
  std::vector<double> phase2(static_cast<std::size_t>(n), 0.0);
  for (int j = 0; j < p.num_vars; ++j) {
    phase2[static_cast<std::size_t>(j)] = p.objective[static_cast<std::size_t>(j)];
  }
  rs.load_objective(phase2, sf.art_begin);
  const int res = run_phase();
  sol.iterations = iters;
  if (res == -1) {
    trouble = true;
    return finish(sol);
  }
  if (res == 3 || res == 2) {
    sol.status = res == 3 ? Status::IterLimit : Status::Unbounded;
    // A seeded certified chain that could not even finish may have failed
    // BECAUSE of the seed — cold could still succeed.
    if (warmed && opt.warm->certify) diverged = true;
    return finish(sol);
  }

  sol.status = Status::Optimal;
  if (opt.warm != nullptr) {
    // Uniqueness certificate, computed before the basis is stolen below.
    // Every handle-attached solve reports the verdict (last_unique) so the
    // caller can persist it next to the basis it records; a certified
    // seeded run additionally diverges when the certificate fails — the
    // optimum may be one of several vertices and the seed may have picked
    // a different one than the cold trajectory would. If a later verify
    // failure punts to the tableau, that engine recomputes and overwrites.
    opt.warm->last_unique =
        rs.min_nonbasic_reduced_cost() > kUniqueCertTol;
    if (warmed && opt.warm->certify && !opt.warm->last_unique) {
      diverged = true;
    }
  }
  sol.x = rs.extract(p.num_vars);
  sol.basis = std::move(rs.mutable_basis());
  double obj = 0.0;
  for (int j = 0; j < p.num_vars; ++j) {
    obj += p.objective[static_cast<std::size_t>(j)] *
           sol.x[static_cast<std::size_t>(j)];
  }
  sol.objective = obj;

  if (opt.verify) {
    double scale = 1.0;
    for (const auto& row : p.rows) scale = std::max(scale, std::fabs(row.rhs));
    if (max_violation(p, sol.x) > 1e-5 * scale) {
      trouble = true;  // let the tableau engine arbitrate
      return finish(Solution{});
    }
  }
  if (opt.warm != nullptr) opt.warm->basis = sol.basis;
  return finish(sol);
}

}  // namespace suu::lp
