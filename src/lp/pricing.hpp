// Entering-variable pricing for the simplex engines.
//
// Dantzig pricing ("most negative reduced cost") is scale-sensitive: a
// column whose reduced cost looks steep only because its FTRAN'd image is
// long gets picked again and again, and the n>=1024 LP1 phase-1 runs spend
// thousands of pivots shuffling such columns. The classical fix is to
// normalize the reduced cost by (an estimate of) the edge length
// ||B^{-1} a_j||, selecting the entering column by
//
//     maximize  d_j^2 / w_j   over improving columns (d_j < -tol)
//
// where w_j is a reference weight maintained incrementally per pivot:
//
//  - Devex (Harris '73, as formulated by Forrest–Goldfarb '92): w_j
//    approximates the squared edge norm relative to a reference framework
//    (the nonbasic set at the last reset). Per pivot, for every column j in
//    the pivot row's support with ratio r_j = alpha_rj / alpha_rq:
//        w_j <- max(w_j, r_j^2 * w_q)
//    and the leaving variable gets max(w_q / piv^2, 1). Costs nothing
//    beyond the pivot row itself.
//  - Approximate steepest edge (Goldfarb–Reid '77 recurrence, applied to
//    weights initialized at 1 instead of exactly-computed norms):
//        gamma_j <- max(gamma_j - 2 r_j beta_j + r_j^2 gamma_q,  1 + r_j^2)
//    where beta_j = a_j^T B^{-T} B^{-1} a_q needs one extra BTRAN per pivot
//    (of the FTRAN'd entering column) plus one sweep of the pivot row's
//    support. More faithful to the true steepest-edge norms than Devex,
//    about twice the update cost.
//
// Both rules only re-rank columns that are already improving; which columns
// COUNT as improving, and the optimality certificate, always come from
// exact reduced costs (the engines recompute them before declaring
// optimality). That is what keeps every pricing rule's verdicts identical
// under the differential oracle — the rules change the path, never the
// answer.
#pragma once

#include <string_view>
#include <vector>

#include "lp/problem.hpp"

namespace suu::lp::pricing {

/// Parse the wire / CLI spelling of a pricing rule
/// ("auto|dantzig|devex|steepest", matching to_string(PricingRule)).
/// Returns false (leaving *out untouched) for anything else.
bool parse_pricing_rule(std::string_view name, PricingRule* out);

/// Weights above this trigger a framework reset (all weights back to 1):
/// the reference framework has drifted too far for the approximation to
/// mean anything, and oversized weights would just freeze those columns out.
inline constexpr double kWeightResetThreshold = 1e7;

/// Resolve PricingRule::Auto for an engine. The tableau engine keeps
/// Dantzig — its pivot trajectories are byte-recorded in the table1
/// experiments — while the revised engine defaults to Devex, where the
/// pivot-count win compounds with the cheaper per-pivot linear algebra.
inline PricingRule resolve_pricing(PricingRule rule, SimplexEngine engine) {
  if (rule != PricingRule::Auto) return rule;
  return engine == SimplexEngine::Tableau ? PricingRule::Dantzig
                                          : PricingRule::Devex;
}

/// Reference weights for Devex / approximate steepest edge. Inactive until
/// reset(n) is called (engines reset per objective load: each phase starts
/// a fresh reference framework).
class ReferenceWeights {
 public:
  void reset(int n) {
    w_.assign(static_cast<std::size_t>(n), 1.0);
    needs_reset_ = false;
  }
  void deactivate() { w_.clear(); }
  bool active() const { return !w_.empty(); }

  double operator[](int j) const { return w_[static_cast<std::size_t>(j)]; }

  /// Selection score for an improving column: d^2 / w_j. Larger is better.
  double score(int j, double d) const {
    return d * d / w_[static_cast<std::size_t>(j)];
  }

  /// Devex update for a pivot-row column with ratio r = alpha_rj/alpha_rq,
  /// where wq is the entering column's weight before the pivot.
  void note_devex(int j, double ratio, double wq) {
    const double cand = ratio * ratio * wq;
    double& w = w_[static_cast<std::size_t>(j)];
    if (cand > w) {
      w = cand;
      if (cand > kWeightResetThreshold) needs_reset_ = true;
    }
  }

  /// Goldfarb–Reid steepest-edge recurrence; beta = a_j^T B^{-T} B^{-1} a_q
  /// and gamma_q is the entering column's weight before the pivot. The
  /// 1 + r^2 floor is the exact post-pivot lower bound on the squared edge
  /// norm, so the clamp never over-trims.
  void note_steepest(int j, double ratio, double beta, double gamma_q) {
    const double floor = 1.0 + ratio * ratio;
    double g = w_[static_cast<std::size_t>(j)] - 2.0 * ratio * beta +
               ratio * ratio * gamma_q;
    if (g < floor) g = floor;
    w_[static_cast<std::size_t>(j)] = g;
    if (g > kWeightResetThreshold) needs_reset_ = true;
  }

  /// Weight of the variable leaving on a pivot with element `piv`, given
  /// the entering column's pre-pivot weight.
  void set_leaving(int j, double entering_weight, double piv) {
    double w = entering_weight / (piv * piv);
    if (w < 1.0) w = 1.0;
    w_[static_cast<std::size_t>(j)] = w;
    if (w > kWeightResetThreshold) needs_reset_ = true;
  }

  /// True once any weight crossed kWeightResetThreshold; the engine is
  /// expected to call reset(n) at the next convenient point.
  bool needs_reset() const { return needs_reset_; }

 private:
  std::vector<double> w_;
  bool needs_reset_ = false;
};

}  // namespace suu::lp::pricing
