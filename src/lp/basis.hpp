// Revised simplex over an eta-file basis factorization.
//
// The PR 2 tableau solver keeps the whole B^{-1}A matrix explicit and pays
// O(m·n) per pivot to eliminate it; at the n=256/1024 LP1 regimes those
// eliminations dominate everything else. The revised engine here keeps only
// a factorization of the m×m basis matrix B and reconstructs what a pivot
// needs on demand:
//
//   FTRAN  w = B^{-1} a_j        (entering column, for the ratio test)
//   BTRAN  y = c_B^T B^{-1}      (pricing row, for reduced costs)
//
// B^{-1} is represented as a product of elementary Gauss transforms ("eta"
// matrices), the classic product form of the inverse. refactorize() rebuilds
// the file from the basic columns, processing them sparsest-first so the
// factorization stays close to a sparse LU (for LP1/LP2 bases nearly every
// column is a singleton or doubleton and the file is near-permutation);
// each simplex pivot then appends one Forrest–Tomlin-style update eta built
// from the FTRAN'd entering column. The file is rebuilt every
// refactor_interval() pivots to bound its length and squash accumulated
// roundoff — the interval is env-overridable (SUU_LP_REFACTOR_INTERVAL) so
// slow-FP builds (ASan CI) can trade accuracy maintenance for wall time.
//
// Both engines solve the identical standard form (build_standard_form keeps
// the column numbering and rhs normalization bit-identical to the tableau's
// internal construction), so a Solution::basis produced by one engine warm
// starts the other. solve_revised never aborts on numerical trouble: it
// reports it, and lp::solve_simplex falls back to the tableau engine, whose
// trajectories are the repo's byte-stability anchor.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "lp/problem.hpp"

namespace suu::lp {

struct SimplexOptions;

/// Eta-file rebuild period, in pivots. Shorter = better conditioned and
/// cheaper FTRAN/BTRAN, more time spent refactorizing.
inline constexpr int kDefaultRefactorInterval = 64;

/// Parse a SUU_LP_REFACTOR_INTERVAL override. Only a bare positive decimal
/// integer in [1, 100000] is accepted; anything else — empty, garbage,
/// trailing junk, zero, negative, out of range — falls back to
/// kDefaultRefactorInterval (a misconfigured env var must never silently
/// yield interval 1 and tank performance, which is what the old clamp did
/// for "0" and negatives). Exposed for the unit test.
int parse_refactor_interval(const char* env);

/// kDefaultRefactorInterval unless the SUU_LP_REFACTOR_INTERVAL environment
/// variable overrides it (see parse_refactor_interval; read once per
/// process).
int refactor_interval();

/// The standard form `min c·x  s.t.  Ax {<=,=} b, b >= 0, x >= 0` both
/// simplex engines solve: original variables, then one slack/surplus per
/// inequality row, then one artificial per Ge/Eq row, with rhs-negative rows
/// sign-flipped first. Column order, duplicate-term accumulation and the
/// initial (slack/artificial) basis are bit-identical to what the tableau
/// engine historically built, which is what makes bases interchangeable.
struct StandardForm {
  int m = 0;          ///< rows
  int n_orig = 0;     ///< problem variables
  int n_total = 0;    ///< + slacks + artificials
  int art_begin = 0;  ///< first artificial column (== n_total when none)
  std::vector<double> rhs;     ///< size m, >= 0
  std::vector<int> init_basis; ///< size m: initial basic column per row
  // Constraint matrix over all n_total columns, stored twice: compressed
  // sparse column (FTRAN loads, reduced-cost dots) and compressed sparse
  // row (the revised engine's pivot row alpha = rho^T A, which walks the
  // rows where rho is nonzero instead of dotting every column). Rows within
  // a column and columns within a row are in increasing order; structural
  // zeros dropped.
  std::vector<int> col_ptr;  ///< size n_total + 1
  std::vector<int> col_row;
  std::vector<double> col_val;
  std::vector<int> row_ptr;  ///< size m + 1
  std::vector<int> row_col;
  std::vector<double> row_val;

  int col_nnz(int j) const {
    return col_ptr[static_cast<std::size_t>(j) + 1] -
           col_ptr[static_cast<std::size_t>(j)];
  }
};

/// Sparse workspace vector: dense values plus an explicit support list so
/// FTRAN/BTRAN and their consumers touch only nonzeros. `idx` lists every
/// row whose value may be nonzero (a superset: exact cancellations stay
/// listed); `mark[r]` mirrors membership of r in `idx`. When an operation
/// fills the vector past its sparsity threshold it flips `dense` and stops
/// maintaining the support — from then on `val` alone is authoritative and
/// consumers fall back to dense scans.
struct ScatteredVec {
  std::vector<double> val;
  std::vector<int> idx;
  std::vector<char> mark;
  bool dense = false;

  void resize(int m) {
    val.assign(static_cast<std::size_t>(m), 0.0);
    mark.assign(static_cast<std::size_t>(m), 0);
    idx.clear();
    dense = false;
  }

  int size() const { return static_cast<int>(val.size()); }

  /// Zero the vector and forget the support, reusing capacity. O(support)
  /// when sparse, O(m) after a dense fallback.
  void clear() {
    if (dense) {
      std::fill(val.begin(), val.end(), 0.0);
      std::fill(mark.begin(), mark.end(), 0);
    } else {
      for (const int r : idx) {
        val[static_cast<std::size_t>(r)] = 0.0;
        mark[static_cast<std::size_t>(r)] = 0;
      }
    }
    idx.clear();
    dense = false;
  }

  void insert(int r, double v) {
    val[static_cast<std::size_t>(r)] = v;
    if (!mark[static_cast<std::size_t>(r)]) {
      mark[static_cast<std::size_t>(r)] = 1;
      idx.push_back(r);
    }
  }
};

/// Support fraction above which sparse FTRAN/BTRAN hand over to the dense
/// kernels: once a quarter of the vector is live, support bookkeeping costs
/// more than the dense stream it avoids.
inline constexpr int kScatterDenseDen = 4;

StandardForm build_standard_form(const Problem& p);

/// Product-form basis factorization: an ordered file of eta transforms whose
/// composition is B^{-1}. Exposed for the revised engine and for tests; the
/// vectors passed to ftran/btran are dense, length StandardForm::m.
class BasisFactorization {
 public:
  BasisFactorization(const StandardForm& sf, double piv_tol);

  /// Rebuild the file from scratch so it represents the inverse of the
  /// basis matrix formed by `cols` (a duplicate-free set of m column
  /// indices, any order). Returns false — leaving the factorization unusable
  /// until the next successful call — when the matrix is numerically
  /// singular (no pivot above piv_tol for some column). On success,
  /// row_to_col()[r] names the column pivoted on row r.
  bool refactorize(const std::vector<int>& cols);

  /// v := B^{-1} v.
  void ftran(std::vector<double>& v) const;
  /// v := B^{-T} v (i.e. v^T := v^T B^{-1}).
  void btran(std::vector<double>& v) const;

  /// Sparse FTRAN: applies only the etas the support reaches, tracking
  /// fill-in; flips v.dense (and finishes with the dense kernel) past the
  /// fill threshold. Bit-identical values to the dense ftran.
  void ftran(ScatteredVec& v) const;
  /// Sparse BTRAN: walks the eta file backward through a max-heap worklist
  /// seeded from v's support, using the row->eta index lists to activate
  /// exactly the etas that can see a nonzero. Each eta is applied at most
  /// once, in the same decreasing-index order as the dense kernel, so the
  /// values it produces are bit-identical to it.
  void btran(ScatteredVec& v) const;

  /// Append the update eta for a pivot on row `p` with FTRAN'd entering
  /// column `w` (dense; w[p] is the pivot element, |w[p]| > piv_tol).
  /// `support` lists the rows where w may be nonzero.
  void push_eta(int p, const std::vector<double>& w,
                const std::vector<int>& support);

  /// Update etas appended since the last refactorize().
  int etas_since_refactor() const { return update_etas_; }
  const std::vector<int>& row_to_col() const { return row_to_col_; }

 private:
  void append(int p, double piv, const std::vector<double>& w,
              const std::vector<int>& support);
  void finish_ftran_dense(ScatteredVec& v, std::size_t first_eta) const;

  const StandardForm* sf_;
  double piv_tol_;
  int update_etas_ = 0;
  // Flattened eta file: eta k pivots row pivot_row_[k] with multiplier
  // inv_piv_[k] = 1/w_p and off-pivot entries off_row_/off_val_ in
  // [ptr_[k], ptr_[k+1]).
  std::vector<int> pivot_row_;
  std::vector<double> inv_piv_;
  std::vector<int> ptr_{0};
  std::vector<int> off_row_;
  std::vector<double> off_val_;
  std::vector<int> row_to_col_;
  // Row-indexed view of the same file (the "dual" storage): row_refs_[r]
  // lists the eta indices whose pivot row or off-pivot entries touch row r,
  // each in increasing order. Sparse BTRAN reads it to find which etas a
  // nonzero row can activate without scanning the file.
  std::vector<std::vector<int>> row_refs_;
  // Sparse-BTRAN scratch (per-call; mutable so the solve-side methods stay
  // const like their dense counterparts).
  mutable std::vector<int> heap_;
  mutable std::vector<char> queued_;
};

/// Solve the standard form with the revised engine. Honors the same
/// SimplexOptions contract as the tableau path (tol, max_iters, warm,
/// verify). Sets *numerical_trouble instead of returning a wrong answer
/// when the factorization degrades (singular refactorization, verification
/// failure); the caller is expected to re-solve with the tableau engine.
Solution solve_revised(const Problem& p, const StandardForm& sf,
                       const SimplexOptions& opt, bool* numerical_trouble);

}  // namespace suu::lp
