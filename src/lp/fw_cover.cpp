#include "lp/fw_cover.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace suu::lp {

FwSolution solve_fw_cover(const CoverSystem& sys, const FwOptions& opt) {
  const int n_jobs = static_cast<int>(sys.cover.size());
  SUU_CHECK(static_cast<int>(sys.demand.size()) == n_jobs);
  SUU_CHECK(sys.n_machines > 0);

  FwSolution sol;
  sol.x.resize(n_jobs);
  if (n_jobs == 0) return sol;

  // Initial point: each job covered entirely by its highest-rate machine.
  std::vector<double> load(sys.n_machines, 0.0);
  for (int j = 0; j < n_jobs; ++j) {
    const auto& cov = sys.cover[j];
    SUU_CHECK_MSG(!cov.empty(), "job " << j << " has no capable machine");
    SUU_CHECK(sys.demand[j] > 0);
    int best = 0;
    for (int k = 1; k < static_cast<int>(cov.size()); ++k) {
      if (cov[k].second > cov[best].second) best = k;
    }
    sol.x[j].assign(cov.size(), 0.0);
    SUU_CHECK(cov[best].second > 0);
    sol.x[j][best] = sys.demand[j] / cov[best].second;
    load[cov[best].first] += sol.x[j][best];
  }

  std::vector<double> u(sys.n_machines);      // softmax weights
  std::vector<double> yload(sys.n_machines);  // loads of the oracle point
  std::vector<int> pick(n_jobs);

  double best_lb = 0.0;
  for (int iter = 0; iter < opt.max_iters; ++iter) {
    ++sol.iterations;
    const double t_cur = *std::max_element(load.begin(), load.end());
    if (t_cur <= 0) break;

    // Softmax weights with temperature tied to the current value, so the
    // smoothing error stays a constant fraction of t_cur.
    const double eta =
        std::log(static_cast<double>(sys.n_machines) + 2.0) * 8.0 / t_cur;
    double wsum = 0.0;
    for (int i = 0; i < sys.n_machines; ++i) {
      u[i] = std::exp(eta * (load[i] - t_cur));  // shift for stability
      wsum += u[i];
    }
    for (auto& w : u) w /= wsum;

    // Linear oracle: each job moves all demand to its cheapest machine
    // under prices u. Also yields the certified lower bound.
    std::fill(yload.begin(), yload.end(), 0.0);
    double lb = 0.0;
    for (int j = 0; j < n_jobs; ++j) {
      const auto& cov = sys.cover[j];
      int best = -1;
      double best_price = std::numeric_limits<double>::infinity();
      for (int k = 0; k < static_cast<int>(cov.size()); ++k) {
        const double price = u[cov[k].first] / cov[k].second;
        if (price < best_price) {
          best_price = price;
          best = k;
        }
      }
      pick[j] = best;
      lb += sys.demand[j] * best_price;
      yload[cov[best].first] += sys.demand[j] / cov[best].second;
    }
    best_lb = std::max(best_lb, lb);

    if (t_cur - best_lb <= opt.rel_gap * t_cur) break;

    // Frank–Wolfe step toward the oracle point.
    const double sigma = 2.0 / (static_cast<double>(iter) + 3.0);
    for (int j = 0; j < n_jobs; ++j) {
      auto& xj = sol.x[j];
      for (auto& v : xj) v *= (1.0 - sigma);
      const auto& cov = sys.cover[j];
      xj[pick[j]] += sigma * sys.demand[j] / cov[pick[j]].second;
    }
    for (int i = 0; i < sys.n_machines; ++i) {
      load[i] = (1.0 - sigma) * load[i] + sigma * yload[i];
    }
  }

  // Recompute the exact loads from x (drift-free) and report.
  std::fill(load.begin(), load.end(), 0.0);
  for (int j = 0; j < n_jobs; ++j) {
    const auto& cov = sys.cover[j];
    for (int k = 0; k < static_cast<int>(cov.size()); ++k) {
      load[cov[k].first] += sol.x[j][k];
    }
  }
  sol.t = *std::max_element(load.begin(), load.end());
  sol.lower_bound = best_lb;
  return sol;
}

}  // namespace suu::lp
