#include "lp/pricing.hpp"

namespace suu::lp::pricing {

bool parse_pricing_rule(std::string_view name, PricingRule* out) {
  if (name == "auto") {
    *out = PricingRule::Auto;
  } else if (name == "dantzig") {
    *out = PricingRule::Dantzig;
  } else if (name == "devex") {
    *out = PricingRule::Devex;
  } else if (name == "steepest") {
    *out = PricingRule::Steepest;
  } else {
    return false;
  }
  return true;
}

}  // namespace suu::lp::pricing
