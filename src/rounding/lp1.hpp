// LP1 (paper Section 3) and the Lemma 2 rounding pipeline.
//
//   (LP1)  min t   s.t.  sum_i ell'_ij x_ij >= L   for j in J'
//                        sum_j x_ij         <= t   for i in M
//                        x integral, >= 0
// with ell'_ij = min(ell_ij, L) (truncation changes nothing for integral x).
//
// solve_lp1 computes the *fractional* relaxation: exactly with the dense
// simplex for moderate sizes, or via the certified Frank–Wolfe solver when
// n*m is large. round_lp1 then follows Lemma 2: group machines per job by
// floor(log2 ell'), scale group totals by 6 and floor, and route an integral
// max-flow (source -> groups -> machines -> sink) whose edge flows are the
// integral assignment. The result delivers log mass >= L to every job in J'
// with machine loads <= ceil(6 t*).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/instance.hpp"
#include "lp/problem.hpp"
#include "sched/assignment.hpp"

namespace suu::lp {
struct WarmStart;
}

namespace suu::rounding {

struct Lp1Options {
  enum class Solver { Auto, Simplex, FrankWolfe };
  Solver solver = Solver::Auto;
  /// Auto picks the simplex when |J'| * m is at most this threshold.
  int simplex_size_limit = 4000;
  /// Optional simplex warm-start handle (not owned; ignored by
  /// Frank–Wolfe). Chain it across structurally identical LP1 solves —
  /// e.g. re-solves after a demand perturbation — to skip phase 1.
  lp::WarmStart* warm = nullptr;
  /// Simplex core (ignored by Frank–Wolfe): tableau, revised (basis
  /// factorization), or size-based auto selection. Also governs the LP2
  /// solves when these options are threaded through suu::api.
  lp::SimplexEngine engine = lp::SimplexEngine::Auto;
  /// Simplex pricing rule (ignored by Frank–Wolfe; see lp/pricing.hpp).
  /// Auto keeps the engine defaults: Dantzig on the tableau, Devex on the
  /// revised engine. Like `engine`, this also governs the LP2 solves when
  /// threaded through suu::api.
  lp::PricingRule pricing = lp::PricingRule::Auto;
};

struct Lp1Fractional {
  /// Achieved fractional value (max machine load). For the simplex this is
  /// the LP optimum; for Frank–Wolfe it is within the certified gap of it.
  double t = 0.0;
  /// Certified lower bound on the fractional LP optimum (== t for simplex).
  double lower_bound = 0.0;
  /// Sparse solution: x[idx] pairs with jobs[idx]; entries (machine, value).
  std::vector<std::vector<std::pair<int, double>>> x;
  /// Simplex pivots spent (0 for Frank–Wolfe); phase-1 share for warm/cold
  /// accounting.
  int simplex_iterations = 0;
  int simplex_phase1_iterations = 0;
  /// FTRAN telemetry forwarded from lp::Solution (revised engine only;
  /// 0 otherwise). ftran_nnz / (ftran_calls * rows) is the average fill the
  /// sparse eta kernels actually touched — the perf benches report it.
  std::int64_t ftran_calls = 0;
  std::int64_t ftran_nnz = 0;
};

/// Solve the relaxation of LP1(J', L). `jobs` lists J' (must be non-empty,
/// duplicate-free); L > 0.
Lp1Fractional solve_lp1(const core::Instance& inst,
                        const std::vector<int>& jobs, double L,
                        const Lp1Options& opt = {});

/// Lemma 2: round a fractional solution to an integral assignment with
/// per-job truncated log mass >= L and max load <= ceil(6 t*) (verified;
/// numerically-starved jobs are topped up on their best machine).
///
/// `trim`: the paper's construction intentionally over-delivers ~6L of mass
/// per job (the floor(6 D) source capacities). Trimming removes surplus
/// steps cheapest-mass-first while keeping mass >= L — it can only lower
/// loads, so every Lemma 2 guarantee is preserved. On by default; the
/// F-LP bench ablates it.
sched::IntegralAssignment round_lp1(const core::Instance& inst,
                                    const std::vector<int>& jobs, double L,
                                    const Lp1Fractional& frac,
                                    bool trim = true);

/// Remove surplus integral steps from `x` while keeping every listed job's
/// truncated log mass at least L. Steps with the smallest ell' go first.
sched::IntegralAssignment trim_assignment(const core::Instance& inst,
                                          const std::vector<int>& jobs,
                                          double L,
                                          const sched::IntegralAssignment& x);

/// Full pipeline: solve + round + build the oblivious schedule
/// Sigma_{LP1(J',L)} from the paper ("each machine runs its jobs back to
/// back"; length = max machine load).
struct Lp1Schedule {
  sched::IntegralAssignment assignment;
  sched::ObliviousSchedule schedule;
  double t_fractional = 0.0;
  double lower_bound = 0.0;
};

Lp1Schedule build_lp1_schedule(const core::Instance& inst,
                               const std::vector<int>& jobs, double L,
                               const Lp1Options& opt = {});

}  // namespace suu::rounding
