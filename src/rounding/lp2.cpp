#include "rounding/lp2.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "flow/max_flow.hpp"
#include "lp/problem.hpp"
#include "lp/simplex.hpp"
#include "rounding/lp1.hpp"
#include "util/check.hpp"

namespace suu::rounding {
namespace {

constexpr double kEps = 1e-12;
constexpr double kL = 1.0;  // LP2 uses a unit log-mass target

}  // namespace

Lp2Result solve_and_round_lp2(const core::Instance& inst,
                              const std::vector<std::vector<int>>& chains,
                              lp::WarmStart* warm, lp::SimplexEngine engine,
                              lp::PricingRule pricing) {
  // ---- Collect the job set and validate the chain partition.
  std::vector<int> jobs;
  std::vector<char> seen(inst.num_jobs(), 0);
  for (const auto& chain : chains) {
    SUU_CHECK_MSG(!chain.empty(), "empty chain");
    for (const int j : chain) {
      SUU_CHECK(j >= 0 && j < inst.num_jobs());
      SUU_CHECK_MSG(!seen[j], "job " << j << " appears in two chains");
      seen[j] = 1;
      jobs.push_back(j);
    }
  }
  SUU_CHECK_MSG(!jobs.empty(), "LP2 needs at least one chain");

  // ---- Build the LP2 relaxation.
  lp::Problem p;
  const int t_var = p.add_var(1.0);
  std::vector<int> d_var(inst.num_jobs(), -1);
  for (const int j : jobs) d_var[j] = p.add_var(0.0);

  std::vector<std::vector<std::pair<int, int>>> var_of(jobs.size());
  std::vector<lp::Row> load_rows(inst.num_machines());
  for (std::size_t idx = 0; idx < jobs.size(); ++idx) {
    const int j = jobs[idx];
    lp::Row cover;
    cover.rel = lp::Rel::Ge;
    cover.rhs = kL;
    for (int i = 0; i < inst.num_machines(); ++i) {
      const double e = inst.ell_capped(i, j, kL);
      if (e <= kEps) continue;
      const int v = p.add_var(0.0);
      var_of[idx].emplace_back(i, v);
      cover.terms.emplace_back(v, e);
      load_rows[i].terms.emplace_back(v, 1.0);
      // x_ij <= d_j
      lp::Row cap;
      cap.rel = lp::Rel::Le;
      cap.rhs = 0.0;
      cap.terms.emplace_back(v, 1.0);
      cap.terms.emplace_back(d_var[j], -1.0);
      p.add_row(std::move(cap));
    }
    SUU_CHECK_MSG(!cover.terms.empty(), "job " << j << " has no machine");
    p.add_row(std::move(cover));
    // d_j >= 1
    lp::Row dmin;
    dmin.rel = lp::Rel::Ge;
    dmin.rhs = 1.0;
    dmin.terms.emplace_back(d_var[j], 1.0);
    p.add_row(std::move(dmin));
  }
  for (int i = 0; i < inst.num_machines(); ++i) {
    auto& row = load_rows[i];
    if (row.terms.empty()) continue;
    row.terms.emplace_back(t_var, -1.0);
    row.rel = lp::Rel::Le;
    row.rhs = 0.0;
    p.add_row(std::move(row));
  }
  for (const auto& chain : chains) {
    lp::Row len;
    len.rel = lp::Rel::Le;
    len.rhs = 0.0;
    for (const int j : chain) len.terms.emplace_back(d_var[j], 1.0);
    len.terms.emplace_back(t_var, -1.0);
    p.add_row(std::move(len));
  }

  lp::SimplexOptions sopt;
  sopt.warm = warm;
  sopt.engine = engine;
  sopt.pricing = pricing;
  const lp::Solution sol = lp::solve_simplex(p, sopt);
  SUU_CHECK_MSG(sol.status == lp::Status::Optimal,
                "LP2 solve failed: " << lp::to_string(sol.status));

  Lp2Result out{sched::IntegralAssignment(inst.num_jobs(),
                                          inst.num_machines()),
                std::vector<std::int64_t>(inst.num_jobs(), 1),
                sol.x[t_var],
                sol.iterations,
                sol.phase1_iterations};

  // ---- Lemma 6 rounding: groups by floor(log2 ell'), source caps
  // floor(6 D*_jk), machine caps ceil(6 t*), group->machine edge caps
  // ceil(6 d*_j).
  flow::MaxFlow net(2);
  const int src = 0;
  const int sink = 1;
  std::vector<int> machine_node(inst.num_machines(), -1);
  const auto machine_cap =
      static_cast<flow::MaxFlow::Cap>(std::ceil(6.0 * sol.x[t_var] - 1e-9));
  auto get_machine_node = [&](int i) {
    if (machine_node[i] < 0) {
      machine_node[i] = net.add_node();
      net.add_edge(machine_node[i], sink,
                   std::max<flow::MaxFlow::Cap>(machine_cap, 0));
    }
    return machine_node[i];
  };

  struct GroupEdges {
    std::vector<int> edge_ids;
    std::vector<int> machine_ids;
  };
  std::vector<std::map<int, GroupEdges>> groups(jobs.size());
  std::int64_t total_demand = 0;
  for (std::size_t idx = 0; idx < jobs.size(); ++idx) {
    const int j = jobs[idx];
    const auto dj_cap = static_cast<flow::MaxFlow::Cap>(
        std::ceil(6.0 * sol.x[d_var[j]] - 1e-9));
    std::map<int, double> D;
    for (const auto& [i, v] : var_of[idx]) {
      const double val = sol.x[v];
      if (val <= kEps) continue;
      const double e = inst.ell_capped(i, j, kL);
      const int k = static_cast<int>(std::floor(std::log2(e)));
      D[k] += val;
    }
    for (const auto& [k, d] : D) {
      const auto cap = static_cast<std::int64_t>(std::floor(6.0 * d + 1e-9));
      if (cap <= 0) continue;
      const int node = net.add_node();
      net.add_edge(src, node, cap);
      total_demand += cap;
      GroupEdges ge;
      for (int i = 0; i < inst.num_machines(); ++i) {
        const double e = inst.ell_capped(i, j, kL);
        if (e <= kEps) continue;
        if (static_cast<int>(std::floor(std::log2(e))) != k) continue;
        ge.edge_ids.push_back(
            net.add_edge(node, get_machine_node(i), dj_cap));
        ge.machine_ids.push_back(i);
      }
      groups[idx].emplace(k, std::move(ge));
    }
  }

  const auto pushed = net.solve(src, sink);
  SUU_CHECK_MSG(pushed == total_demand,
                "Lemma 6 flow did not saturate: " << pushed << " of "
                                                  << total_demand);

  for (std::size_t idx = 0; idx < jobs.size(); ++idx) {
    const int j = jobs[idx];
    for (const auto& [k, ge] : groups[idx]) {
      (void)k;
      for (std::size_t e = 0; e < ge.edge_ids.size(); ++e) {
        const auto f = net.flow_on(ge.edge_ids[e]);
        if (f > 0) out.assignment.add(ge.machine_ids[e], j, f);
      }
    }
  }

  // Top-up starved jobs (numerical guard; see round_lp1).
  for (std::size_t idx = 0; idx < jobs.size(); ++idx) {
    const int j = jobs[idx];
    const double mass = out.assignment.delivered_mass(inst, j, kL);
    if (mass >= kL - 1e-7) continue;
    int best = -1;
    double best_e = 0.0;
    for (int i = 0; i < inst.num_machines(); ++i) {
      const double e = inst.ell_capped(i, j, kL);
      if (e > best_e) {
        best_e = e;
        best = i;
      }
    }
    SUU_CHECK(best >= 0);
    out.assignment.add(
        best, j, static_cast<std::int64_t>(std::ceil((kL - mass) / best_e)));
  }

  // Surplus trim (see round_lp1): only lowers loads and chain lengths.
  out.assignment = trim_assignment(inst, jobs, kL, out.assignment);

  for (const int j : jobs) {
    out.d[j] = std::max<std::int64_t>(1, out.assignment.job_length(j));
  }
  return out;
}

}  // namespace suu::rounding
