// LP2 (paper Section 4) and the Lemma 6 rounding for chain instances.
//
//   (LP2)  min t   s.t.  sum_i ell'_ij x_ij >= 1      for all j   (mass)
//                        sum_j x_ij         <= t      for all i   (load)
//                        sum_{j in Ck} d_j  <= t      for chains  (length)
//                        0 <= x_ij <= d_j,  d_j >= 1,  x integral
// with ell'_ij = min(ell_ij, 1).
//
// Lemma 6 rounds exactly like Lemma 2 except the group->machine edges carry
// capacity ceil(6 d*_j), which bounds the rounded job length d^_j and hence
// chain lengths by O(t*).
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.hpp"
#include "lp/problem.hpp"
#include "sched/assignment.hpp"

namespace suu::lp {
struct WarmStart;
}

namespace suu::rounding {

struct Lp2Result {
  sched::IntegralAssignment assignment;
  /// Rounded job lengths d^_j = max(1, max_i x^_ij) (every job, even those
  /// in no chain, gets a length).
  std::vector<std::int64_t> d;
  /// Fractional LP2 optimum (Lemma 5: a lower bound on O(E[T_OPT])).
  double t_fractional = 0.0;
  /// Simplex pivots spent on the relaxation; phase-1 share is 0 when a
  /// warm-start seed was accepted.
  int simplex_iterations = 0;
  int simplex_phase1_iterations = 0;
};

/// Solve the LP2 relaxation with the simplex and round per Lemma 6.
/// `chains` must partition a subset of jobs into precedence-ordered chains;
/// every job appearing in a chain gets mass >= 1.
///
/// `warm` (optional, not owned): simplex warm-start handle. Seeded from a
/// structurally identical previous LP2 solve — same machine count and the
/// same chain shape over capable pairs — the re-solve skips phase 1; a seed
/// that does not fit is rejected and the solve runs cold. The handle is
/// updated with this solve's final basis either way. `engine` picks the
/// simplex core (lp::SimplexEngine::Auto switches on program size) and
/// `pricing` the entering-variable rule (lp::PricingRule::Auto keeps the
/// per-engine defaults; any rule reaches the same optimum).
Lp2Result solve_and_round_lp2(const core::Instance& inst,
                              const std::vector<std::vector<int>>& chains,
                              lp::WarmStart* warm = nullptr,
                              lp::SimplexEngine engine =
                                  lp::SimplexEngine::Auto,
                              lp::PricingRule pricing =
                                  lp::PricingRule::Auto);

}  // namespace suu::rounding
