#include "rounding/lp1.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "flow/max_flow.hpp"
#include "lp/fw_cover.hpp"
#include "lp/problem.hpp"
#include "lp/simplex.hpp"
#include "util/check.hpp"

namespace suu::rounding {
namespace {

constexpr double kEps = 1e-12;

void check_jobs(const core::Instance& inst, const std::vector<int>& jobs) {
  SUU_CHECK_MSG(!jobs.empty(), "LP1 needs a non-empty job set");
  std::vector<char> seen(inst.num_jobs(), 0);
  for (const int j : jobs) {
    SUU_CHECK(j >= 0 && j < inst.num_jobs());
    SUU_CHECK_MSG(!seen[j], "duplicate job in J'");
    seen[j] = 1;
  }
}

Lp1Fractional solve_with_simplex(const core::Instance& inst,
                                 const std::vector<int>& jobs, double L,
                                 lp::WarmStart* warm,
                                 lp::SimplexEngine engine,
                                 lp::PricingRule pricing) {
  lp::Problem p;
  const int t_var = p.add_var(1.0);  // minimize t
  // Variables only for capable (ell' > 0) pairs.
  std::vector<std::vector<std::pair<int, int>>> var_of(jobs.size());
  std::vector<lp::Row> load_rows(inst.num_machines());
  for (std::size_t idx = 0; idx < jobs.size(); ++idx) {
    const int j = jobs[idx];
    lp::Row cover;
    cover.rel = lp::Rel::Ge;
    cover.rhs = 1.0;  // normalized by L
    for (int i = 0; i < inst.num_machines(); ++i) {
      const double e = inst.ell_capped(i, j, L);
      if (e <= kEps) continue;
      const int v = p.add_var(0.0);
      var_of[idx].emplace_back(i, v);
      cover.terms.emplace_back(v, e / L);
      load_rows[i].terms.emplace_back(v, 1.0);
    }
    SUU_CHECK_MSG(!cover.terms.empty(),
                  "job " << j << " has no capable machine");
    p.add_row(std::move(cover));
  }
  std::vector<int> load_row_of(inst.num_machines(), -1);
  for (int i = 0; i < inst.num_machines(); ++i) {
    auto& row = load_rows[i];
    if (row.terms.empty()) continue;
    row.terms.emplace_back(t_var, -1.0);
    row.rel = lp::Rel::Le;
    row.rhs = 0.0;
    load_row_of[i] = static_cast<int>(p.rows.size());
    p.add_row(std::move(row));
  }

  // Crash basis: LP1 always admits a primal-feasible starting basis that
  // skips phase 1 outright. Assign each job greedily to the machine
  // minimizing its resulting load (x_ij = L/ell' satisfies the cover row
  // with the surplus nonbasic) and take as basic columns the chosen x_ij
  // per cover row, t on the most-loaded machine's row (t = max load keeps
  // every other load slack nonnegative) and the remaining load slacks. The
  // basis matrix is block triangular — diagonal over the cover rows, the
  // nonsingular [t | slacks] block over the load rows — so the seed always
  // installs, and phase 1 (the bulk of a cold solve's pivots: ~4.3n at
  // n=1024) vanishes. Gated to the revised engine so the tableau's
  // byte-recorded trajectories stay untouched, and to callers without a
  // SEEDED warm-start handle so chained-solve hit/miss accounting keeps
  // its documented meaning. A caller handle with an EMPTY basis (a
  // capture handle, e.g. the registry recording a basis for future delta
  // children) still gets the crash seed — an empty handle promises a cold
  // trajectory, and the crash basis IS this function's cold trajectory on
  // the revised engine.
  lp::WarmStart crash;
  lp::WarmStart* caller = warm;
  const auto rows = static_cast<std::int64_t>(p.rows.size());
  const auto n_total =
      rows + p.num_vars + static_cast<std::int64_t>(jobs.size());
  const bool crashed = (warm == nullptr || warm->basis.empty()) &&
                       lp::will_use_revised(engine, rows, n_total);
  if (crashed) {
    std::vector<double> load(inst.num_machines(), 0.0);
    std::vector<int> chosen(jobs.size(), -1);   // var index per job
    std::vector<int> machine(jobs.size(), -1);  // its machine
    for (std::size_t idx = 0; idx < jobs.size(); ++idx) {
      const int j = jobs[idx];
      double best_load = 0.0;
      for (const auto& [i, v] : var_of[idx]) {
        const double step = L / inst.ell_capped(i, j, L);
        if (chosen[idx] < 0 || load[i] + step < best_load) {
          best_load = load[i] + step;
          chosen[idx] = v;
          machine[idx] = i;
        }
      }
      load[machine[idx]] = best_load;
    }
    int imax = 0;
    for (int i = 1; i < inst.num_machines(); ++i) {
      if (load[i] > load[imax]) imax = i;
    }
    crash.basis.assign(static_cast<std::size_t>(rows), -1);
    for (std::size_t idx = 0; idx < jobs.size(); ++idx) {
      crash.basis[idx] = chosen[idx];
    }
    // Every row is an inequality with rhs >= 0, so row r's slack is column
    // num_vars + r.
    for (int i = 0; i < inst.num_machines(); ++i) {
      const int r = load_row_of[i];
      if (r < 0) continue;
      crash.basis[static_cast<std::size_t>(r)] =
          i == imax ? t_var : p.num_vars + r;
    }
    warm = &crash;
  }

  lp::SimplexOptions sopt;
  sopt.warm = warm;
  sopt.engine = engine;
  sopt.pricing = pricing;
  const lp::Solution sol = lp::solve_simplex(p, sopt);
  SUU_CHECK_MSG(sol.status == lp::Status::Optimal,
                "LP1 solve failed: " << lp::to_string(sol.status));
  if (crashed && caller != nullptr) {
    // The solve ran through the crash handle, not the caller's: hand the
    // final basis back and book the solve as a miss — the caller's empty
    // handle carried no seed, exactly a cold solve's accounting.
    caller->basis = std::move(crash.basis);
    ++caller->misses;
  }

  Lp1Fractional frac;
  frac.t = sol.x[t_var];
  frac.lower_bound = frac.t;
  frac.simplex_iterations = sol.iterations;
  frac.simplex_phase1_iterations = sol.phase1_iterations;
  frac.ftran_calls = sol.ftran_calls;
  frac.ftran_nnz = sol.ftran_nnz;
  frac.x.resize(jobs.size());
  for (std::size_t idx = 0; idx < jobs.size(); ++idx) {
    for (const auto& [i, v] : var_of[idx]) {
      const double val = sol.x[v];
      if (val > kEps) frac.x[idx].emplace_back(i, val);
    }
  }
  return frac;
}

Lp1Fractional solve_with_fw(const core::Instance& inst,
                            const std::vector<int>& jobs, double L) {
  lp::CoverSystem sys;
  sys.n_machines = inst.num_machines();
  sys.cover.resize(jobs.size());
  sys.demand.assign(jobs.size(), L);
  for (std::size_t idx = 0; idx < jobs.size(); ++idx) {
    const int j = jobs[idx];
    for (int i = 0; i < inst.num_machines(); ++i) {
      const double e = inst.ell_capped(i, j, L);
      if (e > kEps) sys.cover[idx].emplace_back(i, e);
    }
    SUU_CHECK_MSG(!sys.cover[idx].empty(),
                  "job " << j << " has no capable machine");
  }
  const lp::FwSolution fw = lp::solve_fw_cover(sys);

  Lp1Fractional frac;
  frac.t = fw.t;
  frac.lower_bound = fw.lower_bound;
  frac.x.resize(jobs.size());
  for (std::size_t idx = 0; idx < jobs.size(); ++idx) {
    for (std::size_t k = 0; k < sys.cover[idx].size(); ++k) {
      const double val = fw.x[idx][k];
      if (val > kEps) frac.x[idx].emplace_back(sys.cover[idx][k].first, val);
    }
  }
  return frac;
}

}  // namespace

Lp1Fractional solve_lp1(const core::Instance& inst,
                        const std::vector<int>& jobs, double L,
                        const Lp1Options& opt) {
  check_jobs(inst, jobs);
  SUU_CHECK(L > 0);
  const bool use_simplex =
      opt.solver == Lp1Options::Solver::Simplex ||
      (opt.solver == Lp1Options::Solver::Auto &&
       static_cast<std::int64_t>(jobs.size()) * inst.num_machines() <=
           opt.simplex_size_limit);
  return use_simplex
             ? solve_with_simplex(inst, jobs, L, opt.warm, opt.engine,
                                  opt.pricing)
             : solve_with_fw(inst, jobs, L);
}

sched::IntegralAssignment trim_assignment(
    const core::Instance& inst, const std::vector<int>& jobs, double L,
    const sched::IntegralAssignment& x) {
  sched::IntegralAssignment out(inst.num_jobs(), inst.num_machines());
  std::vector<char> listed(inst.num_jobs(), 0);
  for (const int j : jobs) listed[static_cast<std::size_t>(j)] = 1;
  for (int j = 0; j < inst.num_jobs(); ++j) {
    if (!listed[static_cast<std::size_t>(j)]) {
      for (const auto& [i, s] : x.steps_for(j)) out.add(i, j, s);
      continue;
    }
    auto entries = x.steps_for(j);
    std::sort(entries.begin(), entries.end(),
              [&](const auto& a, const auto& b) {
                return inst.ell_capped(a.first, j, L) <
                       inst.ell_capped(b.first, j, L);
              });
    double mass = x.delivered_mass(inst, j, L);
    for (auto& [i, steps] : entries) {
      const double e = inst.ell_capped(i, j, L);
      std::int64_t removable = steps;
      if (e > 1e-12) {
        removable = std::min<std::int64_t>(
            steps,
            static_cast<std::int64_t>(std::floor((mass - L) / e + 1e-9)));
        removable = std::max<std::int64_t>(0, removable);
      }
      mass -= e * static_cast<double>(removable);
      if (steps - removable > 0) out.add(i, j, steps - removable);
    }
  }
  return out;
}

sched::IntegralAssignment round_lp1(const core::Instance& inst,
                                    const std::vector<int>& jobs, double L,
                                    const Lp1Fractional& frac, bool trim) {
  check_jobs(inst, jobs);
  SUU_CHECK(static_cast<std::size_t>(frac.x.size()) == jobs.size());

  // Group machines by k = floor(log2 ell') per job; D[jk] = total fractional
  // assignment of group (j, k).
  struct Group {
    std::int64_t cap = 0;  // floor(6 * D_jk)
    int node = -1;
    std::vector<int> edge_ids;     // flow edge per member machine
    std::vector<int> machine_ids;  // aligned with edge_ids
  };
  // Per job: map from k to group.
  std::vector<std::map<int, Group>> groups(jobs.size());
  // First pass: accumulate D_jk.
  std::vector<std::map<int, double>> D(jobs.size());
  for (std::size_t idx = 0; idx < jobs.size(); ++idx) {
    const int j = jobs[idx];
    for (const auto& [i, val] : frac.x[idx]) {
      const double e = inst.ell_capped(i, j, L);
      if (e <= kEps || val <= kEps) continue;
      const int k = static_cast<int>(std::floor(std::log2(e)));
      D[idx][k] += val;
    }
  }

  // Build the flow network.
  flow::MaxFlow net(2);
  const int src = 0;
  const int sink = 1;
  std::vector<int> machine_node(inst.num_machines(), -1);
  std::vector<int> machine_edge(inst.num_machines(), -1);
  const auto machine_cap = static_cast<flow::MaxFlow::Cap>(
      std::ceil(6.0 * frac.t - 1e-9));
  auto get_machine_node = [&](int i) {
    if (machine_node[i] < 0) {
      machine_node[i] = net.add_node();
      machine_edge[i] = net.add_edge(machine_node[i], sink,
                                     std::max<flow::MaxFlow::Cap>(
                                         machine_cap, 0));
    }
    return machine_node[i];
  };

  std::int64_t total_demand = 0;
  for (std::size_t idx = 0; idx < jobs.size(); ++idx) {
    const int j = jobs[idx];
    for (const auto& [k, d] : D[idx]) {
      Group g;
      g.cap = static_cast<std::int64_t>(std::floor(6.0 * d + 1e-9));
      if (g.cap <= 0) continue;
      g.node = net.add_node();
      net.add_edge(src, g.node, g.cap);
      total_demand += g.cap;
      // Edge to every machine in this group (paper: any i with matching k),
      // not just those with positive fractional mass.
      for (int i = 0; i < inst.num_machines(); ++i) {
        const double e = inst.ell_capped(i, j, L);
        if (e <= kEps) continue;
        if (static_cast<int>(std::floor(std::log2(e))) != k) continue;
        const int edge =
            net.add_edge(g.node, get_machine_node(i), flow::MaxFlow::kInf);
        g.edge_ids.push_back(edge);
        g.machine_ids.push_back(i);
      }
      groups[idx].emplace(k, std::move(g));
    }
  }

  const auto pushed = net.solve(src, sink);
  SUU_CHECK_MSG(pushed == total_demand,
                "Lemma 2 flow did not saturate: " << pushed << " of "
                                                  << total_demand);

  sched::IntegralAssignment x(inst.num_jobs(), inst.num_machines());
  for (std::size_t idx = 0; idx < jobs.size(); ++idx) {
    const int j = jobs[idx];
    for (const auto& [k, g] : groups[idx]) {
      (void)k;
      for (std::size_t e = 0; e < g.edge_ids.size(); ++e) {
        const auto f = net.flow_on(g.edge_ids[e]);
        if (f > 0) x.add(g.machine_ids[e], j, f);
      }
    }
  }

  // Numerical safety net: the theory guarantees mass >= L; if float error
  // starved a job, top it up on its best machine (documented in DESIGN.md).
  for (std::size_t idx = 0; idx < jobs.size(); ++idx) {
    const int j = jobs[idx];
    double mass = x.delivered_mass(inst, j, L);
    if (mass >= L - 1e-7) continue;
    int best = -1;
    double best_e = 0.0;
    for (int i = 0; i < inst.num_machines(); ++i) {
      const double e = inst.ell_capped(i, j, L);
      if (e > best_e) {
        best_e = e;
        best = i;
      }
    }
    SUU_CHECK(best >= 0);
    const auto extra =
        static_cast<std::int64_t>(std::ceil((L - mass) / best_e));
    x.add(best, j, extra);
  }
  return trim ? trim_assignment(inst, jobs, L, x) : x;
}

Lp1Schedule build_lp1_schedule(const core::Instance& inst,
                               const std::vector<int>& jobs, double L,
                               const Lp1Options& opt) {
  Lp1Schedule out{sched::IntegralAssignment(inst.num_jobs(),
                                            inst.num_machines()),
                  sched::ObliviousSchedule(inst.num_machines()), 0.0, 0.0};
  const Lp1Fractional frac = solve_lp1(inst, jobs, L, opt);
  out.t_fractional = frac.t;
  out.lower_bound = frac.lower_bound;
  out.assignment = round_lp1(inst, jobs, L, frac);
  out.schedule = sched::ObliviousSchedule::from_assignment(out.assignment);
  return out;
}

}  // namespace suu::rounding
