// Deterministic, splittable pseudo-random number generation.
//
// libsuu never uses std::random_device or global RNG state: every stochastic
// component receives an explicit Rng (or derives one with Rng::child), so a
// whole experiment is reproducible from a single master seed regardless of
// thread count or scheduling order.
//
// Core generator: xoshiro256** (Blackman & Vigna), seeded via SplitMix64.
#pragma once

#include <cstdint>

namespace suu::util {

/// A small, fast, deterministic 64-bit PRNG (xoshiro256**).
///
/// Satisfies UniformRandomBitGenerator so it can also drive <random>
/// distributions, though libsuu uses the built-in helpers below for
/// cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Construct from a master seed. Any value (including 0) is fine.
  explicit Rng(std::uint64_t seed) noexcept;

  /// Raw 64 random bits.
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1) with 53 bits of mantissa.
  double uniform01() noexcept;

  /// Uniform double in the open interval (0, 1); never returns 0.
  /// (The SUU* reformulation draws r_j from the open interval.)
  double uniform01_open() noexcept;

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection).
  std::uint64_t uniform_below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) noexcept;

  /// Bernoulli trial; p outside [0,1] is clamped.
  bool bernoulli(double p) noexcept;

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate) noexcept;

  /// Derive an independent child stream. Children with distinct `stream`
  /// values (and distinct parents) produce statistically independent
  /// sequences; the construction hashes (parent state, stream).
  [[nodiscard]] Rng child(std::uint64_t stream) const noexcept;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() noexcept { return next(); }

 private:
  std::uint64_t s_[4];
};

}  // namespace suu::util
