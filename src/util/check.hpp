// Lightweight invariant checking used throughout libsuu.
//
// SUU_CHECK is always on: it guards API contracts and cheap invariants whose
// violation indicates a caller bug (throws suu::util::CheckError).
// SUU_ASSERT compiles away in NDEBUG builds and guards internal invariants
// that are expensive to test.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace suu::util {

/// Thrown when an SUU_CHECK contract is violated.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "SUU_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace suu::util

#define SUU_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) ::suu::util::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define SUU_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) {                                                   \
      std::ostringstream suu_check_os_;                              \
      suu_check_os_ << msg;                                          \
      ::suu::util::check_failed(#expr, __FILE__, __LINE__,           \
                                suu_check_os_.str());                \
    }                                                                \
  } while (0)

#ifdef NDEBUG
#define SUU_ASSERT(expr) ((void)0)
#else
#define SUU_ASSERT(expr) SUU_CHECK(expr)
#endif
