#include "util/cli.hpp"

#include <cstdlib>
#include <string_view>

namespace suu::util {

Args::Args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.size() < 3 || arg.substr(0, 2) != "--") continue;
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      // insert_or_assign (rather than operator[] = "1") sidesteps a GCC 12
      // -Wrestrict false positive on the inlined char* string assignment.
      kv_.insert_or_assign(std::string(arg), std::string("1"));
    } else {
      kv_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
}

bool Args::has(const std::string& key) const { return kv_.count(key) > 0; }

std::int64_t Args::get_int(const std::string& key, std::int64_t def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Args::get_double(const std::string& key, double def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

std::string Args::get_string(const std::string& key,
                             const std::string& def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return it->second;
}

}  // namespace suu::util
