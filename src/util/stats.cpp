#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace suu::util {

void OnlineStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineStats::sem() const noexcept {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

Estimate make_estimate(const OnlineStats& s) noexcept {
  Estimate e;
  e.mean = s.mean();
  e.ci95_half = s.ci95_half();
  e.stddev = s.stddev();
  e.min = s.count() ? s.min() : 0.0;
  e.max = s.count() ? s.max() : 0.0;
  e.n = s.count();
  return e;
}

void Sampler::merge(const Sampler& other) {
  xs_.insert(xs_.end(), other.xs_.begin(), other.xs_.end());
  sorted_ = false;
}

double Sampler::quantile(double q) const {
  SUU_CHECK_MSG(!xs_.empty(), "quantile of empty sample");
  SUU_CHECK(q >= 0.0 && q <= 1.0);
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
  if (xs_.size() == 1) return xs_[0];
  const double pos = q * static_cast<double>(xs_.size() - 1);
  const auto i = static_cast<std::size_t>(pos);
  if (i + 1 >= xs_.size()) return xs_.back();
  const double frac = pos - static_cast<double>(i);
  return xs_[i] * (1.0 - frac) + xs_[i + 1] * frac;
}

double Sampler::mean() const {
  SUU_CHECK_MSG(!xs_.empty(), "mean of empty sample");
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

}  // namespace suu::util
