// Aligned text tables for benchmark output (markdown-compatible) plus CSV.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace suu::util {

/// Collects rows of strings and prints them as an aligned markdown table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Add a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Print as an aligned, pipe-delimited (markdown) table.
  void print(std::ostream& os) const;

  /// Print as CSV (no escaping beyond quoting cells containing commas).
  void print_csv(std::ostream& os) const;

  /// Print as JSON lines: one object per row keyed by header. Cells that
  /// parse as plain JSON numbers are emitted unquoted.
  void print_json(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `prec` significant decimal places.
std::string fmt(double x, int prec = 3);
/// Format "mean ± ci" for an estimate-like pair.
std::string fmt_pm(double mean, double half, int prec = 3);

}  // namespace suu::util
