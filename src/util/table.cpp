#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace suu::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SUU_CHECK_MSG(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  SUU_CHECK_MSG(cells.size() == headers_.size(),
                "row has " << cells.size() << " cells, expected "
                           << headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      if (row[c].find(',') != std::string::npos) {
        os << '"' << row[c] << '"';
      } else {
        os << row[c];
      }
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

namespace {

// Strict JSON number grammar: -?digits(.digits)?([eE][+-]?digits)?
// (rejects "inf"/"nan"/hex, which strtod would accept).
bool is_json_number(const std::string& s) {
  std::size_t i = 0;
  const std::size_t n = s.size();
  auto digits = [&] {
    const std::size_t start = i;
    while (i < n && s[i] >= '0' && s[i] <= '9') ++i;
    return i > start;
  };
  if (i < n && s[i] == '-') ++i;
  const std::size_t int_start = i;
  if (!digits()) return false;
  // JSON forbids leading zeros in the integer part ("007" is not a number).
  if (i - int_start > 1 && s[int_start] == '0') return false;
  if (i < n && s[i] == '.') {
    ++i;
    if (!digits()) return false;
  }
  if (i < n && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < n && (s[i] == '+' || s[i] == '-')) ++i;
    if (!digits()) return false;
  }
  return i == n;
}

void print_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void Table::print_json(std::ostream& os) const {
  for (const auto& row : rows_) {
    os << '{';
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      print_json_string(os, headers_[c]);
      os << ':';
      if (is_json_number(row[c])) {
        os << row[c];
      } else {
        print_json_string(os, row[c]);
      }
    }
    os << "}\n";
  }
}

std::string fmt(double x, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << x;
  return os.str();
}

std::string fmt_pm(double mean, double half, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << mean << " ± " << half;
  return os.str();
}

}  // namespace suu::util
