#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace suu::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SUU_CHECK_MSG(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  SUU_CHECK_MSG(cells.size() == headers_.size(),
                "row has " << cells.size() << " cells, expected "
                           << headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      if (row[c].find(',') != std::string::npos) {
        os << '"' << row[c] << '"';
      } else {
        os << row[c];
      }
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double x, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << x;
  return os.str();
}

std::string fmt_pm(double mean, double half, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << mean << " ± " << half;
  return os.str();
}

}  // namespace suu::util
