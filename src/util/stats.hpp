// Summary statistics for Monte-Carlo estimation.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace suu::util {

/// Numerically stable streaming mean/variance (Welford) with min/max.
/// Supports merging partial accumulators from worker threads.
class OnlineStats {
 public:
  void add(double x) noexcept;
  void merge(const OnlineStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  /// Standard error of the mean; 0 when fewer than two samples.
  double sem() const noexcept;
  /// Half-width of the normal-approximation 95% confidence interval.
  double ci95_half() const noexcept { return 1.959963984540054 * sem(); }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// A point estimate with uncertainty, as returned by simulation runners.
struct Estimate {
  double mean = 0.0;
  double ci95_half = 0.0;  ///< normal-approx 95% CI half-width
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t n = 0;  ///< number of replications

  double lo() const noexcept { return mean - ci95_half; }
  double hi() const noexcept { return mean + ci95_half; }
};

/// Build an Estimate from a finished accumulator.
Estimate make_estimate(const OnlineStats& s) noexcept;

/// Sample container with quantile queries (used for whp-tail measurements).
class Sampler {
 public:
  void add(double x) { xs_.push_back(x); }
  void merge(const Sampler& other);
  std::size_t count() const noexcept { return xs_.size(); }
  /// Empirical q-quantile, q in [0,1]; linear interpolation between order
  /// statistics. Requires at least one sample.
  double quantile(double q) const;
  double mean() const;
  const std::vector<double>& samples() const noexcept { return xs_; }

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
};

}  // namespace suu::util
