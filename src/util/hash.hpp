// Small deterministic 64-bit content hashing, shared by the instance
// fingerprint (core::Instance::fingerprint) and the precompute-cache keys
// (api::PrecomputeCache).
//
// The mixer is SplitMix64's finalizer: cheap, stateless, and identical on
// every platform — cache keys and fingerprints are stable across runs,
// machines and thread counts. These are content hashes for deduplication,
// not cryptographic digests.
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

namespace suu::util {

/// SplitMix64 finalizer: a well-mixed permutation of 64-bit values.
constexpr std::uint64_t hash_mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Fold `v` into the running hash `h` (order-sensitive).
constexpr std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) noexcept {
  return hash_mix(h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

/// Fold a double by bit pattern (so -0.0 != 0.0 and NaNs hash by payload;
/// fingerprints distinguish exactly what the solvers would see).
inline std::uint64_t hash_combine(std::uint64_t h, double v) noexcept {
  return hash_combine(h, std::bit_cast<std::uint64_t>(v));
}

/// Fold a string byte-wise (FNV-1a style inner loop, then mixed).
inline std::uint64_t hash_combine(std::uint64_t h, std::string_view s) noexcept {
  std::uint64_t f = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    f ^= static_cast<unsigned char>(c);
    f *= 0x100000001b3ULL;
  }
  return hash_combine(hash_combine(h, f), static_cast<std::uint64_t>(s.size()));
}

}  // namespace suu::util
