#include "util/thread_pool.hpp"

#include <algorithm>

namespace suu::util {

ThreadPool::ThreadPool(unsigned n_threads) {
  if (n_threads == 0) {
    n_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (unsigned i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lk(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lk(mu_);
  cv_done_.wait(lk, [this] { return in_flight_ == 0; });
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    lk.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop requested and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard lk(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard lk(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& f) {
  if (n == 0) return;
  if (n == 1 || workers_.size() <= 1) {
    for (std::size_t i = 0; i < n; ++i) f(i);
    return;
  }
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  const unsigned n_workers =
      static_cast<unsigned>(std::min<std::size_t>(workers_.size(), n));
  for (unsigned w = 0; w < n_workers; ++w) {
    submit([next, n, &f] {
      for (;;) {
        const std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        f(i);
      }
    });
  }
  wait();
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace suu::util
