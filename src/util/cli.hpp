// Minimal --key=value command-line parsing for bench and example binaries.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace suu::util {

/// Parses arguments of the form --key=value or bare --flag.
/// Unrecognized positional arguments are ignored (benchmark binaries pass
/// google-benchmark flags through).
class Args {
 public:
  Args(int argc, char** argv);

  bool has(const std::string& key) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  std::string get_string(const std::string& key, const std::string& def) const;

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace suu::util
