// Small vectorized kernels for the simplex hot loops.
//
// The dense work left in both engines after sparsity is exploited is a
// handful of stream kernels: "subtract f times the pivot row from this row"
// (tableau elimination, reduced-cost update) and scattered variants of the
// same over an eta's support. This header gives them one home:
//
//  - axpy_minus:   y[i] -= a * x[i] over a contiguous range. Compiled to
//    SSE2 mul+sub when available. Because the update is element-wise and
//    never reassociates or fuses (no FMA), the vector path produces exactly
//    the bits of the scalar fallback — which is what lets the tableau
//    engine, the repo's byte-stability anchor, use it.
//  - dot:          4-accumulator unrolled reduction. Reassociates, so it is
//    NOT bit-stable against a sequential loop; only use it where the caller
//    tolerates that (nothing byte-recorded does).
//  - gather_axpy_minus: v[rows[k]] -= a * vals[k] over an index list; the
//    eta-file FTRAN inner loop. Element-wise, so bit-stable.
//
// aligned_vector allocates on cache-line boundaries so row starts of the
// tableau arena never straddle lines; the kernels themselves use unaligned
// loads and accept any pointer.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace suu::util::simd {

inline constexpr std::size_t kAlign = 64;  // cache line

/// Minimal aligned allocator (C++17 aligned operator new) for the dense
/// arenas the kernels stream over.
template <typename T>
struct AlignedAllocator {
  using value_type = T;
  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}
  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kAlign}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kAlign});
  }
  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept {
    return false;
  }
};

template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

/// y[i] -= a * x[i] for i in [0, n). Bit-identical to the scalar loop on
/// every path (element-wise multiply + subtract; no FMA contraction).
inline void axpy_minus(double* y, const double* x, double a, int n) {
  int i = 0;
#if defined(__SSE2__)
  const __m128d va = _mm_set1_pd(a);
  for (; i + 4 <= n; i += 4) {
    const __m128d y0 = _mm_loadu_pd(y + i);
    const __m128d y1 = _mm_loadu_pd(y + i + 2);
    const __m128d x0 = _mm_loadu_pd(x + i);
    const __m128d x1 = _mm_loadu_pd(x + i + 2);
    _mm_storeu_pd(y + i, _mm_sub_pd(y0, _mm_mul_pd(va, x0)));
    _mm_storeu_pd(y + i + 2, _mm_sub_pd(y1, _mm_mul_pd(va, x1)));
  }
#else
  for (; i + 4 <= n; i += 4) {
    y[i] -= a * x[i];
    y[i + 1] -= a * x[i + 1];
    y[i + 2] -= a * x[i + 2];
    y[i + 3] -= a * x[i + 3];
  }
#endif
  for (; i < n; ++i) y[i] -= a * x[i];
}

/// sum of x[i] * y[i]. Unrolled with independent accumulators: fast, but the
/// reassociation means the result can differ in the last ulps from a
/// sequential loop. Do not use where bytes are recorded.
inline double dot(const double* x, const double* y, int n) {
  int i = 0;
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  for (; i + 4 <= n; i += 4) {
    s0 += x[i] * y[i];
    s1 += x[i + 1] * y[i + 1];
    s2 += x[i + 2] * y[i + 2];
    s3 += x[i + 3] * y[i + 3];
  }
  double s = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) s += x[i] * y[i];
  return s;
}

/// v[rows[k]] -= a * vals[k] for k in [0, nnz): the scattered eta update.
/// Element-wise over distinct rows, so bit-identical to the naive loop.
inline void gather_axpy_minus(double* v, const int* rows, const double* vals,
                              int nnz, double a) {
  int k = 0;
  for (; k + 4 <= nnz; k += 4) {
    v[rows[k]] -= a * vals[k];
    v[rows[k + 1]] -= a * vals[k + 1];
    v[rows[k + 2]] -= a * vals[k + 2];
    v[rows[k + 3]] -= a * vals[k + 3];
  }
  for (; k < nnz; ++k) v[rows[k]] -= a * vals[k];
}

}  // namespace suu::util::simd
