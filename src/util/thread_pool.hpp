// A small fixed-size thread pool used to parallelize Monte-Carlo
// replications and parameter sweeps.
//
// Determinism contract: parallel_for(n, f) calls f(i) exactly once for each
// i in [0, n), from unspecified threads. Callers that need reproducible
// randomness derive a per-index Rng child stream from the master seed, so
// results are independent of thread count and interleaving.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace suu::util {

class ThreadPool {
 public:
  /// Spawn `n_threads` workers (defaults to hardware concurrency, at least 1).
  explicit ThreadPool(unsigned n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Enqueue a task; tasks may not touch the pool itself.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have finished. Rethrows the first
  /// exception raised by any task (others are dropped).
  void wait();

  /// Run f(i) for all i in [0, n), distributing work across the pool and
  /// the calling thread. Blocks until done; rethrows the first exception.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& f);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

/// Convenience: a process-wide default pool (lazily constructed).
ThreadPool& default_pool();

}  // namespace suu::util
