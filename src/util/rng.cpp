#include "util/rng.hpp"

#include <cmath>

namespace suu::util {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// SplitMix64: used to expand a 64-bit seed into generator state and to mix
// (state, stream) pairs when deriving child streams.
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // xoshiro's all-zero state is a fixed point; splitmix64 cannot produce
  // four zero outputs from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform01_open() noexcept {
  double u;
  do {
    u = uniform01();
  } while (u == 0.0);
  return u;
}

std::uint64_t Rng::uniform_below(std::uint64_t n) noexcept {
  // Lemire-style rejection to avoid modulo bias.
  if (n == 0) return 0;  // degenerate; callers check, but stay noexcept-safe
  const std::uint64_t threshold = (-n) % n;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // hi==lo => span 1
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  return lo + static_cast<std::int64_t>(uniform_below(span));
}

double Rng::uniform_real(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double rate) noexcept {
  return -std::log(uniform01_open()) / rate;
}

Rng Rng::child(std::uint64_t stream) const noexcept {
  // Mix the full parent state with the stream id so distinct parents and
  // distinct stream ids both yield unrelated children.
  std::uint64_t x = s_[0];
  std::uint64_t h = splitmix64(x);
  x = s_[1] ^ (stream * 0x9E3779B97f4A7C15ULL);
  h ^= splitmix64(x);
  x = s_[2] + stream;
  h += splitmix64(x);
  x = s_[3] ^ rotl(stream, 31);
  h ^= splitmix64(x);
  return Rng(h);
}

}  // namespace suu::util
