#include "algos/suu_t.hpp"

#include "lp/simplex.hpp"
#include "util/check.hpp"

namespace suu::algos {

SuuTPolicy::SuuTPolicy(SuuCPolicy::Config cfg) : cfg_(std::move(cfg)) {}

SuuTPolicy::SuuTPolicy(SuuCPolicy::Config cfg,
                       std::shared_ptr<const BlockCache> cache)
    : cfg_(std::move(cfg)), cache_(std::move(cache)) {}

std::shared_ptr<const SuuTPolicy::BlockCache> SuuTPolicy::precompute(
    const core::Instance& inst, bool warm_start, lp::SimplexEngine engine,
    lp::PricingRule pricing, lp::WarmStart* chain) {
  auto cache = std::make_shared<BlockCache>();
  cache->decomp = chains::decompose_forest(inst.dag());
  lp::WarmStart local;
  lp::WarmStart* warm =
      warm_start ? (chain != nullptr ? chain : &local) : nullptr;
  for (const auto& block : cache->decomp.blocks) {
    cache->lp2.push_back(
        SuuCPolicy::precompute(inst, block, warm, engine, pricing));
  }
  return cache;
}

void SuuTPolicy::reset(const core::Instance& inst, util::Rng rng) {
  inst_ = &inst;
  rng_ = rng;
  decomp_ = cache_ ? cache_->decomp : chains::decompose_forest(inst.dag());
  SUU_CHECK_MSG(decomp_.num_blocks() > 0, "empty decomposition");
  block_ = 0;
  activate_block(0);
}

void SuuTPolicy::activate_block(int b) {
  SuuCPolicy::Config cfg = cfg_;
  cfg.chains = decomp_.blocks[static_cast<std::size_t>(b)];
  if (cache_) cfg.lp2 = cache_->lp2[static_cast<std::size_t>(b)];
  block_jobs_.clear();
  for (const auto& chain : cfg.chains) {
    block_jobs_.insert(block_jobs_.end(), chain.begin(), chain.end());
  }
  sub_ = std::make_unique<SuuCPolicy>(std::move(cfg));
  sub_->reset(*inst_, rng_.child(static_cast<std::uint64_t>(b) + 1));
}

bool SuuTPolicy::block_done(const sim::ExecState& state) const {
  for (const int j : block_jobs_) {
    if (!state.completed(j)) return false;
  }
  return true;
}

sched::Assignment SuuTPolicy::decide(const sim::ExecState& state) {
  while (block_done(state)) {
    if (block_ + 1 >= decomp_.num_blocks()) {
      // Everything this policy owns is finished; the engine will stop on
      // its own once all jobs complete.
      return sched::Assignment(
          static_cast<std::size_t>(inst_->num_machines()), sched::kIdle);
    }
    activate_block(++block_);
  }
  return sub_->decide(state);
}

}  // namespace suu::algos
