// Width-parameterized exact optimum — the Malewicz [12] regime.
//
// The subset-lattice solver (exact_dp.hpp) is exponential in n. Malewicz
// showed SUU is polynomial when the machine count AND the dag width are
// constant; this solver realizes that: decompose the poset into
// w = width(G) chains (Dilworth, chains/dilworth.hpp); every reachable
// "completed" set is a downset and therefore intersects each chain in a
// prefix, so states are per-chain progress tuples (c_1, ..., c_w) — at most
// prod (|P_i|+1) <= (n/w + 1)^w of them instead of 2^n. Value iteration and
// assignment enumeration then proceed exactly as in the subset DP.
//
// For width-2 chains of total length 24 this is ~169 states versus 16.7M
// subsets. Agreement with the subset DP is tested on every family both can
// handle.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/instance.hpp"
#include "sim/engine.hpp"

namespace suu::algos {

class WidthExactSolver {
 public:
  struct Options {
    /// Refuse instances whose state space exceeds this.
    std::int64_t max_states = 4'000'000;
    /// Refuse per-state assignment enumerations beyond this.
    std::int64_t max_assignments_per_state = 1 << 22;
  };

  explicit WidthExactSolver(const core::Instance& inst)
      : WidthExactSolver(inst, Options{}) {}
  WidthExactSolver(const core::Instance& inst, Options opt);

  /// E[T_OPT] of the instance.
  double expected_makespan() const;

  int width() const noexcept { return w_; }
  std::int64_t num_states() const noexcept {
    return static_cast<std::int64_t>(val_.size());
  }

  /// Optimal machine->job assignment for the state described by the set of
  /// completed jobs (must be a valid downset).
  std::vector<int> best_assignment(const std::vector<char>& completed) const;

  const std::vector<std::vector<int>>& chains() const noexcept {
    return chains_;
  }

 private:
  std::int64_t encode(const std::vector<int>& counts) const;

  const core::Instance* inst_;
  int w_ = 0;
  std::vector<std::vector<int>> chains_;
  std::vector<int> radix_;          // |P_i| + 1 per chain
  std::vector<int> chain_of_;       // job -> chain index
  std::vector<int> pos_in_chain_;   // job -> position
  std::vector<double> val_;         // by encoded tuple; inf = unreachable
  std::vector<std::int16_t> best_;  // [state * m + i] -> job id
};

/// Plays the width solver's optimal policy.
class WidthOptPolicy : public sim::Policy {
 public:
  explicit WidthOptPolicy(std::shared_ptr<const WidthExactSolver> solver);
  std::string name() const override { return "width-exact-opt"; }
  sched::Assignment decide(const sim::ExecState& state) override;

 private:
  std::shared_ptr<const WidthExactSolver> solver_;
};

}  // namespace suu::algos
