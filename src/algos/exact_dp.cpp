#include "algos/exact_dp.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace suu::algos {

ExactSolver::ExactSolver(const core::Instance& inst, Options opt)
    : inst_(&inst), n_(inst.num_jobs()), m_(inst.num_machines()) {
  SUU_CHECK_MSG(n_ <= opt.max_jobs,
                "exact DP limited to " << opt.max_jobs << " jobs");
  SUU_CHECK_MSG(n_ < 31, "mask width");
  full_mask_ = (n_ == 31) ? 0 : ((1u << n_) - 1);

  const std::size_t n_masks = std::size_t{1} << n_;
  val_.assign(n_masks, std::numeric_limits<double>::infinity());
  best_.assign(n_masks * static_cast<std::size_t>(m_), -1);
  val_[0] = 0.0;

  // Predecessor masks.
  std::vector<std::uint32_t> pred_mask(n_, 0);
  for (int j = 0; j < n_; ++j) {
    for (const int p : inst.dag().preds(j)) pred_mask[j] |= 1u << p;
  }

  // Masks ordered by popcount so every successor state is already solved.
  std::vector<std::uint32_t> order;
  order.reserve(n_masks - 1);
  for (std::uint32_t mask = 1; mask <= full_mask_; ++mask) order.push_back(mask);
  std::stable_sort(order.begin(), order.end(),
                   [](std::uint32_t a, std::uint32_t b) {
                     return std::popcount(a) < std::popcount(b);
                   });

  std::vector<int> elig;
  std::vector<double> fail;      // per eligible job, for one assignment
  std::vector<int> asg(m_, 0);   // odometer over eligible-job indices

  for (const std::uint32_t mask : order) {
    // Reachable = completed set closed under predecessors.
    const std::uint32_t completed = full_mask_ & ~mask;
    bool reachable = true;
    for (int j = 0; j < n_ && reachable; ++j) {
      if ((completed >> j) & 1u) {
        if ((pred_mask[j] & mask) != 0) reachable = false;
      }
    }
    if (!reachable) continue;

    elig.clear();
    for (int j = 0; j < n_; ++j) {
      if (((mask >> j) & 1u) && (pred_mask[j] & mask) == 0) elig.push_back(j);
    }
    SUU_CHECK_MSG(!elig.empty(), "acyclic dag must expose an eligible job");
    const int e = static_cast<int>(elig.size());

    std::int64_t n_asg = 1;
    for (int i = 0; i < m_; ++i) {
      n_asg *= e;
      SUU_CHECK_MSG(n_asg <= opt.max_assignments_per_state,
                    "assignment enumeration too large; shrink the instance");
    }

    double best_val = std::numeric_limits<double>::infinity();
    std::vector<std::int16_t> best_asg(static_cast<std::size_t>(m_), -1);

    std::fill(asg.begin(), asg.end(), 0);
    fail.assign(static_cast<std::size_t>(e), 1.0);

    for (std::int64_t a = 0; a < n_asg; ++a) {
      // Failure probability per eligible job under this assignment.
      std::fill(fail.begin(), fail.end(), 1.0);
      for (int i = 0; i < m_; ++i) {
        fail[static_cast<std::size_t>(asg[i])] *=
            inst.q(i, elig[static_cast<std::size_t>(asg[i])]);
      }

      // Split eligible jobs: sure successes (f == 0) vs stochastic ones.
      std::uint32_t sure_bits = 0;
      std::vector<int> sto;       // indices into elig
      for (int k = 0; k < e; ++k) {
        if (fail[static_cast<std::size_t>(k)] <= 0.0) {
          sure_bits |= 1u << elig[static_cast<std::size_t>(k)];
        } else {
          sto.push_back(k);
        }
      }
      const int s = static_cast<int>(sto.size());

      // Enumerate success subsets T of the stochastic jobs with incremental
      // probabilities: p[T] = p[T\low] * (1-f)/f of the toggled job.
      const std::uint32_t t_count = 1u << s;
      double p0 = 1.0;
      for (const int k : sto) p0 *= fail[static_cast<std::size_t>(k)];

      double expect = 0.0;   // sum P(T) * val[next]
      double selfp = 0.0;    // probability mass of the self-loop
      // Iterate T; maintain p via per-bit ratios (f > 0 for stochastic).
      std::vector<double> ratio(static_cast<std::size_t>(s));
      std::vector<std::uint32_t> bits(static_cast<std::size_t>(s));
      for (int b = 0; b < s; ++b) {
        const int k = sto[static_cast<std::size_t>(b)];
        const double f = fail[static_cast<std::size_t>(k)];
        ratio[static_cast<std::size_t>(b)] = (1.0 - f) / f;
        bits[static_cast<std::size_t>(b)] =
            1u << elig[static_cast<std::size_t>(k)];
      }
      std::vector<double> p(t_count);
      std::vector<std::uint32_t> succ_bits(t_count);
      p[0] = p0;
      succ_bits[0] = sure_bits;
      for (std::uint32_t T = 1; T < t_count; ++T) {
        const int low = std::countr_zero(T);
        p[T] = p[T & (T - 1)] * ratio[static_cast<std::size_t>(low)];
        succ_bits[T] =
            succ_bits[T & (T - 1)] | bits[static_cast<std::size_t>(low)];
      }
      for (std::uint32_t T = 0; T < t_count; ++T) {
        if (succ_bits[T] == 0) {
          selfp += p[T];
        } else {
          expect += p[T] * val_[mask & ~succ_bits[T]];
        }
      }

      double v;
      if (selfp >= 1.0 - 1e-15) {
        v = std::numeric_limits<double>::infinity();
      } else {
        v = (1.0 + expect) / (1.0 - selfp);
      }
      if (v < best_val) {
        best_val = v;
        for (int i = 0; i < m_; ++i) {
          best_asg[static_cast<std::size_t>(i)] = static_cast<std::int16_t>(
              elig[static_cast<std::size_t>(asg[i])]);
        }
      }

      // Odometer.
      for (int i = 0; i < m_; ++i) {
        if (++asg[i] < e) break;
        asg[i] = 0;
      }
    }

    SUU_CHECK_MSG(std::isfinite(best_val),
                  "no assignment makes progress from state " << mask);
    val_[mask] = best_val;
    std::copy(best_asg.begin(), best_asg.end(),
              best_.begin() + static_cast<std::ptrdiff_t>(
                                  static_cast<std::size_t>(mask) *
                                  static_cast<std::size_t>(m_)));
  }
}

double ExactSolver::value(std::uint32_t remaining_mask) const {
  SUU_CHECK(remaining_mask <= full_mask_);
  return val_[remaining_mask];
}

std::vector<int> ExactSolver::best_assignment(
    std::uint32_t remaining_mask) const {
  SUU_CHECK(remaining_mask <= full_mask_ && remaining_mask != 0);
  std::vector<int> a(static_cast<std::size_t>(m_));
  for (int i = 0; i < m_; ++i) {
    a[static_cast<std::size_t>(i)] =
        best_[static_cast<std::size_t>(remaining_mask) *
                  static_cast<std::size_t>(m_) +
              static_cast<std::size_t>(i)];
  }
  return a;
}

ExactOptPolicy::ExactOptPolicy(std::shared_ptr<const ExactSolver> solver)
    : solver_(std::move(solver)) {
  SUU_CHECK(solver_ != nullptr);
}

sched::Assignment ExactOptPolicy::decide(const sim::ExecState& state) {
  const core::Instance& inst = state.instance();
  std::uint32_t mask = 0;
  for (int j = 0; j < inst.num_jobs(); ++j) {
    if (!state.completed(j)) mask |= 1u << j;
  }
  SUU_CHECK(mask != 0);
  return solver_->best_assignment(mask);
}

}  // namespace suu::algos
