// SUU-T: directed-forest precedence constraints (paper Appendix B).
//
// Decompose the forest into O(log n) blocks of disjoint chains (heavy-path
// decomposition, src/chains) and run SUU-C on each block in order; a block
// starts only after the previous block fully completes, which together with
// the decomposition invariants preserves every precedence edge. Theorem 12:
// O(E[T_OPT] log(n) log(n+m) log log(min{m,n})) expected makespan.
#pragma once

#include <memory>

#include "algos/suu_c.hpp"
#include "chains/decomposition.hpp"
#include "sim/engine.hpp"

namespace suu::algos {

class SuuTPolicy : public sim::Policy {
 public:
  /// Deterministic per-instance work (decomposition + per-block LP2),
  /// shareable across Monte-Carlo replications.
  struct BlockCache {
    chains::Decomposition decomp;
    std::vector<std::shared_ptr<const rounding::Lp2Result>> lp2;
  };

  explicit SuuTPolicy(SuuCPolicy::Config cfg = {});
  SuuTPolicy(SuuCPolicy::Config cfg,
             std::shared_ptr<const BlockCache> cache);
  std::string name() const override { return "suu-t"; }
  void reset(const core::Instance& inst, util::Rng rng) override;
  sched::Assignment decide(const sim::ExecState& state) override;

  /// Deterministic per-instance work: heavy-path decomposition plus one
  /// LP2 solve+round per block. With `warm_start` (the suu::api default as
  /// of the revised-simplex PR), a simplex warm-start handle is chained
  /// across the blocks in order, so every block whose program is
  /// structurally identical to its predecessor's (same machine count, same
  /// chain shape over capable pairs) skips phase 1; blocks where the seed
  /// does not fit solve cold automatically, and an accepted seed re-runs
  /// the same deterministic phase-2 pricing, so the chained trajectory is
  /// byte-stable run to run (the warm-start regression suite pins this
  /// against recorded table1 goldens). `engine` picks the simplex core
  /// and `pricing` the entering-variable rule, per block. A non-null
  /// `chain` (only read when warm_start is set) replaces the internal
  /// block-chaining handle with the caller's, letting a pre-seeded basis
  /// warm the first block and the final block's basis flow back out —
  /// the registry's delta warm-start channel.
  static std::shared_ptr<const BlockCache> precompute(
      const core::Instance& inst, bool warm_start = false,
      lp::SimplexEngine engine = lp::SimplexEngine::Auto,
      lp::PricingRule pricing = lp::PricingRule::Auto,
      lp::WarmStart* chain = nullptr);

  int num_blocks() const noexcept { return decomp_.num_blocks(); }
  int current_block() const noexcept { return block_; }

 private:
  void activate_block(int b);
  bool block_done(const sim::ExecState& state) const;

  SuuCPolicy::Config cfg_;
  std::shared_ptr<const BlockCache> cache_;
  const core::Instance* inst_ = nullptr;
  util::Rng rng_{0};
  chains::Decomposition decomp_;
  int block_ = 0;
  std::unique_ptr<SuuCPolicy> sub_;
  std::vector<int> block_jobs_;
};

}  // namespace suu::algos
