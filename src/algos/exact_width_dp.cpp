#include "algos/exact_width_dp.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "chains/dilworth.hpp"
#include "util/check.hpp"

namespace suu::algos {

std::int64_t WidthExactSolver::encode(const std::vector<int>& counts) const {
  std::int64_t idx = 0;
  for (int c = 0; c < w_; ++c) {
    idx = idx * radix_[static_cast<std::size_t>(c)] +
          counts[static_cast<std::size_t>(c)];
  }
  return idx;
}

WidthExactSolver::WidthExactSolver(const core::Instance& inst, Options opt)
    : inst_(&inst) {
  const int n = inst.num_jobs();
  const int m = inst.num_machines();

  const chains::ChainCover cover = chains::min_chain_cover(inst.dag());
  chains_ = cover.chains;
  w_ = cover.width;
  SUU_CHECK(w_ >= 1);

  radix_.resize(static_cast<std::size_t>(w_));
  chain_of_.assign(static_cast<std::size_t>(n), -1);
  pos_in_chain_.assign(static_cast<std::size_t>(n), -1);
  std::int64_t n_states = 1;
  for (int c = 0; c < w_; ++c) {
    radix_[static_cast<std::size_t>(c)] =
        static_cast<int>(chains_[static_cast<std::size_t>(c)].size()) + 1;
    n_states *= radix_[static_cast<std::size_t>(c)];
    SUU_CHECK_MSG(n_states <= opt.max_states,
                  "state space too large; width " << w_);
    for (std::size_t p = 0; p < chains_[static_cast<std::size_t>(c)].size();
         ++p) {
      const int j = chains_[static_cast<std::size_t>(c)][p];
      chain_of_[static_cast<std::size_t>(j)] = c;
      pos_in_chain_[static_cast<std::size_t>(j)] = static_cast<int>(p);
    }
  }

  val_.assign(static_cast<std::size_t>(n_states),
              std::numeric_limits<double>::infinity());
  best_.assign(static_cast<std::size_t>(n_states) *
                   static_cast<std::size_t>(m),
               -1);

  // Enumerate states in decreasing remaining-job count is unnecessary:
  // iterate tuples in lexicographic order ascending by TOTAL completed
  // count so successors (more completed) are... successors have larger
  // totals, so process totals DESCENDING remaining == ascending completed
  // from n (all done) downwards? E[state] depends on states with MORE
  // completed jobs. Process completed-totals descending start from all-done.
  std::vector<std::vector<std::int64_t>> by_total(
      static_cast<std::size_t>(n) + 1);
  {
    std::vector<int> counts(static_cast<std::size_t>(w_), 0);
    for (;;) {
      int total = 0;
      for (const int c : counts) total += c;
      by_total[static_cast<std::size_t>(total)].push_back(encode(counts));
      int c = w_ - 1;
      while (c >= 0) {
        if (++counts[static_cast<std::size_t>(c)] <
            radix_[static_cast<std::size_t>(c)]) {
          break;
        }
        counts[static_cast<std::size_t>(c)] = 0;
        --c;
      }
      if (c < 0) break;
    }
  }

  // Predecessor bookkeeping: for eligibility we need, per job, whether all
  // its dag predecessors are completed under a tuple. Precompute each job's
  // predecessor list as (chain, pos) pairs: predecessor p is completed iff
  // counts[chain(p)] > pos(p).
  std::vector<int> counts(static_cast<std::size_t>(w_));
  std::vector<int> elig;
  std::vector<double> fail;
  std::vector<int> asg(static_cast<std::size_t>(m), 0);

  for (int total = n; total >= 0; --total) {
    for (const std::int64_t code : by_total[static_cast<std::size_t>(total)]) {
      // Decode.
      std::int64_t rem = code;
      for (int c = w_ - 1; c >= 0; --c) {
        counts[static_cast<std::size_t>(c)] =
            static_cast<int>(rem % radix_[static_cast<std::size_t>(c)]);
        rem /= radix_[static_cast<std::size_t>(c)];
      }
      auto completed = [&](int job) {
        return counts[static_cast<std::size_t>(
                   chain_of_[static_cast<std::size_t>(job)])] >
               pos_in_chain_[static_cast<std::size_t>(job)];
      };
      // Validity: the union of prefixes must be pred-closed — for each
      // chain, the last completed element's predecessors must be completed
      // (prefix-closure makes checking every completed element redundant,
      // but elements' preds can sit in other chains, so check all).
      bool valid = true;
      for (int c = 0; c < w_ && valid; ++c) {
        for (int p = 0; p < counts[static_cast<std::size_t>(c)] && valid;
             ++p) {
          const int j = chains_[static_cast<std::size_t>(c)]
                               [static_cast<std::size_t>(p)];
          for (const int pr : inst.dag().preds(j)) {
            if (!completed(pr)) {
              valid = false;
              break;
            }
          }
        }
      }
      if (!valid) continue;
      if (total == n) {
        val_[static_cast<std::size_t>(code)] = 0.0;
        continue;
      }

      // Eligible jobs: each chain's next element with all preds completed.
      elig.clear();
      for (int c = 0; c < w_; ++c) {
        if (counts[static_cast<std::size_t>(c)] >=
            static_cast<int>(chains_[static_cast<std::size_t>(c)].size())) {
          continue;  // chain finished
        }
        const int j = chains_[static_cast<std::size_t>(c)][static_cast<
            std::size_t>(counts[static_cast<std::size_t>(c)])];
        bool ok = true;
        for (const int pr : inst.dag().preds(j)) {
          if (!completed(pr)) {
            ok = false;
            break;
          }
        }
        if (ok) elig.push_back(j);
      }
      SUU_CHECK_MSG(!elig.empty(), "valid non-final state with no eligible");
      const int e = static_cast<int>(elig.size());

      std::int64_t n_asg = 1;
      for (int i = 0; i < m; ++i) {
        n_asg *= e;
        SUU_CHECK_MSG(n_asg <= opt.max_assignments_per_state,
                      "assignment enumeration too large");
      }

      double best_val = std::numeric_limits<double>::infinity();
      std::vector<std::int16_t> best_asg(static_cast<std::size_t>(m), -1);
      std::fill(asg.begin(), asg.end(), 0);
      fail.assign(static_cast<std::size_t>(e), 1.0);

      // Successor encoding: completing job j increments chain(j)'s count;
      // the code-space delta for chain c is its positional weight.
      std::vector<std::int64_t> weight(static_cast<std::size_t>(w_), 1);
      for (int c = w_ - 2; c >= 0; --c) {
        weight[static_cast<std::size_t>(c)] =
            weight[static_cast<std::size_t>(c + 1)] *
            radix_[static_cast<std::size_t>(c + 1)];
      }

      for (std::int64_t a = 0; a < n_asg; ++a) {
        std::fill(fail.begin(), fail.end(), 1.0);
        for (int i = 0; i < m; ++i) {
          fail[static_cast<std::size_t>(asg[static_cast<std::size_t>(i)])] *=
              inst.q(i, elig[static_cast<std::size_t>(
                         asg[static_cast<std::size_t>(i)])]);
        }
        // Success-subset expectation (as in ExactSolver).
        std::vector<int> sto;
        std::int64_t sure_delta = 0;
        for (int k = 0; k < e; ++k) {
          if (fail[static_cast<std::size_t>(k)] <= 0.0) {
            sure_delta += weight[static_cast<std::size_t>(
                chain_of_[static_cast<std::size_t>(
                    elig[static_cast<std::size_t>(k)])])];
          } else {
            sto.push_back(k);
          }
        }
        const int s = static_cast<int>(sto.size());
        const std::uint32_t t_count = 1u << s;
        std::vector<double> prob(t_count);
        std::vector<std::int64_t> delta(t_count);
        double p0 = 1.0;
        for (const int k : sto) p0 *= fail[static_cast<std::size_t>(k)];
        prob[0] = p0;
        delta[0] = sure_delta;
        std::vector<double> ratio(static_cast<std::size_t>(s));
        std::vector<std::int64_t> dw(static_cast<std::size_t>(s));
        for (int b = 0; b < s; ++b) {
          const int k = sto[static_cast<std::size_t>(b)];
          const double f = fail[static_cast<std::size_t>(k)];
          ratio[static_cast<std::size_t>(b)] = (1.0 - f) / f;
          dw[static_cast<std::size_t>(b)] = weight[static_cast<std::size_t>(
              chain_of_[static_cast<std::size_t>(
                  elig[static_cast<std::size_t>(k)])])];
        }
        double expect = 0.0;
        double selfp = 0.0;
        for (std::uint32_t T = 0; T < t_count; ++T) {
          if (T) {
            const int low = std::countr_zero(T);
            prob[T] = prob[T & (T - 1)] * ratio[static_cast<std::size_t>(low)];
            delta[T] = delta[T & (T - 1)] + dw[static_cast<std::size_t>(low)];
          }
          if (delta[T] == 0) {
            selfp += prob[T];
          } else {
            const double v = val_[static_cast<std::size_t>(code + delta[T])];
            expect += prob[T] * v;
          }
        }
        double v;
        if (selfp >= 1.0 - 1e-15 || !std::isfinite(expect)) {
          v = std::numeric_limits<double>::infinity();
        } else {
          v = (1.0 + expect) / (1.0 - selfp);
        }
        if (v < best_val) {
          best_val = v;
          for (int i = 0; i < m; ++i) {
            best_asg[static_cast<std::size_t>(i)] =
                static_cast<std::int16_t>(elig[static_cast<std::size_t>(
                    asg[static_cast<std::size_t>(i)])]);
          }
        }
        for (int i = 0; i < m; ++i) {
          if (++asg[static_cast<std::size_t>(i)] < e) break;
          asg[static_cast<std::size_t>(i)] = 0;
        }
      }

      SUU_CHECK_MSG(std::isfinite(best_val), "no progress from state");
      val_[static_cast<std::size_t>(code)] = best_val;
      std::copy(best_asg.begin(), best_asg.end(),
                best_.begin() +
                    static_cast<std::ptrdiff_t>(
                        static_cast<std::size_t>(code) *
                        static_cast<std::size_t>(m)));
    }
  }
}

double WidthExactSolver::expected_makespan() const {
  return val_[0];  // zero completed everywhere
}

std::vector<int> WidthExactSolver::best_assignment(
    const std::vector<char>& completed) const {
  const int m = inst_->num_machines();
  std::vector<int> counts(static_cast<std::size_t>(w_), 0);
  for (int c = 0; c < w_; ++c) {
    for (const int j : chains_[static_cast<std::size_t>(c)]) {
      if (!completed[static_cast<std::size_t>(j)]) break;
      ++counts[static_cast<std::size_t>(c)];
    }
  }
  const std::int64_t code = encode(counts);
  std::vector<int> a(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    a[static_cast<std::size_t>(i)] =
        best_[static_cast<std::size_t>(code) * static_cast<std::size_t>(m) +
              static_cast<std::size_t>(i)];
  }
  return a;
}

WidthOptPolicy::WidthOptPolicy(
    std::shared_ptr<const WidthExactSolver> solver)
    : solver_(std::move(solver)) {
  SUU_CHECK(solver_ != nullptr);
}

sched::Assignment WidthOptPolicy::decide(const sim::ExecState& state) {
  const core::Instance& inst = state.instance();
  std::vector<char> completed(static_cast<std::size_t>(inst.num_jobs()), 0);
  for (int j = 0; j < inst.num_jobs(); ++j) {
    completed[static_cast<std::size_t>(j)] = state.completed(j) ? 1 : 0;
  }
  return solver_->best_assignment(completed);
}

}  // namespace suu::algos
