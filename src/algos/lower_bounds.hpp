// Lower bounds on E[T_OPT] used as the denominator of every measured
// approximation ratio.
//
// Lemma 1 / Appendix D: E[T_OPT] >= (1/2) * t_LP1(J, 1/2) — the optimum must
// deliver 1/2 a unit of log mass to every job whose hidden r_j exceeds 1/2,
// and averaging over the uniformly random subset U of such jobs gives the
// bound. The derivation never uses independence, so it applies verbatim to
// chain and forest instances.
//
// Lemma 5 (via [11, Lemma 4.2]): the fractional LP2 optimum is O(E[T_OPT]);
// we use t_LP2 / 2 and record the constant in EXPERIMENTS.md. For forests we
// evaluate LP2 on the chain decomposition (dropping cross-block edges only
// relaxes the program, so it stays a valid bound).
#pragma once

#include <vector>

#include "core/instance.hpp"
#include "rounding/lp1.hpp"

namespace suu::algos {

struct LowerBound {
  double lp1_half = 0.0;  ///< t_LP1(J, 1/2) / 2 (certified fractional LB)
  double lp2_half = 0.0;  ///< t_LP2 / 2 when chains are given, else 0
  double value = 1.0;     ///< max(1, lp1_half, lp2_half)
};

/// Lemma 1 bound (valid for any precedence structure).
LowerBound lower_bound_independent(const core::Instance& inst,
                                   const rounding::Lp1Options& opt = {});

/// Lemma 1 + Lemma 5 bounds for an instance with the given disjoint chains.
LowerBound lower_bound_chains(const core::Instance& inst,
                              const std::vector<std::vector<int>>& chains,
                              const rounding::Lp1Options& opt = {});

}  // namespace suu::algos
