#include "algos/lower_bounds.hpp"

#include <algorithm>

#include "rounding/lp2.hpp"

namespace suu::algos {

LowerBound lower_bound_independent(const core::Instance& inst,
                                   const rounding::Lp1Options& opt) {
  std::vector<int> all(inst.num_jobs());
  for (int j = 0; j < inst.num_jobs(); ++j) all[j] = j;
  const rounding::Lp1Fractional frac = rounding::solve_lp1(inst, all, 0.5, opt);
  LowerBound lb;
  lb.lp1_half = frac.lower_bound / 2.0;
  lb.value = std::max(1.0, lb.lp1_half);
  return lb;
}

LowerBound lower_bound_chains(const core::Instance& inst,
                              const std::vector<std::vector<int>>& chains,
                              const rounding::Lp1Options& opt) {
  LowerBound lb = lower_bound_independent(inst, opt);
  const rounding::Lp2Result lp2 =
      rounding::solve_and_round_lp2(inst, chains, nullptr, opt.engine,
                                    opt.pricing);
  lb.lp2_half = lp2.t_fractional / 2.0;
  lb.value = std::max(lb.value, lb.lp2_half);
  return lb;
}

}  // namespace suu::algos
