#include "algos/baselines.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace suu::algos {

sched::Assignment AllOnOnePolicy::decide(const sim::ExecState& state) {
  const int m = state.instance().num_machines();
  sched::Assignment a(m, sched::kIdle);
  for (int j = 0; j < state.instance().num_jobs(); ++j) {
    if (state.eligible(j)) {
      std::fill(a.begin(), a.end(), j);
      break;
    }
  }
  return a;
}

sched::Assignment RoundRobinPolicy::decide(const sim::ExecState& state) {
  const int m = state.instance().num_machines();
  sched::Assignment a(m, sched::kIdle);
  state.eligible_jobs(elig_);
  const std::vector<int>& elig = elig_;
  if (elig.empty()) return a;
  const auto base = static_cast<std::size_t>(state.now() %
                                             static_cast<std::int64_t>(
                                                 elig.size()));
  for (int i = 0; i < m; ++i) {
    a[i] = elig[(base + static_cast<std::size_t>(i)) % elig.size()];
  }
  return a;
}

void BestMachinePolicy::reset(const core::Instance& inst, util::Rng rng) {
  (void)rng;
  best_machine_.assign(inst.num_jobs(), 0);
  for (int j = 0; j < inst.num_jobs(); ++j) {
    int best = 0;
    for (int i = 1; i < inst.num_machines(); ++i) {
      if (inst.ell(i, j) > inst.ell(best, j)) best = i;
    }
    best_machine_[j] = best;
  }
}

sched::Assignment BestMachinePolicy::decide(const sim::ExecState& state) {
  const int m = state.instance().num_machines();
  sched::Assignment a(m, sched::kIdle);
  for (int j = 0; j < state.instance().num_jobs(); ++j) {
    if (!state.eligible(j)) continue;
    const int i = best_machine_[j];
    if (a[i] == sched::kIdle) a[i] = j;
  }
  return a;
}

sched::Assignment AdaptiveGreedyPolicy::decide(const sim::ExecState& state) {
  const core::Instance& inst = state.instance();
  const int m = inst.num_machines();
  sched::Assignment a(static_cast<std::size_t>(m), sched::kIdle);
  state.eligible_jobs(elig_);
  const std::vector<int>& elig = elig_;
  if (elig.empty()) return a;

  // F[j] = failure probability of job j this step given committed machines.
  fail_.assign(elig.size(), 1.0);
  std::vector<double>& fail = fail_;
  for (int i = 0; i < m; ++i) {
    int best = -1;
    double best_gain = 0.0;
    for (std::size_t k = 0; k < elig.size(); ++k) {
      const double gain = fail[k] * (1.0 - inst.q(i, elig[k]));
      if (gain > best_gain) {
        best_gain = gain;
        best = static_cast<int>(k);
      }
    }
    if (best < 0) continue;  // machine useless for every eligible job
    a[static_cast<std::size_t>(i)] = elig[static_cast<std::size_t>(best)];
    fail[static_cast<std::size_t>(best)] *=
        inst.q(i, elig[static_cast<std::size_t>(best)]);
  }
  return a;
}

void GreedyLrPolicy::reset(const core::Instance& inst, util::Rng rng) {
  (void)rng;
  inst_ = &inst;
  rounds_ = 0;
  pos_ = 0;
  std::vector<int> all(inst.num_jobs());
  for (int j = 0; j < inst.num_jobs(); ++j) all[j] = j;
  build_round(all);
}

void GreedyLrPolicy::build_round(const std::vector<int>& jobs) {
  ++rounds_;
  const core::Instance& inst = *inst_;
  const int m = inst.num_machines();
  sched::IntegralAssignment x(inst.num_jobs(), m);
  std::vector<std::int64_t> load(m, 0);

  // Greedy: each job goes entirely to the machine that finishes it soonest
  // given current loads (earliest-completion-time list scheduling with
  // mass demands).
  for (const int j : jobs) {
    int best = -1;
    std::int64_t best_finish = 0;
    std::int64_t best_steps = 0;
    for (int i = 0; i < m; ++i) {
      const double e = inst.ell_capped(i, j, target_mass_);
      if (e <= 1e-12) continue;
      const auto steps =
          static_cast<std::int64_t>(std::ceil(target_mass_ / e - 1e-12));
      const std::int64_t finish = load[i] + steps;
      if (best < 0 || finish < best_finish) {
        best = i;
        best_finish = finish;
        best_steps = steps;
      }
    }
    SUU_CHECK_MSG(best >= 0, "job " << j << " has no capable machine");
    x.add(best, j, best_steps);
    load[best] += best_steps;
  }
  schedule_ = sched::ObliviousSchedule::from_assignment(x);
  pos_ = 0;
}

sched::Assignment GreedyLrPolicy::decide(const sim::ExecState& state) {
  if (pos_ >= schedule_.length()) {
    state.remaining_jobs(remaining_);
    build_round(remaining_);
  }
  SUU_CHECK(schedule_.length() > 0);
  return schedule_.step(pos_++);
}

}  // namespace suu::algos
