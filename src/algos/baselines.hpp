// Baseline schedules: the comparison column of Table 1 and the paper's
// trivial O(n)-approximation.
//
//   * AllOnOnePolicy  — every machine gangs up on one eligible job at a
//     time; the paper's trivial O(n)-approximation and the SUU-I-SEM
//     fallback for n <= m.
//   * RoundRobinPolicy — spreads machines over eligible jobs cyclically; a
//     natural "no-theory" baseline.
//   * BestMachinePolicy — each job waits for its single most reliable
//     machine; machines work their queues independently.
//   * GreedyLrPolicy — a reconstruction of the flavor of Lin–Rajaraman's
//     greedy O(log n) algorithm [11] (no artifact exists): every round
//     greedily builds an assignment giving each remaining job >= 1/2 unit
//     of log mass while balancing machine loads, runs it obliviously, and
//     repeats on the survivors. Each round succeeds per job with constant
//     probability, so O(log n) rounds complete everything whp.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/engine.hpp"

namespace suu::algos {

class AllOnOnePolicy : public sim::Policy {
 public:
  std::string name() const override { return "all-on-one"; }
  sched::Assignment decide(const sim::ExecState& state) override;
};

class RoundRobinPolicy : public sim::Policy {
 public:
  std::string name() const override { return "round-robin"; }
  sched::Assignment decide(const sim::ExecState& state) override;

 private:
  std::vector<int> elig_;  // scratch, reused across steps
};

class BestMachinePolicy : public sim::Policy {
 public:
  std::string name() const override { return "best-machine"; }
  void reset(const core::Instance& inst, util::Rng rng) override;
  sched::Assignment decide(const sim::ExecState& state) override;

 private:
  std::vector<int> best_machine_;  // per job
};

/// The paper's concluding conjecture ("It would also be interesting if a
/// greedy heuristic could achieve the same bounds"): a FULLY adaptive
/// per-step greedy. Machines are assigned one at a time; each takes the
/// eligible job maximizing the marginal gain in expected completions this
/// step, F_j * (1 - q_ij), where F_j is the job's failure probability given
/// the machines already committed to it. This is the natural submodular
/// greedy on the step's expected-completion objective. Benchmarked against
/// SUU-I-SEM in bench_fig_adaptivity.
class AdaptiveGreedyPolicy : public sim::Policy {
 public:
  std::string name() const override { return "adaptive-greedy"; }
  sched::Assignment decide(const sim::ExecState& state) override;

 private:
  std::vector<int> elig_;     // scratch, reused across steps
  std::vector<double> fail_;  // per-eligible-job failure prob this step
};

class GreedyLrPolicy : public sim::Policy {
 public:
  /// target_mass: log mass each round guarantees per remaining job.
  explicit GreedyLrPolicy(double target_mass = 0.5)
      : target_mass_(target_mass) {}
  std::string name() const override { return "greedy-lr"; }
  void reset(const core::Instance& inst, util::Rng rng) override;
  sched::Assignment decide(const sim::ExecState& state) override;

  /// Rounds started so far (for diagnostics).
  int rounds() const noexcept { return rounds_; }

 private:
  void build_round(const std::vector<int>& jobs);

  double target_mass_;
  const core::Instance* inst_ = nullptr;
  sched::ObliviousSchedule schedule_{1};
  std::int64_t pos_ = 0;
  int rounds_ = 0;
  std::vector<int> remaining_;  // scratch for round rebuilds
};

}  // namespace suu::algos
