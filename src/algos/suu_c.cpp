#include "algos/suu_c.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace suu::algos {

SuuCPolicy::SuuCPolicy(Config cfg) : cfg_(std::move(cfg)) {}

std::shared_ptr<const rounding::Lp2Result> SuuCPolicy::precompute(
    const core::Instance& inst,
    const std::vector<std::vector<int>>& chains, lp::WarmStart* warm,
    lp::SimplexEngine engine, lp::PricingRule pricing) {
  return std::make_shared<const rounding::Lp2Result>(
      rounding::solve_and_round_lp2(inst, chains, warm, engine, pricing));
}

void SuuCPolicy::reset(const core::Instance& inst, util::Rng rng) {
  inst_ = &inst;
  rng_ = rng;

  std::vector<std::vector<int>> chain_list =
      cfg_.chains.empty() ? inst.dag().chains() : cfg_.chains;
  SUU_CHECK_MSG(!chain_list.empty(), "SUU-C needs at least one chain");

  // ---- Step 1: LP2 + Lemma 6 rounding (shared across replications when
  // the caller precomputed it).
  std::shared_ptr<const rounding::Lp2Result> lp2_ptr = cfg_.lp2;
  if (!lp2_ptr) {
    lp2_ptr = precompute(inst, chain_list, nullptr, cfg_.lp1.engine,
                         cfg_.lp1.pricing);
  }
  const rounding::Lp2Result& lp2 = *lp2_ptr;
  SUU_CHECK_MSG(lp2.assignment.num_jobs() == inst.num_jobs() &&
                    lp2.assignment.num_machines() == inst.num_machines(),
                "shared LP2 result does not match the instance");
  load_ = std::max<std::int64_t>(1, lp2.assignment.max_load());

  // ---- Step 7 (optional): grid rounding of assignments to multiples of
  // t*/(nm), with deficits reinserted as dedicated steps.
  const auto nm = static_cast<std::int64_t>(inst.num_jobs()) *
                  inst.num_machines();
  const std::int64_t grid =
      cfg_.grid_rounding ? std::max<std::int64_t>(1, load_ / nm) : 1;

  plan_.assign(static_cast<std::size_t>(inst.num_jobs()), AttemptPlan{});
  in_universe_.assign(static_cast<std::size_t>(inst.num_jobs()), 0);
  for (const auto& chain : chain_list) {
    for (const int j : chain) {
      in_universe_[static_cast<std::size_t>(j)] = 1;
      AttemptPlan& ap = plan_[static_cast<std::size_t>(j)];
      for (const auto& [i, steps] : lp2.assignment.steps_for(j)) {
        const std::int64_t lo = (steps / grid) * grid;
        if (lo > 0) {
          ap.primary.emplace_back(i, lo);
          ap.len_a = std::max(ap.len_a, lo);
        }
        if (steps - lo > 0) {
          ap.deficit.emplace_back(i, steps - lo);
          ap.len_b = std::max(ap.len_b, steps - lo);
        }
      }
      if (ap.length() == 0) {
        // Rounded assignment must have had >= 1 step; keep a 1-step attempt
        // on the best machine as a guard.
        int best = 0;
        for (int i = 1; i < inst.num_machines(); ++i) {
          if (inst.ell(i, j) > inst.ell(best, j)) best = i;
        }
        ap.primary.emplace_back(best, 1);
        ap.len_a = 1;
      }
    }
  }

  // ---- gamma, superstep budget, random delays.
  std::int64_t max_chain_len = 0;
  for (const auto& chain : chain_list) {
    std::int64_t len = 0;
    for (const int j : chain) len += plan_[static_cast<std::size_t>(j)].length();
    max_chain_len = std::max(max_chain_len, len);
  }
  const double log_nm = std::max(
      2.0, std::log2(static_cast<double>(inst.num_jobs() +
                                         inst.num_machines())));
  const double t_hat =
      std::max(static_cast<double>(load_), static_cast<double>(max_chain_len));
  gamma_ = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(cfg_.gamma_factor * t_hat / log_nm)));
  ss_budget_ = static_cast<std::int64_t>(
      cfg_.fallback_factor *
      static_cast<double>(load_ + 2 * max_chain_len + 4 * gamma_ + 64));

  chains_.clear();
  chains_.reserve(chain_list.size());
  for (auto& chain : chain_list) {
    ChainState cs;
    cs.jobs = std::move(chain);
    cs.delay_left =
        cfg_.random_delays
            ? static_cast<std::int64_t>(rng_.uniform_below(
                  static_cast<std::uint64_t>(load_) + 1))
            : 0;
    cs.phase = Phase::Delay;
    chains_.push_back(std::move(cs));
  }

  lists_.assign(static_cast<std::size_t>(inst.num_machines()), {});
  emit_r_ = emit_c_ = 0;
  superstep_open_ = false;
  ss_ = 0;
  pending_long_.clear();
  batch_.reset();
  batch_jobs_.clear();
  batch_seq_ = 0;
  batches_ = 0;
  fallback_ = false;
  max_congestion_ = 0;
}

void SuuCPolicy::settle_chain(ChainState& cs, const sim::ExecState& state) {
  for (;;) {
    switch (cs.phase) {
      case Phase::Delay:
        if (cs.delay_left > 0) return;
        cs.phase = Phase::Enter;
        break;
      case Phase::Enter: {
        if (cs.pos >= cs.jobs.size()) {
          cs.phase = Phase::Done;
          return;
        }
        const int j = cs.jobs[cs.pos];
        if (state.completed(j)) {
          ++cs.pos;
          break;
        }
        if (plan_[static_cast<std::size_t>(j)].length() > gamma_) {
          cs.phase = Phase::Pause;
          cs.pause_left = gamma_;
          pending_long_.push_back(j);
        } else {
          cs.phase = Phase::Attempt;
          cs.attempt_step = 0;
        }
        return;
      }
      case Phase::Attempt: {
        const int j = cs.jobs[cs.pos];
        if (cs.attempt_step >=
            plan_[static_cast<std::size_t>(j)].length()) {
          if (state.completed(j)) {
            ++cs.pos;
            cs.phase = Phase::Enter;
            break;
          }
          cs.attempt_step = 0;  // failed attempt: repeat
        }
        return;
      }
      case Phase::Pause:
        if (cs.pause_left > 0) return;
        cs.phase = Phase::WaitBatch;
        break;
      case Phase::WaitBatch: {
        const int j = cs.jobs[cs.pos];
        if (state.completed(j)) {
          ++cs.pos;
          cs.phase = Phase::Enter;
          break;
        }
        return;
      }
      case Phase::Done:
        return;
    }
  }
}

void SuuCPolicy::build_superstep(const sim::ExecState& state) {
  for (auto& l : lists_) l.clear();
  for (auto& cs : chains_) {
    settle_chain(cs, state);
    if (cs.phase != Phase::Attempt) continue;
    const int j = cs.jobs[cs.pos];
    const AttemptPlan& ap = plan_[static_cast<std::size_t>(j)];
    if (cs.attempt_step < ap.len_a) {
      for (const auto& [i, steps] : ap.primary) {
        if (cs.attempt_step < steps) {
          lists_[static_cast<std::size_t>(i)].push_back(j);
        }
      }
    } else {
      const std::int64_t s = cs.attempt_step - ap.len_a;
      for (const auto& [i, steps] : ap.deficit) {
        if (s < steps) lists_[static_cast<std::size_t>(i)].push_back(j);
      }
    }
  }
  int c = 0;
  for (const auto& l : lists_) c = std::max(c, static_cast<int>(l.size()));
  emit_c_ = c;
  emit_r_ = 0;
  superstep_open_ = true;
  max_congestion_ = std::max(max_congestion_, c);
}

void SuuCPolicy::tick_superstep() {
  ++ss_;
  for (auto& cs : chains_) {
    switch (cs.phase) {
      case Phase::Delay:
        --cs.delay_left;
        break;
      case Phase::Attempt:
        ++cs.attempt_step;
        break;
      case Phase::Pause:
        --cs.pause_left;
        break;
      default:
        break;
    }
  }
  // Segment boundary: batch the long jobs whose pause started during the
  // segment that just ended.
  if (ss_ % gamma_ == 0 && !pending_long_.empty()) {
    batch_jobs_ = std::move(pending_long_);
    pending_long_.clear();
    SuuISemPolicy::Config cfg;
    cfg.lp1 = cfg_.lp1;
    cfg.universe = batch_jobs_;
    batch_ = std::make_unique<SuuISemPolicy>(std::move(cfg));
    batch_->reset(*inst_, rng_.child(++batch_seq_));
    ++batches_;
  }
}

sched::Assignment SuuCPolicy::fallback_assignment(
    const sim::ExecState& state) const {
  sched::Assignment a(
      static_cast<std::size_t>(inst_->num_machines()), sched::kIdle);
  for (int j = 0; j < inst_->num_jobs(); ++j) {
    if (in_universe_[static_cast<std::size_t>(j)] && state.eligible(j)) {
      std::fill(a.begin(), a.end(), j);
      break;
    }
  }
  return a;
}

sched::Assignment SuuCPolicy::decide(const sim::ExecState& state) {
  // Each loop iteration either emits an assignment or makes provable
  // progress (a superstep ticks or a batch starts/ends); the guard bound is
  // generous.
  const std::int64_t guard_cap = 4 * ss_budget_ + 1'000'000;
  for (std::int64_t guard = 0; guard < guard_cap; ++guard) {
    if (fallback_) return fallback_assignment(state);

    if (batch_) {
      bool done = true;
      for (const int j : batch_jobs_) {
        if (!state.completed(j)) {
          done = false;
          break;
        }
      }
      if (!done) return batch_->decide(state);
      batch_.reset();
      batch_jobs_.clear();
      continue;
    }

    if (superstep_open_) {
      if (emit_r_ < emit_c_) {
        sched::Assignment a(
            static_cast<std::size_t>(inst_->num_machines()), sched::kIdle);
        for (std::size_t i = 0; i < lists_.size(); ++i) {
          if (static_cast<std::size_t>(emit_r_) < lists_[i].size()) {
            a[i] = lists_[i][static_cast<std::size_t>(emit_r_)];
          }
        }
        ++emit_r_;
        return a;
      }
      superstep_open_ = false;
      tick_superstep();
      continue;
    }

    if (ss_ >= ss_budget_) {
      fallback_ = true;
      continue;
    }

    build_superstep(state);
    if (emit_c_ == 0) {
      // Empty superstep (all chains delayed/paused/waiting): consume it
      // without real timesteps.
      superstep_open_ = false;
      tick_superstep();
    }
  }
  SUU_CHECK_MSG(false, "SUU-C made no progress within its guard bound");
  return {};
}

}  // namespace suu::algos
