#include "algos/suu_i.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace suu::algos {

int sem_round_bound(int n, int m) {
  const double mn = std::max(2, std::min(n, m));
  const double loglog = std::log2(std::max(1.0, std::log2(mn)));
  return static_cast<int>(std::ceil(loglog - 1e-12)) + 3;
}

ObliviousReplayPolicy::ObliviousReplayPolicy(sched::ObliviousSchedule schedule,
                                             bool cyclic)
    : schedule_(std::move(schedule)), cyclic_(cyclic) {
  SUU_CHECK_MSG(schedule_.length() > 0, "cannot replay an empty schedule");
}

sched::Assignment ObliviousReplayPolicy::decide(const sim::ExecState& state) {
  if (pos_ >= schedule_.length()) {
    if (!cyclic_) {
      return sched::Assignment(
          static_cast<std::size_t>(state.instance().num_machines()),
          sched::kIdle);
    }
    pos_ = 0;
  }
  return schedule_.step(pos_++);
}

SuuIOblPolicy::SuuIOblPolicy(rounding::Lp1Options opt) : opt_(opt) {}

SuuIOblPolicy::SuuIOblPolicy(
    std::shared_ptr<const rounding::Lp1Schedule> precomputed)
    : lp1_(std::move(precomputed)) {
  SUU_CHECK(lp1_ != nullptr);
}

std::shared_ptr<const rounding::Lp1Schedule> SuuIOblPolicy::precompute(
    const core::Instance& inst, const rounding::Lp1Options& opt) {
  std::vector<int> all(inst.num_jobs());
  for (int j = 0; j < inst.num_jobs(); ++j) all[j] = j;
  return std::make_shared<const rounding::Lp1Schedule>(
      rounding::build_lp1_schedule(inst, all, 0.5, opt));
}

void SuuIOblPolicy::reset(const core::Instance& inst, util::Rng rng) {
  (void)rng;
  if (!lp1_) lp1_ = precompute(inst, opt_);
  SUU_CHECK_MSG(lp1_->schedule.num_machines() == inst.num_machines(),
                "precomputed schedule does not match the instance");
  pos_ = 0;
}

sched::Assignment SuuIOblPolicy::decide(const sim::ExecState& state) {
  (void)state;
  const auto len = lp1_->schedule.length();
  SUU_CHECK(len > 0);
  const sched::Assignment& a = lp1_->schedule.step(pos_ % len);
  ++pos_;
  return a;
}

SuuISemPolicy::SuuISemPolicy(Config cfg) : cfg_(std::move(cfg)) {}

std::shared_ptr<const rounding::Lp1Schedule> SuuISemPolicy::precompute_round1(
    const core::Instance& inst, const rounding::Lp1Options& opt) {
  std::vector<int> all(inst.num_jobs());
  for (int j = 0; j < inst.num_jobs(); ++j) all[j] = j;
  return std::make_shared<const rounding::Lp1Schedule>(
      rounding::build_lp1_schedule(inst, all, 0.5, opt));
}

void SuuISemPolicy::reset(const core::Instance& inst, util::Rng rng) {
  (void)rng;
  inst_ = &inst;
  if (cfg_.universe.empty()) {
    cfg_.universe.resize(static_cast<std::size_t>(inst.num_jobs()));
    for (int j = 0; j < inst.num_jobs(); ++j) {
      cfg_.universe[static_cast<std::size_t>(j)] = j;
    }
  }
  k_bound_ = sem_round_bound(static_cast<int>(cfg_.universe.size()),
                             inst.num_machines());
  fallback_ = false;
  fallback_sequential_ = false;
  round_ = 1;
  if (cfg_.round1 != nullptr &&
      static_cast<int>(cfg_.universe.size()) == inst.num_jobs()) {
    schedule_ = cfg_.round1->schedule;
  } else {
    schedule_ = rounding::build_lp1_schedule(inst, cfg_.universe, 0.5,
                                             cfg_.lp1)
                    .schedule;
  }
  pos_ = 0;
}

std::vector<int> SuuISemPolicy::remaining_universe(
    const sim::ExecState& state) const {
  std::vector<int> out;
  for (const int j : cfg_.universe) {
    if (!state.completed(j)) out.push_back(j);
  }
  return out;
}

void SuuISemPolicy::start_round(const std::vector<int>& jobs) {
  const double target = std::ldexp(1.0, round_ - 2);  // L_k = 2^(k-2)
  schedule_ =
      rounding::build_lp1_schedule(*inst_, jobs, target, cfg_.lp1).schedule;
  pos_ = 0;
}

sched::Assignment SuuISemPolicy::decide(const sim::ExecState& state) {
  const int m = inst_->num_machines();

  if (fallback_ && fallback_sequential_) {
    // n <= m: run remaining universe jobs one at a time on all machines.
    sched::Assignment a(static_cast<std::size_t>(m), sched::kIdle);
    for (const int j : cfg_.universe) {
      if (!state.completed(j) && state.eligible(j)) {
        std::fill(a.begin(), a.end(), j);
        break;
      }
    }
    return a;
  }

  if (pos_ >= schedule_.length()) {
    const std::vector<int> rem = remaining_universe(state);
    if (rem.empty()) {
      return sched::Assignment(static_cast<std::size_t>(m), sched::kIdle);
    }
    if (!fallback_ && round_ < k_bound_) {
      ++round_;
      start_round(rem);
    } else {
      // Round K exhausted: choose the fallback branch (Theorem 4).
      if (!fallback_) {
        fallback_ = true;
        fallback_sequential_ =
            static_cast<int>(cfg_.universe.size()) <= m;
      }
      if (fallback_sequential_) return decide(state);
      pos_ = 0;  // m < n: repeat the round-K schedule
    }
  }
  SUU_CHECK(schedule_.length() > 0);
  return schedule_.step(pos_++);
}

}  // namespace suu::algos
