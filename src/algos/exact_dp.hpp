// Exact optimal expected makespan for tiny SUU instances.
//
// Malewicz [12] gives a polynomial DP for constant machines and constant dag
// width; here we implement the straightforward exponential version: a value
// function over the subset lattice of remaining jobs. For each reachable
// remaining-set S the solver enumerates every assignment of machines to
// eligible jobs and solves
//     E[S] = min_a (1 + sum_{T != 0} P_a(T) E[S \ T]) / (1 - P_a(self-loop))
// where T ranges over success sets. This is the ground truth behind the
// F-OPT experiment: measured ratios against the true E[T_OPT] rather than an
// LP bound.
//
// Complexity is roughly sum_S |E(S)|^m 2^|E(S)|; practical for n <= ~10 jobs
// and m <= 3 machines. The constructor enforces a configurable guard.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/instance.hpp"
#include "sim/engine.hpp"

namespace suu::algos {

class ExactSolver {
 public:
  struct Options {
    int max_jobs = 16;
    /// Upper bound on per-state assignment enumeration |E|^m.
    std::int64_t max_assignments_per_state = 1 << 22;
  };

  explicit ExactSolver(const core::Instance& inst)
      : ExactSolver(inst, Options{}) {}
  ExactSolver(const core::Instance& inst, Options opt);

  /// E[T_OPT] of the instance.
  double expected_makespan() const { return val_[full_mask_]; }

  /// Optimal expected remaining makespan for a remaining-job bitmask.
  double value(std::uint32_t remaining_mask) const;

  /// Optimal machine->job assignment for a remaining-job bitmask
  /// (size m; entries are job ids).
  std::vector<int> best_assignment(std::uint32_t remaining_mask) const;

  const core::Instance& instance() const { return *inst_; }

 private:
  const core::Instance* inst_;
  int n_;
  int m_;
  std::uint32_t full_mask_;
  std::vector<double> val_;
  std::vector<std::int16_t> best_;  // flattened [mask * m + i] -> job id
};

/// Plays the exact optimal policy (for cross-validating the DP against
/// simulation, and for measuring true ratios of the approximations).
class ExactOptPolicy : public sim::Policy {
 public:
  explicit ExactOptPolicy(std::shared_ptr<const ExactSolver> solver);
  std::string name() const override { return "exact-opt"; }
  sched::Assignment decide(const sim::ExecState& state) override;

 private:
  std::shared_ptr<const ExactSolver> solver_;
};

}  // namespace suu::algos
