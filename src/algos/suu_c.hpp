// SUU-C: the paper's Section 4 algorithm for chain precedence constraints.
//
// Pipeline implemented here, mirroring the paper step by step:
//   1. Solve LP2 and round it (Lemma 6) to an integral assignment {x_ij}
//      with per-job lengths d_j, machine loads O(t*) and chain lengths
//      O(t*).
//   2. Per chain: the adaptive schedule Sigma_k runs the frontier job's
//      assignment obliviously for d_j supersteps (machine i covers the
//      first x_ij of them) and repeats failed attempts.
//   3. The chain schedules run "in parallel" as a pseudoschedule over
//      supersteps; each chain's start is delayed by delta_k ~ U{0..H}
//      (Theorem 7) to keep congestion O(log(n+m)/log log(n+m)) whp.
//   4. Each superstep is flattened into c(t) real timesteps (its
//      congestion): machine i serves its per-superstep job list one job per
//      real step.
//   5. Long jobs (d_j > gamma = t*/log(n+m)) are replaced by a pause of
//      gamma supersteps and batch-executed by SUU-I-SEM at the end of the
//      segment (of gamma supersteps) in which their pause started, with all
//      chains suspended.
//   6. If the superstep budget is blown (load/length/congestion beyond the
//      whp bounds — probability <= 1/n), fall back to the trivial
//      O(n)-approximation, as the paper prescribes.
//   7. Optionally, assignments are pre-rounded onto a grid of
//      t*/(nm)-multiples with dedicated reinserted steps (the paper's trick
//      for non-polynomial t*; a no-op at benchable scales).
//
// Theorem 9: expected makespan O(E[T_OPT] log(n+m) log log(min{m,n})).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "algos/suu_i.hpp"
#include "rounding/lp2.hpp"
#include "sim/engine.hpp"

namespace suu::algos {

class SuuCPolicy : public sim::Policy {
 public:
  struct Config {
    rounding::Lp1Options lp1;  ///< for the embedded SUU-I-SEM batches
    /// Explicit chains (used by SUU-T blocks); empty = derive from the dag.
    std::vector<std::vector<int>> chains;
    /// Optional shared LP2 solution (must match the instance and chains);
    /// lets Monte-Carlo replications skip the deterministic solve+round.
    std::shared_ptr<const rounding::Lp2Result> lp2;
    bool random_delays = true;   ///< Theorem 7 ablation switch
    bool grid_rounding = false;  ///< non-polynomial-t* trick
    double gamma_factor = 1.0;   ///< scales gamma = t*/log2(n+m)
    double fallback_factor = 64.0;  ///< superstep budget multiplier
  };

  SuuCPolicy() : SuuCPolicy(Config{}) {}
  explicit SuuCPolicy(Config cfg);

  /// Solve LP2 + Lemma 6 once for sharing across replications. `warm`
  /// (optional) chains a simplex warm-start across structurally identical
  /// solves; `engine` picks the simplex core and `pricing` the
  /// entering-variable rule — see rounding::solve_and_round_lp2.
  static std::shared_ptr<const rounding::Lp2Result> precompute(
      const core::Instance& inst,
      const std::vector<std::vector<int>>& chains,
      lp::WarmStart* warm = nullptr,
      lp::SimplexEngine engine = lp::SimplexEngine::Auto,
      lp::PricingRule pricing = lp::PricingRule::Auto);
  std::string name() const override { return "suu-c"; }
  void reset(const core::Instance& inst, util::Rng rng) override;
  sched::Assignment decide(const sim::ExecState& state) override;

  // Diagnostics for the current/last execution.
  std::int64_t supersteps() const noexcept { return ss_; }
  int max_congestion() const noexcept { return max_congestion_; }
  int batches_run() const noexcept { return batches_; }
  bool fell_back() const noexcept { return fallback_; }
  std::int64_t gamma() const noexcept { return gamma_; }
  std::int64_t assignment_load() const noexcept { return load_; }

 private:
  enum class Phase { Delay, Enter, Attempt, Pause, WaitBatch, Done };

  struct ChainState {
    std::vector<int> jobs;
    std::size_t pos = 0;
    Phase phase = Phase::Delay;
    std::int64_t delay_left = 0;
    std::int64_t attempt_step = 0;
    std::int64_t pause_left = 0;
  };

  // Per-job attempt plan: primary (grid-rounded) machine steps followed by
  // dedicated deficit steps (grid reinsertion). attempt_len = len_a + len_b.
  struct AttemptPlan {
    std::vector<std::pair<int, std::int64_t>> primary;
    std::vector<std::pair<int, std::int64_t>> deficit;
    std::int64_t len_a = 0;
    std::int64_t len_b = 0;
    std::int64_t length() const noexcept { return len_a + len_b; }
  };

  void settle_chain(ChainState& cs, const sim::ExecState& state);
  void build_superstep(const sim::ExecState& state);
  void tick_superstep();
  sched::Assignment fallback_assignment(const sim::ExecState& state) const;

  Config cfg_;
  const core::Instance* inst_ = nullptr;
  util::Rng rng_{0};
  std::vector<AttemptPlan> plan_;  // per job (only chain jobs populated)
  std::vector<char> in_universe_;  // jobs this policy owns
  std::int64_t gamma_ = 1;
  std::int64_t load_ = 0;  // H: max machine load of the assignment
  std::vector<ChainState> chains_;

  // Superstep emission.
  std::vector<std::vector<int>> lists_;  // per machine
  int emit_r_ = 0;
  int emit_c_ = 0;
  bool superstep_open_ = false;
  std::int64_t ss_ = 0;
  std::int64_t ss_budget_ = 0;

  // Long-job batches.
  std::vector<int> pending_long_;
  std::unique_ptr<SuuISemPolicy> batch_;
  std::vector<int> batch_jobs_;
  std::uint64_t batch_seq_ = 0;
  int batches_ = 0;

  bool fallback_ = false;
  int max_congestion_ = 0;
};

}  // namespace suu::algos
