// The paper's independent-jobs algorithms (Section 3).
//
//   * SuuIOblPolicy — SUU-I-OBL: solve LP1(J, 1/2), round per Lemma 2, and
//     repeat the resulting O(E[T_OPT])-length oblivious schedule until every
//     job completes. Theorem 3: O(log n)-approximation.
//
//   * SuuISemPolicy — SUU-I-SEM: semioblivious rounds k = 1, 2, ..., K with
//     doubling log-mass targets L_k = 2^(k-2) applied to the jobs still
//     alive at the round boundary. K = ceil(log log min{m, n}) + 3. After
//     round K: if n <= m run survivors one at a time on all machines,
//     otherwise repeat the round-K schedule. Theorem 4:
//     O(log log min{m, n})-approximation.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "rounding/lp1.hpp"
#include "sim/engine.hpp"

namespace suu::algos {

/// K = ceil(log2 log2 min{m, n}) + 3, with min{m,n} clamped to >= 2.
int sem_round_bound(int n, int m);

/// Replays a fixed finite oblivious schedule, optionally cyclically.
class ObliviousReplayPolicy : public sim::Policy {
 public:
  ObliviousReplayPolicy(sched::ObliviousSchedule schedule, bool cyclic);
  std::string name() const override { return "oblivious-replay"; }
  sched::Assignment decide(const sim::ExecState& state) override;

 private:
  sched::ObliviousSchedule schedule_;
  bool cyclic_;
  std::int64_t pos_ = 0;
};

/// SUU-I-OBL. The LP1 schedule depends only on the instance, so replications
/// can share one precomputed schedule (pass it to the constructor).
class SuuIOblPolicy : public sim::Policy {
 public:
  explicit SuuIOblPolicy(rounding::Lp1Options opt = {});
  explicit SuuIOblPolicy(
      std::shared_ptr<const rounding::Lp1Schedule> precomputed);
  std::string name() const override { return "suu-i-obl"; }
  void reset(const core::Instance& inst, util::Rng rng) override;
  sched::Assignment decide(const sim::ExecState& state) override;

  /// Build the schedule SUU-I-OBL repeats (shareable across replications).
  static std::shared_ptr<const rounding::Lp1Schedule> precompute(
      const core::Instance& inst, const rounding::Lp1Options& opt = {});

 private:
  rounding::Lp1Options opt_;
  std::shared_ptr<const rounding::Lp1Schedule> lp1_;
  std::int64_t pos_ = 0;
};

/// SUU-I-SEM. Can be restricted to a job universe (used as the long-job
/// batch subroutine inside SUU-C); jobs outside the universe are ignored.
class SuuISemPolicy : public sim::Policy {
 public:
  struct Config {
    rounding::Lp1Options lp1;
    /// Empty = all jobs of the instance.
    std::vector<int> universe;
    /// Optional precomputed round-1 schedule (only valid when universe is
    /// all jobs); shared across replications.
    std::shared_ptr<const rounding::Lp1Schedule> round1;
  };

  explicit SuuISemPolicy(Config cfg = {});
  std::string name() const override { return "suu-i-sem"; }
  void reset(const core::Instance& inst, util::Rng rng) override;
  sched::Assignment decide(const sim::ExecState& state) override;

  /// Diagnostics for the last (or in-flight) execution.
  int rounds_used() const noexcept { return round_; }
  bool in_fallback() const noexcept { return fallback_; }
  int round_bound() const noexcept { return k_bound_; }

  static std::shared_ptr<const rounding::Lp1Schedule> precompute_round1(
      const core::Instance& inst, const rounding::Lp1Options& opt = {});

 private:
  std::vector<int> remaining_universe(const sim::ExecState& state) const;
  void start_round(const std::vector<int>& jobs);

  Config cfg_;
  const core::Instance* inst_ = nullptr;
  sched::ObliviousSchedule schedule_{1};
  std::int64_t pos_ = 0;
  int round_ = 0;
  int k_bound_ = 0;
  bool fallback_ = false;
  bool fallback_sequential_ = false;  // n <= m branch
};

}  // namespace suu::algos
