// Bounded exponential backoff with deterministic jitter.
//
// Retrying a failed shard immediately against a struggling backend just
// feeds the overload; retrying on a fixed schedule synchronizes every
// retrying client into thundering herds. The standard fix is exponential
// backoff with jitter — but random jitter would make failover tests flaky
// and retries unreproducible. Here the jitter comes from hash_mix over
// (seed, attempt), so a given coordinator run produces the same retry
// schedule every time while distinct seeds (per shard, per run) still
// de-synchronize against each other.
#pragma once

#include <cstdint>

#include "util/hash.hpp"

namespace suu::client {

struct BackoffPolicy {
  int base_ms = 10;       ///< first retry delay ceiling
  int max_ms = 500;       ///< cap on the exponential growth
  int max_attempts = 4;   ///< total tries per shard per backend before
                          ///< the failure escalates to a failover

  /// Delay before retry `attempt` (1-based; attempt 0 returns 0). The
  /// ceiling doubles each attempt up to max_ms; the actual delay is drawn
  /// deterministically from [ceiling/2, ceiling] by hashing (seed,
  /// attempt) — "equal jitter", bounded away from zero so a retry is
  /// never an immediate hammer.
  int delay_ms(int attempt, std::uint64_t seed) const {
    if (attempt <= 0 || base_ms <= 0) return 0;
    long long ceiling = base_ms;
    for (int i = 1; i < attempt && ceiling < max_ms; ++i) ceiling *= 2;
    if (ceiling > max_ms) ceiling = max_ms;
    const std::uint64_t h =
        util::hash_mix(seed ^ (0x9e3779b97f4a7c15ULL *
                               static_cast<std::uint64_t>(attempt)));
    const long long half = ceiling / 2;
    const long long span = ceiling - half + 1;
    return static_cast<int>(
        half + static_cast<long long>(h % static_cast<std::uint64_t>(span)));
  }
};

}  // namespace suu::client
