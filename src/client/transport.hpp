// suu::client transports — deadline-bounded line I/O toward one backend.
//
// The coordinator (client/coordinator.hpp) never blocks without a budget:
// every connect, write, and read carries a Deadline, and every outcome is
// an explicit IoStatus the caller can classify (retry? fail over? give
// up?). TcpTransport is the real thing — non-blocking connect plus
// poll()-gated reads/writes against a loopback suu_serve. The Transport
// interface exists so tests can substitute a flaky wrapper
// (client/flaky.hpp) and drive every failure path without a network.
//
// A transport is single-owner and not thread-safe: the coordinator runs
// one request at a time per backend connection, which keeps reply
// correlation trivial (the protocol itself permits pipelining; the client
// simply doesn't need it).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace suu::client {

/// An absolute time budget. All transport calls take one; helpers convert
/// to the milliseconds-remaining form poll() wants.
struct Deadline {
  std::chrono::steady_clock::time_point at;

  static Deadline after_ms(int ms) {
    return Deadline{std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(ms)};
  }
  bool expired() const {
    return std::chrono::steady_clock::now() >= at;
  }
  /// Milliseconds until the deadline, clamped to [0, INT_MAX].
  int remaining_ms() const;
};

/// Outcome of one transport operation.
enum class IoStatus {
  Ok,       ///< the line was fully written / a complete line was read
  Timeout,  ///< the deadline expired first
  Closed,   ///< orderly EOF — includes EOF after a partial (truncated) line
  Error,    ///< connection refused, reset, or any other socket error
};

const char* to_string(IoStatus s) noexcept;

/// Line-oriented request/reply channel to one backend.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Write `line` plus a trailing '\n' in full, or fail.
  virtual IoStatus write_line(const std::string& line,
                              const Deadline& deadline) = 0;

  /// Read the next complete '\n'-terminated line (newline stripped).
  /// Returns Closed on EOF; bytes of a partial final line are discarded —
  /// a truncated reply is indistinguishable from no reply, by design, so
  /// callers treat both as "this shard needs re-issuing".
  virtual IoStatus read_line(std::string* out, const Deadline& deadline) = 0;

  virtual void close() = 0;
};

/// Deadline-bounded TCP connection to 127.0.0.1:port.
class TcpTransport final : public Transport {
 public:
  /// Non-blocking connect; nullptr if the backend refuses, is unreachable,
  /// or the deadline expires during the handshake.
  static std::unique_ptr<TcpTransport> connect(std::uint16_t port,
                                               const Deadline& deadline);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  IoStatus write_line(const std::string& line,
                      const Deadline& deadline) override;
  IoStatus read_line(std::string* out, const Deadline& deadline) override;
  void close() override;

 private:
  explicit TcpTransport(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string buf_;  ///< bytes read past the last returned line
};

/// How the coordinator obtains a connection to backend `index`. The
/// default factory dials TcpTransport::connect on the backend's port;
/// tests wrap it in FlakyTransport to inject client-side faults.
using TransportFactory = std::function<std::unique_ptr<Transport>(
    std::size_t index, const Deadline& deadline)>;

}  // namespace suu::client
