// ShardCoordinator — fault-tolerant fan-out of one estimate over a pool
// of suu_serve backends.
//
// One estimate of R replications splits into K shards (the same
// shard_range grid the service itself uses). The coordinator spreads
// those shards over N backends and merges the replies so that BOTH
// outputs are byte-identical to what one process would have produced:
//
//   table_json   the K shard rows in shard order — byte-identical to
//                ExperimentRunner::print_json over the whole grid (and to
//                the shard envelopes of a streamed estimate);
//   result_json  the aggregate estimate — byte-identical to the result
//                object of a plain single-server estimate request.
//
// Byte-identity is possible because sharded estimates seed by GLOBAL
// replication index and each shard reply (requested with "samples": true)
// carries its raw per-replication makespans at 17 significant digits:
// replaying every shard's samples in shard order through util::OnlineStats
// reproduces the unsharded Welford accumulation bit for bit, and
// service::estimate_result_body guarantees the same formatting. The
// optional lower bound is recomputed locally (the client links the same
// libsuu), which is deterministic for a given instance.
//
// Fault tolerance:
//   - every connect/request carries a deadline (FanoutOptions timeouts);
//   - shard routing is fingerprint-affine via a consistent-hash ring
//     (client/ring.hpp), so a shard keeps returning to the backend whose
//     instance handle and PrecomputeCache entry are already hot;
//   - application-level retryable errors (overloaded, internal, ...) are
//     retried on the same backend under bounded exponential backoff with
//     deterministic jitter (client/backoff.hpp), then failed over;
//   - unknown_handle (the service LRU-expired our session) reopens the
//     handle and re-issues — never a failure;
//   - transport-level failures (timeout, refused connection, reset, EOF
//     or truncation mid-reply) eject the backend from the ring, re-route
//     its queued shards to the survivors, and probe it for re-admission;
//   - with every backend ejected, shards park until a probe succeeds; the
//     run fails only when all backends exhaust their probes. Degrading
//     down to one live backend changes timing only, never output bytes.
//
// Errors the service classifies as fatal (service::classify_error) abort
// the run: a request the service rejects as malformed will be rejected
// again no matter where or when it is retried.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "client/backoff.hpp"
#include "client/transport.hpp"
#include "core/delta.hpp"

namespace suu::client {

/// One suu_serve backend (loopback TCP, --mode=tcp).
struct Backend {
  std::uint16_t port = 0;
};

struct FanoutOptions {
  int shards = 4;                ///< K — shard count, independent of N
  int connect_timeout_ms = 2000; ///< budget per connection handshake
  int request_timeout_ms = 30000;///< budget per request round-trip
  BackoffPolicy backoff;         ///< retry schedule for retryable errors
  int probe_attempts = 2;        ///< re-admission probes per dead backend
  int ring_vnodes = 64;          ///< consistent-hash points per backend
  std::uint64_t jitter_seed = 1; ///< perturbs backoff jitter per run
  /// Connection factory; defaults to TcpTransport::connect on the
  /// backend's port. Tests substitute flaky wrappers here.
  TransportFactory transport;
};

/// The estimate to fan out (mirrors the wire estimate request).
struct EstimateJob {
  std::string instance_text;  ///< instance bytes (core::read_instance)
  std::string solver = "auto";
  std::uint64_t seed = 1;
  int replications = 100;
  bool lower_bound = false;   ///< also merge lower_bound/ratio fields
  /// Optional trace id, propagated as the "trace" envelope key on every
  /// open_instance/estimate the coordinator issues, so one fan-out's spans
  /// can be collected from every backend with the `trace` wire method.
  /// Never affects response bytes.
  std::string trace;
};

/// An instance delta to fan out to every backend holding an open handle
/// (mirrors the update_instance wire method). `instance_text` must be the
/// bytes the coordinator's current sessions were opened with — the base
/// the delta applies to.
struct UpdateSpec {
  std::string instance_text;   ///< current instance (the delta's base)
  core::InstanceDelta delta;   ///< sparse edit (core/delta.hpp)
  std::string trace;           ///< optional trace id, as in EstimateJob
};

struct UpdateResult {
  bool ok = false;
  std::string error;          ///< when !ok: why the update is impossible
  /// The mutated instance in canonical bytes (core::write_instance of the
  /// delta applied locally): what subsequent EstimateJobs must carry so
  /// their fingerprint-affine routing and lazy re-opens agree with the
  /// updated backend sessions.
  std::string instance_text;
  std::uint64_t fingerprint = 0;  ///< the mutated instance's fingerprint
  int updated = 0;   ///< backends whose open handle took the delta in place
  int reopened = 0;  ///< backends re-opened with the new instance
                     ///< (their handle had expired server-side)
  int skipped = 0;   ///< backends left handleless (down, or diverged);
                     ///< the next run() reconnects and re-opens them lazily
};

/// Post-run view of one backend, for tests and the demo tool.
struct BackendReport {
  bool alive = false;        ///< usable when the run ended
  bool ejected = false;      ///< was ejected from the ring at least once
  bool readmitted = false;   ///< came back via a health probe
  int shards_served = 0;
};

struct FanoutResult {
  bool ok = false;
  std::string error;       ///< when !ok: what killed the run

  std::string table_json;  ///< K rows, newline-terminated, shard order
  std::string result_json; ///< merged aggregate result object

  int attempts = 0;        ///< total shard round-trips issued
  int retries = 0;         ///< same-backend re-issues (retryable errors)
  int failovers = 0;       ///< shards moved to a different backend
  int reopens = 0;         ///< unknown_handle re-opens
  int probes = 0;          ///< health probes sent
  /// Max over shards of (first failure -> final success), in ms; -1 when
  /// no shard ever failed. The headline recovery-latency metric.
  double recovery_ms = -1.0;
  std::vector<BackendReport> backends;
};

/// Raw bytes of the `"<key>":{...}` object member inside a wire line —
/// balanced-brace scan (string-aware), never a Json round-trip, which
/// would reformat numbers and destroy byte-level comparisons. Empty
/// string when the key is absent or not an object. The coordinator uses
/// it to lift shard rows out of replies; tests and tools use it to lift
/// reference results out of raw server output.
std::string extract_object(const std::string& line, const std::string& key);

class ShardCoordinator {
 public:
  /// At least one backend. Options are validated on run().
  ShardCoordinator(std::vector<Backend> backends, FanoutOptions options);
  ~ShardCoordinator();

  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;

  /// Fan out `job` and merge. Never throws on backend/wire trouble — that
  /// is reported through FanoutResult; throws only std::bad_alloc-class
  /// failures. Safe to call repeatedly: connections and instance handles
  /// persist across runs of the same instance_text (the backends'
  /// PrecomputeCache entries stay pinned and hot), and are re-opened
  /// transparently when the instance changes.
  FanoutResult run(const EstimateJob& job);

  /// Apply `spec.delta` to every backend's open handle via the
  /// update_instance wire method, after validating it locally against
  /// spec.instance_text. Sequential over the pool (deltas are tiny; the
  /// expensive re-prepare happens lazily on the next estimate). Backends
  /// whose handle expired are re-opened with the NEW instance; backends
  /// that are down or answer with a diverged fingerprint are reset and
  /// lazily recovered by the next run(). Fails (ok = false) only when the
  /// delta itself is invalid — locally, or rejected as bad_delta by a
  /// backend (version skew).
  UpdateResult update(const UpdateSpec& spec);

 private:
  struct SessionPool;

  std::vector<Backend> backends_;
  FanoutOptions options_;
  std::unique_ptr<SessionPool> sessions_;
};

}  // namespace suu::client
