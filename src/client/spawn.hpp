// Spawning local suu_serve daemons — shared by the fan-out demo tool,
// the client fan-out bench, and the failover tests.
//
// A LocalDaemon is one fork/exec'd `suu_serve --mode=tcp --port=0` child
// whose ephemeral port was scraped from its "listening <port>" banner.
// Faults (service/fault.hpp grammar) pass through via --fault=, which is
// how tests arrange for a backend to genuinely die mid-stream: an
// in-process server cannot _exit without taking the test down with it.
//
// Ownership is RAII: destroying (or kill()-ing) a LocalDaemon SIGKILLs
// and reaps the child. SIGKILL, not SIGTERM — these are throwaway test
// processes and the whole point is surviving their ungraceful ends.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>

namespace suu::client {

class LocalDaemon {
 public:
  /// Launch `serve_bin --mode=tcp --port=0 [--fault=<fault>] [extra...]`.
  /// On success ok() is true and port() is live. On failure (exec error,
  /// no banner) the child is reaped and ok() is false.
  explicit LocalDaemon(const std::string& serve_bin,
                       const std::string& fault = "",
                       const std::string& extra_flag = "");
  ~LocalDaemon();

  LocalDaemon(LocalDaemon&& other) noexcept;
  LocalDaemon& operator=(LocalDaemon&&) = delete;
  LocalDaemon(const LocalDaemon&) = delete;
  LocalDaemon& operator=(const LocalDaemon&) = delete;

  bool ok() const noexcept { return pid_ > 0; }
  std::uint16_t port() const noexcept { return port_; }
  pid_t pid() const noexcept { return pid_; }

  /// SIGKILL + reap now (idempotent). The destructor calls this.
  void kill();

 private:
  pid_t pid_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace suu::client
