#include "client/spawn.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <vector>

namespace suu::client {

LocalDaemon::LocalDaemon(const std::string& serve_bin,
                         const std::string& fault,
                         const std::string& extra_flag) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return;
  }
  if (pid == 0) {
    ::close(pipe_fds[0]);
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[1]);
    std::vector<std::string> args = {serve_bin, "--mode=tcp", "--port=0"};
    if (!fault.empty()) args.push_back("--fault=" + fault);
    if (!extra_flag.empty()) args.push_back(extra_flag);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(serve_bin.c_str(), argv.data());
    std::_Exit(127);  // exec failed; the parent sees a missing banner
  }
  ::close(pipe_fds[1]);
  std::string banner;
  char c = 0;
  while (banner.find('\n') == std::string::npos) {
    const ssize_t r = ::read(pipe_fds[0], &c, 1);
    if (r <= 0) break;
    banner.push_back(c);
  }
  ::close(pipe_fds[0]);
  const std::size_t sp = banner.find(' ');
  if (banner.rfind("listening ", 0) == 0 && sp != std::string::npos) {
    port_ = static_cast<std::uint16_t>(
        std::atoi(banner.c_str() + sp + 1));
    pid_ = pid;
  } else {
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
}

LocalDaemon::LocalDaemon(LocalDaemon&& other) noexcept
    : pid_(other.pid_), port_(other.port_) {
  other.pid_ = -1;
  other.port_ = 0;
}

LocalDaemon::~LocalDaemon() { kill(); }

void LocalDaemon::kill() {
  if (pid_ > 0) {
    ::kill(pid_, SIGKILL);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
  }
}

}  // namespace suu::client
