#include "client/ring.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/hash.hpp"

namespace suu::client {

void HashRing::add(std::size_t index, int vnodes) {
  if (contains(index)) return;
  points_.reserve(points_.size() + static_cast<std::size_t>(vnodes));
  for (int v = 0; v < vnodes; ++v) {
    const std::uint64_t pos = util::hash_mix(
        (static_cast<std::uint64_t>(index) << 20) ^
        static_cast<std::uint64_t>(v) ^ 0xc0ffee'5eed'f00dULL);
    points_.emplace_back(pos, index);
  }
  std::sort(points_.begin(), points_.end());
}

void HashRing::remove(std::size_t index) {
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [index](const auto& p) {
                                 return p.second == index;
                               }),
                points_.end());
}

bool HashRing::contains(std::size_t index) const {
  return std::any_of(points_.begin(), points_.end(),
                     [index](const auto& p) { return p.second == index; });
}

std::size_t HashRing::route(std::uint64_t key) const {
  SUU_CHECK_MSG(!points_.empty(), "routing on an empty hash ring");
  const std::uint64_t pos = util::hash_mix(key);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), pos,
      [](const auto& p, std::uint64_t v) { return p.first < v; });
  if (it == points_.end()) it = points_.begin();  // wrap
  return it->second;
}

}  // namespace suu::client
