// Consistent-hash ring over backend indices.
//
// Shard routing must be sticky (the same shard keeps hitting the same
// backend, so that backend's instance handle and PrecomputeCache entry
// stay hot) yet degrade gracefully: when a backend is ejected, only the
// shards that lived on it move, and they spread across the survivors
// instead of all piling onto one neighbor. A classic consistent-hash ring
// with virtual nodes gives both properties; SplitMix64 (util::hash_mix)
// supplies the point placement, so the layout is deterministic across
// runs and processes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace suu::client {

class HashRing {
 public:
  /// Place `vnodes` points for backend `index`. Adding an index twice is
  /// a no-op.
  void add(std::size_t index, int vnodes = 64);

  /// Remove every point of backend `index`. Keys that routed to it move
  /// to their next points — owned by the surviving backends.
  void remove(std::size_t index);

  bool contains(std::size_t index) const;
  bool empty() const noexcept { return points_.empty(); }

  /// The backend owning `key`: the first ring point at or after
  /// hash_mix(key), wrapping. Precondition: !empty().
  std::size_t route(std::uint64_t key) const;

 private:
  /// (point position, backend index), sorted by position.
  std::vector<std::pair<std::uint64_t, std::size_t>> points_;
};

}  // namespace suu::client
