#include "client/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <climits>
#include <cstring>

namespace suu::client {

int Deadline::remaining_ms() const {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      at - std::chrono::steady_clock::now());
  if (left.count() <= 0) return 0;
  if (left.count() > INT_MAX) return INT_MAX;
  return static_cast<int>(left.count());
}

const char* to_string(IoStatus s) noexcept {
  switch (s) {
    case IoStatus::Ok: return "ok";
    case IoStatus::Timeout: return "timeout";
    case IoStatus::Closed: return "closed";
    case IoStatus::Error: return "error";
  }
  return "?";
}

namespace {

/// Wait for `events` on fd within the deadline. Returns Ok when ready,
/// Timeout when the budget runs out, Error on poll failure.
IoStatus wait_fd(int fd, short events, const Deadline& deadline) {
  for (;;) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    const int pr = ::poll(&pfd, 1, deadline.remaining_ms());
    if (pr < 0) {
      if (errno == EINTR) continue;
      return IoStatus::Error;
    }
    if (pr == 0) return IoStatus::Timeout;
    return IoStatus::Ok;  // readable/writable — or HUP/ERR, surfaced by
                          // the read/write that follows
  }
}

}  // namespace

std::unique_ptr<TcpTransport> TcpTransport::connect(
    std::uint16_t port, const Deadline& deadline) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return nullptr;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return nullptr;
    }
    if (wait_fd(fd, POLLOUT, deadline) != IoStatus::Ok) {
      ::close(fd);
      return nullptr;
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      ::close(fd);
      return nullptr;
    }
  }
  return std::unique_ptr<TcpTransport>(new TcpTransport(fd));
}

TcpTransport::~TcpTransport() { close(); }

void TcpTransport::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

IoStatus TcpTransport::write_line(const std::string& line,
                                  const Deadline& deadline) {
  if (fd_ < 0) return IoStatus::Error;
  std::string msg = line;
  msg.push_back('\n');
  std::size_t off = 0;
  while (off < msg.size()) {
    const IoStatus w = wait_fd(fd_, POLLOUT, deadline);
    if (w != IoStatus::Ok) return w;
    const ssize_t n = ::send(fd_, msg.data() + off, msg.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return IoStatus::Error;
    }
    off += static_cast<std::size_t>(n);
  }
  return IoStatus::Ok;
}

IoStatus TcpTransport::read_line(std::string* out, const Deadline& deadline) {
  if (fd_ < 0) return IoStatus::Error;
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      out->assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      if (!out->empty() && out->back() == '\r') out->pop_back();
      return IoStatus::Ok;
    }
    const IoStatus w = wait_fd(fd_, POLLIN, deadline);
    if (w != IoStatus::Ok) return w;
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return IoStatus::Error;
    }
    if (n == 0) return IoStatus::Closed;  // EOF; any partial line in buf_
                                          // is a truncated reply — dropped
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace suu::client
