#include "client/coordinator.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <exception>
#include <mutex>
#include <sstream>
#include <thread>

#include "api/registry.hpp"
#include "client/ring.hpp"
#include "core/io.hpp"
#include "obs/metrics.hpp"
#include "obs/spanlog.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "util/hash.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace suu::client {
namespace {

using service::Json;
using Clock = std::chrono::steady_clock;

}  // namespace

std::string extract_object(const std::string& line, const std::string& key) {
  const std::string needle = '"' + key + "\":";
  std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return {};
  pos += needle.size();
  if (pos >= line.size() || line[pos] != '{') return {};
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (std::size_t i = pos; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      if (--depth == 0) return line.substr(pos, i - pos + 1);
    }
  }
  return {};
}

namespace {

/// How one shard round-trip ended, from the coordinator's point of view.
enum class Outcome {
  Success,    ///< ok reply in hand
  Transport,  ///< connection-level failure — the backend is suspect
  Retryable,  ///< service said try again (overloaded, internal, ...)
  Reopen,     ///< service expired our handle — reopen and re-issue
  Fatal,      ///< service rejected the request itself — retrying is futile
};

struct RequestResult {
  Outcome outcome = Outcome::Transport;
  std::string detail;  ///< io status / error message, for diagnostics
  Json reply{nullptr}; ///< parsed envelope (Success only)
  std::string raw;     ///< raw reply line (Success only)
};

struct ShardState {
  std::uint64_t route_key = 0;  ///< mix(fingerprint, shard index)
  int attempts_here = 0;        ///< attempts on the current backend
  int total_attempts = 0;
  bool failed_once = false;
  Clock::time_point first_failure{};
  double recovery_ms = -1.0;
  std::string row;
  std::vector<double> samples;
  int capped = 0;
};

struct BackendState {
  std::unique_ptr<Transport> transport;
  std::uint64_t handle = 0;
  bool gone = false;  ///< probes exhausted; never coming back this run
  bool ejected_ever = false;
  bool readmitted = false;
  int shards_served = 0;
};

}  // namespace

/// Connections and handles that outlive one run. Borrowed wholesale by
/// run() (whose workers own their BackendState entries without locking)
/// and returned when the workers have joined; update() walks it directly.
/// ShardCoordinator is not itself thread-safe — one run/update at a time —
/// so the pool needs no lock of its own.
struct ShardCoordinator::SessionPool {
  std::vector<BackendState> backends;
  /// The instance bytes every live handle in `backends` was opened (or
  /// last updated) with; empty until the first run/update.
  std::string instance_text;
  std::uint64_t next_id = 1;  ///< request ids, monotone across runs
};

ShardCoordinator::ShardCoordinator(std::vector<Backend> backends,
                                   FanoutOptions options)
    : backends_(std::move(backends)),
      options_(std::move(options)),
      sessions_(std::make_unique<SessionPool>()) {
  sessions_->backends.resize(backends_.size());
  if (!options_.transport) {
    const std::vector<Backend>& pool = backends_;
    const int connect_ms = options_.connect_timeout_ms;
    options_.transport = [&pool, connect_ms](std::size_t index,
                                             const Deadline&) {
      return std::unique_ptr<Transport>(TcpTransport::connect(
          pool[index].port, Deadline::after_ms(connect_ms)));
    };
  }
}

ShardCoordinator::~ShardCoordinator() = default;

namespace {

/// Everything one run shares across its backend workers. Workers touch
/// queues/ring/counters only under mu; transports and handles belong to
/// exactly one worker each and need no lock.
struct Run {
  const EstimateJob& job;
  const FanoutOptions& opt;
  std::atomic<std::uint64_t> next_id{1};

  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::deque<int>> queues;
  std::deque<int> parked;  ///< shards with no routable backend right now
  HashRing ring;
  int unfinished = 0;
  int alive_workers = 0;
  bool fatal = false;
  std::string fatal_error;

  std::vector<ShardState> shards;
  std::vector<BackendState> backends;

  int attempts = 0;
  int retries = 0;
  int failovers = 0;
  int reopens = 0;
  int probes = 0;

  explicit Run(const EstimateJob& j, const FanoutOptions& o) : job(j), opt(o) {}

  void fail(const std::string& why) {
    std::lock_guard<std::mutex> lock(mu);
    if (!fatal) {
      fatal = true;
      fatal_error = why;
    }
    cv.notify_all();
  }

  bool finished() {
    std::lock_guard<std::mutex> lock(mu);
    return fatal || unfinished == 0;
  }
};

/// One request/reply exchange on a backend's (already connected)
/// transport. Classifies everything the wire can do to us.
RequestResult roundtrip(const FanoutOptions& opt, BackendState& b,
                        const std::string& req) {
  RequestResult rr;
  const Deadline deadline = Deadline::after_ms(opt.request_timeout_ms);
  IoStatus s = b.transport->write_line(req, deadline);
  if (s != IoStatus::Ok) {
    rr.outcome = Outcome::Transport;
    rr.detail = std::string("write: ") + to_string(s);
    return rr;
  }
  std::string line;
  s = b.transport->read_line(&line, deadline);
  if (s != IoStatus::Ok) {
    rr.outcome = Outcome::Transport;
    rr.detail = std::string("read: ") + to_string(s);
    return rr;
  }
  Json reply(nullptr);
  try {
    reply = Json::parse(line);
  } catch (const service::JsonError& e) {
    // A reply that does not parse is a connection that died mid-line
    // (or a server bug); either way this backend's stream is unusable.
    rr.outcome = Outcome::Transport;
    rr.detail = std::string("garbled reply: ") + e.what();
    return rr;
  }
  const Json* ok = reply.find("ok");
  if (ok == nullptr || !ok->is_bool()) {
    rr.outcome = Outcome::Transport;
    rr.detail = "reply missing 'ok'";
    return rr;
  }
  if (!ok->as_bool("ok")) {
    std::string code;
    std::string message;
    if (const Json* err = reply.find("error")) {
      if (const Json* c = err->find("code")) code = c->as_string("code");
      if (const Json* m = err->find("message")) {
        message = m->as_string("message");
      }
    }
    rr.detail = code + ": " + message;
    switch (service::classify_error(code)) {
      case service::ErrorClass::Fatal: rr.outcome = Outcome::Fatal; break;
      case service::ErrorClass::Reopen: rr.outcome = Outcome::Reopen; break;
      case service::ErrorClass::Retryable:
        rr.outcome = Outcome::Retryable;
        break;
    }
    return rr;
  }
  rr.outcome = Outcome::Success;
  rr.reply = std::move(reply);
  rr.raw = std::move(line);
  return rr;
}

/// The optional `"trace"` envelope fragment (with its leading comma) for
/// every request this run issues; empty when the job carries no trace id.
std::string trace_field(const Run& run) {
  if (run.job.trace.empty()) return {};
  std::string out = ",\"trace\":";
  service::json_append_quoted(out, run.job.trace);
  return out;
}

/// One open_instance round-trip: on success the backend's handle is set.
/// A shape-violating reply is classified Transport — the stream cannot be
/// trusted.
RequestResult open_instance_req(const FanoutOptions& opt, BackendState& b,
                                const std::string& instance_text,
                                const std::string& trace_json,
                                std::uint64_t id) {
  std::string req = "{\"id\":" + std::to_string(id) + trace_json +
                    ",\"method\":\"open_instance\",\"params\":{\"instance\":";
  service::json_append_quoted(req, instance_text);
  req += "}}";
  RequestResult rr = roundtrip(opt, b, req);
  if (rr.outcome != Outcome::Success) return rr;
  const Json* result = rr.reply.find("result");
  const Json* handle = result ? result->find("handle") : nullptr;
  if (handle == nullptr) {
    rr.outcome = Outcome::Transport;
    rr.detail = "open_instance reply missing handle";
    return rr;
  }
  b.handle = static_cast<std::uint64_t>(handle->as_int64("handle"));
  return rr;
}

/// Connect (if needed), open the shared instance handle (if needed), and
/// issue shard `s`. The handle is opened once per connection and reused —
/// that is what keeps the backend's PrecomputeCache entry pinned and hot.
RequestResult issue(Run& run, std::size_t bi, int s) {
  BackendState& b = run.backends[bi];
  if (!b.transport) {
    b.handle = 0;
    b.transport = run.opt.transport(
        bi, Deadline::after_ms(run.opt.connect_timeout_ms));
    if (!b.transport) {
      RequestResult rr;
      rr.outcome = Outcome::Transport;
      rr.detail = "connect: refused or timed out";
      return rr;
    }
  }
  if (b.handle == 0) {
    const RequestResult rr =
        open_instance_req(run.opt, b, run.job.instance_text, trace_field(run),
                          run.next_id.fetch_add(1));
    if (rr.outcome != Outcome::Success) return rr;
  }
  std::string req = "{\"id\":" + std::to_string(run.next_id.fetch_add(1)) +
                    trace_field(run) +
                    ",\"method\":\"estimate\",\"params\":{\"handle\":" +
                    std::to_string(b.handle) + ",\"solver\":";
  service::json_append_quoted(req, run.job.solver);
  req += ",\"seed\":" + std::to_string(run.job.seed);
  req += ",\"replications\":" + std::to_string(run.job.replications);
  req += ",\"shard\":" + std::to_string(s);
  req += ",\"shards\":" + std::to_string(run.opt.shards);
  req += ",\"samples\":true}}";
  return roundtrip(run.opt, b, req);
}

/// A cheap liveness handshake: fresh connection, one stats round-trip.
bool probe(Run& run, std::size_t bi) {
  BackendState& b = run.backends[bi];
  b.transport.reset();
  b.handle = 0;
  b.transport = run.opt.transport(
      bi, Deadline::after_ms(run.opt.connect_timeout_ms));
  if (!b.transport) return false;
  const std::string req = "{\"id\":" +
                          std::to_string(run.next_id.fetch_add(1)) +
                          ",\"method\":\"stats\"}";
  const RequestResult rr = roundtrip(run.opt, b, req);
  if (rr.outcome != Outcome::Success) {
    b.transport.reset();
    b.handle = 0;
    return false;
  }
  return true;
}

/// Store a successful shard reply. Returns false (-> fatal) when the
/// reply violates the protocol shape.
bool record_success(Run& run, std::size_t bi, int s,
                    const RequestResult& rr) {
  ShardState& st = run.shards[static_cast<std::size_t>(s)];
  const Json* result = rr.reply.find("result");
  const Json* seq = result ? result->find("seq") : nullptr;
  const Json* samples = result ? result->find("samples") : nullptr;
  const Json* capped = result ? result->find("capped") : nullptr;
  std::string row = extract_object(rr.raw, "shard");
  if (seq == nullptr || samples == nullptr || capped == nullptr ||
      row.empty() || seq->as_int64("seq") != s) {
    run.fail("malformed shard reply for shard " + std::to_string(s));
    return false;
  }
  st.row = std::move(row);
  st.capped = static_cast<int>(capped->as_int64("capped"));
  st.samples.clear();
  for (const Json& x : samples->as_array("samples")) {
    st.samples.push_back(x.as_double("sample"));
  }
  if (st.failed_once) {
    st.recovery_ms =
        std::chrono::duration<double, std::milli>(Clock::now() -
                                                  st.first_failure)
            .count();
  }
  std::lock_guard<std::mutex> lock(run.mu);
  ++run.backends[bi].shards_served;
  if (--run.unfinished == 0) run.cv.notify_all();
  return true;
}

void note_failure(ShardState& st) {
  if (!st.failed_once) {
    st.failed_once = true;
    st.first_failure = Clock::now();
  }
}

/// Eject backend `bi`, re-route its queue (and `failed_shard`) over the
/// surviving ring, then try to win re-admission with health probes. With
/// the ring empty the shards park until some backend comes back.
void eject_and_probe(Run& run, std::size_t bi, int failed_shard) {
  BackendState& b = run.backends[bi];
  b.transport.reset();
  b.handle = 0;
  {
    std::lock_guard<std::mutex> lock(run.mu);
    run.ring.remove(bi);
    b.ejected_ever = true;
    std::deque<int> moved;
    moved.push_back(failed_shard);
    auto& q = run.queues[bi];
    moved.insert(moved.end(), q.begin(), q.end());
    q.clear();
    for (const int s : moved) {
      run.shards[static_cast<std::size_t>(s)].attempts_here = 0;
      if (run.ring.empty()) {
        run.parked.push_back(s);
      } else {
        const std::size_t target =
            run.ring.route(run.shards[static_cast<std::size_t>(s)].route_key);
        run.queues[target].push_back(s);
        ++run.failovers;
      }
    }
    run.cv.notify_all();
  }

  const std::uint64_t probe_seed =
      run.opt.jitter_seed ^
      util::hash_mix(0xb0 + static_cast<std::uint64_t>(bi) + 1);
  for (int attempt = 1; attempt <= run.opt.probe_attempts; ++attempt) {
    if (run.finished()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(
        run.opt.backoff.delay_ms(attempt, probe_seed)));
    if (run.finished()) return;
    {
      std::lock_guard<std::mutex> lock(run.mu);
      ++run.probes;
    }
    if (probe(run, bi)) {
      std::lock_guard<std::mutex> lock(run.mu);
      run.ring.add(bi, run.opt.ring_vnodes);
      b.readmitted = true;
      while (!run.parked.empty()) {
        run.queues[bi].push_back(run.parked.front());
        run.parked.pop_front();
      }
      run.cv.notify_all();
      return;
    }
  }
  // Out of probes: this worker retires. If it was the last one and work
  // remains, the run cannot complete.
  std::lock_guard<std::mutex> lock(run.mu);
  b.gone = true;
  if (--run.alive_workers == 0 && run.unfinished > 0 && !run.fatal) {
    run.fatal = true;
    run.fatal_error = "all backends failed";
  }
  run.cv.notify_all();
}

void process_shard(Run& run, std::size_t bi, int s) {
  ShardState& st = run.shards[static_cast<std::size_t>(s)];
  {
    std::lock_guard<std::mutex> lock(run.mu);
    ++run.attempts;
  }
  ++st.total_attempts;
  // Backstop against livelock: a shard bouncing forever between retries
  // and failovers eventually gives up on the whole run.
  const int cap = run.opt.backoff.max_attempts *
                  (static_cast<int>(run.backends.size()) + 2);
  if (st.total_attempts > cap) {
    run.fail("shard " + std::to_string(s) + " exhausted " +
             std::to_string(cap) + " attempts");
    return;
  }

  const std::uint64_t attempt_t0 = obs::enabled() ? obs::now_us() : 0;
  const RequestResult rr = issue(run, bi, s);
  if (obs::enabled()) {
    static obs::Histogram& rtt =
        obs::Registry::global().histogram("suu_fanout_shard_rtt_us");
    rtt.observe(obs::now_us() - attempt_t0);
  }
  switch (rr.outcome) {
    case Outcome::Success:
      record_success(run, bi, s, rr);
      return;
    case Outcome::Fatal:
      run.fail("shard " + std::to_string(s) + ": " + rr.detail);
      return;
    case Outcome::Reopen: {
      // Our handle was LRU-expired server-side; the backend itself is
      // fine. Reopen on the next issue() and re-run immediately.
      note_failure(st);
      run.backends[bi].handle = 0;
      std::lock_guard<std::mutex> lock(run.mu);
      ++run.reopens;
      run.queues[bi].push_front(s);
      run.cv.notify_all();
      return;
    }
    case Outcome::Retryable: {
      note_failure(st);
      ++st.attempts_here;
      {
        std::lock_guard<std::mutex> lock(run.mu);
        ++run.retries;
      }
      if (st.attempts_here < run.opt.backoff.max_attempts) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            run.opt.backoff.delay_ms(st.attempts_here,
                                     run.opt.jitter_seed ^ st.route_key)));
        std::lock_guard<std::mutex> lock(run.mu);
        run.queues[bi].push_back(s);
        run.cv.notify_all();
        return;
      }
      // This backend keeps refusing: move the shard elsewhere (salted
      // re-route so the ring does not send it straight back). With one
      // backend left it stays put — degradation, not deadlock; the
      // total-attempts backstop above still bounds the run.
      st.attempts_here = 0;
      std::lock_guard<std::mutex> lock(run.mu);
      std::size_t target = bi;
      for (int salt = 1; salt <= 8 && target == bi; ++salt) {
        target = run.ring.route(util::hash_combine(
            st.route_key, static_cast<std::uint64_t>(salt)));
      }
      if (target != bi) ++run.failovers;
      run.queues[target].push_back(s);
      run.cv.notify_all();
      return;
    }
    case Outcome::Transport:
      note_failure(st);
      eject_and_probe(run, bi, s);
      return;
  }
}

void worker(Run& run, std::size_t bi) {
  try {
    for (;;) {
      int s = -1;
      {
        std::unique_lock<std::mutex> lock(run.mu);
        run.cv.wait(lock, [&] {
          return run.fatal || run.unfinished == 0 ||
                 run.backends[bi].gone || !run.queues[bi].empty();
        });
        if (run.fatal || run.unfinished == 0 || run.backends[bi].gone) {
          return;
        }
        s = run.queues[bi].front();
        run.queues[bi].pop_front();
      }
      process_shard(run, bi, s);
    }
  } catch (const std::exception& e) {
    run.fail(std::string("worker exception: ") + e.what());
  }
}

}  // namespace

FanoutResult ShardCoordinator::run(const EstimateJob& job) {
  FanoutResult out;
  if (backends_.empty()) {
    out.error = "no backends";
    return out;
  }
  if (job.replications < 1 || options_.shards < 1 ||
      options_.shards > job.replications) {
    out.error = "need 1 <= shards <= replications";
    return out;
  }

  // Parse the instance locally: its fingerprint keys the affine routing,
  // and the merged lower bound (when asked for) is recomputed here with
  // the exact code path the service would have used.
  std::shared_ptr<const core::Instance> instance;
  try {
    std::istringstream is(job.instance_text);
    instance =
        std::make_shared<const core::Instance>(core::read_instance(is));
  } catch (const std::exception& e) {
    out.error = std::string("bad instance: ") + e.what();
    return out;
  }

  Run run(job, options_);
  run.queues.resize(backends_.size());
  // Borrow the persistent pool: connections and handles opened by a
  // previous run (or update) of the same instance bytes survive, keeping
  // the backends' PrecomputeCache entries pinned and hot. A different
  // instance invalidates the handles — they name the old instance
  // server-side — but keeps the connections.
  if (sessions_->instance_text != job.instance_text) {
    for (BackendState& b : sessions_->backends) b.handle = 0;
    sessions_->instance_text = job.instance_text;
  }
  run.backends = std::move(sessions_->backends);
  run.next_id.store(sessions_->next_id);
  for (BackendState& b : run.backends) {
    b.gone = false;
    b.ejected_ever = false;
    b.readmitted = false;
    b.shards_served = 0;
  }
  run.shards.resize(static_cast<std::size_t>(options_.shards));
  run.unfinished = options_.shards;
  run.alive_workers = static_cast<int>(backends_.size());
  for (std::size_t bi = 0; bi < backends_.size(); ++bi) {
    run.ring.add(bi, options_.ring_vnodes);
  }
  for (int s = 0; s < options_.shards; ++s) {
    ShardState& st = run.shards[static_cast<std::size_t>(s)];
    st.route_key = util::hash_combine(instance->fingerprint(),
                                      static_cast<std::uint64_t>(s));
    run.queues[run.ring.route(st.route_key)].push_back(s);
  }

  std::vector<std::thread> threads;
  threads.reserve(backends_.size());
  for (std::size_t bi = 0; bi < backends_.size(); ++bi) {
    threads.emplace_back([&run, bi] { worker(run, bi); });
  }
  for (std::thread& t : threads) t.join();

  // Hand connections and handles back to the pool (fatal runs included:
  // whatever survived is still good for the next run).
  sessions_->backends = std::move(run.backends);
  sessions_->next_id = run.next_id.load();
  const std::vector<BackendState>& pool = sessions_->backends;

  {
    std::lock_guard<std::mutex> lock(run.mu);
    out.attempts = run.attempts;
    out.retries = run.retries;
    out.failovers = run.failovers;
    out.reopens = run.reopens;
    out.probes = run.probes;
    out.backends.resize(backends_.size());
    for (std::size_t bi = 0; bi < backends_.size(); ++bi) {
      BackendReport& rep = out.backends[bi];
      rep.alive = run.ring.contains(bi);
      rep.ejected = pool[bi].ejected_ever;
      rep.readmitted = pool[bi].readmitted;
      rep.shards_served = pool[bi].shards_served;
    }
    if (run.fatal) {
      out.error = run.fatal_error;
      return out;
    }
  }

  // Merge. Rows concatenate in shard order; the aggregate replays every
  // shard's samples in that same order through Welford, which is exactly
  // the accumulation the unsharded estimate performed.
  util::OnlineStats agg;
  int capped_total = 0;
  for (const ShardState& st : run.shards) {
    out.table_json += st.row;
    out.table_json.push_back('\n');
    for (const double x : st.samples) agg.add(x);
    capped_total += st.capped;
    out.recovery_ms = std::max(out.recovery_ms, st.recovery_ms);
  }

  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.counter("suu_fanout_runs_total").add();
    reg.counter("suu_fanout_attempts_total")
        .add(static_cast<std::uint64_t>(out.attempts));
    reg.counter("suu_fanout_retries_total")
        .add(static_cast<std::uint64_t>(out.retries));
    reg.counter("suu_fanout_failovers_total")
        .add(static_cast<std::uint64_t>(out.failovers));
    reg.counter("suu_fanout_reopens_total")
        .add(static_cast<std::uint64_t>(out.reopens));
    reg.counter("suu_fanout_probes_total")
        .add(static_cast<std::uint64_t>(out.probes));
    std::uint64_t readmits = 0;
    for (const BackendReport& rep : out.backends) {
      if (rep.readmitted) ++readmits;
    }
    reg.counter("suu_fanout_readmits_total").add(readmits);
    static obs::Histogram& attempts_hist =
        reg.histogram("suu_fanout_shard_attempts");
    for (const ShardState& st : run.shards) {
      attempts_hist.observe(static_cast<std::uint64_t>(st.total_attempts));
    }
  }

  // Solver name / n / m come from the first row — the service reports the
  // RESOLVED solver there ("auto" dispatches per instance structure).
  std::string solver_name;
  int n = 0;
  int m = 0;
  try {
    const Json row = Json::parse(run.shards.front().row);
    const Json* sv = row.find("solver");
    const Json* jn = row.find("n");
    const Json* jm = row.find("m");
    if (sv == nullptr || jn == nullptr || jm == nullptr) {
      out.error = "shard row missing solver/n/m";
      return out;
    }
    solver_name = sv->as_string("solver");
    n = static_cast<int>(jn->as_int64("n"));
    m = static_cast<int>(jm->as_int64("m"));
  } catch (const std::exception& e) {
    out.error = std::string("unparseable shard row: ") + e.what();
    return out;
  }

  std::string result = service::estimate_result_body(
      solver_name, n, m, job.replications, capped_total,
      util::make_estimate(agg));
  if (job.lower_bound) {
    const algos::LowerBound lb = api::lower_bound_auto(*instance);
    result += ",\"lower_bound\":" + util::fmt(lb.value, 6);
    if (lb.value > 0.0) {
      const util::Estimate est = util::make_estimate(agg);
      result += ",\"ratio\":" + util::fmt(est.mean / lb.value, 6);
    }
  }
  result += '}';
  out.result_json = std::move(result);
  out.ok = true;
  return out;
}

namespace {

std::string fp_hex(std::uint64_t fp) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

/// The update_instance request line for one backend's handle. Edge lists
/// and q cells serialize in the delta's own order (the server validates
/// set-semantically; order only matters for deletions-before-additions,
/// which the method fixes server-side).
std::string update_request(std::uint64_t id, const std::string& trace_json,
                           std::uint64_t handle,
                           const core::InstanceDelta& delta) {
  std::string req = "{\"id\":" + std::to_string(id) + trace_json +
                    ",\"method\":\"update_instance\",\"params\":{\"handle\":" +
                    std::to_string(handle);
  if (!delta.q.empty()) {
    req += ",\"q\":{";
    bool first = true;
    for (const auto& [cell, value] : delta.q) {
      if (!first) req.push_back(',');
      first = false;
      req += '"' + std::to_string(cell) + "\":" + service::json_number(value);
    }
    req += '}';
  }
  const auto edge_list = [&req](const char* key,
                                const std::vector<std::pair<int, int>>& es) {
    if (es.empty()) return;
    req += std::string(",\"") + key + "\":[";
    bool first = true;
    for (const auto& [u, v] : es) {
      if (!first) req.push_back(',');
      first = false;
      req += '[' + std::to_string(u) + ',' + std::to_string(v) + ']';
    }
    req += ']';
  };
  edge_list("add_edges", delta.add_edges);
  edge_list("del_edges", delta.del_edges);
  req += "}}";
  return req;
}

}  // namespace

UpdateResult ShardCoordinator::update(const UpdateSpec& spec) {
  UpdateResult out;

  // Apply the delta locally first: the mutated instance's canonical bytes
  // and fingerprint must be known regardless of which backends are
  // reachable — they are what the caller's next EstimateJob must carry.
  std::shared_ptr<const core::Instance> base;
  try {
    std::istringstream is(spec.instance_text);
    base = std::make_shared<const core::Instance>(core::read_instance(is));
  } catch (const std::exception& e) {
    out.error = std::string("bad instance: ") + e.what();
    return out;
  }
  std::shared_ptr<const core::Instance> next;
  try {
    next = std::make_shared<const core::Instance>(
        core::apply_delta(*base, spec.delta));
  } catch (const core::DeltaError& e) {
    out.error = std::string("bad delta: ") + e.what();
    return out;
  }
  {
    std::ostringstream os;
    core::write_instance(os, *next);
    out.instance_text = os.str();
  }
  out.fingerprint = next->fingerprint();
  const std::string expect_fp = fp_hex(out.fingerprint);

  std::string trace_json;
  if (!spec.trace.empty()) {
    trace_json = ",\"trace\":";
    service::json_append_quoted(trace_json, spec.trace);
  }

  // Handles are only worth updating if they hold the delta's base; a pool
  // opened on different bytes would delta a different instance.
  const bool base_matches = sessions_->instance_text == spec.instance_text;
  for (std::size_t bi = 0; bi < sessions_->backends.size(); ++bi) {
    BackendState& b = sessions_->backends[bi];
    if (!base_matches) b.handle = 0;
    if (!b.transport || b.handle == 0) continue;  // run() re-opens lazily

    RequestResult rr = roundtrip(
        options_,  b,
        update_request(sessions_->next_id++, trace_json, b.handle,
                       spec.delta));
    if (rr.outcome == Outcome::Reopen) {
      // The backend LRU-expired our handle, so it never held the parent —
      // nothing to delta there. Open the mutated instance directly.
      b.handle = 0;
      rr = open_instance_req(options_, b, out.instance_text, trace_json,
                             sessions_->next_id++);
      if (rr.outcome == Outcome::Success && b.handle != 0) {
        ++out.reopened;
      } else {
        b.transport.reset();
        ++out.skipped;
      }
      continue;
    }
    if (rr.outcome == Outcome::Fatal) {
      // A delta that passed local validation was rejected server-side:
      // version skew between client and backend. Leave no half-updated
      // pool behind — drop every handle so the next run() opens whichever
      // instance it actually wants, and report the skew.
      for (BackendState& bb : sessions_->backends) bb.handle = 0;
      sessions_->instance_text.clear();
      out.error = "backend " + std::to_string(bi) + ": " + rr.detail;
      return out;
    }
    if (rr.outcome != Outcome::Success) {
      // Transport trouble or a transient server condition (busy_handle,
      // overloaded): drop the connection and let the next run() recover it
      // with a fresh open of the new instance.
      b.transport.reset();
      b.handle = 0;
      ++out.skipped;
      continue;
    }
    bool verified = false;
    try {
      const Json* result = rr.reply.find("result");
      const Json* fp = result ? result->find("fingerprint") : nullptr;
      verified = fp != nullptr && fp->as_string("fingerprint") == expect_fp;
    } catch (const service::JsonError&) {
    }
    if (!verified) {
      // The backend applied the delta to something other than our base —
      // its session diverged. Reset; lazy re-open fixes it.
      b.transport.reset();
      b.handle = 0;
      ++out.skipped;
      continue;
    }
    ++out.updated;
  }

  sessions_->instance_text = out.instance_text;
  out.ok = true;
  return out;
}

}  // namespace suu::client
