// FlakyTransport — a deterministic client-side fault wrapper for tests.
//
// The server-side injector (service/fault.hpp) breaks real connections;
// this wrapper breaks them from the client's point of view without any
// server at all, so coordinator unit tests can hit Timeout/Closed/Error
// paths — and garbled replies — on exact operations. Faults trigger on
// 1-based operation ordinals counted per kind (reads and writes
// separately), never on timing.
//
// Test-only by intent: nothing in the production path constructs one.
#pragma once

#include <memory>
#include <string>

#include "client/transport.hpp"

namespace suu::client {

/// Which single fault this wrapper injects, and where.
struct FlakySpec {
  int fail_read_at = -1;    ///< 1-based read_line ordinal; -1 = never
  int fail_write_at = -1;   ///< 1-based write_line ordinal; -1 = never
  IoStatus failure = IoStatus::Error;  ///< status returned at the trigger
  int garble_read_at = -1;  ///< 1-based read ordinal: return Ok but only
                            ///< the first half of the line (parse-level
                            ///< corruption rather than transport failure)
};

class FlakyTransport final : public Transport {
 public:
  FlakyTransport(std::unique_ptr<Transport> inner, const FlakySpec& spec)
      : inner_(std::move(inner)), spec_(spec) {}

  IoStatus write_line(const std::string& line,
                      const Deadline& deadline) override {
    ++writes_;
    if (writes_ == spec_.fail_write_at) {
      inner_->close();  // a failed connection doesn't come back by itself
      return spec_.failure;
    }
    return inner_->write_line(line, deadline);
  }

  IoStatus read_line(std::string* out, const Deadline& deadline) override {
    ++reads_;
    if (reads_ == spec_.fail_read_at) {
      inner_->close();
      return spec_.failure;
    }
    const IoStatus s = inner_->read_line(out, deadline);
    if (s == IoStatus::Ok && reads_ == spec_.garble_read_at) {
      out->resize(out->size() / 2);
      inner_->close();  // mirrors a peer dying mid-line
    }
    return s;
  }

  void close() override { inner_->close(); }

 private:
  std::unique_ptr<Transport> inner_;
  FlakySpec spec_;
  int reads_ = 0;
  int writes_ = 0;
};

}  // namespace suu::client
