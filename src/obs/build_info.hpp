// Version and build-flag identity, exported as the `suu_build_info` metric
// and by `suu_serve --version`, so scraped dashboards can tell deployments
// apart.

#pragma once

namespace suu::obs {

inline constexpr const char* kVersion = "0.8.0";

inline constexpr const char* build_type() noexcept {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

inline constexpr const char* obs_mode() noexcept {
#ifdef SUU_OBS_DISABLED
  return "compiled-out";
#else
  return "on";
#endif
}

}  // namespace suu::obs
