#include "obs/metrics.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <variant>

namespace suu::obs {

// ---------------------------------------------------------------- snapshot

std::uint64_t Histogram::Snapshot::quantile(double q) const noexcept {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation, 1-based; ceil without float drift.
  const double target = q * static_cast<double>(count);
  std::uint64_t rank = static_cast<std::uint64_t>(target);
  if (static_cast<double>(rank) < target) ++rank;
  if (rank == 0) rank = 1;
  std::uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cum += buckets[static_cast<std::size_t>(i)];
    if (cum >= rank) return bucket_bound(i);
  }
  return bucket_bound(kBuckets - 1);  // overflow: clamp to last finite bound
}

void Histogram::Snapshot::merge_from(const Snapshot& other) noexcept {
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
}

// ---------------------------------------------------------------- registry

namespace {

using MetricNode =
    std::variant<std::unique_ptr<Counter>, std::unique_ptr<Gauge>,
                 std::unique_ptr<Histogram>, std::string /* info labels */>;

// Split `name{labels}` into base name and raw label body (no braces).
void split_name(const std::string& full, std::string& base,
                std::string& labels) {
  const std::size_t brace = full.find('{');
  if (brace == std::string::npos) {
    base = full;
    labels.clear();
    return;
  }
  base = full.substr(0, brace);
  labels = full.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') labels.pop_back();
}

void append_metric_line(std::string& out, const std::string& base,
                        const std::string& labels, const char* suffix,
                        const std::string& extra_label, std::uint64_t value) {
  out += base;
  out += suffix;
  if (!labels.empty() || !extra_label.empty()) {
    out += '{';
    out += labels;
    if (!labels.empty() && !extra_label.empty()) out += ',';
    out += extra_label;
    out += '}';
  }
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

}  // namespace

struct Registry::Impl {
  mutable std::mutex mu;
  // std::map: stable node addresses AND sorted iteration for rendering.
  std::map<std::string, MetricNode> metrics;
};

Registry::Impl& Registry::impl() const {
  static Impl* impl = new Impl();  // leaked: usable during static teardown
  return *impl;
}

Registry& Registry::global() {
  static Registry* reg = new Registry();
  return *reg;
}

Counter& Registry::counter(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.metrics.find(name);
  if (it == im.metrics.end()) {
    it = im.metrics.emplace(name, std::make_unique<Counter>()).first;
  }
  return *std::get<std::unique_ptr<Counter>>(it->second);
}

Gauge& Registry::gauge(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.metrics.find(name);
  if (it == im.metrics.end()) {
    it = im.metrics.emplace(name, std::make_unique<Gauge>()).first;
  }
  return *std::get<std::unique_ptr<Gauge>>(it->second);
}

Histogram& Registry::histogram(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.metrics.find(name);
  if (it == im.metrics.end()) {
    it = im.metrics.emplace(name, std::make_unique<Histogram>()).first;
  }
  return *std::get<std::unique_ptr<Histogram>>(it->second);
}

void Registry::set_info(const std::string& name, const std::string& labels) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.metrics.insert_or_assign(name, MetricNode(labels));
}

Histogram* Registry::find_histogram(const std::string& name) const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.metrics.find(name);
  if (it == im.metrics.end()) return nullptr;
  auto* p = std::get_if<std::unique_ptr<Histogram>>(&it->second);
  return p ? p->get() : nullptr;
}

Counter* Registry::find_counter(const std::string& name) const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.metrics.find(name);
  if (it == im.metrics.end()) return nullptr;
  auto* p = std::get_if<std::unique_ptr<Counter>>(&it->second);
  return p ? p->get() : nullptr;
}

Gauge* Registry::find_gauge(const std::string& name) const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.metrics.find(name);
  if (it == im.metrics.end()) return nullptr;
  auto* p = std::get_if<std::unique_ptr<Gauge>>(&it->second);
  return p ? p->get() : nullptr;
}

std::string render_histogram_text(const std::string& name,
                                  const Histogram::Snapshot& s) {
  std::string base, labels;
  split_name(name, base, labels);
  std::string out;
  // Render the cumulative prefix up to the highest non-empty finite bucket
  // (everything beyond it repeats the same cumulative count), then +Inf.
  int last = -1;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    if (s.buckets[static_cast<std::size_t>(i)] != 0) last = i;
  }
  std::uint64_t cum = 0;
  for (int i = 0; i <= last; ++i) {
    cum += s.buckets[static_cast<std::size_t>(i)];
    append_metric_line(out, base, labels, "_bucket",
                       "le=\"" + std::to_string(Histogram::bucket_bound(i)) +
                           "\"",
                       cum);
  }
  append_metric_line(out, base, labels, "_bucket", "le=\"+Inf\"", s.count);
  append_metric_line(out, base, labels, "_sum", "", s.sum);
  append_metric_line(out, base, labels, "_count", "", s.count);
  return out;
}

std::string Registry::render_prometheus() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::string out;
  std::string prev_base;
  for (const auto& [name, node] : im.metrics) {
    std::string base, labels;
    split_name(name, base, labels);
    const char* type = nullptr;
    if (std::holds_alternative<std::unique_ptr<Counter>>(node)) {
      type = "counter";
    } else if (std::holds_alternative<std::unique_ptr<Histogram>>(node)) {
      type = "histogram";
    } else {
      type = "gauge";  // Gauge and info metrics
    }
    if (base != prev_base) {
      out += "# TYPE " + base + " " + type + "\n";
      prev_base = base;
    }
    if (const auto* c = std::get_if<std::unique_ptr<Counter>>(&node)) {
      append_metric_line(out, base, labels, "", "", (*c)->value());
    } else if (const auto* g = std::get_if<std::unique_ptr<Gauge>>(&node)) {
      out += base;
      if (!labels.empty()) out += "{" + labels + "}";
      out += ' ';
      out += std::to_string((*g)->value());
      out += '\n';
    } else if (const auto* h =
                   std::get_if<std::unique_ptr<Histogram>>(&node)) {
      out += render_histogram_text(name, (*h)->snapshot());
    } else if (const auto* info = std::get_if<std::string>(&node)) {
      out += base;
      if (!info->empty()) out += "{" + *info + "}";
      out += " 1\n";
    }
  }
  return out;
}

void Registry::reset_all() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (auto& [name, node] : im.metrics) {
    if (auto* c = std::get_if<std::unique_ptr<Counter>>(&node)) {
      (*c)->reset();
    } else if (auto* g = std::get_if<std::unique_ptr<Gauge>>(&node)) {
      (*g)->reset();
    } else if (auto* h = std::get_if<std::unique_ptr<Histogram>>(&node)) {
      (*h)->reset();
    }
  }
}

}  // namespace suu::obs
