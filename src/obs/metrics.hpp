// suu::obs — lock-cheap counters, gauges, and mergeable log-bucket latency
// histograms behind a process-wide registry with Prometheus-style text
// exposition.
//
// Design constraints (docs/observability.md):
//   * Hot paths pay one relaxed atomic add. Call sites hold a static
//     reference obtained once from the registry:
//         static obs::Counter& c =
//             obs::Registry::global().counter("suu_lp_solves_total");
//         c.add();
//     Registered metric objects are never destroyed or moved, so the
//     reference stays valid for the life of the process.
//   * Histograms bucket integer microsecond values into fixed log-spaced
//     buckets (4 sub-buckets per octave, exact integer bounds — no
//     floating-point log in the hot path), so merging two histograms is
//     bucket-wise addition: associative, commutative, and deterministic.
//   * render_prometheus() output is byte-deterministic for a given set of
//     metric values: names are sorted, bucket bounds are integers.
//   * obs::set_enabled(false) (suu_serve --no-obs) turns every add/observe
//     into a relaxed load + branch; compiling with SUU_OBS_DISABLED removes
//     even that.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace suu::obs {

#ifdef SUU_OBS_DISABLED
inline constexpr bool compiled_in = false;
inline bool enabled() noexcept { return false; }
inline void set_enabled(bool) noexcept {}
#else
inline constexpr bool compiled_in = true;
namespace detail {
inline std::atomic<bool> g_enabled{true};
}  // namespace detail
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}
#endif

// ---------------------------------------------------------------- counter

// Monotonic counter. set() exists for mirroring externally-accumulated
// totals (e.g. Engine::Stats) into the registry at scrape time.
class Counter {
 public:
  void add(std::uint64_t d = 1) noexcept {
    if (enabled()) v_.fetch_add(d, std::memory_order_relaxed);
  }
  void set(std::uint64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// ---------------------------------------------------------------- gauge

class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    if (enabled()) v_.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// ---------------------------------------------------------------- histogram

// Fixed log-bucket histogram over non-negative integer values (by
// convention microseconds). Buckets follow the 2-significant-bit scheme:
// values 0..3 get their own buckets, then each octave o >= 2 splits into
// four sub-buckets keyed by the two bits after the leading one. Inclusive
// upper bounds: 0,1,2,3,4,5,6,7,9,11,13,15,19,23,27,31,39,... — i.e.
// ({4,5,6,7}+1 << (o-2)) - 1 — giving <= 25% relative resolution with
// exact integer bounds. Values above the last bound land in the overflow
// bucket (rendered as le="+Inf").
class Histogram {
 public:
  // Octaves 2..33 cover bounds up to (7 << 31) us ~ 4.2 hours.
  static constexpr int kOctaves = 32;
  static constexpr int kBuckets = 4 + 4 * kOctaves;  // finite buckets

  static int bucket_index(std::uint64_t v) noexcept {
    if (v < 4) return static_cast<int>(v);
    int o = 63 - countl_zero64(v);  // floor(log2 v) >= 2
    if (o - 2 >= kOctaves) return kBuckets;  // overflow
    const int sub = static_cast<int>((v >> (o - 2)) & 3);
    return 4 + (o - 2) * 4 + sub;
  }
  // Upper (inclusive) bound of finite bucket i.
  static std::uint64_t bucket_bound(int i) noexcept {
    if (i < 4) return static_cast<std::uint64_t>(i);
    const int o = (i - 4) / 4;
    const int sub = (i - 4) % 4;
    return ((static_cast<std::uint64_t>(sub) + 4ull) << o) + (1ull << o) - 1;
  }

  void observe(std::uint64_t v) noexcept {
    if (!enabled()) return;
    buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  struct Snapshot {
    std::array<std::uint64_t, kBuckets + 1> buckets{};  // last = overflow
    std::uint64_t count = 0;
    std::uint64_t sum = 0;

    // Smallest bucket upper bound b with cum(b) >= q * count; the overflow
    // bucket reports the largest finite bound. Returns 0 on empty.
    std::uint64_t quantile(double q) const noexcept;
    void merge_from(const Snapshot& other) noexcept;
  };

  Snapshot snapshot() const noexcept {
    Snapshot s;
    for (int i = 0; i <= kBuckets; ++i) {
      s.buckets[static_cast<std::size_t>(i)] =
          buckets_[static_cast<std::size_t>(i)].load(
              std::memory_order_relaxed);
    }
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    return s;
  }

  // Bucket-wise addition; used by tests and by cross-backend aggregation.
  void merge_from(const Snapshot& s) noexcept {
    for (int i = 0; i <= kBuckets; ++i) {
      buckets_[static_cast<std::size_t>(i)].fetch_add(
          s.buckets[static_cast<std::size_t>(i)], std::memory_order_relaxed);
    }
    count_.fetch_add(s.count, std::memory_order_relaxed);
    sum_.fetch_add(s.sum, std::memory_order_relaxed);
  }

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  static int countl_zero64(std::uint64_t v) noexcept {
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_clzll(v);
#else
    int n = 0;
    for (std::uint64_t m = 1ull << 63; m && !(v & m); m >>= 1) ++n;
    return n;
#endif
  }

  std::array<std::atomic<std::uint64_t>, kBuckets + 1> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

// ---------------------------------------------------------------- registry

// Process-wide metric registry. Names follow Prometheus conventions and may
// carry a label block: `suu_request_us{method="solve"}`. Lookup takes a
// mutex; hot paths look a metric up once and keep the reference (metric
// objects are heap nodes that are never freed or moved).
class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Info-style metric: rendered as `<name>{<labels>} 1` (gauge). Labels is
  // the raw label body without braces, e.g. `version="0.8.0",build="release"`.
  void set_info(const std::string& name, const std::string& labels);

  // Look up without creating; nullptr when absent.
  Histogram* find_histogram(const std::string& name) const;
  Counter* find_counter(const std::string& name) const;
  Gauge* find_gauge(const std::string& name) const;

  // Deterministic Prometheus text exposition: entries sorted by full name,
  // one `# TYPE` line per metric family, histogram buckets rendered as a
  // non-empty cumulative prefix plus `+Inf`. Bounds are integer
  // microseconds.
  std::string render_prometheus() const;

  // Zero every registered metric (tests and benches).
  void reset_all();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

// Render one histogram family in the same format render_prometheus() uses;
// shared with tools that aggregate snapshots offline.
std::string render_histogram_text(const std::string& name,
                                  const Histogram::Snapshot& s);

}  // namespace suu::obs
