// suu::obs — ring-buffer span log for wire-to-pivot request tracing.
//
// A request carries a trace id (client-supplied via the optional "trace"
// envelope key, or engine-assigned). While the request executes — always
// synchronously on one engine thread — instrumented phases (parse,
// queue_wait, prepare, solve, respond, ...) record spans tagged with that
// trace id into a process-wide fixed-capacity ring. The `trace` wire
// method and `suu_serve --slow-log-ms=N` read them back. Recording is one
// mutex-protected ring write per phase (a handful per request), nowhere
// near the hot loops.

#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace suu::obs {

// Microseconds since process start on the steady clock.
std::uint64_t now_us() noexcept;

struct Span {
  std::string trace;       // request trace id
  std::string name;        // phase name ("parse", "solve", ...)
  std::uint64_t start_us;  // begin, microseconds since process start
  std::uint64_t dur_us;    // duration
};

class SpanLog {
 public:
  static SpanLog& global();

  explicit SpanLog(std::size_t capacity = 4096) : capacity_(capacity) {}

  void record(Span&& s);

  // Spans matching `trace` (all spans when empty), oldest first.
  std::vector<Span> snapshot(const std::string& trace = {}) const;

  void set_capacity(std::size_t capacity);
  void clear();

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::size_t head_ = 0;  // next write slot once the ring is full
  std::vector<Span> ring_;
};

}  // namespace suu::obs
