#include "obs/spanlog.hpp"

#include "obs/metrics.hpp"

namespace suu::obs {

std::uint64_t now_us() noexcept {
  static const std::chrono::steady_clock::time_point t0 =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

SpanLog& SpanLog::global() {
  static SpanLog* log = new SpanLog();
  return *log;
}

void SpanLog::record(Span&& s) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) return;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(s));
  } else {
    ring_[head_] = std::move(s);
    head_ = (head_ + 1) % capacity_;
  }
}

std::vector<Span> SpanLog::snapshot(const std::string& trace) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Span> out;
  const std::size_t n = ring_.size();
  for (std::size_t k = 0; k < n; ++k) {
    // Oldest-first: once the ring wrapped, head_ is the oldest slot.
    const Span& s = ring_[(head_ + k) % n];
    if (trace.empty() || s.trace == trace) out.push_back(s);
  }
  return out;
}

void SpanLog::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  ring_.clear();
  head_ = 0;
}

void SpanLog::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
}

}  // namespace suu::obs
