#include "stoch/bvn.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace suu::stoch {
namespace {

constexpr double kEps = 1e-9;

// Kuhn's augmenting-path bipartite matching over positive entries.
class Matcher {
 public:
  explicit Matcher(const std::vector<std::vector<double>>& a)
      : a_(a), n_(static_cast<int>(a.size())), match_col_(n_, -1) {}

  // Returns true and fills row->col matching when a perfect matching on
  // entries > kEps exists.
  bool solve(std::vector<int>& row_to_col) {
    std::fill(match_col_.begin(), match_col_.end(), -1);
    for (int r = 0; r < n_; ++r) {
      visited_.assign(static_cast<std::size_t>(n_), 0);
      if (!augment(r)) return false;
    }
    row_to_col.assign(static_cast<std::size_t>(n_), -1);
    for (int c = 0; c < n_; ++c) {
      if (match_col_[static_cast<std::size_t>(c)] >= 0) {
        row_to_col[static_cast<std::size_t>(
            match_col_[static_cast<std::size_t>(c)])] = c;
      }
    }
    return true;
  }

 private:
  bool augment(int r) {
    for (int c = 0; c < n_; ++c) {
      if (a_[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] <=
              kEps ||
          visited_[static_cast<std::size_t>(c)]) {
        continue;
      }
      visited_[static_cast<std::size_t>(c)] = 1;
      if (match_col_[static_cast<std::size_t>(c)] < 0 ||
          augment(match_col_[static_cast<std::size_t>(c)])) {
        match_col_[static_cast<std::size_t>(c)] = r;
        return true;
      }
    }
    return false;
  }

  const std::vector<std::vector<double>>& a_;
  int n_;
  std::vector<int> match_col_;
  std::vector<char> visited_;
};

}  // namespace

std::vector<Slice> decompose_preemptive(int m, int n,
                                        const std::vector<double>& x,
                                        double C) {
  SUU_CHECK(m >= 1 && n >= 1);
  SUU_CHECK(x.size() == static_cast<std::size_t>(m) * n);
  SUU_CHECK(C >= 0);

  std::vector<double> row_sum(m, 0.0), col_sum(n, 0.0);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      const double v = x[static_cast<std::size_t>(i) * n + j];
      SUU_CHECK_MSG(v >= -kEps, "negative time entry");
      row_sum[i] += std::max(0.0, v);
      col_sum[j] += std::max(0.0, v);
    }
  }
  for (const double r : row_sum) {
    SUU_CHECK_MSG(r <= C + 1e-6 * (1 + C), "row sum exceeds C");
  }
  for (const double c : col_sum) {
    SUU_CHECK_MSG(c <= C + 1e-6 * (1 + C), "col sum exceeds C");
  }
  if (C <= kEps) return {};

  // Padded square matrix of size N = m + n with all row/col sums == C.
  const int N = m + n;
  std::vector<std::vector<double>> a(
      static_cast<std::size_t>(N),
      std::vector<double>(static_cast<std::size_t>(N), 0.0));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          std::max(0.0, x[static_cast<std::size_t>(i) * n + j]);
    }
    a[static_cast<std::size_t>(i)][static_cast<std::size_t>(n + i)] =
        std::max(0.0, C - row_sum[i]);  // machine idle -> dummy job i
  }
  for (int j = 0; j < n; ++j) {
    a[static_cast<std::size_t>(m + j)][static_cast<std::size_t>(j)] =
        std::max(0.0, C - col_sum[j]);  // job waiting -> dummy machine j
  }
  // Dummy (machine m+j) x (dummy job n+i) block: row j needs col_sum[j]
  // more, column i needs row_sum[i] more; total masses match, fill by
  // northwest corner.
  {
    std::vector<double> need_row(col_sum);  // per dummy machine j
    std::vector<double> need_col(row_sum);  // per dummy job i
    int j = 0, i = 0;
    while (j < n && i < m) {
      if (need_row[j] <= kEps) {
        ++j;
        continue;
      }
      if (need_col[i] <= kEps) {
        ++i;
        continue;
      }
      const double v = std::min(need_row[j], need_col[i]);
      a[static_cast<std::size_t>(m + j)][static_cast<std::size_t>(n + i)] += v;
      need_row[j] -= v;
      need_col[i] -= v;
    }
  }

  std::vector<Slice> slices;
  Matcher matcher(a);
  double remaining = C;
  std::vector<int> row_to_col;
  // Each slice zeroes at least one entry, so at most N^2 iterations.
  for (int iter = 0; iter < N * N + 4 && remaining > kEps * (1 + C); ++iter) {
    if (!matcher.solve(row_to_col)) break;  // numerical exhaustion
    // Slice duration: the smallest matched entry (but not more than the
    // remaining horizon).
    double delta = remaining;
    for (int r = 0; r < N; ++r) {
      delta = std::min(
          delta, a[static_cast<std::size_t>(r)][static_cast<std::size_t>(
                     row_to_col[static_cast<std::size_t>(r)])]);
    }
    if (delta <= kEps) break;
    Slice s;
    s.duration = delta;
    s.job_of_machine.assign(static_cast<std::size_t>(m), -1);
    for (int r = 0; r < N; ++r) {
      const int c = row_to_col[static_cast<std::size_t>(r)];
      a[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] -= delta;
      if (r < m && c < n) {
        s.job_of_machine[static_cast<std::size_t>(r)] = c;
      }
    }
    remaining -= delta;
    slices.push_back(std::move(s));
  }
  SUU_CHECK_MSG(remaining <= 1e-6 * (1 + C),
                "BvN decomposition left " << remaining << " of " << C);
  return slices;
}

}  // namespace suu::stoch
