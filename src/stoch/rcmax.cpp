#include "stoch/rcmax.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/check.hpp"

namespace suu::stoch {

NonpreemptiveSchedule greedy_rcmax(const StochInstance& inst,
                                   const std::vector<int>& jobs,
                                   const std::vector<double>& p) {
  const int m = inst.num_machines();
  const int k = static_cast<int>(jobs.size());
  SUU_CHECK(k >= 1);
  SUU_CHECK(p.size() == jobs.size());

  // Best-machine time per job (also feeds the lower bound).
  std::vector<double> best_time(static_cast<std::size_t>(k));
  double lb = 0.0;
  double total_best_work = 0.0;
  for (int idx = 0; idx < k; ++idx) {
    const int j = jobs[static_cast<std::size_t>(idx)];
    SUU_CHECK(p[static_cast<std::size_t>(idx)] >= 0);
    best_time[static_cast<std::size_t>(idx)] =
        p[static_cast<std::size_t>(idx)] / inst.max_speed(j);
    lb = std::max(lb, best_time[static_cast<std::size_t>(idx)]);
    total_best_work += best_time[static_cast<std::size_t>(idx)];
  }
  lb = std::max(lb, total_best_work / static_cast<double>(m));

  // LPT order on best-machine times.
  std::vector<int> order(static_cast<std::size_t>(k));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return best_time[static_cast<std::size_t>(a)] >
           best_time[static_cast<std::size_t>(b)];
  });

  NonpreemptiveSchedule out;
  out.queue.resize(static_cast<std::size_t>(m));
  out.machine_of.assign(static_cast<std::size_t>(k), -1);
  std::vector<double> load(static_cast<std::size_t>(m), 0.0);
  for (const int idx : order) {
    const int j = jobs[static_cast<std::size_t>(idx)];
    int best = -1;
    double best_finish = std::numeric_limits<double>::infinity();
    for (int i = 0; i < m; ++i) {
      const double v = inst.speed(i, j);
      if (v <= 0) continue;
      const double finish = load[static_cast<std::size_t>(i)] +
                            p[static_cast<std::size_t>(idx)] / v;
      if (finish < best_finish) {
        best_finish = finish;
        best = i;
      }
    }
    SUU_CHECK_MSG(best >= 0, "job " << j << " runs on no machine");
    out.queue[static_cast<std::size_t>(best)].push_back(idx);
    out.machine_of[static_cast<std::size_t>(idx)] = best;
    load[static_cast<std::size_t>(best)] = best_finish;
  }
  out.makespan = *std::max_element(load.begin(), load.end());
  out.lower_bound = lb;
  return out;
}

}  // namespace suu::stoch
