#include "stoch/instance.hpp"

#include "util/check.hpp"

namespace suu::stoch {

StochInstance::StochInstance(int n, int m, std::vector<double> lambda,
                             std::vector<double> speeds)
    : n_(n), m_(m), lambda_(std::move(lambda)), speeds_(std::move(speeds)) {
  SUU_CHECK(n >= 1 && m >= 1);
  SUU_CHECK(lambda_.size() == static_cast<std::size_t>(n));
  SUU_CHECK(speeds_.size() == static_cast<std::size_t>(n) * m);
  for (int j = 0; j < n_; ++j) {
    SUU_CHECK_MSG(lambda_[j] > 0, "lambda must be positive");
    bool any = false;
    for (int i = 0; i < m_; ++i) {
      SUU_CHECK_MSG(speed(i, j) >= 0, "negative speed");
      if (speed(i, j) > 0) any = true;
    }
    SUU_CHECK_MSG(any, "job " << j << " has no machine with positive speed");
  }
}

int StochInstance::fastest_machine(int job) const {
  int best = 0;
  for (int i = 1; i < m_; ++i) {
    if (speed(i, job) > speed(best, job)) best = i;
  }
  return best;
}

double StochInstance::max_speed(int job) const {
  return speed(fastest_machine(job), job);
}

}  // namespace suu::stoch
