#include "stoch/lawler_labetoulle.hpp"

#include <algorithm>

#include "lp/problem.hpp"
#include "lp/simplex.hpp"
#include "util/check.hpp"

namespace suu::stoch {

PreemptiveSchedule solve_rpmtn(const StochInstance& inst,
                               const std::vector<int>& jobs,
                               const std::vector<double>& p) {
  const int m = inst.num_machines();
  const int k = static_cast<int>(jobs.size());
  SUU_CHECK_MSG(k >= 1, "empty job set");
  SUU_CHECK(p.size() == jobs.size());

  lp::Problem prob;
  const int c_var = prob.add_var(1.0);
  std::vector<std::vector<std::pair<int, int>>> var_of(jobs.size());
  std::vector<lp::Row> machine_rows(m);
  for (int idx = 0; idx < k; ++idx) {
    const int j = jobs[static_cast<std::size_t>(idx)];
    SUU_CHECK(p[static_cast<std::size_t>(idx)] >= 0);
    lp::Row workr;
    workr.rel = lp::Rel::Ge;
    workr.rhs = p[static_cast<std::size_t>(idx)];
    lp::Row job_par;
    job_par.rel = lp::Rel::Le;
    job_par.rhs = 0.0;
    for (int i = 0; i < m; ++i) {
      const double v = inst.speed(i, j);
      if (v <= 0) continue;
      const int var = prob.add_var(0.0);
      var_of[static_cast<std::size_t>(idx)].emplace_back(i, var);
      workr.terms.emplace_back(var, v);
      job_par.terms.emplace_back(var, 1.0);
      machine_rows[i].terms.emplace_back(var, 1.0);
    }
    SUU_CHECK(!workr.terms.empty());
    prob.add_row(std::move(workr));
    job_par.terms.emplace_back(c_var, -1.0);
    prob.add_row(std::move(job_par));
  }
  for (int i = 0; i < m; ++i) {
    auto& row = machine_rows[i];
    if (row.terms.empty()) continue;
    row.terms.emplace_back(c_var, -1.0);
    row.rel = lp::Rel::Le;
    row.rhs = 0.0;
    prob.add_row(std::move(row));
  }

  const lp::Solution sol = lp::solve_simplex(prob);
  SUU_CHECK_MSG(sol.status == lp::Status::Optimal,
                "R|pmtn|Cmax LP failed: " << lp::to_string(sol.status));

  PreemptiveSchedule out;
  out.makespan = sol.x[c_var];
  out.x.assign(static_cast<std::size_t>(m) * static_cast<std::size_t>(k), 0.0);
  for (int idx = 0; idx < k; ++idx) {
    for (const auto& [i, var] : var_of[static_cast<std::size_t>(idx)]) {
      out.x[static_cast<std::size_t>(i) * static_cast<std::size_t>(k) +
            static_cast<std::size_t>(idx)] = std::max(0.0, sol.x[var]);
    }
  }
  out.slices = decompose_preemptive(m, k, out.x, out.makespan);
  return out;
}

}  // namespace suu::stoch
