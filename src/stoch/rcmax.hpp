// Nonpreemptive unrelated-machines makespan (R||Cmax) — the substrate for
// the paper's R|restart, p_j~stoch|E[Cmax] variant (Appendix C: "The only
// necessary change ... is to substitute the kth round with the
// corresponding solution to R||Cmax, in lieu of R|pmtn|Cmax").
//
// R||Cmax is NP-hard; the paper's variant only needs an O(1)-approximation,
// for which we use LPT-ordered earliest-completion-time list scheduling —
// sort jobs by their best-machine processing time descending and place each
// on the machine that finishes it soonest. We expose the achieved makespan
// alongside a trivial lower bound (max over jobs of min_i p_ij, and total
// work / m on any machine subset) so tests can assert the gap.
#pragma once

#include <vector>

#include "stoch/instance.hpp"

namespace suu::stoch {

struct NonpreemptiveSchedule {
  double makespan = 0.0;
  /// queue[i] = ordered indices (into the `jobs` argument) machine i runs.
  std::vector<std::vector<int>> queue;
  /// machine chosen for each job index.
  std::vector<int> machine_of;
  /// simple certified lower bound on the optimal R||Cmax makespan.
  double lower_bound = 0.0;
};

/// Greedy LPT/ECT list schedule for the jobs with processing requirements
/// p (time on machine i is p[idx] / speed(i, job)).
NonpreemptiveSchedule greedy_rcmax(const StochInstance& inst,
                                   const std::vector<int>& jobs,
                                   const std::vector<double>& p);

}  // namespace suu::stoch
