// Stochastic scheduling instances (paper Appendix C).
//
// STOCH-I: jobs with exponentially distributed lengths p_j ~ Exp(lambda_j)
// (only the rate lambda_j is known) on unrelated machines with speeds
// v_ij >= 0. Machine i working on job j for time t contributes t * v_ij
// units of work; j completes when accumulated work reaches p_j. Unlike SUU,
// time is continuous and a job may not run on two machines simultaneously.
#pragma once

#include <vector>

namespace suu::stoch {

class StochInstance {
 public:
  /// speeds is row-major by job: speeds[j * m + i] = v_ij.
  /// Every lambda must be positive and every job must have a machine with
  /// positive speed.
  StochInstance(int n, int m, std::vector<double> lambda,
                std::vector<double> speeds);

  int num_jobs() const noexcept { return n_; }
  int num_machines() const noexcept { return m_; }
  double lambda(int job) const noexcept { return lambda_[job]; }
  double speed(int machine, int job) const noexcept {
    return speeds_[static_cast<std::size_t>(job) * m_ + machine];
  }
  /// Fastest machine for a job and its speed.
  int fastest_machine(int job) const;
  double max_speed(int job) const;

 private:
  int n_;
  int m_;
  std::vector<double> lambda_;
  std::vector<double> speeds_;
};

}  // namespace suu::stoch
