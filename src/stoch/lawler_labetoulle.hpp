// Lawler–Labetoulle [8]: optimal preemptive schedules for R|pmtn|Cmax.
//
// LP (exact, not a relaxation — LL78 prove the optimum is achievable):
//     min C   s.t.  sum_i v_ij x_ij >= p_j   (work requirement)
//                   sum_j x_ij      <= C     (machine load)
//                   sum_i x_ij      <= C     (no job parallelism)
//                   x >= 0
// followed by the BvN slice extraction (bvn.hpp) to realize the fractional
// timetable as an actual preemptive schedule of length C.
//
// This is the substrate STC-I (Appendix C) resolves each of its doubling
// rounds against.
#pragma once

#include <vector>

#include "stoch/bvn.hpp"
#include "stoch/instance.hpp"

namespace suu::stoch {

struct PreemptiveSchedule {
  double makespan = 0.0;       ///< LP optimum C*
  std::vector<Slice> slices;   ///< realization; durations sum to C*
  /// Timetable x_ij (row-major machine x job over the *selected* jobs,
  /// indexed by position in `jobs` passed to solve_rpmtn).
  std::vector<double> x;
};

/// Solve R|pmtn|Cmax for the given subset of jobs with processing
/// requirements p (indexed like `jobs`). Speeds come from the instance.
PreemptiveSchedule solve_rpmtn(const StochInstance& inst,
                               const std::vector<int>& jobs,
                               const std::vector<double>& p);

}  // namespace suu::stoch
