// STC-I (paper Appendix C): O(log log n)-approximation for
// R|pmtn, p_j ~ exp|E[Cmax] on unrelated machines.
//
// K = ceil(log log n) + 3 rounds. Round k solves the deterministic
// R|pmtn|Cmax instance that sets every remaining job's length to
// 2^(k-2)/lambda_j (so any job whose hidden p_j is at most that completes),
// using the Lawler–Labetoulle substrate. Survivors of round K run
// sequentially, each on its fastest machine. The simulator executes the
// slice schedules in continuous time against hidden p_j ~ Exp(lambda_j)
// draws and reports exact completion times.
//
// For ratio measurements we also compute the per-realization offline
// optimum: the LL makespan with the true p_j revealed — a valid lower bound
// on any policy since R|pmtn|Cmax is solved exactly by the LP.
#pragma once

#include <cstdint>
#include <vector>

#include "stoch/instance.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace suu::stoch {

struct StcIResult {
  double makespan = 0.0;
  double offline_opt = 0.0;  ///< LL optimum for the realized p_j
  int rounds_used = 0;
  bool sequential_tail = false;  ///< survivors remained after round K
};

/// K = ceil(log2 log2 n) + 3 (n clamped to >= 2).
int stc_round_bound(int n);

/// One execution with hidden lengths drawn from `rng`.
StcIResult run_stc_i(const StochInstance& inst, util::Rng& rng);

/// The R|restart| variant (Appendix C, "Other results"): each round builds
/// a NONpreemptive greedy R||Cmax schedule with the deterministic targets
/// 2^(k-2)/lambda_j; a job that overruns its allotment is abandoned and
/// restarted from scratch in the next round (possibly elsewhere) — no
/// cross-machine or cross-round progress is retained. Survivors of round K
/// run to completion on their fastest machine.
StcIResult run_stc_r(const StochInstance& inst, util::Rng& rng);

/// Baseline: draw p_j, run every job on its fastest machine sequentially.
double run_sequential_fastest(const StochInstance& inst, util::Rng& rng);

struct StochEstimate {
  util::Estimate stc_i;       ///< E[T_STC-I]
  util::Estimate stc_r;       ///< E[T] of the restart variant (same draws)
  util::Estimate offline;     ///< E[offline OPT] (lower bound on E[T_OPT])
  util::Estimate sequential;  ///< E[T] of the sequential baseline
  double mean_rounds = 0.0;
  double tail_fraction = 0.0;  ///< fraction of runs needing the tail
};

/// Monte-Carlo comparison across `replications` (deterministic per seed).
StochEstimate estimate_stoch(const StochInstance& inst, int replications,
                             std::uint64_t seed, unsigned threads = 0);

}  // namespace suu::stoch
