#include "stoch/stc_i.hpp"

#include <algorithm>
#include <cmath>

#include "stoch/lawler_labetoulle.hpp"
#include "stoch/rcmax.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace suu::stoch {

int stc_round_bound(int n) {
  const double nn = std::max(2, n);
  const double loglog = std::log2(std::max(1.0, std::log2(nn)));
  return static_cast<int>(std::ceil(loglog - 1e-12)) + 3;
}

namespace {

/// Executes `sched` (built over `jobs` with positions matching `jobs`)
/// against partially-done work; returns the in-round time at which the last
/// tracked job completed (or the full makespan if some are left). Updates
/// `work` and `done`.
double play_schedule(const StochInstance& inst,
                     const PreemptiveSchedule& sched,
                     const std::vector<int>& jobs,
                     const std::vector<double>& p, std::vector<double>& work,
                     std::vector<char>& done) {
  double t = 0.0;
  double last_completion = 0.0;
  int remaining = 0;
  for (const int j : jobs) {
    if (!done[static_cast<std::size_t>(j)]) ++remaining;
  }
  for (const Slice& s : sched.slices) {
    if (remaining == 0) break;
    for (int i = 0; i < inst.num_machines(); ++i) {
      const int idx = s.job_of_machine[static_cast<std::size_t>(i)];
      if (idx < 0) continue;
      const int j = jobs[static_cast<std::size_t>(idx)];
      if (done[static_cast<std::size_t>(j)]) continue;
      const double v = inst.speed(i, j);
      if (v <= 0) continue;
      const double need = p[static_cast<std::size_t>(j)] -
                          work[static_cast<std::size_t>(j)];
      const double delivered = s.duration * v;
      if (delivered >= need - 1e-15) {
        done[static_cast<std::size_t>(j)] = 1;
        work[static_cast<std::size_t>(j)] = p[static_cast<std::size_t>(j)];
        last_completion = t + need / v;
        --remaining;
      } else {
        work[static_cast<std::size_t>(j)] += delivered;
      }
    }
    t += s.duration;
  }
  return remaining == 0 ? last_completion : t;
}

}  // namespace

StcIResult run_stc_i(const StochInstance& inst, util::Rng& rng) {
  const int n = inst.num_jobs();
  std::vector<double> p(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) p[static_cast<std::size_t>(j)] =
      rng.exponential(inst.lambda(j));

  StcIResult res;
  {
    // Offline optimum for this realization.
    std::vector<int> all(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) all[static_cast<std::size_t>(j)] = j;
    res.offline_opt = solve_rpmtn(inst, all, p).makespan;
  }

  std::vector<double> work(static_cast<std::size_t>(n), 0.0);
  std::vector<char> done(static_cast<std::size_t>(n), 0);
  const int K = stc_round_bound(n);
  double t = 0.0;

  for (int k = 1; k <= K; ++k) {
    std::vector<int> rem;
    for (int j = 0; j < n; ++j) {
      if (!done[static_cast<std::size_t>(j)]) rem.push_back(j);
    }
    if (rem.empty()) break;
    res.rounds_used = k;
    // Deterministic targets 2^(k-2)/lambda_j, net of work already done.
    std::vector<double> target(rem.size());
    for (std::size_t idx = 0; idx < rem.size(); ++idx) {
      const int j = rem[idx];
      target[idx] =
          std::max(0.0, std::ldexp(1.0, k - 2) / inst.lambda(j) -
                            work[static_cast<std::size_t>(j)]);
    }
    const PreemptiveSchedule sched = solve_rpmtn(inst, rem, target);
    const double used = play_schedule(inst, sched, rem, p, work, done);
    bool all_done = true;
    for (int j = 0; j < n; ++j) {
      if (!done[static_cast<std::size_t>(j)]) all_done = false;
    }
    t += all_done ? used : sched.makespan;
    if (all_done) {
      res.makespan = t;
      return res;
    }
  }

  // Sequential tail: fastest machine per survivor.
  res.sequential_tail = false;
  for (int j = 0; j < n; ++j) {
    if (done[static_cast<std::size_t>(j)]) continue;
    res.sequential_tail = true;
    const double v = inst.max_speed(j);
    t += (p[static_cast<std::size_t>(j)] - work[static_cast<std::size_t>(j)]) /
         v;
    done[static_cast<std::size_t>(j)] = 1;
  }
  res.makespan = t;
  return res;
}

StcIResult run_stc_r(const StochInstance& inst, util::Rng& rng) {
  const int n = inst.num_jobs();
  std::vector<double> p(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    p[static_cast<std::size_t>(j)] = rng.exponential(inst.lambda(j));
  }

  StcIResult res;
  {
    std::vector<int> all(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) all[static_cast<std::size_t>(j)] = j;
    res.offline_opt = solve_rpmtn(inst, all, p).makespan;
  }

  std::vector<char> done(static_cast<std::size_t>(n), 0);
  const int K = stc_round_bound(n);
  double t = 0.0;

  for (int k = 1; k <= K; ++k) {
    std::vector<int> rem;
    for (int j = 0; j < n; ++j) {
      if (!done[static_cast<std::size_t>(j)]) rem.push_back(j);
    }
    if (rem.empty()) break;
    res.rounds_used = k;
    std::vector<double> target(rem.size());
    for (std::size_t idx = 0; idx < rem.size(); ++idx) {
      target[idx] = std::ldexp(1.0, k - 2) / inst.lambda(rem[idx]);
    }
    const NonpreemptiveSchedule sched = greedy_rcmax(inst, rem, target);
    // Execute machine queues in parallel. A job completes within its slot
    // iff its hidden length fits the allotment (p_j <= target); otherwise
    // its progress is discarded (restart semantics).
    double round_last_completion = 0.0;
    bool all_done = true;
    for (int i = 0; i < inst.num_machines(); ++i) {
      double mt = 0.0;
      for (const int idx : sched.queue[static_cast<std::size_t>(i)]) {
        const int j = rem[static_cast<std::size_t>(idx)];
        const double v = inst.speed(i, j);
        if (p[static_cast<std::size_t>(j)] <=
            target[static_cast<std::size_t>(idx)] + 1e-15) {
          mt += p[static_cast<std::size_t>(j)] / v;
          done[static_cast<std::size_t>(j)] = 1;
          round_last_completion = std::max(round_last_completion, mt);
        } else {
          mt += target[static_cast<std::size_t>(idx)] / v;  // wasted slot
          all_done = false;
        }
      }
    }
    t += all_done ? round_last_completion : sched.makespan;
    if (all_done) {
      bool every = true;
      for (int j = 0; j < n; ++j) {
        if (!done[static_cast<std::size_t>(j)]) every = false;
      }
      if (every) {
        res.makespan = t;
        return res;
      }
    }
  }

  for (int j = 0; j < n; ++j) {
    if (done[static_cast<std::size_t>(j)]) continue;
    res.sequential_tail = true;
    t += p[static_cast<std::size_t>(j)] / inst.max_speed(j);
  }
  res.makespan = t;
  return res;
}

double run_sequential_fastest(const StochInstance& inst, util::Rng& rng) {
  double t = 0.0;
  for (int j = 0; j < inst.num_jobs(); ++j) {
    t += rng.exponential(inst.lambda(j)) / inst.max_speed(j);
  }
  return t;
}

StochEstimate estimate_stoch(const StochInstance& inst, int replications,
                             std::uint64_t seed, unsigned threads) {
  SUU_CHECK(replications >= 1);
  struct Row {
    double mk, rk, off, seq;
    int rounds;
    bool tail;
  };
  std::vector<Row> rows(static_cast<std::size_t>(replications));
  util::Rng master(seed);
  auto one = [&](std::size_t r) {
    util::Rng rng = master.child(r + 1);
    const StcIResult res = run_stc_i(inst, rng);
    util::Rng rng2 = master.child(r + 1);  // same draws for the baseline
    const double seq = run_sequential_fastest(inst, rng2);
    util::Rng rng3 = master.child(r + 1);  // same draws for the variant
    const StcIResult resr = run_stc_r(inst, rng3);
    rows[r] = Row{res.makespan, resr.makespan, res.offline_opt, seq,
                  res.rounds_used, res.sequential_tail};
  };
  if (threads == 1) {
    for (std::size_t r = 0; r < rows.size(); ++r) one(r);
  } else if (threads == 0) {
    util::default_pool().parallel_for(rows.size(), one);
  } else {
    util::ThreadPool pool(threads);
    pool.parallel_for(rows.size(), one);
  }

  util::OnlineStats mk, rk, off, seq;
  double rounds = 0.0, tails = 0.0;
  for (const Row& r : rows) {
    mk.add(r.mk);
    rk.add(r.rk);
    off.add(r.off);
    seq.add(r.seq);
    rounds += r.rounds;
    tails += r.tail ? 1.0 : 0.0;
  }
  StochEstimate est;
  est.stc_i = util::make_estimate(mk);
  est.stc_r = util::make_estimate(rk);
  est.offline = util::make_estimate(off);
  est.sequential = util::make_estimate(seq);
  est.mean_rounds = rounds / static_cast<double>(replications);
  est.tail_fraction = tails / static_cast<double>(replications);
  return est;
}

}  // namespace suu::stoch
