// Birkhoff–von Neumann decomposition for preemptive open-shop timetables.
//
// Given a nonnegative time matrix x (machines x jobs) whose row sums and
// column sums are at most C, produce a preemptive schedule of length
// exactly max-row/col-sum-padded C: a sequence of slices, each a partial
// matching of machines to jobs with a duration, such that machine i works
// job j for exactly x_ij time in total and no job ever runs on two machines
// simultaneously. This is the constructive half of Lawler–Labetoulle [8].
//
// Construction: pad x to an (m+n) x (n+m) matrix with every row and column
// summing to C (dummy jobs absorb machine idle time, dummy machines absorb
// job waiting time, and a northwest-corner transportation fill balances the
// dummy block); then repeatedly extract perfect matchings on the positive
// entries (Birkhoff's theorem guarantees one exists) and subtract.
#pragma once

#include <vector>

namespace suu::stoch {

/// One schedule slice: for `duration` time units, machine i works
/// job_of_machine[i] (-1 = idle).
struct Slice {
  double duration = 0.0;
  std::vector<int> job_of_machine;
};

/// Decompose x (row-major [machine][job], m rows, n cols) with row/col sums
/// <= C into at most (m+n)^2 slices of total duration C.
std::vector<Slice> decompose_preemptive(int m, int n,
                                        const std::vector<double>& x,
                                        double C);

}  // namespace suu::stoch
