#include "service/fault.hpp"

#include <algorithm>
#include <charconv>

namespace suu::service {
namespace {

bool parse_ll(const std::string& text, long long lo, long long hi,
              long long* out) {
  const char* first = text.data();
  const char* last = first + text.size();
  long long v = 0;
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc() || ptr != last || v < lo || v > hi) return false;
  *out = v;
  return true;
}

}  // namespace

bool FaultSpec::parse(const std::string& text, FaultSpec* out,
                      std::string* error) {
  *out = FaultSpec{};
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    const std::string item = text.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      *error = "fault item '" + item + "' is not key=value";
      return false;
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    long long v = 0;
    if (key == "delay_ms") {
      if (!parse_ll(value, 0, 60'000, &v)) {
        *error = "delay_ms must be an integer in [0, 60000]";
        return false;
      }
      out->delay_ms = static_cast<int>(v);
    } else if (key == "close_after_bytes") {
      if (!parse_ll(value, 0, 1LL << 40, &v)) {
        *error = "close_after_bytes must be an integer in [0, 2^40]";
        return false;
      }
      out->close_after_bytes = v;
    } else if (key == "truncate_line") {
      if (!parse_ll(value, 1, 1'000'000, &v)) {
        *error = "truncate_line must be an integer in [1, 1000000]";
        return false;
      }
      out->truncate_line = static_cast<int>(v);
    } else if (key == "exit_after_lines") {
      if (!parse_ll(value, 1, 1'000'000, &v)) {
        *error = "exit_after_lines must be an integer in [1, 1000000]";
        return false;
      }
      out->exit_after_lines = static_cast<int>(v);
    } else if (key == "exit_after_bytes") {
      if (!parse_ll(value, 0, 1LL << 40, &v)) {
        *error = "exit_after_bytes must be an integer in [0, 2^40]";
        return false;
      }
      out->exit_after_bytes = v;
    } else {
      *error = "unknown fault key '" + key + "'";
      return false;
    }
  }
  return true;
}

FaultInjector::Action FaultInjector::next(const std::string& line) {
  Action a;
  if (closed_) {
    a.close_after = true;
    return a;
  }
  a.delay_ms = spec_.delay_ms;
  a.write_bytes = line.size();

  const int this_line = lines_written_ + 1;
  if (spec_.truncate_line >= 1 && this_line == spec_.truncate_line) {
    a.write_bytes = line.size() / 2;
    a.close_after = true;
  }
  // Byte triggers may land inside this line: write exactly up to the
  // trigger point, then act. The earliest trigger wins.
  const long long after = bytes_written_ + static_cast<long long>(a.write_bytes);
  if (spec_.close_after_bytes >= 0 && after >= spec_.close_after_bytes) {
    a.write_bytes = static_cast<std::size_t>(
        std::max(0LL, spec_.close_after_bytes - bytes_written_));
    a.close_after = true;
  }
  if (spec_.exit_after_bytes >= 0 &&
      bytes_written_ + static_cast<long long>(a.write_bytes) >=
          spec_.exit_after_bytes) {
    a.write_bytes = static_cast<std::size_t>(
        std::max(0LL, spec_.exit_after_bytes - bytes_written_));
    a.exit_after = true;
  }
  if (spec_.exit_after_lines >= 1 && !a.close_after &&
      a.write_bytes == line.size() && this_line == spec_.exit_after_lines) {
    a.exit_after = true;
  }

  bytes_written_ += static_cast<long long>(a.write_bytes);
  if (a.write_bytes == line.size()) ++lines_written_;
  if (a.close_after) closed_ = true;
  return a;
}

}  // namespace suu::service
