// suu::serve wire protocol — line-delimited JSON over any byte transport.
//
// One request per line, one response per line; responses carry the
// request's `id` so a client may pipeline requests and match replies out
// of order. The full spec lives in docs/wire-protocol.md;
// the shape is:
//
//   request:  {"id": <scalar>, "method": "<name>", "params": {...}}
//   success:  {"id": <scalar>, "ok": true,  "result": {...}}
//   failure:  {"id": <scalar>, "ok": false, "error": {"code": "...",
//                                                     "message": "..."}}
//
// Methods: list_solvers, open_instance, update_instance, close_instance,
// solve, estimate, stats, metrics, trace, shutdown. A streamed estimate
// ({"stream": true})
// answers with several lines for one id: per-shard envelopes carrying
// ordered "seq" fields, then one terminal envelope with "done": true (see
// make_shard_response / make_done_response below and docs/wire-protocol.md).
// Requests may carry an optional "trace" envelope key (string, <= 128
// bytes): a trace id recorded with the request's spans and readable via
// the trace method; never echoed in responses (docs/observability.md).
//
// Hardening stance: every field is validated with a typed error before any
// work runs — unknown methods, unknown params keys, wrong types, and
// malformed instance payloads each map to a distinct error code, and no
// input can reach an assert or abort. Response serialization is
// deterministic: fixed key order, fixed number formatting (util::fmt for
// measured quantities, so service bytes match ExperimentRunner::print_json
// bytes for the same computation).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

#include "api/registry.hpp"
#include "core/delta.hpp"
#include "service/json.hpp"
#include "sim/engine.hpp"
#include "util/stats.hpp"

namespace suu::service {

/// Error codes the protocol can return. Kept as an enum so the engine's
/// dispatch is exhaustive; codes() gives the wire spelling.
namespace error_code {
inline constexpr const char* kParseError = "parse_error";
inline constexpr const char* kBadRequest = "bad_request";
inline constexpr const char* kUnknownMethod = "unknown_method";
inline constexpr const char* kBadParams = "bad_params";
inline constexpr const char* kBadInstance = "bad_instance";
inline constexpr const char* kUnknownSolver = "unknown_solver";
inline constexpr const char* kUnknownHandle = "unknown_handle";
/// update_instance: the delta is malformed or would produce an invalid
/// instance (cycle, duplicate edge, q outside [0,1], ...). Fatal — the
/// same delta fails identically everywhere.
inline constexpr const char* kBadDelta = "bad_delta";
/// update_instance: the handle has a streamed estimate in flight; mutating
/// it mid-stream would mix two instances in one reply sequence. Retryable —
/// the stream drains and the same update then succeeds.
inline constexpr const char* kBusyHandle = "busy_handle";
inline constexpr const char* kCapped = "capped";
/// Server-internal: a streamed estimate stopped because its peer dropped
/// mid-stream (the transport set the request's CancelToken). The line
/// carrying it is written to a dead connection, so clients never observe
/// this code in practice; classify_error treats it as any unknown code.
inline constexpr const char* kCancelled = "cancelled";
inline constexpr const char* kOverloaded = "overloaded";
inline constexpr const char* kShuttingDown = "shutting_down";
inline constexpr const char* kInternal = "internal";
}  // namespace error_code

/// How a fan-out client should react to a wire error code. The coordinator
/// in src/client/ keys every retry/failover decision off this table, so it
/// lives next to the codes it classifies (docs/wire-protocol.md, "Retryable
/// vs fatal errors").
enum class ErrorClass {
  /// The request itself is wrong (bad params, bad instance, unknown
  /// solver/method, capped): every backend gives the same answer, so
  /// retrying anywhere is wasted work.
  Fatal,
  /// A backend-local, transient condition (overloaded, shutting_down,
  /// internal): the same request may succeed later or on another backend.
  Retryable,
  /// The session handle is gone (unknown_handle): re-open the instance on
  /// that backend and retry — the request is fine, the session is not.
  Reopen,
};

/// Classify a wire error code. Unrecognized codes are Retryable: a newer
/// server's code a client does not know is indistinguishable from a
/// transient fault, and retrying is the safe default.
ErrorClass classify_error(std::string_view code);

/// A protocol violation carrying its wire error code. Thrown by the parse
/// helpers below and by the engine's handlers; the engine converts it into
/// an error response for the offending request.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(std::string code, const std::string& message)
      : std::runtime_error(message), code_(std::move(code)) {}
  const std::string& code() const noexcept { return code_; }

 private:
  std::string code_;
};

/// Parsed request envelope. `id` is any JSON scalar (echoed verbatim in
/// the response; null when the client omitted it); `params` is the params
/// object or null. `trace` is the optional client-supplied trace id
/// (docs/observability.md) — it tags spans recorded while the request runs
/// and is never echoed in responses, so it cannot perturb response bytes.
struct Request {
  Json id;
  std::string method;
  Json params;
  std::string trace;
};

/// Longest accepted "trace" envelope value — bounds span-log memory per
/// request and keeps slow-log lines readable.
inline constexpr std::size_t kMaxTraceIdBytes = 128;

/// Parse one request line. Throws ProtocolError (kParseError on malformed
/// JSON, kBadRequest on a malformed envelope). On envelope errors the id
/// is recovered when possible so the error response can still be matched;
/// see parse_request_id.
Request parse_request(const std::string& line);

/// Best-effort id extraction from a line that failed parse_request — the
/// error response should still carry the id when the envelope was a valid
/// object. Returns null Json when unrecoverable.
Json parse_request_id(const std::string& line) noexcept;

/// Shared solve/estimate parameters. The instance arrives either inline
/// (`instance`, a suu-instance v1 payload parsed per request) or as a
/// session handle (`handle`, from a prior open_instance — the server-side
/// parsed instance is reused). Exactly one of the two must be present.
struct SolveParams {
  std::string instance_text;      ///< inline payload; empty when by handle
  bool has_handle = false;        ///< instance referenced by session handle
  std::uint64_t handle = 0;       ///< valid iff has_handle
  std::string solver = "auto";    ///< registry name or "auto"
  api::SolverOptions options;     ///< decoded from params.options
  bool want_lower_bound = false;  ///< compute lower_bound_auto and report it
};

/// estimate = solve + Monte-Carlo measurement knobs + sharding. The
/// replication sequence [0, R) can be partitioned into `shards` contiguous
/// shards: `stream` answers with one envelope per shard plus a terminal
/// aggregate, `shard` selects a single shard for one plain response (so a
/// client can fan the shards of one estimate out across connections).
struct EstimateParams {
  SolveParams solve;
  int replications = 400;
  std::uint64_t seed = 1;
  sim::Semantics semantics = sim::Semantics::CoinFlips;
  bool strict_eligibility = false;
  std::int64_t step_cap = 10'000'000;
  bool stream = false;  ///< emit per-shard envelopes + terminal done
  int shards = 1;       ///< deterministic contiguous partition count
  int shard = -1;       ///< single-shard selection; -1 = all shards
  /// Include the shard's raw makespan samples (round-trippable 17-digit
  /// doubles, replication order) and capped count in a single-shard
  /// response, so a fan-out client can merge shard replies into an
  /// aggregate byte-identical to the unsharded estimate. Only valid with
  /// `shard`.
  bool samples = false;
};

/// open_instance / close_instance parameters.
struct OpenInstanceParams {
  std::string instance_text;  ///< suu-instance v1 payload (required)
};
struct CloseInstanceParams {
  std::uint64_t handle = 0;
};

/// update_instance parameters: a sparse delta against the instance an open
/// handle currently holds. Wire grammar (docs/wire-protocol.md):
///   {"handle": N,
///    "q": {"<cell>": v, ...},        // cell = job * m + machine, v in [0,1]
///    "add_edges": [[u, v], ...],     // applied after del_edges
///    "del_edges": [[u, v], ...]}
/// At least one of q/add_edges/del_edges must be present and non-empty —
/// an empty update is almost certainly a client bug, so it is rejected
/// rather than silently re-fingerprinting to the same instance.
struct UpdateInstanceParams {
  std::uint64_t handle = 0;
  core::InstanceDelta delta;
};

/// Decode params for solve/estimate. Unknown keys and type mismatches
/// throw ProtocolError(kBadParams). `max_replications` bounds the work one
/// request may demand. A plain solve rejects the estimate-only keys unless
/// `allow_estimate_keys` is set (used by parse_estimate_params).
SolveParams parse_solve_params(const Json& params,
                               bool allow_estimate_keys = false);
EstimateParams parse_estimate_params(const Json& params, int max_replications);
OpenInstanceParams parse_open_instance_params(const Json& params);
CloseInstanceParams parse_close_instance_params(const Json& params);
/// Decode update_instance params. Structural violations (wrong types,
/// unknown keys, q keys that are not decimal cell indices, edge pairs that
/// are not 2-int arrays) throw kBadParams; delta-content violations the
/// parser can already see (non-finite / out-of-[0,1] q values, an entirely
/// empty delta) throw kBadDelta. Semantic violations against the base
/// instance (unknown edges, cycles, out-of-range cells) surface later,
/// from core::apply_delta.
UpdateInstanceParams parse_update_instance_params(const Json& params);

/// The deterministic contiguous shard partition: shard s of K over R
/// replications covers [floor(s*R/K), floor((s+1)*R/K)). Requires
/// 0 <= s < K <= R.
std::pair<int, int> shard_range(int replications, int shards, int shard);

/// The estimate result object WITHOUT its closing brace or the optional
/// lower-bound suffix — the part a fan-out client can rebuild from merged
/// shard replies (append '}' to finish it). Shared by the engine's
/// estimate responses and client::ShardCoordinator's merge so the two stay
/// byte-identical by construction.
std::string estimate_result_body(const std::string& solver, int n, int m,
                                 int replications, int capped,
                                 const util::Estimate& makespan);

/// Response lines (no trailing newline). `result_json` must already be a
/// serialized JSON value; the id is serialized via Json::dump.
std::string make_result_response(const Json& id, const std::string& result_json);
std::string make_error_response(const Json& id, const std::string& code,
                                const std::string& message);

/// Streamed-estimate envelopes. Shard envelope seq runs 0..shards-1 in
/// order; the terminal envelope has seq == shards, "done": true, and the
/// aggregate estimate as its result. All lines echo the request id.
std::string make_shard_response(const Json& id, int seq, int shards,
                                const std::string& shard_json);
std::string make_done_response(const Json& id, int shards,
                               const std::string& result_json);

}  // namespace suu::service
