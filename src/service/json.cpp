#include "service/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <utility>

namespace suu::service {
namespace {

[[noreturn]] void fail(const std::string& what) { throw JsonError(what); }

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  Json run() {
    skip_ws();
    Json v = value(0);
    skip_ws();
    if (pos_ != s_.size()) fail_at("trailing bytes after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail_at(const std::string& what) const {
    fail(what + " at byte " + std::to_string(pos_));
  }

  bool eof() const noexcept { return pos_ >= s_.size(); }
  char peek() const {
    if (eof()) fail_at("unexpected end of input");
    return s_[pos_];
  }
  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail_at(std::string("expected '") + c + "'");
    }
  }
  void skip_ws() {
    while (!eof()) {
      const char c = s_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }
  bool consume_literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json value(int depth) {
    if (depth > Json::kMaxDepth) fail_at("nesting depth limit exceeded");
    switch (peek()) {
      case 'n':
        if (!consume_literal("null")) fail_at("bad literal");
        return Json(nullptr);
      case 't':
        if (!consume_literal("true")) fail_at("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail_at("bad literal");
        return Json(false);
      case '"':
        return Json(string());
      case '[':
        return array(depth);
      case '{':
        return object(depth);
      default:
        return number();
    }
  }

  Json array(int depth) {
    expect('[');
    Json::Array out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(out));
    }
    for (;;) {
      skip_ws();
      out.push_back(value(depth + 1));
      skip_ws();
      const char c = take();
      if (c == ']') return Json(std::move(out));
      if (c != ',') {
        --pos_;
        fail_at("expected ',' or ']' in array");
      }
    }
  }

  Json object(int depth) {
    expect('{');
    Json::Object out;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(out));
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail_at("expected string key in object");
      std::string key = string();
      skip_ws();
      expect(':');
      skip_ws();
      Json val = value(depth + 1);
      if (!out.emplace(std::move(key), std::move(val)).second) {
        fail_at("duplicate object key");
      }
      skip_ws();
      const char c = take();
      if (c == '}') return Json(std::move(out));
      if (c != ',') {
        --pos_;
        fail_at("expected ',' or '}' in object");
      }
    }
  }

  unsigned hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        --pos_;
        fail_at("bad \\u escape digit");
      }
    }
    return v;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail_at("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char e = take();
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (take() != '\\' || take() != 'u') {
              fail_at("high surrogate not followed by \\u low surrogate");
            }
            const unsigned lo = hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) {
              fail_at("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail_at("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          --pos_;
          fail_at("bad escape character");
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (!eof() && s_[pos_] == '-') ++pos_;
    // Integer part: 0 | [1-9][0-9]*
    if (eof() || s_[pos_] < '0' || s_[pos_] > '9') fail_at("bad number");
    if (s_[pos_] == '0') {
      ++pos_;
    } else {
      while (!eof() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    }
    if (!eof() && s_[pos_] == '.') {
      ++pos_;
      if (eof() || s_[pos_] < '0' || s_[pos_] > '9') fail_at("bad fraction");
      while (!eof() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    }
    if (!eof() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (!eof() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (eof() || s_[pos_] < '0' || s_[pos_] > '9') fail_at("bad exponent");
      while (!eof() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    }
    double v = 0.0;
    const char* first = s_.data() + start;
    const char* last = s_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, v);
    if (ec != std::errc{} || ptr != last) fail_at("number out of range");
    return Json(v);
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::as_bool(const char* what) const {
  if (!is_bool()) fail(std::string(what) + " must be a boolean");
  return std::get<bool>(v_);
}

double Json::as_double(const char* what) const {
  if (!is_number()) fail(std::string(what) + " must be a number");
  return std::get<double>(v_);
}

std::int64_t Json::as_int64(const char* what) const {
  const double d = as_double(what);
  constexpr double kLim = 9007199254740992.0;  // 2^53
  if (!(std::nearbyint(d) == d) || d < -kLim || d > kLim) {
    fail(std::string(what) + " must be an integer");
  }
  return static_cast<std::int64_t>(d);
}

const std::string& Json::as_string(const char* what) const {
  if (!is_string()) fail(std::string(what) + " must be a string");
  return std::get<std::string>(v_);
}

const Json::Array& Json::as_array(const char* what) const {
  if (!is_array()) fail(std::string(what) + " must be an array");
  return std::get<Array>(v_);
}

const Json::Object& Json::as_object(const char* what) const {
  if (!is_object()) fail(std::string(what) + " must be an object");
  return std::get<Object>(v_);
}

const Json* Json::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const Object& o = std::get<Object>(v_);
  const auto it = o.find(key);
  return it == o.end() ? nullptr : &it->second;
}

Json Json::parse(std::string_view text) { return Parser(text).run(); }

void json_append_quoted(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", u);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::string json_number(double v) {
  if (std::isnan(v) || std::isinf(v)) {
    fail("NaN/Infinity is not representable in JSON");
  }
  constexpr double kLim = 9007199254740992.0;  // 2^53
  if (std::nearbyint(v) == v && v >= -kLim && v <= kLim) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void Json::dump_to(std::string& out) const {
  switch (v_.index()) {
    case 0: out += "null"; break;
    case 1: out += std::get<bool>(v_) ? "true" : "false"; break;
    case 2: out += json_number(std::get<double>(v_)); break;
    case 3: json_append_quoted(out, std::get<std::string>(v_)); break;
    case 4: {
      out.push_back('[');
      const Array& a = std::get<Array>(v_);
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i) out.push_back(',');
        a[i].dump_to(out);
      }
      out.push_back(']');
      break;
    }
    case 5: {
      out.push_back('{');
      const Object& o = std::get<Object>(v_);
      bool first = true;
      for (const auto& [k, v] : o) {
        if (!first) out.push_back(',');
        first = false;
        json_append_quoted(out, k);
        out.push_back(':');
        v.dump_to(out);
      }
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

}  // namespace suu::service
