// suu::service — minimal hardened JSON for the wire protocol.
//
// The service parses untrusted bytes, so this parser is strict and bounded
// by construction: RFC 8259 grammar only (no comments, no trailing commas,
// no NaN/Infinity literals), a hard nesting-depth cap, duplicate object
// keys rejected, full \uXXXX escape handling including surrogate pairs, and
// locale-independent number conversion via std::from_chars. Anything else
// raises JsonError — never an assert, never undefined behavior.
//
// Objects store their members in a std::map, so dump() output is key-sorted
// and deterministic: serializing the same value always yields the same
// bytes, which the protocol layer relies on for reproducible responses.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace suu::service {

/// Raised on malformed JSON text and on type-mismatched accessor calls.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  /// Maximum nesting depth parse() accepts (arrays + objects combined).
  static constexpr int kMaxDepth = 64;

  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}
  Json(bool b) : v_(b) {}
  Json(double d) : v_(d) {}
  Json(int i) : v_(static_cast<double>(i)) {}
  Json(std::int64_t i) : v_(static_cast<double>(i)) {}
  Json(std::string s) : v_(std::move(s)) {}
  Json(const char* s) : v_(std::string(s)) {}
  Json(Array a) : v_(std::move(a)) {}
  Json(Object o) : v_(std::move(o)) {}

  bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const noexcept { return std::holds_alternative<bool>(v_); }
  bool is_number() const noexcept { return std::holds_alternative<double>(v_); }
  bool is_string() const noexcept { return std::holds_alternative<std::string>(v_); }
  bool is_array() const noexcept { return std::holds_alternative<Array>(v_); }
  bool is_object() const noexcept { return std::holds_alternative<Object>(v_); }

  /// Checked accessors; throw JsonError naming `what` on type mismatch.
  bool as_bool(const char* what) const;
  double as_double(const char* what) const;
  /// Requires an integral number exactly representable as int64.
  std::int64_t as_int64(const char* what) const;
  const std::string& as_string(const char* what) const;
  const Array& as_array(const char* what) const;
  const Object& as_object(const char* what) const;

  /// Object member lookup; nullptr when absent or when this is not an
  /// object.
  const Json* find(const std::string& key) const;

  /// Parse exactly one JSON value spanning all of `text` (surrounding
  /// whitespace allowed). Throws JsonError on any violation.
  static Json parse(std::string_view text);

  /// Serialize deterministically (object keys sorted, integral numbers
  /// without a fraction, 17-significant-digit floats otherwise).
  std::string dump() const;

 private:
  void dump_to(std::string& out) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Append the JSON string literal for `s` (quotes included) to `out`,
/// escaping per RFC 8259. Shared with the protocol layer's hand-built
/// response lines.
void json_append_quoted(std::string& out, std::string_view s);

/// Deterministic JSON number text for `v`: integral values in [-2^53, 2^53]
/// print without a fraction; everything else at 17 significant digits.
/// Throws JsonError for NaN/Infinity (not representable in JSON).
std::string json_number(double v);

}  // namespace suu::service
