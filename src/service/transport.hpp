// suu::serve transports — pumping wire-protocol bytes into an Engine.
//
// All transports speak the same line-delimited protocol and share the same
// shape: a read loop submits each complete line to the engine, replies are
// written back as they complete (possibly out of request order — the id
// field is the client's correlation handle; a streamed estimate writes
// several seq-ordered lines for one id, interleavable with other replies),
// and the loop drains every outstanding reply before returning so no
// callback can outlive its transport state.
//
//   serve_stream — std::istream/std::ostream pair; stdio mode and
//                  in-memory tests.
//   serve_fd     — a connected file descriptor (socketpair, TCP socket);
//                  one blocking reader thread per fd.
//   TcpServer    — loopback-only listener; every accepted connection is
//                  multiplexed onto one epoll EventLoop
//                  (service/eventloop.hpp), so concurrent session count is
//                  bounded by fds, not threads.
//
// Session hygiene: each transport loop runs inside an engine client scope
// (Engine::begin_client/end_client), so instance handles opened over a
// connection are released — and their PrecomputeCache pins dropped — when
// the connection ends for ANY reason: clean EOF, write error, over-long
// line, or idle timeout. A peer that vanishes without close_instance
// cannot leak pinned cache entries.
//
// Liveness: with Engine::Config::idle_timeout_ms set, serve_fd polls the
// descriptor and abandons a connection whose peer stays silent past the
// timeout — a half-open TCP peer (pulled cable, killed process on a quiet
// link) cannot pin a reader thread forever.
//
// Fault injection (tests and the fan-out demo only): serve_fd and
// TcpServer accept a service::FaultSpec whose deterministic triggers
// (delay, drop after N bytes, truncate reply line K, _exit mid-stream)
// fire on the reply write path — see service/fault.hpp.
//
// Shutdown: when the engine processes a shutdown request its stopping()
// flag flips and its shutdown hook runs. serve_stream/serve_fd stop
// reading once stopping() is observed — but a read already blocked on an
// idle peer only wakes when bytes or EOF arrive, so stream/fd clients are
// expected to half-close after a shutdown request. TcpServer has a real
// wakeup: its hook shuts the listener down and stops the event loop, which
// stops reading everywhere, drains queued replies (the shutdown
// acknowledgment included), and returns — one wire shutdown winds down the
// whole server without client help.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>

#include "service/engine.hpp"
#include "service/fault.hpp"

namespace suu::service {

class EventLoop;

/// Serve until EOF on `in` or engine shutdown. Responses are flushed per
/// line. Drains outstanding replies before returning. Runs inside a client
/// scope: handles opened on this stream are released when it ends.
void serve_stream(Engine& engine, std::istream& in, std::ostream& out);

/// Serve a connected, bidirectional fd until EOF/error, engine shutdown,
/// or — when the engine's idle_timeout_ms is set — a read-idle timeout.
/// Drains outstanding replies before returning; does not close `fd`.
/// A line longer than the engine's max_line_bytes gets one error response,
/// after which the connection is abandoned (resynchronizing an unframed
/// over-long line is not possible). Handles opened over the fd are
/// released on return. `fault` (optional) injects deterministic reply
/// faults for failover tests.
void serve_fd(Engine& engine, int fd, const FaultSpec& fault = {});

/// Loopback (127.0.0.1) TCP listener over an Engine.
class TcpServer {
 public:
  /// Bind and listen; port 0 picks an ephemeral port (see port()).
  /// Installs the engine's shutdown hook so a shutdown request stops the
  /// server. Throws util::CheckError on socket failures. `fault` applies
  /// (with fresh per-connection state) to every accepted connection.
  TcpServer(Engine& engine, std::uint16_t port = 0,
            const FaultSpec& fault = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Serve: every accepted connection is multiplexed onto one epoll
  /// EventLoop (nonblocking reads/writes, bounded outbound queues, stream
  /// cancellation, idle timers — see service/eventloop.hpp). The loop's
  /// limits come from the engine's Config (max_line_bytes,
  /// max_outbound_bytes, idle_timeout_ms). Returns after stop() (or
  /// engine shutdown), once every connection has drained and closed.
  void run();

  /// Stop accepting and reading; queued replies still drain, then run()
  /// returns. Safe to call from any thread, any number of times.
  void stop();

 private:
  Engine& engine_;
  FaultSpec fault_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::mutex mu_;  // guards loop_, stopped_
  EventLoop* loop_ = nullptr;  // run()'s loop, while run() is live
  bool stopped_ = false;
};

/// Loopback (127.0.0.1) Prometheus scrape endpoint (`suu_serve
/// --metrics-port`): a tiny close-delimited HTTP/1.0 responder. Every
/// accepted connection gets one `200 OK` + Engine::metrics_text() body and
/// is closed — enough for Prometheus, curl, and tools/suu_metrics, with no
/// request parsing to harden. Runs its own accept thread; the constructor
/// binds (port 0 picks an ephemeral port) and the destructor stops it.
class MetricsServer {
 public:
  /// `body` (tests only) overrides Engine::metrics_text() as the scrape
  /// body — e.g. to make the response large enough to exercise the send
  /// timeout against a stalled peer.
  MetricsServer(Engine& engine, std::uint16_t port = 0,
                std::function<std::string()> body = nullptr);
  ~MetricsServer();

  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  std::uint16_t port() const noexcept { return port_; }
  void stop();

 private:
  Engine& engine_;
  std::function<std::string()> body_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::mutex mu_;
  bool stopped_ = false;
  std::thread accept_thread_;
};

}  // namespace suu::service
