// suu::serve fault injection — deterministic transport-level failures on
// command, so every client failover path is exercised by tests instead of
// assumed.
//
// A FaultSpec is parsed from a compact `key=value[,key=value...]` string
// (the `SUU_FAULT` environment variable or `suu_serve --fault=`); a
// FaultInjector applies it to one connection's reply stream. All triggers
// count deterministically — bytes and complete reply lines written on that
// connection — never wall-clock or thread timing, so a test that asks for
// "die after the second reply line" gets exactly that, every run.
//
// Grammar (any subset, comma-separated; unknown keys and malformed values
// are parse errors — a typo'd fault silently not firing would make a
// "passing" failover test meaningless):
//
//   delay_ms=D           sleep D ms before writing each reply line
//   close_after_bytes=N  hard-close the connection once N bytes have been
//                        written (the drop lands mid-line when N falls
//                        inside one)
//   truncate_line=K      write only the first half of reply line K, then
//                        close (mid-line truncation the peer can parse-fail
//                        on)
//   exit_after_lines=K   _exit(42) after K complete reply lines (daemon
//                        crash between replies)
//   exit_after_bytes=N   _exit(42) once N bytes have been written (daemon
//                        crash mid-line / mid-stream)
//
// The injector decides; the transport executes. serve_fd consults its
// injector before each reply write and performs the delay/short
// write/close/_exit it is told to — see service/transport.hpp.
#pragma once

#include <string>

namespace suu::service {

/// One connection's worth of deterministic fault triggers. Default state
/// is "no faults" (active() == false); every field is independent.
struct FaultSpec {
  int delay_ms = 0;                    ///< per-reply write delay
  long long close_after_bytes = -1;    ///< -1 = never
  int truncate_line = -1;              ///< 1-based reply line; -1 = never
  int exit_after_lines = -1;           ///< 1-based count; -1 = never
  long long exit_after_bytes = -1;     ///< -1 = never

  bool active() const noexcept {
    return delay_ms > 0 || close_after_bytes >= 0 || truncate_line >= 1 ||
           exit_after_lines >= 1 || exit_after_bytes >= 0;
  }

  /// Parse the spec grammar above. Returns false (and fills *error) on
  /// unknown keys, missing '=', or out-of-range values; *out is
  /// unspecified on failure. The empty string parses to the no-fault spec.
  static bool parse(const std::string& text, FaultSpec* out,
                    std::string* error);
};

/// Per-connection fault state: counts bytes/lines written and tells the
/// transport what to do with each reply line. One injector per accepted
/// connection, so `close_after_bytes` et al. reset per peer (exit_* kill
/// the process, so their scope is moot).
class FaultInjector {
 public:
  explicit FaultInjector(const FaultSpec& spec) : spec_(spec) {}

  /// What the transport must do with one reply line.
  struct Action {
    std::size_t write_bytes = 0;  ///< prefix of the line to actually write
    int delay_ms = 0;             ///< sleep before writing
    bool close_after = false;     ///< hard-close the connection afterwards
    bool exit_after = false;      ///< _exit(42) afterwards (crash sim)
  };

  /// Plan the next reply write. `line` is the full wire line including its
  /// trailing '\n'. Once a close fault has fired, subsequent calls return
  /// write_bytes == 0 / close_after == true (the connection is gone).
  Action next(const std::string& line);

 private:
  FaultSpec spec_;
  long long bytes_written_ = 0;
  int lines_written_ = 0;
  bool closed_ = false;
};

}  // namespace suu::service
