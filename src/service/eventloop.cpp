#include "service/eventloop.hpp"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace suu::service {
namespace {

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  SUU_CHECK_MSG(flags >= 0, "fcntl(F_GETFL) failed: " << std::strerror(errno));
  SUU_CHECK_MSG(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                "fcntl(F_SETFL) failed: " << std::strerror(errno));
}

/// Strip a trailing '\r' (CRLF tolerance) and report whether anything is
/// left to submit. Mirrors the threaded transports in transport.cpp.
bool normalize_line(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return !line.empty();
}

}  // namespace

/// One multiplexed connection. Split by owner:
///
///   * immutable after setup: fd, client, cancel;
///   * loop-thread only (no lock): injector, inbuf, reading, want_write,
///     idle_gen — only the loop reads the socket, plans fault actions, and
///     talks to epoll;
///   * shared with engine workers (under mu): the outbound queue and its
///     accounting, the in-flight request count, and the dead/doomed flags.
///     `dead` is written only by the loop thread (teardown) but read by
///     workers deciding whether to enqueue; `doomed` is set by whichever
///     worker's enqueue pushes the queue past the slow-reader bound and is
///     acted on by the loop.
struct EventLoop::Conn {
  int fd = -1;
  std::uint64_t client = 0;
  Engine::CancelToken cancel;

  FaultInjector injector;
  std::string inbuf;
  bool reading = true;
  bool want_write = false;
  std::uint64_t idle_gen = 0;

  std::mutex mu;
  std::deque<std::string> outq;  ///< framed reply lines, '\n' included
  std::size_t out_bytes = 0;     ///< sum of full-line sizes still queued
  std::size_t head_off = 0;      ///< bytes of the planned head prefix written
  bool head_planned = false;     ///< injector consulted for the queue head
  FaultInjector::Action head_act;
  std::int64_t head_ready_ms = 0;  ///< fault-delay deadline; 0 = write now
  std::size_t inflight = 0;        ///< submitted, final reply line pending
  bool dead = false;
  bool doomed = false;  ///< slow reader: kill at next flush
  bool dirty = false;   ///< already on the loop's dirty list (impl mu)

  explicit Conn(const FaultSpec& f) : injector(f) {}
};

struct EventLoop::Impl : std::enable_shared_from_this<EventLoop::Impl> {
  Engine& engine;
  const Options opt;
  const FaultSpec fault;

  int epfd = -1;
  int wakefd = -1;

  // Loop-thread state.
  std::vector<int> listeners;  ///< borrowed fds, registered before run()
  std::unordered_map<int, std::shared_ptr<Conn>> conns;
  bool stop_applied = false;

  enum class TimerKind { kIdle, kWriteDelay };
  struct Timer {
    std::weak_ptr<Conn> conn;
    std::uint64_t idle_gen = 0;  ///< kIdle validity; unused for kWriteDelay
    TimerKind kind = TimerKind::kIdle;
  };
  /// Earliest-deadline-first timer queue ticked from the epoll_wait
  /// timeout; stale idle entries are invalidated by idle_gen, dead
  /// connections by the weak_ptr.
  std::multimap<std::int64_t, Timer> timers;

  // Cross-thread state.
  std::atomic<bool> stopping{false};
  std::atomic<std::size_t> inflight_total{0};
  std::mutex mu;  ///< guards dirty_ (and each Conn::dirty flag)
  std::vector<std::shared_ptr<Conn>> dirty_;

  obs::Counter& wakeups =
      obs::Registry::global().counter("suu_epoll_wakeups_total");
  obs::Gauge& conn_gauge =
      obs::Registry::global().gauge("suu_epoll_connections");
  obs::Gauge& queue_gauge =
      obs::Registry::global().gauge("suu_epoll_outbound_queue_bytes");

  Impl(Engine& e, const Options& o, const FaultSpec& f)
      : engine(e), opt(o), fault(f) {
    epfd = ::epoll_create1(EPOLL_CLOEXEC);
    SUU_CHECK_MSG(epfd >= 0,
                  "epoll_create1 failed: " << std::strerror(errno));
    wakefd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    SUU_CHECK_MSG(wakefd >= 0, "eventfd failed: " << std::strerror(errno));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wakefd;
    SUU_CHECK(::epoll_ctl(epfd, EPOLL_CTL_ADD, wakefd, &ev) == 0);
  }

  ~Impl() {
    // Connections left behind by an EventLoop destroyed without run():
    // release what add_connection/accept took (run() itself exits only
    // once conns is empty).
    for (auto& [fd, conn] : conns) {
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->dead = true;
        if (conn->out_bytes) {
          queue_gauge.add(-static_cast<std::int64_t>(conn->out_bytes));
        }
        conn->outq.clear();
        conn->out_bytes = 0;
      }
      engine.end_client(conn->client);
      ::close(fd);
      conn_gauge.add(-1);
    }
    conns.clear();
    if (wakefd >= 0) ::close(wakefd);
    if (epfd >= 0) ::close(epfd);
  }

  void wake() {
    const std::uint64_t one = 1;
    // eventfd writes coalesce; a full counter (EAGAIN) already wakes.
    [[maybe_unused]] const ssize_t w = ::write(wakefd, &one, sizeof one);
  }

  /// Any thread: queue `conn` for a flush pass on the loop thread.
  void mark_dirty(const std::shared_ptr<Conn>& conn) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (conn->dirty) return;
      conn->dirty = true;
      dirty_.push_back(conn);
    }
    wake();
  }

  void update_epoll(const std::shared_ptr<Conn>& conn) {
    epoll_event ev{};
    ev.events = (conn->reading ? EPOLLIN : 0u) |
                (conn->want_write ? EPOLLOUT : 0u);
    ev.data.fd = conn->fd;
    ::epoll_ctl(epfd, EPOLL_CTL_MOD, conn->fd, &ev);
  }

  void set_want_write(const std::shared_ptr<Conn>& conn, bool w) {
    if (conn->want_write == w) return;
    conn->want_write = w;
    update_epoll(conn);
  }

  void stop_reading(const std::shared_ptr<Conn>& conn) {
    if (!conn->reading) return;
    conn->reading = false;
    ++conn->idle_gen;  // invalidate any queued idle timer
    update_epoll(conn);
  }

  void arm_idle(const std::shared_ptr<Conn>& conn) {
    if (opt.idle_timeout_ms <= 0 || !conn->reading) return;
    ++conn->idle_gen;
    timers.emplace(now_ms() + opt.idle_timeout_ms,
                   Timer{conn, conn->idle_gen, TimerKind::kIdle});
  }

  void setup_conn(int fd) {
    auto conn = std::make_shared<Conn>(fault);
    conn->fd = fd;
    conn->client = engine.begin_client();
    conn->cancel = std::make_shared<std::atomic<bool>>(false);
    conns[fd] = conn;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    SUU_CHECK_MSG(::epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &ev) == 0,
                  "epoll_ctl(ADD) failed: " << std::strerror(errno));
    conn_gauge.add(1);
    arm_idle(conn);
  }

  /// Close `conn` and release everything it holds. `cancel_streams` is
  /// true when the peer is gone (error/hangup, failed write, slow-reader
  /// drop, close_after fault): in-flight streamed estimates stop computing.
  /// It is false for clean teardown (EOF, idle timeout, loop stop) — a
  /// half-closed peer may still be reading replies, and by the time a
  /// graceful close runs nothing is in flight anyway.
  void teardown(const std::shared_ptr<Conn>& conn, bool cancel_streams) {
    std::size_t freed = 0;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->dead) return;
      conn->dead = true;
      freed = conn->out_bytes;
      conn->outq.clear();
      conn->out_bytes = 0;
      conn->head_planned = false;
    }
    if (freed) queue_gauge.add(-static_cast<std::int64_t>(freed));
    if (cancel_streams) {
      conn->cancel->store(true, std::memory_order_relaxed);
    }
    engine.end_client(conn->client);
    ::epoll_ctl(epfd, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
    ++conn->idle_gen;
    conns.erase(conn->fd);
    conn_gauge.add(-1);
  }

  void kill(const std::shared_ptr<Conn>& conn) { teardown(conn, true); }

  /// Clean close once nothing can still produce or carry bytes: reading
  /// stopped (EOF / idle / abandoned / loop stop), no request in flight,
  /// outbound queue empty.
  void try_close_if_drained(const std::shared_ptr<Conn>& conn) {
    if (conn->reading) return;
    bool drained;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      drained = !conn->dead && conn->outq.empty() && conn->inflight == 0;
    }
    if (drained) teardown(conn, false);
  }

  /// Frame `line` and append it to the outbound queue (transport-origin
  /// lines: the over-long-line error). Engine replies take the same path
  /// through the submit callback.
  void enqueue(const std::shared_ptr<Conn>& conn, std::string&& line) {
    line.push_back('\n');
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->dead) return;
    conn->out_bytes += line.size();
    queue_gauge.add(static_cast<std::int64_t>(line.size()));
    conn->outq.push_back(std::move(line));
  }

  /// Answer an unframable over-long line once and abandon the connection:
  /// stop reading, drain what is queued, then close. In-flight requests
  /// are not cancelled — their replies still go out, exactly like the
  /// threaded serve_fd's drain-then-return.
  void overlong(const std::shared_ptr<Conn>& conn) {
    enqueue(conn, make_error_response(
                      Json(nullptr), error_code::kParseError,
                      "request line exceeds " +
                          std::to_string(opt.max_line_bytes) + " bytes"));
    conn->inbuf.clear();
    stop_reading(conn);
    flush(conn);
  }

  void submit_line(const std::shared_ptr<Conn>& conn, std::string&& line) {
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      ++conn->inflight;
    }
    inflight_total.fetch_add(1, std::memory_order_relaxed);
    auto impl = shared_from_this();
    engine.submit(
        std::move(line),
        // Runs on any engine worker (or inline on admission failure). The
        // callback owns shared_ptrs to both the loop state and the
        // connection, so a peer that vanished mid-request never dangles:
        // its replies are dropped against conn->dead.
        [impl, conn](std::string&& resp, bool last) {
          bool enqueued = false;
          {
            std::lock_guard<std::mutex> lock(conn->mu);
            if (!conn->dead) {
              resp.push_back('\n');
              conn->out_bytes += resp.size();
              impl->queue_gauge.add(static_cast<std::int64_t>(resp.size()));
              conn->outq.push_back(std::move(resp));
              if (conn->out_bytes > impl->opt.max_outbound_bytes) {
                conn->doomed = true;
              }
              enqueued = true;
            }
            if (last) --conn->inflight;
          }
          if (last) {
            impl->inflight_total.fetch_sub(1, std::memory_order_relaxed);
          }
          if (enqueued || last) impl->mark_dirty(conn);
        },
        conn->client, conn->cancel);
  }

  /// Loop thread: drain the outbound queue as far as the socket, the fault
  /// plan, and the slow-reader policy allow.
  void flush(const std::shared_ptr<Conn>& conn) {
    bool graceful = false;
    {
      std::unique_lock<std::mutex> lock(conn->mu);
      if (conn->dead) return;
      if (conn->doomed) {
        lock.unlock();
        engine.record_slow_reader_drop();
        kill(conn);
        return;
      }
      const std::int64_t now = now_ms();
      while (!conn->outq.empty()) {
        std::string& head = conn->outq.front();
        if (!conn->head_planned) {
          // The fault injector decides how much of this line actually
          // reaches the peer and what happens afterwards; with no faults
          // it always says "all of it, nothing". delay_ms becomes a timer
          // deadline — other connections keep flowing while this one's
          // queue head waits.
          conn->head_act = conn->injector.next(head);
          conn->head_planned = true;
          conn->head_off = 0;
          conn->head_ready_ms = 0;
          if (conn->head_act.delay_ms > 0) {
            conn->head_ready_ms = now + conn->head_act.delay_ms;
            timers.emplace(conn->head_ready_ms,
                           Timer{conn, 0, TimerKind::kWriteDelay});
          }
        }
        if (conn->head_ready_ms > now) break;  // fault delay pending
        while (conn->head_off < conn->head_act.write_bytes) {
          // MSG_NOSIGNAL: a peer that closed mid-reply must surface as
          // EPIPE, not a process-killing SIGPIPE. ENOTSOCK falls back to
          // write() for pipe fds.
          ssize_t w = ::send(conn->fd, head.data() + conn->head_off,
                             conn->head_act.write_bytes - conn->head_off,
                             MSG_NOSIGNAL);
          if (w < 0 && errno == ENOTSOCK) {
            w = ::write(conn->fd, head.data() + conn->head_off,
                        conn->head_act.write_bytes - conn->head_off);
          }
          if (w < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
              lock.unlock();
              set_want_write(conn, true);
              return;
            }
            lock.unlock();
            kill(conn);  // peer gone mid-write
            return;
          }
          conn->head_off += static_cast<std::size_t>(w);
        }
        if (conn->head_act.exit_after) ::_exit(42);  // crash simulation
        const bool close_after = conn->head_act.close_after;
        queue_gauge.add(-static_cast<std::int64_t>(head.size()));
        conn->out_bytes -= head.size();
        conn->outq.pop_front();
        conn->head_planned = false;
        if (close_after) {
          lock.unlock();
          kill(conn);  // injected hard close
          return;
        }
      }
      graceful =
          conn->outq.empty() && !conn->reading && conn->inflight == 0;
    }
    set_want_write(conn, false);
    if (graceful) teardown(conn, false);
  }

  void do_accept(int lfd) {
    for (;;) {
      const int fd =
          ::accept4(lfd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN, or listener shut down
      }
      if (stopping.load(std::memory_order_relaxed)) {
        ::close(fd);
        continue;
      }
      setup_conn(fd);
    }
  }

  void handle_read(const std::shared_ptr<Conn>& conn) {
    char chunk[4096];
    bool got_bytes = false;
    for (;;) {
      const ssize_t r = ::read(conn->fd, chunk, sizeof chunk);
      if (r < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        kill(conn);
        return;
      }
      if (r == 0) {
        // Clean EOF — possibly a half-close: the peer may still be
        // reading replies, so this is never a cancellation. A final line
        // that arrived without its trailing newline is still a request.
        stop_reading(conn);
        if (!conn->inbuf.empty()) {
          std::string line;
          line.swap(conn->inbuf);
          if (line.size() > opt.max_line_bytes) {
            overlong(conn);
            return;
          }
          if (normalize_line(line)) submit_line(conn, std::move(line));
        }
        try_close_if_drained(conn);
        return;
      }
      got_bytes = true;
      conn->inbuf.append(chunk, static_cast<std::size_t>(r));
      std::size_t start = 0;
      for (;;) {
        const std::size_t nl = conn->inbuf.find('\n', start);
        if (nl == std::string::npos) break;
        std::string line = conn->inbuf.substr(start, nl - start);
        start = nl + 1;
        // The cap applies to every extracted line, not just the residual
        // buffer: a complete over-long line inside one read chunk must be
        // rejected at the transport, not handed to the engine.
        if (line.size() > opt.max_line_bytes) {
          overlong(conn);
          return;
        }
        if (!normalize_line(line)) continue;
        submit_line(conn, std::move(line));
      }
      conn->inbuf.erase(0, start);
      if (conn->inbuf.size() > opt.max_line_bytes) {
        overlong(conn);
        return;
      }
    }
    if (got_bytes) arm_idle(conn);
  }

  void fire_timers() {
    const std::int64_t now = now_ms();
    while (!timers.empty() && timers.begin()->first <= now) {
      const Timer t = timers.begin()->second;
      timers.erase(timers.begin());
      auto conn = t.conn.lock();
      if (!conn || conns.find(conn->fd) == conns.end()) continue;
      if (t.kind == TimerKind::kWriteDelay) {
        flush(conn);
        continue;
      }
      if (t.idle_gen != conn->idle_gen || !conn->reading) continue;
      // A silent peer past the idle budget is indistinguishable from a
      // half-open connection: stop reading, drain, close — without
      // cancelling in-flight work, matching the threaded serve_fd.
      stop_reading(conn);
      try_close_if_drained(conn);
    }
  }

  int timer_timeout() const {
    if (timers.empty()) return -1;
    const std::int64_t dt = timers.begin()->first - now_ms();
    if (dt <= 0) return 0;
    return dt > 60'000 ? 60'000 : static_cast<int>(dt);
  }

  void process_dirty() {
    std::vector<std::shared_ptr<Conn>> list;
    {
      std::lock_guard<std::mutex> lock(mu);
      list.swap(dirty_);
      for (auto& c : list) c->dirty = false;
    }
    for (auto& c : list) {
      if (conns.find(c->fd) == conns.end()) continue;
      flush(c);
      if (conns.find(c->fd) != conns.end()) try_close_if_drained(c);
    }
  }

  void apply_stop() {
    stop_applied = true;
    for (const int lfd : listeners) {
      ::epoll_ctl(epfd, EPOLL_CTL_DEL, lfd, nullptr);
    }
    // Stop reading everywhere; surviving connections drain their queued
    // replies (the shutdown acknowledgment itself when stop() ran from the
    // engine's shutdown hook) and close as they empty.
    std::vector<std::shared_ptr<Conn>> all;
    all.reserve(conns.size());
    for (auto& [fd, conn] : conns) all.push_back(conn);
    for (auto& conn : all) {
      stop_reading(conn);
      try_close_if_drained(conn);
    }
  }

  void run() {
    epoll_event evs[64];
    for (;;) {
      if (stopping.load(std::memory_order_relaxed)) {
        if (!stop_applied) apply_stop();
        if (conns.empty() &&
            inflight_total.load(std::memory_order_relaxed) == 0) {
          break;
        }
      }
      const int n = ::epoll_wait(epfd, evs, 64, timer_timeout());
      wakeups.add();
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // epfd gone; nothing recoverable
      }
      for (int i = 0; i < n; ++i) {
        const int fd = evs[i].data.fd;
        if (fd == wakefd) {
          std::uint64_t buf;
          while (::read(wakefd, &buf, sizeof buf) > 0) {
          }
          continue;
        }
        bool is_listener = false;
        for (const int lfd : listeners) is_listener |= (fd == lfd);
        if (is_listener) {
          do_accept(fd);
          continue;
        }
        const auto it = conns.find(fd);
        if (it == conns.end()) continue;
        auto conn = it->second;
        if (evs[i].events & (EPOLLERR | EPOLLHUP)) {
          // Hard peer death (RST / full close with bytes pending): both
          // directions are unusable, so in-flight streams are cancelled.
          kill(conn);
          continue;
        }
        if (evs[i].events & EPOLLIN) handle_read(conn);
        if (conns.find(fd) != conns.end() && (evs[i].events & EPOLLOUT)) {
          flush(conn);
        }
      }
      fire_timers();
      process_dirty();
    }
  }
};

EventLoop::EventLoop(Engine& engine, const Options& opt, const FaultSpec& fault)
    : impl_(std::make_shared<Impl>(engine, opt, fault)) {}

EventLoop::~EventLoop() = default;

void EventLoop::add_listener(int fd) {
  set_nonblocking(fd);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  SUU_CHECK_MSG(::epoll_ctl(impl_->epfd, EPOLL_CTL_ADD, fd, &ev) == 0,
                "epoll_ctl(ADD listener) failed: " << std::strerror(errno));
  impl_->listeners.push_back(fd);
}

void EventLoop::add_connection(int fd) {
  set_nonblocking(fd);
  impl_->setup_conn(fd);
}

void EventLoop::run() { impl_->run(); }

void EventLoop::stop() {
  impl_->stopping.store(true, std::memory_order_relaxed);
  impl_->wake();
}

}  // namespace suu::service
