#include "service/engine.hpp"

#include <cstdio>
#include <sstream>
#include <string_view>
#include <utility>

#include "api/experiment.hpp"
#include "api/precompute_cache.hpp"
#include "util/table.hpp"

namespace suu::service {
namespace {

std::string fingerprint_hex(std::uint64_t fp) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

}  // namespace

Engine::Engine(const Config& cfg)
    : cfg_(cfg), pool_(std::make_unique<util::ThreadPool>(cfg.workers)) {
  stats_.queue_capacity = cfg_.queue_capacity;
  stats_.workers = pool_->size();
}

Engine::~Engine() { drain(); }

bool Engine::stopping() const noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  return stopping_;
}

void Engine::set_shutdown_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_hook_ = std::move(hook);
}

void Engine::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return inflight_ == 0; });
}

Engine::Stats Engine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.inflight = inflight_;
  return s;
}

std::string Engine::handle(const std::string& line) {
  bool ok = false;
  std::string response;
  if (line.size() > cfg_.max_line_bytes) {
    response = make_error_response(
        Json(nullptr), error_code::kParseError,
        "request line exceeds " + std::to_string(cfg_.max_line_bytes) +
            " bytes");
  } else {
    try {
      const Request req = parse_request(line);
      response = dispatch(req, &ok);
    } catch (const ProtocolError& err) {
      response =
          make_error_response(parse_request_id(line), err.code(), err.what());
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.received;
    if (ok) {
      ++stats_.succeeded;
    } else {
      ++stats_.failed;
    }
  }
  return response;
}

void Engine::submit(std::string line,
                    std::function<void(std::string&&)> reply) {
  const char* reject_code = nullptr;
  const char* reject_msg = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      reject_code = error_code::kShuttingDown;
      reject_msg = "service is shutting down";
    } else if (inflight_ >= cfg_.queue_capacity) {
      reject_code = error_code::kOverloaded;
      reject_msg = "admission queue is full";
    } else {
      ++inflight_;
    }
    if (reject_code != nullptr) {
      ++stats_.received;
      ++stats_.rejected;
      ++stats_.failed;
    }
  }
  if (reject_code != nullptr) {
    reply(make_error_response(parse_request_id(line), reject_code,
                              reject_msg));
    return;
  }
  auto shared_reply =
      std::make_shared<std::function<void(std::string&&)>>(std::move(reply));
  auto shared_line = std::make_shared<std::string>(std::move(line));
  pool_->submit([this, shared_reply, shared_line] {
    // The slot must be released no matter what: a throwing reply callback
    // (or an allocation failure building the response) would otherwise
    // leak inflight_ and deadlock drain()/~Engine.
    try {
      std::string response = handle(*shared_line);
      (*shared_reply)(std::move(response));
    } catch (...) {
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --inflight_;
      if (inflight_ == 0) idle_cv_.notify_all();
    }
  });
}

std::string Engine::dispatch(const Request& req, bool* ok) {
  try {
    std::string result;
    if (req.method == "list_solvers") {
      result = handle_list_solvers();
    } else if (req.method == "solve") {
      result = handle_solve(req.params);
    } else if (req.method == "estimate") {
      result = handle_estimate(req.params);
    } else if (req.method == "stats") {
      result = handle_stats();
    } else if (req.method == "shutdown") {
      result = handle_shutdown();
    } else {
      throw ProtocolError(error_code::kUnknownMethod,
                          "unknown method '" + req.method + "'");
    }
    *ok = true;
    return make_result_response(req.id, result);
  } catch (const ProtocolError& err) {
    return make_error_response(req.id, err.code(), err.what());
  } catch (const JsonError& err) {
    // Type-mismatched params (as_string on a number, fractional ints, …)
    // surface from the Json accessors: the client's input, not our fault.
    return make_error_response(req.id, error_code::kBadParams, err.what());
  } catch (const core::ParseError& err) {
    return make_error_response(req.id, error_code::kBadInstance, err.what());
  } catch (const util::CheckError& err) {
    // Contract violations below the protocol layer — e.g. a structure
    // solver asked to prepare a mismatched dag — are the client's doing.
    return make_error_response(req.id, error_code::kBadParams, err.what());
  } catch (const std::exception& err) {
    return make_error_response(req.id, error_code::kInternal, err.what());
  }
}

std::string Engine::handle_list_solvers() const {
  const api::SolverRegistry& reg = api::SolverRegistry::global();
  std::string out = "{\"solvers\":[";
  bool first = true;
  for (const std::string& name : reg.names()) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    json_append_quoted(out, name);
    out += ",\"summary\":";
    json_append_quoted(out, reg.summary(name));
    out += '}';
  }
  out += "]}";
  return out;
}

std::shared_ptr<const core::Instance> Engine::parse_instance(
    const std::string& text) const {
  std::istringstream is(text);
  return std::make_shared<const core::Instance>(
      core::read_instance(is, cfg_.read_limits));
}

std::shared_ptr<const Engine::Prepared> Engine::prepare(
    std::shared_ptr<const core::Instance> inst, const std::string& solver,
    const api::SolverOptions& opt) {
  const api::SolverRegistry& reg = api::SolverRegistry::global();
  const std::string resolved =
      solver == "auto" ? api::SolverRegistry::dispatch(*inst) : solver;
  if (!reg.contains(resolved)) {
    throw ProtocolError(error_code::kUnknownSolver,
                        "unknown solver '" + resolved + "'");
  }
  const std::uint64_t key =
      api::SolverRegistry::prepare_key(*inst, resolved, opt);

  std::shared_future<std::shared_ptr<const Prepared>> fut;
  std::promise<std::shared_ptr<const Prepared>> prom;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(sf_mu_);
    const auto it = inflight_prepares_.find(key);
    if (it == inflight_prepares_.end()) {
      leader = true;
      inflight_prepares_.emplace(key, prom.get_future().share());
    } else {
      fut = it->second;
    }
  }
  if (!leader) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.coalesced;
    }
    return fut.get();  // rethrows the leader's failure, if any
  }
  try {
    auto prep = std::make_shared<Prepared>();
    prep->instance = std::move(inst);
    prep->solver = reg.prepare(*prep->instance, resolved, opt);
    prom.set_value(prep);
    std::lock_guard<std::mutex> lock(sf_mu_);
    inflight_prepares_.erase(key);
    return prep;
  } catch (...) {
    prom.set_exception(std::current_exception());
    {
      std::lock_guard<std::mutex> lock(sf_mu_);
      inflight_prepares_.erase(key);
    }
    throw;
  }
}

std::string Engine::handle_solve(const Json& params) {
  const SolveParams p = parse_solve_params(params);
  auto inst = parse_instance(p.instance_text);
  const auto prep = prepare(std::move(inst), p.solver, p.options);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.solves;
  }
  const core::Instance& instance = *prep->instance;
  std::string out = "{\"solver\":";
  json_append_quoted(out, prep->solver.name);
  out += ",\"n\":" + std::to_string(instance.num_jobs());
  out += ",\"m\":" + std::to_string(instance.num_machines());
  out += ",\"fingerprint\":";
  json_append_quoted(out, fingerprint_hex(instance.fingerprint()));
  if (p.want_lower_bound) {
    const algos::LowerBound lb =
        api::lower_bound_auto(instance, p.options.lp1);
    out += ",\"lower_bound\":" + util::fmt(lb.value, 6);
  }
  out += '}';
  return out;
}

std::string Engine::handle_estimate(const Json& params) {
  const EstimateParams p =
      parse_estimate_params(params, cfg_.max_replications);
  auto inst = parse_instance(p.solve.instance_text);
  const auto prep = prepare(std::move(inst), p.solve.solver, p.solve.options);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.estimates;
  }

  // One-cell ExperimentRunner, fully serial: the replication seeds derive
  // from (seed, cell 0, replication r), so this produces byte-identical
  // numbers to a direct ExperimentRunner call with the same parameters —
  // and is itself independent of the engine's worker count.
  api::ExperimentRunner::Options ropt;
  ropt.seed = p.seed;
  ropt.replications = p.replications;
  ropt.semantics = p.semantics;
  ropt.strict_eligibility = p.strict_eligibility;
  ropt.step_cap = p.step_cap;
  ropt.skip_capped = true;
  ropt.threads = 1;
  ropt.cell_threads = 1;
  api::ExperimentRunner runner(ropt);
  api::Cell cell;
  cell.instance_label = "wire";
  cell.instance = prep->instance;
  cell.factory = prep->solver.factory;  // already prepared; skip registry
  cell.factory_label = prep->solver.name;
  runner.add(std::move(cell));
  const api::CellResult* r = nullptr;
  try {
    r = &runner.run().front();
  } catch (const util::CheckError& err) {
    // With skip_capped set, an exhausted replication budget is the one
    // capping failure left; report it under its own code. Every other
    // CheckError (e.g. a strict-eligibility violation inside execute)
    // keeps the generic bad_params mapping of the dispatch handler.
    if (std::string_view(err.what()).find("step cap") !=
        std::string_view::npos) {
      throw ProtocolError(error_code::kCapped, err.what());
    }
    throw;
  }

  const core::Instance& instance = *prep->instance;
  std::string out = "{\"solver\":";
  json_append_quoted(out, prep->solver.name);
  out += ",\"n\":" + std::to_string(instance.num_jobs());
  out += ",\"m\":" + std::to_string(instance.num_machines());
  out += ",\"replications\":" + std::to_string(r->replications);
  out += ",\"capped\":" + std::to_string(r->capped);
  out += ",\"mean\":" + util::fmt(r->makespan.mean, 6);
  out += ",\"ci95\":" + util::fmt(r->makespan.ci95_half, 6);
  out += ",\"stddev\":" + util::fmt(r->makespan.stddev, 6);
  out += ",\"min\":" + util::fmt(r->makespan.min, 6);
  out += ",\"max\":" + util::fmt(r->makespan.max, 6);
  if (p.solve.want_lower_bound) {
    const algos::LowerBound lb =
        api::lower_bound_auto(instance, p.solve.options.lp1);
    out += ",\"lower_bound\":" + util::fmt(lb.value, 6);
    if (lb.value > 0.0) {
      out += ",\"ratio\":" + util::fmt(r->makespan.mean / lb.value, 6);
    }
  }
  out += '}';
  return out;
}

std::string Engine::handle_stats() const {
  const Stats s = stats();
  const api::PrecomputeCache::Stats c = api::PrecomputeCache::global().stats();
  std::string out = "{\"engine\":{";
  out += "\"received\":" + std::to_string(s.received);
  out += ",\"succeeded\":" + std::to_string(s.succeeded);
  out += ",\"failed\":" + std::to_string(s.failed);
  out += ",\"rejected\":" + std::to_string(s.rejected);
  out += ",\"coalesced\":" + std::to_string(s.coalesced);
  out += ",\"solves\":" + std::to_string(s.solves);
  out += ",\"estimates\":" + std::to_string(s.estimates);
  out += ",\"inflight\":" + std::to_string(s.inflight);
  out += ",\"queue_capacity\":" + std::to_string(s.queue_capacity);
  out += ",\"workers\":" + std::to_string(s.workers);
  out += "},\"cache\":{";
  out += "\"hits\":" + std::to_string(c.hits);
  out += ",\"misses\":" + std::to_string(c.misses);
  out += ",\"evictions\":" + std::to_string(c.evictions);
  out += ",\"size\":" + std::to_string(c.size);
  out += ",\"capacity\":" + std::to_string(c.capacity);
  out += "}}";
  return out;
}

std::string Engine::handle_shutdown() {
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    if (!hook_fired_ && shutdown_hook_) {
      hook_fired_ = true;
      hook = shutdown_hook_;
    }
  }
  if (hook) hook();
  return "{\"stopping\":true}";
}

}  // namespace suu::service
