#include "service/engine.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string_view>
#include <utility>

#include "api/experiment.hpp"
#include "api/precompute_cache.hpp"
#include "obs/build_info.hpp"
#include "obs/metrics.hpp"
#include "obs/spanlog.hpp"
#include "util/table.hpp"

namespace suu::service {
namespace {

std::string fingerprint_hex(std::uint64_t fp) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

// ------------------------------------------------------------ request obs
//
// Per-request phase accounting. Every request executes synchronously on
// one engine thread (handle() inline, submit() on one pool worker), so a
// thread-local pointer to the live request's accumulator lets deep layers
// (prepare, the estimate runners) attribute time to phases without
// threading a context parameter through every handler signature.

enum Phase : int {
  kPhaseQueueWait = 0,
  kPhaseParse,
  kPhasePrepare,
  kPhaseSolve,
  kPhaseRespond,
  kPhaseCount,
};

constexpr const char* kPhaseNames[kPhaseCount] = {
    "queue_wait", "parse", "prepare", "solve", "respond"};

struct RequestObs {
  std::string trace;
  const char* method = "invalid";
  std::uint64_t start_us = 0;
  struct Acc {
    std::uint64_t start = 0;
    std::uint64_t dur = 0;
    bool used = false;
  } phases[kPhaseCount];

  void add(int phase, std::uint64_t start, std::uint64_t dur) {
    Acc& a = phases[phase];
    if (!a.used) {
      a.used = true;
      a.start = start;
    }
    a.dur += dur;  // streamed requests fold repeated respond/solve spans
  }
};

thread_local RequestObs* g_req_obs = nullptr;

class ScopedPhase {
 public:
  explicit ScopedPhase(int phase) : phase_(phase) {
    if (g_req_obs != nullptr && obs::enabled()) {
      active_ = true;
      t0_ = obs::now_us();
    }
  }
  ~ScopedPhase() {
    if (active_) g_req_obs->add(phase_, t0_, obs::now_us() - t0_);
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  int phase_;
  bool active_ = false;
  std::uint64_t t0_ = 0;
};

// Clamp the per-method metric label to the known method set so a client
// cannot grow unbounded label cardinality with made-up method names.
const char* method_label(const std::string& method) {
  static constexpr const char* kKnown[] = {
      "list_solvers", "open_instance", "update_instance", "close_instance",
      "solve",        "estimate",      "stats",           "metrics",
      "trace",        "shutdown"};
  for (const char* m : kKnown) {
    if (method == m) return m;
  }
  return "other";
}

obs::Histogram& phase_histogram(int phase) {
  static obs::Histogram* hists[kPhaseCount] = {};
  static std::once_flag once;
  std::call_once(once, [] {
    for (int i = 0; i < kPhaseCount; ++i) {
      hists[i] = &obs::Registry::global().histogram(
          std::string("suu_phase_us{phase=\"") + kPhaseNames[i] + "\"}");
    }
  });
  return *hists[phase];
}

/// Run a one-cell estimate runner, mapping the skip_capped budget
/// exhaustion ("every replication hit the step cap") onto its wire code.
const api::CellResult& run_runner_guarded(api::ExperimentRunner& runner) {
  ScopedPhase phase(kPhaseSolve);
  try {
    return runner.run().front();
  } catch (const util::CheckError& err) {
    // With skip_capped set, an exhausted replication budget is the one
    // capping failure left; report it under its own code. Every other
    // CheckError (e.g. a strict-eligibility violation inside execute)
    // keeps the generic bad_params mapping of the dispatch handler.
    if (std::string_view(err.what()).find("step cap") !=
        std::string_view::npos) {
      throw ProtocolError(error_code::kCapped, err.what());
    }
    throw;
  }
}

}  // namespace

Engine::Engine(const Config& cfg)
    : cfg_(cfg), pool_(std::make_unique<util::ThreadPool>(cfg.workers)) {
  if (cfg_.max_open_handles == 0) cfg_.max_open_handles = 1;
  stats_.queue_capacity = cfg_.queue_capacity;
  stats_.workers = pool_->size();
}

Engine::~Engine() {
  drain();
  // Release every pin this engine's sessions hold: the PrecomputeCache is
  // process-wide and must not stay over-retained after the engine is gone.
  std::lock_guard<std::mutex> lock(sess_mu_);
  for (auto& [handle, session] : sessions_) {
    for (const std::uint64_t key : session.pinned_keys) {
      api::PrecomputeCache::global().unpin(key);
    }
  }
  sessions_.clear();
  session_lru_.clear();
}

bool Engine::stopping() const noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  return stopping_;
}

void Engine::set_shutdown_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_hook_ = std::move(hook);
}

void Engine::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return inflight_ == 0; });
}

Engine::Stats Engine::stats() const {
  std::size_t open = 0;
  {
    std::lock_guard<std::mutex> lock(sess_mu_);
    open = sessions_.size();
  }
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.inflight = inflight_;
  s.open_handles = open;
  return s;
}

std::string Engine::handle(const std::string& line) {
  std::string joined;
  process(
      line,
      [&joined](std::string&& resp, bool /*last*/) {
        if (!joined.empty()) joined.push_back('\n');
        joined += resp;
      },
      /*client=*/0);
  return joined;
}

std::uint64_t Engine::begin_client() {
  std::lock_guard<std::mutex> lock(sess_mu_);
  return next_client_++;
}

void Engine::end_client(std::uint64_t client) {
  if (client == 0) return;
  std::vector<std::uint64_t> pinned;
  std::uint64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(sess_mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (it->second.owner != client) {
        ++it;
        continue;
      }
      pinned.insert(pinned.end(), it->second.pinned_keys.begin(),
                    it->second.pinned_keys.end());
      session_lru_.erase(it->second.lru_it);
      it = sessions_.erase(it);
      ++dropped;
    }
  }
  for (const std::uint64_t key : pinned) {
    api::PrecomputeCache::global().unpin(key);
  }
  if (dropped != 0) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.sessions_dropped += dropped;
  }
}

namespace {
void record_request_obs(const RequestObs& robs, std::uint64_t queued_at_us,
                        const Engine::Config& cfg);
}  // namespace

void Engine::record_slow_reader_drop() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.slow_reader_drops;
}

void Engine::process(const std::string& line, const Reply& emit,
                     std::uint64_t client, std::uint64_t queued_at_us,
                     const CancelToken& cancel) {
  bool ok = false;
  const bool obs_on = obs::enabled();
  RequestObs robs;
  Reply timed_emit;
  const Reply* out = &emit;
  if (obs_on) {
    robs.start_us = obs::now_us();
    if (queued_at_us != 0 && robs.start_us > queued_at_us) {
      robs.add(kPhaseQueueWait, queued_at_us, robs.start_us - queued_at_us);
    }
    g_req_obs = &robs;
    timed_emit = [&emit, &robs](std::string&& resp, bool last) {
      const std::uint64_t t0 = obs::now_us();
      emit(std::move(resp), last);
      robs.add(kPhaseRespond, t0, obs::now_us() - t0);
    };
    out = &timed_emit;
  }
  if (line.size() > cfg_.max_line_bytes) {
    (*out)(make_error_response(
               Json(nullptr), error_code::kParseError,
               "request line exceeds " + std::to_string(cfg_.max_line_bytes) +
                   " bytes"),
           true);
  } else {
    try {
      Request req;
      {
        ScopedPhase phase(kPhaseParse);
        req = parse_request(line);
      }
      if (obs_on) {
        robs.method = method_label(req.method);
        robs.trace =
            req.trace.empty()
                ? "srv-" + std::to_string(next_trace_.fetch_add(
                               1, std::memory_order_relaxed))
                : req.trace;
      }
      dispatch(req, &ok, *out, client, cancel);
    } catch (const ProtocolError& err) {
      (*out)(make_error_response(parse_request_id(line), err.code(),
                                 err.what()),
             true);
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.received;
    if (ok) {
      ++stats_.succeeded;
    } else {
      ++stats_.failed;
    }
  }
  if (obs_on) {
    g_req_obs = nullptr;
    record_request_obs(robs, queued_at_us, cfg_);
  }
}

namespace {

void record_request_obs(const RequestObs& robs, std::uint64_t queued_at_us,
                        const Engine::Config& cfg) {
  const std::uint64_t end_us = obs::now_us();
  const std::uint64_t begin_us =
      queued_at_us != 0 ? queued_at_us : robs.start_us;
  const std::uint64_t total_us = end_us > begin_us ? end_us - begin_us : 0;

  obs::Registry::global()
      .counter(std::string("suu_requests_total{method=\"") + robs.method +
               "\"}")
      .add();
  obs::Registry::global()
      .histogram(std::string("suu_request_us{method=\"") + robs.method +
                 "\"}")
      .observe(total_us);

  const char* dominant = "none";
  std::uint64_t dominant_dur = 0;
  for (int i = 0; i < kPhaseCount; ++i) {
    const RequestObs::Acc& a = robs.phases[i];
    if (!a.used) continue;
    phase_histogram(i).observe(a.dur);
    obs::SpanLog::global().record(
        obs::Span{robs.trace, kPhaseNames[i], a.start, a.dur});
    if (a.dur >= dominant_dur) {
      dominant = kPhaseNames[i];
      dominant_dur = a.dur;
    }
  }
  obs::SpanLog::global().record(
      obs::Span{robs.trace, std::string("request:") + robs.method, begin_us,
                total_us});

  if (cfg.slow_log_ms > 0 &&
      total_us >= static_cast<std::uint64_t>(cfg.slow_log_ms) * 1000) {
    std::string msg = "slow-request trace=";
    msg += robs.trace;
    msg += " method=";
    msg += robs.method;
    msg += " total_us=" + std::to_string(total_us);
    msg += " dominant=";
    msg += dominant;
    for (int i = 0; i < kPhaseCount; ++i) {
      if (!robs.phases[i].used) continue;
      msg += ' ';
      msg += kPhaseNames[i];
      msg += "=" + std::to_string(robs.phases[i].dur);
    }
    if (cfg.slow_log_sink) {
      cfg.slow_log_sink(msg);
    } else {
      std::fprintf(stderr, "%s\n", msg.c_str());
    }
  }
}

}  // namespace

void Engine::submit(std::string line, Reply reply, std::uint64_t client,
                    CancelToken cancel) {
  const char* reject_code = nullptr;
  const char* reject_msg = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      reject_code = error_code::kShuttingDown;
      reject_msg = "service is shutting down";
    } else if (inflight_ >= cfg_.queue_capacity) {
      reject_code = error_code::kOverloaded;
      reject_msg = "admission queue is full";
    } else {
      ++inflight_;
    }
    if (reject_code != nullptr) {
      ++stats_.received;
      ++stats_.rejected;
      ++stats_.failed;
    }
  }
  if (reject_code != nullptr) {
    reply(make_error_response(parse_request_id(line), reject_code, reject_msg),
          true);
    return;
  }
  auto shared_reply = std::make_shared<Reply>(std::move(reply));
  auto shared_line = std::make_shared<std::string>(std::move(line));
  const std::uint64_t queued_at_us = obs::enabled() ? obs::now_us() : 0;
  pool_->submit([this, shared_reply, shared_line, client, queued_at_us,
                 cancel = std::move(cancel)] {
    // The slot must be released no matter what: a throwing reply callback
    // (or an allocation failure building a response) would otherwise leak
    // inflight_ and deadlock drain()/~Engine.
    try {
      process(*shared_line, *shared_reply, client, queued_at_us, cancel);
    } catch (...) {
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --inflight_;
      if (inflight_ == 0) idle_cv_.notify_all();
    }
  });
}

void Engine::dispatch(const Request& req, bool* ok, const Reply& emit,
                      std::uint64_t client, const CancelToken& cancel) {
  try {
    if (req.method == "estimate") {
      // Streamed estimates frame their own response lines (shard
      // envelopes, then the terminal line).
      handle_estimate(req.id, req.params, ok, emit, cancel);
      return;
    }
    std::string result;
    if (req.method == "list_solvers") {
      result = handle_list_solvers();
    } else if (req.method == "open_instance") {
      result = handle_open_instance(req.params, client);
    } else if (req.method == "update_instance") {
      result = handle_update_instance(req.params);
    } else if (req.method == "close_instance") {
      result = handle_close_instance(req.params);
    } else if (req.method == "solve") {
      result = handle_solve(req.params);
    } else if (req.method == "stats") {
      result = handle_stats();
    } else if (req.method == "metrics") {
      result = handle_metrics();
    } else if (req.method == "trace") {
      result = handle_trace(req.params);
    } else if (req.method == "shutdown") {
      result = handle_shutdown();
    } else {
      throw ProtocolError(error_code::kUnknownMethod,
                          "unknown method '" + req.method + "'");
    }
    *ok = true;
    emit(make_result_response(req.id, result), true);
  } catch (const ProtocolError& err) {
    emit(make_error_response(req.id, err.code(), err.what()), true);
  } catch (const JsonError& err) {
    // Type-mismatched params (as_string on a number, fractional ints, …)
    // surface from the Json accessors: the client's input, not our fault.
    emit(make_error_response(req.id, error_code::kBadParams, err.what()),
         true);
  } catch (const core::ParseError& err) {
    emit(make_error_response(req.id, error_code::kBadInstance, err.what()),
         true);
  } catch (const util::CheckError& err) {
    // Contract violations below the protocol layer — e.g. a structure
    // solver asked to prepare a mismatched dag — are the client's doing.
    emit(make_error_response(req.id, error_code::kBadParams, err.what()),
         true);
  } catch (const std::exception& err) {
    emit(make_error_response(req.id, error_code::kInternal, err.what()),
         true);
  }
}

std::string Engine::handle_list_solvers() const {
  const api::SolverRegistry& reg = api::SolverRegistry::global();
  std::string out = "{\"solvers\":[";
  bool first = true;
  for (const std::string& name : reg.names()) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    json_append_quoted(out, name);
    out += ",\"summary\":";
    json_append_quoted(out, reg.summary(name));
    out += '}';
  }
  out += "]}";
  return out;
}

std::shared_ptr<const core::Instance> Engine::parse_instance(
    const std::string& text) const {
  std::istringstream is(text);
  return std::make_shared<const core::Instance>(
      core::read_instance(is, cfg_.read_limits));
}

std::string Engine::handle_open_instance(const Json& params,
                                         std::uint64_t client) {
  const OpenInstanceParams p = parse_open_instance_params(params);
  auto inst = parse_instance(p.instance_text);

  std::uint64_t handle = 0;
  std::vector<std::uint64_t> expired_keys;
  bool expired_one = false;
  {
    std::lock_guard<std::mutex> lock(sess_mu_);
    if (sessions_.size() >= cfg_.max_open_handles && !sessions_.empty()) {
      expired_keys = expire_lru_session_locked();
      expired_one = true;
    }
    handle = next_handle_++;
    Session session;
    session.instance = inst;
    session.owner = client;
    session.lru_it = session_lru_.insert(session_lru_.end(), handle);
    sessions_.emplace(handle, std::move(session));
  }
  for (const std::uint64_t key : expired_keys) {
    api::PrecomputeCache::global().unpin(key);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.sessions_opened;
    if (expired_one) ++stats_.sessions_expired;
  }

  std::string out = "{\"handle\":" + std::to_string(handle);
  out += ",\"fingerprint\":";
  json_append_quoted(out, fingerprint_hex(inst->fingerprint()));
  out += ",\"n\":" + std::to_string(inst->num_jobs());
  out += ",\"m\":" + std::to_string(inst->num_machines());
  out += '}';
  return out;
}

std::string Engine::handle_update_instance(const Json& params) {
  const UpdateInstanceParams p = parse_update_instance_params(params);

  // Snapshot the handle's current instance under the lock, apply the delta
  // outside it (validation + the Dag rebuild may be arbitrarily large),
  // then re-check and install. The pointer-equality re-check makes
  // concurrent updates on one handle safe: whichever racer re-locks second
  // sees a different base pointer and reports busy_handle instead of
  // silently clobbering the winner's instance.
  std::shared_ptr<const core::Instance> base;
  {
    std::lock_guard<std::mutex> lock(sess_mu_);
    const auto it = sessions_.find(p.handle);
    if (it == sessions_.end()) {
      throw ProtocolError(error_code::kUnknownHandle,
                          "unknown, closed, or expired instance handle " +
                              std::to_string(p.handle));
    }
    if (it->second.streams > 0) {
      throw ProtocolError(error_code::kBusyHandle,
                          "handle " + std::to_string(p.handle) +
                              " has a streamed estimate in flight; retry "
                              "when the stream completes");
    }
    session_lru_.splice(session_lru_.end(), session_lru_, it->second.lru_it);
    base = it->second.instance;
  }

  std::shared_ptr<const core::Instance> next;
  try {
    next = std::make_shared<const core::Instance>(
        core::apply_delta(*base, p.delta, cfg_.read_limits));
  } catch (const core::DeltaError& err) {
    throw ProtocolError(error_code::kBadDelta, err.what());
  }

  {
    std::lock_guard<std::mutex> lock(sess_mu_);
    const auto it = sessions_.find(p.handle);
    if (it == sessions_.end()) {
      throw ProtocolError(error_code::kUnknownHandle,
                          "instance handle " + std::to_string(p.handle) +
                              " was closed or expired while the update was "
                              "applying");
    }
    if (it->second.streams > 0 || it->second.instance != base) {
      throw ProtocolError(error_code::kBusyHandle,
                          "a concurrent request raced this update on handle " +
                              std::to_string(p.handle) + "; retry");
    }
    it->second.instance = next;
    it->second.parent_fp = base->fingerprint();
    session_lru_.splice(session_lru_.end(), session_lru_, it->second.lru_it);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.deltas_applied;
  }
  // The parent's pins stay: keeping the parent entry resident is exactly
  // what lets the re-prepare warm-start from its recorded basis.

  std::string out = "{\"handle\":" + std::to_string(p.handle);
  out += ",\"fingerprint\":";
  json_append_quoted(out, fingerprint_hex(next->fingerprint()));
  out += ",\"parent\":";
  json_append_quoted(out, fingerprint_hex(base->fingerprint()));
  out += ",\"n\":" + std::to_string(next->num_jobs());
  out += ",\"m\":" + std::to_string(next->num_machines());
  out += '}';
  return out;
}

std::string Engine::handle_close_instance(const Json& params) {
  const CloseInstanceParams p = parse_close_instance_params(params);
  std::vector<std::uint64_t> pinned;
  {
    std::lock_guard<std::mutex> lock(sess_mu_);
    const auto it = sessions_.find(p.handle);
    if (it == sessions_.end()) {
      throw ProtocolError(error_code::kUnknownHandle,
                          "unknown, closed, or expired instance handle " +
                              std::to_string(p.handle));
    }
    pinned = std::move(it->second.pinned_keys);
    session_lru_.erase(it->second.lru_it);
    sessions_.erase(it);
  }
  for (const std::uint64_t key : pinned) {
    api::PrecomputeCache::global().unpin(key);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.sessions_closed;
  }
  return "{\"handle\":" + std::to_string(p.handle) + ",\"closed\":true}";
}

std::vector<std::uint64_t> Engine::expire_lru_session_locked() {
  std::vector<std::uint64_t> keys;
  if (session_lru_.empty()) return keys;
  const std::uint64_t victim = session_lru_.front();
  session_lru_.pop_front();
  const auto it = sessions_.find(victim);
  if (it != sessions_.end()) {
    keys = std::move(it->second.pinned_keys);
    sessions_.erase(it);
  }
  return keys;
}

std::shared_ptr<const core::Instance> Engine::resolve_instance(
    const SolveParams& p) {
  if (!p.has_handle) return parse_instance(p.instance_text);
  std::lock_guard<std::mutex> lock(sess_mu_);
  const auto it = sessions_.find(p.handle);
  if (it == sessions_.end()) {
    throw ProtocolError(error_code::kUnknownHandle,
                        "unknown, closed, or expired instance handle " +
                            std::to_string(p.handle));
  }
  // Touch: a handle in active use is the last to expire.
  session_lru_.splice(session_lru_.end(), session_lru_, it->second.lru_it);
  return it->second.instance;
}

void Engine::pin_key_for_session(std::uint64_t handle, std::uint64_t key) {
  std::lock_guard<std::mutex> lock(sess_mu_);
  const auto it = sessions_.find(handle);
  // The session may have been closed or expired while this request was in
  // flight; its instance shared_ptr keeps the request alive, but there is
  // no session left to own a pin.
  if (it == sessions_.end()) return;
  auto& keys = it->second.pinned_keys;
  if (std::find(keys.begin(), keys.end(), key) != keys.end()) return;
  keys.push_back(key);
  api::PrecomputeCache::global().pin(key);
}

std::shared_ptr<const Engine::Prepared> Engine::prepare(
    std::shared_ptr<const core::Instance> inst, const std::string& solver,
    const api::SolverOptions& opt, std::uint64_t session_handle) {
  // Followers of a single-flight batch attribute their wait for the
  // leader's precompute to the prepare phase too — from the request's
  // point of view that wait IS the prepare.
  ScopedPhase phase(kPhasePrepare);
  const api::SolverRegistry& reg = api::SolverRegistry::global();
  const std::string resolved =
      solver == "auto" ? api::SolverRegistry::dispatch(*inst) : solver;
  if (!reg.contains(resolved)) {
    throw ProtocolError(error_code::kUnknownSolver,
                        "unknown solver '" + resolved + "'");
  }
  const std::uint64_t key =
      api::SolverRegistry::prepare_key(*inst, resolved, opt);
  if (session_handle != 0) pin_key_for_session(session_handle, key);

  // Delta warm-start hint: when the session's instance was derived from a
  // parent by update_instance, point the registry at the parent's cache
  // entry (same resolved solver + options, parent fingerprint) so a miss
  // here seeds its LP solves from the parent's recorded basis.
  api::PrepareHint hint;
  api::PrepareHint* hintp = nullptr;
  if (session_handle != 0) {
    std::uint64_t parent_fp = 0;
    {
      std::lock_guard<std::mutex> lock(sess_mu_);
      const auto it = sessions_.find(session_handle);
      if (it != sessions_.end()) parent_fp = it->second.parent_fp;
    }
    if (parent_fp != 0) {
      hint.parent_key =
          api::SolverRegistry::prepare_key(parent_fp, resolved, opt);
      hintp = &hint;
    }
  }

  std::shared_future<std::shared_ptr<const Prepared>> fut;
  std::promise<std::shared_ptr<const Prepared>> prom;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(sf_mu_);
    const auto it = inflight_prepares_.find(key);
    if (it == inflight_prepares_.end()) {
      leader = true;
      inflight_prepares_.emplace(key, prom.get_future().share());
    } else {
      fut = it->second;
    }
  }
  if (!leader) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.coalesced;
    }
    return fut.get();  // rethrows the leader's failure, if any
  }
  try {
    auto prep = std::make_shared<Prepared>();
    prep->instance = std::move(inst);
    const std::uint64_t t0 =
        hintp != nullptr && obs::enabled() ? obs::now_us() : 0;
    prep->solver = reg.prepare(*prep->instance, resolved, opt, hintp);
    if (hintp != nullptr && !hint.cache_hit) {
      // A re-prepare of an updated handle actually ran: record how long a
      // delta re-solve takes (warm or not — the histogram's point is the
      // warm/cold contrast against suu_phase_us{phase="prepare"}) and
      // whether the parent's basis was accepted somewhere.
      if (t0 != 0) {
        obs::Registry::global()
            .histogram("suu_delta_prepare_us")
            .observe(obs::now_us() - t0);
      }
      if (hint.warm_used) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.delta_warm_hits;
      }
    }
    prom.set_value(prep);
    std::lock_guard<std::mutex> lock(sf_mu_);
    inflight_prepares_.erase(key);
    return prep;
  } catch (...) {
    prom.set_exception(std::current_exception());
    {
      std::lock_guard<std::mutex> lock(sf_mu_);
      inflight_prepares_.erase(key);
    }
    throw;
  }
}

std::string Engine::handle_solve(const Json& params) {
  const SolveParams p = parse_solve_params(params);
  auto inst = resolve_instance(p);
  const auto prep = prepare(std::move(inst), p.solver, p.options,
                            p.has_handle ? p.handle : 0);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.solves;
  }
  const core::Instance& instance = *prep->instance;
  std::string out = "{\"solver\":";
  json_append_quoted(out, prep->solver.name);
  out += ",\"n\":" + std::to_string(instance.num_jobs());
  out += ",\"m\":" + std::to_string(instance.num_machines());
  out += ",\"fingerprint\":";
  json_append_quoted(out, fingerprint_hex(instance.fingerprint()));
  if (p.want_lower_bound) {
    const algos::LowerBound lb =
        api::lower_bound_auto(instance, p.options.lp1);
    out += ",\"lower_bound\":" + util::fmt(lb.value, 6);
  }
  out += '}';
  return out;
}

namespace {

/// Runner options shared by every estimate execution path: fully serial,
/// so the engine's own worker count can never show up in response bytes.
api::ExperimentRunner::Options estimate_runner_options(
    const EstimateParams& p) {
  api::ExperimentRunner::Options ropt;
  ropt.seed = p.seed;
  ropt.replications = p.replications;
  ropt.semantics = p.semantics;
  ropt.strict_eligibility = p.strict_eligibility;
  ropt.step_cap = p.step_cap;
  ropt.skip_capped = true;
  ropt.threads = 1;
  ropt.cell_threads = 1;
  return ropt;
}

/// The canonical shard cell: replications [lo, hi) of the estimate's
/// global sequence, seeded from seed stream 1 (the stream a one-cell
/// runner would use) by global replication index — so shard samples are
/// exactly the samples the unsharded estimate would draw.
api::Cell shard_cell(const std::shared_ptr<const core::Instance>& instance,
                     const api::PreparedSolver& solver, int lo, int hi) {
  api::Cell cell;
  cell.instance_label = "wire";
  cell.instance = instance;
  cell.factory = solver.factory;  // already prepared; skip registry
  cell.factory_label = solver.name;
  cell.seed_stream = 1;
  cell.rep_offset = lo;
  cell.replications = hi - lo;
  return cell;
}

/// One shard's print_json row bytes (no trailing newline) — by
/// construction byte-identical to the corresponding row of
/// ExperimentRunner::print_json over the whole shard grid.
std::string shard_row_json(const api::ExperimentRunner& runner) {
  std::ostringstream os;
  runner.print_json(os);
  std::string row = os.str();
  if (!row.empty() && row.back() == '\n') row.pop_back();
  return row;
}

/// The estimate result object (shared by the plain response and the
/// terminal envelope of a stream, which must be byte-identical).
std::string estimate_result_json(const api::PreparedSolver& solver,
                                 const core::Instance& instance,
                                 int replications, int capped,
                                 const util::Estimate& makespan,
                                 const EstimateParams& p) {
  std::string out = estimate_result_body(solver.name, instance.num_jobs(),
                                         instance.num_machines(), replications,
                                         capped, makespan);
  if (p.solve.want_lower_bound) {
    const algos::LowerBound lb =
        api::lower_bound_auto(instance, p.solve.options.lp1);
    out += ",\"lower_bound\":" + util::fmt(lb.value, 6);
    if (lb.value > 0.0) {
      out += ",\"ratio\":" + util::fmt(makespan.mean / lb.value, 6);
    }
  }
  out += '}';
  return out;
}

}  // namespace

void Engine::handle_estimate(const Json& id, const Json& params, bool* ok,
                             const Reply& emit, const CancelToken& cancel) {
  const EstimateParams p =
      parse_estimate_params(params, cfg_.max_replications);
  // A streamed estimate through a handle marks the session busy for its
  // whole run: update_instance must not swap the instance between the
  // shard envelopes of one reply sequence (it answers busy_handle while
  // the mark is held). Plain and single-shard estimates snapshot the
  // instance up front — an update landing mid-run cannot affect their one
  // response — so they take no mark.
  const bool guarded = p.stream && p.solve.has_handle;
  if (guarded) begin_stream(p.solve.handle);
  try {
    run_estimate(id, p, ok, emit, cancel);
  } catch (...) {
    if (guarded) end_stream(p.solve.handle);
    throw;
  }
  if (guarded) end_stream(p.solve.handle);
}

void Engine::begin_stream(std::uint64_t handle) {
  std::lock_guard<std::mutex> lock(sess_mu_);
  const auto it = sessions_.find(handle);
  if (it == sessions_.end()) {
    throw ProtocolError(error_code::kUnknownHandle,
                        "unknown, closed, or expired instance handle " +
                            std::to_string(handle));
  }
  ++it->second.streams;
}

void Engine::end_stream(std::uint64_t handle) noexcept {
  std::lock_guard<std::mutex> lock(sess_mu_);
  const auto it = sessions_.find(handle);
  // The handle may have been closed or LRU-expired mid-stream; the
  // stream's instance shared_ptr kept the run alive, and there is nothing
  // left to unmark.
  if (it != sessions_.end() && it->second.streams > 0) --it->second.streams;
}

void Engine::run_estimate(const Json& id, const EstimateParams& p, bool* ok,
                          const Reply& emit, const CancelToken& cancel) {
  auto inst = resolve_instance(p.solve);
  const auto prep = prepare(std::move(inst), p.solve.solver, p.solve.options,
                            p.solve.has_handle ? p.solve.handle : 0);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.estimates;
    if (p.stream) ++stats_.streams;
  }
  const core::Instance& instance = *prep->instance;

  if (p.shard >= 0) {
    // Single-shard fan-out: shard s of K in one plain response, so a
    // client can spread an estimate's shards over connections/processes.
    const auto [lo, hi] = shard_range(p.replications, p.shards, p.shard);
    api::ExperimentRunner runner(estimate_runner_options(p));
    runner.add(shard_cell(prep->instance, prep->solver, lo, hi));
    const api::CellResult& r = run_runner_guarded(runner);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.shards;
    }
    std::string result = "{\"seq\":" + std::to_string(p.shard);
    result += ",\"shards\":" + std::to_string(p.shards);
    result += ",\"shard\":" + shard_row_json(runner);
    if (p.samples) {
      // Raw per-replication makespans (capped replications excluded), in
      // replication order, at 17 significant digits: a client replaying
      // every shard's samples in global order through util::OnlineStats
      // reproduces the unsharded estimate's aggregate bit-for-bit.
      result += ",\"capped\":" + std::to_string(r.capped);
      result += ",\"samples\":[";
      bool first = true;
      for (const double x : r.samples.samples()) {
        if (!first) result.push_back(',');
        first = false;
        result += json_number(x);
      }
      result += "]";
    }
    result += "}";
    *ok = true;
    emit(make_result_response(id, result), true);
    return;
  }

  if (p.stream) {
    // Streamed sharded estimate: one envelope per shard as it completes
    // (seq-ordered), then a terminal done envelope with the aggregate.
    // Shard cells seed by global replication index, so concatenating the
    // shard samples in order replays the exact Welford accumulation of the
    // unsharded estimate — the aggregate is byte-identical for any K.
    util::OnlineStats agg;
    int capped_total = 0;
    for (int s = 0; s < p.shards; ++s) {
      // The transport cancels a stream whose peer has dropped: stop
      // computing the remaining shards instead of just discarding their
      // output. The terminal error line below is itself discarded against
      // the dead connection; it exists to balance reply accounting.
      if (cancel && cancel->load(std::memory_order_relaxed)) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.streams_cancelled;
        }
        throw ProtocolError(error_code::kCancelled,
                            "client disconnected mid-stream after " +
                                std::to_string(s) + " of " +
                                std::to_string(p.shards) +
                                " shards; remaining shards cancelled");
      }
      const auto [lo, hi] = shard_range(p.replications, p.shards, s);
      api::ExperimentRunner runner(estimate_runner_options(p));
      runner.add(shard_cell(prep->instance, prep->solver, lo, hi));
      const api::CellResult& r = run_runner_guarded(runner);
      capped_total += r.capped;
      for (const double x : r.samples.samples()) agg.add(x);
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.shards;
      }
      emit(make_shard_response(id, s, p.shards, shard_row_json(runner)),
           false);
    }
    const std::string result = estimate_result_json(
        prep->solver, instance, p.replications, capped_total,
        util::make_estimate(agg), p);
    *ok = true;
    emit(make_done_response(id, p.shards, result), true);
    return;
  }

  // Plain estimate. (A non-streamed request with shards > 1 lands here
  // too: sharding is pure delivery — shard seeds derive from global
  // replication indices — so the plain result is byte-identical to the
  // terminal envelope of the streamed form at any shard count, modulo the
  // documented step-cap asymmetry: a fully-capped shard is a per-shard
  // error, while this path only fails when all R replications cap.)
  api::ExperimentRunner runner(estimate_runner_options(p));
  runner.add(shard_cell(prep->instance, prep->solver, 0, p.replications));
  const api::CellResult& r = run_runner_guarded(runner);
  const std::string result = estimate_result_json(
      prep->solver, instance, r.replications, r.capped, r.makespan, p);
  *ok = true;
  emit(make_result_response(id, result), true);
}

std::string Engine::handle_stats() const {
  const Stats s = stats();
  const api::PrecomputeCache::Stats c = api::PrecomputeCache::global().stats();
  // Counters render in sorted key order within each block, so new fields
  // land in a predictable place and two stats snapshots diff cleanly.
  const std::pair<const char*, std::uint64_t> engine_fields[] = {
      {"coalesced", s.coalesced},
      {"delta_warm_hits", s.delta_warm_hits},
      {"deltas_applied", s.deltas_applied},
      {"estimates", s.estimates},
      {"failed", s.failed},
      {"inflight", s.inflight},
      {"open_handles", s.open_handles},
      {"queue_capacity", s.queue_capacity},
      {"received", s.received},
      {"rejected", s.rejected},
      {"sessions_closed", s.sessions_closed},
      {"sessions_dropped", s.sessions_dropped},
      {"sessions_expired", s.sessions_expired},
      {"sessions_opened", s.sessions_opened},
      {"shards", s.shards},
      {"slow_reader_drops", s.slow_reader_drops},
      {"solves", s.solves},
      {"streams", s.streams},
      {"streams_cancelled", s.streams_cancelled},
      {"succeeded", s.succeeded},
      {"workers", s.workers},
  };
  const std::pair<const char*, std::uint64_t> cache_fields[] = {
      {"capacity", c.capacity}, {"evictions", c.evictions},
      {"hits", c.hits},         {"misses", c.misses},
      {"pinned", c.pinned},     {"size", c.size},
  };
  std::string out = "{\"engine\":{";
  bool first = true;
  for (const auto& [name, value] : engine_fields) {
    if (!first) out.push_back(',');
    first = false;
    out += std::string("\"") + name + "\":" + std::to_string(value);
  }
  out += "},\"cache\":{";
  first = true;
  for (const auto& [name, value] : cache_fields) {
    if (!first) out.push_back(',');
    first = false;
    out += std::string("\"") + name + "\":" + std::to_string(value);
  }
  out += "}}";
  return out;
}

std::string Engine::metrics_text() const {
  obs::Registry& reg = obs::Registry::global();
  const Stats s = stats();
  const std::pair<const char*, std::uint64_t> counters[] = {
      {"suu_engine_received_total", s.received},
      {"suu_engine_succeeded_total", s.succeeded},
      {"suu_engine_failed_total", s.failed},
      {"suu_engine_rejected_total", s.rejected},
      {"suu_engine_coalesced_total", s.coalesced},
      {"suu_engine_solves_total", s.solves},
      {"suu_engine_estimates_total", s.estimates},
      {"suu_engine_streams_total", s.streams},
      {"suu_engine_streams_cancelled_total", s.streams_cancelled},
      {"suu_engine_shards_total", s.shards},
      {"suu_engine_slow_reader_drops_total", s.slow_reader_drops},
      {"suu_engine_sessions_opened_total", s.sessions_opened},
      {"suu_engine_sessions_closed_total", s.sessions_closed},
      {"suu_engine_sessions_expired_total", s.sessions_expired},
      {"suu_engine_sessions_dropped_total", s.sessions_dropped},
      {"suu_engine_deltas_applied_total", s.deltas_applied},
      {"suu_engine_delta_warm_hits_total", s.delta_warm_hits},
  };
  for (const auto& [name, value] : counters) reg.counter(name).set(value);
  reg.gauge("suu_engine_open_handles")
      .set(static_cast<std::int64_t>(s.open_handles));
  reg.gauge("suu_engine_inflight").set(static_cast<std::int64_t>(s.inflight));
  reg.gauge("suu_engine_queue_capacity")
      .set(static_cast<std::int64_t>(s.queue_capacity));
  reg.gauge("suu_engine_workers").set(static_cast<std::int64_t>(s.workers));

  const api::PrecomputeCache::Stats c = api::PrecomputeCache::global().stats();
  reg.counter("suu_cache_hits_total").set(c.hits);
  reg.counter("suu_cache_misses_total").set(c.misses);
  reg.counter("suu_cache_evictions_total").set(c.evictions);
  reg.gauge("suu_cache_size").set(static_cast<std::int64_t>(c.size));
  reg.gauge("suu_cache_capacity").set(static_cast<std::int64_t>(c.capacity));
  reg.gauge("suu_cache_pinned").set(static_cast<std::int64_t>(c.pinned));

  reg.set_info("suu_build_info",
               std::string("version=\"") + obs::kVersion + "\",build=\"" +
                   obs::build_type() + "\",obs=\"" + obs::obs_mode() + "\"");
  return reg.render_prometheus();
}

std::string Engine::handle_metrics() const {
  std::string out = "{\"text\":";
  json_append_quoted(out, metrics_text());
  out += '}';
  return out;
}

std::string Engine::handle_trace(const Json& params) const {
  if (!params.is_object()) {
    throw ProtocolError(error_code::kBadParams,
                        "trace needs a params object with a 'trace' id");
  }
  std::string trace_id;
  for (const auto& [key, value] : params.as_object("params")) {
    if (key != "trace") {
      throw ProtocolError(error_code::kBadParams,
                          "unknown params key '" + key + "'");
    }
    trace_id = value.as_string("trace");
  }
  if (trace_id.empty()) {
    throw ProtocolError(error_code::kBadParams,
                        "trace needs a non-empty 'trace' id");
  }
  const std::vector<obs::Span> spans = obs::SpanLog::global().snapshot(trace_id);
  std::string out = "{\"trace\":";
  json_append_quoted(out, trace_id);
  out += ",\"spans\":[";
  bool first = true;
  for (const obs::Span& s : spans) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    json_append_quoted(out, s.name);
    out += ",\"start_us\":" + std::to_string(s.start_us);
    out += ",\"dur_us\":" + std::to_string(s.dur_us);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string Engine::handle_shutdown() {
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    if (!hook_fired_ && shutdown_hook_) {
      hook_fired_ = true;
      hook = shutdown_hook_;
    }
  }
  if (hook) hook();
  return "{\"stopping\":true}";
}

}  // namespace suu::service
