// suu::serve — the transport-independent solver service engine.
//
// Engine turns one wire-protocol request line (see service/protocol.hpp)
// into one or more response lines. It can be driven three ways:
//
//   * handle(line)      — synchronous, for library embedding and tests;
//                         multi-line (streamed) responses come back joined
//                         with '\n';
//   * submit(line, cb)  — asynchronous: the request passes a bounded
//                         admission queue and is executed on the engine's
//                         util::ThreadPool; cb receives each response line
//                         in order, with last == true exactly once on the
//                         final line (inline on admission failure);
//   * a transport       — service/transport.hpp pumps bytes from stdio,
//                         a raw fd, or a loopback TCP socket into submit.
//
// Invariants the rest of the PR (and the tests) rely on:
//
//   Determinism. The response to list_solvers/solve/estimate is a pure
//   function of the request line: fixed JSON key order, fixed number
//   formatting, no timing- or concurrency-dependent fields. Byte-identical
//   requests get byte-identical responses at any worker count. (stats and
//   the session methods are the deliberate exceptions — stats reports live
//   counters, and open_instance assigns handles from a per-engine counter.
//   Everything *keyed by* a handle is still deterministic: a solve/estimate
//   through a handle answers byte-identically to the same request with the
//   instance inlined.)
//
//   Sessions. open_instance parses and fingerprints an instance once and
//   returns a server-assigned handle; solve/estimate accept {"handle": h}
//   in place of inline instance bytes, skipping the per-request parse.
//   Prepare keys reached through a handle are pinned in the
//   api::PrecomputeCache (pin-aware LRU: pinned entries are never evicted)
//   until close_instance — or until the handle itself is expired
//   least-recently-used when max_open_handles is exceeded. Unknown, closed,
//   and expired handles all answer with the typed error "unknown_handle".
//
//   Streamed sharded estimates. estimate with {"stream": true, "shards": K}
//   partitions the replication sequence [0, R) into K deterministic
//   contiguous shards and emits one envelope per shard as it completes
//   (ordered "seq" fields) plus a terminal "done" envelope carrying the
//   aggregate. Shard s's replications draw their seeds from their *global*
//   replication indices, so the aggregate is byte-identical to the
//   unstreamed estimate for any K, and the concatenated shard tables are
//   byte-identical to api::ExperimentRunner::print_json over the canonical
//   shard grid at any worker count. {"shard": s, "shards": K} instead
//   answers with just shard s in a plain response, so a client can fan one
//   estimate's shards out across connections. One deliberate asymmetry:
//   a shard whose replications ALL hit the step cap is a "capped" error
//   for that shard (terminating a stream early), while the plain estimate
//   only fails when all R replications cap — step-cap exhaustion is a
//   per-shard error under sharding.
//
//   Single-flight batching. Concurrent solve/estimate requests whose
//   (instance fingerprint, resolved solver, options) prepare-key coincide
//   are coalesced: one leader runs SolverRegistry::prepare (and thereby
//   the api::PrecomputeCache miss path) while followers wait for the
//   leader's prepared solver — the expensive LP/DP precompute runs exactly
//   once no matter how many identical requests arrive at once. Followers
//   also share the leader's parsed Instance, which keeps borrowed-pointer
//   factories (exact-dp, width-dp) valid for the whole batch.
//
//   Bounded admission. At most queue_capacity requests may be admitted
//   (queued + executing) at once; beyond that submit replies immediately
//   with an "overloaded" error instead of buffering without bound.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/registry.hpp"
#include "core/io.hpp"
#include "service/protocol.hpp"
#include "util/thread_pool.hpp"

namespace suu::service {

class Engine {
 public:
  struct Config {
    /// Worker threads draining the admission queue (0 = hardware
    /// concurrency).
    unsigned workers = 0;
    /// Maximum admitted (queued + executing) requests before submit
    /// replies "overloaded".
    std::size_t queue_capacity = 256;
    /// Requests longer than this are rejected before parsing.
    std::size_t max_line_bytes = std::size_t{4} << 20;
    /// Caps on untrusted instance payloads (see core::ReadLimits).
    core::ReadLimits read_limits;
    /// Upper bound on per-request Monte-Carlo replications.
    int max_replications = 1'000'000;
    /// Maximum concurrently open instance handles (0 is clamped to 1).
    /// Opening one more expires the least-recently-used handle (counted in
    /// Stats::sessions_expired); requests naming an expired handle get the
    /// typed error "unknown_handle".
    std::size_t max_open_handles = 64;
    /// Transport read-idle timeout in milliseconds: a connection that
    /// stays silent this long is abandoned by serve_fd and by the epoll
    /// loop's timer wheel, so a half-open peer cannot pin a reader thread
    /// forever. 0 disables the timeout (the pre-existing block-until-bytes
    /// behavior).
    int idle_timeout_ms = 0;
    /// Slow-reader bound for the epoll transport: a connection whose
    /// queued-but-unwritten reply bytes exceed this is disconnected
    /// (Stats::slow_reader_drops) instead of buffering without bound.
    std::size_t max_outbound_bytes = std::size_t{8} << 20;
    /// Dump a one-line span trace (phases + dominant phase) for any
    /// request whose total wall time reaches this many milliseconds.
    /// 0 disables the slow log.
    int slow_log_ms = 0;
    /// Where slow-request lines go; stderr when unset. Tests inject a
    /// capture sink here.
    std::function<void(const std::string&)> slow_log_sink;
  };

  /// Live engine counters, surfaced on the wire by the `stats` method.
  /// Request-level counters count requests, not response lines: a streamed
  /// estimate that emits K shard envelopes plus its terminal line is one
  /// `received` and one `succeeded` (or `failed`, if a shard errors
  /// mid-stream).
  struct Stats {
    /// Requests entering handle()/submit, including rejected ones.
    std::uint64_t received = 0;
    /// Requests whose final response line had "ok":true.
    std::uint64_t succeeded = 0;
    /// Requests whose final response line had "ok":false (any error code,
    /// admission rejections included).
    std::uint64_t failed = 0;
    /// Admission failures: submit replied inline with "overloaded" (queue
    /// full) or "shutting_down" (after a shutdown request). Also counted
    /// in `failed`.
    std::uint64_t rejected = 0;
    /// Prepares served by another request's in-flight prepare
    /// (single-flight): the caller waited for the leader instead of
    /// running the LP/DP precompute itself.
    std::uint64_t coalesced = 0;
    /// solve requests executed (past admission and parsing).
    std::uint64_t solves = 0;
    /// estimate requests executed, streamed or not.
    std::uint64_t estimates = 0;
    /// Streamed estimates executed ({"stream": true}); a subset of
    /// `estimates`.
    std::uint64_t streams = 0;
    /// Shard results computed: one per shard envelope of a streamed
    /// estimate and one per single-shard ({"shard": s}) request.
    std::uint64_t shards = 0;
    /// Streamed estimates terminated early because their request's
    /// CancelToken fired (the client dropped mid-stream): the remaining
    /// shards were never computed. Also counted in `failed`.
    std::uint64_t streams_cancelled = 0;
    /// Connections dropped by the epoll transport because their outbound
    /// queue exceeded Config::max_outbound_bytes (slow or vanished
    /// readers); reported via record_slow_reader_drop().
    std::uint64_t slow_reader_drops = 0;
    /// update_instance requests that installed a new instance on a live
    /// handle (rejected deltas — bad_delta, busy_handle, unknown_handle —
    /// are not counted).
    std::uint64_t deltas_applied = 0;
    /// Re-prepares after an update_instance whose LP solves were warm-
    /// started from the parent instance's recorded basis AND kept: every
    /// seeded solve certified its optimum unique (lp::WarmStart::certify),
    /// so the seeded result stands in for the cold trajectory's bytes.
    /// Seeded attempts that diverged and fell back cold do not count, and
    /// a parent whose own trajectory failed the certificate is never
    /// seeded from in the first place (the registry's parent gate — LP1
    /// optima are structurally degenerate at paper scale, so expect hits
    /// mainly on small instances; the larger delta win is skipping the
    /// parse/validate/fingerprint of a full instance payload). A subset
    /// of cache-miss prepares on updated handles; cache hits (the child
    /// was prepared before) don't count — nothing ran.
    std::uint64_t delta_warm_hits = 0;
    /// open_instance requests that returned a handle.
    std::uint64_t sessions_opened = 0;
    /// close_instance requests that closed a live handle.
    std::uint64_t sessions_closed = 0;
    /// Handles expired least-recently-used because a new open_instance
    /// exceeded Config::max_open_handles.
    std::uint64_t sessions_expired = 0;
    /// Handles released by end_client() — the owning transport connection
    /// went away (EOF, error, idle timeout) without a close_instance.
    std::uint64_t sessions_dropped = 0;
    /// Currently open handles (gauge).
    std::size_t open_handles = 0;
    /// Requests currently admitted via submit (gauge).
    std::size_t inflight = 0;
    /// Config::queue_capacity, echoed for observability.
    std::size_t queue_capacity = 0;
    /// Resolved worker-thread count (after 0 = hardware concurrency).
    unsigned workers = 0;
  };

  /// Response sink for submit(): called once per response line, in order,
  /// with `last` true exactly once on the final line of the request.
  using Reply = std::function<void(std::string&&, bool last)>;

  /// Cooperative cancellation handle for submitted requests. A transport
  /// stores true when the requesting peer is gone; the engine checks it
  /// between the shards of a streamed estimate and stops computing
  /// (Stats::streams_cancelled) — the request still emits a final
  /// (discarded) error line so reply accounting stays balanced. One token
  /// may be shared by every request of a connection: cancellation is a
  /// property of the peer, not of one request.
  using CancelToken = std::shared_ptr<std::atomic<bool>>;

  Engine() : Engine(Config{}) {}
  explicit Engine(const Config& cfg);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const Config& config() const noexcept { return cfg_; }

  /// Synchronously process one request line and return the response — one
  /// line, or for streamed estimates every envelope joined with '\n' (no
  /// admission bound; used by tests, benches, and in-process clients).
  /// Sessions opened this way are unowned (client id 0): they live until
  /// close_instance, LRU expiry, or engine teardown.
  std::string handle(const std::string& line);

  /// Asynchronously process one request line. `reply` is invoked once per
  /// response line — from a worker thread as lines complete, or inline
  /// (before submit returns) when admission fails — with `last` true on
  /// the final line. `reply` must be callable from any thread.
  /// `client` attributes any session the request opens to a transport
  /// connection (see begin_client); 0 means unowned. `cancel` (optional)
  /// lets the transport stop a streamed estimate whose peer has dropped.
  void submit(std::string line, Reply reply, std::uint64_t client = 0,
              CancelToken cancel = nullptr);

  /// Start a client scope: transports call this once per connection and
  /// pass the returned id to submit, so sessions opened over that
  /// connection are owned by it. Never returns 0 (the unowned id).
  std::uint64_t begin_client();

  /// End a client scope: every session owned by `client` is closed and
  /// its PrecomputeCache pins are released, exactly as if the peer had
  /// sent close_instance for each — a dropped connection must not leak
  /// pinned cache entries. Counted in Stats::sessions_dropped. No-op for
  /// client 0 and for unknown ids.
  void end_client(std::uint64_t client);

  /// True once a shutdown request has been processed; subsequent submits
  /// are rejected with "shutting_down".
  bool stopping() const noexcept;

  /// Invoked (once) from the worker that processes a shutdown request,
  /// after stopping() flips. Transports use it to unblock accept/read
  /// loops.
  void set_shutdown_hook(std::function<void()> hook);

  /// Block until every admitted request has been replied to.
  void drain();

  /// Count one slow-reader disconnect (Stats::slow_reader_drops). Called
  /// by the epoll transport when a connection exceeds
  /// Config::max_outbound_bytes.
  void record_slow_reader_drop();

  Stats stats() const;

  /// The Prometheus text exposition served by the `metrics` wire method
  /// and by `suu_serve --metrics-port`: refreshes the engine- and
  /// cache-mirrored metrics, then renders the process-wide obs::Registry
  /// (request/phase histograms, LP and fan-out counters included).
  std::string metrics_text() const;

 private:
  struct Prepared {
    std::shared_ptr<const core::Instance> instance;
    api::PreparedSolver solver;
  };

  /// One open instance handle: the parsed instance plus every
  /// PrecomputeCache key this session has pinned (deduplicated; unpinned
  /// on close/expiry/owner teardown).
  struct Session {
    std::shared_ptr<const core::Instance> instance;
    std::vector<std::uint64_t> pinned_keys;
    std::list<std::uint64_t>::iterator lru_it;  // position in session_lru_
    std::uint64_t owner = 0;  // begin_client scope; 0 = unowned
    /// Fingerprint of the instance this one was derived from by the last
    /// update_instance (0 = opened fresh, no parent). Read by prepare() to
    /// seed a warm-start hint from the parent's cache entry.
    std::uint64_t parent_fp = 0;
    /// Streamed estimates currently running against this handle.
    /// update_instance refuses (busy_handle) while positive — swapping the
    /// instance mid-stream would mix two instances in one reply sequence.
    int streams = 0;
  };

  /// `queued_at_us` is the obs::now_us() timestamp at admission (submit),
  /// 0 when the request never waited in the queue (handle()).
  void process(const std::string& line, const Reply& emit,
               std::uint64_t client, std::uint64_t queued_at_us = 0,
               const CancelToken& cancel = nullptr);
  void dispatch(const Request& req, bool* ok, const Reply& emit,
                std::uint64_t client, const CancelToken& cancel);
  std::string handle_list_solvers() const;
  std::string handle_open_instance(const Json& params, std::uint64_t client);
  /// Apply a sparse delta to an open handle: validate against the current
  /// instance, re-fingerprint, and install the mutated instance on the
  /// handle (recording the parent fingerprint for warm-started
  /// re-prepares). Typed errors: unknown_handle, bad_delta, busy_handle.
  std::string handle_update_instance(const Json& params);
  std::string handle_close_instance(const Json& params);
  std::string handle_solve(const Json& params);
  /// Emits every response line itself (shard envelopes with last == false,
  /// then the terminal line) and reports success through *ok. `cancel`
  /// (may be null) is checked between shards of a streamed estimate.
  /// Parses, then guards the session handle of a streamed run against
  /// concurrent update_instance (begin_stream/end_stream) around
  /// run_estimate, which does the work.
  void handle_estimate(const Json& id, const Json& params, bool* ok,
                       const Reply& emit, const CancelToken& cancel);
  void run_estimate(const Json& id, const EstimateParams& p, bool* ok,
                    const Reply& emit, const CancelToken& cancel);
  /// Mark a streamed estimate in flight on `handle` (throws unknown_handle
  /// when the handle is gone) / release that mark (no-op when the handle
  /// was closed or expired mid-stream).
  void begin_stream(std::uint64_t handle);
  void end_stream(std::uint64_t handle) noexcept;
  std::string handle_stats() const;
  std::string handle_metrics() const;
  std::string handle_trace(const Json& params) const;
  std::string handle_shutdown();

  std::shared_ptr<const core::Instance> parse_instance(
      const std::string& text) const;
  /// The request's instance: parsed from inline bytes, or looked up (and
  /// LRU-touched) in the session table. Throws ProtocolError
  /// (unknown_handle) for unknown/closed/expired handles.
  std::shared_ptr<const core::Instance> resolve_instance(const SolveParams& p);
  /// Resolve "auto", verify the solver exists, and run the single-flight
  /// prepare. When the request arrived via a session handle, the prepare
  /// key is pinned in the PrecomputeCache for the session's lifetime.
  std::shared_ptr<const Prepared> prepare(
      std::shared_ptr<const core::Instance> inst, const std::string& solver,
      const api::SolverOptions& opt, std::uint64_t session_handle);
  /// Record `key` as pinned by `handle` (first time only) and pin it in
  /// the global PrecomputeCache. No-op when the handle is gone.
  void pin_key_for_session(std::uint64_t handle, std::uint64_t key);
  /// Remove the LRU session; returns its pinned keys to release. Requires
  /// sess_mu_ held.
  std::vector<std::uint64_t> expire_lru_session_locked();

  Config cfg_;
  std::unique_ptr<util::ThreadPool> pool_;

  mutable std::mutex mu_;  // guards stats_, inflight_, stopping_, hook_
  Stats stats_;
  std::size_t inflight_ = 0;
  bool stopping_ = false;
  bool hook_fired_ = false;
  std::function<void()> shutdown_hook_;
  std::condition_variable idle_cv_;

  std::mutex sf_mu_;  // guards inflight_prepares_
  std::unordered_map<std::uint64_t,
                     std::shared_future<std::shared_ptr<const Prepared>>>
      inflight_prepares_;

  // Session table. Lock ordering: sess_mu_ may be taken while calling into
  // the PrecomputeCache (pin/unpin), never the reverse; sess_mu_ and mu_
  // are never held together.
  mutable std::mutex sess_mu_;
  std::unordered_map<std::uint64_t, Session> sessions_;
  std::list<std::uint64_t> session_lru_;  // least recently used first
  std::uint64_t next_handle_ = 1;
  std::uint64_t next_client_ = 1;  // begin_client ids; 0 reserved = unowned

  // Engine-assigned trace ids ("srv-<n>") for requests that arrive without
  // a client "trace" envelope key.
  mutable std::atomic<std::uint64_t> next_trace_{1};
};

}  // namespace suu::service
