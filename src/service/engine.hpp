// suu::serve — the transport-independent solver service engine.
//
// Engine turns one wire-protocol request line (see service/protocol.hpp)
// into one response line. It can be driven three ways:
//
//   * handle(line)      — synchronous, for library embedding and tests;
//   * submit(line, cb)  — asynchronous: the request passes a bounded
//                         admission queue and is executed on the engine's
//                         util::ThreadPool; cb receives the response line
//                         exactly once (inline on admission failure);
//   * a transport       — service/transport.hpp pumps bytes from stdio,
//                         a raw fd, or a loopback TCP socket into submit.
//
// Invariants the rest of the PR (and the tests) rely on:
//
//   Determinism. The response to list_solvers/solve/estimate is a pure
//   function of the request line: fixed JSON key order, fixed number
//   formatting, no timing- or concurrency-dependent fields. Byte-identical
//   requests get byte-identical responses at any worker count. (stats is
//   the deliberate exception — it reports live counters.)
//
//   Single-flight batching. Concurrent solve/estimate requests whose
//   (instance fingerprint, resolved solver, options) prepare-key coincide
//   are coalesced: one leader runs SolverRegistry::prepare (and thereby
//   the api::PrecomputeCache miss path) while followers wait for the
//   leader's prepared solver — the expensive LP/DP precompute runs exactly
//   once no matter how many identical requests arrive at once. Followers
//   also share the leader's parsed Instance, which keeps borrowed-pointer
//   factories (exact-dp, width-dp) valid for the whole batch.
//
//   Bounded admission. At most queue_capacity requests may be admitted
//   (queued + executing) at once; beyond that submit replies immediately
//   with an "overloaded" error instead of buffering without bound.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "api/registry.hpp"
#include "core/io.hpp"
#include "service/protocol.hpp"
#include "util/thread_pool.hpp"

namespace suu::service {

class Engine {
 public:
  struct Config {
    /// Worker threads draining the admission queue (0 = hardware
    /// concurrency).
    unsigned workers = 0;
    /// Maximum admitted (queued + executing) requests before submit
    /// replies "overloaded".
    std::size_t queue_capacity = 256;
    /// Requests longer than this are rejected before parsing.
    std::size_t max_line_bytes = std::size_t{4} << 20;
    /// Caps on untrusted instance payloads (see core::ReadLimits).
    core::ReadLimits read_limits;
    /// Upper bound on per-request Monte-Carlo replications.
    int max_replications = 1'000'000;
  };

  struct Stats {
    std::uint64_t received = 0;   ///< requests entering handle/submit
    std::uint64_t succeeded = 0;  ///< "ok":true responses
    std::uint64_t failed = 0;     ///< "ok":false responses (any code)
    std::uint64_t rejected = 0;   ///< admission failures (overloaded/shutdown)
    std::uint64_t coalesced = 0;  ///< prepares served by another request's
                                  ///< in-flight prepare (single-flight)
    std::uint64_t solves = 0;     ///< solve requests executed
    std::uint64_t estimates = 0;  ///< estimate requests executed
    std::size_t inflight = 0;     ///< currently admitted via submit
    std::size_t queue_capacity = 0;
    unsigned workers = 0;
  };

  Engine() : Engine(Config{}) {}
  explicit Engine(const Config& cfg);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const Config& config() const noexcept { return cfg_; }

  /// Synchronously process one request line and return the response line
  /// (no admission bound; used by tests, benches, and in-process clients).
  std::string handle(const std::string& line);

  /// Asynchronously process one request line. `reply` is invoked exactly
  /// once with the response — from a worker thread on completion, or
  /// inline (before submit returns) when admission fails. `reply` must be
  /// callable from any thread.
  void submit(std::string line, std::function<void(std::string&&)> reply);

  /// True once a shutdown request has been processed; subsequent submits
  /// are rejected with "shutting_down".
  bool stopping() const noexcept;

  /// Invoked (once) from the worker that processes a shutdown request,
  /// after stopping() flips. Transports use it to unblock accept/read
  /// loops.
  void set_shutdown_hook(std::function<void()> hook);

  /// Block until every admitted request has been replied to.
  void drain();

  Stats stats() const;

 private:
  struct Prepared {
    std::shared_ptr<const core::Instance> instance;
    api::PreparedSolver solver;
  };

  std::string dispatch(const Request& req, bool* ok);
  std::string handle_list_solvers() const;
  std::string handle_solve(const Json& params);
  std::string handle_estimate(const Json& params);
  std::string handle_stats() const;
  std::string handle_shutdown();

  std::shared_ptr<const core::Instance> parse_instance(
      const std::string& text) const;
  /// Resolve "auto", verify the solver exists, and run the single-flight
  /// prepare.
  std::shared_ptr<const Prepared> prepare(
      std::shared_ptr<const core::Instance> inst, const std::string& solver,
      const api::SolverOptions& opt);

  Config cfg_;
  std::unique_ptr<util::ThreadPool> pool_;

  mutable std::mutex mu_;  // guards stats_, inflight_, stopping_, hook_
  Stats stats_;
  std::size_t inflight_ = 0;
  bool stopping_ = false;
  bool hook_fired_ = false;
  std::function<void()> shutdown_hook_;
  std::condition_variable idle_cv_;

  std::mutex sf_mu_;  // guards inflight_prepares_
  std::unordered_map<std::uint64_t,
                     std::shared_future<std::shared_ptr<const Prepared>>>
      inflight_prepares_;
};

}  // namespace suu::service
