// suu::serve epoll event loop — multiplexed serving for massive connection
// counts.
//
// The thread-per-connection TcpServer capped concurrent sessions at thread
// scalability; this loop serves thousands of connections from ONE thread.
// All sockets are nonblocking and registered with a single epoll set:
//
//   * accept    — listener fds live in the same epoll set; accepted
//                 connections enter an engine client scope
//                 (Engine::begin_client) exactly like the threaded
//                 transports, so dropped peers release their session pins.
//   * read      — complete request lines are submitted to the Engine;
//                 request execution stays on the engine's worker pool, the
//                 loop never computes. Per-line and residual max_line_bytes
//                 caps answer with a typed parse_error and abandon the
//                 connection (resynchronizing an unframed over-long line is
//                 not possible). A final line that arrives without a
//                 trailing newline at EOF is flushed as a request.
//   * write     — replies are appended to a per-connection bounded outbound
//                 queue by engine workers (any thread), which wake the loop
//                 through an eventfd; the loop owns every socket write and
//                 drains the queue as EPOLLOUT allows. A connection whose
//                 queue exceeds max_outbound_bytes is a slow reader: it is
//                 disconnected (Engine::Stats::slow_reader_drops) rather
//                 than allowed to buffer without bound.
//   * cancel    — each connection carries a CancelToken shared with every
//                 request submitted over it. Peer death (EPOLLERR/EPOLLHUP,
//                 a failed write, a slow-reader drop) sets the token, and
//                 the engine's streamed-shard loop checks it between shards
//                 — a client that drops mid-{"stream":true} stops the
//                 remaining shard computation, not just its output
//                 (Engine::Stats::streams_cancelled).
//   * timers    — idle-session timeouts and fault-injected write delays run
//                 on a deadline-ordered timer queue ticked from the
//                 epoll_wait timeout; no per-connection poll() thread
//                 exists anywhere.
//
// Determinism invariants are inherited, not re-proved: the loop feeds
// Engine::submit the same lines a threaded transport would and writes reply
// lines in completion order per connection, so responses stay
// byte-identical to Engine::handle at any worker count (pinned by the
// transport tests and bench_service_concurrency's reply validation).
//
// Fault injection (service/fault.hpp) is re-expressed as loop write/close
// hooks: delay_ms becomes a timer-wheel deadline on the queue head (other
// connections keep flowing), truncate/close/exit fire after the planned
// prefix of a reply line is written, byte/line counting is unchanged.
//
// Lifetime: reply callbacks capture the connection and loop state by
// shared_ptr, so a peer that vanishes mid-request never dangles a
// callback; run() returns only after every submitted request has replied
// (its bytes delivered or discarded against a dead connection).
//
// Observability: suu_epoll_wakeups_total counts epoll_wait returns,
// suu_epoll_connections / suu_epoll_outbound_queue_bytes gauge the live
// connection count and the total queued-but-unwritten reply bytes.
#pragma once

#include <cstddef>
#include <memory>

#include "service/engine.hpp"
#include "service/fault.hpp"

namespace suu::service {

class EventLoop {
 public:
  struct Options {
    /// Per-line request cap (and residual-buffer cap); over-long input gets
    /// one typed parse_error reply and the connection is abandoned.
    std::size_t max_line_bytes = std::size_t{4} << 20;
    /// Slow-reader bound: a connection whose queued-but-unwritten reply
    /// bytes exceed this is disconnected and its streams cancelled.
    std::size_t max_outbound_bytes = std::size_t{8} << 20;
    /// Read-idle timeout in ms; 0 disables. An idle connection stops
    /// reading, drains its outbound queue, and is closed.
    int idle_timeout_ms = 0;
  };

  /// `fault` applies with fresh per-connection state to every connection.
  EventLoop(Engine& engine, const Options& opt, const FaultSpec& fault = {});
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Register a listening socket. Accepted connections are served by the
  /// loop; the listener fd itself is borrowed (the caller closes it after
  /// run() returns). Call before run().
  void add_listener(int fd);

  /// Serve an already-connected fd (socketpair, inherited socket). The
  /// loop takes ownership and closes it. Call before run().
  void add_connection(int fd);

  /// Drive the loop until stop(): accepts, reads, executes via the engine,
  /// writes. Returns once stopped AND every in-flight request has replied
  /// and every surviving connection has drained its outbound queue.
  void run();

  /// Stop accepting and reading; in-flight replies still drain to their
  /// peers (the shutdown acknowledgment itself when called from the
  /// engine's shutdown hook). Safe from any thread, any number of times.
  void stop();

 private:
  struct Conn;
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace suu::service
