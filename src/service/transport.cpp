#include "service/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <thread>
#include <utility>

#include "service/eventloop.hpp"
#include "util/check.hpp"

namespace suu::service {
namespace {

/// Outstanding-reply tracker for one transport loop: every submit is
/// balanced by a done() inside its reply callback, and the loop drains to
/// zero before its locals go out of scope.
struct Outstanding {
  std::mutex mu;
  std::condition_variable cv;
  std::size_t count = 0;

  void add() {
    std::lock_guard<std::mutex> lock(mu);
    ++count;
  }
  void done() {
    // Notify while still holding the lock: the draining thread destroys
    // this latch the moment it observes count == 0, so an after-unlock
    // notify could touch a destroyed condition variable.
    std::lock_guard<std::mutex> lock(mu);
    --count;
    cv.notify_all();
  }
  void drain() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return count == 0; });
  }
};

/// Strip a trailing '\r' (CRLF tolerance) and report whether anything is
/// left to submit.
bool normalize_line(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return !line.empty();
}

}  // namespace

void serve_stream(Engine& engine, std::istream& in, std::ostream& out) {
  std::mutex write_mu;
  Outstanding pending;
  const std::uint64_t client = engine.begin_client();
  std::string line;
  while (!engine.stopping() && std::getline(in, line)) {
    if (!normalize_line(line)) continue;
    pending.add();
    engine.submit(
        std::move(line),
        [&](std::string&& resp, bool last) {
          {
            std::lock_guard<std::mutex> lock(write_mu);
            out << resp << '\n';
            out.flush();
          }
          if (last) pending.done();
        },
        client);
    line.clear();
  }
  pending.drain();
  engine.end_client(client);
}

void serve_fd(Engine& engine, int fd, const FaultSpec& fault) {
  std::mutex write_mu;
  Outstanding pending;
  FaultInjector injector(fault);
  const std::uint64_t client = engine.begin_client();

  auto write_line = [&](const std::string& resp) {
    std::lock_guard<std::mutex> lock(write_mu);
    std::string msg = resp;
    msg.push_back('\n');
    // The fault injector decides how much of this line actually reaches
    // the peer and what happens to the connection afterwards; with no
    // faults configured it always says "all of it, nothing".
    const FaultInjector::Action act = injector.next(msg);
    if (act.delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(act.delay_ms));
    }
    std::size_t off = 0;
    while (off < act.write_bytes) {
      // MSG_NOSIGNAL: a peer that closed mid-reply must surface as EPIPE,
      // not a process-killing SIGPIPE. ENOTSOCK falls back to write() for
      // pipe fds (suu_serve ignores SIGPIPE for that path).
      ssize_t w = ::send(fd, msg.data() + off, act.write_bytes - off,
                         MSG_NOSIGNAL);
      if (w < 0 && errno == ENOTSOCK) {
        w = ::write(fd, msg.data() + off, act.write_bytes - off);
      }
      if (w < 0) {
        if (errno == EINTR) continue;
        return;  // peer gone; nothing useful left to do with this reply
      }
      off += static_cast<std::size_t>(w);
    }
    if (act.exit_after) ::_exit(42);  // crash simulation, mid-stream
    if (act.close_after) ::shutdown(fd, SHUT_RDWR);  // wakes the read loop
  };

  // An unframed over-long line cannot be resynchronized: answer once and
  // abandon the connection.
  auto reject_overlong = [&] {
    write_line(make_error_response(
        Json(nullptr), error_code::kParseError,
        "request line exceeds " +
            std::to_string(engine.config().max_line_bytes) + " bytes"));
  };

  const int idle_ms = engine.config().idle_timeout_ms;
  std::string buf;
  char chunk[4096];
  bool abandoned = false;
  while (!abandoned) {
    if (idle_ms > 0) {
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLIN;
      const int pr = ::poll(&pfd, 1, idle_ms);
      if (pr < 0) {
        if (errno == EINTR) continue;
        break;
      }
      // A silent peer past the idle budget is indistinguishable from a
      // half-open connection: abandon it rather than pin this thread on a
      // read that may never return. (POLLHUP/POLLERR fall through to the
      // read below, which reports EOF/error.)
      if (pr == 0) break;
    }
    const ssize_t r = ::read(fd, chunk, sizeof chunk);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (r == 0) {
      // Clean EOF. A final line that arrived without its trailing newline
      // is still a request — serve_stream's getline submits it, and the
      // fd transport must agree.
      if (!buf.empty()) {
        if (buf.size() > engine.config().max_line_bytes) {
          reject_overlong();
        } else if (normalize_line(buf)) {
          pending.add();
          engine.submit(
              std::move(buf),
              [&](std::string&& resp, bool last) {
                write_line(resp);
                if (last) pending.done();
              },
              client);
        }
      }
      break;
    }
    buf.append(chunk, static_cast<std::size_t>(r));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buf.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = buf.substr(start, nl - start);
      start = nl + 1;
      // The cap applies to every extracted line, not just the residual
      // buffer: a complete over-long line inside one read chunk must be
      // rejected at the transport, never handed to the engine.
      if (line.size() > engine.config().max_line_bytes) {
        reject_overlong();
        abandoned = true;
        break;
      }
      if (!normalize_line(line)) continue;
      pending.add();
      engine.submit(
          std::move(line),
          [&](std::string&& resp, bool last) {
            write_line(resp);
            if (last) pending.done();
          },
          client);
    }
    if (abandoned) break;
    buf.erase(0, start);
    if (buf.size() > engine.config().max_line_bytes) {
      reject_overlong();
      abandoned = true;
    }
    if (engine.stopping()) break;
  }
  pending.drain();
  engine.end_client(client);
}

TcpServer::TcpServer(Engine& engine, std::uint16_t port,
                     const FaultSpec& fault)
    : engine_(engine), fault_(fault) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  SUU_CHECK_MSG(listen_fd_ >= 0,
                "socket() failed: " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, always
  addr.sin_port = htons(port);
  SUU_CHECK_MSG(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                       sizeof addr) == 0,
                "bind to 127.0.0.1:" << port
                                     << " failed: " << std::strerror(errno));
  // Deep backlog: the concurrency bench opens ~1000 connections in a
  // burst, and the epoll loop accepts them all from one thread.
  SUU_CHECK_MSG(::listen(listen_fd_, 1024) == 0,
                "listen failed: " << std::strerror(errno));
  socklen_t len = sizeof addr;
  SUU_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                          &len) == 0);
  port_ = ntohs(addr.sin_port);
  engine_.set_shutdown_hook([this] { stop(); });
}

TcpServer::~TcpServer() {
  engine_.set_shutdown_hook(nullptr);
  stop();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TcpServer::run() {
  EventLoop::Options opt;
  opt.max_line_bytes = engine_.config().max_line_bytes;
  opt.max_outbound_bytes = engine_.config().max_outbound_bytes;
  opt.idle_timeout_ms = engine_.config().idle_timeout_ms;
  EventLoop loop(engine_, opt, fault_);
  loop.add_listener(listen_fd_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;  // stop() raced ahead of run()
    loop_ = &loop;
  }
  loop.run();
  std::lock_guard<std::mutex> lock(mu_);
  loop_ = nullptr;
}

void TcpServer::stop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_) return;
  stopped_ = true;
  // Wake the loop's accept path; the fd itself is closed in the
  // destructor, after run() has returned, so the descriptor number cannot
  // be reused early.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  // The loop stops reading everywhere but keeps writing: queued replies —
  // the shutdown acknowledgment itself when stop() runs from the engine's
  // shutdown hook — still drain to clients before run() returns.
  if (loop_ != nullptr) loop_->stop();
}

MetricsServer::MetricsServer(Engine& engine, std::uint16_t port,
                             std::function<std::string()> body)
    : engine_(engine), body_(std::move(body)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  SUU_CHECK_MSG(listen_fd_ >= 0,
                "socket() failed: " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  SUU_CHECK_MSG(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                       sizeof addr) == 0,
                "metrics bind to 127.0.0.1:"
                    << port << " failed: " << std::strerror(errno));
  SUU_CHECK_MSG(::listen(listen_fd_, 16) == 0,
                "metrics listen failed: " << std::strerror(errno));
  socklen_t len = sizeof addr;
  SUU_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                          &len) == 0);
  port_ = ntohs(addr.sin_port);
  accept_thread_ = std::thread([this] {
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // listener shut down by stop()
      }
      // A scraper that connects but never reads must not pin this thread:
      // once the socket buffer fills, each blocking write is bounded by
      // the send timeout below and the connection is abandoned (mirroring
      // the 2s receive-side drain bound).
      timeval send_tv{};
      send_tv.tv_sec = 2;
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_tv, sizeof send_tv);
      // Serve the scrape without waiting for (or parsing) the HTTP request
      // line: HTTP/1.0 with Connection: close is delimited by EOF, so
      // writing immediately and closing is a valid exchange for every
      // scraper this endpoint targets.
      const std::string body = body_ ? body_() : engine_.metrics_text();
      std::string resp =
          "HTTP/1.0 200 OK\r\n"
          "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
          "Content-Length: " +
          std::to_string(body.size()) +
          "\r\n"
          "Connection: close\r\n\r\n";
      resp += body;
      std::size_t off = 0;
      while (off < resp.size()) {
        const ssize_t w = ::write(fd, resp.data() + off, resp.size() - off);
        if (w < 0 && errno == EINTR) continue;
        if (w <= 0) break;  // peer gone, or send timeout: stalled scraper
        off += static_cast<std::size_t>(w);
      }
      ::shutdown(fd, SHUT_WR);
      // Let the peer finish sending its request before we close, so it
      // never sees a reset ahead of the body: drain until EOF, bounded by
      // a receive timeout so a stuck peer cannot pin the accept thread.
      timeval tv{};
      tv.tv_sec = 2;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
      char drain[512];
      while (::read(fd, drain, sizeof drain) > 0) {
      }
      ::close(fd);
    }
  });
}

MetricsServer::~MetricsServer() {
  stop();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void MetricsServer::stop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_) return;
  stopped_ = true;
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

}  // namespace suu::service
