#include "service/protocol.hpp"

#include <cmath>
#include <limits>

#include "lp/pricing.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

namespace suu::service {
namespace {

[[noreturn]] void bad_params(const std::string& message) {
  throw ProtocolError(error_code::kBadParams, message);
}

/// Reject unknown keys: a typo'd option silently falling back to a default
/// is the worst failure mode for a measurement service.
void check_known_keys(const Json::Object& obj,
                      std::initializer_list<const char*> known,
                      const char* where) {
  for (const auto& [key, value] : obj) {
    bool ok = false;
    for (const char* k : known) {
      if (key == k) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      bad_params(std::string("unknown key '") + key + "' in " + where);
    }
  }
}

bool get_bool(const Json::Object& obj, const char* key, bool def) {
  const auto it = obj.find(key);
  return it == obj.end() ? def : it->second.as_bool(key);
}

double get_finite_double(const Json::Object& obj, const char* key,
                         double def) {
  const auto it = obj.find(key);
  if (it == obj.end()) return def;
  const double v = it->second.as_double(key);
  if (!std::isfinite(v)) bad_params(std::string(key) + " must be finite");
  return v;
}

std::int64_t get_int_in(const Json::Object& obj, const char* key,
                        std::int64_t def, std::int64_t lo, std::int64_t hi) {
  const auto it = obj.find(key);
  const std::int64_t v = it == obj.end() ? def : it->second.as_int64(key);
  if (v < lo || v > hi) {
    bad_params(std::string(key) + " = " + std::to_string(v) + " outside [" +
               std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return v;
}

api::SolverOptions parse_options(const Json& options) {
  api::SolverOptions opt;
  if (options.is_null()) return opt;
  if (!options.is_object()) bad_params("options must be an object");
  const Json::Object& o = options.as_object("options");
  check_known_keys(o,
                   {"share_precompute", "reuse_cache", "warm_start",
                    "random_delays", "grid_rounding", "gamma_factor",
                    "fallback_factor", "lp1_solver",
                    "lp1_simplex_size_limit", "lp_engine", "lp_pricing"},
                   "options");
  opt.share_precompute = get_bool(o, "share_precompute", opt.share_precompute);
  opt.reuse_cache = get_bool(o, "reuse_cache", opt.reuse_cache);
  opt.warm_start = get_bool(o, "warm_start", opt.warm_start);
  opt.random_delays = get_bool(o, "random_delays", opt.random_delays);
  opt.grid_rounding = get_bool(o, "grid_rounding", opt.grid_rounding);
  opt.gamma_factor = get_finite_double(o, "gamma_factor", opt.gamma_factor);
  if (opt.gamma_factor <= 0.0) bad_params("gamma_factor must be > 0");
  opt.fallback_factor =
      get_finite_double(o, "fallback_factor", opt.fallback_factor);
  if (opt.fallback_factor <= 0.0) bad_params("fallback_factor must be > 0");
  if (const auto it = o.find("lp1_solver"); it != o.end()) {
    const std::string& s = it->second.as_string("lp1_solver");
    if (s == "auto") {
      opt.lp1.solver = rounding::Lp1Options::Solver::Auto;
    } else if (s == "simplex") {
      opt.lp1.solver = rounding::Lp1Options::Solver::Simplex;
    } else if (s == "frank-wolfe") {
      opt.lp1.solver = rounding::Lp1Options::Solver::FrankWolfe;
    } else {
      bad_params("lp1_solver must be one of auto|simplex|frank-wolfe");
    }
  }
  opt.lp1.simplex_size_limit = static_cast<int>(
      get_int_in(o, "lp1_simplex_size_limit", opt.lp1.simplex_size_limit, 1,
                 1'000'000'000));
  if (const auto it = o.find("lp_engine"); it != o.end()) {
    const std::string& s = it->second.as_string("lp_engine");
    if (s == "auto") {
      opt.lp1.engine = lp::SimplexEngine::Auto;
    } else if (s == "tableau") {
      opt.lp1.engine = lp::SimplexEngine::Tableau;
    } else if (s == "revised") {
      opt.lp1.engine = lp::SimplexEngine::Revised;
    } else {
      bad_params("lp_engine must be one of auto|tableau|revised");
    }
  }
  if (const auto it = o.find("lp_pricing"); it != o.end()) {
    const std::string& s = it->second.as_string("lp_pricing");
    if (!lp::pricing::parse_pricing_rule(s, &opt.lp1.pricing)) {
      bad_params("lp_pricing must be one of auto|dantzig|devex|steepest");
    }
  }
  return opt;
}

}  // namespace

ErrorClass classify_error(std::string_view code) {
  if (code == error_code::kParseError || code == error_code::kBadRequest ||
      code == error_code::kUnknownMethod || code == error_code::kBadParams ||
      code == error_code::kBadInstance || code == error_code::kUnknownSolver ||
      code == error_code::kBadDelta || code == error_code::kCapped) {
    return ErrorClass::Fatal;
  }
  if (code == error_code::kUnknownHandle) return ErrorClass::Reopen;
  // overloaded, shutting_down, internal, busy_handle — and any code this
  // build does not know about — may clear up on retry or on another backend
  // (busy_handle: the in-flight stream drains and the handle frees up).
  return ErrorClass::Retryable;
}

Request parse_request(const std::string& line) {
  Json root;
  try {
    root = Json::parse(line);
  } catch (const JsonError& err) {
    throw ProtocolError(error_code::kParseError, err.what());
  }
  if (!root.is_object()) {
    throw ProtocolError(error_code::kBadRequest,
                        "request must be a JSON object");
  }
  Request req;
  if (const Json* id = root.find("id")) {
    if (id->is_array() || id->is_object()) {
      throw ProtocolError(error_code::kBadRequest,
                          "id must be a scalar (number, string, or null)");
    }
    req.id = *id;
  }
  const Json* method = root.find("method");
  if (method == nullptr || !method->is_string()) {
    throw ProtocolError(error_code::kBadRequest,
                        "request needs a string 'method'");
  }
  req.method = method->as_string("method");
  if (const Json* params = root.find("params")) {
    if (!params->is_object() && !params->is_null()) {
      throw ProtocolError(error_code::kBadRequest,
                          "params must be an object");
    }
    req.params = *params;
  }
  if (const Json* trace = root.find("trace")) {
    if (!trace->is_string()) {
      throw ProtocolError(error_code::kBadRequest, "trace must be a string");
    }
    req.trace = trace->as_string("trace");
    if (req.trace.size() > kMaxTraceIdBytes) {
      throw ProtocolError(error_code::kBadRequest,
                          "trace id longer than 128 bytes");
    }
  }
  check_known_keys(root.as_object("request"),
                   {"id", "method", "params", "trace"}, "request");
  return req;
}

Json parse_request_id(const std::string& line) noexcept {
  try {
    const Json root = Json::parse(line);
    const Json* id = root.find("id");
    if (id != nullptr && !id->is_array() && !id->is_object()) return *id;
  } catch (...) {
  }
  return Json(nullptr);
}

SolveParams parse_solve_params(const Json& params,
                               bool allow_estimate_keys) {
  if (!params.is_object()) {
    bad_params(
        "solve/estimate need a params object with an 'instance' or 'handle'");
  }
  const Json::Object& o = params.as_object("params");
  if (allow_estimate_keys) {
    check_known_keys(o,
                     {"instance", "handle", "solver", "options", "lower_bound",
                      "replications", "seed", "semantics", "strict",
                      "step_cap", "stream", "shards", "shard", "samples"},
                     "params");
  } else {
    check_known_keys(o,
                     {"instance", "handle", "solver", "options",
                      "lower_bound"},
                     "params");
  }
  SolveParams p;
  const auto inst = o.find("instance");
  const auto handle = o.find("handle");
  if ((inst == o.end()) == (handle == o.end())) {
    bad_params("exactly one of 'instance' and 'handle' must be given");
  }
  if (inst != o.end()) {
    p.instance_text = inst->second.as_string("instance");
  } else {
    p.has_handle = true;
    p.handle = static_cast<std::uint64_t>(get_int_in(
        o, "handle", 0, 1, std::numeric_limits<std::int64_t>::max()));
  }
  if (const auto it = o.find("solver"); it != o.end()) {
    p.solver = it->second.as_string("solver");
    if (p.solver.empty()) bad_params("solver must be non-empty");
  }
  if (const auto it = o.find("options"); it != o.end()) {
    p.options = parse_options(it->second);
  }
  p.want_lower_bound = get_bool(o, "lower_bound", false);
  return p;
}

EstimateParams parse_estimate_params(const Json& params,
                                     int max_replications) {
  EstimateParams p;
  p.solve = parse_solve_params(params, /*allow_estimate_keys=*/true);
  const Json::Object& o = params.as_object("params");
  p.replications = static_cast<int>(
      get_int_in(o, "replications", p.replications, 1, max_replications));
  p.seed = static_cast<std::uint64_t>(
      get_int_in(o, "seed", static_cast<std::int64_t>(p.seed), 0,
                 (std::int64_t{1} << 53)));
  if (const auto it = o.find("semantics"); it != o.end()) {
    const std::string& s = it->second.as_string("semantics");
    if (s == "coin-flips") {
      p.semantics = sim::Semantics::CoinFlips;
    } else if (s == "deferred") {
      p.semantics = sim::Semantics::Deferred;
    } else {
      bad_params("semantics must be coin-flips|deferred");
    }
  }
  p.strict_eligibility = get_bool(o, "strict", false);
  p.step_cap = get_int_in(o, "step_cap", p.step_cap, 1,
                          std::int64_t{1} << 40);
  p.stream = get_bool(o, "stream", false);
  p.shards = static_cast<int>(get_int_in(o, "shards", 1, 1, 1 << 16));
  if (p.shards > p.replications) {
    bad_params("shards = " + std::to_string(p.shards) +
               " exceeds replications = " + std::to_string(p.replications));
  }
  if (const auto it = o.find("shard"); it != o.end()) {
    p.shard = static_cast<int>(get_int_in(o, "shard", 0, 0, p.shards - 1));
    if (p.stream) {
      bad_params("'shard' selects one shard of a plain response; it cannot "
                 "be combined with 'stream'");
    }
  }
  p.samples = get_bool(o, "samples", false);
  if (p.samples && p.shard < 0) {
    bad_params("'samples' ships a shard's raw samples for client-side "
               "merging; it requires 'shard'");
  }
  return p;
}

OpenInstanceParams parse_open_instance_params(const Json& params) {
  if (!params.is_object()) {
    bad_params("open_instance needs a params object with an 'instance'");
  }
  const Json::Object& o = params.as_object("params");
  check_known_keys(o, {"instance"}, "params");
  const auto inst = o.find("instance");
  if (inst == o.end()) bad_params("missing 'instance' payload");
  OpenInstanceParams p;
  p.instance_text = inst->second.as_string("instance");
  return p;
}

CloseInstanceParams parse_close_instance_params(const Json& params) {
  if (!params.is_object()) {
    bad_params("close_instance needs a params object with a 'handle'");
  }
  const Json::Object& o = params.as_object("params");
  check_known_keys(o, {"handle"}, "params");
  if (o.find("handle") == o.end()) bad_params("missing 'handle'");
  CloseInstanceParams p;
  p.handle = static_cast<std::uint64_t>(get_int_in(
      o, "handle", 0, 1, std::numeric_limits<std::int64_t>::max()));
  return p;
}

namespace {

[[noreturn]] void bad_delta(const std::string& message) {
  throw ProtocolError(error_code::kBadDelta, message);
}

/// Decode a q-object key: a decimal flat cell index (job * m + machine).
/// Strict — no sign, no leading zeros (other than "0" itself), digits only —
/// so every cell has exactly one wire spelling and duplicate-cell edits
/// cannot hide behind alternate spellings ("01" vs "1"; the JSON object
/// would deduplicate equal spellings already).
std::int64_t parse_cell_key(const std::string& key) {
  if (key.empty() || (key.size() > 1 && key[0] == '0')) {
    bad_params("q key '" + key + "' is not a canonical decimal cell index");
  }
  std::int64_t cell = 0;
  for (const char c : key) {
    if (c < '0' || c > '9') {
      bad_params("q key '" + key + "' is not a canonical decimal cell index");
    }
    if (cell > (std::numeric_limits<std::int64_t>::max() - (c - '0')) / 10) {
      bad_params("q key '" + key + "' overflows");
    }
    cell = cell * 10 + (c - '0');
  }
  return cell;
}

std::vector<std::pair<int, int>> parse_edge_list(const Json& value,
                                                 const char* key) {
  const Json::Array& arr = value.as_array(key);
  std::vector<std::pair<int, int>> edges;
  edges.reserve(arr.size());
  for (const Json& e : arr) {
    const Json::Array& pair = e.as_array(key);
    if (pair.size() != 2) {
      bad_params(std::string(key) + " entries must be [u, v] pairs");
    }
    const std::int64_t u = pair[0].as_int64(key);
    const std::int64_t v = pair[1].as_int64(key);
    const std::int64_t lim = std::numeric_limits<int>::max();
    if (u < 0 || u > lim || v < 0 || v > lim) {
      bad_params(std::string(key) + " vertex outside [0, 2^31)");
    }
    edges.emplace_back(static_cast<int>(u), static_cast<int>(v));
  }
  return edges;
}

}  // namespace

UpdateInstanceParams parse_update_instance_params(const Json& params) {
  if (!params.is_object()) {
    bad_params("update_instance needs a params object with a 'handle' and a "
               "delta (q/add_edges/del_edges)");
  }
  const Json::Object& o = params.as_object("params");
  check_known_keys(o, {"handle", "q", "add_edges", "del_edges"}, "params");
  if (o.find("handle") == o.end()) bad_params("missing 'handle'");
  UpdateInstanceParams p;
  p.handle = static_cast<std::uint64_t>(get_int_in(
      o, "handle", 0, 1, std::numeric_limits<std::int64_t>::max()));
  if (const auto it = o.find("q"); it != o.end()) {
    const Json::Object& q = it->second.as_object("q");
    for (const auto& [key, value] : q) {
      const std::int64_t cell = parse_cell_key(key);
      const double v = value.as_double("q value");
      if (!std::isfinite(v) || v < 0.0 || v > 1.0) {
        bad_delta("q cell " + key + " value outside [0, 1]");
      }
      p.delta.q.emplace_back(cell, v);
    }
  }
  if (const auto it = o.find("add_edges"); it != o.end()) {
    p.delta.add_edges = parse_edge_list(it->second, "add_edges");
  }
  if (const auto it = o.find("del_edges"); it != o.end()) {
    p.delta.del_edges = parse_edge_list(it->second, "del_edges");
  }
  if (p.delta.empty()) {
    bad_delta("empty delta: at least one of q/add_edges/del_edges must make "
              "an edit");
  }
  return p;
}

std::pair<int, int> shard_range(int replications, int shards, int shard) {
  SUU_CHECK(shards >= 1 && shards <= replications);
  SUU_CHECK(shard >= 0 && shard < shards);
  const auto r = static_cast<std::int64_t>(replications);
  const int lo = static_cast<int>(r * shard / shards);
  const int hi = static_cast<int>(r * (shard + 1) / shards);
  return {lo, hi};
}

std::string estimate_result_body(const std::string& solver, int n, int m,
                                 int replications, int capped,
                                 const util::Estimate& makespan) {
  std::string out = "{\"solver\":";
  json_append_quoted(out, solver);
  out += ",\"n\":" + std::to_string(n);
  out += ",\"m\":" + std::to_string(m);
  out += ",\"replications\":" + std::to_string(replications);
  out += ",\"capped\":" + std::to_string(capped);
  out += ",\"mean\":" + util::fmt(makespan.mean, 6);
  out += ",\"ci95\":" + util::fmt(makespan.ci95_half, 6);
  out += ",\"stddev\":" + util::fmt(makespan.stddev, 6);
  out += ",\"min\":" + util::fmt(makespan.min, 6);
  out += ",\"max\":" + util::fmt(makespan.max, 6);
  return out;
}

std::string make_result_response(const Json& id,
                                 const std::string& result_json) {
  std::string out = "{\"id\":";
  out += id.dump();
  out += ",\"ok\":true,\"result\":";
  out += result_json;
  out += '}';
  return out;
}

std::string make_error_response(const Json& id, const std::string& code,
                                const std::string& message) {
  std::string out = "{\"id\":";
  out += id.dump();
  out += ",\"ok\":false,\"error\":{\"code\":";
  json_append_quoted(out, code);
  out += ",\"message\":";
  json_append_quoted(out, message);
  out += "}}";
  return out;
}

std::string make_shard_response(const Json& id, int seq, int shards,
                                const std::string& shard_json) {
  std::string out = "{\"id\":";
  out += id.dump();
  out += ",\"ok\":true,\"seq\":" + std::to_string(seq);
  out += ",\"shards\":" + std::to_string(shards);
  out += ",\"shard\":";
  out += shard_json;
  out += '}';
  return out;
}

std::string make_done_response(const Json& id, int shards,
                               const std::string& result_json) {
  std::string out = "{\"id\":";
  out += id.dump();
  out += ",\"ok\":true,\"seq\":" + std::to_string(shards);
  out += ",\"shards\":" + std::to_string(shards);
  out += ",\"done\":true,\"result\":";
  out += result_json;
  out += '}';
  return out;
}

}  // namespace suu::service
