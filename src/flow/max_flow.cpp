#include "flow/max_flow.hpp"

#include <algorithm>
#include <queue>

#include "util/check.hpp"

namespace suu::flow {

MaxFlow::MaxFlow(int n) {
  SUU_CHECK(n >= 0);
  adj_.resize(n);
  head_.resize(n, 0);
}

int MaxFlow::add_node() {
  adj_.emplace_back();
  head_.push_back(0);
  return num_nodes() - 1;
}

int MaxFlow::add_edge(int u, int v, Cap cap) {
  SUU_CHECK(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes());
  SUU_CHECK_MSG(cap >= 0, "negative capacity");
  SUU_CHECK_MSG(u != v, "self-loops are not supported");
  const int iu = static_cast<int>(adj_[u].size());
  const int iv = static_cast<int>(adj_[v].size());
  adj_[u].push_back(Edge{v, cap, iv});
  adj_[v].push_back(Edge{u, 0, iu});
  edge_ref_.emplace_back(u, iu);
  orig_cap_.push_back(cap);
  return static_cast<int>(edge_ref_.size()) - 1;
}

bool MaxFlow::bfs(int s, int t) {
  level_.assign(num_nodes(), -1);
  std::queue<int> q;
  level_[s] = 0;
  q.push(s);
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    for (const Edge& e : adj_[u]) {
      if (e.cap > 0 && level_[e.to] < 0) {
        level_[e.to] = level_[u] + 1;
        q.push(e.to);
      }
    }
  }
  return level_[t] >= 0;
}

MaxFlow::Cap MaxFlow::dfs(int u, int t, Cap limit) {
  if (u == t) return limit;
  for (int& i = iter_[u]; i < static_cast<int>(adj_[u].size()); ++i) {
    Edge& e = adj_[u][i];
    if (e.cap <= 0 || level_[e.to] != level_[u] + 1) continue;
    const Cap d = dfs(e.to, t, std::min(limit, e.cap));
    if (d > 0) {
      e.cap -= d;
      adj_[e.to][e.rev].cap += d;
      return d;
    }
  }
  return 0;
}

MaxFlow::Cap MaxFlow::solve(int s, int t) {
  SUU_CHECK(s >= 0 && s < num_nodes() && t >= 0 && t < num_nodes());
  SUU_CHECK(s != t);
  Cap total = 0;
  while (bfs(s, t)) {
    iter_.assign(num_nodes(), 0);
    for (;;) {
      const Cap f = dfs(s, t, kInf);
      if (f == 0) break;
      total += f;
    }
  }
  return total;
}

MaxFlow::Cap MaxFlow::flow_on(int id) const {
  SUU_CHECK(id >= 0 && id < static_cast<int>(edge_ref_.size()));
  const auto [u, i] = edge_ref_[id];
  return orig_cap_[id] - adj_[u][i].cap;
}

MaxFlow::Cap MaxFlow::capacity_of(int id) const {
  SUU_CHECK(id >= 0 && id < static_cast<int>(edge_ref_.size()));
  return orig_cap_[id];
}

std::vector<char> MaxFlow::min_cut_side(int s) const {
  SUU_CHECK(s >= 0 && s < num_nodes());
  std::vector<char> side(num_nodes(), 0);
  std::queue<int> q;
  side[s] = 1;
  q.push(s);
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    for (const Edge& e : adj_[u]) {
      if (e.cap > 0 && !side[e.to]) {
        side[e.to] = 1;
        q.push(e.to);
      }
    }
  }
  return side;
}

}  // namespace suu::flow
