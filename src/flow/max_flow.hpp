// Integral max-flow (Dinic's algorithm).
//
// The rounding steps of Lemma 2 and Lemma 6 build a bipartite-ish network
// (source -> job-group nodes -> machine nodes -> sink) with integral
// capacities; Ford–Fulkerson integrality then turns the fractional LP
// solution into the integral assignment the schedules execute. This module
// provides the flow substrate plus min-cut extraction for verification.
#pragma once

#include <cstdint>
#include <vector>

namespace suu::flow {

class MaxFlow {
 public:
  using Cap = std::int64_t;
  /// Effectively-infinite capacity for uncapacitated edges.
  static constexpr Cap kInf = INT64_C(1) << 60;

  explicit MaxFlow(int n = 0);

  int num_nodes() const noexcept { return static_cast<int>(head_.size()); }
  int add_node();

  /// Directed edge from `u` to `v` with capacity `cap >= 0`.
  /// Returns an edge id usable with flow_on()/capacity_of().
  int add_edge(int u, int v, Cap cap);

  /// Compute the maximum s-t flow. May be called once per instance.
  Cap solve(int s, int t);

  /// Flow pushed across edge `id` (nonnegative; reverse flow shows on the
  /// paired residual edge internally).
  Cap flow_on(int id) const;
  Cap capacity_of(int id) const;

  /// After solve(): nodes reachable from s in the residual graph
  /// (the s-side of a minimum cut).
  std::vector<char> min_cut_side(int s) const;

 private:
  struct Edge {
    int to;
    Cap cap;  // residual capacity
    int rev;  // index of the reverse edge in adj_[to]
  };

  bool bfs(int s, int t);
  Cap dfs(int u, int t, Cap limit);

  std::vector<std::vector<Edge>> adj_;
  std::vector<int> head_;   // also tracks node count
  std::vector<int> level_;
  std::vector<int> iter_;
  std::vector<std::pair<int, int>> edge_ref_;  // id -> (node, index)
  std::vector<Cap> orig_cap_;
};

}  // namespace suu::flow
