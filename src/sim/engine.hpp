// Discrete-time execution engine for SUU schedules.
//
// Implements both formulations the paper proves equivalent (Theorem 10):
//   * CoinFlips — the original SUU semantics: each step, a job assigned to
//     machine set S fails with probability prod_{i in S} q_ij.
//   * Deferred — the SUU* semantics: draw r_j ~ U(0,1) up front; the job
//     completes when its accrued log mass reaches -log2 r_j.
// Schedules (policies) observe only completion history, never r_j, so the
// two semantics induce identical distributions; tests verify this.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "sched/assignment.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace suu::sim {

enum class Semantics { CoinFlips, Deferred };

struct Trace;

struct ExecConfig {
  Semantics semantics = Semantics::CoinFlips;
  std::uint64_t seed = 1;
  /// Hard step cap; executions that exceed it return capped = true.
  std::int64_t step_cap = 10'000'000;
  /// When true, assigning a machine to a job whose predecessors have not all
  /// completed is a contract violation (throws). When false such
  /// assignments are treated as idle, matching the paper's convention that
  /// a schedule "may map a machine to a job that has already completed".
  bool strict_eligibility = false;
  /// Optional: record the full execution (see sim/trace.hpp). Not owned.
  Trace* trace = nullptr;
};

class Policy;
struct ExecResult;

/// Execution state visible to policies.
class ExecState {
 public:
  ExecState(const core::Instance& inst);

  const core::Instance& instance() const noexcept { return *inst_; }
  std::int64_t now() const noexcept { return t_; }
  bool completed(int job) const { return completed_[job] != 0; }
  /// Eligible = not completed and all predecessors completed.
  bool eligible(int job) const {
    return !completed_[job] && blocked_preds_[job] == 0;
  }
  int num_remaining() const noexcept { return n_remaining_; }
  /// Jobs not yet completed (order unspecified but deterministic).
  std::vector<int> remaining_jobs() const;
  /// Eligible jobs only.
  std::vector<int> eligible_jobs() const;
  /// Allocation-free variants for per-step policy loops: clear and refill
  /// `out`, reusing its capacity. Same contents and order as above.
  void remaining_jobs(std::vector<int>& out) const;
  void eligible_jobs(std::vector<int>& out) const;

 private:
  friend ExecResult execute(const core::Instance& inst, Policy& policy,
                            const ExecConfig& cfg);
  const core::Instance* inst_;
  std::int64_t t_ = 0;
  std::vector<char> completed_;
  std::vector<int> blocked_preds_;
  int n_remaining_;
};

/// A schedule in the paper's sense: decides a machine->job assignment from
/// the observable history. Policies receive a private RNG at reset for
/// their internal randomness (random delays, tie breaking) — distinct from
/// the engine's job-outcome randomness.
class Policy {
 public:
  virtual ~Policy() = default;
  virtual std::string name() const = 0;
  virtual void reset(const core::Instance& inst, util::Rng rng) {
    (void)inst;
    (void)rng;
  }
  /// Called once per timestep; must return an assignment of size m with
  /// entries in {kIdle} ∪ [0, n).
  virtual sched::Assignment decide(const ExecState& state) = 0;
};

struct ExecResult {
  std::int64_t makespan = 0;  ///< steps until the last completion
  bool capped = false;        ///< step_cap hit before all jobs finished
  std::vector<std::int64_t> completion_time;  ///< per job; -1 if unfinished
};

/// Run one execution of `policy` on `inst`.
ExecResult execute(const core::Instance& inst, Policy& policy,
                   const ExecConfig& cfg);

using PolicyFactory = std::function<std::unique_ptr<Policy>()>;

struct EstimateOptions {
  int replications = 400;
  std::uint64_t seed = 1;
  Semantics semantics = Semantics::CoinFlips;
  std::int64_t step_cap = 10'000'000;
  bool strict_eligibility = false;
  unsigned threads = 0;  ///< 0 = default pool
};

/// Monte-Carlo estimate of E[T_policy]. Deterministic for a fixed seed
/// regardless of thread count. Throws if any replication hits the step cap.
util::Estimate estimate_makespan(const core::Instance& inst,
                                 const PolicyFactory& factory,
                                 const EstimateOptions& opt);

/// Full makespan samples (for quantiles / tail plots).
util::Sampler sample_makespan(const core::Instance& inst,
                              const PolicyFactory& factory,
                              const EstimateOptions& opt);

}  // namespace suu::sim
