// Execution traces and invariant validators.
//
// When ExecConfig.trace is set, the engine records, per timestep, the raw
// assignment the policy returned and the set of jobs that completed at the
// end of the step. Validators replay the trace against the instance and
// check the execution invariants that every schedule in the paper's model
// must satisfy:
//
//   (V1) shape        — one assignment per step, each of size m, job ids in
//                       {kIdle} ∪ [0, n).
//   (V2) completion   — a job completes at most once, only while it had at
//                       least one assigned machine with q < 1 that step,
//                       and only when eligible.
//   (V3) precedence   — completions respect the DAG (a job never finishes
//                       before all its predecessors).
//   (V4) termination  — every job completes exactly once in a finished
//                       trace.
//   (V5) blocked work — optionally, no machine is ever assigned to a job
//                       whose predecessors are incomplete (the engine
//                       treats such work as idle; precedence-aware
//                       schedules like SUU-C must never emit it).
//
// Traces also support accounting queries used by property tests (delivered
// log mass per job, machine busy-steps, idle fraction).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/instance.hpp"
#include "sched/assignment.hpp"

namespace suu::sim {

struct StepRecord {
  sched::Assignment assignment;   ///< raw policy output for this step
  std::vector<int> completions;   ///< jobs that completed at step end
};

struct Trace {
  int n = 0;
  int m = 0;
  std::vector<StepRecord> steps;
  bool finished = false;  ///< all jobs completed within the cap

  std::int64_t length() const noexcept {
    return static_cast<std::int64_t>(steps.size());
  }
};

struct TraceCheckOptions {
  /// Enforce (V5): fail on any machine-step assigned to a blocked job.
  bool forbid_blocked_assignments = false;
  /// Enforce (V4): require every job to have completed.
  bool require_finished = true;
};

/// Throws util::CheckError with a descriptive message on the first violated
/// invariant.
void validate_trace(const core::Instance& inst, const Trace& trace,
                    const TraceCheckOptions& opt = {});

/// Statistics derived from a trace.
struct TraceStats {
  /// Effective (eligible, uncompleted) machine-steps worked per job.
  std::vector<std::int64_t> work_per_job;
  /// Truncation-free log mass delivered per job over its lifetime.
  std::vector<double> mass_per_job;
  /// Busy (effective) steps per machine.
  std::vector<std::int64_t> busy_per_machine;
  /// Machine-steps assigned to completed or blocked jobs (wasted).
  std::int64_t wasted_steps = 0;
  std::int64_t total_machine_steps = 0;  ///< length * m
};

TraceStats trace_stats(const core::Instance& inst, const Trace& trace);

/// Render the trace as an ASCII Gantt chart (one row per machine, one
/// column per step, letters/digits cycling through job ids, '.' = idle,
/// 'x' = wasted step on a completed/blocked job). Traces longer than
/// max_cols are downsampled by showing the first max_cols steps.
void render_gantt(std::ostream& os, const core::Instance& inst,
                  const Trace& trace, int max_cols = 100);

}  // namespace suu::sim
