#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>

#include "sim/trace.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace suu::sim {

ExecState::ExecState(const core::Instance& inst)
    : inst_(&inst),
      completed_(inst.num_jobs(), 0),
      blocked_preds_(inst.num_jobs(), 0),
      n_remaining_(inst.num_jobs()) {
  for (int j = 0; j < inst.num_jobs(); ++j) {
    blocked_preds_[j] = static_cast<int>(inst.dag().preds(j).size());
  }
}

std::vector<int> ExecState::remaining_jobs() const {
  std::vector<int> out;
  remaining_jobs(out);
  return out;
}

std::vector<int> ExecState::eligible_jobs() const {
  std::vector<int> out;
  eligible_jobs(out);
  return out;
}

void ExecState::remaining_jobs(std::vector<int>& out) const {
  out.clear();
  out.reserve(static_cast<std::size_t>(n_remaining_));
  for (int j = 0; j < inst_->num_jobs(); ++j) {
    if (!completed_[j]) out.push_back(j);
  }
}

void ExecState::eligible_jobs(std::vector<int>& out) const {
  out.clear();
  for (int j = 0; j < inst_->num_jobs(); ++j) {
    if (eligible(j)) out.push_back(j);
  }
}

namespace {

struct JobWork {
  double ell_sum = 0.0;   // Deferred: mass this step
  double q_prod = 1.0;    // CoinFlips: failure probability this step
  bool touched = false;
};

}  // namespace

ExecResult execute(const core::Instance& inst, Policy& policy,
                   const ExecConfig& cfg) {
  const int n = inst.num_jobs();
  const int m = inst.num_machines();

  util::Rng master(cfg.seed);
  util::Rng engine_rng = master.child(0);
  policy.reset(inst, master.child(1));

  ExecState state(inst);
  ExecResult result;
  result.completion_time.assign(n, -1);

  // Deferred thresholds: job j completes once mass_j >= -log2 r_j.
  // (CoinFlips never touches these, so they stay unallocated there.)
  std::vector<double> threshold;
  std::vector<double> mass;
  if (cfg.semantics == Semantics::Deferred) {
    threshold.resize(static_cast<std::size_t>(n));
    mass.assign(static_cast<std::size_t>(n), 0.0);
    for (int j = 0; j < n; ++j) {
      threshold[j] = -std::log2(engine_rng.uniform01_open());
    }
  }

  std::vector<JobWork> work(n);
  std::vector<int> touched;
  touched.reserve(static_cast<std::size_t>(m));

  if (cfg.trace != nullptr) {
    cfg.trace->n = n;
    cfg.trace->m = m;
    cfg.trace->steps.clear();
    cfg.trace->finished = false;
  }

  while (state.n_remaining_ > 0) {
    if (state.t_ >= cfg.step_cap) {
      result.capped = true;
      result.makespan = state.t_;
      return result;
    }

    sched::Assignment a = policy.decide(state);
    SUU_CHECK_MSG(static_cast<int>(a.size()) == m,
                  "policy returned assignment of size "
                      << a.size() << ", expected " << m);

    // Gather per-job work for this step.
    for (int i = 0; i < m; ++i) {
      const int j = a[i];
      if (j == sched::kIdle) continue;
      SUU_CHECK_MSG(j >= 0 && j < n, "policy assigned unknown job " << j);
      if (state.completed_[j]) continue;  // allowed; counts as idle
      if (state.blocked_preds_[j] != 0) {
        SUU_CHECK_MSG(!cfg.strict_eligibility,
                      "policy assigned ineligible job " << j << " at step "
                                                        << state.t_);
        continue;  // non-strict: no effect
      }
      JobWork& w = work[j];
      if (!w.touched) {
        w.touched = true;
        w.ell_sum = 0.0;
        w.q_prod = 1.0;
        touched.push_back(j);
      }
      w.ell_sum += inst.ell(i, j);
      w.q_prod *= inst.q(i, j);
    }

    // Resolve completions. The assignment is dead after the gather above,
    // so the trace record steals it instead of copying.
    StepRecord* rec = nullptr;
    if (cfg.trace != nullptr) {
      cfg.trace->steps.push_back(StepRecord{std::move(a), {}});
      rec = &cfg.trace->steps.back();
    }
    for (const int j : touched) {
      JobWork& w = work[j];
      w.touched = false;
      bool done = false;
      if (cfg.semantics == Semantics::Deferred) {
        mass[j] += w.ell_sum;
        done = mass[j] >= threshold[j];
      } else {
        done = !engine_rng.bernoulli(w.q_prod);
      }
      if (done) {
        state.completed_[j] = 1;
        --state.n_remaining_;
        result.completion_time[j] = state.t_ + 1;
        for (const int s : inst.dag().succs(j)) --state.blocked_preds_[s];
        if (rec != nullptr) rec->completions.push_back(j);
      }
    }
    touched.clear();
    ++state.t_;
  }

  result.makespan = state.t_;
  if (cfg.trace != nullptr) cfg.trace->finished = true;
  return result;
}

namespace {

template <typename PerRep>
void run_replications(const core::Instance& inst, const PolicyFactory& factory,
                      const EstimateOptions& opt, PerRep&& per_rep) {
  SUU_CHECK(opt.replications >= 1);
  util::Rng master(opt.seed);
  auto one = [&](std::size_t r) {
    ExecConfig cfg;
    cfg.semantics = opt.semantics;
    cfg.seed = master.child(r + 1).next();
    cfg.step_cap = opt.step_cap;
    cfg.strict_eligibility = opt.strict_eligibility;
    auto policy = factory();
    SUU_CHECK(policy != nullptr);
    const ExecResult res = execute(inst, *policy, cfg);
    SUU_CHECK_MSG(!res.capped, "replication " << r << " hit the step cap ("
                                              << opt.step_cap << ")");
    per_rep(r, res);
  };
  if (opt.threads == 1) {
    for (std::size_t r = 0; r < static_cast<std::size_t>(opt.replications);
         ++r) {
      one(r);
    }
  } else if (opt.threads == 0) {
    util::default_pool().parallel_for(
        static_cast<std::size_t>(opt.replications), one);
  } else {
    util::ThreadPool pool(opt.threads);
    pool.parallel_for(static_cast<std::size_t>(opt.replications), one);
  }
}

}  // namespace

util::Estimate estimate_makespan(const core::Instance& inst,
                                 const PolicyFactory& factory,
                                 const EstimateOptions& opt) {
  std::vector<double> makespans(static_cast<std::size_t>(opt.replications));
  run_replications(inst, factory, opt,
                   [&](std::size_t r, const ExecResult& res) {
                     makespans[r] = static_cast<double>(res.makespan);
                   });
  util::OnlineStats stats;
  for (const double v : makespans) stats.add(v);
  return util::make_estimate(stats);
}

util::Sampler sample_makespan(const core::Instance& inst,
                              const PolicyFactory& factory,
                              const EstimateOptions& opt) {
  std::vector<double> makespans(static_cast<std::size_t>(opt.replications));
  run_replications(inst, factory, opt,
                   [&](std::size_t r, const ExecResult& res) {
                     makespans[r] = static_cast<double>(res.makespan);
                   });
  util::Sampler s;
  for (const double v : makespans) s.add(v);
  return s;
}

}  // namespace suu::sim
