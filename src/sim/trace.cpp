#include "sim/trace.hpp"

#include <ostream>

#include "util/check.hpp"

namespace suu::sim {

void validate_trace(const core::Instance& inst, const Trace& trace,
                    const TraceCheckOptions& opt) {
  const int n = inst.num_jobs();
  const int m = inst.num_machines();
  SUU_CHECK_MSG(trace.n == n && trace.m == m,
                "trace dimensions do not match the instance");

  std::vector<char> completed(static_cast<std::size_t>(n), 0);
  std::vector<int> blocked(static_cast<std::size_t>(n), 0);
  for (int j = 0; j < n; ++j) {
    blocked[static_cast<std::size_t>(j)] =
        static_cast<int>(inst.dag().preds(j).size());
  }

  for (std::int64_t t = 0; t < trace.length(); ++t) {
    const StepRecord& rec = trace.steps[static_cast<std::size_t>(t)];
    // (V1) shape.
    SUU_CHECK_MSG(static_cast<int>(rec.assignment.size()) == m,
                  "step " << t << ": assignment size "
                          << rec.assignment.size());
    std::vector<char> has_capable(static_cast<std::size_t>(n), 0);
    for (int i = 0; i < m; ++i) {
      const int j = rec.assignment[static_cast<std::size_t>(i)];
      if (j == sched::kIdle) continue;
      SUU_CHECK_MSG(j >= 0 && j < n, "step " << t << ": bad job id " << j);
      if (completed[static_cast<std::size_t>(j)]) continue;  // idle-equiv
      if (blocked[static_cast<std::size_t>(j)] != 0) {
        SUU_CHECK_MSG(!opt.forbid_blocked_assignments,
                      "step " << t << ": machine " << i
                              << " assigned to blocked job " << j);
        continue;
      }
      if (inst.q(i, j) < 1.0) has_capable[static_cast<std::size_t>(j)] = 1;
    }
    // (V2) + (V3): completions.
    for (const int j : rec.completions) {
      SUU_CHECK_MSG(j >= 0 && j < n, "step " << t << ": bad completion " << j);
      SUU_CHECK_MSG(!completed[static_cast<std::size_t>(j)],
                    "step " << t << ": job " << j << " completed twice");
      SUU_CHECK_MSG(blocked[static_cast<std::size_t>(j)] == 0,
                    "step " << t << ": job " << j
                            << " completed before its predecessors");
      SUU_CHECK_MSG(has_capable[static_cast<std::size_t>(j)],
                    "step " << t << ": job " << j
                            << " completed without a capable machine");
    }
    for (const int j : rec.completions) {
      completed[static_cast<std::size_t>(j)] = 1;
      for (const int s : inst.dag().succs(j)) {
        --blocked[static_cast<std::size_t>(s)];
      }
    }
  }

  if (opt.require_finished) {
    SUU_CHECK_MSG(trace.finished, "trace did not finish");
    for (int j = 0; j < n; ++j) {
      SUU_CHECK_MSG(completed[static_cast<std::size_t>(j)],
                    "job " << j << " never completed");
    }
  }
}

TraceStats trace_stats(const core::Instance& inst, const Trace& trace) {
  const int n = inst.num_jobs();
  const int m = inst.num_machines();
  TraceStats st;
  st.work_per_job.assign(static_cast<std::size_t>(n), 0);
  st.mass_per_job.assign(static_cast<std::size_t>(n), 0.0);
  st.busy_per_machine.assign(static_cast<std::size_t>(m), 0);
  st.total_machine_steps = trace.length() * m;

  std::vector<char> completed(static_cast<std::size_t>(n), 0);
  std::vector<int> blocked(static_cast<std::size_t>(n), 0);
  for (int j = 0; j < n; ++j) {
    blocked[static_cast<std::size_t>(j)] =
        static_cast<int>(inst.dag().preds(j).size());
  }

  for (const StepRecord& rec : trace.steps) {
    for (int i = 0; i < m; ++i) {
      const int j = rec.assignment[static_cast<std::size_t>(i)];
      if (j == sched::kIdle) continue;
      if (completed[static_cast<std::size_t>(j)] ||
          blocked[static_cast<std::size_t>(j)] != 0) {
        ++st.wasted_steps;
        continue;
      }
      ++st.work_per_job[static_cast<std::size_t>(j)];
      st.mass_per_job[static_cast<std::size_t>(j)] += inst.ell(i, j);
      ++st.busy_per_machine[static_cast<std::size_t>(i)];
    }
    for (const int j : rec.completions) {
      completed[static_cast<std::size_t>(j)] = 1;
      for (const int s : inst.dag().succs(j)) {
        --blocked[static_cast<std::size_t>(s)];
      }
    }
  }
  return st;
}

void render_gantt(std::ostream& os, const core::Instance& inst,
                  const Trace& trace, int max_cols) {
  SUU_CHECK(max_cols >= 1);
  const int n = inst.num_jobs();
  const int m = inst.num_machines();
  const auto cols = static_cast<int>(
      std::min<std::int64_t>(trace.length(), max_cols));

  auto job_char = [n](int j) {
    static const char* kAlphabet =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    (void)n;
    return kAlphabet[j % 62];
  };

  // Replay eligibility to classify wasted steps.
  std::vector<char> completed(static_cast<std::size_t>(n), 0);
  std::vector<int> blocked(static_cast<std::size_t>(n), 0);
  for (int j = 0; j < n; ++j) {
    blocked[static_cast<std::size_t>(j)] =
        static_cast<int>(inst.dag().preds(j).size());
  }
  std::vector<std::string> rows(static_cast<std::size_t>(m));
  for (int t = 0; t < cols; ++t) {
    const StepRecord& rec = trace.steps[static_cast<std::size_t>(t)];
    for (int i = 0; i < m; ++i) {
      const int j = rec.assignment[static_cast<std::size_t>(i)];
      char c = '.';
      if (j != sched::kIdle) {
        c = (completed[static_cast<std::size_t>(j)] ||
             blocked[static_cast<std::size_t>(j)] != 0)
                ? 'x'
                : job_char(j);
      }
      rows[static_cast<std::size_t>(i)].push_back(c);
    }
    for (const int j : rec.completions) {
      completed[static_cast<std::size_t>(j)] = 1;
      for (const int s : inst.dag().succs(j)) {
        --blocked[static_cast<std::size_t>(s)];
      }
    }
  }
  for (int i = 0; i < m; ++i) {
    os << "m" << i << " |" << rows[static_cast<std::size_t>(i)];
    if (trace.length() > cols) os << "...";
    os << '\n';
  }
  os << "    ('.' idle, 'x' wasted step; " << trace.length()
     << " steps total)\n";
}

}  // namespace suu::sim
