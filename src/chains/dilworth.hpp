// Poset width and minimum chain covers (Dilworth's theorem).
//
// Malewicz [12] proves SUU is polynomial-time solvable when both the
// machine count and the WIDTH of the precedence dag (the largest antichain)
// are constant, and NP-hard otherwise; the width-parameterized exact solver
// in algos/exact_width_dp.hpp needs a minimum chain cover of the poset.
//
// By Dilworth's theorem, width = minimum number of chains covering the
// poset, computed here via König/Fulkerson: build the bipartite
// comparability graph over the transitive closure, find a maximum matching
// (max-flow substrate), and stitch matched pairs into chains:
//     min cover size = n - max matching.
//
// Chains returned are chains of the POSET (every pair comparable via
// reachability), not necessarily paths of the dag.
#pragma once

#include <vector>

#include "core/dag.hpp"

namespace suu::chains {

struct ChainCover {
  /// Vertex-disjoint poset chains covering every vertex, each listed in
  /// precedence order.
  std::vector<std::vector<int>> chains;
  /// Poset width (== chains.size() by Dilworth).
  int width = 0;
};

/// Reachability-closure chain cover. O(n^2 * n/64) closure + one matching.
ChainCover min_chain_cover(const core::Dag& dag);

/// Width of the precedence poset (largest antichain).
int dag_width(const core::Dag& dag);

}  // namespace suu::chains
