#include "chains/dilworth.hpp"

#include <algorithm>

#include "flow/max_flow.hpp"
#include "util/check.hpp"

namespace suu::chains {

ChainCover min_chain_cover(const core::Dag& dag) {
  const int n = dag.num_vertices();
  ChainCover cover;
  if (n == 0) return cover;

  // Transitive closure via bitsets in topological order.
  const std::vector<int> topo = dag.topo_order();
  const std::size_t words = (static_cast<std::size_t>(n) + 63) / 64;
  std::vector<std::uint64_t> reach(static_cast<std::size_t>(n) * words, 0);
  auto row = [&](int v) { return reach.data() + static_cast<std::size_t>(v) * words; };
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const int v = *it;
    for (const int s : dag.succs(v)) {
      std::uint64_t* rv = row(v);
      const std::uint64_t* rs = row(s);
      rv[static_cast<std::size_t>(s) / 64] |=
          std::uint64_t{1} << (static_cast<std::size_t>(s) % 64);
      for (std::size_t w = 0; w < words; ++w) rv[w] |= rs[w];
    }
  }
  auto reaches = [&](int u, int v) {
    return (row(u)[static_cast<std::size_t>(v) / 64] >>
            (static_cast<std::size_t>(v) % 64)) &
           1u;
  };

  // Bipartite matching over comparable pairs (u matched to an immediate
  // chain-successor v iff u reaches v).
  flow::MaxFlow net(2 + 2 * n);
  const int src = 0;
  const int sink = 1;
  auto left = [&](int v) { return 2 + v; };
  auto right = [&](int v) { return 2 + n + v; };
  for (int v = 0; v < n; ++v) {
    net.add_edge(src, left(v), 1);
    net.add_edge(right(v), sink, 1);
  }
  std::vector<std::vector<std::pair<int, int>>> pair_edges(
      static_cast<std::size_t>(n));  // u -> (v, edge id)
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (u != v && reaches(u, v)) {
        pair_edges[static_cast<std::size_t>(u)].emplace_back(
            v, net.add_edge(left(u), right(v), 1));
      }
    }
  }
  const auto matching = net.solve(src, sink);
  cover.width = n - static_cast<int>(matching);

  // Stitch chains: next[u] = matched v.
  std::vector<int> next(static_cast<std::size_t>(n), -1);
  std::vector<char> has_prev(static_cast<std::size_t>(n), 0);
  for (int u = 0; u < n; ++u) {
    for (const auto& [v, id] : pair_edges[static_cast<std::size_t>(u)]) {
      if (net.flow_on(id) > 0) {
        next[static_cast<std::size_t>(u)] = v;
        has_prev[static_cast<std::size_t>(v)] = 1;
        break;
      }
    }
  }
  for (int v = 0; v < n; ++v) {
    if (has_prev[static_cast<std::size_t>(v)]) continue;
    std::vector<int> chain;
    for (int cur = v; cur >= 0; cur = next[static_cast<std::size_t>(cur)]) {
      chain.push_back(cur);
    }
    cover.chains.push_back(std::move(chain));
  }
  SUU_CHECK_MSG(static_cast<int>(cover.chains.size()) == cover.width,
                "Dilworth bookkeeping mismatch");
  return cover;
}

int dag_width(const core::Dag& dag) { return min_chain_cover(dag).width; }

}  // namespace suu::chains
