#include "chains/decomposition.hpp"

#include <algorithm>
#include <map>

#include "util/check.hpp"

namespace suu::chains {

int Decomposition::num_chains() const {
  int c = 0;
  for (const auto& b : blocks) c += static_cast<int>(b.size());
  return c;
}

int Decomposition::num_jobs() const {
  int n = 0;
  for (const auto& b : blocks) {
    for (const auto& ch : b) n += static_cast<int>(ch.size());
  }
  return n;
}

namespace {

// Decompose an out-forest given as child lists. Returns blocks of chains.
std::vector<std::vector<std::vector<int>>> heavy_path_blocks(
    int n, const std::vector<std::vector<int>>& children,
    const std::vector<int>& roots) {
  // Subtree sizes via iterative post-order.
  std::vector<int> size(n, 1);
  std::vector<int> order;
  order.reserve(n);
  {
    std::vector<int> stack(roots.begin(), roots.end());
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      order.push_back(v);
      for (const int c : children[v]) stack.push_back(c);
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      for (const int c : children[*it]) size[*it] += size[c];
    }
  }

  // Heavy child per vertex.
  std::vector<int> heavy(n, -1);
  for (int v = 0; v < n; ++v) {
    int best = -1;
    for (const int c : children[v]) {
      if (best < 0 || size[c] > size[best]) best = c;
    }
    heavy[v] = best;
  }

  // Walk heavy paths from each head (roots have light-depth 0; a light
  // child's path sits one block deeper than its parent's path).
  std::vector<std::vector<std::vector<int>>> blocks;
  struct Head {
    int v;
    int depth;
  };
  std::vector<Head> heads;
  for (const int r : roots) heads.push_back({r, 0});
  while (!heads.empty()) {
    const Head h = heads.back();
    heads.pop_back();
    std::vector<int> chain;
    int v = h.v;
    for (;;) {
      chain.push_back(v);
      for (const int c : children[v]) {
        if (c != heavy[v]) heads.push_back({c, h.depth + 1});
      }
      if (heavy[v] < 0) break;
      v = heavy[v];
    }
    if (static_cast<int>(blocks.size()) <= h.depth) {
      blocks.resize(static_cast<std::size_t>(h.depth) + 1);
    }
    blocks[static_cast<std::size_t>(h.depth)].push_back(std::move(chain));
  }
  return blocks;
}

}  // namespace

Decomposition decompose_forest(const core::Dag& dag) {
  const int n = dag.num_vertices();
  Decomposition out;
  if (n == 0) return out;

  if (dag.is_out_forest()) {
    std::vector<std::vector<int>> children(n);
    std::vector<int> roots;
    for (int v = 0; v < n; ++v) {
      for (const int s : dag.succs(v)) children[v].push_back(s);
      if (dag.preds(v).empty()) roots.push_back(v);
    }
    out.blocks = heavy_path_blocks(n, children, roots);
    return out;
  }

  SUU_CHECK_MSG(dag.is_in_forest(),
                "decompose_forest needs an out-forest or in-forest");
  // Reverse the graph: in the reversed out-forest, a "child" is an original
  // predecessor. Decompose, then reverse block order and chain order so the
  // original precedences (leaf before parent) run forward.
  std::vector<std::vector<int>> children(n);
  std::vector<int> roots;
  for (int v = 0; v < n; ++v) {
    for (const int p : dag.preds(v)) children[v].push_back(p);
    if (dag.succs(v).empty()) roots.push_back(v);
  }
  auto blocks = heavy_path_blocks(n, children, roots);
  std::reverse(blocks.begin(), blocks.end());
  for (auto& block : blocks) {
    for (auto& chain : block) std::reverse(chain.begin(), chain.end());
  }
  out.blocks = std::move(blocks);
  return out;
}

void validate_decomposition(const core::Dag& dag, const Decomposition& d) {
  const int n = dag.num_vertices();
  std::vector<int> block_of(n, -1);
  std::vector<int> chain_of(n, -1);
  std::vector<int> pos_of(n, -1);
  int chain_id = 0;
  for (int b = 0; b < d.num_blocks(); ++b) {
    for (const auto& chain : d.blocks[static_cast<std::size_t>(b)]) {
      SUU_CHECK_MSG(!chain.empty(), "empty chain in decomposition");
      for (std::size_t p = 0; p < chain.size(); ++p) {
        const int v = chain[p];
        SUU_CHECK(v >= 0 && v < n);
        SUU_CHECK_MSG(block_of[v] < 0, "vertex " << v << " appears twice");
        block_of[v] = b;
        chain_of[v] = chain_id;
        pos_of[v] = static_cast<int>(p);
      }
      ++chain_id;
    }
  }
  for (int v = 0; v < n; ++v) {
    SUU_CHECK_MSG(block_of[v] >= 0, "vertex " << v << " missing");
  }
  for (int u = 0; u < n; ++u) {
    for (const int v : dag.succs(u)) {
      if (chain_of[u] == chain_of[v]) {
        SUU_CHECK_MSG(pos_of[v] == pos_of[u] + 1,
                      "in-chain edge " << u << "->" << v
                                       << " not consecutive");
      } else {
        SUU_CHECK_MSG(block_of[u] < block_of[v],
                      "cross edge " << u << "->" << v
                                    << " does not advance blocks");
      }
    }
  }
}

}  // namespace suu::chains
