// Chain decomposition of forest precedence graphs (paper Appendix B, after
// Kumar–Marathe–Parthasarathy–Srinivasan).
//
// A directed forest is decomposed into B <= floor(log2 n) + 1 blocks, each a
// collection of vertex-disjoint chains, such that executing the blocks in
// order respects every precedence edge: an edge either stays inside one
// chain (consecutive positions) or crosses from an earlier block to a later
// one. SUU-T then runs SUU-C once per block (Theorem 12).
//
// Construction: heavy-path decomposition. In an out-forest each vertex's
// heavy child heads the largest subtree; heavy paths are chains, and a path
// whose head is reached by d light edges lands in block d. Root-to-leaf
// paths cross at most log2 n light edges, bounding the block count.
// In-forests are decomposed on the reversed graph and emitted with both the
// block order and each chain reversed.
#pragma once

#include <vector>

#include "core/dag.hpp"

namespace suu::chains {

/// chains-in-precedence-order per block; blocks in execution order.
struct Decomposition {
  std::vector<std::vector<std::vector<int>>> blocks;

  int num_blocks() const noexcept { return static_cast<int>(blocks.size()); }
  int num_chains() const;
  int num_jobs() const;
};

/// Decompose a forest DAG. Requires dag.is_out_forest() or
/// dag.is_in_forest() (disjoint chains and the empty DAG qualify trivially).
Decomposition decompose_forest(const core::Dag& dag);

/// Validate the decomposition invariants against the DAG (used by tests):
/// every vertex appears exactly once; every edge is within-chain-consecutive
/// or strictly forward across blocks. Throws util::CheckError on violation.
void validate_decomposition(const core::Dag& dag, const Decomposition& d);

}  // namespace suu::chains
