#include "sched/assignment.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace suu::sched {

IntegralAssignment::IntegralAssignment(int n_jobs, int n_machines)
    : n_(n_jobs), m_(n_machines), by_job_(n_jobs), load_(n_machines, 0) {
  SUU_CHECK(n_jobs >= 0 && n_machines >= 1);
}

void IntegralAssignment::add(int machine, int job, std::int64_t steps) {
  SUU_CHECK(machine >= 0 && machine < m_);
  SUU_CHECK(job >= 0 && job < n_);
  SUU_CHECK_MSG(steps >= 0, "negative step count");
  if (steps == 0) return;
  auto& vec = by_job_[job];
  for (auto& [mi, s] : vec) {
    if (mi == machine) {
      s += steps;
      load_[machine] += steps;
      return;
    }
  }
  vec.emplace_back(machine, steps);
  load_[machine] += steps;
}

const std::vector<std::pair<int, std::int64_t>>& IntegralAssignment::steps_for(
    int job) const {
  SUU_CHECK(job >= 0 && job < n_);
  return by_job_[job];
}

std::int64_t IntegralAssignment::load(int machine) const {
  SUU_CHECK(machine >= 0 && machine < m_);
  return load_[machine];
}

std::int64_t IntegralAssignment::max_load() const {
  return load_.empty() ? 0 : *std::max_element(load_.begin(), load_.end());
}

std::int64_t IntegralAssignment::job_length(int job) const {
  std::int64_t d = 0;
  for (const auto& [mi, s] : steps_for(job)) d = std::max(d, s);
  return d;
}

double IntegralAssignment::delivered_mass(const core::Instance& inst, int job,
                                          double cap) const {
  double mass = 0.0;
  for (const auto& [mi, s] : steps_for(job)) {
    const double e =
        cap > 0.0 ? inst.ell_capped(mi, job, cap) : inst.ell(mi, job);
    mass += e * static_cast<double>(s);
  }
  return mass;
}

ObliviousSchedule::ObliviousSchedule(int n_machines) : m_(n_machines) {
  SUU_CHECK(n_machines >= 1);
}

const Assignment& ObliviousSchedule::step(std::int64_t t) const {
  SUU_CHECK(t >= 0 && t < length());
  return steps_[static_cast<std::size_t>(t)];
}

void ObliviousSchedule::append(Assignment a) {
  SUU_CHECK_MSG(static_cast<int>(a.size()) == m_,
                "assignment size != machine count");
  steps_.push_back(std::move(a));
}

ObliviousSchedule ObliviousSchedule::from_assignment(
    const IntegralAssignment& x) {
  ObliviousSchedule sched(x.num_machines());
  const std::int64_t len = x.max_load();
  if (len == 0) return sched;

  // Per-machine timelines, filled job by job.
  std::vector<std::vector<int>> timeline(
      x.num_machines(), std::vector<int>(static_cast<std::size_t>(len), kIdle));
  std::vector<std::int64_t> pos(x.num_machines(), 0);
  for (int j = 0; j < x.num_jobs(); ++j) {
    for (const auto& [mi, s] : x.steps_for(j)) {
      for (std::int64_t k = 0; k < s; ++k) {
        timeline[mi][static_cast<std::size_t>(pos[mi]++)] = j;
      }
    }
  }
  for (std::int64_t t = 0; t < len; ++t) {
    Assignment a(x.num_machines(), kIdle);
    for (int i = 0; i < x.num_machines(); ++i) {
      a[i] = timeline[i][static_cast<std::size_t>(t)];
    }
    sched.append(std::move(a));
  }
  return sched;
}

}  // namespace suu::sched
