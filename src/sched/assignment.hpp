// Integral machine->job assignments and finite oblivious schedules.
//
// The LP rounding pipelines (Lemma 2, Lemma 6) produce an IntegralAssignment
// {x_ij}: machine i is to spend x_ij unit steps on job j. The paper's
// natural schedule construction ("consider each machine, run its jobs in
// arbitrary order") turns that into a finite ObliviousSchedule whose length
// is the maximum machine load.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/instance.hpp"

namespace suu::sched {

/// Sentinel job id meaning "machine idles this step".
inline constexpr int kIdle = -1;

/// One timestep's machine->job mapping: assignment[i] is a job id or kIdle.
using Assignment = std::vector<int>;

/// Sparse integral steps-per-(machine, job) matrix.
class IntegralAssignment {
 public:
  IntegralAssignment(int n_jobs, int n_machines);

  int num_jobs() const noexcept { return n_; }
  int num_machines() const noexcept { return m_; }

  /// Add `steps` more unit steps of machine `i` on job `j`.
  void add(int machine, int job, std::int64_t steps);

  /// Pairs (machine, steps) with steps > 0 for one job.
  const std::vector<std::pair<int, std::int64_t>>& steps_for(int job) const;

  /// Total steps assigned to machine i across all jobs (the paper's "load").
  std::int64_t load(int machine) const;
  std::int64_t max_load() const;

  /// The paper's job length d_j = max_i x_ij.
  std::int64_t job_length(int job) const;

  /// Log mass sum_i ell_{ij} * x_ij delivered to `job` (optionally with the
  /// LP's truncation ell' = min(ell, cap); cap <= 0 means no truncation).
  double delivered_mass(const core::Instance& inst, int job,
                        double cap = 0.0) const;

 private:
  int n_;
  int m_;
  std::vector<std::vector<std::pair<int, std::int64_t>>> by_job_;
  std::vector<std::int64_t> load_;
};

/// A finite oblivious schedule: an explicit machine->job table per step.
class ObliviousSchedule {
 public:
  explicit ObliviousSchedule(int n_machines);

  int num_machines() const noexcept { return m_; }
  std::int64_t length() const noexcept {
    return static_cast<std::int64_t>(steps_.size());
  }
  bool empty() const noexcept { return steps_.empty(); }

  /// Assignment executed at (0-based) step t.
  const Assignment& step(std::int64_t t) const;

  void append(Assignment a);

  /// Paper construction: per machine, concatenate each job's x_ij steps in
  /// job order; machines idle once their own load is exhausted. Length =
  /// max machine load.
  static ObliviousSchedule from_assignment(const IntegralAssignment& x);

 private:
  int m_;
  std::vector<Assignment> steps_;
};

}  // namespace suu::sched
