#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/basis.hpp"

#include "core/generators.hpp"
#include "rounding/lp1.hpp"
#include "rounding/lp2.hpp"
#include "util/rng.hpp"

namespace suu::lp {
namespace {

Row row(std::vector<std::pair<int, double>> terms, Rel rel, double rhs) {
  Row r;
  r.terms = std::move(terms);
  r.rel = rel;
  r.rhs = rhs;
  return r;
}

TEST(Simplex, TextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => opt 36 at (2, 6).
  Problem p;
  const int x = p.add_var(-3.0);  // minimize the negation
  const int y = p.add_var(-5.0);
  p.add_row(row({{x, 1}}, Rel::Le, 4));
  p.add_row(row({{y, 2}}, Rel::Le, 12));
  p.add_row(row({{x, 3}, {y, 2}}, Rel::Le, 18));
  const Solution s = solve_simplex(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective, -36.0, 1e-8);
  EXPECT_NEAR(s.x[x], 2.0, 1e-8);
  EXPECT_NEAR(s.x[y], 6.0, 1e-8);
}

TEST(Simplex, GeConstraintsNeedPhase1) {
  // min x + y s.t. x + y >= 2, x >= 0.5  => opt 2.
  Problem p;
  const int x = p.add_var(1.0);
  const int y = p.add_var(1.0);
  p.add_row(row({{x, 1}, {y, 1}}, Rel::Ge, 2));
  p.add_row(row({{x, 1}}, Rel::Ge, 0.5));
  const Solution s = solve_simplex(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-8);
  EXPECT_GE(s.x[x], 0.5 - 1e-9);
}

TEST(Simplex, EqualityRows) {
  // min 2x + 3y s.t. x + y = 4, x - y = 0 => x = y = 2, obj 10.
  Problem p;
  const int x = p.add_var(2.0);
  const int y = p.add_var(3.0);
  p.add_row(row({{x, 1}, {y, 1}}, Rel::Eq, 4));
  p.add_row(row({{x, 1}, {y, -1}}, Rel::Eq, 0));
  const Solution s = solve_simplex(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.x[x], 2.0, 1e-8);
  EXPECT_NEAR(s.x[y], 2.0, 1e-8);
  EXPECT_NEAR(s.objective, 10.0, 1e-8);
}

TEST(Simplex, InfeasibleDetected) {
  Problem p;
  const int x = p.add_var(1.0);
  p.add_row(row({{x, 1}}, Rel::Le, 1));
  p.add_row(row({{x, 1}}, Rel::Ge, 2));
  EXPECT_EQ(solve_simplex(p).status, Status::Infeasible);
}

TEST(Simplex, InfeasibleByNonnegativity) {
  Problem p;
  const int x = p.add_var(0.0);
  p.add_row(row({{x, 1}}, Rel::Le, -3));  // x <= -3 impossible for x >= 0
  EXPECT_EQ(solve_simplex(p).status, Status::Infeasible);
}

TEST(Simplex, UnboundedDetected) {
  Problem p;
  const int x = p.add_var(-1.0);  // maximize x
  const int y = p.add_var(0.0);
  p.add_row(row({{x, 1}, {y, -1}}, Rel::Le, 1));  // x <= 1 + y, y free to grow
  EXPECT_EQ(solve_simplex(p).status, Status::Unbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // min x s.t. -x <= -2  (i.e. x >= 2).
  Problem p;
  const int x = p.add_var(1.0);
  p.add_row(row({{x, -1}}, Rel::Le, -2));
  const Solution s = solve_simplex(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.x[x], 2.0, 1e-8);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degeneracy: several redundant constraints through the origin.
  Problem p;
  const int x = p.add_var(-1.0);
  const int y = p.add_var(-1.0);
  p.add_row(row({{x, 1}, {y, 1}}, Rel::Le, 1));
  p.add_row(row({{x, 2}, {y, 2}}, Rel::Le, 2));
  p.add_row(row({{x, 1}}, Rel::Le, 1));
  p.add_row(row({{y, 1}}, Rel::Le, 1));
  const Solution s = solve_simplex(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective, -1.0, 1e-8);
}

TEST(Simplex, BealeCycleTerminates) {
  // Beale's classic example: Dantzig pricing with naive tie-breaking
  // cycles forever through degenerate bases at the origin. The Bland
  // stall guard must break the cycle and reach the optimum -1/20 at
  // x = (1/25, 0, 1, 0).
  Problem p;
  const int x1 = p.add_var(-0.75);
  const int x2 = p.add_var(150.0);
  const int x3 = p.add_var(-0.02);
  const int x4 = p.add_var(6.0);
  p.add_row(row({{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, Rel::Le, 0));
  p.add_row(row({{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, Rel::Le, 0));
  p.add_row(row({{x3, 1}}, Rel::Le, 1));
  const Solution s = solve_simplex(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective, -0.05, 1e-8);
  EXPECT_NEAR(s.x[x1], 0.04, 1e-8);
  EXPECT_NEAR(s.x[x3], 1.0, 1e-8);
}

TEST(Simplex, TinyPivotsRejected) {
  // The epsilon coefficient is below kPivotTol, so the ratio test must not
  // pivot on it; the row is effectively x2 <= 1 for any solver that would
  // divide by it, but treating the entry as structural zero leaves the LP
  // unbounded rather than silently corrupting the basis.
  Problem p;
  const int x = p.add_var(-1.0);  // maximize x
  p.add_row(row({{x, 1e-13}}, Rel::Le, 1));
  const Solution s = solve_simplex(p);
  EXPECT_EQ(s.status, Status::Unbounded);
}

TEST(Simplex, RedundantEqualityRows) {
  Problem p;
  const int x = p.add_var(1.0);
  const int y = p.add_var(1.0);
  p.add_row(row({{x, 1}, {y, 1}}, Rel::Eq, 2));
  p.add_row(row({{x, 2}, {y, 2}}, Rel::Eq, 4));  // same plane
  const Solution s = solve_simplex(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-8);
}

TEST(Simplex, ZeroVariableProblem) {
  Problem p;
  const Solution s = solve_simplex(p);
  EXPECT_EQ(s.status, Status::Optimal);
  EXPECT_EQ(s.objective, 0.0);
}

TEST(Simplex, ZeroVariableInfeasible) {
  Problem p;
  Row r;
  r.rel = Rel::Ge;
  r.rhs = 1.0;
  p.rows.push_back(r);  // 0 >= 1
  EXPECT_EQ(solve_simplex(p).status, Status::Infeasible);
}

TEST(Simplex, DuplicateTermsAreSummed) {
  // x + x <= 4  =>  x <= 2 effectively; maximize x.
  Problem p;
  const int x = p.add_var(-1.0);
  p.add_row(row({{x, 1}, {x, 1}}, Rel::Le, 4));
  const Solution s = solve_simplex(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.x[x], 2.0, 1e-8);
}

// ---- Golden objectives: recorded from the seed (pre-flat-arena) solver.
// The arena/pricing rewrite must reproduce them exactly — pricing picks the
// lexicographic (cost, index) minimum, which is what the full Dantzig scan
// returned, so the whole pivot trajectory is preserved bit for bit.

TEST(SimplexGolden, Lp1InstanceObjective) {
  util::Rng rng(42);
  const core::Instance inst = core::make_independent(
      12, 4, core::MachineModel::uniform(0.3, 0.95), rng);
  std::vector<int> jobs;
  for (int j = 0; j < inst.num_jobs(); ++j) jobs.push_back(j);
  rounding::Lp1Options opt;
  opt.solver = rounding::Lp1Options::Solver::Simplex;
  const rounding::Lp1Fractional frac =
      rounding::solve_lp1(inst, jobs, 0.5, opt);
  EXPECT_NEAR(frac.t, 3.186421848442467, 1e-9);
  EXPECT_GT(frac.simplex_iterations, 0);
}

TEST(SimplexGolden, Lp2InstanceObjective) {
  util::Rng rng(99);
  const core::Instance inst = core::make_chains(
      5, 2, 4, 3, core::MachineModel::uniform(0.3, 0.9), rng);
  const rounding::Lp2Result res =
      rounding::solve_and_round_lp2(inst, inst.dag().chains());
  EXPECT_NEAR(res.t_fractional, 5.296096594137738, 1e-9);
  EXPECT_GT(res.simplex_iterations, res.simplex_phase1_iterations);
}

// (The Beale golden lives above: Simplex.BealeCycleTerminates pins the
// optimum -0.05 at x = (1/25, 0, 1, 0).)

// ---- Warm starts.

Problem perturbable_lp(double rhs1) {
  // min x + 2y s.t. x + y >= rhs1, x + 3y >= 4, x + 4y <= 12.
  Problem p;
  const int x = p.add_var(1.0);
  const int y = p.add_var(2.0);
  p.add_row(row({{x, 1}, {y, 1}}, Rel::Ge, rhs1));
  p.add_row(row({{x, 1}, {y, 3}}, Rel::Ge, 4));
  p.add_row(row({{x, 1}, {y, 4}}, Rel::Le, 12));
  return p;
}

TEST(SimplexWarmStart, RepeatSolveSkipsPhase1) {
  const Problem p = perturbable_lp(3.0);
  WarmStart warm;
  SimplexOptions opt;
  opt.warm = &warm;
  const Solution cold = solve_simplex(p, opt);
  ASSERT_EQ(cold.status, Status::Optimal);
  ASSERT_FALSE(warm.basis.empty());
  EXPECT_GT(cold.phase1_iterations, 0);

  const Solution hot = solve_simplex(p, opt);
  ASSERT_EQ(hot.status, Status::Optimal);
  EXPECT_EQ(warm.hits, 1);
  EXPECT_EQ(hot.phase1_iterations, 0);
  EXPECT_NEAR(hot.objective, cold.objective, 1e-9);
  for (std::size_t i = 0; i < cold.x.size(); ++i) {
    EXPECT_NEAR(hot.x[i], cold.x[i], 1e-9);
  }
}

TEST(SimplexWarmStart, PerturbedRhsMatchesColdSolve) {
  WarmStart warm;
  SimplexOptions warm_opt;
  warm_opt.warm = &warm;
  ASSERT_EQ(solve_simplex(perturbable_lp(3.0), warm_opt).status,
            Status::Optimal);

  const Problem perturbed = perturbable_lp(3.25);
  const Solution hot = solve_simplex(perturbed, warm_opt);
  const Solution cold = solve_simplex(perturbed);
  ASSERT_EQ(hot.status, Status::Optimal);
  ASSERT_EQ(cold.status, Status::Optimal);
  EXPECT_EQ(warm.hits, 1) << "perturbed-rhs seed should stay feasible here";
  EXPECT_NEAR(hot.objective, cold.objective, 1e-9);
}

TEST(SimplexWarmStart, MismatchedSeedFallsBackCold) {
  WarmStart warm;
  warm.basis = {0, 1, 2, 3, 4, 5, 6};  // wrong dimensions for this program
  SimplexOptions opt;
  opt.warm = &warm;
  const Problem p = perturbable_lp(3.0);
  const Solution s = solve_simplex(p, opt);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_EQ(warm.hits, 0);
  EXPECT_EQ(warm.misses, 1);
  EXPECT_NEAR(s.objective, solve_simplex(p).objective, 1e-9);
  // The handle was refreshed with a usable basis for the next solve.
  EXPECT_EQ(static_cast<int>(warm.basis.size()),
            static_cast<int>(p.rows.size()));
}

TEST(SimplexWarmStart, InfeasibleSeedVertexRejected) {
  // Seed from rhs1 = 3 keeps t tight; jumping rhs1 far enough makes the
  // old vertex primal infeasible, so the solve must fall back to phase 1
  // and still find the right optimum.
  WarmStart warm;
  SimplexOptions opt;
  opt.warm = &warm;
  ASSERT_EQ(solve_simplex(perturbable_lp(3.0), opt).status, Status::Optimal);
  const Problem jumped = perturbable_lp(11.0);
  const Solution hot = solve_simplex(jumped, opt);
  const Solution cold = solve_simplex(jumped);
  ASSERT_EQ(hot.status, Status::Optimal);
  EXPECT_NEAR(hot.objective, cold.objective, 1e-9);
}

// ---- Revised engine: the factorized core must reproduce every verdict and
// optimum the tableau produces (the differential suite sweeps this at scale;
// these pin the basics and the goldens).

SimplexOptions revised_opt() {
  SimplexOptions opt;
  opt.engine = SimplexEngine::Revised;
  return opt;
}

TEST(RevisedSimplex, TextbookMaximization) {
  Problem p;
  const int x = p.add_var(-3.0);
  const int y = p.add_var(-5.0);
  p.add_row(row({{x, 1}}, Rel::Le, 4));
  p.add_row(row({{y, 2}}, Rel::Le, 12));
  p.add_row(row({{x, 3}, {y, 2}}, Rel::Le, 18));
  const Solution s = solve_simplex(p, revised_opt());
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective, -36.0, 1e-8);
  EXPECT_NEAR(s.x[x], 2.0, 1e-8);
  EXPECT_NEAR(s.x[y], 6.0, 1e-8);
}

TEST(RevisedSimplex, GeAndEqRowsNeedPhase1) {
  Problem p;
  const int x = p.add_var(1.0);
  const int y = p.add_var(1.0);
  p.add_row(row({{x, 1}, {y, 1}}, Rel::Ge, 2));
  p.add_row(row({{x, 1}, {y, -1}}, Rel::Eq, 1));
  const Solution s = solve_simplex(p, revised_opt());
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-8);
  EXPECT_NEAR(s.x[x], 1.5, 1e-8);
  EXPECT_NEAR(s.x[y], 0.5, 1e-8);
}

TEST(RevisedSimplex, VerdictsMatchTableau) {
  {
    Problem p;
    const int x = p.add_var(1.0);
    p.add_row(row({{x, 1}}, Rel::Le, 1));
    p.add_row(row({{x, 1}}, Rel::Ge, 2));
    EXPECT_EQ(solve_simplex(p, revised_opt()).status, Status::Infeasible);
  }
  {
    Problem p;
    const int x = p.add_var(-1.0);
    const int y = p.add_var(0.0);
    p.add_row(row({{x, 1}, {y, -1}}, Rel::Le, 1));
    EXPECT_EQ(solve_simplex(p, revised_opt()).status, Status::Unbounded);
  }
}

TEST(RevisedSimplex, BealeCycleTerminates) {
  Problem p;
  const int x1 = p.add_var(-0.75);
  const int x2 = p.add_var(150.0);
  const int x3 = p.add_var(-0.02);
  const int x4 = p.add_var(6.0);
  p.add_row(row({{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, Rel::Le, 0));
  p.add_row(row({{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, Rel::Le, 0));
  p.add_row(row({{x3, 1}}, Rel::Le, 1));
  const Solution s = solve_simplex(p, revised_opt());
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_NEAR(s.objective, -0.05, 1e-8);
}

TEST(RevisedSimplexGolden, Lp1InstanceObjectiveMatchesTableau) {
  util::Rng rng(42);
  const core::Instance inst = core::make_independent(
      12, 4, core::MachineModel::uniform(0.3, 0.95), rng);
  std::vector<int> jobs;
  for (int j = 0; j < inst.num_jobs(); ++j) jobs.push_back(j);
  rounding::Lp1Options opt;
  opt.solver = rounding::Lp1Options::Solver::Simplex;
  opt.engine = lp::SimplexEngine::Revised;
  const rounding::Lp1Fractional frac =
      rounding::solve_lp1(inst, jobs, 0.5, opt);
  EXPECT_NEAR(frac.t, 3.186421848442467, 1e-9);
}

TEST(RevisedSimplexGolden, Lp2InstanceObjectiveMatchesTableau) {
  util::Rng rng(99);
  const core::Instance inst = core::make_chains(
      5, 2, 4, 3, core::MachineModel::uniform(0.3, 0.9), rng);
  const rounding::Lp2Result res = rounding::solve_and_round_lp2(
      inst, inst.dag().chains(), nullptr, lp::SimplexEngine::Revised);
  EXPECT_NEAR(res.t_fractional, 5.296096594137738, 1e-9);
}

TEST(RevisedSimplexWarmStart, RepeatSolveSkipsPhase1) {
  const Problem p = perturbable_lp(3.0);
  WarmStart warm;
  SimplexOptions opt = revised_opt();
  opt.warm = &warm;
  const Solution cold = solve_simplex(p, opt);
  ASSERT_EQ(cold.status, Status::Optimal);
  ASSERT_FALSE(warm.basis.empty());
  EXPECT_GT(cold.phase1_iterations, 0);
  const Solution hot = solve_simplex(p, opt);
  ASSERT_EQ(hot.status, Status::Optimal);
  EXPECT_EQ(warm.hits, 1);
  EXPECT_EQ(hot.phase1_iterations, 0);
  EXPECT_NEAR(hot.objective, cold.objective, 1e-9);
}

TEST(RevisedSimplexWarmStart, BasesArePortableAcrossEngines) {
  // A tableau-recorded basis must seed the revised engine and vice versa:
  // both engines number columns through the same standard form.
  const Problem p = perturbable_lp(3.0);
  WarmStart warm;
  SimplexOptions tab_opt;
  tab_opt.engine = SimplexEngine::Tableau;
  tab_opt.warm = &warm;
  const Solution cold = solve_simplex(p, tab_opt);
  ASSERT_EQ(cold.status, Status::Optimal);

  SimplexOptions rev_opt = revised_opt();
  rev_opt.warm = &warm;
  const Solution hot = solve_simplex(p, rev_opt);
  ASSERT_EQ(hot.status, Status::Optimal);
  EXPECT_EQ(warm.hits, 1);
  EXPECT_EQ(hot.phase1_iterations, 0);
  EXPECT_NEAR(hot.objective, cold.objective, 1e-9);

  WarmStart back;
  back.basis = hot.basis;
  SimplexOptions tab_warm;
  tab_warm.engine = SimplexEngine::Tableau;
  tab_warm.warm = &back;
  const Solution round_trip = solve_simplex(p, tab_warm);
  ASSERT_EQ(round_trip.status, Status::Optimal);
  EXPECT_EQ(back.hits, 1);
  EXPECT_NEAR(round_trip.objective, cold.objective, 1e-9);
}

TEST(RevisedSimplex, AutoSwitchesOnSize) {
  // Below the cell threshold Auto must keep the tableau trajectory (these
  // sizes are the byte-recorded experiment regime).
  const Problem small = perturbable_lp(3.0);
  const StandardForm sf = build_standard_form(small);
  EXPECT_LT(static_cast<std::int64_t>(sf.m) * sf.n_total, kRevisedAutoCells);
}

TEST(StandardFormBuild, MatchesTableauNormalization) {
  // min x s.t. -x <= -2 normalizes to x >= 2 with a surplus + artificial.
  Problem p;
  const int x = p.add_var(1.0);
  p.add_row(row({{x, -1}}, Rel::Le, -2));
  const StandardForm sf = build_standard_form(p);
  EXPECT_EQ(sf.m, 1);
  EXPECT_EQ(sf.n_orig, 1);
  EXPECT_EQ(sf.n_total, 3);  // x, surplus, artificial
  EXPECT_EQ(sf.art_begin, 2);
  EXPECT_EQ(sf.rhs[0], 2.0);
  EXPECT_EQ(sf.init_basis[0], 2);
  ASSERT_EQ(sf.col_nnz(0), 1);
  EXPECT_EQ(sf.col_val[static_cast<std::size_t>(sf.col_ptr[0])], 1.0);
}

TEST(BasisFactorizationTest, FtranBtranRoundTrip) {
  // Factorize a small nontrivial basis and check B^{-1}(B e_k) == e_k and
  // the BTRAN transpose identity.
  Problem p;
  const int x = p.add_var(1.0);
  const int y = p.add_var(2.0);
  p.add_row(row({{x, 2}, {y, 1}}, Rel::Le, 4));
  p.add_row(row({{x, 1}, {y, 3}}, Rel::Le, 6));
  const StandardForm sf = build_standard_form(p);
  BasisFactorization fact(sf, kPivotTol);
  ASSERT_TRUE(fact.refactorize({x, y}));
  // b = (4, 6): solving 2x + y = 4, x + 3y = 6 gives x = 6/5, y = 8/5.
  std::vector<double> v = sf.rhs;
  fact.ftran(v);
  const int rx = fact.row_to_col()[0] == x ? 0 : 1;
  EXPECT_NEAR(v[static_cast<std::size_t>(rx)], 1.2, 1e-12);
  EXPECT_NEAR(v[static_cast<std::size_t>(1 - rx)], 1.6, 1e-12);
  // BTRAN with c_B = (1, 2) in row order must reproduce y^T B = c_B^T.
  std::vector<double> yv(2);
  yv[static_cast<std::size_t>(rx)] = 1.0;
  yv[static_cast<std::size_t>(1 - rx)] = 2.0;
  fact.btran(yv);
  EXPECT_NEAR(2 * yv[0] + 1 * yv[1], 1.0, 1e-12);  // column x
  EXPECT_NEAR(1 * yv[0] + 3 * yv[1], 2.0, 1e-12);  // column y
}

TEST(BasisFactorizationTest, SingularBasisRejected) {
  Problem p;
  const int x = p.add_var(1.0);
  p.add_var(1.0);
  p.add_row(row({{x, 1}}, Rel::Le, 1));
  p.add_row(row({{x, 2}}, Rel::Le, 2));
  const StandardForm sf = build_standard_form(p);
  BasisFactorization fact(sf, kPivotTol);
  // Columns {x, x-duplicate-direction}: rows are multiples -> singular once
  // x claims a row and the second column has no independent pivot. Use the
  // slack of row 0 twice via {x, x}? Not allowed; instead {x, slack0} is
  // fine but {slack0, slack0} is a caller bug. The singular case here:
  // basis {x, y} where y has no entries at all.
  EXPECT_FALSE(fact.refactorize({x, 1}));  // y's column is empty
}

TEST(MaxViolation, DetectsEachRelation) {
  Problem p;
  const int x = p.add_var(0.0);
  p.add_row(row({{x, 1}}, Rel::Le, 1));
  p.add_row(row({{x, 1}}, Rel::Ge, 0.5));
  p.add_row(row({{x, 1}}, Rel::Eq, 0.75));
  EXPECT_NEAR(max_violation(p, {0.75}), 0.0, 1e-12);
  EXPECT_NEAR(max_violation(p, {2.0}), 1.25, 1e-12);
  EXPECT_NEAR(max_violation(p, {0.0}), 0.75, 1e-12);
}

// ---- Property sweep: random feasible-by-construction covering LPs, checked
// against brute force over a grid of feasible candidates.

class SimplexRandomLp1 : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomLp1, OptimalIsFeasibleAndNoGridPointBeatsIt) {
  util::Rng rng(1000 + GetParam());
  const int n_jobs = 1 + static_cast<int>(rng.uniform_below(4));
  const int n_machines = 1 + static_cast<int>(rng.uniform_below(3));

  // LP1-shaped: min t, sum_i a_ij x_ij >= 1 per job, sum_j x_ij <= t.
  Problem p;
  const int t = p.add_var(1.0);
  std::vector<std::vector<int>> var(n_jobs);
  std::vector<std::vector<double>> a(n_jobs);
  std::vector<Row> loads(n_machines);
  for (int j = 0; j < n_jobs; ++j) {
    Row cover;
    cover.rel = Rel::Ge;
    cover.rhs = 1.0;
    for (int i = 0; i < n_machines; ++i) {
      const double aij = 0.1 + rng.uniform01();
      const int v = p.add_var(0.0);
      var[j].push_back(v);
      a[j].push_back(aij);
      cover.terms.emplace_back(v, aij);
      loads[i].terms.emplace_back(v, 1.0);
    }
    p.add_row(std::move(cover));
  }
  for (int i = 0; i < n_machines; ++i) {
    loads[i].terms.emplace_back(t, -1.0);
    loads[i].rel = Rel::Le;
    loads[i].rhs = 0.0;
    p.add_row(std::move(loads[i]));
  }

  const Solution s = solve_simplex(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_LE(max_violation(p, s.x), 1e-6);

  // No random feasible candidate may do better.
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> x(static_cast<std::size_t>(p.num_vars), 0.0);
    std::vector<double> load(n_machines, 0.0);
    for (int j = 0; j < n_jobs; ++j) {
      // Cover job j by splitting demand across machines at random.
      double need = 1.0;
      while (need > 1e-12) {
        const int i = static_cast<int>(rng.uniform_below(n_machines));
        const double frac = rng.uniform01();
        const double mass = std::min(need, frac);
        const double dx = mass / a[j][static_cast<std::size_t>(i)];
        x[static_cast<std::size_t>(var[j][static_cast<std::size_t>(i)])] += dx;
        load[i] += dx;
        need -= mass;
      }
    }
    double tmax = 0;
    for (const double l : load) tmax = std::max(tmax, l);
    EXPECT_GE(tmax, s.objective - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimplexRandomLp1, ::testing::Range(0, 12));

}  // namespace
}  // namespace suu::lp
