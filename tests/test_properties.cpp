// System-wide property battery: invariants that must hold for EVERY
// schedule in the model, checked across the full policy roster and
// workload families.
//
//   (P1) Determinism   — same master seed => bit-identical execution, for
//                        every policy (including the randomized ones —
//                        their randomness derives from the seed).
//   (P2) Semantics     — CoinFlips and Deferred (Theorem 10) agree in
//                        expectation for every policy class.
//   (P3) Dominance     — the exact optimum lower-bounds every policy; the
//                        Lemma 1 LB lower-bounds the exact optimum.
//   (P4) Monotonicity  — making every machine strictly better (q' <= q)
//                        cannot hurt the exact optimum.
//   (P5) Scale floor   — E[T] >= n / m for unit jobs (each completion
//                        consumes at least one machine-step).
#include <gtest/gtest.h>

#include <memory>

#include "algos/baselines.hpp"
#include "algos/exact_dp.hpp"
#include "algos/lower_bounds.hpp"
#include "algos/suu_i.hpp"
#include "core/generators.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace suu {
namespace {

std::vector<std::pair<std::string, sim::PolicyFactory>> policy_roster() {
  return {
      {"all-on-one", [] { return std::make_unique<algos::AllOnOnePolicy>(); }},
      {"round-robin",
       [] { return std::make_unique<algos::RoundRobinPolicy>(); }},
      {"best-machine",
       [] { return std::make_unique<algos::BestMachinePolicy>(); }},
      {"adaptive-greedy",
       [] { return std::make_unique<algos::AdaptiveGreedyPolicy>(); }},
      {"greedy-lr", [] { return std::make_unique<algos::GreedyLrPolicy>(); }},
      {"suu-i-obl", [] { return std::make_unique<algos::SuuIOblPolicy>(); }},
      {"suu-i-sem", [] { return std::make_unique<algos::SuuISemPolicy>(); }},
  };
}

class PolicyProperties : public ::testing::TestWithParam<int> {};

TEST_P(PolicyProperties, DeterminismPerSeed) {
  util::Rng rng(4200 + GetParam());
  core::Instance inst = core::make_independent(
      6, 3, core::MachineModel::uniform(0.3, 0.9), rng);
  for (const auto& [name, factory] : policy_roster()) {
    sim::ExecConfig cfg;
    cfg.seed = 17 + static_cast<std::uint64_t>(GetParam());
    auto p1 = factory();
    auto p2 = factory();
    const sim::ExecResult a = sim::execute(inst, *p1, cfg);
    const sim::ExecResult b = sim::execute(inst, *p2, cfg);
    EXPECT_EQ(a.makespan, b.makespan) << name;
    EXPECT_EQ(a.completion_time, b.completion_time) << name;
  }
}

TEST_P(PolicyProperties, SemanticsAgreeInExpectation) {
  util::Rng rng(4300 + GetParam());
  core::Instance inst = core::make_independent(
      5, 2, core::MachineModel::uniform(0.4, 0.9), rng);
  for (const auto& [name, factory] : policy_roster()) {
    sim::EstimateOptions a, b;
    a.replications = b.replications = 4000;
    a.seed = b.seed = 23 + static_cast<std::uint64_t>(GetParam());
    a.semantics = sim::Semantics::CoinFlips;
    b.semantics = sim::Semantics::Deferred;
    const util::Estimate ea = sim::estimate_makespan(inst, factory, a);
    const util::Estimate eb = sim::estimate_makespan(inst, factory, b);
    EXPECT_NEAR(ea.mean, eb.mean,
                5 * (ea.ci95_half + eb.ci95_half) + 0.05)
        << name;
  }
}

TEST_P(PolicyProperties, ExactOptimumDominatesEveryPolicy) {
  util::Rng rng(4400 + GetParam());
  core::Instance inst = core::make_independent(
      5, 2, core::MachineModel::uniform(0.2, 0.9), rng);
  const algos::ExactSolver solver(inst);
  const algos::LowerBound lb = algos::lower_bound_independent(inst);
  EXPECT_LE(lb.value, solver.expected_makespan() + 1e-9);
  for (const auto& [name, factory] : policy_roster()) {
    sim::EstimateOptions o;
    o.replications = 3000;
    o.seed = 31 + static_cast<std::uint64_t>(GetParam());
    const util::Estimate e = sim::estimate_makespan(inst, factory, o);
    EXPECT_GE(e.mean + 5 * e.ci95_half, solver.expected_makespan()) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PolicyProperties, ::testing::Range(0, 4));

TEST(GlobalProperties, BetterMachinesNeverHurtOptimal) {
  util::Rng rng(4500);
  for (int trial = 0; trial < 5; ++trial) {
    auto q = core::gen_q(4, 2, core::MachineModel::uniform(0.3, 0.95), rng);
    auto q_better = q;
    for (auto& v : q_better) v *= 0.8;  // strictly lower failure everywhere
    const algos::ExactSolver base(core::Instance::independent(4, 2, q));
    const algos::ExactSolver better(
        core::Instance::independent(4, 2, q_better));
    EXPECT_LE(better.expected_makespan(), base.expected_makespan() + 1e-9);
  }
}

TEST(GlobalProperties, MakespanFloorNOverM) {
  // Unit jobs: every completion consumes >= 1 machine-step, so E[T] >= n/m.
  util::Rng rng(4600);
  core::Instance inst = core::make_independent(
      12, 3, core::MachineModel::uniform(0.0, 0.2), rng);
  for (const auto& [name, factory] : policy_roster()) {
    sim::EstimateOptions o;
    o.replications = 300;
    o.seed = 7;
    const util::Estimate e = sim::estimate_makespan(inst, factory, o);
    EXPECT_GE(e.mean + 1e-9, 12.0 / 3.0) << name;
  }
}

TEST(GlobalProperties, HarderTargetsNeverLowerLp1Value) {
  util::Rng rng(4700);
  core::Instance inst = core::make_independent(
      8, 3, core::MachineModel::uniform(0.3, 0.9), rng);
  std::vector<int> jobs(8);
  for (int j = 0; j < 8; ++j) jobs[static_cast<std::size_t>(j)] = j;
  double prev = 0.0;
  for (const double L : {0.5, 1.0, 2.0, 4.0}) {
    const double t = rounding::solve_lp1(inst, jobs, L).t;
    EXPECT_GE(t, prev - 1e-9) << "L=" << L;
    prev = t;
  }
}

}  // namespace
}  // namespace suu
