#include "algos/exact_dp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "algos/baselines.hpp"
#include "core/generators.hpp"
#include "sim/engine.hpp"
#include "util/check.hpp"

namespace suu::algos {
namespace {

TEST(ExactDp, SingleJobSingleMachineGeometric) {
  // E[T] = 1 / (1 - q).
  for (const double q : {0.0, 0.25, 0.5, 0.9}) {
    core::Instance inst = core::Instance::independent(1, 1, {q});
    ExactSolver solver(inst);
    EXPECT_NEAR(solver.expected_makespan(), 1.0 / (1.0 - q), 1e-9) << q;
  }
}

TEST(ExactDp, SingleJobTwoMachinesGang) {
  // Optimal is to gang both machines: fail prob q1*q2 per step.
  core::Instance inst = core::Instance::independent(1, 2, {0.5, 0.4});
  ExactSolver solver(inst);
  EXPECT_NEAR(solver.expected_makespan(), 1.0 / (1.0 - 0.2), 1e-9);
  const auto a = solver.best_assignment(0b1);
  EXPECT_EQ(a, (std::vector<int>{0, 0}));
}

TEST(ExactDp, TwoIndependentJobsOneMachineClosedForm) {
  // Identical q: work on either; by memorylessness
  // E = E[geo(p)] + E[geo(p)] with p = 1-q, since one machine can only
  // serve one job at a time: E = 2/(1-q).
  const double q = 0.5;
  core::Instance inst = core::Instance::independent(2, 1, {q, q});
  ExactSolver solver(inst);
  EXPECT_NEAR(solver.expected_makespan(), 2.0 / (1.0 - q), 1e-9);
}

TEST(ExactDp, TwoJobsTwoIdenticalMachinesBeatsSequential) {
  const double q = 0.5;
  core::Instance inst =
      core::Instance::independent(2, 2, {q, q, q, q});
  ExactSolver solver(inst);
  // Parallel (one machine each) gives E[max of two geometrics] ~ 2.667;
  // sequential gang would pay E = 2 * 1/(1-q^2) ~ 2.667 too. Optimal plays
  // parallel-then-gang: strictly better than either pure strategy... at
  // least never worse.
  EXPECT_LE(solver.expected_makespan(), 8.0 / 3.0 + 1e-9);
  EXPECT_GE(solver.expected_makespan(), 2.0);  // needs >= 2 expected steps
}

TEST(ExactDp, ChainForcesSequential) {
  // 0 -> 1, one machine, q = 0.5 each: E = 2 + 2 = 4.
  core::Instance inst(2, 1, {0.5, 0.5}, core::make_chain_dag({2}));
  ExactSolver solver(inst);
  EXPECT_NEAR(solver.expected_makespan(), 4.0, 1e-9);
}

TEST(ExactDp, PrecedenceValueAtLeastIndependent) {
  util::Rng rng(5);
  const auto q = core::gen_q(4, 2, core::MachineModel::uniform(0.3, 0.8),
                             rng);
  core::Instance chained(4, 2, q, core::make_chain_dag({4}));
  core::Instance indep = core::Instance::independent(4, 2, q);
  ExactSolver sc(chained), si(indep);
  EXPECT_GE(sc.expected_makespan(), si.expected_makespan() - 1e-9);
}

TEST(ExactDp, AddingMachineNeverHurts) {
  util::Rng rng(6);
  for (int trial = 0; trial < 3; ++trial) {
    const auto q2 =
        core::gen_q(3, 2, core::MachineModel::uniform(0.2, 0.9), rng);
    // Third machine: copy of machine 0.
    std::vector<double> q3;
    for (int j = 0; j < 3; ++j) {
      q3.push_back(q2[static_cast<std::size_t>(j) * 2]);
      q3.push_back(q2[static_cast<std::size_t>(j) * 2 + 1]);
      q3.push_back(q2[static_cast<std::size_t>(j) * 2]);
    }
    ExactSolver a(core::Instance::independent(3, 2, q2));
    ExactSolver b(core::Instance::independent(3, 3, q3));
    EXPECT_LE(b.expected_makespan(), a.expected_makespan() + 1e-9);
  }
}

TEST(ExactDp, ValueMonotoneInRemainingSet) {
  util::Rng rng(7);
  core::Instance inst = core::make_independent(
      4, 2, core::MachineModel::uniform(0.3, 0.9), rng);
  ExactSolver solver(inst);
  // Removing a job from the remaining set cannot increase the value.
  for (std::uint32_t mask = 1; mask < 16; ++mask) {
    for (int j = 0; j < 4; ++j) {
      if (!((mask >> j) & 1u)) continue;
      const std::uint32_t sub = mask & ~(1u << j);
      EXPECT_LE(solver.value(sub), solver.value(mask) + 1e-9);
    }
  }
}

TEST(ExactDp, OptimalPolicySimulationMatchesValue) {
  util::Rng rng(8);
  core::Instance inst = core::make_independent(
      4, 2, core::MachineModel::uniform(0.3, 0.85), rng);
  auto solver = std::make_shared<const ExactSolver>(inst);
  sim::EstimateOptions o;
  o.replications = 30000;
  o.seed = 17;
  const util::Estimate e = sim::estimate_makespan(
      inst, [solver] { return std::make_unique<ExactOptPolicy>(solver); }, o);
  EXPECT_NEAR(e.mean, solver->expected_makespan(), 5 * e.ci95_half + 0.02);
}

TEST(ExactDp, NoPolicyBeatsOptimal) {
  util::Rng rng(9);
  core::Instance inst = core::make_independent(
      5, 2, core::MachineModel::uniform(0.2, 0.9), rng);
  ExactSolver solver(inst);
  sim::EstimateOptions o;
  o.replications = 6000;
  o.seed = 23;
  for (const sim::PolicyFactory& f : std::vector<sim::PolicyFactory>{
           [] { return std::make_unique<AllOnOnePolicy>(); },
           [] { return std::make_unique<RoundRobinPolicy>(); },
           [] { return std::make_unique<BestMachinePolicy>(); }}) {
    const util::Estimate e = sim::estimate_makespan(inst, f, o);
    EXPECT_GE(e.mean + 5 * e.ci95_half, solver.expected_makespan());
  }
}

TEST(ExactDp, DeferredSemanticsAgreesWithValue) {
  // Cross-check Theorem 10 against the exact optimum.
  util::Rng rng(10);
  core::Instance inst = core::make_independent(
      3, 2, core::MachineModel::uniform(0.3, 0.8), rng);
  auto solver = std::make_shared<const ExactSolver>(inst);
  sim::EstimateOptions o;
  o.replications = 30000;
  o.seed = 29;
  o.semantics = sim::Semantics::Deferred;
  const util::Estimate e = sim::estimate_makespan(
      inst, [solver] { return std::make_unique<ExactOptPolicy>(solver); }, o);
  EXPECT_NEAR(e.mean, solver->expected_makespan(), 5 * e.ci95_half + 0.02);
}

TEST(ExactDp, GuardsRejectLargeInstances) {
  util::Rng rng(11);
  core::Instance inst = core::make_independent(
      6, 2, core::MachineModel::uniform(0.3, 0.8), rng);
  ExactSolver::Options opt;
  opt.max_jobs = 4;
  EXPECT_THROW(ExactSolver(inst, opt), util::CheckError);
}

TEST(ExactDp, SureSuccessMachinesHandled) {
  // q = 0: two jobs, one perfect machine. E = 2 steps exactly.
  core::Instance inst = core::Instance::independent(2, 1, {0.0, 0.0});
  ExactSolver solver(inst);
  EXPECT_NEAR(solver.expected_makespan(), 2.0, 1e-12);
}

TEST(ExactDp, MixedSureAndStochastic) {
  // Machine 0 perfect for job 0 (q=0), machine 1 has q=0.5 for job 1:
  // both run in parallel: E = E[max(1, Geo(0.5))] = 2.
  core::Instance inst =
      core::Instance::independent(2, 2, {0.0, 1.0, 1.0, 0.5});
  ExactSolver solver(inst);
  EXPECT_NEAR(solver.expected_makespan(), 2.0, 1e-9);
}

}  // namespace
}  // namespace suu::algos
