// suu::serve end-to-end coverage: the hardened JSON layer, the protocol
// envelope, the engine's determinism / single-flight / admission-control
// invariants, and the stream/fd/TCP transports — including the acceptance
// path: wire responses byte-identical to direct api calls, exactly one
// prepare for concurrent identical requests, and typed errors (never a
// crash) for malformed payloads.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algos/baselines.hpp"
#include "api/experiment.hpp"
#include "api/precompute_cache.hpp"
#include "api/registry.hpp"
#include "core/generators.hpp"
#include "core/io.hpp"
#include "service/engine.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "service/transport.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace suu::service {
namespace {

// ---------------------------------------------------------------- helpers

std::string payload(const core::Instance& inst) {
  std::ostringstream os;
  core::write_instance(os, inst);
  return os.str();
}

std::string quoted(const std::string& s) {
  std::string out;
  json_append_quoted(out, s);
  return out;
}

core::Instance independent_instance(int n, int m, std::uint64_t seed) {
  util::Rng rng(seed);
  return core::make_independent(n, m,
                                core::MachineModel::uniform(0.3, 0.95), rng);
}

core::Instance chains_instance(std::uint64_t seed) {
  util::Rng rng(seed);
  return core::make_chains(3, 2, 3, 3, core::MachineModel::uniform(0.3, 0.9),
                           rng);
}

// ---------------------------------------------------------------- json

TEST(ServiceJson, ParsesScalarsAndStructure) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool("x"), true);
  EXPECT_DOUBLE_EQ(Json::parse("-12.5e2").as_double("x"), -1250.0);
  EXPECT_EQ(Json::parse("\"a\\nb\"").as_string("x"), "a\nb");
  const Json arr = Json::parse(" [1, 2, 3] ");
  ASSERT_EQ(arr.as_array("x").size(), 3u);
  const Json obj = Json::parse(R"({"b":1,"a":{"c":[true]}})");
  ASSERT_NE(obj.find("a"), nullptr);
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(ServiceJson, UnicodeEscapes) {
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string("x"), "A");
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string("x"), "\xc3\xa9");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(Json::parse("\"\\ud83d\\ude00\"").as_string("x"),
            "\xf0\x9f\x98\x80");
  EXPECT_THROW(Json::parse("\"\\ud83d\""), JsonError);  // lone high
  EXPECT_THROW(Json::parse("\"\\ude00\""), JsonError);  // lone low
}

TEST(ServiceJson, RejectsMalformed) {
  for (const char* bad :
       {"", "tru", "{", "[1,]", "{\"a\":}", "01", "1.", "1e", "nan",
        "Infinity", "\"unterminated", "\"\x01\"", "[1] trailing",
        "{\"a\":1,\"a\":2}", "[1 2]", "'single'"}) {
    EXPECT_THROW(Json::parse(bad), JsonError) << bad;
  }
}

TEST(ServiceJson, DepthLimit) {
  std::string deep(Json::kMaxDepth + 2, '[');
  EXPECT_THROW(Json::parse(deep), JsonError);
  const std::string ok = "[[[[[[[[[[1]]]]]]]]]]";
  EXPECT_NO_THROW(Json::parse(ok));
}

TEST(ServiceJson, DeterministicDump) {
  const Json v = Json::parse(R"({"z":1,"a":[true,null,"s\n"],"m":2.5})");
  EXPECT_EQ(v.dump(), R"({"a":[true,null,"s\n"],"m":2.5,"z":1})");
  EXPECT_EQ(Json::parse("1.0").dump(), "1");  // integral canonicalization
  EXPECT_EQ(json_number(0.1), "0.10000000000000001");
  EXPECT_THROW(json_number(std::nan("")), JsonError);
}

// ---------------------------------------------------------------- protocol

TEST(ServiceProtocol, ParsesEnvelope) {
  const Request req =
      parse_request(R"({"id":7,"method":"solve","params":{"instance":"x"}})");
  EXPECT_EQ(req.id.as_int64("id"), 7);
  EXPECT_EQ(req.method, "solve");
  ASSERT_TRUE(req.params.is_object());
}

TEST(ServiceProtocol, EnvelopeErrors) {
  EXPECT_THROW(parse_request("not json"), ProtocolError);
  EXPECT_THROW(parse_request("[1]"), ProtocolError);
  EXPECT_THROW(parse_request(R"({"method":5})"), ProtocolError);
  EXPECT_THROW(parse_request(R"({"id":[1],"method":"stats"})"),
               ProtocolError);
  EXPECT_THROW(parse_request(R"({"method":"stats","extra":1})"),
               ProtocolError);
  // Codes are preserved.
  try {
    parse_request("{]");
    FAIL();
  } catch (const ProtocolError& err) {
    EXPECT_EQ(err.code(), error_code::kParseError);
  }
}

TEST(ServiceProtocol, ParamValidation) {
  const Json good = Json::parse(
      R"({"instance":"x","solver":"auto","options":{"grid_rounding":true}})");
  EXPECT_EQ(parse_solve_params(good).solver, "auto");
  EXPECT_TRUE(parse_solve_params(good).options.grid_rounding);

  EXPECT_THROW(parse_solve_params(Json::parse(R"({"solver":"auto"})")),
               ProtocolError);  // missing instance
  EXPECT_THROW(
      parse_solve_params(Json::parse(R"({"instance":"x","typo":1})")),
      ProtocolError);
  EXPECT_THROW(parse_solve_params(Json::parse(
                   R"({"instance":"x","options":{"unknown_opt":1}})")),
               ProtocolError);
  // The LP engine knob round-trips through the wire and rejects typos.
  EXPECT_EQ(parse_solve_params(
                Json::parse(
                    R"({"instance":"x","options":{"lp_engine":"revised"}})"))
                .options.lp1.engine,
            lp::SimplexEngine::Revised);
  EXPECT_EQ(parse_solve_params(
                Json::parse(
                    R"({"instance":"x","options":{"lp_engine":"tableau"}})"))
                .options.lp1.engine,
            lp::SimplexEngine::Tableau);
  EXPECT_THROW(parse_solve_params(Json::parse(
                   R"({"instance":"x","options":{"lp_engine":"simplex"}})")),
               ProtocolError);
  // Estimate-only keys are rejected for a plain solve...
  EXPECT_THROW(
      parse_solve_params(Json::parse(R"({"instance":"x","seed":1})")),
      ProtocolError);
  // ...but accepted (and bounded) for estimate.
  EXPECT_EQ(parse_estimate_params(
                Json::parse(R"({"instance":"x","replications":10})"), 100)
                .replications,
            10);
  EXPECT_THROW(parse_estimate_params(
                   Json::parse(R"({"instance":"x","replications":101})"), 100),
               ProtocolError);
  EXPECT_THROW(parse_estimate_params(
                   Json::parse(R"({"instance":"x","semantics":"magic"})"), 100),
               ProtocolError);
}

// ---------------------------------------------------------------- engine

TEST(ServiceEngine, ListSolversMatchesRegistry) {
  Engine engine;
  const std::string resp = engine.handle(R"({"id":1,"method":"list_solvers"})");
  const Json parsed = Json::parse(resp);
  EXPECT_TRUE(parsed.find("ok")->as_bool("ok"));
  const Json::Array& solvers =
      parsed.find("result")->find("solvers")->as_array("solvers");
  const std::vector<std::string> names = api::SolverRegistry::global().names();
  ASSERT_EQ(solvers.size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(solvers[i].find("name")->as_string("name"), names[i]);
    EXPECT_EQ(solvers[i].find("summary")->as_string("summary"),
              api::SolverRegistry::global().summary(names[i]));
  }
}

// The acceptance bar: a solve+estimate round-trip over the wire returns the
// same objective/estimate bytes as direct api calls.
TEST(ServiceEngine, SolveAndEstimateMatchDirectApiBytes) {
  const auto inst = std::make_shared<const core::Instance>(
      independent_instance(8, 3, 21));
  const std::string text = payload(*inst);
  Engine engine;

  // solve: the objective (LP lower bound) must match lower_bound_auto.
  const std::string solve_resp = engine.handle(
      R"({"id":10,"method":"solve","params":{"instance":)" + quoted(text) +
      R"(,"lower_bound":true}})");
  const algos::LowerBound lb = api::lower_bound_auto(*inst);
  char fp[24];
  std::snprintf(fp, sizeof fp, "0x%016llx",
                static_cast<unsigned long long>(inst->fingerprint()));
  const std::string expected_solve =
      R"({"id":10,"ok":true,"result":{"solver":"suu-i-sem","n":8,"m":3,)"
      R"("fingerprint":")" + std::string(fp) + R"(","lower_bound":)" +
      util::fmt(lb.value, 6) + "}}";
  EXPECT_EQ(solve_resp, expected_solve);

  // estimate: byte-identical to a direct one-cell ExperimentRunner.
  api::ExperimentRunner::Options ropt;
  ropt.seed = 5;
  ropt.replications = 60;
  ropt.threads = 1;
  ropt.cell_threads = 1;
  ropt.skip_capped = true;
  api::ExperimentRunner runner(ropt);
  api::Cell cell;
  cell.instance_label = "direct";
  cell.instance = inst;
  cell.solver = "auto";
  runner.add(std::move(cell));
  const api::CellResult& r = runner.run().front();

  const std::string est_resp = engine.handle(
      R"({"id":11,"method":"estimate","params":{"instance":)" + quoted(text) +
      R"(,"solver":"auto","replications":60,"seed":5}})");
  const std::string expected_est =
      R"({"id":11,"ok":true,"result":{"solver":")" + r.solver +
      R"(","n":8,"m":3,"replications":60,"capped":0,"mean":)" +
      util::fmt(r.makespan.mean, 6) + R"(,"ci95":)" +
      util::fmt(r.makespan.ci95_half, 6) + R"(,"stddev":)" +
      util::fmt(r.makespan.stddev, 6) + R"(,"min":)" +
      util::fmt(r.makespan.min, 6) + R"(,"max":)" +
      util::fmt(r.makespan.max, 6) + "}}";
  EXPECT_EQ(est_resp, expected_est);
}

TEST(ServiceEngine, StructureDispatchAndNamedSolvers) {
  Engine engine;
  const std::string chains = quoted(payload(chains_instance(3)));
  const Json resp = Json::parse(engine.handle(
      R"({"id":1,"method":"solve","params":{"instance":)" + chains + "}}"));
  EXPECT_EQ(resp.find("result")->find("solver")->as_string("solver"),
            "suu-c");

  // A structure-mismatched named solver is a typed client error: suu-c on
  // a diamond dag (not a disjoint union of chains).
  core::Dag diamond(4);
  diamond.add_edge(0, 1);
  diamond.add_edge(0, 2);
  diamond.add_edge(1, 3);
  diamond.add_edge(2, 3);
  const core::Instance diamond_inst(4, 2, std::vector<double>(8, 0.5),
                                    std::move(diamond));
  const Json err = Json::parse(engine.handle(
      R"({"id":2,"method":"solve","params":{"instance":)" +
      quoted(payload(diamond_inst)) + R"(,"solver":"suu-c"}})"));
  EXPECT_FALSE(err.find("ok")->as_bool("ok"));
  EXPECT_EQ(err.find("error")->find("code")->as_string("code"),
            error_code::kBadParams);
}

TEST(ServiceEngine, MalformedPayloadsYieldTypedErrorsNeverCrash) {
  Engine engine;
  const auto code_of = [&](const std::string& line) {
    const Json resp = Json::parse(engine.handle(line));
    EXPECT_FALSE(resp.find("ok")->as_bool("ok")) << line;
    return resp.find("error")->find("code")->as_string("code");
  };

  EXPECT_EQ(code_of("garbage"), error_code::kParseError);
  EXPECT_EQ(code_of("[]"), error_code::kBadRequest);
  EXPECT_EQ(code_of(R"({"id":1,"method":"frobnicate"})"),
            error_code::kUnknownMethod);
  EXPECT_EQ(code_of(R"({"id":1,"method":"solve"})"), error_code::kBadParams);
  // Type mismatches are the client's fault, not "internal" errors.
  EXPECT_EQ(code_of(R"({"id":1,"method":"solve","params":{"instance":5}})"),
            error_code::kBadParams);
  EXPECT_EQ(code_of(
                R"({"id":1,"method":"estimate","params":{"instance":"x","replications":1.5}})"),
            error_code::kBadParams);
  EXPECT_EQ(code_of(
                R"({"id":1,"method":"solve","params":{"instance":"x","solver":"nope"}})"),
            error_code::kBadInstance);  // bad payload reported first
  const std::string good = quoted(payload(independent_instance(3, 2, 4)));
  EXPECT_EQ(code_of(R"({"id":1,"method":"solve","params":{"instance":)" +
                    good + R"(,"solver":"nope"}})"),
            error_code::kUnknownSolver);

  // Malformed instance payloads, each a distinct attack shape.
  const auto inst_code = [&](const std::string& inst_text) {
    return code_of(R"({"id":1,"method":"solve","params":{"instance":)" +
                   quoted(inst_text) + "}}");
  };
  EXPECT_EQ(inst_code("not-an-instance"), error_code::kBadInstance);
  EXPECT_EQ(inst_code("suu-instance v1\n-3 1\n"), error_code::kBadInstance);
  EXPECT_EQ(inst_code("suu-instance v1\n99999999999999999999 1\n"),
            error_code::kBadInstance);  // stol overflow
  EXPECT_EQ(inst_code("suu-instance v1\n16777215 16777215\n"),
            error_code::kBadInstance);  // cells limit, no allocation
  EXPECT_EQ(inst_code("suu-instance v1\n1 1\nnan\n0\n"),
            error_code::kBadInstance);
  EXPECT_EQ(inst_code("suu-instance v1\n1 1\n1.5\n0\n"),
            error_code::kBadInstance);
  EXPECT_EQ(inst_code("suu-instance v1\n2 1\n0.5\n0.5\n1\n0 7\n"),
            error_code::kBadInstance);  // edge out of range
  EXPECT_EQ(inst_code("suu-instance v1\n2 1\n0.5\n0.5\n2\n0 1\n1 0\n"),
            error_code::kBadInstance);  // cycle
  EXPECT_EQ(inst_code("suu-instance v1\n2 1\n0.5\n0.5\n1\n"),
            error_code::kBadInstance);  // truncated

  // Oversized request line.
  Engine::Config small;
  small.max_line_bytes = 128;
  Engine tiny(small);
  const Json resp = Json::parse(tiny.handle(std::string(256, ' ')));
  EXPECT_EQ(resp.find("error")->find("code")->as_string("code"),
            error_code::kParseError);
}

TEST(ServiceEngine, EstimateAllCappedIsTypedError) {
  Engine engine;
  const std::string text =
      quoted(payload(independent_instance(4, 2, 13)));
  const Json resp = Json::parse(engine.handle(
      R"({"id":1,"method":"estimate","params":{"instance":)" + text +
      R"(,"solver":"all-on-one","replications":5,"step_cap":1}})"));
  EXPECT_FALSE(resp.find("ok")->as_bool("ok"));
  EXPECT_EQ(resp.find("error")->find("code")->as_string("code"),
            error_code::kCapped);
}

TEST(ServiceEngine, BorrowedInstanceSolversWorkThroughService) {
  // exact-dp's factory borrows the prepare-time Instance; the single-flight
  // result must keep it alive for the whole request.
  Engine engine;
  const std::string text = quoted(payload(independent_instance(3, 2, 17)));
  const Json resp = Json::parse(engine.handle(
      R"({"id":1,"method":"estimate","params":{"instance":)" + text +
      R"(,"solver":"exact-dp","replications":20}})"));
  EXPECT_TRUE(resp.find("ok")->as_bool("ok")) << resp.dump();
  EXPECT_EQ(resp.find("result")->find("solver")->as_string("solver"),
            "exact-dp");
}

// Concurrent identical requests trigger exactly one prepare (single-flight
// on top of the PrecomputeCache), verified via cache stats.
TEST(ServiceEngine, SingleFlightCoalescesConcurrentIdenticalPrepares) {
  static std::atomic<int> prepare_calls{0};
  static std::mutex gate_mu;
  static std::condition_variable gate_cv;
  static bool gate_open = false;

  api::SolverRegistry::global().add(
      "test-single-flight",
      [](const core::Instance&, const api::SolverOptions&) {
        prepare_calls.fetch_add(1);
        std::unique_lock<std::mutex> lock(gate_mu);
        gate_cv.wait(lock, [] { return gate_open; });
        return sim::PolicyFactory(
            [] { return std::make_unique<algos::AllOnOnePolicy>(); });
      },
      "blocks until released; counts prepare calls");

  constexpr int kClients = 4;
  Engine::Config cfg;
  cfg.workers = kClients;
  Engine engine(cfg);

  const std::string line =
      R"({"id":1,"method":"solve","params":{"instance":)" +
      quoted(payload(independent_instance(5, 2, 99))) +
      R"(,"solver":"test-single-flight"}})";

  api::PrecomputeCache::global().reset_stats();
  std::mutex done_mu;
  std::vector<std::string> responses;
  for (int c = 0; c < kClients; ++c) {
    engine.submit(line, [&](std::string&& resp) {
      std::lock_guard<std::mutex> lock(done_mu);
      responses.push_back(std::move(resp));
    });
  }
  // Wait until the leader is inside the preparer and every follower is
  // parked on the shared future, then release the gate.
  while (true) {
    const Engine::Stats s = engine.stats();
    if (prepare_calls.load() >= 1 && s.coalesced >= kClients - 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  engine.drain();

  EXPECT_EQ(prepare_calls.load(), 1);  // exactly one prepare ran
  const api::PrecomputeCache::Stats cache =
      api::PrecomputeCache::global().stats();
  EXPECT_EQ(cache.misses, 1u);  // and it hit the cache exactly once
  EXPECT_EQ(cache.hits, 0u);    // followers never touched the cache
  ASSERT_EQ(responses.size(), static_cast<std::size_t>(kClients));
  for (const std::string& r : responses) {
    EXPECT_EQ(r, responses.front());  // byte-identical responses
  }
  EXPECT_EQ(engine.stats().coalesced, static_cast<std::uint64_t>(kClients - 1));
}

TEST(ServiceEngine, BoundedAdmissionRejectsOverload) {
  static std::mutex gate_mu;
  static std::condition_variable gate_cv;
  static bool gate_open = false;

  api::SolverRegistry::global().add(
      "test-admission-block",
      [](const core::Instance&, const api::SolverOptions&) {
        std::unique_lock<std::mutex> lock(gate_mu);
        gate_cv.wait(lock, [] { return gate_open; });
        return sim::PolicyFactory(
            [] { return std::make_unique<algos::AllOnOnePolicy>(); });
      },
      "blocks until released");

  Engine::Config cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 1;
  Engine engine(cfg);
  const std::string line =
      R"({"id":1,"method":"solve","params":{"instance":)" +
      quoted(payload(independent_instance(4, 2, 123))) +
      R"(,"solver":"test-admission-block"}})";

  std::mutex done_mu;
  std::vector<std::string> async_responses;
  engine.submit(line, [&](std::string&& resp) {
    std::lock_guard<std::mutex> lock(done_mu);
    async_responses.push_back(std::move(resp));
  });

  // Capacity 1 is now occupied: the next submit is rejected inline.
  std::string rejected;
  engine.submit(R"({"id":2,"method":"stats"})",
                [&](std::string&& resp) { rejected = std::move(resp); });
  const Json rej = Json::parse(rejected);
  EXPECT_FALSE(rej.find("ok")->as_bool("ok"));
  EXPECT_EQ(rej.find("error")->find("code")->as_string("code"),
            error_code::kOverloaded);
  EXPECT_EQ(rej.find("id")->as_int64("id"), 2);  // id still echoed

  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  engine.drain();
  EXPECT_EQ(engine.stats().rejected, 1u);
  ASSERT_EQ(async_responses.size(), 1u);
  EXPECT_TRUE(Json::parse(async_responses.front()).find("ok")->as_bool("ok"));
}

TEST(ServiceEngine, ShutdownStopsAdmission) {
  Engine engine;
  const Json resp =
      Json::parse(engine.handle(R"({"id":1,"method":"shutdown"})"));
  EXPECT_TRUE(resp.find("ok")->as_bool("ok"));
  EXPECT_TRUE(engine.stopping());

  std::string after;
  engine.submit(R"({"id":2,"method":"stats"})",
                [&](std::string&& r) { after = std::move(r); });
  const Json rej = Json::parse(after);
  EXPECT_EQ(rej.find("error")->find("code")->as_string("code"),
            error_code::kShuttingDown);
}

// ---------------------------------------------------------------- transports

TEST(ServiceTransport, StreamServesPipelinedRequests) {
  Engine engine;
  std::istringstream in(R"({"id":1,"method":"stats"})"
                        "\n"
                        R"({"id":2,"method":"list_solvers"})"
                        "\n");
  std::ostringstream out;
  serve_stream(engine, in, out);
  std::istringstream lines(out.str());
  std::string line;
  std::map<std::int64_t, bool> ok_by_id;
  while (std::getline(lines, line)) {
    const Json resp = Json::parse(line);
    ok_by_id[resp.find("id")->as_int64("id")] =
        resp.find("ok")->as_bool("ok");
  }
  ASSERT_EQ(ok_by_id.size(), 2u);
  EXPECT_TRUE(ok_by_id[1]);
  EXPECT_TRUE(ok_by_id[2]);
}

namespace {

/// Write `requests` to `fd` (pipelined), half-close, and read id->line
/// responses until EOF.
std::map<std::string, std::string> client_round_trip(
    int fd, const std::vector<std::string>& requests) {
  std::string batch;
  for (const std::string& r : requests) {
    batch += r;
    batch.push_back('\n');
  }
  std::size_t off = 0;
  while (off < batch.size()) {
    const ssize_t w = ::write(fd, batch.data() + off, batch.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      ADD_FAILURE() << "client write failed";
      break;
    }
    off += static_cast<std::size_t>(w);
  }
  ::shutdown(fd, SHUT_WR);  // server sees EOF after the batch

  std::string received;
  char buf[4096];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof buf);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;
    received.append(buf, static_cast<std::size_t>(r));
  }
  std::map<std::string, std::string> by_id;
  std::istringstream lines(received);
  std::string line;
  while (std::getline(lines, line)) {
    const Json resp = Json::parse(line);
    const Json* id = resp.find("id");
    std::string key = id->is_string() ? id->as_string("id") : id->dump();
    EXPECT_TRUE(by_id.emplace(std::move(key), line).second)
        << "duplicate reply id";
  }
  return by_id;
}

}  // namespace

// The satellite acceptance: N clients issuing interleaved requests over
// socketpairs get byte-deterministic per-request responses regardless of
// worker count.
TEST(ServiceTransport, SocketpairResponsesAreByteDeterministicAcrossWorkerCounts) {
  constexpr int kClients = 3;
  const std::string indep = quoted(payload(independent_instance(6, 3, 31)));
  const std::string chains = quoted(payload(chains_instance(32)));

  // Each client pipelines a mixed bag of requests with distinct ids.
  std::vector<std::vector<std::string>> requests(kClients);
  for (int c = 0; c < kClients; ++c) {
    const std::string tag = "c" + std::to_string(c);
    requests[c] = {
        R"({"id":")" + tag + R"(-est","method":"estimate","params":{"instance":)" +
            indep + R"(,"replications":25,"seed":)" + std::to_string(c + 1) +
            "}}",
        R"({"id":")" + tag + R"(-solve","method":"solve","params":{"instance":)" +
            chains + R"(,"lower_bound":true}})",
        R"({"id":")" + tag + R"(-ls","method":"list_solvers"})",
        R"({"id":")" + tag + R"(-bad","method":"solve","params":{"instance":"junk"}})",
        R"({"id":")" + tag + R"(-unk","method":"no_such_method"})",
    };
  }

  const auto run_with_workers =
      [&](unsigned workers) -> std::map<std::string, std::string> {
    Engine::Config cfg;
    cfg.workers = workers;
    Engine engine(cfg);
    std::vector<std::thread> servers;
    std::vector<std::thread> clients;
    std::vector<int> client_fds(kClients);
    std::mutex merge_mu;
    std::map<std::string, std::string> merged;
    for (int c = 0; c < kClients; ++c) {
      int sv[2];
      EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0)
          << "socketpair failed";
      const int server_fd = sv[0];
      client_fds[c] = sv[1];
      servers.emplace_back([&engine, server_fd] {
        serve_fd(engine, server_fd);
        ::close(server_fd);
      });
      clients.emplace_back([&, c] {
        auto by_id = client_round_trip(client_fds[c], requests[c]);
        ::close(client_fds[c]);
        std::lock_guard<std::mutex> lock(merge_mu);
        merged.merge(by_id);
      });
    }
    for (std::thread& t : clients) t.join();
    for (std::thread& t : servers) t.join();
    return merged;
  };

  std::map<std::string, std::string> serial;
  run_with_workers(1).swap(serial);
  std::map<std::string, std::string> parallel;
  run_with_workers(4).swap(parallel);

  ASSERT_EQ(serial.size(), static_cast<std::size_t>(kClients) * 5);
  EXPECT_EQ(serial, parallel);

  // And both match the synchronous library path, request by request.
  Engine reference;
  for (int c = 0; c < kClients; ++c) {
    for (const std::string& req : requests[c]) {
      const Json parsed = Json::parse(req);
      const Json* id = parsed.find("id");
      const std::string key =
          id->is_string() ? id->as_string("id") : id->dump();
      ASSERT_TRUE(serial.count(key)) << key;
      EXPECT_EQ(serial.at(key), reference.handle(req)) << key;
    }
  }
}

TEST(ServiceTransport, OverlongLineGetsErrorAndConnectionAbandoned) {
  Engine::Config cfg;
  cfg.max_line_bytes = 256;
  Engine engine(cfg);
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  std::thread server([&] {
    serve_fd(engine, sv[0]);
    ::close(sv[0]);
  });
  const std::string huge(1024, 'x');  // no newline: unframed over-long line
  ASSERT_EQ(::write(sv[1], huge.data(), huge.size()),
            static_cast<ssize_t>(huge.size()));
  std::string received;
  char buf[512];
  for (;;) {
    const ssize_t r = ::read(sv[1], buf, sizeof buf);
    if (r <= 0) break;
    received.append(buf, static_cast<std::size_t>(r));
  }
  server.join();
  ::close(sv[1]);
  const Json resp = Json::parse(received.substr(0, received.find('\n')));
  EXPECT_FALSE(resp.find("ok")->as_bool("ok"));
  EXPECT_EQ(resp.find("error")->find("code")->as_string("code"),
            error_code::kParseError);
}

TEST(ServiceTransport, TcpEndToEndWithWireShutdown) {
  Engine engine;
  TcpServer server(engine, 0);
  ASSERT_GT(server.port(), 0);
  std::thread server_thread([&] { server.run(); });

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);

  const std::string inst = quoted(payload(independent_instance(5, 2, 77)));
  const auto by_id = client_round_trip(
      fd, {R"({"id":"s","method":"solve","params":{"instance":)" + inst + "}}",
           R"({"id":"q","method":"shutdown"})"});
  ::close(fd);
  server_thread.join();

  ASSERT_EQ(by_id.size(), 2u);
  EXPECT_TRUE(Json::parse(by_id.at("s")).find("ok")->as_bool("ok"));
  EXPECT_TRUE(Json::parse(by_id.at("q")).find("ok")->as_bool("ok"));
  EXPECT_TRUE(engine.stopping());
}

}  // namespace
}  // namespace suu::service
