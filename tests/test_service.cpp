// suu::serve end-to-end coverage: the hardened JSON layer, the protocol
// envelope, the engine's determinism / single-flight / admission-control /
// session / streamed-shard invariants, and the stream/fd/TCP transports —
// including the acceptance paths: wire responses byte-identical to direct
// api calls, concatenated shard envelopes byte-identical to
// ExperimentRunner::print_json over the canonical shard grid at any worker
// count, handle lifecycle edges (unknown/closed/expired → typed error,
// pinning blocks cache eviction until close), exactly one prepare for
// concurrent identical requests, and typed errors (never a crash) for
// malformed payloads.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algos/baselines.hpp"
#include "api/experiment.hpp"
#include "api/precompute_cache.hpp"
#include "api/registry.hpp"
#include "core/generators.hpp"
#include "core/io.hpp"
#include "service/engine.hpp"
#include "service/eventloop.hpp"
#include "service/fault.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "service/transport.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace suu::service {
namespace {

// ---------------------------------------------------------------- helpers

std::string payload(const core::Instance& inst) {
  std::ostringstream os;
  core::write_instance(os, inst);
  return os.str();
}

std::string quoted(const std::string& s) {
  std::string out;
  json_append_quoted(out, s);
  return out;
}

core::Instance independent_instance(int n, int m, std::uint64_t seed) {
  util::Rng rng(seed);
  return core::make_independent(n, m,
                                core::MachineModel::uniform(0.3, 0.95), rng);
}

core::Instance chains_instance(std::uint64_t seed) {
  util::Rng rng(seed);
  return core::make_chains(3, 2, 3, 3, core::MachineModel::uniform(0.3, 0.9),
                           rng);
}

// ---------------------------------------------------------------- json

TEST(ServiceJson, ParsesScalarsAndStructure) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool("x"), true);
  EXPECT_DOUBLE_EQ(Json::parse("-12.5e2").as_double("x"), -1250.0);
  EXPECT_EQ(Json::parse("\"a\\nb\"").as_string("x"), "a\nb");
  const Json arr = Json::parse(" [1, 2, 3] ");
  ASSERT_EQ(arr.as_array("x").size(), 3u);
  const Json obj = Json::parse(R"({"b":1,"a":{"c":[true]}})");
  ASSERT_NE(obj.find("a"), nullptr);
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(ServiceJson, UnicodeEscapes) {
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string("x"), "A");
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string("x"), "\xc3\xa9");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(Json::parse("\"\\ud83d\\ude00\"").as_string("x"),
            "\xf0\x9f\x98\x80");
  EXPECT_THROW(Json::parse("\"\\ud83d\""), JsonError);  // lone high
  EXPECT_THROW(Json::parse("\"\\ude00\""), JsonError);  // lone low
}

TEST(ServiceJson, RejectsMalformed) {
  for (const char* bad :
       {"", "tru", "{", "[1,]", "{\"a\":}", "01", "1.", "1e", "nan",
        "Infinity", "\"unterminated", "\"\x01\"", "[1] trailing",
        "{\"a\":1,\"a\":2}", "[1 2]", "'single'"}) {
    EXPECT_THROW(Json::parse(bad), JsonError) << bad;
  }
}

TEST(ServiceJson, DepthLimit) {
  std::string deep(Json::kMaxDepth + 2, '[');
  EXPECT_THROW(Json::parse(deep), JsonError);
  const std::string ok = "[[[[[[[[[[1]]]]]]]]]]";
  EXPECT_NO_THROW(Json::parse(ok));
}

TEST(ServiceJson, DeterministicDump) {
  const Json v = Json::parse(R"({"z":1,"a":[true,null,"s\n"],"m":2.5})");
  EXPECT_EQ(v.dump(), R"({"a":[true,null,"s\n"],"m":2.5,"z":1})");
  EXPECT_EQ(Json::parse("1.0").dump(), "1");  // integral canonicalization
  EXPECT_EQ(json_number(0.1), "0.10000000000000001");
  EXPECT_THROW(json_number(std::nan("")), JsonError);
}

// ---------------------------------------------------------------- protocol

TEST(ServiceProtocol, ParsesEnvelope) {
  const Request req =
      parse_request(R"({"id":7,"method":"solve","params":{"instance":"x"}})");
  EXPECT_EQ(req.id.as_int64("id"), 7);
  EXPECT_EQ(req.method, "solve");
  ASSERT_TRUE(req.params.is_object());
}

TEST(ServiceProtocol, EnvelopeErrors) {
  EXPECT_THROW(parse_request("not json"), ProtocolError);
  EXPECT_THROW(parse_request("[1]"), ProtocolError);
  EXPECT_THROW(parse_request(R"({"method":5})"), ProtocolError);
  EXPECT_THROW(parse_request(R"({"id":[1],"method":"stats"})"),
               ProtocolError);
  EXPECT_THROW(parse_request(R"({"method":"stats","extra":1})"),
               ProtocolError);
  // Codes are preserved.
  try {
    parse_request("{]");
    FAIL();
  } catch (const ProtocolError& err) {
    EXPECT_EQ(err.code(), error_code::kParseError);
  }
}

TEST(ServiceProtocol, ParamValidation) {
  const Json good = Json::parse(
      R"({"instance":"x","solver":"auto","options":{"grid_rounding":true}})");
  EXPECT_EQ(parse_solve_params(good).solver, "auto");
  EXPECT_TRUE(parse_solve_params(good).options.grid_rounding);

  EXPECT_THROW(parse_solve_params(Json::parse(R"({"solver":"auto"})")),
               ProtocolError);  // missing instance
  EXPECT_THROW(
      parse_solve_params(Json::parse(R"({"instance":"x","typo":1})")),
      ProtocolError);
  EXPECT_THROW(parse_solve_params(Json::parse(
                   R"({"instance":"x","options":{"unknown_opt":1}})")),
               ProtocolError);
  // The LP engine knob round-trips through the wire and rejects typos.
  EXPECT_EQ(parse_solve_params(
                Json::parse(
                    R"({"instance":"x","options":{"lp_engine":"revised"}})"))
                .options.lp1.engine,
            lp::SimplexEngine::Revised);
  EXPECT_EQ(parse_solve_params(
                Json::parse(
                    R"({"instance":"x","options":{"lp_engine":"tableau"}})"))
                .options.lp1.engine,
            lp::SimplexEngine::Tableau);
  EXPECT_THROW(parse_solve_params(Json::parse(
                   R"({"instance":"x","options":{"lp_engine":"simplex"}})")),
               ProtocolError);
  // Same contract for the pricing knob.
  EXPECT_EQ(parse_solve_params(
                Json::parse(
                    R"({"instance":"x","options":{"lp_pricing":"devex"}})"))
                .options.lp1.pricing,
            lp::PricingRule::Devex);
  EXPECT_EQ(parse_solve_params(
                Json::parse(
                    R"({"instance":"x","options":{"lp_pricing":"steepest"}})"))
                .options.lp1.pricing,
            lp::PricingRule::Steepest);
  EXPECT_THROW(parse_solve_params(Json::parse(
                   R"({"instance":"x","options":{"lp_pricing":"bland"}})")),
               ProtocolError);
  // Estimate-only keys are rejected for a plain solve...
  EXPECT_THROW(
      parse_solve_params(Json::parse(R"({"instance":"x","seed":1})")),
      ProtocolError);
  // ...but accepted (and bounded) for estimate.
  EXPECT_EQ(parse_estimate_params(
                Json::parse(R"({"instance":"x","replications":10})"), 100)
                .replications,
            10);
  EXPECT_THROW(parse_estimate_params(
                   Json::parse(R"({"instance":"x","replications":101})"), 100),
               ProtocolError);
  EXPECT_THROW(parse_estimate_params(
                   Json::parse(R"({"instance":"x","semantics":"magic"})"), 100),
               ProtocolError);
}

TEST(ServiceProtocol, HandleAndShardParams) {
  // Exactly one of instance/handle.
  EXPECT_THROW(parse_solve_params(Json::parse(R"({"solver":"auto"})")),
               ProtocolError);
  EXPECT_THROW(
      parse_solve_params(Json::parse(R"({"instance":"x","handle":1})")),
      ProtocolError);
  const SolveParams by_handle =
      parse_solve_params(Json::parse(R"({"handle":7})"));
  EXPECT_TRUE(by_handle.has_handle);
  EXPECT_EQ(by_handle.handle, 7u);
  EXPECT_THROW(parse_solve_params(Json::parse(R"({"handle":0})")),
               ProtocolError);  // handles start at 1
  // Estimate-only keys stay estimate-only.
  EXPECT_THROW(parse_solve_params(Json::parse(R"({"handle":1,"stream":true})")),
               ProtocolError);

  // Sharding knobs: bounded, consistent, and stream/shard are exclusive.
  const EstimateParams st = parse_estimate_params(
      Json::parse(R"({"handle":1,"replications":10,"stream":true,"shards":4})"),
      100);
  EXPECT_TRUE(st.stream);
  EXPECT_EQ(st.shards, 4);
  EXPECT_EQ(st.shard, -1);
  const EstimateParams one = parse_estimate_params(
      Json::parse(R"({"handle":1,"replications":10,"shards":4,"shard":3})"),
      100);
  EXPECT_EQ(one.shard, 3);
  EXPECT_THROW(
      parse_estimate_params(
          Json::parse(R"({"handle":1,"replications":10,"shards":11})"), 100),
      ProtocolError);  // shards > replications
  EXPECT_THROW(
      parse_estimate_params(
          Json::parse(R"({"handle":1,"replications":10,"shards":4,"shard":4})"),
          100),
      ProtocolError);  // shard out of range
  EXPECT_THROW(parse_estimate_params(
                   Json::parse(
                       R"({"handle":1,"stream":true,"shards":2,"shard":0})"),
                   100),
               ProtocolError);  // stream + shard

  // open/close params.
  EXPECT_EQ(parse_open_instance_params(Json::parse(R"({"instance":"x"})"))
                .instance_text,
            "x");
  EXPECT_THROW(parse_open_instance_params(Json::parse(R"({"handle":1})")),
               ProtocolError);
  EXPECT_EQ(parse_close_instance_params(Json::parse(R"({"handle":3})")).handle,
            3u);
  EXPECT_THROW(parse_close_instance_params(Json::parse("{}")), ProtocolError);

  // The deterministic contiguous partition tiles [0, R) exactly.
  int covered = 0;
  for (int s = 0; s < 7; ++s) {
    const auto [lo, hi] = shard_range(60, 7, s);
    EXPECT_EQ(lo, covered);
    EXPECT_LT(lo, hi);
    covered = hi;
  }
  EXPECT_EQ(covered, 60);
}

// ---------------------------------------------------------------- engine

TEST(ServiceEngine, ListSolversMatchesRegistry) {
  Engine engine;
  const std::string resp = engine.handle(R"({"id":1,"method":"list_solvers"})");
  const Json parsed = Json::parse(resp);
  EXPECT_TRUE(parsed.find("ok")->as_bool("ok"));
  const Json::Array& solvers =
      parsed.find("result")->find("solvers")->as_array("solvers");
  const std::vector<std::string> names = api::SolverRegistry::global().names();
  ASSERT_EQ(solvers.size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(solvers[i].find("name")->as_string("name"), names[i]);
    EXPECT_EQ(solvers[i].find("summary")->as_string("summary"),
              api::SolverRegistry::global().summary(names[i]));
  }
}

// The acceptance bar: a solve+estimate round-trip over the wire returns the
// same objective/estimate bytes as direct api calls.
TEST(ServiceEngine, SolveAndEstimateMatchDirectApiBytes) {
  const auto inst = std::make_shared<const core::Instance>(
      independent_instance(8, 3, 21));
  const std::string text = payload(*inst);
  Engine engine;

  // solve: the objective (LP lower bound) must match lower_bound_auto.
  const std::string solve_resp = engine.handle(
      R"({"id":10,"method":"solve","params":{"instance":)" + quoted(text) +
      R"(,"lower_bound":true}})");
  const algos::LowerBound lb = api::lower_bound_auto(*inst);
  char fp[24];
  std::snprintf(fp, sizeof fp, "0x%016llx",
                static_cast<unsigned long long>(inst->fingerprint()));
  const std::string expected_solve =
      R"({"id":10,"ok":true,"result":{"solver":"suu-i-sem","n":8,"m":3,)"
      R"("fingerprint":")" + std::string(fp) + R"(","lower_bound":)" +
      util::fmt(lb.value, 6) + "}}";
  EXPECT_EQ(solve_resp, expected_solve);

  // estimate: byte-identical to a direct one-cell ExperimentRunner.
  api::ExperimentRunner::Options ropt;
  ropt.seed = 5;
  ropt.replications = 60;
  ropt.threads = 1;
  ropt.cell_threads = 1;
  ropt.skip_capped = true;
  api::ExperimentRunner runner(ropt);
  api::Cell cell;
  cell.instance_label = "direct";
  cell.instance = inst;
  cell.solver = "auto";
  runner.add(std::move(cell));
  const api::CellResult& r = runner.run().front();

  const std::string est_resp = engine.handle(
      R"({"id":11,"method":"estimate","params":{"instance":)" + quoted(text) +
      R"(,"solver":"auto","replications":60,"seed":5}})");
  const std::string expected_est =
      R"({"id":11,"ok":true,"result":{"solver":")" + r.solver +
      R"(","n":8,"m":3,"replications":60,"capped":0,"mean":)" +
      util::fmt(r.makespan.mean, 6) + R"(,"ci95":)" +
      util::fmt(r.makespan.ci95_half, 6) + R"(,"stddev":)" +
      util::fmt(r.makespan.stddev, 6) + R"(,"min":)" +
      util::fmt(r.makespan.min, 6) + R"(,"max":)" +
      util::fmt(r.makespan.max, 6) + "}}";
  EXPECT_EQ(est_resp, expected_est);
}

TEST(ServiceEngine, StructureDispatchAndNamedSolvers) {
  Engine engine;
  const std::string chains = quoted(payload(chains_instance(3)));
  const Json resp = Json::parse(engine.handle(
      R"({"id":1,"method":"solve","params":{"instance":)" + chains + "}}"));
  EXPECT_EQ(resp.find("result")->find("solver")->as_string("solver"),
            "suu-c");

  // A structure-mismatched named solver is a typed client error: suu-c on
  // a diamond dag (not a disjoint union of chains).
  core::Dag diamond(4);
  diamond.add_edge(0, 1);
  diamond.add_edge(0, 2);
  diamond.add_edge(1, 3);
  diamond.add_edge(2, 3);
  const core::Instance diamond_inst(4, 2, std::vector<double>(8, 0.5),
                                    std::move(diamond));
  const Json err = Json::parse(engine.handle(
      R"({"id":2,"method":"solve","params":{"instance":)" +
      quoted(payload(diamond_inst)) + R"(,"solver":"suu-c"}})"));
  EXPECT_FALSE(err.find("ok")->as_bool("ok"));
  EXPECT_EQ(err.find("error")->find("code")->as_string("code"),
            error_code::kBadParams);
}

TEST(ServiceEngine, MalformedPayloadsYieldTypedErrorsNeverCrash) {
  Engine engine;
  const auto code_of = [&](const std::string& line) {
    const Json resp = Json::parse(engine.handle(line));
    EXPECT_FALSE(resp.find("ok")->as_bool("ok")) << line;
    return resp.find("error")->find("code")->as_string("code");
  };

  EXPECT_EQ(code_of("garbage"), error_code::kParseError);
  EXPECT_EQ(code_of("[]"), error_code::kBadRequest);
  EXPECT_EQ(code_of(R"({"id":1,"method":"frobnicate"})"),
            error_code::kUnknownMethod);
  EXPECT_EQ(code_of(R"({"id":1,"method":"solve"})"), error_code::kBadParams);
  // Type mismatches are the client's fault, not "internal" errors.
  EXPECT_EQ(code_of(R"({"id":1,"method":"solve","params":{"instance":5}})"),
            error_code::kBadParams);
  EXPECT_EQ(code_of(
                R"({"id":1,"method":"estimate","params":{"instance":"x","replications":1.5}})"),
            error_code::kBadParams);
  EXPECT_EQ(code_of(
                R"({"id":1,"method":"solve","params":{"instance":"x","solver":"nope"}})"),
            error_code::kBadInstance);  // bad payload reported first
  const std::string good = quoted(payload(independent_instance(3, 2, 4)));
  EXPECT_EQ(code_of(R"({"id":1,"method":"solve","params":{"instance":)" +
                    good + R"(,"solver":"nope"}})"),
            error_code::kUnknownSolver);

  // Malformed instance payloads, each a distinct attack shape.
  const auto inst_code = [&](const std::string& inst_text) {
    return code_of(R"({"id":1,"method":"solve","params":{"instance":)" +
                   quoted(inst_text) + "}}");
  };
  EXPECT_EQ(inst_code("not-an-instance"), error_code::kBadInstance);
  EXPECT_EQ(inst_code("suu-instance v1\n-3 1\n"), error_code::kBadInstance);
  EXPECT_EQ(inst_code("suu-instance v1\n99999999999999999999 1\n"),
            error_code::kBadInstance);  // stol overflow
  EXPECT_EQ(inst_code("suu-instance v1\n16777215 16777215\n"),
            error_code::kBadInstance);  // cells limit, no allocation
  EXPECT_EQ(inst_code("suu-instance v1\n1 1\nnan\n0\n"),
            error_code::kBadInstance);
  EXPECT_EQ(inst_code("suu-instance v1\n1 1\n1.5\n0\n"),
            error_code::kBadInstance);
  EXPECT_EQ(inst_code("suu-instance v1\n2 1\n0.5\n0.5\n1\n0 7\n"),
            error_code::kBadInstance);  // edge out of range
  EXPECT_EQ(inst_code("suu-instance v1\n2 1\n0.5\n0.5\n2\n0 1\n1 0\n"),
            error_code::kBadInstance);  // cycle
  EXPECT_EQ(inst_code("suu-instance v1\n2 1\n0.5\n0.5\n1\n"),
            error_code::kBadInstance);  // truncated

  // Oversized request line.
  Engine::Config small;
  small.max_line_bytes = 128;
  Engine tiny(small);
  const Json resp = Json::parse(tiny.handle(std::string(256, ' ')));
  EXPECT_EQ(resp.find("error")->find("code")->as_string("code"),
            error_code::kParseError);
}

TEST(ServiceEngine, EstimateAllCappedIsTypedError) {
  Engine engine;
  const std::string text =
      quoted(payload(independent_instance(4, 2, 13)));
  const Json resp = Json::parse(engine.handle(
      R"({"id":1,"method":"estimate","params":{"instance":)" + text +
      R"(,"solver":"all-on-one","replications":5,"step_cap":1}})"));
  EXPECT_FALSE(resp.find("ok")->as_bool("ok"));
  EXPECT_EQ(resp.find("error")->find("code")->as_string("code"),
            error_code::kCapped);
}

TEST(ServiceEngine, BorrowedInstanceSolversWorkThroughService) {
  // exact-dp's factory borrows the prepare-time Instance; the single-flight
  // result must keep it alive for the whole request.
  Engine engine;
  const std::string text = quoted(payload(independent_instance(3, 2, 17)));
  const Json resp = Json::parse(engine.handle(
      R"({"id":1,"method":"estimate","params":{"instance":)" + text +
      R"(,"solver":"exact-dp","replications":20}})"));
  EXPECT_TRUE(resp.find("ok")->as_bool("ok")) << resp.dump();
  EXPECT_EQ(resp.find("result")->find("solver")->as_string("solver"),
            "exact-dp");
}

// Concurrent identical requests trigger exactly one prepare (single-flight
// on top of the PrecomputeCache), verified via cache stats.
TEST(ServiceEngine, SingleFlightCoalescesConcurrentIdenticalPrepares) {
  static std::atomic<int> prepare_calls{0};
  static std::mutex gate_mu;
  static std::condition_variable gate_cv;
  static bool gate_open = false;

  api::SolverRegistry::global().add(
      "test-single-flight",
      [](const core::Instance&, const api::SolverOptions&) {
        prepare_calls.fetch_add(1);
        std::unique_lock<std::mutex> lock(gate_mu);
        gate_cv.wait(lock, [] { return gate_open; });
        return sim::PolicyFactory(
            [] { return std::make_unique<algos::AllOnOnePolicy>(); });
      },
      "blocks until released; counts prepare calls");

  constexpr int kClients = 4;
  Engine::Config cfg;
  cfg.workers = kClients;
  Engine engine(cfg);

  const std::string line =
      R"({"id":1,"method":"solve","params":{"instance":)" +
      quoted(payload(independent_instance(5, 2, 99))) +
      R"(,"solver":"test-single-flight"}})";

  api::PrecomputeCache::global().reset_stats();
  std::mutex done_mu;
  std::vector<std::string> responses;
  for (int c = 0; c < kClients; ++c) {
    engine.submit(line, [&](std::string&& resp, bool) {
      std::lock_guard<std::mutex> lock(done_mu);
      responses.push_back(std::move(resp));
    });
  }
  // Wait until the leader is inside the preparer and every follower is
  // parked on the shared future, then release the gate.
  while (true) {
    const Engine::Stats s = engine.stats();
    if (prepare_calls.load() >= 1 && s.coalesced >= kClients - 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  engine.drain();

  EXPECT_EQ(prepare_calls.load(), 1);  // exactly one prepare ran
  const api::PrecomputeCache::Stats cache =
      api::PrecomputeCache::global().stats();
  EXPECT_EQ(cache.misses, 1u);  // and it hit the cache exactly once
  EXPECT_EQ(cache.hits, 0u);    // followers never touched the cache
  ASSERT_EQ(responses.size(), static_cast<std::size_t>(kClients));
  for (const std::string& r : responses) {
    EXPECT_EQ(r, responses.front());  // byte-identical responses
  }
  EXPECT_EQ(engine.stats().coalesced, static_cast<std::uint64_t>(kClients - 1));
}

TEST(ServiceEngine, BoundedAdmissionRejectsOverload) {
  static std::mutex gate_mu;
  static std::condition_variable gate_cv;
  static bool gate_open = false;

  api::SolverRegistry::global().add(
      "test-admission-block",
      [](const core::Instance&, const api::SolverOptions&) {
        std::unique_lock<std::mutex> lock(gate_mu);
        gate_cv.wait(lock, [] { return gate_open; });
        return sim::PolicyFactory(
            [] { return std::make_unique<algos::AllOnOnePolicy>(); });
      },
      "blocks until released");

  Engine::Config cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 1;
  Engine engine(cfg);
  const std::string line =
      R"({"id":1,"method":"solve","params":{"instance":)" +
      quoted(payload(independent_instance(4, 2, 123))) +
      R"(,"solver":"test-admission-block"}})";

  std::mutex done_mu;
  std::vector<std::string> async_responses;
  engine.submit(line, [&](std::string&& resp, bool) {
    std::lock_guard<std::mutex> lock(done_mu);
    async_responses.push_back(std::move(resp));
  });

  // Capacity 1 is now occupied: the next submit is rejected inline.
  std::string rejected;
  engine.submit(R"({"id":2,"method":"stats"})",
                [&](std::string&& resp, bool) { rejected = std::move(resp); });
  const Json rej = Json::parse(rejected);
  EXPECT_FALSE(rej.find("ok")->as_bool("ok"));
  EXPECT_EQ(rej.find("error")->find("code")->as_string("code"),
            error_code::kOverloaded);
  EXPECT_EQ(rej.find("id")->as_int64("id"), 2);  // id still echoed

  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  engine.drain();
  EXPECT_EQ(engine.stats().rejected, 1u);
  ASSERT_EQ(async_responses.size(), 1u);
  EXPECT_TRUE(Json::parse(async_responses.front()).find("ok")->as_bool("ok"));
}

TEST(ServiceEngine, ShutdownStopsAdmission) {
  Engine engine;
  const Json resp =
      Json::parse(engine.handle(R"({"id":1,"method":"shutdown"})"));
  EXPECT_TRUE(resp.find("ok")->as_bool("ok"));
  EXPECT_TRUE(engine.stopping());

  std::string after;
  engine.submit(R"({"id":2,"method":"stats"})",
                [&](std::string&& r, bool) { after = std::move(r); });
  const Json rej = Json::parse(after);
  EXPECT_EQ(rej.find("error")->find("code")->as_string("code"),
            error_code::kShuttingDown);
}

// ---------------------------------------------------------------- sessions

TEST(ServiceEngine, SessionHandleLifecycle) {
  Engine engine;
  const core::Instance inst = independent_instance(6, 3, 51);
  const std::string text = quoted(payload(inst));

  // open_instance: parsed once, fingerprinted, handle 1 on a fresh engine.
  const Json opened = Json::parse(engine.handle(
      R"({"id":1,"method":"open_instance","params":{"instance":)" + text +
      "}}"));
  ASSERT_TRUE(opened.find("ok")->as_bool("ok"));
  const Json* res = opened.find("result");
  EXPECT_EQ(res->find("handle")->as_int64("handle"), 1);
  EXPECT_EQ(res->find("n")->as_int64("n"), 6);
  EXPECT_EQ(res->find("m")->as_int64("m"), 3);
  char fp[24];
  std::snprintf(fp, sizeof fp, "0x%016llx",
                static_cast<unsigned long long>(inst.fingerprint()));
  EXPECT_EQ(res->find("fingerprint")->as_string("fingerprint"), fp);

  // solve/estimate through the handle answer byte-identically to the same
  // request with the instance inlined.
  const std::string inline_solve = engine.handle(
      R"({"id":9,"method":"solve","params":{"instance":)" + text +
      R"(,"lower_bound":true}})");
  const std::string handle_solve = engine.handle(
      R"({"id":9,"method":"solve","params":{"handle":1,"lower_bound":true}})");
  EXPECT_EQ(handle_solve, inline_solve);
  const std::string inline_est = engine.handle(
      R"({"id":9,"method":"estimate","params":{"instance":)" + text +
      R"(,"replications":25,"seed":3}})");
  const std::string handle_est = engine.handle(
      R"({"id":9,"method":"estimate","params":{"handle":1,"replications":25,"seed":3}})");
  EXPECT_EQ(handle_est, inline_est);

  // close_instance releases the handle; closed == unknown thereafter.
  const Json closed = Json::parse(engine.handle(
      R"({"id":2,"method":"close_instance","params":{"handle":1}})"));
  EXPECT_TRUE(closed.find("ok")->as_bool("ok"));
  EXPECT_TRUE(closed.find("result")->find("closed")->as_bool("closed"));
  for (const char* line :
       {R"({"id":3,"method":"solve","params":{"handle":1}})",
        R"({"id":4,"method":"estimate","params":{"handle":1}})",
        R"({"id":5,"method":"close_instance","params":{"handle":1}})",
        R"({"id":6,"method":"solve","params":{"handle":77}})"}) {
    const Json resp = Json::parse(engine.handle(line));
    EXPECT_FALSE(resp.find("ok")->as_bool("ok")) << line;
    EXPECT_EQ(resp.find("error")->find("code")->as_string("code"),
              error_code::kUnknownHandle)
        << line;
  }

  const Engine::Stats s = engine.stats();
  EXPECT_EQ(s.sessions_opened, 1u);
  EXPECT_EQ(s.sessions_closed, 1u);
  EXPECT_EQ(s.sessions_expired, 0u);
  EXPECT_EQ(s.open_handles, 0u);
}

TEST(ServiceEngine, LruHandleExpiryOnMaxOpenHandles) {
  Engine::Config cfg;
  cfg.max_open_handles = 2;
  Engine engine(cfg);
  const auto open = [&](std::uint64_t seed) {
    const Json resp = Json::parse(engine.handle(
        R"({"id":1,"method":"open_instance","params":{"instance":)" +
        quoted(payload(independent_instance(4, 2, seed))) + "}}"));
    return resp.find("result")->find("handle")->as_int64("handle");
  };
  const std::int64_t h1 = open(1);
  const std::int64_t h2 = open(2);
  // Touch h1: it becomes most-recently-used, so opening a third handle
  // expires h2, not h1.
  EXPECT_TRUE(Json::parse(engine.handle(
                  R"({"id":2,"method":"solve","params":{"handle":)" +
                  std::to_string(h1) + "}}"))
                  .find("ok")
                  ->as_bool("ok"));
  const std::int64_t h3 = open(3);
  EXPECT_EQ(std::vector<std::int64_t>({h1, h2, h3}),
            std::vector<std::int64_t>({1, 2, 3}));
  const Json expired = Json::parse(engine.handle(
      R"({"id":3,"method":"solve","params":{"handle":2}})"));
  EXPECT_EQ(expired.find("error")->find("code")->as_string("code"),
            error_code::kUnknownHandle);
  EXPECT_TRUE(Json::parse(engine.handle(
                  R"({"id":4,"method":"solve","params":{"handle":1}})"))
                  .find("ok")
                  ->as_bool("ok"));
  const Engine::Stats s = engine.stats();
  EXPECT_EQ(s.sessions_opened, 3u);
  EXPECT_EQ(s.sessions_expired, 1u);
  EXPECT_EQ(s.open_handles, 2u);
}

TEST(ServiceEngine, MaxOpenHandlesZeroClampsToOneWithoutPhantomExpiry) {
  Engine::Config cfg;
  cfg.max_open_handles = 0;  // clamped to 1
  Engine engine(cfg);
  const auto open = [&](std::uint64_t seed) {
    return Json::parse(engine.handle(
               R"({"id":1,"method":"open_instance","params":{"instance":)" +
               quoted(payload(independent_instance(4, 2, seed))) + "}}"))
        .find("result")
        ->find("handle")
        ->as_int64("handle");
  };
  EXPECT_EQ(open(1), 1);
  // The first open has no victim: it must not count a phantom expiry.
  EXPECT_EQ(engine.stats().sessions_expired, 0u);
  EXPECT_EQ(open(2), 2);  // now handle 1 is the LRU victim
  const Engine::Stats s = engine.stats();
  EXPECT_EQ(s.sessions_expired, 1u);
  EXPECT_EQ(s.open_handles, 1u);
  EXPECT_EQ(Json::parse(engine.handle(
                R"({"id":2,"method":"solve","params":{"handle":1}})"))
                .find("error")
                ->find("code")
                ->as_string("code"),
            error_code::kUnknownHandle);
}

TEST(ServiceEngine, HandlePinningBlocksLruEvictionUntilClose) {
  api::PrecomputeCache& cache = api::PrecomputeCache::global();
  cache.clear();
  cache.set_capacity(1);

  Engine engine;
  const std::string pinned_text =
      quoted(payload(independent_instance(5, 2, 61)));
  const Json opened = Json::parse(engine.handle(
      R"({"id":1,"method":"open_instance","params":{"instance":)" +
      pinned_text + "}}"));
  ASSERT_TRUE(opened.find("ok")->as_bool("ok"));

  // Preparing through the handle pins the prepare key.
  EXPECT_TRUE(Json::parse(engine.handle(
                  R"({"id":2,"method":"solve","params":{"handle":1}})"))
                  .find("ok")
                  ->as_bool("ok"));
  EXPECT_EQ(cache.stats().pinned, 1u);
  EXPECT_EQ(cache.stats().size, 1u);

  // Unpinned traffic cannot push the pinned entry out: with capacity 1 the
  // newcomers are evicted instead, and the handle's next request is still
  // a cache hit.
  for (std::uint64_t seed = 70; seed < 73; ++seed) {
    (void)engine.handle(
        R"({"id":3,"method":"solve","params":{"instance":)" +
        quoted(payload(independent_instance(5, 2, seed))) + "}}");
  }
  cache.reset_stats();
  EXPECT_TRUE(Json::parse(engine.handle(
                  R"({"id":4,"method":"solve","params":{"handle":1}})"))
                  .find("ok")
                  ->as_bool("ok"));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 0u);

  // close_instance unpins; the entry is ordinary LRU prey again.
  (void)engine.handle(
      R"({"id":5,"method":"close_instance","params":{"handle":1}})");
  EXPECT_EQ(cache.stats().pinned, 0u);
  (void)engine.handle(
      R"({"id":6,"method":"solve","params":{"instance":)" +
      quoted(payload(independent_instance(5, 2, 80))) + "}}");
  cache.reset_stats();
  (void)engine.handle(
      R"({"id":7,"method":"solve","params":{"instance":)" + pinned_text +
      "}}");
  EXPECT_EQ(cache.stats().misses, 1u);  // evicted once unpinned

  cache.clear();
  cache.set_capacity(256);
  cache.reset_stats();
}

// ---------------------------------------------------------------- streaming

namespace {

/// Split a multi-line handle() response into its envelope lines.
std::vector<std::string> split_lines(const std::string& joined) {
  std::vector<std::string> lines;
  std::istringstream is(joined);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

/// Extract the "shard" row object from a shard envelope line.
std::string shard_row_of(const std::string& envelope) {
  const std::string key = "\"shard\":";
  const std::size_t pos = envelope.find(key);
  EXPECT_NE(pos, std::string::npos) << envelope;
  return envelope.substr(pos + key.size(),
                         envelope.size() - (pos + key.size()) - 1);
}

}  // namespace

// The acceptance bar: concatenating the K shard envelopes' tables is
// byte-identical to ExperimentRunner::print_json over the canonical shard
// grid — at any engine worker count and any runner cell_threads — and the
// terminal aggregate is byte-identical to the unstreamed estimate at any
// shard count.
TEST(ServiceEngine, ShardConcatByteIdenticalToRunnerAcrossWorkerCounts) {
  constexpr int kReps = 60;
  constexpr int kShards = 4;
  const auto inst = std::make_shared<const core::Instance>(
      independent_instance(8, 3, 21));
  const std::string text = payload(*inst);

  // Canonical shard grid, straight through the api layer: K cells sharing
  // seed stream 1, covering [0, kReps) in rep_offset order.
  const api::PreparedSolver prepared =
      api::SolverRegistry::global().prepare(*inst, "auto", {});
  std::string expected;
  for (const unsigned cell_threads : {1u, 3u}) {
    api::ExperimentRunner::Options ropt;
    ropt.seed = 5;
    ropt.replications = kReps;
    ropt.skip_capped = true;
    ropt.threads = 1;
    ropt.cell_threads = cell_threads;
    api::ExperimentRunner runner(ropt);
    for (int s = 0; s < kShards; ++s) {
      const auto [lo, hi] = shard_range(kReps, kShards, s);
      api::Cell cell;
      cell.instance_label = "wire";
      cell.instance = inst;
      cell.factory = prepared.factory;
      cell.factory_label = prepared.name;
      cell.seed_stream = 1;
      cell.rep_offset = lo;
      cell.replications = hi - lo;
      runner.add(std::move(cell));
    }
    runner.run();
    std::ostringstream os;
    runner.print_json(os);
    if (expected.empty()) {
      expected = os.str();
    } else {
      EXPECT_EQ(expected, os.str());  // cell_threads never changes bytes
    }
  }

  const std::string request =
      R"({"id":"st","method":"estimate","params":{"instance":)" +
      quoted(text) +
      R"(,"replications":60,"seed":5,"stream":true,"shards":4}})";
  std::string reference_joined;
  for (const unsigned workers : {1u, 4u}) {
    Engine::Config cfg;
    cfg.workers = workers;
    Engine engine(cfg);

    // Through submit: lines arrive in seq order, last flagged exactly once.
    std::mutex mu;
    std::vector<std::pair<std::string, bool>> got;
    engine.submit(request, [&](std::string&& resp, bool last) {
      std::lock_guard<std::mutex> lock(mu);
      got.emplace_back(std::move(resp), last);
    });
    engine.drain();
    ASSERT_EQ(got.size(), static_cast<std::size_t>(kShards) + 1);
    std::string concat;
    for (int s = 0; s < kShards; ++s) {
      EXPECT_FALSE(got[s].second);
      const Json env = Json::parse(got[s].first);
      EXPECT_EQ(env.find("seq")->as_int64("seq"), s);
      EXPECT_EQ(env.find("shards")->as_int64("shards"), kShards);
      concat += shard_row_of(got[s].first);
      concat.push_back('\n');
    }
    EXPECT_EQ(concat, expected);  // byte-identical shard tables
    EXPECT_TRUE(got.back().second);
    const Json done = Json::parse(got.back().first);
    EXPECT_TRUE(done.find("done")->as_bool("done"));
    EXPECT_EQ(done.find("seq")->as_int64("seq"), kShards);

    // Engine worker count never changes the joined response bytes.
    std::string joined;
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (i) joined.push_back('\n');
      joined += got[i].first;
    }
    EXPECT_EQ(joined, engine.handle(request));
    if (reference_joined.empty()) {
      reference_joined = joined;
    } else {
      EXPECT_EQ(reference_joined, joined);
    }

    // The terminal aggregate is byte-identical to the unstreamed estimate
    // (sharding is pure delivery), for this and any other shard count.
    const std::string plain = engine.handle(
        R"({"id":"st","method":"estimate","params":{"instance":)" +
        quoted(text) + R"(,"replications":60,"seed":5}})");
    const std::string plain_result =
        Json::parse(plain).find("result")->dump();
    EXPECT_EQ(done.find("result")->dump(), plain_result);
    for (const int k : {1, 3, 60}) {
      const std::string streamed = engine.handle(
          R"({"id":"st","method":"estimate","params":{"instance":)" +
          quoted(text) +
          R"(,"replications":60,"seed":5,"stream":true,"shards":)" +
          std::to_string(k) + "}}");
      const std::vector<std::string> lines = split_lines(streamed);
      ASSERT_EQ(lines.size(), static_cast<std::size_t>(k) + 1);
      EXPECT_EQ(Json::parse(lines.back()).find("result")->dump(),
                plain_result);
    }
  }
}

TEST(ServiceEngine, SingleShardFanOutMatchesStreamedEnvelopes) {
  const std::string text = quoted(payload(independent_instance(7, 3, 41)));
  Engine engine;
  const std::string streamed = engine.handle(
      R"({"id":1,"method":"estimate","params":{"instance":)" + text +
      R"(,"replications":30,"seed":9,"stream":true,"shards":3}})");
  const std::vector<std::string> lines = split_lines(streamed);
  ASSERT_EQ(lines.size(), 4u);
  // Each single-shard request ({"shard": s}) returns exactly the row the
  // streamed envelope s carried — the fan-out-across-connections path.
  for (int s = 0; s < 3; ++s) {
    const std::string one = engine.handle(
        R"({"id":1,"method":"estimate","params":{"instance":)" + text +
        R"(,"replications":30,"seed":9,"shards":3,"shard":)" +
        std::to_string(s) + "}}");
    const Json resp = Json::parse(one);
    ASSERT_TRUE(resp.find("ok")->as_bool("ok"));
    const Json* result = resp.find("result");
    EXPECT_EQ(result->find("seq")->as_int64("seq"), s);
    EXPECT_EQ(result->find("shards")->as_int64("shards"), 3);
    EXPECT_EQ(result->find("shard")->dump(),
              Json::parse(lines[static_cast<std::size_t>(s)])
                  .find("shard")
                  ->dump());
  }
}

TEST(ServiceEngine, StreamTerminatesWithTypedErrorOnCappedShard) {
  Engine engine;
  const std::string text = quoted(payload(independent_instance(4, 2, 13)));
  const std::string resp = engine.handle(
      R"({"id":1,"method":"estimate","params":{"instance":)" + text +
      R"(,"solver":"all-on-one","replications":6,"step_cap":1,"stream":true,"shards":2}})");
  // Shard 0 caps in full, so the stream is one terminal error line: no
  // shard envelope was emitted before the failure.
  const std::vector<std::string> lines = split_lines(resp);
  ASSERT_EQ(lines.size(), 1u);
  const Json err = Json::parse(lines.front());
  EXPECT_FALSE(err.find("ok")->as_bool("ok"));
  EXPECT_EQ(err.find("error")->find("code")->as_string("code"),
            error_code::kCapped);
}

// ---------------------------------------------------------------- transports

TEST(ServiceTransport, StreamServesPipelinedRequests) {
  Engine engine;
  std::istringstream in(R"({"id":1,"method":"stats"})"
                        "\n"
                        R"({"id":2,"method":"list_solvers"})"
                        "\n");
  std::ostringstream out;
  serve_stream(engine, in, out);
  std::istringstream lines(out.str());
  std::string line;
  std::map<std::int64_t, bool> ok_by_id;
  while (std::getline(lines, line)) {
    const Json resp = Json::parse(line);
    ok_by_id[resp.find("id")->as_int64("id")] =
        resp.find("ok")->as_bool("ok");
  }
  ASSERT_EQ(ok_by_id.size(), 2u);
  EXPECT_TRUE(ok_by_id[1]);
  EXPECT_TRUE(ok_by_id[2]);
}

TEST(ServiceTransport, StreamedEstimateWritesSeqOrderedLinesOnTheWire) {
  Engine engine;
  const std::string text = quoted(payload(independent_instance(5, 2, 19)));
  std::istringstream in(
      R"({"id":"e","method":"estimate","params":{"instance":)" + text +
      R"(,"replications":20,"seed":2,"stream":true,"shards":2}})" "\n");
  std::ostringstream out;
  serve_stream(engine, in, out);
  std::istringstream lines(out.str());
  std::string line;
  std::vector<Json> envelopes;
  while (std::getline(lines, line)) envelopes.push_back(Json::parse(line));
  ASSERT_EQ(envelopes.size(), 3u);
  for (std::size_t i = 0; i < envelopes.size(); ++i) {
    EXPECT_EQ(envelopes[i].find("id")->as_string("id"), "e");
    EXPECT_EQ(envelopes[i].find("seq")->as_int64("seq"),
              static_cast<std::int64_t>(i));
    EXPECT_TRUE(envelopes[i].find("ok")->as_bool("ok"));
  }
  EXPECT_TRUE(envelopes.back().find("done")->as_bool("done"));
}

namespace {

/// Write `requests` to `fd` (pipelined), half-close, and read id->line
/// responses until EOF.
std::map<std::string, std::string> client_round_trip(
    int fd, const std::vector<std::string>& requests) {
  std::string batch;
  for (const std::string& r : requests) {
    batch += r;
    batch.push_back('\n');
  }
  std::size_t off = 0;
  while (off < batch.size()) {
    const ssize_t w = ::write(fd, batch.data() + off, batch.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      ADD_FAILURE() << "client write failed";
      break;
    }
    off += static_cast<std::size_t>(w);
  }
  ::shutdown(fd, SHUT_WR);  // server sees EOF after the batch

  std::string received;
  char buf[4096];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof buf);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;
    received.append(buf, static_cast<std::size_t>(r));
  }
  std::map<std::string, std::string> by_id;
  std::istringstream lines(received);
  std::string line;
  while (std::getline(lines, line)) {
    const Json resp = Json::parse(line);
    const Json* id = resp.find("id");
    std::string key = id->is_string() ? id->as_string("id") : id->dump();
    EXPECT_TRUE(by_id.emplace(std::move(key), line).second)
        << "duplicate reply id";
  }
  return by_id;
}

}  // namespace

// The satellite acceptance: N clients issuing interleaved requests over
// socketpairs get byte-deterministic per-request responses regardless of
// worker count.
TEST(ServiceTransport, SocketpairResponsesAreByteDeterministicAcrossWorkerCounts) {
  constexpr int kClients = 3;
  const std::string indep = quoted(payload(independent_instance(6, 3, 31)));
  const std::string chains = quoted(payload(chains_instance(32)));

  // Each client pipelines a mixed bag of requests with distinct ids.
  std::vector<std::vector<std::string>> requests(kClients);
  for (int c = 0; c < kClients; ++c) {
    const std::string tag = "c" + std::to_string(c);
    requests[c] = {
        R"({"id":")" + tag + R"(-est","method":"estimate","params":{"instance":)" +
            indep + R"(,"replications":25,"seed":)" + std::to_string(c + 1) +
            "}}",
        R"({"id":")" + tag + R"(-solve","method":"solve","params":{"instance":)" +
            chains + R"(,"lower_bound":true}})",
        R"({"id":")" + tag + R"(-ls","method":"list_solvers"})",
        R"({"id":")" + tag + R"(-bad","method":"solve","params":{"instance":"junk"}})",
        R"({"id":")" + tag + R"(-unk","method":"no_such_method"})",
    };
  }

  const auto run_with_workers =
      [&](unsigned workers) -> std::map<std::string, std::string> {
    Engine::Config cfg;
    cfg.workers = workers;
    Engine engine(cfg);
    std::vector<std::thread> servers;
    std::vector<std::thread> clients;
    std::vector<int> client_fds(kClients);
    std::mutex merge_mu;
    std::map<std::string, std::string> merged;
    for (int c = 0; c < kClients; ++c) {
      int sv[2];
      EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0)
          << "socketpair failed";
      const int server_fd = sv[0];
      client_fds[c] = sv[1];
      servers.emplace_back([&engine, server_fd] {
        serve_fd(engine, server_fd);
        ::close(server_fd);
      });
      clients.emplace_back([&, c] {
        auto by_id = client_round_trip(client_fds[c], requests[c]);
        ::close(client_fds[c]);
        std::lock_guard<std::mutex> lock(merge_mu);
        merged.merge(by_id);
      });
    }
    for (std::thread& t : clients) t.join();
    for (std::thread& t : servers) t.join();
    return merged;
  };

  std::map<std::string, std::string> serial;
  run_with_workers(1).swap(serial);
  std::map<std::string, std::string> parallel;
  run_with_workers(4).swap(parallel);

  ASSERT_EQ(serial.size(), static_cast<std::size_t>(kClients) * 5);
  EXPECT_EQ(serial, parallel);

  // And both match the synchronous library path, request by request.
  Engine reference;
  for (int c = 0; c < kClients; ++c) {
    for (const std::string& req : requests[c]) {
      const Json parsed = Json::parse(req);
      const Json* id = parsed.find("id");
      const std::string key =
          id->is_string() ? id->as_string("id") : id->dump();
      ASSERT_TRUE(serial.count(key)) << key;
      EXPECT_EQ(serial.at(key), reference.handle(req)) << key;
    }
  }
}

TEST(ServiceTransport, OverlongLineGetsErrorAndConnectionAbandoned) {
  Engine::Config cfg;
  cfg.max_line_bytes = 256;
  Engine engine(cfg);
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  std::thread server([&] {
    serve_fd(engine, sv[0]);
    ::close(sv[0]);
  });
  const std::string huge(1024, 'x');  // no newline: unframed over-long line
  ASSERT_EQ(::write(sv[1], huge.data(), huge.size()),
            static_cast<ssize_t>(huge.size()));
  std::string received;
  char buf[512];
  for (;;) {
    const ssize_t r = ::read(sv[1], buf, sizeof buf);
    if (r <= 0) break;
    received.append(buf, static_cast<std::size_t>(r));
  }
  server.join();
  ::close(sv[1]);
  const Json resp = Json::parse(received.substr(0, received.find('\n')));
  EXPECT_FALSE(resp.find("ok")->as_bool("ok"));
  EXPECT_EQ(resp.find("error")->find("code")->as_string("code"),
            error_code::kParseError);
}

TEST(ServiceTransport, TcpEndToEndWithWireShutdown) {
  Engine engine;
  TcpServer server(engine, 0);
  ASSERT_GT(server.port(), 0);
  std::thread server_thread([&] { server.run(); });

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);

  const std::string inst = quoted(payload(independent_instance(5, 2, 77)));
  const auto by_id = client_round_trip(
      fd, {R"({"id":"s","method":"solve","params":{"instance":)" + inst + "}}",
           R"({"id":"q","method":"shutdown"})"});
  ::close(fd);
  server_thread.join();

  ASSERT_EQ(by_id.size(), 2u);
  EXPECT_TRUE(Json::parse(by_id.at("s")).find("ok")->as_bool("ok"));
  EXPECT_TRUE(Json::parse(by_id.at("q")).find("ok")->as_bool("ok"));
  EXPECT_TRUE(engine.stopping());
}

// ------------------------------------------------------ fan-out plumbing
// The service-side half of the src/client/ fan-out contract: the shard
// grid's edge cases, the samples parameter, error classification, the
// fault-injection spec, idle-timeout hygiene, and pin release when a
// connection drops without close_instance.

TEST(ServiceProtocol, ShardRangeEdgeCases) {
  // K == R: every shard is exactly one replication.
  for (int s = 0; s < 5; ++s) {
    const auto [lo, hi] = shard_range(5, 5, s);
    EXPECT_EQ(lo, s);
    EXPECT_EQ(hi, s + 1);
  }
  // The single-replication grid.
  EXPECT_EQ(shard_range(1, 1, 0), (std::pair<int, int>{0, 1}));
  // Partition invariant over a sweep: contiguous, non-empty (K <= R
  // guarantees it), tiling [0, R) exactly.
  for (int r = 1; r <= 40; ++r) {
    for (int k = 1; k <= r; ++k) {
      int covered = 0;
      for (int s = 0; s < k; ++s) {
        const auto [lo, hi] = shard_range(r, k, s);
        EXPECT_EQ(lo, covered);
        EXPECT_LT(lo, hi);
        covered = hi;
      }
      EXPECT_EQ(covered, r) << r << "/" << k;
    }
  }
  // Degenerate grids are caller bugs (the wire layer never lets them
  // through; see below), so shard_range treats them as contract breaks.
  EXPECT_THROW(shard_range(0, 1, 0), util::CheckError);   // R == 0
  EXPECT_THROW(shard_range(5, 0, 0), util::CheckError);   // K == 0
  EXPECT_THROW(shard_range(5, 6, 0), util::CheckError);   // K > R
  EXPECT_THROW(shard_range(5, 2, 2), util::CheckError);   // s == K
  EXPECT_THROW(shard_range(5, 2, -1), util::CheckError);  // s < 0
  EXPECT_THROW(
      parse_estimate_params(
          Json::parse(R"({"handle":1,"replications":10,"shards":0})"), 100),
      ProtocolError);
}

TEST(ServiceProtocol, SamplesParamRequiresSingleShard) {
  // samples is the fan-out merge hook: only meaningful on a single-shard
  // request, where the reply can carry that shard's raw makespans.
  EXPECT_THROW(
      parse_estimate_params(Json::parse(R"({"handle":1,"samples":true})"),
                            100),
      ProtocolError);
  EXPECT_THROW(parse_estimate_params(
                   Json::parse(
                       R"({"handle":1,"shards":4,"samples":true})"),
                   100),
               ProtocolError);  // shard count without shard selection
  const EstimateParams p = parse_estimate_params(
      Json::parse(
          R"({"handle":1,"replications":10,"shards":4,"shard":2,"samples":true})"),
      100);
  EXPECT_TRUE(p.samples);
  EXPECT_FALSE(
      parse_estimate_params(
          Json::parse(R"({"handle":1,"replications":10,"shards":4,"shard":2})"),
          100)
          .samples);
}

TEST(ServiceProtocol, ErrorClassification) {
  // The retry table the fan-out client keys every decision off. A
  // misclassification here either spins retries on hopeless requests or
  // gives up on recoverable ones — pin each code.
  for (const char* code :
       {error_code::kParseError, error_code::kBadRequest,
        error_code::kUnknownMethod, error_code::kBadParams,
        error_code::kBadInstance, error_code::kUnknownSolver,
        error_code::kCapped}) {
    EXPECT_EQ(classify_error(code), ErrorClass::Fatal) << code;
  }
  for (const char* code : {error_code::kOverloaded, error_code::kShuttingDown,
                           error_code::kInternal}) {
    EXPECT_EQ(classify_error(code), ErrorClass::Retryable) << code;
  }
  EXPECT_EQ(classify_error(error_code::kUnknownHandle), ErrorClass::Reopen);
  // Codes from a newer server default to the safe side: retry.
  EXPECT_EQ(classify_error("code_from_the_future"), ErrorClass::Retryable);
}

TEST(ServiceFault, SpecParsing) {
  FaultSpec spec;
  std::string err;
  EXPECT_TRUE(FaultSpec::parse("", &spec, &err));
  EXPECT_FALSE(spec.active());

  EXPECT_TRUE(FaultSpec::parse(
      "delay_ms=5,close_after_bytes=10,truncate_line=3,exit_after_lines=2,"
      "exit_after_bytes=100",
      &spec, &err));
  EXPECT_EQ(spec.delay_ms, 5);
  EXPECT_EQ(spec.close_after_bytes, 10);
  EXPECT_EQ(spec.truncate_line, 3);
  EXPECT_EQ(spec.exit_after_lines, 2);
  EXPECT_EQ(spec.exit_after_bytes, 100);
  EXPECT_TRUE(spec.active());

  EXPECT_FALSE(FaultSpec::parse("bogus=1", &spec, &err));
  EXPECT_NE(err.find("bogus"), std::string::npos);
  EXPECT_FALSE(FaultSpec::parse("delay_ms", &spec, &err));     // no '='
  EXPECT_FALSE(FaultSpec::parse("delay_ms=x", &spec, &err));   // not a number
  EXPECT_FALSE(FaultSpec::parse("delay_ms=99999999", &spec, &err));  // range
  EXPECT_FALSE(FaultSpec::parse("truncate_line=0", &spec, &err));    // min 1
}

TEST(ServiceFault, InjectorTruncatesClosesAndExits) {
  {  // truncate_line: half the line, then the connection is gone for good.
    FaultSpec spec;
    spec.truncate_line = 2;
    FaultInjector inj(spec);
    const auto a1 = inj.next("hello\n");
    EXPECT_EQ(a1.write_bytes, 6u);
    EXPECT_FALSE(a1.close_after);
    const auto a2 = inj.next("0123456789\n");
    EXPECT_EQ(a2.write_bytes, 5u);  // floor(11 / 2): mid-line cut
    EXPECT_TRUE(a2.close_after);
    const auto a3 = inj.next("x\n");
    EXPECT_EQ(a3.write_bytes, 0u);  // latched closed
    EXPECT_TRUE(a3.close_after);
  }
  {  // close_after_bytes lands inside a line: write exactly to the trigger.
    FaultSpec spec;
    spec.close_after_bytes = 5;
    FaultInjector inj(spec);
    const auto a1 = inj.next("abc\n");
    EXPECT_EQ(a1.write_bytes, 4u);
    EXPECT_FALSE(a1.close_after);
    const auto a2 = inj.next("defg\n");
    EXPECT_EQ(a2.write_bytes, 1u);
    EXPECT_TRUE(a2.close_after);
  }
  {  // exit_after_lines plans a crash after the Nth complete reply.
    FaultSpec spec;
    spec.exit_after_lines = 2;
    spec.delay_ms = 7;
    FaultInjector inj(spec);
    const auto a1 = inj.next("one\n");
    EXPECT_EQ(a1.delay_ms, 7);
    EXPECT_FALSE(a1.exit_after);
    const auto a2 = inj.next("two\n");
    EXPECT_EQ(a2.write_bytes, 4u);
    EXPECT_TRUE(a2.exit_after);
  }
}

TEST(ServiceTransport, IdleTimeoutAbandonsSilentPeer) {
  Engine::Config cfg;
  cfg.idle_timeout_ms = 50;
  Engine engine(cfg);
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  std::thread server([&] {
    serve_fd(engine, sv[0]);
    ::close(sv[0]);
  });
  // One request proves activity resets the clock; then go silent. A
  // half-open peer used to park the reader forever — now the server must
  // hang up on its own.
  const std::string req =
      R"({"id":1,"method":"list_solvers"})" "\n";
  ASSERT_EQ(::write(sv[1], req.data(), req.size()),
            static_cast<ssize_t>(req.size()));
  const auto t0 = std::chrono::steady_clock::now();
  std::string received;
  char buf[4096];
  for (;;) {  // reply, then EOF once the server times us out
    const ssize_t r = ::read(sv[1], buf, sizeof buf);
    if (r <= 0) break;
    received.append(buf, static_cast<std::size_t>(r));
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  server.join();
  ::close(sv[1]);
  EXPECT_TRUE(Json::parse(received.substr(0, received.find('\n')))
                  .find("ok")
                  ->as_bool("ok"));
  EXPECT_GE(elapsed, std::chrono::milliseconds(40));
  EXPECT_LT(elapsed, std::chrono::seconds(10));
}

TEST(ServiceTransport, DroppedConnectionReleasesPinsAndCountsSession) {
  const std::size_t base_pinned = api::PrecomputeCache::global().stats().pinned;
  Engine engine;
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  std::thread server([&] {
    serve_fd(engine, sv[0]);
    ::close(sv[0]);
  });

  // Sequential round-trips so the pin can be observed while the
  // connection is still up. Fresh engine: the first handle is 1.
  const auto round_trip = [&](const std::string& req) {
    const std::string framed = req + "\n";
    EXPECT_EQ(::write(sv[1], framed.data(), framed.size()),
              static_cast<ssize_t>(framed.size()));
    std::string line;
    char c = 0;
    while (::read(sv[1], &c, 1) == 1 && c != '\n') line.push_back(c);
    return line;
  };
  const std::string inst = quoted(payload(independent_instance(6, 2, 91)));
  const std::string open = round_trip(
      R"({"id":"o","method":"open_instance","params":{"instance":)" + inst +
      "}}");
  EXPECT_TRUE(Json::parse(open).find("ok")->as_bool("ok"));
  const std::string est = round_trip(
      R"({"id":"e","method":"estimate","params":{"handle":1,"replications":5}})");
  EXPECT_TRUE(Json::parse(est).find("ok")->as_bool("ok"));
  EXPECT_GT(api::PrecomputeCache::global().stats().pinned, base_pinned)
      << "an estimate through an open handle must pin its cache entry";

  // Drop the connection without close_instance — the session teardown
  // must release the pin, not leak it until engine destruction.
  ::close(sv[1]);
  server.join();
  EXPECT_EQ(api::PrecomputeCache::global().stats().pinned, base_pinned);
  const Json stats =
      Json::parse(engine.handle(R"({"id":"s","method":"stats"})"));
  EXPECT_EQ(stats.find("result")
                ->find("engine")
                ->find("sessions_dropped")
                ->as_int64("sessions_dropped"),
            1);
}

// ----------------------------------------- epoll transport + bugfix sweep

namespace {

/// Write raw bytes (no framing added), half-close, and read every reply
/// byte until EOF. The no-trailing-newline and over-long-line tests need
/// exact control of the bytes on the wire, which client_round_trip's
/// per-request framing would hide.
std::string raw_round_trip(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t w = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (w < 0 && errno == EINTR) continue;
    if (w < 0) break;
    off += static_cast<std::size_t>(w);
  }
  ::shutdown(fd, SHUT_WR);
  std::string received;
  char buf[4096];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof buf);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;
    received.append(buf, static_cast<std::size_t>(r));
  }
  return received;
}

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  return fd;
}

}  // namespace

// Bugfix regression: a final request line that arrives without a trailing
// newline at EOF is still a request, on every transport. serve_fd used to
// drop it (its read loop only submitted up to the last '\n') while
// serve_stream's getline served it — stdio, fd, and TCP must agree.
TEST(ServiceTransport, FinalLineWithoutNewlineAtEofIsServedOnAllTransports) {
  const std::string req = R"({"id":"last","method":"list_solvers"})";
  Engine reference;
  const std::string want = reference.handle(req) + "\n";

  {  // stdio (stream) transport
    Engine engine;
    std::istringstream in(req);  // EOF lands before any newline
    std::ostringstream out;
    serve_stream(engine, in, out);
    EXPECT_EQ(out.str(), want);
  }
  {  // fd transport
    Engine engine;
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    std::thread server([&] {
      serve_fd(engine, sv[0]);
      ::close(sv[0]);
    });
    const std::string received = raw_round_trip(sv[1], req);
    server.join();
    ::close(sv[1]);
    EXPECT_EQ(received, want);
  }
  {  // TCP (epoll event loop) transport
    Engine engine;
    TcpServer server(engine, 0);
    std::thread server_thread([&] { server.run(); });
    const int fd = connect_loopback(server.port());
    const std::string received = raw_round_trip(fd, req);
    ::close(fd);
    server.stop();
    server_thread.join();
    EXPECT_EQ(received, want);
  }
}

// Bugfix regression: a complete over-long line inside one read chunk must
// be rejected at the transport — the residual-buffer check used to miss it
// and hand it to the engine. The typed parse_error + abandon behavior
// applies, and the pipelined valid request after it is never served.
TEST(ServiceTransport, CompleteOverlongLineInOneChunkIsRejectedAtTransport) {
  std::string bytes(1024, 'x');
  bytes += "\n";  // complete, newline-framed, over the 256-byte cap
  bytes += R"({"id":"after","method":"list_solvers"})" "\n";

  for (const bool tcp : {false, true}) {
    Engine::Config cfg;
    cfg.max_line_bytes = 256;
    Engine engine(cfg);
    std::string received;
    if (!tcp) {
      int sv[2];
      ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
      std::thread server([&] {
        serve_fd(engine, sv[0]);
        ::close(sv[0]);
      });
      received = raw_round_trip(sv[1], bytes);
      server.join();
      ::close(sv[1]);
    } else {
      TcpServer server(engine, 0);
      std::thread server_thread([&] { server.run(); });
      const int fd = connect_loopback(server.port());
      received = raw_round_trip(fd, bytes);
      ::close(fd);
      server.stop();
      server_thread.join();
    }
    // Exactly one reply — the typed error — then the abandoned connection
    // closes; the request behind the over-long line is never answered.
    ASSERT_NE(received.find('\n'), std::string::npos) << "tcp=" << tcp;
    EXPECT_EQ(received.find('\n'), received.size() - 1) << "tcp=" << tcp;
    const Json resp = Json::parse(received.substr(0, received.find('\n')));
    EXPECT_FALSE(resp.find("ok")->as_bool("ok"));
    EXPECT_EQ(resp.find("error")->find("code")->as_string("code"),
              error_code::kParseError);
    // The transport rejected it: nothing ever reached the engine.
    EXPECT_EQ(engine.stats().received, 0u) << "tcp=" << tcp;
  }
}

// Bugfix regression: a scraper that connects but never reads must not
// wedge the metrics endpoint. The blocking response write used to have no
// send timeout, pinning the single accept thread forever; now the stalled
// connection is abandoned and later scrapes succeed.
TEST(ServiceMetrics, StalledScraperDoesNotWedgeEndpoint) {
  Engine engine;
  // A body far larger than any socket buffering, so the write to the
  // stalled peer must block (and then hit the send timeout).
  const std::string big(std::size_t{16} << 20, 'x');
  MetricsServer metrics(engine, 0, [&big] { return big; });

  // The stalled peer: tiny receive window, connects, never reads.
  const int stalled = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(stalled, 0);
  const int rcv = 4096;
  ::setsockopt(stalled, SOL_SOCKET, SO_RCVBUF, &rcv, sizeof rcv);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(metrics.port());
  ASSERT_EQ(
      ::connect(stalled, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);

  // A live scrape behind it must still complete once the send timeout
  // frees the accept thread (bounded, not hung).
  const auto t0 = std::chrono::steady_clock::now();
  const int fd = connect_loopback(metrics.port());
  std::string response;
  char buf[65536];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof buf);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;
    response.append(buf, static_cast<std::size_t>(r));
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ::close(fd);
  ::close(stalled);
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_GE(response.size(), big.size());
  EXPECT_LT(elapsed, std::chrono::seconds(30));
}

// A client that drops mid-{"stream":true} stops the remaining shard
// computation — not just its output. The loop's peer-death detection sets
// the connection's CancelToken; the engine's shard loop checks it.
TEST(ServiceTransport, ClientDropMidStreamCancelsRemainingShards) {
  Engine::Config cfg;
  cfg.workers = 1;  // shards compute serially: the cancel lands between them
  Engine engine(cfg);
  TcpServer server(engine, 0);
  std::thread server_thread([&] { server.run(); });
  const int fd = connect_loopback(server.port());

  const std::string text = quoted(payload(independent_instance(8, 3, 21)));
  const std::string req =
      R"({"id":"st","method":"estimate","params":{"instance":)" + text +
      R"(,"replications":80000,"seed":7,"stream":true,"shards":8}})" "\n";
  ASSERT_EQ(::write(fd, req.data(), req.size()),
            static_cast<ssize_t>(req.size()));

  // Read the first shard envelope, then die hard: SO_LINGER(0) turns the
  // close into a RST, which the loop sees as peer death.
  std::string first;
  char c = 0;
  while (::read(fd, &c, 1) == 1 && c != '\n') first.push_back(c);
  const Json envelope = Json::parse(first);
  EXPECT_EQ(envelope.find("seq")->as_int64("seq"), 0);
  const linger lg{1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
  ::close(fd);

  engine.drain();  // the cancelled stream finishes (early) before asserting
  const Engine::Stats s = engine.stats();
  EXPECT_EQ(s.streams_cancelled, 1u);
  EXPECT_GE(s.shards, 1u);
  EXPECT_LT(s.shards, 8u) << "remaining shards must not be computed";
  EXPECT_NE(engine.metrics_text().find("suu_engine_streams_cancelled_total 1"),
            std::string::npos);

  server.stop();
  server_thread.join();
}

// Backpressure: a connection whose queued-but-unwritten reply bytes exceed
// max_outbound_bytes is a slow reader — disconnected and counted, never
// buffered without bound.
TEST(ServiceTransport, SlowReaderExceedingOutboundBoundIsDropped) {
  Engine::Config cfg;
  cfg.workers = 2;
  Engine engine(cfg);
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

  EventLoop::Options opt;
  opt.max_line_bytes = engine.config().max_line_bytes;
  opt.max_outbound_bytes = 2048;  // tiny bound; one samples reply blows it
  EventLoop loop(engine, opt);
  loop.add_connection(sv[0]);
  std::thread loop_thread([&] { loop.run(); });

  // Each reply carries 2000 raw makespan samples (17-digit doubles): tens
  // of kilobytes against a 2 KiB bound. The client never reads.
  const std::string text = quoted(payload(independent_instance(5, 2, 33)));
  std::string batch;
  for (int i = 0; i < 2; ++i) {
    batch += R"({"id":)" + std::to_string(i) +
             R"(,"method":"estimate","params":{"instance":)" + text +
             R"(,"replications":2000,"shards":1,"shard":0,"samples":true}})"
             "\n";
  }
  ASSERT_EQ(::write(sv[1], batch.data(), batch.size()),
            static_cast<ssize_t>(batch.size()));

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (engine.stats().slow_reader_drops == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(engine.stats().slow_reader_drops, 1u);

  loop.stop();
  loop_thread.join();
  ::close(sv[1]);
  engine.drain();
  EXPECT_NE(engine.metrics_text().find("suu_engine_slow_reader_drops_total 1"),
            std::string::npos);
}

// The idle timeout now lives on the event loop's timer queue: a silent TCP
// peer is hung up on without any per-connection poll() thread.
TEST(ServiceTransport, TcpIdleTimeoutClosesSilentConnection) {
  Engine::Config cfg;
  cfg.idle_timeout_ms = 50;
  Engine engine(cfg);
  TcpServer server(engine, 0);
  std::thread server_thread([&] { server.run(); });
  const int fd = connect_loopback(server.port());

  const std::string req = R"({"id":1,"method":"list_solvers"})" "\n";
  ASSERT_EQ(::write(fd, req.data(), req.size()),
            static_cast<ssize_t>(req.size()));
  const auto t0 = std::chrono::steady_clock::now();
  std::string received;
  char buf[4096];
  for (;;) {  // reply, then EOF once the loop times us out
    const ssize_t r = ::read(fd, buf, sizeof buf);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;
    received.append(buf, static_cast<std::size_t>(r));
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ::close(fd);
  server.stop();
  server_thread.join();
  EXPECT_TRUE(Json::parse(received.substr(0, received.find('\n')))
                  .find("ok")
                  ->as_bool("ok"));
  EXPECT_GE(elapsed, std::chrono::milliseconds(40));
  EXPECT_LT(elapsed, std::chrono::seconds(10));
}

// Multiplexing burn-in: many concurrent connections through one epoll
// loop, every reply byte-identical to the synchronous engine path.
TEST(ServiceTransport, TcpManyConcurrentConnectionsAreByteDeterministic) {
  constexpr int kConns = 50;
  Engine::Config cfg;
  cfg.queue_capacity = 1024;  // the burst must never hit admission control
  Engine engine(cfg);
  TcpServer server(engine, 0);
  std::thread server_thread([&] { server.run(); });

  const std::string inst = quoted(payload(independent_instance(5, 2, 9)));
  std::vector<std::vector<std::string>> requests(kConns);
  std::vector<std::map<std::string, std::string>> expected(kConns);
  Engine reference;
  for (int c = 0; c < kConns; ++c) {
    const std::string tag = "c" + std::to_string(c);
    requests[c] = {
        R"({"id":")" + tag +
            R"(-est","method":"estimate","params":{"instance":)" + inst +
            R"(,"replications":25,"seed":)" + std::to_string(c + 1) + "}}",
        R"({"id":")" + tag + R"(-ls","method":"list_solvers"})",
    };
    for (const std::string& req : requests[c]) {
      const Json parsed = Json::parse(req);
      const std::string key = parsed.find("id")->as_string("id");
      expected[c][key] = reference.handle(req);
    }
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kConns);
  for (int c = 0; c < kConns; ++c) {
    clients.emplace_back([&, c] {
      const int fd = connect_loopback(server.port());
      const auto by_id = client_round_trip(fd, requests[c]);
      ::close(fd);
      if (by_id.size() != expected[c].size()) {
        mismatches.fetch_add(1);
        return;
      }
      for (const auto& [key, want] : expected[c]) {
        const auto it = by_id.find(key);
        if (it == by_id.end() || it->second != want) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.stop();
  server_thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace suu::service
