// Cross-module integration tests: the full pipelines wired together the way
// the benches and examples use them, plus deterministic consistency checks
// between independently implemented components.
#include <gtest/gtest.h>

#include <cmath>

#include "algos/baselines.hpp"
#include "algos/exact_dp.hpp"
#include "algos/lower_bounds.hpp"
#include "algos/suu_c.hpp"
#include "algos/suu_i.hpp"
#include "algos/suu_t.hpp"
#include "core/generators.hpp"
#include "core/io.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "util/check.hpp"

namespace suu {
namespace {

// The Lemma 1 lower bound must sit below the EXACT optimum — a
// deterministic, noise-free soundness check of the whole LP pipeline.
class LowerBoundVsExact : public ::testing::TestWithParam<int> {};

TEST_P(LowerBoundVsExact, Lemma1BelowDpOptimum) {
  util::Rng rng(8000 + GetParam());
  const int n = 2 + static_cast<int>(rng.uniform_below(5));
  const int m = 1 + static_cast<int>(rng.uniform_below(3));
  const auto model = (GetParam() % 2 == 0)
                         ? core::MachineModel::uniform(0.2, 0.95)
                         : core::MachineModel::sparse(0.6, 0.2, 0.9);
  core::Instance inst = core::make_independent(n, m, model, rng);
  const algos::LowerBound lb = algos::lower_bound_independent(inst);
  const algos::ExactSolver solver(inst);
  EXPECT_LE(lb.value, solver.expected_makespan() + 1e-9)
      << "n=" << n << " m=" << m;
}

INSTANTIATE_TEST_SUITE_P(Sweep, LowerBoundVsExact, ::testing::Range(0, 16));

// Same for chains: Lemma 1 + Lemma 5 bounds below the exact DP value.
class ChainLowerBoundVsExact : public ::testing::TestWithParam<int> {};

TEST_P(ChainLowerBoundVsExact, Lemma5BelowDpOptimum) {
  util::Rng rng(9000 + GetParam());
  core::Instance inst = core::make_chains(
      2, 1, 3, 2, core::MachineModel::uniform(0.3, 0.9), rng);
  if (inst.num_jobs() > 6) GTEST_SKIP() << "keep the DP cheap";
  const algos::LowerBound lb =
      algos::lower_bound_chains(inst, inst.dag().chains());
  const algos::ExactSolver solver(inst);
  EXPECT_LE(lb.value, solver.expected_makespan() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChainLowerBoundVsExact,
                         ::testing::Range(0, 10));

TEST(Integration, SaveLoadPreservesPolicyBehavior) {
  // Serialize an instance, reload it, and verify a seeded execution is
  // bit-identical — the IO layer must not perturb anything.
  util::Rng rng(21);
  core::Instance inst = core::make_chains(
      3, 2, 3, 3, core::MachineModel::uniform(0.3, 0.9), rng);
  const std::string path = "/tmp/suu_integration_instance.txt";
  core::save_instance(path, inst);
  core::Instance loaded = core::load_instance(path);
  std::remove(path.c_str());

  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    algos::SuuCPolicy p1, p2;
    sim::ExecConfig cfg;
    cfg.seed = seed;
    cfg.strict_eligibility = true;
    const sim::ExecResult a = sim::execute(inst, p1, cfg);
    const sim::ExecResult b = sim::execute(loaded, p2, cfg);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.completion_time, b.completion_time);
  }
}

TEST(Integration, SuuTOnChainsMatchesSuuCStructure) {
  // On a pure chain instance SUU-T's decomposition is a single block, so
  // SUU-T is SUU-C plus a wrapper; both must complete under strict
  // eligibility with valid traces.
  util::Rng rng(31);
  core::Instance inst = core::make_chains(
      4, 2, 4, 3, core::MachineModel::uniform(0.3, 0.9), rng);
  const chains::Decomposition dec = chains::decompose_forest(inst.dag());
  EXPECT_EQ(dec.num_blocks(), 1);

  for (int variant = 0; variant < 2; ++variant) {
    std::unique_ptr<sim::Policy> policy;
    if (variant == 0) {
      policy = std::make_unique<algos::SuuCPolicy>();
    } else {
      policy = std::make_unique<algos::SuuTPolicy>();
    }
    sim::Trace trace;
    sim::ExecConfig cfg;
    cfg.seed = 5;
    cfg.strict_eligibility = true;
    cfg.trace = &trace;
    const sim::ExecResult r = sim::execute(inst, *policy, cfg);
    EXPECT_FALSE(r.capped);
    sim::TraceCheckOptions opt;
    opt.forbid_blocked_assignments = true;
    EXPECT_NO_THROW(sim::validate_trace(inst, trace, opt));
  }
}

TEST(Integration, PrecomputedAndFreshSuuCIdentical) {
  // Sharing the LP2 result across replications must not change behavior.
  util::Rng rng(41);
  core::Instance inst = core::make_chains(
      3, 2, 4, 3, core::MachineModel::uniform(0.3, 0.9), rng);
  auto lp2 = algos::SuuCPolicy::precompute(inst, inst.dag().chains());
  for (const std::uint64_t seed : {7ull, 8ull}) {
    algos::SuuCPolicy fresh;
    algos::SuuCPolicy::Config cfg;
    cfg.lp2 = lp2;
    algos::SuuCPolicy cached(std::move(cfg));
    sim::ExecConfig ec;
    ec.seed = seed;
    ec.strict_eligibility = true;
    const sim::ExecResult a = sim::execute(inst, fresh, ec);
    const sim::ExecResult b = sim::execute(inst, cached, ec);
    EXPECT_EQ(a.makespan, b.makespan);
  }
}

TEST(Integration, AdaptiveGreedyCompetitiveWithSemOnCouponFamily) {
  // The conclusion's open question: the adaptive greedy should at least be
  // in SEM's ballpark on the family where obliviousness hurts.
  util::Rng rng(51);
  core::Instance inst = core::make_independent(
      32, 8, core::MachineModel::identical(0.7), rng);
  sim::EstimateOptions opt;
  opt.replications = 400;
  opt.seed = 3;
  const util::Estimate greedy = sim::estimate_makespan(
      inst, [] { return std::make_unique<algos::AdaptiveGreedyPolicy>(); },
      opt);
  const util::Estimate sem = sim::estimate_makespan(
      inst, [] { return std::make_unique<algos::SuuISemPolicy>(); }, opt);
  EXPECT_LT(greedy.mean, 3.0 * sem.mean);
  EXPECT_GT(greedy.mean, 0.0);
}

TEST(Integration, DeferredSemanticsAcrossAllAlgorithms) {
  // Theorem 10 holds for adaptive policies too: run SUU-C under both
  // semantics and compare means.
  util::Rng rng(61);
  core::Instance inst = core::make_chains(
      3, 2, 3, 3, core::MachineModel::uniform(0.4, 0.9), rng);
  auto lp2 = algos::SuuCPolicy::precompute(inst, inst.dag().chains());
  auto factory = [lp2] {
    algos::SuuCPolicy::Config cfg;
    cfg.lp2 = lp2;
    return std::make_unique<algos::SuuCPolicy>(std::move(cfg));
  };
  sim::EstimateOptions a, b;
  a.replications = b.replications = 4000;
  a.seed = b.seed = 17;
  a.strict_eligibility = b.strict_eligibility = true;
  a.semantics = sim::Semantics::CoinFlips;
  b.semantics = sim::Semantics::Deferred;
  const util::Estimate ea = sim::estimate_makespan(inst, factory, a);
  const util::Estimate eb = sim::estimate_makespan(inst, factory, b);
  EXPECT_NEAR(ea.mean, eb.mean, 5 * (ea.ci95_half + eb.ci95_half) + 0.05);
}

TEST(Integration, MassAccountingMatchesSemTargets) {
  // Round-1 of SUU-I-SEM delivers >= 1/2 truncated log mass to every job;
  // verify via trace accounting on a deterministic-ish instance.
  util::Rng rng(71);
  core::Instance inst = core::make_independent(
      6, 3, core::MachineModel::uniform(0.5, 0.9), rng);
  auto pre = algos::SuuISemPolicy::precompute_round1(inst);
  for (int j = 0; j < inst.num_jobs(); ++j) {
    EXPECT_GE(pre->assignment.delivered_mass(inst, j, 0.5), 0.5 - 1e-9);
  }
  EXPECT_EQ(pre->schedule.length(), pre->assignment.max_load());
}

}  // namespace
}  // namespace suu
