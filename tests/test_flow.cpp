#include "flow/max_flow.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace suu::flow {
namespace {

TEST(MaxFlow, SingleEdge) {
  MaxFlow g(2);
  const int e = g.add_edge(0, 1, 5);
  EXPECT_EQ(g.solve(0, 1), 5);
  EXPECT_EQ(g.flow_on(e), 5);
}

TEST(MaxFlow, SeriesTakesMinimum) {
  MaxFlow g(3);
  g.add_edge(0, 1, 7);
  g.add_edge(1, 2, 3);
  EXPECT_EQ(g.solve(0, 2), 3);
}

TEST(MaxFlow, ParallelEdgesAdd) {
  MaxFlow g(2);
  g.add_edge(0, 1, 2);
  g.add_edge(0, 1, 3);
  EXPECT_EQ(g.solve(0, 1), 5);
}

TEST(MaxFlow, ClassicCLRSNetwork) {
  // CLRS figure 26.1: max flow 23.
  MaxFlow g(6);
  g.add_edge(0, 1, 16);
  g.add_edge(0, 2, 13);
  g.add_edge(1, 2, 10);
  g.add_edge(2, 1, 4);
  g.add_edge(1, 3, 12);
  g.add_edge(3, 2, 9);
  g.add_edge(2, 4, 14);
  g.add_edge(4, 3, 7);
  g.add_edge(3, 5, 20);
  g.add_edge(4, 5, 4);
  EXPECT_EQ(g.solve(0, 5), 23);
}

TEST(MaxFlow, DisconnectedZeroFlow) {
  MaxFlow g(4);
  g.add_edge(0, 1, 5);
  g.add_edge(2, 3, 5);
  EXPECT_EQ(g.solve(0, 3), 0);
}

TEST(MaxFlow, InfiniteCapacityEdges) {
  MaxFlow g(3);
  g.add_edge(0, 1, MaxFlow::kInf);
  g.add_edge(1, 2, 9);
  EXPECT_EQ(g.solve(0, 2), 9);
}

TEST(MaxFlow, FlowConservationAndCapacity) {
  util::Rng rng(3);
  MaxFlow g(8);
  struct E {
    int u, v, id;
    MaxFlow::Cap cap;
  };
  std::vector<E> edges;
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      if (u == v || !rng.bernoulli(0.4)) continue;
      const auto cap = static_cast<MaxFlow::Cap>(rng.uniform_below(10));
      edges.push_back({u, v, g.add_edge(u, v, cap), cap});
    }
  }
  g.solve(0, 7);
  std::vector<MaxFlow::Cap> net(8, 0);
  for (const E& e : edges) {
    const auto f = g.flow_on(e.id);
    EXPECT_GE(f, 0);
    EXPECT_LE(f, e.cap);
    net[e.u] -= f;
    net[e.v] += f;
  }
  for (int v = 1; v < 7; ++v) EXPECT_EQ(net[v], 0) << "node " << v;
}

TEST(MaxFlow, MinCutMatchesFlowValue) {
  util::Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 6 + static_cast<int>(rng.uniform_below(5));
    MaxFlow g(n);
    struct E {
      int u, v, id;
      MaxFlow::Cap cap;
    };
    std::vector<E> edges;
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        if (u == v || !rng.bernoulli(0.5)) continue;
        const auto cap = static_cast<MaxFlow::Cap>(rng.uniform_below(8));
        edges.push_back({u, v, g.add_edge(u, v, cap), cap});
      }
    }
    const auto flow = g.solve(0, n - 1);
    const auto side = g.min_cut_side(0);
    EXPECT_TRUE(side[0]);
    EXPECT_FALSE(side[static_cast<std::size_t>(n - 1)]);
    MaxFlow::Cap cut = 0;
    for (const E& e : edges) {
      if (side[static_cast<std::size_t>(e.u)] &&
          !side[static_cast<std::size_t>(e.v)]) {
        cut += e.cap;
      }
    }
    EXPECT_EQ(flow, cut) << "max-flow must equal min-cut";
  }
}

TEST(MaxFlow, BipartiteMatchingViaFlow) {
  // 3x3 bipartite with a perfect matching.
  MaxFlow g(8);  // 0 src, 1..3 left, 4..6 right, 7 sink
  for (int l = 1; l <= 3; ++l) g.add_edge(0, l, 1);
  for (int r = 4; r <= 6; ++r) g.add_edge(r, 7, 1);
  g.add_edge(1, 4, 1);
  g.add_edge(1, 5, 1);
  g.add_edge(2, 4, 1);
  g.add_edge(3, 6, 1);
  EXPECT_EQ(g.solve(0, 7), 3);
}

TEST(MaxFlow, AddNodeDynamically) {
  MaxFlow g(2);
  const int mid = g.add_node();
  g.add_edge(0, mid, 4);
  g.add_edge(mid, 1, 6);
  EXPECT_EQ(g.solve(0, 1), 4);
}

TEST(MaxFlow, RejectsBadEdges) {
  MaxFlow g(2);
  EXPECT_THROW(g.add_edge(0, 0, 1), util::CheckError);
  EXPECT_THROW(g.add_edge(0, 5, 1), util::CheckError);
  EXPECT_THROW(g.add_edge(0, 1, -2), util::CheckError);
}

TEST(MaxFlow, RejectsSameSourceSink) {
  MaxFlow g(2);
  EXPECT_THROW(g.solve(1, 1), util::CheckError);
}

// Reference implementation (Edmonds-Karp style BFS augmentation) for
// randomized differential testing.
MaxFlow::Cap slow_max_flow(int n,
                           const std::vector<std::array<int, 3>>& edges,
                           int s, int t) {
  std::vector<std::vector<MaxFlow::Cap>> cap(
      static_cast<std::size_t>(n),
      std::vector<MaxFlow::Cap>(static_cast<std::size_t>(n), 0));
  for (const auto& e : edges) {
    cap[static_cast<std::size_t>(e[0])][static_cast<std::size_t>(e[1])] +=
        e[2];
  }
  MaxFlow::Cap total = 0;
  for (;;) {
    std::vector<int> parent(static_cast<std::size_t>(n), -1);
    parent[static_cast<std::size_t>(s)] = s;
    std::vector<int> queue{s};
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const int u = queue[qi];
      for (int v = 0; v < n; ++v) {
        if (parent[static_cast<std::size_t>(v)] < 0 &&
            cap[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)] >
                0) {
          parent[static_cast<std::size_t>(v)] = u;
          queue.push_back(v);
        }
      }
    }
    if (parent[static_cast<std::size_t>(t)] < 0) break;
    MaxFlow::Cap aug = MaxFlow::kInf;
    for (int v = t; v != s; v = parent[static_cast<std::size_t>(v)]) {
      const int u = parent[static_cast<std::size_t>(v)];
      aug = std::min(
          aug, cap[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)]);
    }
    for (int v = t; v != s; v = parent[static_cast<std::size_t>(v)]) {
      const int u = parent[static_cast<std::size_t>(v)];
      cap[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)] -= aug;
      cap[static_cast<std::size_t>(v)][static_cast<std::size_t>(u)] += aug;
    }
    total += aug;
  }
  return total;
}

class FlowDifferential : public ::testing::TestWithParam<int> {};

TEST_P(FlowDifferential, MatchesReferenceImplementation) {
  util::Rng rng(500 + GetParam());
  const int n = 4 + static_cast<int>(rng.uniform_below(8));
  MaxFlow g(n);
  std::vector<std::array<int, 3>> edges;
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (u == v || !rng.bernoulli(0.45)) continue;
      const int cap = static_cast<int>(rng.uniform_below(12));
      g.add_edge(u, v, cap);
      edges.push_back({u, v, cap});
    }
  }
  EXPECT_EQ(g.solve(0, n - 1), slow_max_flow(n, edges, 0, n - 1));
}

INSTANTIATE_TEST_SUITE_P(Sweep, FlowDifferential, ::testing::Range(0, 20));

}  // namespace
}  // namespace suu::flow
