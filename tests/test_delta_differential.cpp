// Delta-differential oracle: random delta chains applied to open handles
// through the update_instance wire method must leave the handle answering
// solve/estimate BYTE-identically to a cold parse of the fully mutated
// instance — across both LP engines and every pricing rule, whether the
// re-prepare warm-started from the parent's recorded basis or fell back
// cold. This is the pin that keeps the warm-start path honest: a basis
// seed may only change *how fast* the re-solve converges, never a single
// output byte.
//
// Instance count comes from SUU_DIFFERENTIAL_INSTANCES (default 200; the
// nightly CI job runs tens of thousands). Each trial:
//
//   1. generates a root instance (independent / chains / out-forest,
//      round-robin by trial) and canonicalizes it with apply_delta(root,
//      {}) so fingerprints of the delta chain converge (core/delta.hpp);
//   2. opens a handle on a shared Engine and walks a random chain of 1-3
//      deltas (q edits, edge adds/deletes), checking after every
//      update_instance that the wire fingerprint equals the locally
//      applied apply_delta fingerprint;
//   3. byte-compares solve and estimate through the mutated handle against
//      the same requests with the final instance inlined and
//      "reuse_cache": false — a cold prepare that cannot see the handle's
//      warm trajectory.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/delta.hpp"
#include "core/generators.hpp"
#include "core/instance.hpp"
#include "core/io.hpp"
#include "service/engine.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "util/rng.hpp"

namespace suu {
namespace {

long instance_budget() {
  long v = 200;
  if (const char* env = std::getenv("SUU_DIFFERENTIAL_INSTANCES")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0') v = parsed;
  }
  return std::clamp(v, 10L, 10'000'000L);
}

std::string payload(const core::Instance& inst) {
  std::ostringstream os;
  core::write_instance(os, inst);
  return os.str();
}

std::string quoted(const std::string& s) {
  std::string out;
  service::json_append_quoted(out, s);
  return out;
}

std::string fp_hex(std::uint64_t fp) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

core::Instance root_instance(long trial, util::Rng& rng) {
  const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(trial);
  util::Rng gen(seed);
  switch (trial % 3) {
    case 0:
      return core::make_independent(4 + static_cast<int>(rng.uniform_below(6)),
                                    2 + static_cast<int>(rng.uniform_below(3)),
                                    core::MachineModel::uniform(0.3, 0.95),
                                    gen);
    case 1:
      return core::make_chains(2 + static_cast<int>(rng.uniform_below(2)), 2, 4,
                               2 + static_cast<int>(rng.uniform_below(2)),
                               core::MachineModel::uniform(0.3, 0.9), gen);
    default:
      return core::make_out_forest(5 + static_cast<int>(rng.uniform_below(5)),
                                   2 + static_cast<int>(rng.uniform_below(2)),
                                   0.4, 3,
                                   core::MachineModel::uniform(0.3, 0.9), gen);
  }
}

std::vector<std::pair<int, int>> dag_edges(const core::Instance& inst) {
  std::vector<std::pair<int, int>> edges;
  for (int u = 0; u < inst.num_jobs(); ++u) {
    for (int v : inst.dag().succs(u)) edges.emplace_back(u, v);
  }
  return edges;
}

/// A random delta that is valid against `base` (retried until apply_delta
/// accepts it); `*next` receives the locally mutated instance.
core::InstanceDelta random_delta(const core::Instance& base, util::Rng& rng,
                                 core::Instance* next) {
  const int n = base.num_jobs();
  const int m = base.num_machines();
  for (int attempt = 0; attempt < 64; ++attempt) {
    core::InstanceDelta delta;
    const int n_q = 1 + static_cast<int>(rng.uniform_below(3));
    for (int k = 0; k < n_q; ++k) {
      const std::int64_t cell =
          static_cast<std::int64_t>(rng.uniform_below(static_cast<std::uint64_t>(n) * m));
      // Keep values clear of 0 so "every job keeps a capable machine"
      // cannot be violated by the q edits alone.
      const double v = 0.05 + 0.9 * rng.uniform01();
      delta.q.emplace_back(cell, v);
    }
    const std::vector<std::pair<int, int>> edges = dag_edges(base);
    if (!edges.empty() && rng.bernoulli(0.5)) {
      delta.del_edges.push_back(
          edges[rng.uniform_below(edges.size())]);
    }
    if (n >= 2 && rng.bernoulli(0.5)) {
      // u < v keeps the addition acyclic for the index-ordered generators;
      // duplicates (vs base or vs del re-add) are rejected by apply_delta
      // and retried.
      const int u = static_cast<int>(rng.uniform_below(static_cast<std::uint64_t>(n - 1)));
      const int v =
          u + 1 + static_cast<int>(rng.uniform_below(static_cast<std::uint64_t>(n - 1 - u)));
      delta.add_edges.emplace_back(u, v);
    }
    try {
      core::Instance mutated = core::apply_delta(base, delta);
      *next = std::move(mutated);
      return delta;
    } catch (const core::DeltaError&) {
      continue;  // duplicate cell / duplicate edge / missing edge: re-roll
    }
  }
  // 64 rejections in a row on instances this small means the generator is
  // broken, not unlucky.
  ADD_FAILURE() << "could not generate a valid delta in 64 attempts";
  *next = core::apply_delta(base, core::InstanceDelta{});
  return core::InstanceDelta{};
}

std::string update_request(long id, std::uint64_t handle,
                           const core::InstanceDelta& delta) {
  std::string req = "{\"id\":" + std::to_string(id) +
                    ",\"method\":\"update_instance\",\"params\":{\"handle\":" +
                    std::to_string(handle);
  if (!delta.q.empty()) {
    req += ",\"q\":{";
    for (std::size_t i = 0; i < delta.q.size(); ++i) {
      if (i > 0) req += ',';
      req += '"' + std::to_string(delta.q[i].first) +
             "\":" + service::json_number(delta.q[i].second);
    }
    req += '}';
  }
  const auto edge_list = [](const std::vector<std::pair<int, int>>& edges) {
    std::string out = "[";
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (i > 0) out += ',';
      out += '[' + std::to_string(edges[i].first) + ',' +
             std::to_string(edges[i].second) + ']';
    }
    return out + ']';
  };
  if (!delta.add_edges.empty()) {
    req += ",\"add_edges\":" + edge_list(delta.add_edges);
  }
  if (!delta.del_edges.empty()) {
    req += ",\"del_edges\":" + edge_list(delta.del_edges);
  }
  return req + "}}";
}

const char* kEngines[] = {"auto", "tableau", "revised"};
const char* kPricings[] = {"auto", "dantzig", "devex", "steepest"};

TEST(DeltaDifferential, UpdatedHandleMatchesColdParseBytes) {
  const long budget = instance_budget();
  service::Engine engine;
  util::Rng rng(20260807);
  long updates = 0;

  for (long trial = 0; trial < budget; ++trial) {
    // Canonicalize: generators insert edges in arbitrary order, the delta
    // applier rebuilds sorted by (u, v); start from the sorted twin so the
    // wire fingerprints match the local ones along the whole chain.
    const core::Instance root =
        core::apply_delta(root_instance(trial, rng), core::InstanceDelta{});
    const std::string opts =
        std::string("\"lp_engine\":\"") + kEngines[trial % 3] +
        "\",\"lp_pricing\":\"" + kPricings[trial % 4] + "\"";

    const auto H = [&](const std::string& line) { return engine.handle(line); };
    const service::Json opened = service::Json::parse(H(
        R"({"id":1,"method":"open_instance","params":{"instance":)" +
        quoted(payload(root)) + "}}"));
    ASSERT_TRUE(opened.find("ok")->as_bool("ok")) << opened.dump();
    const std::uint64_t handle = static_cast<std::uint64_t>(
        opened.find("result")->find("handle")->as_int64("handle"));

    // Solve through the (not yet updated) handle once so the root's cache
    // entry records its final LP basis — that is what the first delta's
    // re-prepare warm-starts from.
    H(R"({"id":8,"method":"solve","params":{"handle":)" +
      std::to_string(handle) + R"(,"options":{)" + opts + "}}}");

    core::Instance current = root;
    const int chain = 1 + static_cast<int>(rng.uniform_below(3));
    for (int step = 0; step < chain; ++step) {
      core::Instance next = current;
      const core::InstanceDelta delta = random_delta(current, rng, &next);
      const service::Json resp = service::Json::parse(
          H(update_request(2 + step, handle, delta)));
      ASSERT_TRUE(resp.find("ok")->as_bool("ok"))
          << "trial " << trial << " step " << step << ": " << resp.dump();
      // The wire's fingerprint of the installed instance must equal the
      // locally applied delta's — same mutation, same canonical edge order.
      EXPECT_EQ(
          resp.find("result")->find("fingerprint")->as_string("fingerprint"),
          fp_hex(next.fingerprint()))
          << "trial " << trial << " step " << step;
      EXPECT_EQ(resp.find("result")->find("parent")->as_string("parent"),
                fp_hex(current.fingerprint()));
      current = std::move(next);
      ++updates;

      // Per-step oracle: the warm re-prepared handle vs a cold parse of
      // the mutated instance, with reuse_cache:false so the reference
      // prepare cannot be served by (or warm-start from) anything the
      // handle's chain cached. This solve also records the basis the NEXT
      // step seeds from.
      const std::string step_text = quoted(payload(current));
      const std::string handle_solve = H(
          R"({"id":9,"method":"solve","params":{"handle":)" +
          std::to_string(handle) + R"(,"lower_bound":true,"options":{)" +
          opts + "}}}");
      const std::string cold_solve = H(
          R"({"id":9,"method":"solve","params":{"instance":)" + step_text +
          R"(,"lower_bound":true,"options":{"reuse_cache":false,)" + opts +
          "}}}");
      EXPECT_EQ(handle_solve, cold_solve)
          << "trial " << trial << " step " << step;
    }

    const std::string final_text = quoted(payload(current));
    const std::string est_tail =
        R"(,"replications":20,"seed":)" + std::to_string(100 + trial);
    const std::string handle_est = H(
        R"({"id":9,"method":"estimate","params":{"handle":)" +
        std::to_string(handle) + est_tail + R"(,"options":{)" + opts + "}}}");
    const std::string cold_est = H(
        R"({"id":9,"method":"estimate","params":{"instance":)" + final_text +
        est_tail + R"(,"options":{"reuse_cache":false,)" + opts + "}}}");
    EXPECT_EQ(handle_est, cold_est) << "trial " << trial;

    engine.handle(R"({"id":99,"method":"close_instance","params":{"handle":)" +
                  std::to_string(handle) + "}}");
    // One mismatch is a real determinism bug, not noise — later trials
    // would only repeat it.
    if (::testing::Test::HasFailure()) break;
  }

  const service::Engine::Stats s = engine.stats();
  EXPECT_EQ(s.deltas_applied, static_cast<std::uint64_t>(updates));
  // Every chain solves its parent before updating, so across hundreds of
  // LP-backed trials at least SOME re-prepare must have accepted its
  // parent's basis — zero means the warm plumbing silently disconnected.
  if (budget >= 100) {
    EXPECT_GT(s.delta_warm_hits, 0u);
  }
  std::printf(
      "[differential] %ld delta chains (%ld updates), %llu warm-started "
      "re-prepares\n",
      budget, updates,
      static_cast<unsigned long long>(s.delta_warm_hits));
}

}  // namespace
}  // namespace suu
