// Unit tests for the pricing module (lp/pricing.hpp) and the hardened
// SUU_LP_REFACTOR_INTERVAL parsing (lp/basis.hpp). The end-to-end pricing
// guarantees — identical verdicts and optima across every rule on both
// engines — live in test_lp_differential.cpp; this file pins the local
// contracts: spelling parsers, Auto resolution, the reference-weight
// recurrences, and a small all-rules optimum check with exact expected
// values.
#include <cmath>

#include <gtest/gtest.h>

#include "lp/basis.hpp"
#include "lp/pricing.hpp"
#include "lp/problem.hpp"
#include "lp/simplex.hpp"

namespace suu::lp {
namespace {

TEST(RefactorInterval, AcceptsBarePositiveDecimals) {
  EXPECT_EQ(parse_refactor_interval("1"), 1);
  EXPECT_EQ(parse_refactor_interval("64"), 64);
  EXPECT_EQ(parse_refactor_interval("100000"), 100000);
  EXPECT_EQ(parse_refactor_interval("007"), 7);  // leading zeros are fine
}

TEST(RefactorInterval, RejectsEverythingElse) {
  // Each of these must fall back to the default, never clamp: a
  // misconfigured env var silently running with interval 1 (the old
  // behaviour for "0" and negatives) tanks the revised engine.
  const char* bad[] = {"",       "0",     "-5",        "abc",
                       "64abc",  "6 4",   " 64",       "64 ",
                       "1e3",    "+64",   "0x40",      "100001",
                       "999999999999999999999"};
  for (const char* s : bad) {
    EXPECT_EQ(parse_refactor_interval(s), kDefaultRefactorInterval)
        << "input \"" << s << '"';
  }
  EXPECT_EQ(parse_refactor_interval(nullptr), kDefaultRefactorInterval);
}

TEST(PricingRule_, ParsesWireSpellings) {
  PricingRule r = PricingRule::Auto;
  ASSERT_TRUE(pricing::parse_pricing_rule("dantzig", &r));
  EXPECT_EQ(r, PricingRule::Dantzig);
  ASSERT_TRUE(pricing::parse_pricing_rule("devex", &r));
  EXPECT_EQ(r, PricingRule::Devex);
  ASSERT_TRUE(pricing::parse_pricing_rule("steepest", &r));
  EXPECT_EQ(r, PricingRule::Steepest);
  ASSERT_TRUE(pricing::parse_pricing_rule("auto", &r));
  EXPECT_EQ(r, PricingRule::Auto);

  r = PricingRule::Devex;
  for (const char* s : {"", "Devex", "DANTZIG", "steepest ", "bland",
                        "devex1", "auto\n"}) {
    EXPECT_FALSE(pricing::parse_pricing_rule(s, &r)) << "input \"" << s
                                                     << '"';
    EXPECT_EQ(r, PricingRule::Devex) << "rejected parse must not write";
  }
}

TEST(PricingRule_, SpellingsRoundTripThroughToString) {
  for (const PricingRule r : {PricingRule::Auto, PricingRule::Dantzig,
                              PricingRule::Devex, PricingRule::Steepest}) {
    PricingRule back = PricingRule::Auto;
    ASSERT_TRUE(pricing::parse_pricing_rule(to_string(r), &back))
        << to_string(r);
    EXPECT_EQ(back, r);
  }
}

TEST(PricingRule_, AutoResolvesPerEngine) {
  using pricing::resolve_pricing;
  // Auto keeps the historical rule on the tableau (byte-recorded
  // trajectories) and upgrades the revised engine to Devex.
  EXPECT_EQ(resolve_pricing(PricingRule::Auto, SimplexEngine::Tableau),
            PricingRule::Dantzig);
  EXPECT_EQ(resolve_pricing(PricingRule::Auto, SimplexEngine::Revised),
            PricingRule::Devex);
  // Explicit rules pass through untouched on either engine.
  for (const SimplexEngine e :
       {SimplexEngine::Tableau, SimplexEngine::Revised}) {
    EXPECT_EQ(resolve_pricing(PricingRule::Dantzig, e), PricingRule::Dantzig);
    EXPECT_EQ(resolve_pricing(PricingRule::Devex, e), PricingRule::Devex);
    EXPECT_EQ(resolve_pricing(PricingRule::Steepest, e),
              PricingRule::Steepest);
  }
}

TEST(ReferenceWeights, ResetActivationAndScore) {
  pricing::ReferenceWeights w;
  EXPECT_FALSE(w.active());
  w.reset(4);
  ASSERT_TRUE(w.active());
  for (int j = 0; j < 4; ++j) EXPECT_EQ(w[j], 1.0);
  // score = d^2 / w_j: at unit weights, ranking degenerates to |d| —
  // i.e. a fresh framework starts out agreeing with Dantzig.
  EXPECT_DOUBLE_EQ(w.score(0, -3.0), 9.0);
  EXPECT_DOUBLE_EQ(w.score(1, 2.0), 4.0);
  w.deactivate();
  EXPECT_FALSE(w.active());
}

TEST(ReferenceWeights, DevexUpdateIsMonotoneMax) {
  pricing::ReferenceWeights w;
  w.reset(3);
  // w_j <- max(w_j, r^2 * w_q): grows to 4, never shrinks back.
  w.note_devex(0, 2.0, 1.0);
  EXPECT_DOUBLE_EQ(w[0], 4.0);
  w.note_devex(0, 0.5, 1.0);
  EXPECT_DOUBLE_EQ(w[0], 4.0);
  // score divides by the grown weight, demoting the long column.
  EXPECT_DOUBLE_EQ(w.score(0, -2.0), 1.0);
  EXPECT_FALSE(w.needs_reset());
}

TEST(ReferenceWeights, SteepestRecurrenceRespectsExactFloor) {
  pricing::ReferenceWeights w;
  w.reset(2);
  // gamma_j <- max(gamma - 2 r beta + r^2 gamma_q, 1 + r^2). With gamma=1,
  // r=1, beta=2, gamma_q=1 the recurrence gives 1 - 4 + 1 = -2, which the
  // exact lower bound 1 + r^2 = 2 must catch.
  w.note_steepest(0, 1.0, 2.0, 1.0);
  EXPECT_DOUBLE_EQ(w[0], 2.0);
  // And an honest update above the floor passes through: 1 + 6 + 9 = 16.
  w.note_steepest(1, 3.0, -1.0, 1.0);
  EXPECT_DOUBLE_EQ(w[1], 16.0);
}

TEST(ReferenceWeights, LeavingWeightAndResetThreshold) {
  pricing::ReferenceWeights w;
  w.reset(2);
  // Leaving variable gets max(w_q / piv^2, 1).
  w.set_leaving(0, 4.0, 0.5);
  EXPECT_DOUBLE_EQ(w[0], 16.0);
  w.set_leaving(1, 1.0, 10.0);
  EXPECT_DOUBLE_EQ(w[1], 1.0);
  EXPECT_FALSE(w.needs_reset());
  // Crossing kWeightResetThreshold latches needs_reset until reset().
  w.note_devex(0, 1e5, 2.0);
  EXPECT_TRUE(w.needs_reset());
  w.reset(2);
  EXPECT_FALSE(w.needs_reset());
  EXPECT_DOUBLE_EQ(w[0], 1.0);
}

TEST(Pricing, AllRulesReachTheSameOptimumOnBothEngines) {
  // Tiny LP1-shaped program with a hand-checkable optimum: two jobs, two
  // machines, min t with unit covers and load rows — t* = 1 (one job per
  // machine at x = 1).
  Problem p;
  const int t = p.add_var(1.0);
  const int x00 = p.add_var(0.0);
  const int x10 = p.add_var(0.0);
  const int x01 = p.add_var(0.0);
  const int x11 = p.add_var(0.0);
  Row c0;
  c0.rel = Rel::Ge;
  c0.rhs = 1.0;
  c0.terms = {{x00, 1.0}, {x10, 1.0}};
  p.add_row(std::move(c0));
  Row c1;
  c1.rel = Rel::Ge;
  c1.rhs = 1.0;
  c1.terms = {{x01, 1.0}, {x11, 1.0}};
  p.add_row(std::move(c1));
  Row l0;
  l0.rel = Rel::Le;
  l0.rhs = 0.0;
  l0.terms = {{x00, 1.0}, {x01, 1.0}, {t, -1.0}};
  p.add_row(std::move(l0));
  Row l1;
  l1.rel = Rel::Le;
  l1.rhs = 0.0;
  l1.terms = {{x10, 1.0}, {x11, 1.0}, {t, -1.0}};
  p.add_row(std::move(l1));

  for (const SimplexEngine e :
       {SimplexEngine::Tableau, SimplexEngine::Revised}) {
    for (const PricingRule r : {PricingRule::Auto, PricingRule::Dantzig,
                                PricingRule::Devex, PricingRule::Steepest}) {
      SimplexOptions opt;
      opt.engine = e;
      opt.pricing = r;
      const Solution s = solve_simplex(p, opt);
      ASSERT_EQ(s.status, Status::Optimal)
          << to_string(e) << '/' << to_string(r);
      EXPECT_NEAR(s.objective, 1.0, 1e-9)
          << to_string(e) << '/' << to_string(r);
    }
  }
}

}  // namespace
}  // namespace suu::lp
